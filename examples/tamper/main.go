// Tamper example: a rogues' gallery of misbehaving executors, each of
// which the verifier must catch. It demonstrates the Soundness side of
// the audit: response tampering, forged read values, log manipulation,
// and the Figure 4 consistent-ordering attacks.
package main

import (
	"fmt"
	"log"
	"strings"

	"orochi"
	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/trace"
	"orochi/internal/verifier"
)

var appSrc = map[string]string{
	"deposit": `
$acct = $_GET["acct"];
$amount = intval($_GET["amount"]);
$bal = session_get("bal:" . $acct);
if ($bal === null) { $bal = 0; }
$bal = $bal + $amount;
session_set("bal:" . $acct, $bal);
echo "balance of " . $acct . " is now " . $bal;
`,
	"balance": `
$acct = $_GET["acct"];
$bal = session_get("bal:" . $acct);
if ($bal === null) { $bal = 0; }
echo "balance of " . $acct . " is " . $bal;
`,
}

func main() {
	fmt.Println("=== Scenario 1: honest executor (must ACCEPT) ===")
	runScenario(nil, nil)

	fmt.Println("\n=== Scenario 2: tampered response (must REJECT) ===")
	runScenario(func(rid, body string) string {
		// Inflate a balance on the wire.
		return strings.Replace(body, "is now 70", "is now 700000", 1)
	}, nil)

	fmt.Println("\n=== Scenario 3: forged logged write (must REJECT) ===")
	runScenario(nil, func(rep *orochi.Reports) {
		for i := range rep.OpLogs {
			for j := range rep.OpLogs[i] {
				if rep.OpLogs[i][j].Type == lang.RegisterWrite {
					rep.OpLogs[i][j].Value = lang.EncodeValue(lang.Value(int64(700000)))
					return
				}
			}
		}
	})

	fmt.Println("\n=== Scenario 4: dropped operation + doctored count (must REJECT) ===")
	runScenario(nil, func(rep *orochi.Reports) {
		for i := range rep.OpLogs {
			if len(rep.OpLogs[i]) > 0 {
				victim := rep.OpLogs[i][len(rep.OpLogs[i])-1]
				rep.OpLogs[i] = rep.OpLogs[i][:len(rep.OpLogs[i])-1]
				rep.OpCounts[victim.RID]--
				return
			}
		}
	})

	fmt.Println("\n=== Scenario 5: reordered log vs trace order — Figure 4(a) (must REJECT) ===")
	figure4a()
}

func runScenario(tamperResp func(string, string) string, tamperRep func(*orochi.Reports)) {
	prog, err := orochi.CompileApp(appSrc)
	if err != nil {
		log.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true, TamperResponse: tamperResp})
	snap := srv.Snapshot()
	for _, step := range []struct {
		script, acct, amount string
	}{
		{"deposit", "alice", "50"},
		{"deposit", "alice", "20"},
		{"balance", "alice", ""},
		{"deposit", "bob", "10"},
		{"balance", "bob", ""},
	} {
		in := orochi.Input{Script: step.script, Get: map[string]string{"acct": step.acct}}
		if step.amount != "" {
			in.Get["amount"] = step.amount
		}
		_, body := srv.Handle(in)
		fmt.Println("  ", body)
	}
	rep := srv.Reports()
	if tamperRep != nil {
		tamperRep(rep)
	}
	res, err := orochi.Audit(prog, srv.Trace(), rep, snap, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

// figure4a reconstructs example (a) of the paper's Figure 4: a
// sequential trace whose responses could only come from a different
// order than the trace shows, with logs arranged to be mutually
// consistent with the bogus responses. Simulate-and-check alone would
// accept it; the consistent-ordering check must reject it.
func figure4a() {
	prog, err := orochi.CompileApp(map[string]string{
		"f": `session_set("A", 1); $x = session_get("B"); echo $x;`,
		"g": `session_set("B", 1); $y = session_get("A"); echo $y;`,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := &trace.Trace{Events: []trace.Event{
		{Kind: trace.Request, RID: "r1", Time: 1, In: trace.Input{Script: "f"}},
		{Kind: trace.Response, RID: "r1", Time: 2, Body: "1"},
		{Kind: trace.Request, RID: "r2", Time: 3, In: trace.Input{Script: "g"}},
		{Kind: trace.Response, RID: "r2", Time: 4, Body: "0"},
	}}
	one := lang.EncodeValue(lang.Value(int64(1)))
	rep := &reports.Reports{
		Groups:  map[uint64][]string{1: {"r1"}, 2: {"r2"}},
		Scripts: map[uint64]string{1: "f", 2: "g"},
		Objects: []reports.ObjectID{
			{Kind: reports.RegisterObj, Name: "A"},
			{Kind: reports.RegisterObj, Name: "B"},
		},
		OpLogs: [][]reports.OpEntry{
			{
				{RID: "r2", Opnum: 2, Type: lang.RegisterRead, Key: "A"},
				{RID: "r1", Opnum: 1, Type: lang.RegisterWrite, Key: "A", Value: one},
			},
			{
				{RID: "r2", Opnum: 1, Type: lang.RegisterWrite, Key: "B", Value: one},
				{RID: "r1", Opnum: 2, Type: lang.RegisterRead, Key: "B"},
			},
		},
		OpCounts: map[string]int{"r1": 2, "r2": 2},
		NonDet:   map[string][]reports.NDEntry{},
	}
	init := &orochi.Snapshot{
		Registers: map[string]lang.Value{"A": int64(0), "B": int64(0)},
		KV:        map[string]lang.Value{},
	}
	res, err := verifier.Audit(prog, tr, rep, init, verifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func report(res *verifier.Result) {
	if res.Accepted {
		fmt.Println("  verdict: ACCEPT")
	} else {
		fmt.Printf("  verdict: REJECT (%s)\n", res.Reason)
	}
}
