// Wiki example: serve the paper's MediaWiki-like workload (§5) on a
// concurrent recording server, then audit it and print the acceleration
// the verifier achieved over naive sequential re-execution — the
// headline experiment of the paper at example scale.
package main

import (
	"flag"
	"fmt"
	"log"

	"orochi/internal/harness"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func main() {
	requests := flag.Int("requests", 2000, "number of requests to serve")
	pages := flag.Int("pages", 100, "page population (Zipf 0.53 over these)")
	conc := flag.Int("concurrency", 8, "concurrent in-flight requests")
	flag.Parse()

	w := workload.Wiki(workload.WikiParams{
		Requests: *requests, Pages: *pages, ZipfS: 0.53, Seed: 1,
	})
	fmt.Printf("serving %d wiki requests over %d pages (concurrency %d)...\n",
		*requests, *pages, *conc)
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: *conc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served in %v wall, %v total handler time\n", served.ServeWall, served.ServeCPU)

	baseline, err := harness.BaselineReplay(w, served)
	if err != nil {
		log.Fatal(err)
	}

	res, err := served.Audit(verifier.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Accepted {
		log.Fatalf("audit rejected: %s", res.Reason)
	}
	st := res.Stats
	fmt.Printf("\naudit ACCEPTED in %v:\n", st.Total)
	fmt.Printf("  ProcessOpReports  %v\n", st.ProcOpRep)
	fmt.Printf("  versioned DB redo %v\n", st.DBRedo)
	fmt.Printf("  re-execution      %v (of which DB queries %v)\n", st.ReExec, st.DBQuery)
	fmt.Printf("  query dedup       %d hits / %d lookups\n", st.DedupHits, st.DedupHits+st.DedupMisses)
	big := 0
	for _, g := range st.Groups {
		if g.N > 1 {
			big++
		}
	}
	fmt.Printf("  groups            %d total, %d with more than one request\n", len(st.Groups), big)
	fmt.Printf("\nnaive sequential re-execution: %v\n", baseline)
	fmt.Printf("verifier speedup:              %.1fx\n", float64(baseline)/float64(st.Total))

	sizes, err := served.Sizes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reports: %.2f KB/request (trace: %.2f KB/request)\n",
		float64(sizes.ReportBytes)/float64(served.Requests)/1024,
		float64(sizes.TraceBytes)/float64(served.Requests)/1024)
}
