// Quickstart: the smallest complete OROCHI flow. We write a tiny
// application in the embedded language, run it on an (untrusted) server
// with recording enabled, capture the trace with the trusted collector,
// and audit — all in a few lines against the public API.
package main

import (
	"fmt"
	"log"

	"orochi"
)

func main() {
	// 1. The principal's program: a greeting service with a per-user
	//    visit counter kept in session state.
	prog, err := orochi.CompileApp(map[string]string{
		"greet": `
$name = $_GET["name"];
$visits = session_get("visits:" . $name);
if ($visits === null) { $visits = 0; }
$visits = $visits + 1;
session_set("visits:" . $name, $visits);
echo "<p>Hello, " . htmlspecialchars($name) . "! Visit #" . $visits . "</p>";
`,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy on the executor with report recording on, and snapshot
	//    the (empty) initial state for the verifier.
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	initialState := srv.Snapshot()

	// 3. Clients issue requests; the collector inside the server records
	//    the trace at the boundary.
	for _, name := range []string{"alice", "bob", "alice", "alice", "bob"} {
		_, body := srv.Handle(orochi.Input{
			Script: "greet",
			Get:    map[string]string{"name": name},
		})
		fmt.Println(body)
	}

	// 4. Audit: the verifier gets the trusted trace, the UNTRUSTED
	//    reports, and the initial state.
	res, err := orochi.Audit(prog, srv.Trace(), srv.Reports(), initialState, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Accepted {
		fmt.Printf("\nAUDIT ACCEPTED in %v — every response was produced by the program.\n",
			res.Stats.Total)
	} else {
		fmt.Printf("\nAUDIT REJECTED: %s\n", res.Reason)
	}
}
