// Forum example: the phpBB-like application under concurrent load with
// sessions, transactions, and contended counters — then a full audit,
// plus a demonstration that the audit carries the verified final state
// forward as the next period's initial state (§4.5: audit periods chain).
package main

import (
	"flag"
	"fmt"
	"log"

	"orochi/internal/harness"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func main() {
	requests := flag.Int("requests", 1500, "requests per audit period")
	conc := flag.Int("concurrency", 8, "concurrent in-flight requests")
	flag.Parse()

	w := workload.Forum(workload.ForumParams{
		Requests: *requests, Topics: 12, Users: 20, GuestRatio: 40.0 / 41.0, Seed: 7,
	})
	fmt.Printf("period 1: serving %d forum requests (concurrency %d)...\n", *requests, *conc)
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: *conc})
	if err != nil {
		log.Fatal(err)
	}
	res, err := served.Audit(verifier.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Accepted {
		log.Fatalf("audit rejected: %s", res.Reason)
	}
	fmt.Printf("period 1 audit ACCEPTED in %v (replayed %d requests in %d groups)\n",
		res.Stats.Total, res.Stats.RequestsReplayed, len(res.Stats.Groups))

	// The verifier now owns the verified post-period state: migrate the
	// versioned store's final contents (the paper's M -> V dump) and
	// compare with what the server actually holds.
	final, err := res.FinalDB.MigrateFinal()
	if err != nil {
		log.Fatal(err)
	}
	verifierView, err := final.Exec(`SELECT COUNT(*) FROM posts`)
	if err != nil {
		log.Fatal(err)
	}
	serverView, err := served.Server.Store.DB.Exec(`SELECT COUNT(*) FROM posts`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post count after period 1: verifier sees %v, server holds %v\n",
		verifierView.Rows[0][0], serverView.Rows[0][0])
	if verifierView.Rows[0][0] != serverView.Rows[0][0] {
		log.Fatal("verified state diverged from server state")
	}

	baseline, err := harness.BaselineReplay(w, served)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup vs sequential re-execution: %.1fx\n",
		float64(baseline)/float64(res.Stats.Total))

	// Show the biggest control-flow groups the audit exploited.
	fmt.Println("\nlargest control-flow groups:")
	top := res.Stats.Groups
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].N > top[i].N {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	for i, g := range top {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s n=%-5d instructions=%-6d univalent fraction=%.2f\n",
			g.Script, g.N, g.Len, g.Alpha)
	}
}
