// Patch-audit example (§7, after Poirot): serve and audit a period under
// the original program, then replay the same period against a patched
// program to see exactly which historical responses the patch would have
// changed — without re-running the server.
package main

import (
	"fmt"
	"log"

	"orochi"
)

var original = map[string]string{
	"price": `
$rows = db_query("SELECT name, cents FROM products ORDER BY id");
echo "<table>";
foreach ($rows as $r) {
  echo "<tr><td>" . htmlspecialchars($r["name"]) . "</td><td>$" . intdiv($r["cents"], 100) . "</td></tr>";
}
echo "</table>";
`,
	"stock": `
db_exec("INSERT INTO products (name, cents) VALUES (" . db_quote($_POST["name"]) . ", " . intval($_POST["cents"]) . ")");
echo "stocked " . htmlspecialchars($_POST["name"]);
`,
}

// The patch fixes a rendering bug: prices were truncating cents.
var patched = map[string]string{
	"price": `
$rows = db_query("SELECT name, cents FROM products ORDER BY id");
echo "<table>";
foreach ($rows as $r) {
  echo "<tr><td>" . htmlspecialchars($r["name"]) . "</td><td>$" . sprintf("%d.%02d", intdiv($r["cents"], 100), $r["cents"] % 100) . "</td></tr>";
}
echo "</table>";
`,
	"stock": original["stock"],
}

func main() {
	prog, err := orochi.CompileApp(original)
	if err != nil {
		log.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	if err := srv.Setup([]string{
		`CREATE TABLE products (id INT PRIMARY KEY AUTOINCREMENT, name TEXT, cents INT)`,
	}); err != nil {
		log.Fatal(err)
	}
	snap := srv.Snapshot()

	// The audited period: stock two products, view prices twice.
	for _, in := range []orochi.Input{
		{Script: "stock", Post: map[string]string{"name": "widget", "cents": "1999"}},
		{Script: "price"},
		{Script: "stock", Post: map[string]string{"name": "gadget", "cents": "250"}},
		{Script: "price"},
	} {
		_, body := srv.Handle(in)
		fmt.Println(" ", body)
	}

	// First: the ordinary audit, proving the period really ran the
	// original program.
	res, err := orochi.Audit(prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregular audit: accepted=%v\n", res.Accepted)

	// Then: the patch audit.
	patchedProg, err := orochi.CompileApp(patched)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := orochi.PatchAudit(patchedProg, srv.Trace(), srv.Reports(), snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patch audit: %d unchanged, %d changed, %d inconclusive\n",
		pres.Unchanged, pres.Changed, pres.Inconclusive)
	for _, rid := range pres.RIDsIn(orochi.PatchChangedClass) {
		fmt.Printf("  %s would have rendered differently under the patch\n", rid)
	}
}
