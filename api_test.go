package orochi_test

import (
	"strings"
	"testing"

	"orochi"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := orochi.CompileApp(map[string]string{
		"hello": `echo "hello " . $_GET["name"];`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	snap := srv.Snapshot()
	_, body := srv.Handle(orochi.Input{Script: "hello", Get: map[string]string{"name": "world"}})
	if body != "hello world" {
		t.Fatalf("body = %q", body)
	}
	res, err := orochi.Audit(prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
}

func TestQuickstartTamperRejected(t *testing.T) {
	prog, err := orochi.CompileApp(map[string]string{
		"hello": `echo "hello " . $_GET["name"];`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{
		Record:         true,
		TamperResponse: func(rid, body string) string { return strings.ToUpper(body) },
	})
	snap := srv.Snapshot()
	srv.Handle(orochi.Input{Script: "hello", Get: map[string]string{"name": "x"}})
	res, err := orochi.Audit(prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered response must be rejected")
	}
}

func TestSampleAppsExposed(t *testing.T) {
	apps := orochi.SampleApps()
	if len(apps) != 3 {
		t.Fatalf("sample apps = %d", len(apps))
	}
	for _, a := range apps {
		if a.Compile() == nil {
			t.Fatalf("%s failed to compile", a.Name)
		}
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if len(orochi.WikiWorkload().Requests) != 20000 {
		t.Fatal("wiki workload size")
	}
	if len(orochi.ForumWorkload().Requests) != 30000 {
		t.Fatal("forum workload size")
	}
	if w := orochi.HotCRPWorkload(); len(w.Requests) < 40000 {
		t.Fatalf("hotcrp workload size = %d", len(w.Requests))
	}
}
