package orochi_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"orochi"
)

// ExampleHTTPHandler fronts a recording executor with real HTTP — the
// paper's deployment model over net/http — then audits the captured
// period.
func ExampleHTTPHandler() {
	prog, err := orochi.CompileApp(map[string]string{
		"hello": `echo "hello " . $_GET["name"];`,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	snap := srv.Snapshot()

	ts := httptest.NewServer(orochi.HTTPHandler(srv))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/hello?name=world")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(string(body))

	res, err := orochi.AuditContext(context.Background(), prog,
		srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", res.Accepted)
	// Output:
	// hello world
	// accepted: true
}

// ExampleHTTPCollector composes the trusted-collector middleware in
// front of an arbitrary serving stack — here the executor behind an
// extra middleware layer — and audits what the collector captured.
func ExampleHTTPCollector() {
	prog, err := orochi.CompileApp(map[string]string{
		"ping": `echo "pong";`,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	snap := srv.Snapshot()

	// Any middleware can sit between the collector and the executor;
	// the collector records the response bytes the client actually
	// receives, so a tampering layer here would flip the audit to
	// REJECT.
	logged := 0
	stack := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		logged++
		orochi.HTTPExecutor(srv).ServeHTTP(w, r)
	})
	ts := httptest.NewServer(orochi.HTTPCollector(srv.Collector, stack))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/ping")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(string(body), logged)

	res, err := orochi.AuditContext(context.Background(), prog,
		srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", res.Accepted)
	// Output:
	// pong 1
	// accepted: true
}

// ExampleAuditContext shows the context-aware audit: a cancelled
// context returns ErrAuditCanceled and no verdict — never a REJECT —
// and re-auditing with a live context yields the uncancelled verdict.
func ExampleAuditContext() {
	prog, err := orochi.CompileApp(map[string]string{
		"inc": `
$n = session_get("n");
if ($n === null) { $n = 0; }
session_set("n", $n + 1);
echo "n=" . ($n + 1);
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
	snap := srv.Snapshot()
	for i := 0; i < 3; i++ {
		srv.Handle(orochi.Input{Script: "inc"})
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // audit abandoned before it starts
	_, err = orochi.AuditContext(ctx, prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	fmt.Println("canceled:", errors.Is(err, orochi.ErrAuditCanceled))

	res, err := orochi.AuditContext(context.Background(), prog,
		srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", res.Accepted)
	// Output:
	// canceled: true
	// accepted: true
}
