// Package orochi is a Go reproduction of "The Efficient Server Audit
// Problem, Deduplicated Re-execution, and the Web" (Tan, Yu, Leners,
// Walfish — SOSP 2017): the SSCO audit algorithms and the OROCHI system
// built on them.
//
// The model: an untrusted executor (the Server here) runs an application
// Program over concurrent requests; a trusted Collector captures the
// trace of requests and responses; the executor also hands back
// untrusted Reports (control-flow groups, per-object operation logs,
// operation counts, and nondeterminism records). Audit verifies —
// several times faster than re-executing naively — that every response
// in the trace is one a correct execution could have produced
// (Soundness), while always accepting honest executions (Completeness).
//
// Quick start:
//
//	prog, _ := orochi.CompileApp(map[string]string{
//	    "hello": `echo "hello " . $_GET["name"];`,
//	})
//	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
//	snap := srv.Snapshot()
//	srv.Handle(orochi.Input{Script: "hello", Get: map[string]string{"name": "world"}})
//	res, _ := orochi.Audit(prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
//	fmt.Println(res.Accepted) // true
//
// The building blocks are exposed as aliases so downstream users can
// compose them directly: the application language (lang), the SQL engine
// (sqlmini), versioned storage (vstore), the SSCO graph algorithms
// (core), and the workload generators used by the paper's evaluation
// (workload, apps).
package orochi

import (
	"orochi/internal/apps"
	"orochi/internal/epoch"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// Program is a compiled application: entry-point scripts plus a global
// function table, in the reproduction's PHP-like language.
type Program = lang.Program

// Input is one client request: the script to invoke plus superglobals.
type Input = trace.Input

// Trace is the collector's ordered record of requests and responses.
type Trace = trace.Trace

// Collector is the trusted middlebox capturing traces.
type Collector = trace.Collector

// Reports is the executor's untrusted report bundle.
type Reports = reports.Reports

// Server is the executor: it serves requests concurrently and, when
// recording, produces reports.
type Server = server.Server

// ServerOptions configures a Server.
type ServerOptions = server.Options

// Snapshot is the persistent-object state at an audit boundary.
type Snapshot = object.Snapshot

// AuditOptions configures the verifier.
type AuditOptions = verifier.Options

// AuditResult is the verdict plus cost decomposition and group stats.
type AuditResult = verifier.Result

// App bundles a sample application's sources and schema.
type App = apps.App

// CompileApp parses application sources (script name -> source).
func CompileApp(files map[string]string) (*Program, error) {
	return lang.Compile(files)
}

// NewServer builds an executor for prog.
func NewServer(prog *Program, opts ServerOptions) *Server {
	return server.New(prog, opts)
}

// NewCollector builds a standalone trace collector (the Server embeds
// one already; use this when fronting your own execution stack).
func NewCollector() *Collector {
	return trace.NewCollector()
}

// Audit verifies that the responses in tr are consistent with executing
// prog over the requests in tr, given the untrusted reports and the
// trusted initial object state. It implements SSCO_AUDIT2 (Fig. 12 of
// the paper): balanced-trace validation, consistent-ordering checks,
// versioned redo, grouped SIMD-on-demand re-execution with
// simulate-and-check, and output comparison.
func Audit(prog *Program, tr *Trace, rep *Reports, init *Snapshot, opts AuditOptions) (*AuditResult, error) {
	return verifier.Audit(prog, tr, rep, init, opts)
}

// OOOAudit is the Appendix A out-of-order audit: it re-executes each
// request individually, stepping request goroutines through a
// topological sort of the event graph. Same verdicts as Audit, no
// grouping acceleration — useful as an independent cross-check.
func OOOAudit(prog *Program, tr *Trace, rep *Reports, init *Snapshot) (*AuditResult, error) {
	return verifier.OOOAudit(prog, tr, rep, init)
}

// PatchResult classifies each audited request under a patched program.
type PatchResult = verifier.PatchResult

// Patch classifications (see verifier.PatchClass).
const (
	PatchUnchangedClass    = verifier.PatchUnchanged
	PatchChangedClass      = verifier.PatchChanged
	PatchInconclusiveClass = verifier.PatchInconclusive
)

// PatchAudit implements patch-based auditing (§7, after Poirot): replay
// an audited period against a patched program and report which responses
// would have differed (unchanged / changed / inconclusive).
func PatchAudit(patched *Program, tr *Trace, rep *Reports, init *Snapshot) (*PatchResult, error) {
	return verifier.PatchAudit(patched, tr, rep, init)
}

// EpochManager runs the online half of the epoch pipeline: it streams
// the collector's trace into durable, checksummed, append-only log
// segments and seals serving periods ("epochs") behind content-digest
// manifests chained by hash, without pausing serving.
type EpochManager = epoch.Manager

// EpochManagerOptions tunes epoch rotation and the segmented log.
type EpochManagerOptions = epoch.ManagerOptions

// EpochAuditor verifies a chain of sealed epochs — continuously, in the
// background, concurrently with serving — threading each epoch's
// verified final snapshot into the next epoch's trusted initial state.
type EpochAuditor = epoch.Auditor

// EpochAuditorOptions configures a chain auditor.
type EpochAuditorOptions = epoch.AuditorOptions

// EpochVerdict is one entry of the audit ledger.
type EpochVerdict = epoch.Verdict

// EpochLogWriter is the durable segmented write-ahead log under the
// epoch pipeline: length-prefixed, CRC-checksummed, gzip-framed records
// in rotating append-only segments with torn-tail recovery.
type EpochLogWriter = epoch.LogWriter

// EpochLogWriterOptions tunes segment rotation and batching.
type EpochLogWriterOptions = epoch.LogWriterOptions

// StartEpochManager begins epoch-segmented serving for srv (which must
// record reports) with init as the first epoch's trusted initial
// snapshot. See epoch.StartManager.
func StartEpochManager(dir string, srv *Server, init *Snapshot, opts EpochManagerOptions) (*EpochManager, error) {
	return epoch.StartManager(dir, srv, init, opts)
}

// NewEpochAuditor builds a background auditor over the sealed epoch
// chain in dir.
func NewEpochAuditor(prog *Program, dir string, opts EpochAuditorOptions) *EpochAuditor {
	return epoch.NewAuditor(prog, dir, opts)
}

// SampleApps returns the paper's three evaluation applications —
// a MediaWiki-like wiki, a phpBB-like forum, and a HotCRP-like review
// system — reimplemented for this reproduction.
func SampleApps() []*App {
	return apps.All()
}

// WikiWorkload, ForumWorkload and HotCRPWorkload generate the §5
// evaluation workloads at the paper's default parameters.
func WikiWorkload() *workload.Workload { return workload.Wiki(workload.DefaultWikiParams()) }

// ForumWorkload generates the phpBB workload (§5).
func ForumWorkload() *workload.Workload { return workload.Forum(workload.DefaultForumParams()) }

// HotCRPWorkload generates the HotCRP workload (§5).
func HotCRPWorkload() *workload.Workload { return workload.HotCRP(workload.DefaultHotCRPParams()) }

// WithErrors mixes faulting requests (unknown script, undefined
// function, bad SQL) into a workload at the given rate. Faulted
// requests are first-class auditable outcomes: an honest period
// containing them still ACCEPTs.
func WithErrors(w *workload.Workload, rate float64, seed int64) *workload.Workload {
	return workload.WithErrors(w, workload.ErrorMixParams{Rate: rate, Seed: seed})
}

// RenderFault renders a runtime fault as the canonical error-response
// body the server serves and the verifier reproduces during the audit.
func RenderFault(err error) string { return lang.RenderFault(err) }
