// Package orochi is a Go reproduction of "The Efficient Server Audit
// Problem, Deduplicated Re-execution, and the Web" (Tan, Yu, Leners,
// Walfish — SOSP 2017): the SSCO audit algorithms and the OROCHI system
// built on them.
//
// The model: an untrusted executor (the Server here) runs an application
// Program over concurrent requests; a trusted Collector captures the
// trace of requests and responses; the executor also hands back
// untrusted Reports (control-flow groups, per-object operation logs,
// operation counts, and nondeterminism records). Audit verifies —
// several times faster than re-executing naively — that every response
// in the trace is one a correct execution could have produced
// (Soundness), while always accepting honest executions (Completeness).
//
// Quick start — the HTTP-native front door (the paper's deployment
// model: a trusted collector in front of a real web server):
//
//	prog, _ := orochi.CompileApp(map[string]string{
//	    "hello": `echo "hello " . $_GET["name"];`,
//	})
//	srv := orochi.NewServer(prog, orochi.ServerOptions{Record: true})
//	snap := srv.Snapshot()
//	ts := httptest.NewServer(orochi.HTTPHandler(srv))
//	defer ts.Close()
//	http.Get(ts.URL + "/hello?name=world") // real HTTP traffic
//	res, _ := orochi.AuditContext(ctx, prog, srv.Trace(), srv.Reports(), snap, orochi.AuditOptions{})
//	fmt.Println(res.Accepted) // true
//
// In-process srv.Handle calls record identically — the HTTP layer is a
// canonical mapping, not a requirement. Audits take a context.Context
// and are cancellable (ErrAuditCanceled, never a spurious verdict) and
// observable (AuditObserver).
//
// The building blocks are exposed as aliases so downstream users can
// compose them directly: the application language (lang), the SQL engine
// (sqlmini), versioned storage (vstore), the SSCO graph algorithms
// (core), and the workload generators used by the paper's evaluation
// (workload, apps).
package orochi

import (
	"context"
	"net/http"

	"orochi/internal/apps"
	"orochi/internal/console"
	"orochi/internal/epoch"
	"orochi/internal/httpfront"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// Program is a compiled application: entry-point scripts plus a global
// function table, in the reproduction's PHP-like language.
type Program = lang.Program

// Input is one client request: the script to invoke plus superglobals.
type Input = trace.Input

// Trace is the collector's ordered record of requests and responses.
type Trace = trace.Trace

// Collector is the trusted middlebox capturing traces.
type Collector = trace.Collector

// Reports is the executor's untrusted report bundle.
type Reports = reports.Reports

// Server is the executor: it serves requests concurrently and, when
// recording, produces reports.
type Server = server.Server

// ServerOptions configures a Server.
type ServerOptions = server.Options

// Snapshot is the persistent-object state at an audit boundary.
type Snapshot = object.Snapshot

// AuditOptions configures the verifier.
type AuditOptions = verifier.Options

// AuditResult is the verdict plus cost decomposition and group stats.
type AuditResult = verifier.Result

// App bundles a sample application's sources and schema.
type App = apps.App

// Engine is a language execution engine. Two ship with the package —
// EngineInterp (the tree-walking reference) and EngineCompiled (the
// closure-compiled default) — with bit-identical observable behavior:
// digests, outputs, fault renderings, reports and verdicts do not
// depend on the choice. Select one via ServerOptions.Engine /
// AuditOptions.Engine, or by name with EngineByName.
type Engine = lang.Engine

// The two engine implementations; see Engine.
var (
	EngineInterp   = lang.EngineInterp
	EngineCompiled = lang.EngineCompiled
)

// EngineByName resolves a CLI engine name ("interp", "compiled"; ""
// means the default, compiled).
func EngineByName(name string) (Engine, error) {
	return lang.EngineByName(name)
}

// CompileApp parses application sources (script name -> source) through
// a process-wide content-keyed cache: identical sources return the same
// *Program, so the server and the verifier share one compiled program
// (and the compiled engine's once-lowered form) instead of recompiling
// per component. Cache counters are exported at /-/metrics as
// orochi_lang_cache_{hits,misses}.
func CompileApp(files map[string]string) (*Program, error) {
	return lang.CompileCached(files)
}

// NewServer builds an executor for prog.
func NewServer(prog *Program, opts ServerOptions) *Server {
	return server.New(prog, opts)
}

// NewCollector builds a standalone trace collector (the Server embeds
// one already; use this when fronting your own execution stack).
func NewCollector() *Collector {
	return trace.NewCollector()
}

// AuditContext verifies that the responses in tr are consistent with
// executing prog over the requests in tr, given the untrusted reports
// and the trusted initial object state. It implements SSCO_AUDIT2
// (Fig. 12 of the paper): balanced-trace validation,
// consistent-ordering checks, versioned redo, grouped SIMD-on-demand
// re-execution with simulate-and-check, and output comparison.
//
// Cancelling ctx abandons the audit with an error matching
// ErrAuditCanceled and produces no verdict — re-auditing later yields
// exactly the verdict the uncancelled run would have reached. Install
// an AuditObserver via AuditOptions.Observer to watch progress.
func AuditContext(ctx context.Context, prog *Program, tr *Trace, rep *Reports, init *Snapshot, opts AuditOptions) (*AuditResult, error) {
	return verifier.AuditContext(ctx, prog, tr, rep, init, opts)
}

// Audit runs AuditContext with a background context.
//
// Deprecated: use AuditContext, which supports cancellation and
// progress observation. This wrapper remains so pre-context callers
// keep compiling.
func Audit(prog *Program, tr *Trace, rep *Reports, init *Snapshot, opts AuditOptions) (*AuditResult, error) {
	return verifier.AuditContext(context.Background(), prog, tr, rep, init, opts)
}

// ErrAuditCanceled is returned (wrapped, with the context's cause) by
// the context-aware audits when their context is cancelled mid-flight.
// Cancellation is never a verdict: no REJECT is recorded, and the same
// period can be re-audited later.
var ErrAuditCanceled = verifier.ErrAuditCanceled

// AuditObserver receives progress callbacks from a running audit —
// phase starts and ends, control-flow groups re-executed, operations
// replayed into the versioned stores, and the verdict. Set it via
// AuditOptions.Observer (or EpochAuditorOptions.Observer for the
// background chain auditor). See verifier.Observer for the callback
// contract; with AuditOptions.Workers > 1 some callbacks fire
// concurrently.
type AuditObserver = verifier.Observer

// Audit phase names an AuditObserver sees, in order.
const (
	AuditPhaseProcessOpReports = verifier.PhaseProcessOpReports
	AuditPhaseRedo             = verifier.PhaseRedo
	AuditPhaseReExec           = verifier.PhaseReExec
	AuditPhaseCoverage         = verifier.PhaseCoverage
)

// OOOAuditContext is the Appendix A out-of-order audit: it re-executes
// each request individually, stepping request goroutines through a
// topological sort of the event graph. Same verdicts as AuditContext,
// no grouping acceleration — useful as an independent cross-check.
func OOOAuditContext(ctx context.Context, prog *Program, tr *Trace, rep *Reports, init *Snapshot) (*AuditResult, error) {
	return verifier.OOOAuditContext(ctx, prog, tr, rep, init)
}

// OOOAuditContextOpts is OOOAuditContext with audit options (only
// opts.Engine applies — the OOO audit has no grouping or workers).
func OOOAuditContextOpts(ctx context.Context, prog *Program, tr *Trace, rep *Reports, init *Snapshot, opts AuditOptions) (*AuditResult, error) {
	return verifier.OOOAuditContextOpts(ctx, prog, tr, rep, init, opts)
}

// OOOAudit runs OOOAuditContext with a background context.
//
// Deprecated: use OOOAuditContext, which supports cancellation.
func OOOAudit(prog *Program, tr *Trace, rep *Reports, init *Snapshot) (*AuditResult, error) {
	return verifier.OOOAuditContext(context.Background(), prog, tr, rep, init)
}

// PatchResult classifies each audited request under a patched program.
type PatchResult = verifier.PatchResult

// Patch classifications (see verifier.PatchClass).
const (
	PatchUnchangedClass    = verifier.PatchUnchanged
	PatchChangedClass      = verifier.PatchChanged
	PatchInconclusiveClass = verifier.PatchInconclusive
)

// PatchAuditContext implements patch-based auditing (§7, after Poirot):
// replay an audited period against a patched program and report which
// responses would have differed (unchanged / changed / inconclusive).
func PatchAuditContext(ctx context.Context, patched *Program, tr *Trace, rep *Reports, init *Snapshot) (*PatchResult, error) {
	return verifier.PatchAuditContext(ctx, patched, tr, rep, init)
}

// PatchAuditContextOpts is PatchAuditContext with audit options (only
// opts.Engine applies).
func PatchAuditContextOpts(ctx context.Context, patched *Program, tr *Trace, rep *Reports, init *Snapshot, opts AuditOptions) (*PatchResult, error) {
	return verifier.PatchAuditContextOpts(ctx, patched, tr, rep, init, opts)
}

// PatchAudit runs PatchAuditContext with a background context.
//
// Deprecated: use PatchAuditContext, which supports cancellation.
func PatchAudit(patched *Program, tr *Trace, rep *Reports, init *Snapshot) (*PatchResult, error) {
	return verifier.PatchAuditContext(context.Background(), patched, tr, rep, init)
}

// HTTPHandler is the HTTP-native front door: it returns srv as an
// http.Handler — srv's embedded trusted collector in front of its
// executor, exactly the paper's deployment model (§2) over net/http.
// The URL path names the script, query parameters become $_GET, form
// fields $_POST, cookies $_COOKIE; response status codes derive
// canonically from the body (a canonical fault rendering maps to 500).
// Mount it on any mux; paths under "/-/" stay outside the audited
// surface. Audit artifacts come from srv.Trace() and srv.Reports()
// exactly as with in-process srv.Handle calls.
func HTTPHandler(srv *Server) http.Handler {
	return httpfront.Handler(srv)
}

// HTTPCollector is composable reverse-proxy-style middleware playing
// the trusted collector's role in front of ANY handler: each request
// under the audited surface is recorded into c on arrival and the
// response bytes the client receives are recorded on departure. The
// wrapped handler sees the recorded requestID and parsed input via the
// request context (httpfront.RecordedFrom); HTTPExecutor consumes them,
// and custom stacks can too.
func HTTPCollector(c *Collector, next http.Handler) http.Handler {
	return httpfront.Collector(c, next)
}

// HTTPExecutor returns srv's executor as an http.Handler without a
// collector: under an HTTPCollector it runs the recorded input under
// the trace's requestID, standalone it records through srv's embedded
// collector. Compose middleware between HTTPCollector and HTTPExecutor
// to model a misbehaving serving stack — the collector records what
// the client actually sees.
func HTTPExecutor(srv *Server) http.Handler {
	return httpfront.Exec(srv)
}

// HTTPRequestToInput maps an HTTP request onto the model's Input using
// the canonical mapping shared by HTTPHandler, the CLIs, and the tests.
func HTTPRequestToInput(r *http.Request) (Input, error) {
	return httpfront.RequestToInput(r)
}

// NewHTTPRequest is HTTPRequestToInput's inverse: the HTTP request that
// maps back onto in when received by an HTTPHandler at base.
func NewHTTPRequest(base string, in Input) (*http.Request, error) {
	return httpfront.NewRequest(base, in)
}

// EpochManager runs the online half of the epoch pipeline: it streams
// the collector's trace into durable, checksummed, append-only log
// segments and seals serving periods ("epochs") behind content-digest
// manifests chained by hash, without pausing serving.
type EpochManager = epoch.Manager

// EpochManagerOptions tunes epoch rotation and the segmented log.
type EpochManagerOptions = epoch.ManagerOptions

// EpochAuditor verifies a chain of sealed epochs — continuously, in the
// background, concurrently with serving — threading each epoch's
// verified final snapshot into the next epoch's trusted initial state.
type EpochAuditor = epoch.Auditor

// EpochAuditorOptions configures a chain auditor.
type EpochAuditorOptions = epoch.AuditorOptions

// EpochVerdict is one entry of the audit ledger.
type EpochVerdict = epoch.Verdict

// EpochLogWriter is the durable segmented write-ahead log under the
// epoch pipeline: length-prefixed, CRC-checksummed, gzip-framed records
// in rotating append-only segments with torn-tail recovery.
type EpochLogWriter = epoch.LogWriter

// EpochLogWriterOptions tunes segment rotation and batching.
type EpochLogWriterOptions = epoch.LogWriterOptions

// StartEpochManager begins epoch-segmented serving for srv (which must
// record reports) with init as the first epoch's trusted initial
// snapshot. See epoch.StartManager.
func StartEpochManager(dir string, srv *Server, init *Snapshot, opts EpochManagerOptions) (*EpochManager, error) {
	return epoch.StartManager(dir, srv, init, opts)
}

// NewEpochAuditor builds a background auditor over the sealed epoch
// chain in dir.
func NewEpochAuditor(prog *Program, dir string, opts EpochAuditorOptions) *EpochAuditor {
	return epoch.NewAuditor(prog, dir, opts)
}

// Forensics is the structured evidence behind a REJECT: the failing
// phase and check, the offending request, group/chunk or object/log
// coordinates, and — for output mismatches — the traced-vs-re-executed
// response diff. It is assembled by the same deterministic
// first-failure arbitration as the reject reason, so the record is
// bit-identical at any AuditOptions.Workers setting; find it on
// AuditResult.Forensics and EpochVerdict.Forensics.
type Forensics = verifier.Forensics

// ResponseDiff is the windowed traced-vs-re-executed body comparison
// attached to output-mismatch Forensics.
type ResponseDiff = verifier.ResponseDiff

// EpochDecision is the durable form of one epoch's audit verdict —
// verdict, forensics, timings, chain digest, and the open → acked
// resolution state machine — as persisted in the chain directory's
// decision log (decisions.jsonl).
type EpochDecision = epoch.Decision

// EpochDecisionLog is the append-only, fsynced, restart-surviving
// ACCEPT/REJECT ledger of an epoch chain directory. The background
// auditor appends to it automatically; the console serves verdict
// history and acknowledgements from it.
type EpochDecisionLog = epoch.DecisionLog

// OpenEpochDecisionLog opens (creating if needed) the decision log in
// an epoch chain directory and replays it into memory.
func OpenEpochDecisionLog(dir string) (*EpochDecisionLog, error) {
	return epoch.OpenDecisionLog(dir)
}

// ReadEpochDecisions replays an epoch chain's decision log read-only
// and returns every stored decision in epoch order (fs.ErrNotExist when
// the chain has no log) — the offline inspection path behind
// orochi-audit -explain.
func ReadEpochDecisions(dir string) ([]EpochDecision, error) {
	return epoch.ReadDecisions(dir)
}

// Console is the operations surface: one http.Handler under "/-/"
// serving Prometheus metrics (/-/metrics), live counters (/-/stats),
// the epoch timeline and verdict ledger (/-/epochs, /-/api/...), and a
// minimal HTML overview. Every component is optional.
type Console = console.Console

// ConsoleOptions selects which live components a Console exposes.
type ConsoleOptions = console.Options

// NewConsole builds an operations console over the given components;
// mount NewConsole(...).Handler() with HTTPWithControl.
func NewConsole(opts ConsoleOptions) *Console {
	return console.New(opts)
}

// HTTPWithControl composes the complete front door: control (typically
// a Console's handler) under "/-/", the audited handler everywhere
// else.
func HTTPWithControl(control, audited http.Handler) http.Handler {
	return httpfront.WithControl(control, audited)
}

// SampleApps returns the paper's three evaluation applications —
// a MediaWiki-like wiki, a phpBB-like forum, and a HotCRP-like review
// system — reimplemented for this reproduction.
func SampleApps() []*App {
	return apps.All()
}

// WikiWorkload, ForumWorkload and HotCRPWorkload generate the §5
// evaluation workloads at the paper's default parameters.
func WikiWorkload() *workload.Workload { return workload.Wiki(workload.DefaultWikiParams()) }

// ForumWorkload generates the phpBB workload (§5).
func ForumWorkload() *workload.Workload { return workload.Forum(workload.DefaultForumParams()) }

// HotCRPWorkload generates the HotCRP workload (§5).
func HotCRPWorkload() *workload.Workload { return workload.HotCRP(workload.DefaultHotCRPParams()) }

// WithErrors mixes faulting requests (unknown script, undefined
// function, bad SQL) into a workload at the given rate. Faulted
// requests are first-class auditable outcomes: an honest period
// containing them still ACCEPTs.
func WithErrors(w *workload.Workload, rate float64, seed int64) *workload.Workload {
	return workload.WithErrors(w, workload.ErrorMixParams{Rate: rate, Seed: seed})
}

// RenderFault renders a runtime fault as the canonical error-response
// body the server serves and the verifier reproduces during the audit.
func RenderFault(err error) string { return lang.RenderFault(err) }
