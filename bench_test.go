// Benchmarks regenerating the paper's evaluation (§5): one benchmark
// family per table/figure. Workloads are scaled down so `go test
// -bench=.` completes quickly; cmd/orochi-bench runs the paper-sized
// versions and prints the corresponding tables.
//
//	Fig. 8 (left table)  – BenchmarkFig8Audit*, BenchmarkFig8Serve*
//	Fig. 8 (right graph) – BenchmarkFig8Latency (full version in cmd)
//	Fig. 9               – BenchmarkFig9Phases*
//	Fig. 10              – BenchmarkFig10*
//	Fig. 11              – BenchmarkFig11GroupStats
//	§3.5 / §A.8 claim    – BenchmarkFrontier*
//	§4.5 dedup claim     – BenchmarkQueryDedup*
package orochi_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"orochi/internal/core"
	"orochi/internal/harness"
	"orochi/internal/lang"
	"orochi/internal/sqlmini"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/vstore"
	"orochi/internal/workload"
)

// benchScale shrinks the paper workloads for in-CI benchmarking.
const benchScale = 20

func benchWorkloads() map[string]*workload.Workload {
	return map[string]*workload.Workload{
		"Wiki":   workload.Wiki(workload.DefaultWikiParams().Scale(benchScale)),
		"Forum":  workload.Forum(workload.DefaultForumParams().Scale(benchScale)),
		"HotCRP": workload.HotCRP(workload.DefaultHotCRPParams().Scale(benchScale)),
	}
}

// --- Fig. 8 left: audit speedup ---

func benchFig8Audit(b *testing.B, w *workload.Workload) {
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	base, err := harness.BaselineReplay(w, served)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *verifier.Result
	for i := 0; i < b.N; i++ {
		// Workers defaults to all CPUs: speedup_x measures the full
		// engine (dedup × parallelism) against single-core naive
		// re-execution. BenchmarkAuditWorkers* isolates the scaling.
		res, err := served.Audit(verifier.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accepted {
			b.Fatalf("audit rejected: %s", res.Reason)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(base)/float64(last.Stats.Total), "speedup_x")
	b.ReportMetric(float64(last.Stats.Total.Microseconds())/float64(served.Requests), "audit_us/req")
	sizes, err := served.Sizes()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sizes.ReportBytes)/float64(served.Requests), "report_B/req")
}

func BenchmarkFig8AuditWiki(b *testing.B)   { benchFig8Audit(b, benchWorkloads()["Wiki"]) }
func BenchmarkFig8AuditForum(b *testing.B)  { benchFig8Audit(b, benchWorkloads()["Forum"]) }
func BenchmarkFig8AuditHotCRP(b *testing.B) { benchFig8Audit(b, benchWorkloads()["HotCRP"]) }

// --- Parallel audit engine: worker-pool scaling (cmd/orochi-bench
// -fig workers runs the paper-sized sweep) ---

func benchAuditWorkers(b *testing.B, w *workload.Workload) {
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := served.Audit(verifier.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Accepted {
					b.Fatalf("audit rejected: %s", res.Reason)
				}
			}
		})
	}
}

func BenchmarkAuditWorkersWiki(b *testing.B)  { benchAuditWorkers(b, benchWorkloads()["Wiki"]) }
func BenchmarkAuditWorkersForum(b *testing.B) { benchAuditWorkers(b, benchWorkloads()["Forum"]) }

// --- Fig. 8 left: server CPU overhead (baseline vs recording) ---

func benchFig8Serve(b *testing.B, w *workload.Workload, record bool) {
	prog := w.App.Compile()
	_ = prog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := harness.ServeConfig{Record: record, Concurrency: 8}
		b.StartTimer()
		if _, err := harness.Serve(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ServeBaselineWiki(b *testing.B) { benchFig8Serve(b, benchWorkloads()["Wiki"], false) }
func BenchmarkFig8ServeOrochiWiki(b *testing.B)   { benchFig8Serve(b, benchWorkloads()["Wiki"], true) }
func BenchmarkFig8ServeBaselineForum(b *testing.B) {
	benchFig8Serve(b, benchWorkloads()["Forum"], false)
}
func BenchmarkFig8ServeOrochiForum(b *testing.B) { benchFig8Serve(b, benchWorkloads()["Forum"], true) }
func BenchmarkFig8ServeBaselineHotCRP(b *testing.B) {
	benchFig8Serve(b, benchWorkloads()["HotCRP"], false)
}
func BenchmarkFig8ServeOrochiHotCRP(b *testing.B) {
	benchFig8Serve(b, benchWorkloads()["HotCRP"], true)
}

// --- Sharded serving path: throughput vs in-flight requests ---

// BenchmarkServeConcurrency sweeps ServeAll concurrency for the
// recording executor on the lock-striped serving path (object-store
// shards, striped recorder, RW database lock, lock-free server stats).
// On a multi-core runner req/s should rise with the goroutine count
// instead of flat-lining on global mutexes; the "/shards=1" variants pin
// the single-stripe reference. cmd/orochi-bench -fig serve prints the
// paper-sized comparison table.
func BenchmarkServeConcurrency(b *testing.B) {
	w := benchWorkloads()["Forum"]
	widths := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		widths = append(widths, n)
	}
	for _, shards := range []int{1, 0} {
		label := "sharded"
		if shards == 1 {
			label = "shards=1"
		}
		for _, conc := range widths {
			b.Run(fmt.Sprintf("%s/c=%d", label, conc), func(b *testing.B) {
				var reqs int
				var wall float64
				for i := 0; i < b.N; i++ {
					served, err := harness.Serve(w, harness.ServeConfig{
						Record: true, Concurrency: conc, Shards: shards,
					})
					if err != nil {
						b.Fatal(err)
					}
					reqs += served.Requests
					wall += served.ServeWall.Seconds()
				}
				b.ReportMetric(float64(reqs)/wall, "req/s")
			})
		}
	}
}

// --- Execution engines: interp vs compiled on the same workload ---

// BenchmarkEngineServe pins the tentpole speedup claim: the same
// recording serve, once per engine. Allocations are reported so pooling
// regressions in the compiled engine surface here.
func BenchmarkEngineServe(b *testing.B) {
	w := benchWorkloads()["Wiki"]
	for _, name := range lang.Engines() {
		eng, err := lang.EngineByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var reqs int
			var cpu float64
			for i := 0; i < b.N; i++ {
				served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8, Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				reqs += served.Requests
				cpu += float64(served.ServeCPU.Nanoseconds())
			}
			b.ReportMetric(cpu/float64(reqs), "serve_ns/req")
		})
	}
}

// BenchmarkEngineAudit is the Fig-8 audit cost per engine (sequential,
// so the comparison is pure re-execution speed, not scheduling).
func BenchmarkEngineAudit(b *testing.B) {
	w := benchWorkloads()["Wiki"]
	for _, name := range lang.Engines() {
		eng, err := lang.EngineByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8, Engine: eng})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var last *verifier.Result
			for i := 0; i < b.N; i++ {
				res, err := served.Audit(verifier.Options{Workers: 1, Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Accepted {
					b.Fatalf("audit rejected: %s", res.Reason)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.Total.Nanoseconds())/float64(served.Requests), "audit_ns/req")
		})
	}
}

// BenchmarkEngineInstr runs a few Fig-10 instruction loops under each
// engine directly against lang.Run — the tightest view of the lowering
// win, without server or verifier machinery around it.
func BenchmarkEngineInstr(b *testing.B) {
	for _, cat := range []string{"GetVal", "Multiply", "Iteration"} {
		prog := lang.MustCompileCached(map[string]string{"m": fig10Script(fig10Bodies[cat])})
		for _, name := range lang.Engines() {
			eng, err := lang.EngineByName(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := lang.Config{
				Mode: lang.ModePlain, Script: "m", RIDs: []string{"r"},
				Inputs: []lang.RequestInput{{Get: map[string]string{"seed": "5"}}},
				Engine: eng,
			}
			b.Run(cat+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := lang.Run(prog, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineSIMD is BenchmarkEngineInstr's multivalent sibling:
// the same Fig-10 loops run as one 32-lane SIMD group, uniform (every
// lane identical, the dedup-friendly case) and divergent (per-lane
// seeds force multivalue arithmetic through forLanes). This is the
// Phase-3 shape the engines actually run during an audit.
func BenchmarkEngineSIMD(b *testing.B) {
	const lanes = 32
	for _, variant := range []struct {
		name    string
		seed    func(i int) string
		collect string
	}{
		{"Uniform", func(int) string { return "5" }, "GetVal"},
		{"Divergent", func(i int) string { return fmt.Sprint(i + 1) }, "Multiply"},
	} {
		prog := lang.MustCompileCached(map[string]string{"m": fig10Script(fig10Bodies[variant.collect])})
		rids := make([]string, lanes)
		inputs := make([]lang.RequestInput, lanes)
		for i := range rids {
			rids[i] = fmt.Sprintf("r%03d", i)
			inputs[i] = lang.RequestInput{Get: map[string]string{"seed": variant.seed(i)}}
		}
		for _, name := range lang.Engines() {
			eng, err := lang.EngineByName(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := lang.Config{
				Mode: lang.ModeSIMD, Script: "m", RIDs: rids, Inputs: inputs,
				Bridge: &fig10Bridge{}, Engine: eng,
			}
			b.Run(variant.name+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := lang.Run(prog, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 8 right: latency under load (scaled; full sweep in cmd) ---

func BenchmarkFig8Latency(b *testing.B) {
	w := workload.Forum(workload.DefaultForumParams().Scale(benchScale * 4))
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 16})
	if err != nil {
		b.Fatal(err)
	}
	_ = served
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 9: decomposition of audit-time CPU costs ---

func benchFig9(b *testing.B, w *workload.Workload) {
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *verifier.Result
	for i := 0; i < b.N; i++ {
		// Sequential: the Fig. 9 decomposition reports CPU costs, which
		// only add up on one worker (DBQuery is summed across workers).
		res, err := served.Audit(verifier.Options{Workers: 1})
		if err != nil || !res.Accepted {
			b.Fatalf("audit: %v %v", err, res)
		}
		last = res
	}
	b.StopTimer()
	st := last.Stats
	b.ReportMetric(float64(st.ProcOpRep.Microseconds()), "procopre_us")
	b.ReportMetric(float64(st.DBRedo.Microseconds()), "dbredo_us")
	b.ReportMetric(float64((st.ReExec - st.DBQuery).Microseconds()), "php_us")
	b.ReportMetric(float64(st.DBQuery.Microseconds()), "dbquery_us")
	b.ReportMetric(float64(st.Other.Microseconds()), "other_us")
}

func BenchmarkFig9PhasesWiki(b *testing.B)   { benchFig9(b, benchWorkloads()["Wiki"]) }
func BenchmarkFig9PhasesForum(b *testing.B)  { benchFig9(b, benchWorkloads()["Forum"]) }
func BenchmarkFig9PhasesHotCRP(b *testing.B) { benchFig9(b, benchWorkloads()["HotCRP"]) }

// --- Fig. 10: per-instruction cost, unmodified vs univalent vs multivalent ---

// fig10Bodies holds a loop body per instruction category. $i is the
// (univalue) loop counter, $u a univalue operand, $m an operand that is
// multivalent in the "Multivalent" variants.
var fig10Bodies = map[string]string{
	"Multiply":  `$x = $m * 3;`,
	"Concat":    `$x = $m . "x";`,
	"Isset":     `$x = isset($m);`,
	"Jump":      `if ($u > 0) { $x = 1; }`,
	"GetVal":    `$x = $m;`,
	"ArraySet":  `$arr["k"] = $m;`,
	"Iteration": `foreach ($pair as $v) { $x = $v; }`,
	"Microtime": `$x = microtime();`,
	"Increment": `$m++;`,
	"NewArray":  `$x = [];`,
}

func fig10Script(body string) string {
	return `
$u = 7;
$m = intval($_GET["seed"]);
$arr = [];
$pair = [1, 2];
for ($i = 0; $i < 1000; $i++) {
  ` + body + `
}
echo "done";
`
}

// fig10Bridge replays scripted nondeterminism for SIMD lanes.
type fig10Bridge struct{ n int64 }

func (b *fig10Bridge) RegisterRead(string, int, string) (lang.Value, error) { return nil, nil }
func (b *fig10Bridge) RegisterWrite(string, int, string, lang.Value) error  { return nil }
func (b *fig10Bridge) KvGet(string, int, string) (lang.Value, error)        { return nil, nil }
func (b *fig10Bridge) KvSet(string, int, string, lang.Value) error          { return nil }
func (b *fig10Bridge) DBOp(string, int, []string) (lang.Value, error)       { return lang.NewArray(), nil }
func (b *fig10Bridge) NonDet(rid, fn string, _ []lang.Value) (lang.Value, error) {
	b.n++
	return float64(b.n), nil
}

func benchFig10(b *testing.B, category string, mode string, lanes int) {
	prog := lang.MustCompile(map[string]string{"m": fig10Script(fig10Bodies[category])})
	var cfgs []lang.Config
	switch mode {
	case "Unmodified":
		cfgs = append(cfgs, lang.Config{
			Mode: lang.ModePlain, Script: "m", RIDs: []string{"r"},
			Inputs: []lang.RequestInput{{Get: map[string]string{"seed": "5"}}},
		})
	case "Univalent":
		// SIMD runtime, identical operands across lanes: everything
		// collapses and executes once.
		rids := make([]string, lanes)
		ins := make([]lang.RequestInput, lanes)
		for i := range rids {
			rids[i] = fmt.Sprintf("r%d", i)
			ins[i] = lang.RequestInput{Get: map[string]string{"seed": "5"}}
		}
		cfgs = append(cfgs, lang.Config{
			Mode: lang.ModeSIMD, Script: "m", RIDs: rids, Inputs: ins, Bridge: &fig10Bridge{},
		})
	case "Multivalent":
		// SIMD runtime, per-lane distinct operands.
		rids := make([]string, lanes)
		ins := make([]lang.RequestInput, lanes)
		for i := range rids {
			rids[i] = fmt.Sprintf("r%d", i)
			ins[i] = lang.RequestInput{Get: map[string]string{"seed": fmt.Sprint(i + 1)}}
		}
		cfgs = append(cfgs, lang.Config{
			Mode: lang.ModeSIMD, Script: "m", RIDs: rids, Inputs: ins, Bridge: &fig10Bridge{},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := lang.Run(prog, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for _, cat := range []string{
		"Multiply", "Concat", "Isset", "Jump", "GetVal",
		"ArraySet", "Iteration", "Microtime", "Increment", "NewArray",
	} {
		b.Run(cat+"/Unmodified", func(b *testing.B) { benchFig10(b, cat, "Unmodified", 1) })
		b.Run(cat+"/Univalent", func(b *testing.B) { benchFig10(b, cat, "Univalent", 4) })
		b.Run(cat+"/Multivalent2", func(b *testing.B) { benchFig10(b, cat, "Multivalent", 2) })
		b.Run(cat+"/Multivalent16", func(b *testing.B) { benchFig10(b, cat, "Multivalent", 16) })
	}
}

// --- Fig. 11: control-flow group characteristics ---

func BenchmarkFig11GroupStats(b *testing.B) {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(benchScale))
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *verifier.Result
	for i := 0; i < b.N; i++ {
		res, err := served.Audit(verifier.Options{CollectStats: true})
		if err != nil || !res.Accepted {
			b.Fatalf("audit: %v", err)
		}
		last = res
	}
	b.StopTimer()
	groups := last.Stats.Groups
	nBig := 0
	var alphaSum float64
	for _, g := range groups {
		if g.N > 1 {
			nBig++
		}
		alphaSum += g.Alpha
	}
	b.ReportMetric(float64(len(groups)), "groups")
	b.ReportMetric(float64(nBig), "groups_n>1")
	b.ReportMetric(alphaSum/float64(len(groups)), "mean_alpha")
}

// --- §3.5/§A.8: frontier algorithm vs quadratic baseline ---

func syntheticTrace(nReq, lanes int) *trace.Trace {
	// lanes concurrent requests at a time, epoch-structured.
	var evs []trace.Event
	var clock int64
	for e := 0; e < nReq/lanes; e++ {
		for p := 0; p < lanes; p++ {
			clock++
			evs = append(evs, trace.Event{Kind: trace.Request, RID: fmt.Sprintf("e%dp%d", e, p), Time: clock})
		}
		for p := 0; p < lanes; p++ {
			clock++
			evs = append(evs, trace.Event{Kind: trace.Response, RID: fmt.Sprintf("e%dp%d", e, p), Time: clock})
		}
	}
	return &trace.Trace{Events: evs}
}

func BenchmarkFrontier(b *testing.B) {
	for _, size := range []int{1000, 10000} {
		for _, lanes := range []int{1, 8, 32} {
			tr := syntheticTrace(size, lanes)
			b.Run(fmt.Sprintf("X%d_P%d", size, lanes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.CreateTimePrecedenceGraph(tr); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFrontierQuadraticBaseline(b *testing.B) {
	// The prior-work-style baseline; kept small because it is O(X^3) in
	// the worst case with the pairwise reduction.
	tr := syntheticTrace(600, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CreateTimePrecedenceGraphQuadratic(tr)
	}
}

// --- §4.5: read-query dedup ablation ---

func dedupFixture(b *testing.B) *vstore.VersionedDB {
	v := vstore.NewVersionedDB()
	if err := v.ApplyTxn(0, []string{`CREATE TABLE t (id INT, g INT, s TEXT)`}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 500; i++ {
		stmt := fmt.Sprintf(`INSERT INTO t (id, g, s) VALUES (%d, %d, %s)`,
			i, i%7, sqlmini.Quote(fmt.Sprintf("row %d", rng.Int63())))
		if err := v.ApplyTxn(int64(i), []string{stmt}); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

func BenchmarkQueryDedupOn(b *testing.B) {
	v := dedupFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := vstore.NewQueryCache(v)
		// 200 identical queries after the last write: one execution.
		for q := 0; q < 200; q++ {
			if _, err := cache.Query(`SELECT id, s FROM t WHERE g = 3`, vstore.Ts(501, 0)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkQueryDedupOff(b *testing.B) {
	v := dedupFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < 200; q++ {
			if _, err := v.QuerySQL(`SELECT id, s FROM t WHERE g = 3`, vstore.Ts(501, 0)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation: what does grouping buy? (grouped SIMD vs Appendix A's
// per-request out-of-order audit, which shares every other mechanism) ---

func BenchmarkAblationGroupedAudit(b *testing.B) {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(benchScale))
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Sequential, so the ablation isolates grouping against the
		// (unparallelized) OOO audit rather than measuring worker count.
		res, err := served.Audit(verifier.Options{Workers: 1})
		if err != nil || !res.Accepted {
			b.Fatalf("%v %v", err, res)
		}
	}
}

func BenchmarkAblationOOOAudit(b *testing.B) {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(benchScale))
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verifier.OOOAudit(served.Program, served.Trace, served.Reports, served.Snapshot)
		if err != nil || !res.Accepted {
			b.Fatalf("%v %v", err, res)
		}
	}
}

// --- End-to-end audit throughput on the public API ---

func BenchmarkAuditSmall(b *testing.B) {
	w := workload.Wiki(workload.WikiParams{Requests: 200, Pages: 20, ZipfS: 0.53, Seed: 9})
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := served.Audit(verifier.Options{})
		if err != nil || !res.Accepted {
			b.Fatal(err)
		}
	}
}
