package cas

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChunkerReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 300<<10)
	rng.Read(data)
	chunks := DefaultChunker.Split(data)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks for %d bytes, got %d", len(data), len(chunks))
	}
	var back []byte
	for _, c := range chunks {
		if len(c) > DefaultChunker.Max {
			t.Fatalf("chunk of %d bytes exceeds max %d", len(c), DefaultChunker.Max)
		}
		back = append(back, c...)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("chunk concatenation does not reproduce input")
	}
	// All but the last chunk must respect the minimum.
	for i, c := range chunks[:len(chunks)-1] {
		if len(c) < DefaultChunker.Min {
			t.Fatalf("chunk %d is %d bytes, below min %d", i, len(c), DefaultChunker.Min)
		}
	}
}

func TestChunkerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 100<<10)
	rng.Read(data)
	a := DefaultChunker.Split(data)
	b := DefaultChunker.Split(data)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

func TestChunkerShiftResistance(t *testing.T) {
	// Content-defined cuts: prepending bytes must not reshuffle every
	// downstream chunk the way fixed-size blocks would.
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 200<<10)
	rng.Read(data)
	orig := DefaultChunker.Split(data)
	shifted := DefaultChunker.Split(append([]byte("prefix!"), data...))
	origSet := make(map[string]bool, len(orig))
	for _, c := range orig {
		origSet[SumHex(c)] = true
	}
	shared := 0
	for _, c := range shifted {
		if origSet[SumHex(c)] {
			shared++
		}
	}
	if shared < len(orig)/2 {
		t.Fatalf("only %d of %d chunks survived a 7-byte prefix shift", shared, len(orig))
	}
}

func TestChunkerEmptyAndTiny(t *testing.T) {
	if got := DefaultChunker.Split(nil); len(got) != 0 {
		t.Fatalf("empty input produced %d chunks", len(got))
	}
	tiny := []byte("hello")
	chunks := DefaultChunker.Split(tiny)
	if len(chunks) != 1 || !bytes.Equal(chunks[0], tiny) {
		t.Fatalf("tiny input should be one chunk, got %d", len(chunks))
	}
}

func storeImpls(t *testing.T) map[string]Store {
	fsStore, err := OpenFS(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"fs":     fsStore,
		"memory": NewMemory(),
		"tiered": &Tiered{Hot: NewMemory(), Cold: NewMemory()},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("the quick brown fox")
			sha := SumHex(data)
			if s.Has(sha) {
				t.Fatal("chunk present before Put")
			}
			if err := s.Put(sha, data); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(sha, data); err != nil {
				t.Fatalf("idempotent re-Put failed: %v", err)
			}
			if !s.Has(sha) {
				t.Fatal("chunk missing after Put")
			}
			got, err := s.Get(sha)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get returned %q, want %q", got, data)
			}
			shas, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(shas) != 1 || shas[0] != sha {
				t.Fatalf("List = %v, want [%s]", shas, sha)
			}
			if err := s.Delete(sha); err != nil {
				t.Fatal(err)
			}
			if s.Has(sha) {
				t.Fatal("chunk present after Delete")
			}
			if err := s.Delete(sha); err != nil {
				t.Fatalf("double Delete should be a no-op: %v", err)
			}
			if _, err := s.Get(sha); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestFSDetectsCorruptChunk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cas")
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("orochi audits forever "), 400)
	sha := SumHex(data)
	if err := s.Put(sha, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, sha[:2], sha)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(sha); err == nil {
		t.Fatal("Get returned corrupt chunk without error")
	} else if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "hash to") {
		t.Fatalf("corruption error does not describe the failure: %v", err)
	}
}

func TestWriteReadBlob(t *testing.T) {
	s := NewMemory()
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 150<<10)
	rng.Read(data)
	refs, err := WriteBlob(s, DefaultChunker, data)
	if err != nil {
		t.Fatal(err)
	}
	if BlobBytes(refs) != int64(len(data)) {
		t.Fatalf("BlobBytes = %d, want %d", BlobBytes(refs), len(data))
	}
	back, err := ReadBlob(s, refs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("ReadBlob does not reproduce the blob")
	}
}

func TestWriteBlobDedupsRepeats(t *testing.T) {
	s := NewMemory()
	page := make([]byte, 40<<10)
	rand.New(rand.NewSource(19)).Read(page)
	blob := bytes.Repeat(page, 8)
	refs, err := WriteBlob(s, DefaultChunker, blob)
	if err != nil {
		t.Fatal(err)
	}
	unique := make(map[string]bool)
	for _, r := range refs {
		unique[r.SHA256] = true
	}
	if len(unique) >= len(refs) {
		t.Fatalf("repeated content produced no duplicate refs (%d refs, %d unique)", len(refs), len(unique))
	}
	stored, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(unique) {
		t.Fatalf("store holds %d chunks, want %d unique", len(stored), len(unique))
	}
}

func TestReadBlobNamesBadChunk(t *testing.T) {
	s := NewMemory()
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 60<<10)
	rng.Read(data)
	refs, err := WriteBlob(s, DefaultChunker, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 2 {
		t.Fatalf("need at least 2 chunks, got %d", len(refs))
	}
	victim := refs[1]

	// Missing chunk.
	if err := s.Delete(victim.SHA256); err != nil {
		t.Fatal(err)
	}
	_, err = ReadBlob(s, refs)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("ReadBlob with missing chunk = %v, want *ChunkError", err)
	}
	if ce.Digest != victim.SHA256 || ce.Index != 1 {
		t.Fatalf("ChunkError names %s@%d, want %s@1", ce.Digest, ce.Index, victim.SHA256)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing chunk error should wrap ErrNotFound: %v", err)
	}

	// Corrupt chunk.
	if err := s.Put(victim.SHA256, data[:victim.Bytes]); err != nil {
		t.Fatal(err)
	}
	s.Corrupt(victim.SHA256)
	_, err = ReadBlob(s, refs)
	if !errors.As(err, &ce) {
		t.Fatalf("ReadBlob with corrupt chunk = %v, want *ChunkError", err)
	}
	if ce.Digest != victim.SHA256 {
		t.Fatalf("ChunkError names %s, want %s", ce.Digest, victim.SHA256)
	}
}

func TestTieredPromotesColdHits(t *testing.T) {
	hot, cold := NewMemory(), NewMemory()
	tiered := &Tiered{Hot: hot, Cold: cold}
	data := []byte("cold chunk")
	sha := SumHex(data)
	if err := cold.Put(sha, data); err != nil {
		t.Fatal(err)
	}
	if hot.Has(sha) {
		t.Fatal("hot tier should start empty")
	}
	got, err := tiered.Get(sha)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("tiered Get = %q", got)
	}
	if !hot.Has(sha) {
		t.Fatal("cold hit was not promoted to the hot tier")
	}
	// Puts must land in the cold tier of record.
	data2 := []byte("fresh chunk")
	sha2 := SumHex(data2)
	if err := tiered.Put(sha2, data2); err != nil {
		t.Fatal(err)
	}
	if !cold.Has(sha2) {
		t.Fatal("Put did not reach the cold tier of record")
	}
}

func TestFSStats(t *testing.T) {
	s, err := OpenFS(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("compressible content for the stats walk. "), 2000)
	refs, err := WriteBlob(s, DefaultChunker, blob)
	if err != nil {
		t.Fatal(err)
	}
	chunks, stored, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	unique := make(map[string]bool)
	for _, r := range refs {
		unique[r.SHA256] = true
	}
	if chunks != len(unique) {
		t.Fatalf("Stats chunks = %d, want %d", chunks, len(unique))
	}
	if stored <= 0 {
		t.Fatalf("Stats storedBytes = %d", stored)
	}
	if stored >= int64(len(blob)) {
		t.Fatalf("gzip-at-rest stored %d bytes for a %d-byte compressible blob", stored, len(blob))
	}
}

func TestFSPutConcurrentSameDigest(t *testing.T) {
	// The Store contract: Put is atomic and idempotent, and concurrent
	// writers of the same digest must all succeed — losers of the rename
	// race find the winner's identical bytes already in place.
	store, err := OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("same chunk, many writers "), 512)
	sha := SumHex(data)
	const writers = 16
	errs := make(chan error, writers)
	start := make(chan struct{})
	for i := 0; i < writers; i++ {
		go func() {
			<-start
			errs <- store.Put(sha, data)
		}()
	}
	close(start)
	for i := 0; i < writers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent Put failed: %v", err)
		}
	}
	got, err := store.Get(sha)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("chunk unreadable after concurrent Puts: %v", err)
	}
	// No temp debris: every writer either renamed its file in or
	// removed it.
	var stray []string
	err = filepath.Walk(store.Root(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stray) != 0 {
		t.Fatalf("temp files left behind: %v", stray)
	}
}
