package cas

// Tiered layers a fast hot store over a larger cold one — the seam
// where cold epochs move to object storage while a warm auditor keeps
// its working set local. Reads check hot first and promote cold hits;
// writes land in both so the cold tier is always complete (it is the
// tier of record) while the hot tier soaks up re-reads.
type Tiered struct {
	Hot  Store
	Cold Store
}

// Put writes the chunk to the cold tier of record, then mirrors it
// into the hot tier (best effort — a hot-tier failure does not lose
// data).
func (t *Tiered) Put(sha string, data []byte) error {
	if err := t.Cold.Put(sha, data); err != nil {
		return err
	}
	_ = t.Hot.Put(sha, data)
	return nil
}

// Get reads from the hot tier, falling back to cold and promoting the
// chunk on a cold hit.
func (t *Tiered) Get(sha string) ([]byte, error) {
	if data, err := t.Hot.Get(sha); err == nil {
		return data, nil
	}
	data, err := t.Cold.Get(sha)
	if err != nil {
		return nil, err
	}
	_ = t.Hot.Put(sha, data)
	return data, nil
}

// Has reports whether either tier holds the chunk.
func (t *Tiered) Has(sha string) bool {
	return t.Hot.Has(sha) || t.Cold.Has(sha)
}

// List returns the cold tier's digests — the tier of record is
// complete by construction.
func (t *Tiered) List() ([]string, error) {
	return t.Cold.List()
}

// Delete removes the chunk from both tiers.
func (t *Tiered) Delete(sha string) error {
	if err := t.Hot.Delete(sha); err != nil {
		return err
	}
	return t.Cold.Delete(sha)
}
