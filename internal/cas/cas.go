// Package cas is a content-addressed chunk store for sealed epoch
// artifacts. Blobs (segment traces, report bundles, snapshots) are cut
// into content-defined chunks, each keyed by the SHA-256 of its bytes;
// a blob is then just an ordered list of chunk references, and two
// epochs that share logical content (the common case for consecutive
// serving periods) share the chunks themselves. The model follows the
// gapid isolate-server design: writers upload only chunks the store
// lacks, readers verify every chunk against its digest, so integrity
// checking comes for free on every read.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// Ref names one chunk of a blob: the SHA-256 of the chunk's
// (uncompressed) bytes and its length. Length is pinned separately so
// a manifest fixes the exact byte extent of every chunk before any
// store IO happens.
type Ref struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// SumHex returns the lowercase hex SHA-256 of data — the digest form
// used throughout the epoch manifests and the chunk store.
func SumHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ErrNotFound reports a chunk absent from a store.
var ErrNotFound = errors.New("cas: chunk not found")

// ChunkError is the typed failure for a chunk that is missing or whose
// bytes no longer match its digest. It names the offending chunk so
// audit forensics can pin exactly which content-addressed unit was
// lost or altered.
type ChunkError struct {
	Digest string // expected chunk SHA-256
	Index  int    // position within the blob's chunk list
	Err    error  // underlying cause (ErrNotFound, digest mismatch, ...)
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("cas: chunk %d (%s): %v", e.Index, short(e.Digest), e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// Store is the pluggable blob backend. The local filesystem store is
// the only production implementation today; the interface is the seam
// for object storage later. Implementations must make Put atomic and
// idempotent (a chunk is immutable once written) and must tolerate
// concurrent readers and writers.
type Store interface {
	// Put stores data under its digest. Writing a chunk that already
	// exists is a cheap no-op.
	Put(sha string, data []byte) error
	// Get returns the chunk's bytes, verified against sha. A missing
	// chunk yields an error wrapping ErrNotFound; bytes that no longer
	// hash to sha yield a digest-mismatch error.
	Get(sha string) ([]byte, error)
	// Has reports whether the chunk exists (no integrity check).
	Has(sha string) bool
	// List returns the digests of every stored chunk, for GC sweeps.
	List() ([]string, error)
	// Delete removes a chunk. Deleting a missing chunk is a no-op.
	Delete(sha string) error
}

// WriteBlob cuts data into content-defined chunks with c and stores
// each in s, returning the ordered refs that reconstruct the blob.
// Chunks already present are not rewritten — that is the dedup.
func WriteBlob(s Store, c ChunkerOptions, data []byte) ([]Ref, error) {
	chunks := c.Split(data)
	refs := make([]Ref, 0, len(chunks))
	for i, chunk := range chunks {
		sha := SumHex(chunk)
		if !s.Has(sha) {
			if err := s.Put(sha, chunk); err != nil {
				return nil, &ChunkError{Digest: sha, Index: i, Err: err}
			}
		}
		refs = append(refs, Ref{SHA256: sha, Bytes: int64(len(chunk))})
	}
	return refs, nil
}

// ReadBlob reassembles a blob from its ordered chunk refs, verifying
// every chunk's digest and length. Any missing or corrupt chunk
// surfaces as a *ChunkError naming the chunk.
func ReadBlob(s Store, refs []Ref) ([]byte, error) {
	var total int64
	for _, r := range refs {
		total += r.Bytes
	}
	out := make([]byte, 0, total)
	for i, r := range refs {
		data, err := s.Get(r.SHA256)
		if err != nil {
			var ce *ChunkError
			if errors.As(err, &ce) {
				ce.Index = i
				return nil, ce
			}
			return nil, &ChunkError{Digest: r.SHA256, Index: i, Err: err}
		}
		if int64(len(data)) != r.Bytes {
			return nil, &ChunkError{Digest: r.SHA256, Index: i,
				Err: fmt.Errorf("chunk is %d bytes, manifest pins %d", len(data), r.Bytes)}
		}
		out = append(out, data...)
	}
	return out, nil
}

// BlobBytes sums the logical (uncompressed) size of a chunked blob.
func BlobBytes(refs []Ref) int64 {
	var n int64
	for _, r := range refs {
		n += r.Bytes
	}
	return n
}
