package cas

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestTieredPromoteRace hammers promote-on-read from many goroutines
// against a cold chunk: every reader must see the right bytes, the
// promotion must land, and the whole dance must be -race clean (Memory
// guards its map; Tiered itself adds no state).
func TestTieredPromoteRace(t *testing.T) {
	hot, cold := NewMemory(), NewMemory()
	tiered := &Tiered{Hot: hot, Cold: cold}
	data := []byte("a cold chunk everyone wants at once")
	sha := SumHex(data)
	if err := cold.Put(sha, data); err != nil {
		t.Fatal(err)
	}

	const readers = 32
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := tiered.Get(sha)
				if err != nil {
					errs[i] = err
					return
				}
				if string(got) != string(data) {
					errs[i] = fmt.Errorf("read %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if !hot.Has(sha) {
		t.Fatal("cold hit was never promoted to the hot tier")
	}
}

// chunkServer fakes the artifact server's /chunk/<sha> surface for
// HTTPStore error-path tests.
func chunkServer(t *testing.T, handler http.HandlerFunc) *HTTPStore {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/chunk/{sha}", handler)
	mux.HandleFunc("HEAD /fleet/chunk/{sha}", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return NewHTTPStore(ts.URL+"/fleet", nil)
}

func TestHTTPStoreRoundTrip(t *testing.T) {
	data := []byte("over the wire")
	sha := SumHex(data)
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("sha") != sha {
			http.Error(w, "chunk not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		if r.Method == http.MethodGet {
			w.Write(data)
		}
	})
	if !store.Has(sha) {
		t.Fatal("Has missed a served chunk")
	}
	got, err := store.Get(sha)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	chunks, bytes := store.Fetched()
	if chunks != 1 || bytes != int64(len(data)) {
		t.Fatalf("Fetched = %d chunks, %d bytes", chunks, bytes)
	}
	if store.Has(SumHex([]byte("absent"))) {
		t.Fatal("Has invented a chunk")
	}
}

// TestHTTPStoreNotFound pins the error-relay discipline: a 404 is the
// store of record speaking, so the typed ChunkError wraps ErrNotFound
// with exactly the local store's wording — and is NOT a transport
// fault.
func TestHTTPStoreNotFound(t *testing.T) {
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "chunk not found", http.StatusNotFound)
	})
	sha := SumHex([]byte("missing"))
	_, err := store.Get(sha)
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Digest != sha {
		t.Fatalf("want *ChunkError naming %s, got %v", short(sha), err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 must wrap ErrNotFound: %v", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("a 404 is store evidence, not a transport fault: %v", err)
	}
	if want := fmt.Sprintf("cas: get %s: %v", short(sha), ErrNotFound); ce.Err.Error() != want {
		t.Fatalf("error shape diverged from the local store's:\ngot:  %s\nwant: %s", ce.Err, want)
	}
}

// TestHTTPStoreTruncatedBody: a response cut short mid-body is the
// transport's fault — retryable ErrUnavailable, never audit evidence.
func TestHTTPStoreTruncatedBody(t *testing.T) {
	data := []byte("these bytes will be cut short by the server")
	sha := SumHex(data)
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data[:8]) // then the handler returns: connection truncated
	})
	_, err := store.Get(sha)
	var ce *ChunkError
	if !errors.As(err, &ce) || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("truncated body must be ErrUnavailable inside ChunkError, got %v", err)
	}
}

// TestHTTPStoreDigestMismatch: intact 200 carrying the wrong bytes.
// The server verifies at-rest bytes before serving, so this is
// transport corruption — ErrUnavailable, not a verdict.
func TestHTTPStoreDigestMismatch(t *testing.T) {
	sha := SumHex([]byte("the true content"))
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("corrupted in flight"))
	})
	_, err := store.Get(sha)
	var ce *ChunkError
	if !errors.As(err, &ce) || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("mismatched bytes must be ErrUnavailable inside ChunkError, got %v", err)
	}
	if !strings.Contains(err.Error(), "hash to") {
		t.Fatalf("mismatch error should describe the digests: %v", err)
	}
}

// TestHTTPStoreRelaysServerReadError: a 502 carries the server-side
// store's own error text, relayed verbatim so a remote REJECT reason is
// bit-identical to a local one.
func TestHTTPStoreRelaysServerReadError(t *testing.T) {
	sha := SumHex([]byte("rotten at rest"))
	serverErr := fmt.Sprintf("cas: chunk %s is 9 bytes but hashes to deadbeef", short(sha))
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, serverErr, http.StatusBadGateway)
	})
	_, err := store.Get(sha)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ChunkError, got %v", err)
	}
	if ce.Err.Error() != serverErr {
		t.Fatalf("server error not relayed verbatim:\ngot:  %s\nwant: %s", ce.Err, serverErr)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("a relayed store failure is evidence, not a transport fault: %v", err)
	}
}

// TestHTTPStoreUnreachable: connection refused is ErrUnavailable.
func TestHTTPStoreUnreachable(t *testing.T) {
	store := NewHTTPStore("http://127.0.0.1:1/fleet", nil)
	_, err := store.Get(SumHex([]byte("anything")))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("connection refused must be ErrUnavailable, got %v", err)
	}
	if store.Has(SumHex([]byte("anything"))) {
		t.Fatal("Has against a dead server must read false")
	}
}

func TestHTTPStoreRefusesWritesAndBadDigests(t *testing.T) {
	store := chunkServer(t, func(w http.ResponseWriter, r *http.Request) {})
	sha := SumHex([]byte("x"))
	if err := store.Put(sha, []byte("x")); err == nil {
		t.Fatal("Put must be refused")
	}
	if err := store.Delete(sha); err == nil {
		t.Fatal("Delete must be refused")
	}
	if _, err := store.List(); err == nil {
		t.Fatal("List must be unsupported")
	}
	if _, err := store.Get("not-a-digest"); err == nil {
		t.Fatal("Get must reject malformed digests before touching the network")
	}
	if store.Has("not-a-digest") {
		t.Fatal("Has must reject malformed digests")
	}
}
