package cas

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// ErrUnavailable marks a chunk fetch that failed for transport reasons:
// connection refused, timeout, a truncated or corrupted response body,
// an unexpected HTTP status. It is NOT evidence about the chain — the
// store of record never vouched for bad bytes — so callers must retry
// or surface an internal fault, never turn it into an audit verdict.
// Contrast ErrNotFound and a server-reported read error (both relayed
// verbatim), which are the store of record speaking and therefore are
// the same audit evidence a local read would produce.
var ErrUnavailable = errors.New("cas: store unavailable")

// maxChunkWire bounds one chunk (or one migrated whole-file blob)
// fetched over HTTP, a backstop against a misbehaving server streaming
// forever; real chunks are a few hundred KB.
const maxChunkWire = 64 << 20

// HTTPStore is a read-only Store backed by a fleet artifact server
// (internal/fleet): Get fetches /chunk/<sha> and verifies the bytes
// against the digest client-side, so a worker composing it as the cold
// tier of a Tiered store reads with exactly the integrity guarantees of
// a local FS store. Error shapes mirror FS.Get byte-for-byte — a
// missing chunk wraps ErrNotFound with the same text, and a
// server-side read failure relays the server's error string verbatim —
// so an audit REJECT produced through this store is bit-identical to
// one produced locally. Failures Get can attribute to the transport
// rather than the store of record wrap ErrUnavailable instead.
//
// Writes are refused: the artifact server owns the chain.
type HTTPStore struct {
	base   string // e.g. "http://host:8090/-/fleet"
	client *http.Client

	fetchedChunks atomic.Int64
	fetchedBytes  atomic.Int64
}

// NewHTTPStore returns a store reading from the artifact server mounted
// at base (the fleet prefix, e.g. "http://host:8090/-/fleet"). A nil
// client gets a dedicated one with an explicit timeout — fleet clients
// never wait forever on a wedged peer.
func NewHTTPStore(base string, client *http.Client) *HTTPStore {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTPStore{base: strings.TrimSuffix(base, "/"), client: client}
}

// Fetched reports how many chunks and logical bytes Get has pulled over
// the wire — the numerator of a warm worker's cache-hit accounting.
func (s *HTTPStore) Fetched() (chunks, bytes int64) {
	return s.fetchedChunks.Load(), s.fetchedBytes.Load()
}

// Get fetches and verifies one chunk. All failures are *ChunkError; the
// wrapped cause distinguishes store evidence (ErrNotFound, a relayed
// server read error) from transport faults (ErrUnavailable).
func (s *HTTPStore) Get(sha string) ([]byte, error) {
	if !validSHA(sha) {
		return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get: bad digest %q", sha)}
	}
	resp, err := s.client.Get(s.base + "/chunk/" + sha)
	if err != nil {
		return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w: %v", short(sha), ErrUnavailable, err)}
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxChunkWire+1))
	switch resp.StatusCode {
	case http.StatusOK:
		if rerr != nil {
			return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w: reading body: %v", short(sha), ErrUnavailable, rerr)}
		}
		if len(body) > maxChunkWire {
			return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w: chunk exceeds %d bytes", short(sha), ErrUnavailable, maxChunkWire)}
		}
		if got := SumHex(body); got != sha {
			// The server verifies at-rest bytes on every read before
			// serving them, so a mismatch here means the transport
			// truncated or corrupted the response — retryable, never
			// evidence against the chain.
			return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w: fetched bytes hash to %s, want %s",
				short(sha), ErrUnavailable, short(got), short(sha))}
		}
		s.fetchedChunks.Add(1)
		s.fetchedBytes.Add(int64(len(body)))
		return body, nil
	case http.StatusNotFound:
		// The store of record says the chunk does not exist: the same
		// evidence, in the same words, as a local FS miss.
		return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w", short(sha), ErrNotFound)}
	case http.StatusBadGateway:
		// The server's own read failed (corrupt chunk at rest, bad
		// digest); its error text is relayed verbatim so a remote audit
		// rejects with exactly the reason a local one would.
		return nil, &ChunkError{Digest: sha, Err: errors.New(strings.TrimSpace(string(body)))}
	default:
		return nil, &ChunkError{Digest: sha, Err: fmt.Errorf("cas: get %s: %w: unexpected status %s", short(sha), ErrUnavailable, resp.Status)}
	}
}

// Has asks the server whether the chunk exists (HEAD, no bytes moved).
// Transport failures read as false, matching the interface's no-error
// contract; callers that must distinguish follow up with Get.
func (s *HTTPStore) Has(sha string) bool {
	if !validSHA(sha) {
		return false
	}
	req, err := http.NewRequest(http.MethodHead, s.base+"/chunk/"+sha, nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Put is refused: workers never write back to the chain's store.
func (s *HTTPStore) Put(sha string, data []byte) error {
	return fmt.Errorf("cas: http store is read-only (put %s refused)", short(sha))
}

// List is unsupported over HTTP; GC runs where the store lives.
func (s *HTTPStore) List() ([]string, error) {
	return nil, errors.New("cas: http store does not support List")
}

// Delete is refused: workers never mutate the chain's store.
func (s *HTTPStore) Delete(sha string) error {
	return fmt.Errorf("cas: http store is read-only (delete %s refused)", short(sha))
}

var _ Store = (*HTTPStore)(nil)
