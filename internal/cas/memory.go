package cas

import (
	"fmt"
	"sync"
)

// Memory is an in-process chunk store, used by tests and as the hot
// tier of a Tiered store.
type Memory struct {
	mu     sync.RWMutex
	chunks map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{chunks: make(map[string][]byte)}
}

// Put stores a copy of data under sha.
func (s *Memory) Put(sha string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[sha]; ok {
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.chunks[sha] = cp
	return nil
}

// Get returns the chunk's bytes, verified against sha.
func (s *Memory) Get(sha string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.chunks[sha]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cas: get %s: %w", short(sha), ErrNotFound)
	}
	if got := SumHex(data); got != sha {
		return nil, fmt.Errorf("cas: get %s: chunk bytes hash to %s, want %s", short(sha), short(got), short(sha))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Has reports whether the chunk exists.
func (s *Memory) Has(sha string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.chunks[sha]
	return ok
}

// List returns every stored digest.
func (s *Memory) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	shas := make([]string, 0, len(s.chunks))
	for sha := range s.chunks {
		shas = append(shas, sha)
	}
	return shas, nil
}

// Delete removes a chunk; missing chunks are a no-op.
func (s *Memory) Delete(sha string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.chunks, sha)
	return nil
}

// Corrupt flips a byte inside a stored chunk — a test hook for
// exercising digest-mismatch paths.
func (s *Memory) Corrupt(sha string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.chunks[sha]
	if !ok || len(data) == 0 {
		return false
	}
	data[len(data)/2] ^= 0xff
	return true
}
