package cas

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"orochi/internal/encio"
)

// FS is the local-filesystem chunk store. Chunks live two levels deep
// (<root>/<sha[:2]>/<sha>) so no single directory grows unbounded, and
// each chunk is gzip-compressed at rest — chunking operates on logical
// (uncompressed) bytes so dedup works, compression recovers the disk
// savings the old whole-file gzip segments had. Writes are atomic
// (temp file + fsync + rename + dir fsync), matching the durability
// discipline of the epoch log writer.
type FS struct {
	root string
}

// OpenFS opens (creating if needed) a filesystem chunk store rooted at
// dir.
func OpenFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: open store: %w", err)
	}
	return &FS{root: dir}, nil
}

// Root returns the store's root directory.
func (s *FS) Root() string { return s.root }

func (s *FS) path(sha string) string {
	return filepath.Join(s.root, sha[:2], sha)
}

// Put stores data under its digest, atomically. An existing chunk is
// left untouched (chunks are immutable; same digest, same bytes).
func (s *FS) Put(sha string, data []byte) error {
	if !validSHA(sha) {
		return fmt.Errorf("cas: put: bad digest %q", sha)
	}
	path := s.path(sha)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	// Each writer gets its own temp file: concurrent Puts of the same
	// digest must not interleave writes on a shared temp path or race
	// each other's rename — whichever rename lands last wins, and both
	// leave identical bytes (same digest, same content).
	tmp, err := os.CreateTemp(filepath.Dir(path), sha[:8]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	tmpPath := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("cas: put %s: %w", short(sha), werr)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		if _, serr := os.Stat(path); serr == nil {
			// A concurrent Put already landed this chunk; ours is moot.
			return nil
		}
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("cas: put %s: %w", short(sha), err)
	}
	return nil
}

// Get reads and decompresses the chunk, then verifies its bytes still
// hash to sha — every read is an integrity check.
func (s *FS) Get(sha string) ([]byte, error) {
	if !validSHA(sha) {
		return nil, fmt.Errorf("cas: get: bad digest %q", sha)
	}
	raw, err := os.ReadFile(s.path(sha))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("cas: get %s: %w", short(sha), ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("cas: get %s: %w", short(sha), err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("cas: get %s: corrupt chunk: %w", short(sha), err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("cas: get %s: corrupt chunk: %w", short(sha), err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("cas: get %s: corrupt chunk: %w", short(sha), err)
	}
	if err := encio.ExpectEOF(zr); err != nil {
		return nil, fmt.Errorf("cas: get %s: corrupt chunk: %w", short(sha), err)
	}
	if got := SumHex(data); got != sha {
		return nil, fmt.Errorf("cas: get %s: chunk bytes hash to %s, want %s", short(sha), short(got), short(sha))
	}
	return data, nil
}

// Has reports whether the chunk file exists.
func (s *FS) Has(sha string) bool {
	if !validSHA(sha) {
		return false
	}
	_, err := os.Stat(s.path(sha))
	return err == nil
}

// List walks the store and returns every chunk digest.
func (s *FS) List() ([]string, error) {
	var shas []string
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		name := d.Name()
		if validSHA(name) {
			shas = append(shas, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cas: list: %w", err)
	}
	return shas, nil
}

// Delete removes a chunk; deleting a missing chunk is a no-op.
func (s *FS) Delete(sha string) error {
	if !validSHA(sha) {
		return fmt.Errorf("cas: delete: bad digest %q", sha)
	}
	err := os.Remove(s.path(sha))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cas: delete %s: %w", short(sha), err)
	}
	return nil
}

// Stats reports the chunk count and at-rest (compressed) bytes — the
// denominator of the storage dedup ratio.
func (s *FS) Stats() (chunks int, storedBytes int64, err error) {
	err = filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(path, ".tmp") || !validSHA(d.Name()) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		chunks++
		storedBytes += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("cas: stats: %w", err)
	}
	return chunks, storedBytes, nil
}

func validSHA(sha string) bool {
	if len(sha) != 64 {
		return false
	}
	for i := 0; i < len(sha); i++ {
		c := sha[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeFileSync writes data to path and fsyncs the file, so a rename
// over it is durable.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
