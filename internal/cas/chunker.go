package cas

// Content-defined chunking with a gear-hash rolling window (the
// FastCDC family). Cut points depend only on content, so an insertion
// early in a blob reshuffles at most the chunks around the edit —
// unlike fixed-size blocks, where one shifted byte changes every
// downstream block digest and kills dedup.

// ChunkerOptions bounds chunk sizes. Cuts happen where the rolling
// hash masks to zero once Min bytes are in the window; Max forces a
// cut so a pathological stream cannot produce unbounded chunks.
type ChunkerOptions struct {
	Min int // no cut before this many bytes
	Avg int // target average chunk size (rounded to a power of two)
	Max int // hard cap; force a cut here
}

// DefaultChunker is tuned for epoch segments: small enough that a
// repeated wiki page render dedups against its earlier occurrences,
// large enough that per-chunk overhead stays negligible.
var DefaultChunker = ChunkerOptions{Min: 2 << 10, Avg: 8 << 10, Max: 64 << 10}

// Split cuts data into content-defined chunks. The concatenation of
// the returned slices is exactly data (they alias it; callers must not
// mutate). Empty input yields no chunks.
func (c ChunkerOptions) Split(data []byte) [][]byte {
	min, avg, max := c.Min, c.Avg, c.Max
	if min <= 0 {
		min = DefaultChunker.Min
	}
	if avg <= 0 {
		avg = DefaultChunker.Avg
	}
	if max <= 0 {
		max = DefaultChunker.Max
	}
	if max < min {
		max = min
	}
	mask := nextPow2(uint64(avg)) - 1
	var chunks [][]byte
	for len(data) > 0 {
		n := cutPoint(data, min, max, mask)
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

func cutPoint(data []byte, min, max int, mask uint64) int {
	if len(data) <= min {
		return len(data)
	}
	end := len(data)
	if end > max {
		end = max
	}
	var h uint64
	for i := 0; i < end; i++ {
		h = h<<1 + gearTable[data[i]]
		if i >= min && h&mask == 0 {
			return i + 1
		}
	}
	return end
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// gearTable is the 256-entry random table driving the rolling hash.
// It is generated deterministically (splitmix64 from a fixed seed) so
// chunk boundaries — and therefore every chunk digest pinned in a
// manifest — are stable across builds and platforms forever.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()
