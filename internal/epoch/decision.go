package epoch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"orochi/internal/verifier"
)

// DecisionLogName is the audit decision log kept at the chain
// directory's root: one JSON object per line, append-only, fsynced.
const DecisionLogName = "decisions.jsonl"

// PhaseEpochLoad tags forensics for epoch-level rejects raised before
// the verifier ran: integrity failures (a damaged segment or reports
// file), manifest chain breaks, and a missing trusted initial state.
const PhaseEpochLoad = "epoch-load"

// Resolution states of a decision. A decision is born open; an operator
// acknowledges it (typically a REJECT, after investigating the
// forensics) with a note, and the acknowledgement survives restarts
// because it is an event in the same log.
const (
	ResolutionOpen  = "open"
	ResolutionAcked = "acked"
)

// Decision is the durable form of one epoch's audit verdict: everything
// an operator needs to answer "what happened and what did it cost"
// without the auditor process that produced it — verdict, forensics,
// timings, chain digest — plus the resolution state machine.
type Decision struct {
	Epoch    int64  `json:"epoch"`
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	// Forensics is the verifier's structured evidence for a REJECT (nil
	// on ACCEPT and for pre-verification rejects that carry none).
	Forensics *verifier.Forensics `json:"forensics,omitempty"`
	Events    int                 `json:"events"`
	Requests  int                 `json:"requests"`
	// Timings is the audit cost decomposition, durations in nanoseconds.
	Timings DecisionTimings `json:"timings"`
	// RequestsReplayed and GroupBatches record re-execution volume (the
	// dedup ratio's numerator and denominator); DedupHits/DedupMisses
	// the query-dedup cache behaviour.
	RequestsReplayed int    `json:"requests_replayed,omitempty"`
	GroupBatches     int    `json:"group_batches,omitempty"`
	DedupHits        int64  `json:"dedup_hits,omitempty"`
	DedupMisses      int64  `json:"dedup_misses,omitempty"`
	ManifestSHA      string `json:"manifest_sha256"`
	ChainSHA         string `json:"chain_sha256"`
	// DecidedAt is when the verdict was appended to the log.
	DecidedAt time.Time `json:"decided_at"`
	// Resolution is ResolutionOpen or ResolutionAcked; Note and AckedAt
	// are set by the acknowledgement.
	Resolution string    `json:"resolution"`
	Note       string    `json:"note,omitempty"`
	AckedAt    time.Time `json:"acked_at,omitzero"`
	// ScrubFailed flags a retrievability challenge this epoch failed
	// after the decision was published (ScrubDetail names the artifact,
	// ScrubAt the pass). It is an annotation, not a verdict: the audit
	// verdict, resolution, chain digest, and metrics stand untouched —
	// for a compacted epoch the stored ACCEPT is the only remaining
	// trust artifact, and a failed challenge (which can be a transient
	// read error) must never destroy it. A re-audit's fresh verdict
	// clears the flag.
	ScrubFailed bool      `json:"scrub_failed,omitempty"`
	ScrubDetail string    `json:"scrub_detail,omitempty"`
	ScrubAt     time.Time `json:"scrub_at,omitzero"`
}

// DecisionTimings is the persisted slice of verifier.Stats phase
// timings (JSON numbers are nanoseconds).
type DecisionTimings struct {
	ProcOpRep time.Duration `json:"proc_op_rep_ns"`
	DBRedo    time.Duration `json:"db_redo_ns"`
	ReExec    time.Duration `json:"re_exec_ns"`
	DBQuery   time.Duration `json:"db_query_ns"`
	Other     time.Duration `json:"other_ns"`
	Total     time.Duration `json:"total_ns"`
}

// decisionEvent is one line of the log. The log is event-sourced: a
// "verdict" line (re)states an epoch's decision whole, an "ack" line
// transitions its resolution, a "scrub" line annotates it with a failed
// retrievability challenge. Replaying the lines in order rebuilds the
// exact state, so appends never rewrite the file.
type decisionEvent struct {
	Kind     string    `json:"kind"` // "verdict" | "ack" | "scrub"
	Decision *Decision `json:"decision,omitempty"`
	Epoch    int64     `json:"epoch,omitempty"`
	Note     string    `json:"note,omitempty"`
	At       time.Time `json:"at,omitzero"`
}

// DecisionLog is the durable ACCEPT/REJECT ledger of an epoch chain
// directory. Safe for concurrent use.
type DecisionLog struct {
	path string

	mu      sync.Mutex
	f       *os.File
	byEpoch map[int64]*Decision
}

// OpenDecisionLog opens (creating if needed) the decision log in the
// chain directory dir and replays it into memory.
func OpenDecisionLog(dir string) (*DecisionLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epoch: decision log: %w", err)
	}
	path := filepath.Join(dir, DecisionLogName)
	l := &DecisionLog{path: path, byEpoch: make(map[int64]*Decision)}
	validLen, err := l.replay()
	if err != nil {
		return nil, err
	}
	// A crash mid-append leaves torn bytes past the last good line.
	// Replay skipped them; drop them from the file too, so the next
	// append starts a fresh line instead of merging into the fragment
	// (which would lose that decision on the following replay).
	if fi, err := os.Stat(path); err == nil && fi.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("epoch: decision log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("epoch: decision log: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("epoch: decision log: %w", err)
	}
	l.f = f
	return l, nil
}

// replay rebuilds the in-memory state from the log file and returns
// the number of leading bytes that parsed cleanly. A verdict line
// replaces the epoch's decision whole (re-audits happen after restarts
// without checkpoints) and resets its resolution; an ack line
// transitions the current decision. A torn final line — a crash mid-
// append — is skipped (and excluded from the returned length, so the
// writable open path can truncate it away); anything else malformed is
// an error, because silently dropping decisions would defeat the
// ledger.
func (l *DecisionLog) replay() (int64, error) {
	f, err := os.Open(l.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("epoch: decision log: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, 2)
	if err != nil {
		return 0, fmt.Errorf("epoch: decision log: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return 0, fmt.Errorf("epoch: decision log: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pending []byte // last line seen, validated once we know it's not the tail
	read, lineNo := 0, 0
	var validLen int64 // bytes through the last applied line's newline
	apply := func(line []byte, isTail bool) (bool, error) {
		var ev decisionEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if isTail {
				return false, nil // torn tail from a crash mid-append
			}
			return false, fmt.Errorf("epoch: decision log line %d: %w", lineNo, err)
		}
		switch ev.Kind {
		case "verdict":
			if ev.Decision == nil {
				return false, fmt.Errorf("epoch: decision log line %d: verdict without decision", lineNo)
			}
			d := *ev.Decision
			if d.Resolution == "" {
				d.Resolution = ResolutionOpen
			}
			l.byEpoch[d.Epoch] = &d
		case "ack":
			if d, ok := l.byEpoch[ev.Epoch]; ok {
				d.Resolution = ResolutionAcked
				d.Note = ev.Note
				d.AckedAt = ev.At
			}
		case "scrub":
			if d, ok := l.byEpoch[ev.Epoch]; ok {
				d.ScrubFailed = true
				d.ScrubDetail = ev.Note
				d.ScrubAt = ev.At
			}
		default:
			return false, fmt.Errorf("epoch: decision log line %d: unknown kind %q", lineNo, ev.Kind)
		}
		return true, nil
	}
	for sc.Scan() {
		if pending != nil {
			lineNo = read
			if _, err := apply(pending, false); err != nil {
				return 0, err
			}
			validLen += int64(len(pending)) + 1
		}
		read++
		pending = append([]byte(nil), sc.Bytes()...)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("epoch: decision log: %w", err)
	}
	if pending != nil {
		lineNo = read
		applied, err := apply(pending, true)
		if err != nil {
			return 0, err
		}
		if applied {
			// The tail parsed; keep the file whole (its final newline,
			// if any, is part of the good prefix).
			validLen = size
		}
	}
	return validLen, nil
}

// append writes one event line and fsyncs.
func (l *DecisionLog) append(ev decisionEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("epoch: decision log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("epoch: decision log: %w", err)
	}
	return nil
}

// Append records an epoch's decision. A later Append for the same epoch
// (a re-audit after a restart) replaces the earlier one and reopens its
// resolution.
func (l *DecisionLog) Append(d Decision) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d.Resolution == "" {
		d.Resolution = ResolutionOpen
	}
	if err := l.append(decisionEvent{Kind: "verdict", Decision: &d}); err != nil {
		return err
	}
	l.byEpoch[d.Epoch] = &d
	return nil
}

// Ack transitions an epoch's decision open → acked(note). Acking an
// already-acked decision updates the note (the latest investigation
// wins); acking an unknown epoch is an error.
func (l *DecisionLog) Ack(epoch int64, note string) (Decision, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.byEpoch[epoch]
	if !ok {
		return Decision{}, fmt.Errorf("epoch: no decision recorded for epoch %d", epoch)
	}
	at := time.Now().UTC()
	if err := l.append(decisionEvent{Kind: "ack", Epoch: epoch, Note: note, At: at}); err != nil {
		return Decision{}, err
	}
	d.Resolution = ResolutionAcked
	d.Note = note
	d.AckedAt = at
	return *d, nil
}

// MarkScrubFailed annotates an epoch's stored decision with a failed
// retrievability challenge. The annotation never changes the verdict,
// the resolution, or any audit metric — in particular it never
// downgrades an ACCEPT (for a compacted epoch the stored ACCEPT is the
// only remaining trust artifact) and never reopens an acknowledged
// decision. Annotating an epoch with no stored decision is an error;
// record those as fresh scrub REJECT verdicts instead.
func (l *DecisionLog) MarkScrubFailed(epoch int64, detail string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.byEpoch[epoch]
	if !ok {
		return fmt.Errorf("epoch: no decision recorded for epoch %d", epoch)
	}
	at := time.Now().UTC()
	if err := l.append(decisionEvent{Kind: "scrub", Epoch: epoch, Note: detail, At: at}); err != nil {
		return err
	}
	d.ScrubFailed = true
	d.ScrubDetail = detail
	d.ScrubAt = at
	return nil
}

// Decisions returns every recorded decision in epoch order.
func (l *DecisionLog) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, len(l.byEpoch))
	for _, d := range l.byEpoch {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// Get returns the decision for one epoch.
func (l *DecisionLog) Get(epoch int64) (Decision, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.byEpoch[epoch]
	if !ok {
		return Decision{}, false
	}
	return *d, true
}

// ReadDecisions replays dir's decision log read-only and returns every
// decision in epoch order, without creating the log (or the directory)
// when absent — a missing log surfaces as fs.ErrNotExist. This is the
// offline inspection path (orochi-audit -explain); live processes use
// OpenDecisionLog.
func ReadDecisions(dir string) ([]Decision, error) {
	path := filepath.Join(dir, DecisionLogName)
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	l := &DecisionLog{path: path, byEpoch: make(map[int64]*Decision)}
	if _, err := l.replay(); err != nil {
		return nil, err
	}
	return l.Decisions(), nil
}

// Close closes the underlying file. Appends after Close fail.
func (l *DecisionLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// DecisionFromVerdict converts a ledger Verdict into its durable form.
// The fleet coordinator persists remote verdicts through it so
// decisions.jsonl is identical whether an epoch was audited in-process
// or on a worker.
func DecisionFromVerdict(v Verdict) Decision { return decisionFromVerdict(v) }

// VerdictFromDecision rebuilds a ledger Verdict from its durable form —
// the restart-rehydration path, shared by the in-process auditor and
// the fleet coordinator.
func VerdictFromDecision(d Decision) Verdict { return verdictFromDecision(d) }

// decisionFromVerdict converts a ledger Verdict into its durable form.
func decisionFromVerdict(v Verdict) Decision {
	return Decision{
		Epoch:     v.Epoch,
		Accepted:  v.Accepted,
		Reason:    v.Reason,
		Forensics: v.Forensics,
		Events:    v.Events,
		Requests:  v.Requests,
		Timings: DecisionTimings{
			ProcOpRep: v.Stats.ProcOpRep,
			DBRedo:    v.Stats.DBRedo,
			ReExec:    v.Stats.ReExec,
			DBQuery:   v.Stats.DBQuery,
			Other:     v.Stats.Other,
			Total:     v.Stats.Total,
		},
		RequestsReplayed: v.Stats.RequestsReplayed,
		GroupBatches:     v.Stats.GroupBatches,
		DedupHits:        v.Stats.DedupHits,
		DedupMisses:      v.Stats.DedupMisses,
		ManifestSHA:      v.ManifestSHA,
		ChainSHA:         v.ChainSHA,
		DecidedAt:        time.Now().UTC(),
		Resolution:       ResolutionOpen,
	}
}

// verdictFromDecision rebuilds a ledger Verdict from its durable form —
// the rehydration path after a restart. Group-level statistics
// (Stats.Groups) are not persisted; everything the status endpoints and
// metrics read is.
func verdictFromDecision(d Decision) Verdict {
	return Verdict{
		Epoch:     d.Epoch,
		Accepted:  d.Accepted,
		Reason:    d.Reason,
		Forensics: d.Forensics,
		Events:    d.Events,
		Requests:  d.Requests,
		AuditTime: d.Timings.Total,
		Stats: verifier.Stats{
			ProcOpRep:        d.Timings.ProcOpRep,
			DBRedo:           d.Timings.DBRedo,
			ReExec:           d.Timings.ReExec,
			DBQuery:          d.Timings.DBQuery,
			Other:            d.Timings.Other,
			Total:            d.Timings.Total,
			RequestsReplayed: d.RequestsReplayed,
			GroupBatches:     d.GroupBatches,
			DedupHits:        d.DedupHits,
			DedupMisses:      d.DedupMisses,
		},
		ManifestSHA: d.ManifestSHA,
		ChainSHA:    d.ChainSHA,
	}
}
