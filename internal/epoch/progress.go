package epoch

import (
	"fmt"
	"time"

	"orochi/internal/verifier"
)

// Progress is a point-in-time view of the epoch audit currently in
// flight: which epoch is being verified and how far its audit has come.
// The zero value (Epoch == 0) means no verification is running — the
// auditor is idle, polling, or loading. Status endpoints (orochi-serve's
// /-/epochs) render it next to the verdict ledger.
//
// The counters come from the verifier's Observer stream and therefore
// reflect untrusted quantities (group sizes, op counts are the
// executor's claims); they are progress telemetry, not audit evidence.
type Progress struct {
	// Epoch is the epoch number under verification (0 = idle).
	Epoch int64
	// Phase is the verifier phase currently running (see the
	// verifier.Phase* constants).
	Phase string
	// Units is the number of work items in the current phase (object
	// logs for the redo phase, group batches for re-execution; 0 when
	// the phase has no unit accounting), and Done how many completed.
	Units, Done int
	// OpsReplayed counts operations replayed into the versioned stores
	// so far (cumulative across the redo phase).
	OpsReplayed int64
	// GroupsDone counts control-flow group batches re-executed so far.
	GroupsDone int
}

// String renders the progress for status endpoints.
func (p Progress) String() string {
	if p.Epoch == 0 {
		return "idle"
	}
	s := fmt.Sprintf("auditing epoch %d: %s", p.Epoch, p.Phase)
	if p.Units > 0 {
		s += fmt.Sprintf(" (%d/%d)", p.Done, p.Units)
	}
	if p.OpsReplayed > 0 {
		s += fmt.Sprintf(", %d ops replayed", p.OpsReplayed)
	}
	return s
}

// Progress reports the audit progress of the epoch currently under
// verification (zero-valued when idle). Safe to call concurrently with
// a running Run/RunOnce — it is how /-/epochs observes a live audit.
func (a *Auditor) Progress() Progress {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.progress
}

// beginProgress arms progress tracking for epoch n and returns the
// verifier.Observer to install for its audit: a tracker that mirrors
// the callback stream into a.progress and forwards it to the
// user-supplied observer (AuditorOptions.Observer, falling back to
// Verify.Observer for callers that set it directly).
func (a *Auditor) beginProgress(n int64) verifier.Observer {
	a.mu.Lock()
	a.progress = Progress{Epoch: n}
	a.mu.Unlock()
	user := a.opts.Observer
	if user == nil {
		user = a.opts.Verify.Observer
	}
	return &progressObserver{a: a, user: user}
}

// endProgress clears the live-progress slot once an epoch's
// verification finishes (whatever the outcome).
func (a *Auditor) endProgress() {
	a.mu.Lock()
	a.progress = Progress{}
	a.mu.Unlock()
}

// progressObserver mirrors one epoch audit's observer stream into the
// auditor's Progress slot. Its callbacks may fire concurrently from
// verifier pool workers; all state lives behind a.mu.
type progressObserver struct {
	a    *Auditor
	user verifier.Observer
}

func (p *progressObserver) PhaseStart(phase string, units int) {
	p.a.mu.Lock()
	p.a.progress.Phase = phase
	p.a.progress.Units = units
	p.a.progress.Done = 0
	p.a.mu.Unlock()
	if p.user != nil {
		p.user.PhaseStart(phase, units)
	}
}

func (p *progressObserver) PhaseEnd(phase string, took time.Duration) {
	p.a.mu.Lock()
	p.a.progress.Done = p.a.progress.Units
	p.a.mu.Unlock()
	if p.user != nil {
		p.user.PhaseEnd(phase, took)
	}
}

func (p *progressObserver) GroupReexecuted(script string, tag uint64, requests int) {
	p.a.mu.Lock()
	p.a.progress.Done++
	p.a.progress.GroupsDone++
	p.a.mu.Unlock()
	if p.user != nil {
		p.user.GroupReexecuted(script, tag, requests)
	}
}

func (p *progressObserver) OpsReplayed(ops int) {
	p.a.mu.Lock()
	p.a.progress.Done++
	p.a.progress.OpsReplayed += int64(ops)
	p.a.mu.Unlock()
	if p.user != nil {
		p.user.OpsReplayed(ops)
	}
}

func (p *progressObserver) Verdict(accepted bool, reason string) {
	if p.user != nil {
		p.user.Verdict(accepted, reason)
	}
}

var _ verifier.Observer = (*progressObserver)(nil)
