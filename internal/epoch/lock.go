package epoch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// ChainLockName is the advisory lock file at a chain directory's root.
// A live manager (orochi-serve) holds the lock for the whole serving
// run; offline maintenance (orochi-audit -gc / -scrub) takes it for the
// duration of a pass. The exclusion keeps GC from sweeping the chunks
// of an in-flight seal (written before their manifest lands, so the
// sweep would read them as orphans) and keeps the decision log from
// gaining a second writer whose torn-tail truncation could race a live
// append.
const ChainLockName = "chain.lock"

// ErrChainBusy reports that another process holds a chain directory's
// lock (match with errors.Is).
var ErrChainBusy = errors.New("chain directory is in use by another process")

// ChainLock is a held exclusive lock on a chain directory.
type ChainLock struct {
	f   *os.File
	key string
}

// chainLocks is the process-local side of the lock: POSIX record locks
// do not conflict between descriptors of the same process (and close
// of any descriptor for the file drops them), so in-process exclusion
// — one manager and one maintenance pass in the same binary — is
// enforced here, and cross-process exclusion by the kernel.
var chainLocks = struct {
	sync.Mutex
	held map[string]bool
}{held: make(map[string]bool)}

// LockChain takes dir's exclusive advisory lock, creating the lock file
// (and dir) if needed. It fails immediately with an error matching
// ErrChainBusy when another process holds the lock — it never waits.
// The lock is released by Unlock, or by the kernel when the process
// exits, so a crashed holder never wedges the chain. POSIX record
// locks (fcntl F_SETLK) rather than flock: they conflict across
// processes on every filesystem that supports locking at all,
// including virtualized ones where BSD flock is a per-process no-op.
func LockChain(dir string) (*ChainLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epoch: lock chain: %w", err)
	}
	key, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("epoch: lock chain: %w", err)
	}
	chainLocks.Lock()
	if chainLocks.held[key] {
		chainLocks.Unlock()
		return nil, fmt.Errorf("epoch: %w: %s", ErrChainBusy, dir)
	}
	chainLocks.held[key] = true
	chainLocks.Unlock()
	release := func() {
		chainLocks.Lock()
		delete(chainLocks.held, key)
		chainLocks.Unlock()
	}
	f, err := os.OpenFile(filepath.Join(dir, ChainLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		release()
		return nil, fmt.Errorf("epoch: lock chain: %w", err)
	}
	// Whole-file write lock. A POSIX lock is dropped when *any* of the
	// process's descriptors for the file closes — the registry above
	// guarantees this process opens ChainLockName at most once at a
	// time, keeping that rule safe.
	flk := &syscall.Flock_t{Type: syscall.F_WRLCK, Whence: 0}
	if err := syscall.FcntlFlock(f.Fd(), syscall.F_SETLK, flk); err != nil {
		f.Close()
		release()
		if err == syscall.EAGAIN || err == syscall.EACCES || err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("epoch: %w: %s", ErrChainBusy, dir)
		}
		return nil, fmt.Errorf("epoch: lock chain %s: %w", dir, err)
	}
	return &ChainLock{f: f, key: key}, nil
}

// Unlock releases the lock. The lock file itself is left in place —
// removing it would let a third process lock a fresh inode while a
// second still holds the old one.
func (l *ChainLock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close() // closing the descriptor drops the kernel lock
	l.f = nil
	chainLocks.Lock()
	delete(chainLocks.held, l.key)
	chainLocks.Unlock()
	return err
}
