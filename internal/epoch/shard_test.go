package epoch

import (
	"context"
	"testing"

	"orochi/internal/server"
)

// TestEpochCutMidBurstSharded runs the epoch pipeline over a sharded
// server under continuous concurrent traffic: epoch cuts land at
// whatever balanced points the burst happens to pass through, the
// recorder swap in Cut races the very next request's recorder load, and
// every sealed epoch must still audit ACCEPT with the chain intact.
// Run under -race this also pins that SwapRecorder via atomic.Pointer
// is race-free against the lock-free serving hot path.
func TestEpochCutMidBurstSharded(t *testing.T) {
	dir := t.TempDir()
	prog := compilePipelineApp(t)
	srv := server.New(prog, server.Options{Record: true, Shards: 8})
	if err := srv.Setup(pipelineSchema); err != nil {
		t.Fatal(err)
	}
	mgr, err := StartManager(dir, srv, srv.Snapshot(), ManagerOptions{
		EpochEvents: 30,
		Log:         LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One continuous stream, no deliberate drain points: cuts happen
	// mid-burst wherever the trace is momentarily balanced.
	const n = 240
	srv.ServeAll(burst(n, 1), 6)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) == 0 {
		t.Fatal("no epochs audited")
	}
	reqs := 0
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected: %s", v.Epoch, v.Reason)
		}
		reqs += v.Requests
	}
	if reqs != n {
		t.Fatalf("ledger covers %d requests, want %d", reqs, n)
	}
	if !a.ChainAccepted() {
		t.Fatal("chain verdict must be ACCEPT")
	}
}
