package epoch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"orochi/internal/cas"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// LogWriterOptions tunes the segmented log.
type LogWriterOptions struct {
	// SegmentEvents rotates the active segment after it holds this many
	// events (default 1024).
	SegmentEvents int
	// SegmentBytes rotates the active segment after it reaches this
	// size (default 4 MiB).
	SegmentBytes int64
	// BatchEvents is how many events are buffered in memory before they
	// are framed into one on-disk record (default 64). Smaller batches
	// mean finer-grained durability; larger batches compress better.
	BatchEvents int
}

func (o LogWriterOptions) withDefaults() LogWriterOptions {
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = 1024
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BatchEvents <= 0 {
		o.BatchEvents = 64
	}
	return o
}

// SegmentInfo describes one finalized segment. In a whole-file (v1)
// manifest Bytes/SHA256 are over the on-disk segment file; in a
// chunked (v2) manifest they describe the segment's logical blob (the
// raw-encoded trace of its events) and Chunks lists the content-
// defined chunks that reassemble it.
type SegmentInfo struct {
	Name    string    `json:"name"`
	Bytes   int64     `json:"bytes"`
	Records int       `json:"records"`
	Events  int       `json:"events"`
	SHA256  string    `json:"sha256"`
	Chunks  []cas.Ref `json:"chunks,omitempty"`
}

// LogWriter appends trace events to length-prefixed, CRC-checksummed,
// gzip-framed records in rotating append-only segment files. The active
// segment carries a ".open" suffix; rotation finalizes it (fsync +
// atomic rename to ".seg") and lazily opens the next one on the first
// subsequent append. Reopening a directory with OpenLogWriter recovers
// from a crash: the valid prefix of a torn ".open" segment is kept, the
// damaged tail truncated, and appending resumes in place.
//
// LogWriter is safe for concurrent use, though the epoch pipeline calls
// it from a single collector-serialized goroutine at a time.
type LogWriter struct {
	dir  string
	opts LogWriterOptions

	mu         sync.Mutex
	seq        int      // number of the active (or next) segment
	f          *os.File // nil until the first append of a segment
	hash       hash.Hash
	segBytes   int64
	segRecords int
	segEvents  int
	pending    []trace.Event
	done       []SegmentInfo
	events     int // total events appended (including pending)
	closed     bool
}

// OpenLogWriter opens dir for appending, creating it if needed. If dir
// already holds segments from an interrupted run, the writer adopts
// them: finalized segments are re-scanned into its history and a torn
// active segment is truncated to its last valid record and continued.
func OpenLogWriter(dir string, opts LogWriterOptions) (*LogWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epoch: open log: %w", err)
	}
	w := &LogWriter{dir: dir, opts: opts.withDefaults(), seq: 1}
	finalized, open, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range finalized {
		info, _, err := readSegmentFile(filepath.Join(dir, name), true)
		if err != nil {
			return nil, fmt.Errorf("epoch: finalized segment %s is damaged: %w", name, err)
		}
		w.done = append(w.done, info)
		w.events += info.Events
		w.seq = segmentSeq(name) + 1
	}
	if open != "" {
		if s := segmentSeq(open); s >= w.seq {
			w.seq = s
		} else {
			// An .open segment older than a finalized one is leftover
			// junk from a rotation interrupted between rename and next
			// open; it can hold no events the finalized history lacks.
			if err := os.Remove(filepath.Join(dir, open)); err != nil {
				return nil, fmt.Errorf("epoch: open log: %w", err)
			}
			open = ""
		}
	}
	if open != "" {
		if err := w.recoverOpenSegment(filepath.Join(dir, open)); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// recoverOpenSegment truncates the torn tail of the active segment at
// path and resumes appending to it.
func (w *LogWriter) recoverOpenSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("epoch: recover %s: %w", path, err)
	}
	var valid int64
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// Crashed before the header made it out: restart the file.
		valid = 0
	} else {
		recs, v, err := parseSegment(data, false)
		if err != nil {
			return fmt.Errorf("epoch: recover %s: %w", path, err)
		}
		valid = v
		for _, r := range recs {
			if r.typ != recEvents {
				continue
			}
			tr, err := trace.Decode(r.payload)
			if err != nil {
				return fmt.Errorf("epoch: recover %s: CRC-valid record fails to decode: %w", path, err)
			}
			w.segEvents += len(tr.Events)
			w.segRecords++
		}
		w.events += w.segEvents
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("epoch: recover %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return fmt.Errorf("epoch: recover %s: %w", path, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return fmt.Errorf("epoch: recover %s: %w", path, err)
	}
	w.f = f
	w.hash = sha256.New()
	w.hash.Write(data[:valid])
	w.segBytes = valid
	if valid == 0 {
		// The header was lost with the torn tail; rewrite it.
		if err := w.writeRaw([]byte(segMagic)); err != nil {
			return err
		}
	}
	return nil
}

// AppendEvent buffers ev and writes a record once a batch accumulates.
func (w *LogWriter) AppendEvent(ev trace.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("epoch: append to closed log")
	}
	w.pending = append(w.pending, ev)
	w.events++
	if len(w.pending) >= w.opts.BatchEvents {
		return w.flushLocked()
	}
	return nil
}

// Flush writes any buffered events to the active segment.
func (w *LogWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *LogWriter) flushLocked() error {
	if len(w.pending) == 0 {
		return nil
	}
	batch := &trace.Trace{Events: w.pending}
	payload, err := batch.Encode()
	if err != nil {
		return err
	}
	n := len(w.pending)
	w.pending = nil
	if w.f == nil {
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	if err := w.writeRaw(encodeRecord(recEvents, payload)); err != nil {
		return err
	}
	w.segRecords++
	w.segEvents += n
	if w.segEvents >= w.opts.SegmentEvents || w.segBytes >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

func (w *LogWriter) openSegmentLocked() error {
	path := filepath.Join(w.dir, segmentName(w.seq, false))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("epoch: open segment: %w", err)
	}
	w.f = f
	w.hash = sha256.New()
	w.segBytes = 0
	w.segRecords = 0
	w.segEvents = 0
	return w.writeRaw([]byte(segMagic))
}

func (w *LogWriter) writeRaw(p []byte) error {
	if _, err := w.f.Write(p); err != nil {
		return fmt.Errorf("epoch: write segment: %w", err)
	}
	w.hash.Write(p)
	w.segBytes += int64(len(p))
	return nil
}

// rotateLocked finalizes the active segment: fsync, atomic rename to
// ".seg", directory fsync. The next append opens the next segment.
func (w *LogWriter) rotateLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("epoch: finalize segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("epoch: finalize segment: %w", err)
	}
	openPath := filepath.Join(w.dir, segmentName(w.seq, false))
	segPath := filepath.Join(w.dir, segmentName(w.seq, true))
	if err := os.Rename(openPath, segPath); err != nil {
		return fmt.Errorf("epoch: finalize segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.done = append(w.done, SegmentInfo{
		Name:    segmentName(w.seq, true),
		Bytes:   w.segBytes,
		Records: w.segRecords,
		Events:  w.segEvents,
		SHA256:  hex.EncodeToString(w.hash.Sum(nil)),
	})
	w.f = nil
	w.hash = nil
	w.seq++
	w.segBytes = 0
	w.segRecords = 0
	w.segEvents = 0
	return nil
}

// Finalize flushes buffered events, finalizes the active segment, and
// closes the writer, returning the full segment history in order.
func (w *LogWriter) Finalize() ([]SegmentInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.done, nil
	}
	if err := w.flushLocked(); err != nil {
		return nil, err
	}
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	w.closed = true
	return w.done, nil
}

// Abort closes the writer without finalizing; the active segment keeps
// its ".open" name (a later OpenLogWriter can recover it).
func (w *LogWriter) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// Events returns the total number of events appended so far.
func (w *LogWriter) Events() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events
}

// ReadLogEvents reads every event in dir's segments, in order: all
// finalized segments strictly, then the valid prefix of the active
// segment if one exists. It is the reader for unsealed (live or
// crashed) logs; sealed epochs are read through their manifest instead.
func ReadLogEvents(dir string) ([]trace.Event, error) {
	finalized, open, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []trace.Event
	for _, name := range finalized {
		_, evs, err := readSegmentFile(filepath.Join(dir, name), true)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	if open != "" {
		_, evs, err := readSegmentFile(filepath.Join(dir, open), false)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	return out, nil
}

// readSegmentFile parses one segment file and returns its metadata and
// events. In strict mode the whole file must validate (finalized and
// sealed segments); otherwise the valid prefix is returned.
func readSegmentFile(path string, strict bool) (SegmentInfo, []trace.Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SegmentInfo{}, nil, err
	}
	recs, valid, err := parseSegment(data, strict)
	if err != nil {
		return SegmentInfo{}, nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	info := SegmentInfo{
		Name:    filepath.Base(path),
		Bytes:   valid,
		Records: len(recs),
		SHA256:  cas.SumHex(data[:valid]),
	}
	var events []trace.Event
	for _, r := range recs {
		if r.typ != recEvents {
			continue
		}
		tr, err := trace.Decode(r.payload)
		if err != nil {
			return SegmentInfo{}, nil, fmt.Errorf("%s: CRC-valid record fails to decode: %w", filepath.Base(path), err)
		}
		events = append(events, tr.Events...)
	}
	info.Events = len(events)
	return info, events, nil
}

// WriteReportsFile frames the report bundle as a single-record segment
// at path (same CRC'd record format as the event log) and returns its
// file metadata for the manifest.
func WriteReportsFile(path string, rep *reports.Reports) (FileInfo, error) {
	payload, err := rep.Encode()
	if err != nil {
		return FileInfo{}, err
	}
	data := segmentBytes(record{typ: recReports, payload: payload})
	if err := writeFileSync(path, data); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: filepath.Base(path), Bytes: int64(len(data)), SHA256: cas.SumHex(data)}, nil
}

// decodeReportsSegment parses a single-record reports segment image —
// the shared reader under ReadReportsFile and the audit-time Load.
func decodeReportsSegment(data []byte) (*reports.Reports, error) {
	recs, _, err := parseSegment(data, true)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 || recs[0].typ != recReports {
		return nil, fmt.Errorf("want exactly one reports record, got %d records", len(recs))
	}
	return reports.Decode(recs[0].payload)
}

// ReadReportsFile reads a report bundle written by WriteReportsFile.
func ReadReportsFile(path string) (*reports.Reports, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := decodeReportsSegment(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return rep, nil
}

// segmentName formats the file name of segment n.
func segmentName(n int, finalized bool) string {
	if finalized {
		return fmt.Sprintf("seg-%06d.seg", n)
	}
	return fmt.Sprintf("seg-%06d.open", n)
}

// segmentSeq parses the sequence number out of a segment file name,
// returning 0 unless the name matches the exact seg-%06d.{seg,open}
// shape — Sscanf alone would accept junk like "seg-1.bak.seg" and
// alias it into the sequence.
func segmentSeq(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "seg-%d", &n); err != nil || n <= 0 {
		return 0
	}
	if name != segmentName(n, true) && name != segmentName(n, false) {
		return 0
	}
	return n
}

// listSegments returns dir's finalized segment names in sequence order
// plus the active (".open") segment name, if any. Files that merely
// resemble segment names (wrong padding, extra suffixes) are ignored —
// they are not ours.
func listSegments(dir string) (finalized []string, open string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("epoch: list segments: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if segmentSeq(name) == 0 {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".seg"):
			finalized = append(finalized, name)
		case strings.HasSuffix(name, ".open"):
			if open != "" {
				return nil, "", fmt.Errorf("epoch: multiple open segments in %s", dir)
			}
			open = name
		}
	}
	sort.Slice(finalized, func(i, j int) bool { return segmentSeq(finalized[i]) < segmentSeq(finalized[j]) })
	for i, name := range finalized {
		if segmentSeq(name) != i+1 {
			return nil, "", fmt.Errorf("epoch: segment sequence gap in %s: %v", dir, finalized)
		}
	}
	return finalized, open, nil
}

// writeFileSync writes data to path and fsyncs the file and directory.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("epoch: sync %s: %w", dir, err)
	}
	return nil
}
