package epoch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orochi/internal/reports"
	"orochi/internal/trace"
)

func mkEvents(n, from int) []trace.Event {
	var out []trace.Event
	t := int64(1)
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("r%06d", from+i)
		out = append(out, trace.Event{Kind: trace.Request, RID: rid, Time: t,
			In: trace.Input{Script: "view", Get: map[string]string{"i": fmt.Sprint(from + i)}}})
		t++
		out = append(out, trace.Event{Kind: trace.Response, RID: rid, Time: t, Body: "ok " + rid})
		t++
	}
	return out
}

func appendAll(t *testing.T, w *LogWriter, evs []trace.Event) {
	t.Helper()
	for _, ev := range evs {
		if err := w.AppendEvent(ev); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestLogRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 50, BatchEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	evs := mkEvents(100, 1) // 200 events -> at least 4 segments of <=50
	appendAll(t, w, evs)
	segs, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected >=4 rotated segments, got %d", len(segs))
	}
	total := 0
	for i, s := range segs {
		if s.Events == 0 || s.Records == 0 || s.SHA256 == "" {
			t.Fatalf("segment %d has empty metadata: %+v", i, s)
		}
		if i < len(segs)-1 && s.Events < 50 {
			t.Fatalf("segment %d rotated early at %d events", i, s.Events)
		}
		total += s.Events
	}
	if total != len(evs) {
		t.Fatalf("segments hold %d events, appended %d", total, len(evs))
	}
	got, err := ReadLogEvents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read back %d events, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i].RID != evs[i].RID || got[i].Kind != evs[i].Kind || got[i].Body != evs[i].Body {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, got[i], evs[i])
		}
		if got[i].Kind == trace.Request && got[i].In.Get["i"] != evs[i].In.Get["i"] {
			t.Fatalf("event %d input mismatch", i)
		}
	}
}

func TestLogRotationByBytes(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentBytes: 2048, BatchEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, mkEvents(200, 1))
	segs, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("byte threshold never rotated: %d segments", len(segs))
	}
}

// TestTornTailRecovery simulates a crash mid-write: the active segment
// loses its tail partway through a record. Reopening must keep every
// fully written record, drop the torn tail, and resume appending.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 1000, BatchEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	evs := mkEvents(30, 1) // 60 events -> 6 full records of 10
	appendAll(t, w, evs)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Abort() // crash: no finalize, segment keeps its .open name

	openPath := filepath.Join(dir, "seg-000001.open")
	data, err := os.ReadFile(openPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: cut 3 bytes off the end.
	if err := os.WriteFile(openPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 1000, BatchEvents: 10})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	// The torn record held events 51..60; 50 must have survived.
	if got := w2.Events(); got != 50 {
		t.Fatalf("recovered %d events, want 50", got)
	}
	appendAll(t, w2, mkEvents(5, 1000))
	if _, err := w2.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLogEvents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("after recovery+append read %d events, want 60", len(got))
	}
	if got[50].RID != "r001000" {
		t.Fatalf("resumed events out of place: got %s at index 50", got[50].RID)
	}
}

// TestTornTailRecoveryCorruptCRC flips a byte inside the LAST record of
// an active segment: recovery must truncate exactly that record.
func TestTornTailRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 1000, BatchEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, mkEvents(20, 1)) // 4 records
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	openPath := filepath.Join(dir, "seg-000001.open")
	data, err := os.ReadFile(openPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(openPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 1000, BatchEvents: 10})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := w2.Events(); got != 30 {
		t.Fatalf("recovered %d events, want 30 (last record dropped)", got)
	}
}

// TestFinalizedSegmentTamperDetected: a finalized segment must fail
// strict reading after any byte flips.
func TestFinalizedSegmentTamperDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 20, BatchEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, mkEvents(20, 1))
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "seg-000001.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readSegmentFile(segPath, true); err == nil {
		t.Fatal("strict read accepted a tampered finalized segment")
	}
	if _, err := ReadLogEvents(dir); err == nil {
		t.Fatal("ReadLogEvents accepted a tampered finalized segment")
	}
}

func TestReportsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := &reports.Reports{
		Groups:   map[uint64][]string{7: {"r1", "r2"}},
		Scripts:  map[uint64]string{7: "view"},
		OpCounts: map[string]int{"r1": 3, "r2": 1},
		NonDet:   map[string][]reports.NDEntry{"r1": {{Fn: "time", Value: "i42"}}},
	}
	path := filepath.Join(dir, ReportsName)
	info, err := WriteReportsFile(path, rep)
	if err != nil {
		t.Fatal(err)
	}
	if info.SHA256 == "" || info.Bytes == 0 {
		t.Fatalf("bad file info: %+v", info)
	}
	got, err := ReadReportsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups[7]) != 2 || got.Scripts[7] != "view" || got.OpCounts["r1"] != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Tamper: any byte flip must be detected by the record CRC.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportsFile(path); err == nil {
		t.Fatal("tampered reports file read back without error")
	}
}

func TestStaleOpenSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenLogWriter(dir, LogWriterOptions{SegmentEvents: 10, BatchEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, mkEvents(5, 1)) // exactly one full segment, rotated
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Simulate debris: an .open file with a sequence older than the
	// finalized segment.
	stale := filepath.Join(dir, "seg-000001.open")
	if err := os.WriteFile(stale, []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLogWriter(dir, LogWriterOptions{}); err != nil {
		t.Fatalf("reopen with stale .open debris: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale .open segment was not removed")
	}
}

func TestParseSegmentStrictRejectsJunk(t *testing.T) {
	img := segmentBytes(record{typ: recEvents, payload: []byte("x")})
	if _, _, err := parseSegment(append(img, 0xAB), true); err == nil {
		t.Fatal("strict parse accepted trailing junk")
	}
	if _, _, err := parseSegment([]byte("NOPE"), true); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}
