package epoch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// pipelineApp exercises all three object kinds plus nondeterminism, so
// epoch audits cover registers, KV, the DB, and nondet records.
var pipelineApp = map[string]string{
	"visit": `
$user = $_COOKIE["user"];
$sess = session_get("sess:" . $user);
if (!is_array($sess)) {
  $sess = ["visits" => 0];
}
$sess["visits"] = $sess["visits"] + 1;
session_set("sess:" . $user, $sess);
$hits = apc_get("hits");
if ($hits === null) { $hits = 0; }
apc_set("hits", $hits + 1);
echo "hello " . $user . ", visit " . $sess["visits"];
`,
	"post": `
$title = $_POST["title"];
$r = db_exec("INSERT INTO posts (title, votes) VALUES (" . db_quote($title) . ", 0)");
echo "created post " . $r["insert_id"];
`,
	"vote": `
$id = intval($_GET["id"]);
db_exec("UPDATE posts SET votes = votes + 1 WHERE id = " . $id);
$rows = db_query("SELECT votes FROM posts WHERE id = " . $id);
if (count($rows) > 0) {
  echo "votes=" . $rows[0]["votes"];
} else {
  echo "no such post";
}
`,
	"now": `
$t = time();
$r = mt_rand(1, 100);
echo "t=" . ($t > 0 ? "ok" : "bad") . " r=" . (($r >= 1 && $r <= 100) ? "ok" : "bad");
`,
}

var pipelineSchema = []string{
	`CREATE TABLE posts (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, votes INT)`,
}

func compilePipelineApp(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Compile(pipelineApp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// burst is one balanced batch of requests: epochs can only cut between
// bursts, so bursts make sealing deterministic in tests.
func burst(n, salt int) []trace.Input {
	var out []trace.Input
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, trace.Input{Script: "visit", Cookie: map[string]string{"user": "alice"}})
		case 1:
			out = append(out, trace.Input{Script: "post", Post: map[string]string{"title": fmt.Sprintf("t%d-%d", salt, i)}})
		case 2:
			out = append(out, trace.Input{Script: "vote", Get: map[string]string{"id": "1"}})
		default:
			out = append(out, trace.Input{Script: "now"})
		}
	}
	return out
}

// startPipeline builds a recording server with the epoch manager
// attached, ready to serve.
func startPipeline(t *testing.T, dir string, epochEvents int) (*lang.Program, *server.Server, *Manager) {
	t.Helper()
	prog := compilePipelineApp(t)
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(pipelineSchema); err != nil {
		t.Fatal(err)
	}
	mgr, err := StartManager(dir, srv, srv.Snapshot(), ManagerOptions{
		EpochEvents: epochEvents,
		Log:         LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, srv, mgr
}

func TestEpochPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 40)

	// 3 bursts of 25 requests = 50 events each >= 40: each burst ends
	// with a cut, plus Close seals nothing extra (last burst cut).
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(25, b), 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 3 {
		t.Fatalf("sealed %d epochs, want >= 3", len(sealed))
	}
	// Segment rotation happened inside epochs (50 events, 16/segment).
	if len(sealed[0].Manifest.Segments) < 3 {
		t.Fatalf("epoch 1 has %d segments, want >= 3", len(sealed[0].Manifest.Segments))
	}
	// The manifest hash chain must link every epoch to its predecessor.
	if sealed[0].Manifest.PrevManifestSHA256 != "" {
		t.Fatal("epoch 1 must not link to a predecessor")
	}
	if sealed[0].Manifest.Init == nil {
		t.Fatal("epoch 1 must carry the trusted init snapshot")
	}
	for i := 1; i < len(sealed); i++ {
		if sealed[i].Manifest.PrevManifestSHA256 != sealed[i-1].ManifestSHA {
			t.Fatalf("epoch %d chain link broken", sealed[i].Number)
		}
		if sealed[i].Manifest.Init != nil {
			t.Fatalf("epoch %d must not carry an init snapshot", sealed[i].Number)
		}
	}

	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) != len(sealed) {
		t.Fatalf("audited %d epochs, sealed %d", len(verdicts), len(sealed))
	}
	reqs := 0
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected: %s", v.Epoch, v.Reason)
		}
		if v.ChainSHA == "" {
			t.Fatalf("epoch %d has no ledger digest", v.Epoch)
		}
		reqs += v.Requests
	}
	if reqs != 75 {
		t.Fatalf("ledger covers %d requests, want 75", reqs)
	}
}

// tamperChunk flips one byte inside a stored chunk file of dir's chain
// store.
func tamperChunk(t *testing.T, dir, sha string) {
	t.Helper()
	path := filepath.Join(dir, CASDirName, sha[:2], sha)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// uniqueChunk returns a chunk digest referenced by sealed[idx] but by
// no earlier epoch, so tampering it cannot damage the epochs before it
// (chunks are shared across epochs — that is the point of the CAS).
func uniqueChunk(t *testing.T, sealed []*Sealed, idx int) string {
	t.Helper()
	prior := make(map[string]bool)
	for i := 0; i < idx; i++ {
		for _, r := range sealed[i].Manifest.ChunkRefs() {
			prior[r.SHA256] = true
		}
	}
	for _, r := range sealed[idx].Manifest.ChunkRefs() {
		if !prior[r.SHA256] {
			return r.SHA256
		}
	}
	t.Fatalf("epoch %d shares every chunk with earlier epochs", sealed[idx].Number)
	return ""
}

// TestEpochTamperBreaksChain flips one byte in a sealed chunk unique to
// epoch 2: the auditor must reject that epoch on its content digest and
// refuse to audit anything after it (the chain has no trusted state
// anymore).
func TestEpochTamperBreaksChain(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 40)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(25, b), 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 3 {
		t.Fatalf("sealed %d epochs, want >= 3", len(sealed))
	}

	sha := uniqueChunk(t, sealed, 1)
	tamperChunk(t, dir, sha)

	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2 (accept, then reject stops the chain)", len(verdicts))
	}
	if !verdicts[0].Accepted {
		t.Fatalf("epoch 1 rejected: %s", verdicts[0].Reason)
	}
	if verdicts[1].Accepted {
		t.Fatal("tampered epoch 2 was accepted")
	}
	// The REJECT's forensics must name the damaged chunk.
	if verdicts[1].Forensics == nil || verdicts[1].Forensics.Phase != PhaseEpochLoad {
		t.Fatalf("tamper forensics = %+v, want phase %s", verdicts[1].Forensics, PhaseEpochLoad)
	}
	if !strings.Contains(verdicts[1].Reason, sha) {
		t.Fatalf("reject reason %q does not name the tampered chunk %s", verdicts[1].Reason, sha)
	}
	if a.ChainAccepted() {
		t.Fatal("chain still accepted after tamper")
	}
	// Later runs must not advance past the break.
	if n, err := a.RunOnce(context.Background()); err != nil || n != 0 {
		t.Fatalf("auditor advanced past a broken chain: n=%d err=%v", n, err)
	}
}

// TestSnapshotChainingAcrossEpochs pins the §4.1/§4.5 hand-off: epoch
// N+1's audit must depend on epoch N's verified final snapshot, and a
// stale initial state must be rejected.
func TestSnapshotChainingAcrossEpochs(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 12)

	// Epoch 1: alice visits twice and creates a post.
	srv.ServeAll([]trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "post", Post: map[string]string{"title": "first"}},
		{Script: "now"},
		{Script: "now"},
		{Script: "now"},
	}, 1)
	// Epoch 2: her third visit and a vote on the epoch-1 post — both
	// reproducible only from epoch 1's final state. Concurrency 1 keeps
	// the trace order deterministic for the response check below.
	srv.ServeAll([]trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "vote", Get: map[string]string{"id": "1"}},
		{Script: "now"},
		{Script: "now"},
		{Script: "now"},
		{Script: "now"},
	}, 1)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed %d epochs, want 2", len(sealed))
	}

	// Chained audit: epoch 2 inherits epoch 1's FinalSnapshot.
	ep1, err := Load(sealed[0])
	if err != nil {
		t.Fatal(err)
	}
	res1, err := verifier.Audit(prog, ep1.Trace, ep1.Reports, ep1.Init, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Accepted {
		t.Fatalf("epoch 1 rejected: %s", res1.Reason)
	}
	chained, err := res1.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := Load(sealed[1])
	if err != nil {
		t.Fatal(err)
	}
	res2, err := verifier.Audit(prog, ep2.Trace, ep2.Reports, chained, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Accepted {
		t.Fatalf("epoch 2 rejected under chained state: %s", res2.Reason)
	}
	// Epoch 2's responses really did depend on epoch 1's state.
	if body, ok := ep2.Trace.ResponseOf(ep2.Trace.Requests()[0].RID); !ok || body != "hello alice, visit 3" {
		t.Fatalf("epoch 2 visit response %q does not continue epoch 1's session", body)
	}
	// A stale initial state (epoch 1's start) must be rejected.
	res2stale, err := verifier.Audit(prog, ep2.Trace, ep2.Reports, object.EmptySnapshot(), verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2stale.Accepted {
		t.Fatal("epoch 2 accepted under stale initial state")
	}

	// Tampering with a chunk of epoch 1's sealed segment must be caught
	// by its content digest before any re-execution happens.
	seg := sealed[0].Manifest.Segments[0]
	if len(seg.Chunks) == 0 {
		t.Fatalf("segment %s has no chunks", seg.Name)
	}
	tamperChunk(t, dir, seg.Chunks[0].SHA256)
	if _, err := Load(sealed[0]); err == nil {
		t.Fatal("tampered epoch 1 loaded without error")
	} else if _, ok := err.(*IntegrityError); !ok {
		t.Fatalf("tamper surfaced as %T, want *IntegrityError", err)
	}
	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.ChainAccepted() {
		t.Fatal("chain accepted despite epoch 1 tamper")
	}
}

// TestServeWhileAudit runs the background auditor concurrently with
// live serving: verdicts accumulate while new epochs are still being
// produced, and the ledger ends complete and accepted.
func TestServeWhileAudit(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 30)

	a := NewAuditor(prog, dir, AuditorOptions{
		Notify: mgr.Notify(),
		Poll:   20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Run(ctx)
	}()

	for b := 0; b < 5; b++ {
		srv.ServeAll(burst(16, b), 4) // 32 events per burst >= 30
	}
	// Let the background auditor make progress while serving could
	// still continue, then drain and close.
	deadline := time.After(5 * time.Second)
	for len(a.Verdicts()) == 0 {
		select {
		case <-deadline:
			t.Fatal("background auditor made no progress while serving")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	// Catch up on anything sealed after the background loop stopped.
	for {
		n, err := a.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 5 {
		t.Fatalf("sealed %d epochs, want >= 5", len(sealed))
	}
	verdicts := a.Verdicts()
	if len(verdicts) != len(sealed) {
		t.Fatalf("audited %d epochs, sealed %d", len(verdicts), len(sealed))
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected: %s", v.Epoch, v.Reason)
		}
	}
	if !a.ChainAccepted() {
		t.Fatal("chain rejected")
	}
}

// faultedWorkload builds a small wiki workload with the error-injecting
// request mix: unknown script, undefined function, and bad SQL faults
// sprinkled among normal traffic.
func faultedWorkload() *workload.Workload {
	return workload.WithErrors(
		workload.Wiki(workload.WikiParams{Requests: 80, Pages: 5, ZipfS: 0.53, Seed: 9}),
		workload.ErrorMixParams{Rate: 0.2, Seed: 9})
}

// startFaultedPipeline provisions a recording server for the faulted
// wiki workload with the epoch manager attached.
func startFaultedPipeline(t *testing.T, dir string, w *workload.Workload, opts server.Options) (*lang.Program, *server.Server, *Manager) {
	t.Helper()
	prog := w.App.Compile()
	opts.Record = true
	srv := server.New(prog, opts)
	if err := srv.Setup(w.App.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		t.Fatal(err)
	}
	mgr, err := StartManager(dir, srv, srv.Snapshot(), ManagerOptions{
		EpochEvents: 30,
		Log:         LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, srv, mgr
}

// countFaultedResponses loads every sealed epoch and counts traced
// error responses.
func countFaultedResponses(t *testing.T, dir string) int {
	t.Helper()
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	for _, s := range sealed {
		ep, err := Load(s)
		if err != nil {
			continue // tampered epochs fail integrity; callers check verdicts
		}
		for _, ev := range ep.Trace.Requests() {
			if body, ok := ep.Trace.ResponseOf(ev.RID); ok && strings.HasPrefix(body, "HTTP 500") {
				faulted++
			}
		}
	}
	return faulted
}

// TestEpochPipelineSurvivesFaultedPeriods is the serve-while-audit flow
// over a workload that includes faulting requests: epochs containing
// error responses must still chain to a clean ACCEPT.
func TestEpochPipelineSurvivesFaultedPeriods(t *testing.T) {
	dir := t.TempDir()
	w := faultedWorkload()
	prog, srv, mgr := startFaultedPipeline(t, dir, w, server.Options{})

	a := NewAuditor(prog, dir, AuditorOptions{
		Notify: mgr.Notify(),
		Poll:   20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Run(ctx)
	}()

	// Serve in balanced bursts so epochs cut between them.
	for i := 0; i < len(w.Requests); i += 16 {
		end := i + 16
		if end > len(w.Requests) {
			end = len(w.Requests)
		}
		srv.ServeAll(w.Requests[i:end], 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	for {
		n, err := a.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}

	if faulted := countFaultedResponses(t, dir); faulted == 0 {
		t.Fatal("workload produced no faulted responses; the test exercises nothing")
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) != len(sealed) || len(verdicts) == 0 {
		t.Fatalf("audited %d epochs, sealed %d", len(verdicts), len(sealed))
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d with faulted requests rejected: %s", v.Epoch, v.Reason)
		}
	}
	if !a.ChainAccepted() {
		t.Fatal("chain rejected despite honest execution")
	}
}

// TestEpochTamperedErrorBodyRejectsChain serves the same faulted
// workload through an executor that edits error bodies on the wire: the
// chain verdict must flip to REJECT at the first poisoned epoch.
func TestEpochTamperedErrorBodyRejectsChain(t *testing.T) {
	dir := t.TempDir()
	w := faultedWorkload()
	prog, srv, mgr := startFaultedPipeline(t, dir, w, server.Options{
		TamperResponse: func(rid, body string) string {
			// Rewrite the fault message: clients saw an error the program
			// could not have produced.
			return strings.Replace(body, "undefined_helper", "ghost_helper", 1)
		},
	})
	for i := 0; i < len(w.Requests); i += 16 {
		end := i + 16
		if end > len(w.Requests) {
			end = len(w.Requests)
		}
		srv.ServeAll(w.Requests[i:end], 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(prog, dir, AuditorOptions{})
	for {
		n, err := a.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if a.ChainAccepted() {
		t.Fatal("chain accepted despite tampered error bodies")
	}
	rejected := false
	for _, v := range a.Verdicts() {
		if !v.Accepted {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("no epoch rejected the tampered error response")
	}
}

// TestAuditorCheckpointResume audits a chain with checkpoints on, then
// re-audits only the tail from the persisted checkpoint.
func TestAuditorCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(12, b), 3) // 24 events per burst >= 20
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	full := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true})
	if _, err := full.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !full.ChainAccepted() || len(full.Verdicts()) < 3 {
		t.Fatalf("full audit failed: %+v", full.Verdicts())
	}

	snap, err := LoadCheckpoint(dir, 2)
	if err != nil {
		t.Fatalf("checkpoint for epoch 2 missing: %v", err)
	}
	tail := NewAuditor(prog, dir, AuditorOptions{From: 3, Init: snap})
	// The resumed auditor rehydrates epochs 1-2 from the decision log
	// (they are the prior run's verdicts), then re-audits from 3.
	if got := tail.Verdicts(); len(got) != 2 || got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Fatalf("rehydrated ledger should hold epochs 1-2: %+v", got)
	}
	if tail.NextEpoch() != 3 {
		t.Fatalf("tail audit should start at epoch 3, next = %d", tail.NextEpoch())
	}
	if _, err := tail.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := tail.Verdicts()
	if len(verdicts) < 3 || verdicts[2].Epoch != 3 {
		t.Fatalf("tail audit did not resume at epoch 3: %+v", verdicts)
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected on resume: %s", v.Epoch, v.Reason)
		}
	}
	// Rehydration restored the chain digest, so the resumed run's epoch-3
	// ChainSHA must equal the full run's (the ledgers agree bit for bit).
	if full.Verdicts()[2].ChainSHA != verdicts[2].ChainSHA {
		t.Fatalf("resumed chain digest diverged: %s vs %s",
			full.Verdicts()[2].ChainSHA, verdicts[2].ChainSHA)
	}
}

func TestManagerRefusesDirtyDir(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 12)
	_ = prog
	srv.ServeAll(burst(8, 0), 2)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(compilePipelineApp(t), server.Options{Record: true})
	if err := srv2.Setup(pipelineSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := StartManager(dir, srv2, srv2.Snapshot(), ManagerOptions{}); err == nil {
		t.Fatal("manager accepted a directory that already holds an epoch chain")
	}
}

// TestDamagedManifestRejects: a garbled MANIFEST.json must surface as
// a REJECT verdict for that epoch, not abort the scan — and the intact
// prefix before it must still be audited.
func TestDamagedManifestRejects(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(12, b), 3)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "epoch-000002", ManifestName)
	if err := os.WriteFile(manPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatalf("damaged manifest aborted the audit instead of rejecting: %v", err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(verdicts))
	}
	if !verdicts[0].Accepted {
		t.Fatalf("intact epoch 1 rejected: %s", verdicts[0].Reason)
	}
	if verdicts[1].Accepted || verdicts[1].Epoch != 2 {
		t.Fatalf("damaged epoch 2 not rejected: %+v", verdicts[1])
	}
	if a.ChainAccepted() {
		t.Fatal("chain accepted despite damaged manifest")
	}
}
