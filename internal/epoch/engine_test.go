package epoch

import (
	"context"
	"os"
	"reflect"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/verifier"
)

// TestChainVerdictsEngineIndependent seals one faulted chain, then
// audits two copies of it — one per execution engine, each at 1 and 8
// re-execution workers. Every verdict field that feeds the ledger
// (epoch number, outcome, reason, forensics, manifest digest, chain
// digest) must be bit-identical: the engine is a performance knob, not
// an observable.
func TestChainVerdictsEngineIndependent(t *testing.T) {
	dir := t.TempDir()
	w := faultedWorkload()
	prog, srv, mgr := startFaultedPipeline(t, dir, w, server.Options{})
	for i := 0; i < len(w.Requests); i += 16 {
		end := i + 16
		if end > len(w.Requests) {
			end = len(w.Requests)
		}
		srv.ServeAll(w.Requests[i:end], 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	type run struct {
		name    string
		eng     lang.Engine
		workers int
	}
	runs := []run{
		{"interp-w1", lang.EngineInterp, 1},
		{"interp-w8", lang.EngineInterp, 8},
		{"compiled-w1", lang.EngineCompiled, 1},
		{"compiled-w8", lang.EngineCompiled, 8},
		{"bytecode-w1", lang.EngineBytecode, 1},
		{"bytecode-w8", lang.EngineBytecode, 8},
	}
	type obs struct {
		Epoch       int64
		Accepted    bool
		Reason      string
		Forensics   *verifier.Forensics
		Events      int
		Requests    int
		ManifestSHA string
		ChainSHA    string
	}
	var want []obs
	for i, r := range runs {
		// Each run audits its own copy of the chain so decision logs
		// don't bleed between runs.
		cp := t.TempDir()
		if err := os.CopyFS(cp, os.DirFS(dir)); err != nil {
			t.Fatal(err)
		}
		a := NewAuditor(prog, cp, AuditorOptions{
			Verify: verifier.Options{Engine: r.eng, Workers: r.workers},
		})
		if _, err := a.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		verdicts := a.Verdicts()
		if len(verdicts) == 0 {
			t.Fatalf("%s: no verdicts", r.name)
		}
		var got []obs
		for _, v := range verdicts {
			if !v.Accepted {
				t.Fatalf("%s: epoch %d rejected: %s", r.name, v.Epoch, v.Reason)
			}
			got = append(got, obs{v.Epoch, v.Accepted, v.Reason, v.Forensics,
				v.Events, v.Requests, v.ManifestSHA, v.ChainSHA})
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s verdicts diverge from %s:\n%+v\nvs\n%+v", r.name, runs[0].name, got, want)
		}
	}
}
