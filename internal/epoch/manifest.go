package epoch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"orochi/internal/cas"
)

// Standard file names inside an epoch directory.
const (
	ManifestName = "MANIFEST.json"
	ReportsName  = "reports.seg"
	InitName     = "init.bin"
)

// ManifestVersionChunked marks a manifest whose artifacts live in the
// chain's content-addressed store as ordered chunk lists. Version 0
// (the field absent) is the original whole-file layout: every artifact
// is a file in the epoch directory, pinned by its file digest.
const ManifestVersionChunked = 2

// FileInfo pins one epoch artifact by name, size, and content digest.
// In a whole-file (v1) manifest the digest is over the artifact's
// on-disk file bytes. In a chunked (v2) manifest Bytes and SHA256
// describe the logical (uncompressed) blob and Chunks lists the
// content-defined chunks that reassemble it, in order.
type FileInfo struct {
	Name   string    `json:"name"`
	Bytes  int64     `json:"bytes"`
	SHA256 string    `json:"sha256"`
	Chunks []cas.Ref `json:"chunks,omitempty"`
}

// Manifest is the seal record of one epoch. Writing it (atomically, as
// the last step of sealing) is what makes an epoch visible to auditors;
// its PrevManifestSHA256 links epochs into a hash chain, so tampering
// with any sealed artifact — or with a past manifest itself — breaks
// verification of everything downstream.
type Manifest struct {
	// Version is the storage schema: 0/absent for whole-file epochs,
	// ManifestVersionChunked for content-addressed ones.
	Version    int   `json:"version,omitempty"`
	Epoch      int64 `json:"epoch"`
	SealedUnix int64 `json:"sealed_unix"`
	Events     int   `json:"events"`
	Requests   int   `json:"requests"`
	// Segments lists the event-log segments in order.
	Segments []SegmentInfo `json:"segments"`
	// Reports pins the report bundle file.
	Reports FileInfo `json:"reports"`
	// Init pins the trusted initial snapshot; only the first epoch of a
	// chain carries one — later epochs derive their trusted initial
	// state from the previous epoch's verified audit (§4.1, §4.5).
	Init *FileInfo `json:"init_snapshot,omitempty"`
	// PrevManifestSHA256 is the digest of the previous epoch's manifest
	// file ("" for the first epoch).
	PrevManifestSHA256 string `json:"prev_manifest_sha256"`
}

// Chunked reports whether the manifest's artifacts live in the chain's
// content-addressed store.
func (m *Manifest) Chunked() bool { return m.Version >= ManifestVersionChunked }

// ChunkRefs returns every chunk reference the manifest pins, across
// segments, reports, and the init snapshot (empty for v1 manifests).
// GC marks live chunks through it; scrub samples from it.
func (m *Manifest) ChunkRefs() []cas.Ref {
	var refs []cas.Ref
	for _, seg := range m.Segments {
		refs = append(refs, seg.Chunks...)
	}
	refs = append(refs, m.Reports.Chunks...)
	if m.Init != nil {
		refs = append(refs, m.Init.Chunks...)
	}
	return refs
}

// WriteManifest seals dir with m: the manifest is written to a temp
// file, fsynced, and atomically renamed into place. It returns the
// manifest digest the next epoch must chain to. On any failure the
// temp file is removed — a stale MANIFEST.json.tmp must never linger
// for a later seal (or an operator) to trip over.
func WriteManifest(dir string, m *Manifest) (string, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return cas.SumHex(data), nil
}

// ReadManifest loads an epoch's manifest and returns it with the digest
// of its on-disk bytes (the value the next epoch chains to). When the
// file exists but fails to parse, the digest is still returned so the
// damaged bytes can be pinned in an audit verdict.
func ReadManifest(dir string) (*Manifest, string, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, "", err
	}
	sha := cas.SumHex(data)
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, sha, fmt.Errorf("epoch: read manifest in %s: %w", dir, err)
	}
	return &m, sha, nil
}

// epochDirName formats the directory name of epoch n.
func epochDirName(n int64) string { return fmt.Sprintf("epoch-%06d", n) }

// EpochDirName is the exported naming scheme ("epoch-%06d") — the fleet
// artifact server resolves manifest paths with it.
func EpochDirName(n int64) string { return epochDirName(n) }

// epochDirNumber parses an epoch directory name, returning 0 unless the
// name matches the exact epoch-%06d shape — Sscanf alone would accept
// trailing junk like "epoch-2.bak" and alias it to epoch 2.
func epochDirNumber(name string) int64 {
	if !strings.HasPrefix(name, "epoch-") {
		return 0
	}
	var n int64
	if _, err := fmt.Sscanf(name, "epoch-%d", &n); err != nil || n <= 0 {
		return 0
	}
	if name != epochDirName(n) {
		return 0
	}
	return n
}

// Sealed describes one sealed epoch found on disk. A manifest that
// exists but is damaged (unparsable, or claiming the wrong epoch)
// still yields an entry, with Err set and Manifest nil: damaged seals
// are audit evidence — they must surface as REJECT verdicts, not
// vanish from the chain or abort the scan.
type Sealed struct {
	Number      int64
	Dir         string
	Manifest    *Manifest // nil when Err is set
	ManifestSHA string
	Err         error // non-nil when the manifest is damaged
	// Compacted reports a COMPACTED.json marker: retention compaction
	// evicted the epoch's bulk artifacts, and it survives as its stored
	// ACCEPT decision plus checkpoint (see GC). Best-effort here — a
	// damaged marker reads as false and is surfaced by Scrub.
	Compacted bool
}

// ListSealed scans dir for sealed epochs (those whose manifest exists,
// intact or damaged) and returns them in epoch order. Unsealed epoch
// directories — the one currently being written, or debris from a
// crash — are skipped.
func ListSealed(dir string) ([]*Sealed, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Sealed
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n := epochDirNumber(e.Name())
		if n == 0 {
			continue
		}
		epochDir := filepath.Join(dir, e.Name())
		m, sha, err := ReadManifest(epochDir)
		switch {
		case os.IsNotExist(err):
			continue // not sealed yet
		case err != nil:
			out = append(out, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha, Err: err})
			continue
		case m.Epoch != n:
			out = append(out, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha,
				Err: fmt.Errorf("epoch: manifest in %s claims epoch %d", epochDir, m.Epoch)})
			continue
		}
		marker, _ := ReadCompacted(epochDir)
		out = append(out, &Sealed{Number: n, Dir: epochDir, Manifest: m, ManifestSHA: sha,
			Compacted: marker != nil})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out, nil
}
