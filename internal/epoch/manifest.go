package epoch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Standard file names inside an epoch directory.
const (
	ManifestName = "MANIFEST.json"
	ReportsName  = "reports.seg"
	InitName     = "init.bin"
)

// FileInfo pins one epoch file by name, size, and content digest.
type FileInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the seal record of one epoch. Writing it (atomically, as
// the last step of sealing) is what makes an epoch visible to auditors;
// its PrevManifestSHA256 links epochs into a hash chain, so tampering
// with any sealed artifact — or with a past manifest itself — breaks
// verification of everything downstream.
type Manifest struct {
	Epoch      int64 `json:"epoch"`
	SealedUnix int64 `json:"sealed_unix"`
	Events     int   `json:"events"`
	Requests   int   `json:"requests"`
	// Segments lists the event-log segments in order.
	Segments []SegmentInfo `json:"segments"`
	// Reports pins the report bundle file.
	Reports FileInfo `json:"reports"`
	// Init pins the trusted initial snapshot; only the first epoch of a
	// chain carries one — later epochs derive their trusted initial
	// state from the previous epoch's verified audit (§4.1, §4.5).
	Init *FileInfo `json:"init_snapshot,omitempty"`
	// PrevManifestSHA256 is the digest of the previous epoch's manifest
	// file ("" for the first epoch).
	PrevManifestSHA256 string `json:"prev_manifest_sha256"`
}

// WriteManifest seals dir with m: the manifest is written to a temp
// file, fsynced, and atomically renamed into place. It returns the
// manifest digest the next epoch must chain to.
func WriteManifest(dir string, m *Manifest) (string, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return "", fmt.Errorf("epoch: write manifest: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// ReadManifest loads an epoch's manifest and returns it with the digest
// of its on-disk bytes (the value the next epoch chains to). When the
// file exists but fails to parse, the digest is still returned so the
// damaged bytes can be pinned in an audit verdict.
func ReadManifest(dir string) (*Manifest, string, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(data)
	sha := hex.EncodeToString(sum[:])
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, sha, fmt.Errorf("epoch: read manifest in %s: %w", dir, err)
	}
	return &m, sha, nil
}

// epochDirName formats the directory name of epoch n.
func epochDirName(n int64) string { return fmt.Sprintf("epoch-%06d", n) }

// epochDirNumber parses an epoch directory name, returning 0 unless the
// name matches the exact epoch-%06d shape — Sscanf alone would accept
// trailing junk like "epoch-2.bak" and alias it to epoch 2.
func epochDirNumber(name string) int64 {
	if !strings.HasPrefix(name, "epoch-") {
		return 0
	}
	var n int64
	if _, err := fmt.Sscanf(name, "epoch-%d", &n); err != nil || n <= 0 {
		return 0
	}
	if name != epochDirName(n) {
		return 0
	}
	return n
}

// Sealed describes one sealed epoch found on disk. A manifest that
// exists but is damaged (unparsable, or claiming the wrong epoch)
// still yields an entry, with Err set and Manifest nil: damaged seals
// are audit evidence — they must surface as REJECT verdicts, not
// vanish from the chain or abort the scan.
type Sealed struct {
	Number      int64
	Dir         string
	Manifest    *Manifest // nil when Err is set
	ManifestSHA string
	Err         error // non-nil when the manifest is damaged
}

// ListSealed scans dir for sealed epochs (those whose manifest exists,
// intact or damaged) and returns them in epoch order. Unsealed epoch
// directories — the one currently being written, or debris from a
// crash — are skipped.
func ListSealed(dir string) ([]*Sealed, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Sealed
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n := epochDirNumber(e.Name())
		if n == 0 {
			continue
		}
		epochDir := filepath.Join(dir, e.Name())
		m, sha, err := ReadManifest(epochDir)
		switch {
		case os.IsNotExist(err):
			continue // not sealed yet
		case err != nil:
			out = append(out, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha, Err: err})
			continue
		case m.Epoch != n:
			out = append(out, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha,
				Err: fmt.Errorf("epoch: manifest in %s claims epoch %d", epochDir, m.Epoch)})
			continue
		}
		out = append(out, &Sealed{Number: n, Dir: epochDir, Manifest: m, ManifestSHA: sha})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out, nil
}
