package epoch

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"orochi/internal/cas"
	"orochi/internal/verifier"
)

// PhaseScrub tags forensics for retrievability failures found by the
// storage self-audit rather than a full chain audit.
const PhaseScrub = "scrub"

// ScrubOptions tunes a retrievability pass.
type ScrubOptions struct {
	// Sample is how many chunks are spot-checked per epoch (default
	// 16; negative checks every chunk). The challenged chunks are
	// drawn pseudo-randomly per pass, so repeated passes cover the
	// store even at small samples — the proofs-of-retrievability
	// argument: a server missing any fraction of the chunks fails a
	// random challenge with probability growing per check.
	Sample int
	// Seed fixes the challenge randomness (0 derives one from the
	// clock — the normal, unpredictable-to-the-server mode).
	Seed int64
}

// ScrubFailure names one artifact that failed its challenge.
type ScrubFailure struct {
	Epoch int64  `json:"epoch"`
	Name  string `json:"name"`            // artifact (segment/reports/init/manifest)
	Chunk string `json:"chunk,omitempty"` // chunk digest, "" for whole-file artifacts
	Err   string `json:"err"`
}

func (f ScrubFailure) String() string {
	if f.Chunk != "" {
		return fmt.Sprintf("epoch %d %s chunk %s: %s", f.Epoch, f.Name, f.Chunk, f.Err)
	}
	return fmt.Sprintf("epoch %d %s: %s", f.Epoch, f.Name, f.Err)
}

// ScrubResult summarizes one retrievability pass.
type ScrubResult struct {
	Epochs        int // sealed epochs challenged
	Compacted     int // epochs verified as decision+checkpoint only
	ChunksChecked int
	FilesChecked  int
	Failures      []ScrubFailure
}

// OK reports whether every challenge passed.
func (r *ScrubResult) OK() bool { return len(r.Failures) == 0 }

// Scrub is the storage self-audit: it walks the manifest hash chain
// and challenge-reads randomly sampled chunks of every sealed epoch,
// verifying each against its digest — cheap assurance that archived
// epochs are still intact and retrievable without re-auditing (or even
// fully re-reading) them. Chain-link breaks, unreadable manifests, and
// failed challenges are reported as failures, not errors; an error is
// an internal fault (the chain directory itself unreadable).
func Scrub(ctx context.Context, dir string, opts ScrubOptions) (*ScrubResult, error) {
	if opts.Sample == 0 {
		opts.Sample = 16
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		return nil, err
	}
	store, err := OpenChainStore(dir)
	if err != nil {
		return nil, err
	}
	res := &ScrubResult{}
	prevSHA := ""
	chainBroken := false
	for _, s := range sealed {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("epoch: %w: %w", verifier.ErrAuditCanceled, context.Cause(ctx))
		}
		res.Epochs++
		if s.Err != nil {
			res.Failures = append(res.Failures, ScrubFailure{
				Epoch: s.Number, Name: ManifestName, Err: s.Err.Error()})
			chainBroken = true
			continue
		}
		// Walk the hash chain: a swapped-out manifest fails here even if
		// every byte it points at is retrievable. After a break the
		// remaining epochs are still challenged (their artifacts may be
		// fine), but their links are no longer meaningful.
		if !chainBroken && s.Manifest.PrevManifestSHA256 != prevSHA {
			res.Failures = append(res.Failures, ScrubFailure{
				Epoch: s.Number, Name: ManifestName,
				Err: fmt.Sprintf("chain link mismatch: manifest links to %s, previous is %s",
					short(s.Manifest.PrevManifestSHA256), short(prevSHA))})
			chainBroken = true
		}
		prevSHA = s.ManifestSHA

		marker, err := ReadCompacted(s.Dir)
		if err != nil {
			res.Failures = append(res.Failures, ScrubFailure{
				Epoch: s.Number, Name: CompactedName, Err: err.Error()})
			continue
		}
		if marker != nil {
			// Compacted epochs survive as decision + checkpoint; the
			// challenge is that both still exist and the checkpoint reads.
			res.Compacted++
			if _, err := LoadCheckpoint(dir, s.Number); err != nil {
				res.Failures = append(res.Failures, ScrubFailure{
					Epoch: s.Number, Name: "checkpoint", Err: err.Error()})
			}
			res.FilesChecked++
			continue
		}

		rng := rand.New(rand.NewSource(seed ^ s.Number))
		if s.Manifest.Chunked() {
			refs := s.Manifest.ChunkRefs()
			for _, i := range sampleIndexes(rng, len(refs), opts.Sample) {
				r := refs[i]
				data, err := store.Get(r.SHA256)
				switch {
				case err != nil:
					res.Failures = append(res.Failures, ScrubFailure{
						Epoch: s.Number, Name: artifactOfChunk(s.Manifest, i), Chunk: r.SHA256, Err: err.Error()})
				case int64(len(data)) != r.Bytes:
					res.Failures = append(res.Failures, ScrubFailure{
						Epoch: s.Number, Name: artifactOfChunk(s.Manifest, i), Chunk: r.SHA256,
						Err: fmt.Sprintf("chunk is %d bytes, manifest pins %d", len(data), r.Bytes)})
				}
				res.ChunksChecked++
			}
			continue
		}
		// Whole-file (v1) epoch: challenge each artifact where it lives —
		// the epoch dir, or the store after a migration.
		var files []FileInfo
		for _, seg := range s.Manifest.Segments {
			files = append(files, FileInfo{Name: seg.Name, Bytes: seg.Bytes, SHA256: seg.SHA256})
		}
		files = append(files, s.Manifest.Reports)
		if s.Manifest.Init != nil {
			files = append(files, *s.Manifest.Init)
		}
		for _, fi := range files {
			data, err := os.ReadFile(filepath.Join(s.Dir, fi.Name))
			if os.IsNotExist(err) {
				data, err = store.Get(fi.SHA256)
			}
			switch {
			case err != nil:
				res.Failures = append(res.Failures, ScrubFailure{Epoch: s.Number, Name: fi.Name, Err: err.Error()})
			case cas.SumHex(data) != fi.SHA256:
				res.Failures = append(res.Failures, ScrubFailure{Epoch: s.Number, Name: fi.Name,
					Err: fmt.Sprintf("digest mismatch (manifest %s, disk %s)", short(fi.SHA256), short(cas.SumHex(data)))})
			}
			res.FilesChecked++
		}
	}
	return res, nil
}

// samplePicks k distinct indexes out of n (all of them when k < 0 or
// k >= n), in ascending order.
func sampleIndexes(rng *rand.Rand, n, k int) []int {
	if n == 0 {
		return nil
	}
	if k < 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)[:k]
	// Ascending order keeps failure reports stable to read.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}

// artifactOfChunk maps a flat ChunkRefs index back to the artifact
// that owns it, for failure reports.
func artifactOfChunk(m *Manifest, idx int) string {
	for _, seg := range m.Segments {
		if idx < len(seg.Chunks) {
			return seg.Name
		}
		idx -= len(seg.Chunks)
	}
	if idx < len(m.Reports.Chunks) {
		return m.Reports.Name
	}
	idx -= len(m.Reports.Chunks)
	if m.Init != nil && idx < len(m.Init.Chunks) {
		return m.Init.Name
	}
	return "unknown"
}

// scrubDecision converts a scrub failure into a durable REJECT
// decision for an epoch that has never been audited: retrievability
// loss is audit evidence, and recording it through the same ledger the
// chain auditor uses means the console, -explain, and the ack workflow
// all see it. Epochs that already hold a decision are annotated
// instead (DecisionLog.MarkScrubFailed) — a verdict line would replace
// the stored decision whole, and destroying a compacted epoch's ACCEPT
// over one failed challenge would brick the chain unrecoverably.
func scrubDecision(manifestSHA string, f ScrubFailure) Decision {
	detail := f.String()
	now := time.Now().UTC()
	return Decision{
		Epoch:    f.Epoch,
		Accepted: false,
		Reason:   fmt.Sprintf("retrievability: %s", detail),
		Forensics: &verifier.Forensics{
			Phase:  PhaseScrub,
			Check:  "retrievability",
			Detail: detail,
		},
		ManifestSHA: manifestSHA,
		DecidedAt:   now,
		Resolution:  ResolutionOpen,
		ScrubFailed: true,
		ScrubDetail: detail,
		ScrubAt:     now,
	}
}

// RecordScrubFailures records a pass's failures in the chain's decision
// log, one entry per failed epoch (the first failure per epoch wins).
// An epoch that already holds a decision is annotated — its verdict,
// resolution, and metrics stand, so an ACCEPT (a compacted epoch's only
// trust artifact) is never downgraded and an acknowledged REJECT is
// never reopened; an epoch already flagged stays flagged without
// another line, so a persistent failure re-challenged by the background
// scrubber every pass does not grow the log. Only an epoch with no
// decision at all gets a fresh scrub REJECT verdict. It returns how
// many lines were appended.
func RecordScrubFailures(log *DecisionLog, dir string, res *ScrubResult) (int, error) {
	if res.OK() {
		return 0, nil
	}
	shaByEpoch := make(map[int64]string)
	if sealed, err := ListSealed(dir); err == nil {
		for _, s := range sealed {
			shaByEpoch[s.Number] = s.ManifestSHA
		}
	}
	seen := make(map[int64]bool)
	appended := 0
	for _, f := range res.Failures {
		if seen[f.Epoch] {
			continue
		}
		seen[f.Epoch] = true
		if d, ok := log.Get(f.Epoch); ok {
			if d.ScrubFailed {
				continue
			}
			if err := log.MarkScrubFailed(f.Epoch, f.String()); err != nil {
				return appended, err
			}
			appended++
			continue
		}
		if err := log.Append(scrubDecision(shaByEpoch[f.Epoch], f)); err != nil {
			return appended, err
		}
		appended++
	}
	return appended, nil
}

// ScrubberOptions tunes the background scrubber.
type ScrubberOptions struct {
	// Interval between passes (default 5m).
	Interval time.Duration
	// Sample per epoch per pass (ScrubOptions.Sample).
	Sample int
}

// ScrubberStatus is a point-in-time view of the background scrubber.
type ScrubberStatus struct {
	Runs          int64
	ChunksChecked int64
	FilesChecked  int64
	Failures      int64 // total failed challenges across all passes
	LastRun       time.Time
	LastFailures  int // failures in the most recent pass
	LastErr       string
}

// Scrubber periodically scrubs a chain directory in the background and
// records failures in the decision log (annotating epochs that already
// hold a decision, REJECTing only never-audited ones — see
// RecordScrubFailures). It shares the auditor's
// DecisionLog — two writers on the same decisions.jsonl would corrupt
// the event stream, so the serve CLI passes Auditor.Decisions() in.
type Scrubber struct {
	dir  string
	log  *DecisionLog
	opts ScrubberOptions

	mu     sync.Mutex
	status ScrubberStatus
}

// NewScrubber builds a background scrubber over the chain in dir,
// recording failures to log (which must be the same DecisionLog any
// concurrent auditor uses).
func NewScrubber(dir string, log *DecisionLog, opts ScrubberOptions) *Scrubber {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Minute
	}
	return &Scrubber{dir: dir, log: log, opts: opts}
}

// Run scrubs every Interval until ctx is cancelled.
func (s *Scrubber) Run(ctx context.Context) {
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.RunOnce(ctx)
		}
	}
}

// RunOnce performs one scrub pass and records any failures.
func (s *Scrubber) RunOnce(ctx context.Context) (*ScrubResult, error) {
	res, err := Scrub(ctx, s.dir, ScrubOptions{Sample: s.opts.Sample})
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status.Runs++
	s.status.LastRun = time.Now()
	if err != nil {
		s.status.LastErr = err.Error()
		return nil, err
	}
	s.status.LastErr = ""
	s.status.ChunksChecked += int64(res.ChunksChecked)
	s.status.FilesChecked += int64(res.FilesChecked)
	s.status.Failures += int64(len(res.Failures))
	s.status.LastFailures = len(res.Failures)
	if !res.OK() && s.log != nil {
		if _, err := RecordScrubFailures(s.log, s.dir, res); err != nil {
			s.status.LastErr = err.Error()
		}
	}
	return res, nil
}

// Status reports the scrubber's counters so far.
func (s *Scrubber) Status() ScrubberStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}
