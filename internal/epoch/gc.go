package epoch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CompactedName marks an epoch whose bulk artifacts have been evicted
// by retention compaction. The manifest file stays untouched (the hash
// chain over manifests must remain intact), and the epoch survives as
// its stored ACCEPT decision plus checkpoint snapshot — exactly the
// paper's trust artifact for a verified period.
const CompactedName = "COMPACTED.json"

// CompactedMarker is the durable record left behind by compaction.
type CompactedMarker struct {
	Epoch       int64  `json:"epoch"`
	ManifestSHA string `json:"manifest_sha256"`
	// ChainSHA is the audit ledger digest of the ACCEPT decision the
	// compaction trusted.
	ChainSHA      string `json:"chain_sha256"`
	CompactedUnix int64  `json:"compacted_unix"`
}

// ReadCompacted reads an epoch directory's compaction marker, if any.
func ReadCompacted(epochDir string) (*CompactedMarker, error) {
	data, err := os.ReadFile(filepath.Join(epochDir, CompactedName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m CompactedMarker
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("epoch: damaged compaction marker in %s: %w", epochDir, err)
	}
	return &m, nil
}

// GCOptions tunes a collection pass.
type GCOptions struct {
	// DryRun reports what would be compacted and swept without
	// deleting anything.
	DryRun bool
	// Retain, when > 0, compacts sealed epochs older than the newest
	// Retain: an epoch is compacted only when its stored decision is
	// ACCEPT and its checkpoint snapshot exists — it then survives as
	// decision + checkpoint, and its chunks become eligible for
	// sweeping. Zero means no compaction: only unreferenced (orphan)
	// chunks are swept, and the whole chain stays re-auditable.
	Retain int
}

// GCResult reports what a collection pass did (or, dry-run, would do).
type GCResult struct {
	Epochs      int     // sealed epochs scanned
	Compacted   []int64 // epochs compacted by this pass
	Skipped     []int64 // retention candidates left alone (no ACCEPT decision or checkpoint)
	LiveChunks  int
	SweptChunks int
	SweptBytes  int64 // at-rest bytes reclaimed (compressed chunk files)
}

// GC garbage-collects the chain directory's chunk store: it marks the
// chunks every sealed, non-compacted manifest references (plus the
// whole-file blobs of migrated v1 epochs) and sweeps the rest —
// orphans from crashed seals, chunks unreferenced since a compaction.
// A damaged manifest anywhere aborts the pass: damaged seals are audit
// evidence, and a GC that deleted their chunks would destroy it.
func GC(dir string, opts GCOptions) (*GCResult, error) {
	sealed, err := ListSealed(dir)
	if err != nil {
		return nil, err
	}
	res := &GCResult{Epochs: len(sealed)}
	for _, s := range sealed {
		if s.Err != nil {
			return nil, fmt.Errorf("epoch: gc: epoch %d has a damaged manifest (audit evidence, refusing to collect): %w", s.Number, s.Err)
		}
	}
	store, err := OpenChainStore(dir)
	if err != nil {
		return nil, err
	}

	// Retention compaction: mark old verified epochs compacted so their
	// chunks fall out of the live set.
	compacted := make(map[int64]bool)
	for _, s := range sealed {
		marker, err := ReadCompacted(s.Dir)
		if err != nil {
			return nil, fmt.Errorf("epoch: gc: %w", err)
		}
		if marker != nil {
			compacted[s.Number] = true
		}
	}
	if opts.Retain > 0 && len(sealed) > opts.Retain {
		var decisions map[int64]Decision
		cutoff := sealed[len(sealed)-opts.Retain].Number
		for _, s := range sealed {
			if s.Number >= cutoff || compacted[s.Number] {
				continue
			}
			if decisions == nil {
				ds, err := ReadDecisions(dir)
				if err != nil && !os.IsNotExist(err) {
					return nil, fmt.Errorf("epoch: gc: retention needs the decision log: %w", err)
				}
				// No decision log at all: no epoch is verified, every
				// retention candidate is skipped below.
				decisions = make(map[int64]Decision, len(ds))
				for _, d := range ds {
					decisions[d.Epoch] = d
				}
			}
			d, ok := decisions[s.Number]
			if !ok || !d.Accepted {
				res.Skipped = append(res.Skipped, s.Number)
				continue
			}
			if _, err := os.Stat(checkpointPath(dir, s.Number)); err != nil {
				res.Skipped = append(res.Skipped, s.Number)
				continue
			}
			if !opts.DryRun {
				marker := &CompactedMarker{
					Epoch:         s.Number,
					ManifestSHA:   s.ManifestSHA,
					ChainSHA:      d.ChainSHA,
					CompactedUnix: time.Now().Unix(),
				}
				data, err := json.MarshalIndent(marker, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := writeFileSync(filepath.Join(s.Dir, CompactedName), append(data, '\n')); err != nil {
					return nil, fmt.Errorf("epoch: gc: compact epoch %d: %w", s.Number, err)
				}
			}
			compacted[s.Number] = true
			res.Compacted = append(res.Compacted, s.Number)
		}
	}

	// Mark: every chunk (and migrated whole-file blob) a live manifest
	// still references.
	live := make(map[string]bool)
	for _, s := range sealed {
		if compacted[s.Number] {
			continue
		}
		for _, r := range s.Manifest.ChunkRefs() {
			live[r.SHA256] = true
		}
		if !s.Manifest.Chunked() {
			// Migrated v1 epochs store whole files under their manifest
			// digests; keep those blobs live whether or not the files
			// have been migrated yet (Put is keyed by the same digest).
			for _, seg := range s.Manifest.Segments {
				live[seg.SHA256] = true
			}
			live[s.Manifest.Reports.SHA256] = true
			if s.Manifest.Init != nil {
				live[s.Manifest.Init.SHA256] = true
			}
		}
	}
	res.LiveChunks = len(live)

	// Sweep.
	stored, err := store.List()
	if err != nil {
		return nil, err
	}
	for _, sha := range stored {
		if live[sha] {
			continue
		}
		res.SweptChunks++
		if fi, err := os.Stat(filepath.Join(store.Root(), sha[:2], sha)); err == nil {
			res.SweptBytes += fi.Size()
		}
		if !opts.DryRun {
			if err := store.Delete(sha); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
