package epoch

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"orochi/internal/verifier"
)

// TestAuditorNotifyChanShared pins the fix for the per-poll allocation:
// with no Notify channel configured, every poll iteration must reuse
// one shared never-firing channel instead of allocating a fresh one.
func TestAuditorNotifyChanShared(t *testing.T) {
	a := NewAuditor(nil, t.TempDir(), AuditorOptions{})
	if a.notifyChan() != a.notifyChan() {
		t.Fatal("notifyChan allocates a new channel per call when Notify is unset")
	}
	notify := make(chan struct{})
	b := NewAuditor(nil, t.TempDir(), AuditorOptions{Notify: notify})
	if b.notifyChan() != (<-chan struct{})(notify) {
		t.Fatal("notifyChan must return the configured Notify channel")
	}
}

// TestAuditorCheckpointRetry pins the fix for the lost-checkpoint bug:
// RunOnce used to advance past an epoch before its checkpoint write
// succeeded, so a transient write failure permanently skipped that
// epoch's checkpoint and a later -from resume failed. The failed write
// must be retried on the next RunOnce.
func TestAuditorCheckpointRetry(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(12, b), 3) // 24 events per burst >= 20
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Block checkpoint writes: a plain file where the checkpoints
	// directory must go makes MkdirAll fail.
	blocker := filepath.Join(dir, "checkpoints")
	if err := os.WriteFile(blocker, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}

	a := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true})
	audited, err := a.RunOnce(context.Background())
	if err == nil {
		t.Fatal("RunOnce must surface the checkpoint write failure")
	}
	var ck *CheckpointError
	if !errors.As(err, &ck) || ck.Epoch != 1 {
		t.Fatalf("want a CheckpointError for epoch 1, got %v", err)
	}
	if audited != 1 {
		t.Fatalf("audited %d epochs before the write failure, want 1", audited)
	}
	// The verdict is already published and the chain advanced — only the
	// checkpoint is owed.
	if got := a.NextEpoch(); got != 2 {
		t.Fatalf("NextEpoch = %d after epoch 1's verdict, want 2", got)
	}
	if verdicts := a.Verdicts(); len(verdicts) != 1 || !verdicts[0].Accepted {
		t.Fatalf("epoch 1 verdict not published: %+v", verdicts)
	}

	// Still blocked: the retry must fail again without auditing further.
	if n, err := a.RunOnce(context.Background()); err == nil {
		t.Fatal("RunOnce must keep failing while the checkpoint cannot be written")
	} else if n != 0 {
		t.Fatalf("RunOnce audited %d epochs past an unwritten checkpoint", n)
	}

	// Unblock and let the retry land.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	for {
		n, err := a.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if !a.ChainAccepted() || len(a.Verdicts()) < 3 {
		t.Fatalf("chain audit incomplete after retry: %+v", a.Verdicts())
	}
	// Every epoch's checkpoint exists — including epoch 1, whose first
	// write failed — and a -from resume works from the retried one.
	for n := int64(1); n <= 2; n++ {
		if _, err := LoadCheckpoint(dir, n); err != nil {
			t.Fatalf("checkpoint for epoch %d missing after retry: %v", n, err)
		}
	}
	snap, err := LoadCheckpoint(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	tail := NewAuditor(prog, dir, AuditorOptions{From: 2, Init: snap})
	// Epoch 1's verdict is rehydrated from the decision log; the
	// re-audit itself starts at epoch 2.
	if tail.NextEpoch() != 2 {
		t.Fatalf("resume from retried checkpoint should audit from epoch 2, next = %d", tail.NextEpoch())
	}
	if _, err := tail.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := tail.Verdicts()
	if len(verdicts) < 2 || verdicts[0].Epoch != 1 || verdicts[1].Epoch != 2 {
		t.Fatalf("resume from retried checkpoint did not re-audit epoch 2: %+v", verdicts)
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected on resume: %s", v.Epoch, v.Reason)
		}
	}
}

// TestAuditorRunRetriesCheckpointWrites drives the continuous Run loop
// through a transient checkpoint-write failure: Run must poll through
// the retryable CheckpointError (verdicts keep getting published) and
// finish cleanly once the write succeeds — not abandon the chain.
func TestAuditorRunRetriesCheckpointWrites(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 2; b++ {
		srv.ServeAll(burst(12, b), 3) // 24 events per burst >= 20: 2 epochs
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, "checkpoints")
	if err := os.WriteFile(blocker, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Poll slow enough that the blocked window below stays far under the
	// maxCheckpointRetries budget.
	a := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true, To: 2, Poll: 20 * time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- a.Run(context.Background()) }()

	// Epoch 1's verdict lands even while its checkpoint cannot be
	// written; Run keeps retrying instead of exiting.
	waitFor(t, "epoch 1 verdict", func() bool { return len(a.Verdicts()) >= 1 })
	select {
	case err := <-done:
		t.Fatalf("Run gave up on a retryable checkpoint failure: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not finish after the checkpoint path was unblocked")
	}
	if !a.ChainAccepted() || len(a.Verdicts()) != 2 {
		t.Fatalf("chain incomplete: %+v", a.Verdicts())
	}
	for n := int64(1); n <= 2; n++ {
		if _, err := LoadCheckpoint(dir, n); err != nil {
			t.Fatalf("checkpoint for epoch %d missing: %v", n, err)
		}
	}
}

// TestAuditorRunSurfacesPersistentCheckpointFailure: a checkpoint path
// that never becomes writable must not stall Run silently forever — the
// error surfaces after the bounded retry budget.
func TestAuditorRunSurfacesPersistentCheckpointFailure(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	srv.ServeAll(burst(12, 0), 3)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, "checkpoints")
	if err := os.WriteFile(blocker, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true, To: 1, Poll: time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- a.Run(context.Background()) }()
	select {
	case err := <-done:
		var ck *CheckpointError
		if !errors.As(err, &ck) {
			t.Fatalf("want a surfaced CheckpointError, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run retried a permanently failing checkpoint forever")
	}
	// The verdict itself was still published.
	if v := a.Verdicts(); len(v) != 1 || !v[0].Accepted {
		t.Fatalf("epoch 1 verdict missing: %+v", v)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAuditorParallelVerifyMatches audits one chain with sequential and
// parallel verifier options; the ledger must be identical.
func TestAuditorParallelVerifyMatches(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 2; b++ {
		srv.ServeAll(burst(12, b), 3)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []Verdict {
		a := NewAuditor(prog, dir, AuditorOptions{Verify: verifier.Options{Workers: workers}})
		if _, err := a.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		return a.Verdicts()
	}
	seq, par := run(1), run(8)
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("ledger lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Accepted != par[i].Accepted || seq[i].Reason != par[i].Reason ||
			seq[i].ChainSHA != par[i].ChainSHA {
			t.Fatalf("epoch %d verdicts differ: %+v vs %+v", seq[i].Epoch, seq[i], par[i])
		}
	}
}
