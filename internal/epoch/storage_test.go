package epoch

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orochi/internal/cas"
	"orochi/internal/lang"
	"orochi/internal/server"
)

// startPipelineMode is startPipeline with an explicit storage mode, for
// exercising the whole-file (v1) layout and the migration path.
func startPipelineMode(t *testing.T, dir string, epochEvents int, mode StorageMode) (*lang.Program, *server.Server, *Manager) {
	t.Helper()
	prog := compilePipelineApp(t)
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(pipelineSchema); err != nil {
		t.Fatal(err)
	}
	mgr, err := StartManager(dir, srv, srv.Snapshot(), ManagerOptions{
		EpochEvents: epochEvents,
		Storage:     mode,
		Log:         LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, srv, mgr
}

// sealChain seals >= 3 epochs into dir and returns the program.
func sealChain(t *testing.T, dir string, mode StorageMode) *lang.Program {
	t.Helper()
	prog, srv, mgr := startPipelineMode(t, dir, 20, mode)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(12, b), 3) // 24 events per burst >= 20
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGCSweepsOrphanChunks(t *testing.T) {
	dir := t.TempDir()
	prog := sealChain(t, dir, StorageChunked)

	// Plant an orphan — debris a crashed seal would leave behind.
	store, err := OpenChainStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	orphan := []byte("orphaned chunk from a crashed seal")
	orphanSHA := cas.SumHex(orphan)
	if err := store.Put(orphanSHA, orphan); err != nil {
		t.Fatal(err)
	}

	dry, err := GC(dir, GCOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if dry.SweptChunks != 1 || dry.SweptBytes == 0 {
		t.Fatalf("dry run should report exactly the orphan: %+v", dry)
	}
	if !store.Has(orphanSHA) {
		t.Fatal("dry run must not delete anything")
	}
	if len(dry.Compacted) != 0 {
		t.Fatalf("no retention requested, yet compacted %v", dry.Compacted)
	}

	res, err := GC(dir, GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SweptChunks != 1 {
		t.Fatalf("swept %d chunks, want 1 (the orphan)", res.SweptChunks)
	}
	if store.Has(orphanSHA) {
		t.Fatal("orphan survived the sweep")
	}
	if res.LiveChunks == 0 {
		t.Fatal("live set should not be empty")
	}

	// Every referenced chunk survived: the chain still audits clean.
	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !a.ChainAccepted() {
		t.Fatalf("chain rejected after GC: %+v", a.Verdicts())
	}
}

func TestGCRetentionSkipsUnverifiedEpochs(t *testing.T) {
	dir := t.TempDir()
	sealChain(t, dir, StorageChunked)

	// No audit has run: no decisions, no checkpoints — nothing may be
	// compacted, however old.
	res, err := GC(dir, GCOptions{Retain: 1, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compacted) != 0 {
		t.Fatalf("compacted unverified epochs %v", res.Compacted)
	}
	if len(res.Skipped) == 0 {
		t.Fatal("retention candidates without decisions should be reported as skipped")
	}
}

func TestGCRetentionCompactsAndAuditorAdopts(t *testing.T) {
	dir := t.TempDir()
	prog := sealChain(t, dir, StorageChunked)

	full := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true})
	if _, err := full.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	fullVerdicts := full.Verdicts()
	if !full.ChainAccepted() || len(fullVerdicts) < 3 {
		t.Fatalf("full audit failed: %+v", fullVerdicts)
	}
	n := len(fullVerdicts)

	res, err := GC(dir, GCOptions{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compacted) != n-1 {
		t.Fatalf("compacted %v, want the %d epochs before the newest", res.Compacted, n-1)
	}
	if res.SweptChunks == 0 {
		t.Fatal("compaction should have released chunks to sweep")
	}
	marker, err := ReadCompacted(filepath.Join(dir, epochDirName(1)))
	if err != nil || marker == nil {
		t.Fatalf("epoch 1 should carry a compaction marker: %v %v", marker, err)
	}
	if marker.ManifestSHA == "" || marker.ChainSHA == "" {
		t.Fatalf("marker must pin manifest and chain digests: %+v", marker)
	}

	// A fresh auditor adopts the compacted epochs (decision +
	// checkpoint) and fully re-verifies the retained tail. The chain
	// digest must come out bit-identical to the original full audit.
	re := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := re.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := re.Verdicts()
	if len(verdicts) != n {
		t.Fatalf("re-audit covered %d epochs, want %d", len(verdicts), n)
	}
	for i, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected after compaction: %s", v.Epoch, v.Reason)
		}
		wantAdopted := i < n-1
		if v.Adopted != wantAdopted {
			t.Fatalf("epoch %d adopted=%v, want %v", v.Epoch, v.Adopted, wantAdopted)
		}
	}
	if got, want := verdicts[n-1].ChainSHA, fullVerdicts[n-1].ChainSHA; got != want {
		t.Fatalf("chain digest diverged after compaction: %s vs %s", got, want)
	}

	// Tampering a surviving chunk must still break the retained tail.
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := sealed[len(sealed)-1]
	refs := last.Manifest.ChunkRefs()
	if len(refs) == 0 {
		t.Fatal("retained epoch has no chunks")
	}
	tamperChunk(t, dir, refs[0].SHA256)
	post := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := post.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	pv := post.Verdicts()
	lastV := pv[len(pv)-1]
	if lastV.Accepted || lastV.Epoch != last.Number {
		t.Fatalf("tampered retained epoch should reject: %+v", lastV)
	}
	if !strings.Contains(lastV.Reason, refs[0].SHA256) {
		t.Fatalf("reject should name the tampered chunk digest, got: %s", lastV.Reason)
	}
}

func TestScrubDetectsTamperAndRecordsDecision(t *testing.T) {
	dir := t.TempDir()
	sealChain(t, dir, StorageChunked)

	clean, err := Scrub(context.Background(), dir, ScrubOptions{Sample: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("clean chain failed scrub: %+v", clean.Failures)
	}
	if clean.ChunksChecked == 0 || clean.Epochs < 3 {
		t.Fatalf("scrub checked nothing: %+v", clean)
	}

	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	sha := uniqueChunk(t, sealed, 1)
	tamperChunk(t, dir, sha)

	res, err := Scrub(context.Background(), dir, ScrubOptions{Sample: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("scrub missed a tampered chunk at full sampling")
	}
	found := false
	for _, f := range res.Failures {
		if f.Chunk == sha && f.Epoch == sealed[1].Number {
			found = true
		}
	}
	if !found {
		t.Fatalf("failures should name chunk %s of epoch %d: %+v", short(sha), sealed[1].Number, res.Failures)
	}

	log, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	appended, err := RecordScrubFailures(log, dir, res)
	if err != nil {
		t.Fatal(err)
	}
	if appended == 0 {
		t.Fatal("scrub failures should append REJECT decisions")
	}
	d, ok := log.Get(sealed[1].Number)
	if !ok || d.Accepted {
		t.Fatalf("epoch %d should hold a REJECT decision: %+v", sealed[1].Number, d)
	}
	if d.Forensics == nil || d.Forensics.Phase != PhaseScrub {
		t.Fatalf("decision should carry scrub forensics: %+v", d.Forensics)
	}
	if !strings.Contains(d.Reason, sha) {
		t.Fatalf("decision reason should name the chunk digest: %s", d.Reason)
	}
}

func TestScrubDetectsMissingChunk(t *testing.T) {
	dir := t.TempDir()
	sealChain(t, dir, StorageChunked)
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	sha := uniqueChunk(t, sealed, 0)
	store, err := OpenChainStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(sha); err != nil {
		t.Fatal(err)
	}
	res, err := Scrub(context.Background(), dir, ScrubOptions{Sample: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("scrub missed a deleted chunk")
	}
}

func TestScrubberRunOnceSharesDecisionLog(t *testing.T) {
	dir := t.TempDir()
	prog := sealChain(t, dir, StorageChunked)
	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	sha := uniqueChunk(t, sealed, 1)
	tamperChunk(t, dir, sha)

	sc := NewScrubber(dir, a.Decisions(), ScrubberOptions{Sample: -1})
	res, err := sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("scrubber missed the tampered chunk")
	}
	st := sc.Status()
	if st.Runs != 1 || st.Failures == 0 || st.LastFailures == 0 {
		t.Fatalf("scrubber status not updated: %+v", st)
	}
	// The failure landed in the auditor's ledger (same DecisionLog) as
	// an annotation: the epoch was audited ACCEPT before the tamper, and
	// that stored verdict must stand — a scrub failure flags it without
	// rewriting it.
	d, ok := a.Decisions().Get(sealed[1].Number)
	if !ok || !d.Accepted {
		t.Fatalf("scrub must not downgrade epoch %d's stored ACCEPT: %+v", sealed[1].Number, d)
	}
	if !d.ScrubFailed || !strings.Contains(d.ScrubDetail, sha) {
		t.Fatalf("epoch %d should carry a scrub annotation naming chunk %s: %+v", sealed[1].Number, short(sha), d)
	}
	if d.ChainSHA == "" || d.Timings.Total == 0 {
		t.Fatalf("annotation must leave the audit's chain digest and metrics intact: %+v", d)
	}

	// A second pass re-challenges the same persistent failure; the flag
	// already stands, so nothing more is appended — the log must not
	// grow every scrub interval forever.
	before := decisionLogLines(t, dir)
	if _, err := sc.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := decisionLogLines(t, dir); after != before {
		t.Fatalf("repeated scrub pass grew the decision log: %d -> %d lines", before, after)
	}
}

// decisionLogLines counts lines of dir's decisions.jsonl.
func decisionLogLines(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, DecisionLogName))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

func TestScrubNeverReopensAckedReject(t *testing.T) {
	dir := t.TempDir()
	prog := sealChain(t, dir, StorageChunked)
	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	sha := uniqueChunk(t, sealed, 1)
	tamperChunk(t, dir, sha)

	// The chain audit REJECTs the tampered epoch; an operator
	// investigates and acknowledges the verdict.
	a := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	n := sealed[1].Number
	if d, ok := a.Decisions().Get(n); !ok || d.Accepted {
		t.Fatalf("tampered epoch %d should hold a REJECT: %+v", n, d)
	}
	acked, err := a.Decisions().Ack(n, "tamper investigated")
	if err != nil {
		t.Fatal(err)
	}

	// A scrub pass re-finds the same damage. The acknowledged decision
	// must stand — annotated, not reopened with a fresh DecidedAt.
	res, err := Scrub(context.Background(), dir, ScrubOptions{Sample: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("scrub missed the tampered chunk")
	}
	if _, err := RecordScrubFailures(a.Decisions(), dir, res); err != nil {
		t.Fatal(err)
	}
	d, ok := a.Decisions().Get(n)
	if !ok || d.Resolution != ResolutionAcked || d.Note != "tamper investigated" {
		t.Fatalf("scrub reopened an acknowledged decision: %+v", d)
	}
	if !d.DecidedAt.Equal(acked.DecidedAt) {
		t.Fatalf("scrub forged a fresh DecidedAt: %v -> %v", acked.DecidedAt, d.DecidedAt)
	}
	if !d.ScrubFailed {
		t.Fatalf("acked decision should still gain the scrub annotation: %+v", d)
	}
}

func TestCompactedAdoptionFailureKeepsStoredAccept(t *testing.T) {
	dir := t.TempDir()
	prog := sealChain(t, dir, StorageChunked)

	full := NewAuditor(prog, dir, AuditorOptions{Checkpoints: true})
	if _, err := full.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !full.ChainAccepted() {
		t.Fatalf("full audit failed: %+v", full.Verdicts())
	}
	fullVerdicts := full.Verdicts()
	n := len(fullVerdicts)
	if _, err := GC(dir, GCOptions{Retain: 1}); err != nil {
		t.Fatal(err)
	}

	// Make epoch 1's checkpoint transiently unreadable: adoption fails,
	// but the stored ACCEPT — the compacted epoch's only remaining trust
	// artifact — must survive the failed run so a later run can recover.
	ckpt := checkpointPath(dir, 1)
	if err := os.Rename(ckpt, ckpt+".away"); err != nil {
		t.Fatal(err)
	}
	broken := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := broken.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	bv := broken.Verdicts()
	if len(bv) == 0 || bv[0].Accepted {
		t.Fatalf("adoption without a checkpoint should REJECT in-memory: %+v", bv)
	}
	if d, ok := broken.Decisions().Get(1); !ok || !d.Accepted {
		t.Fatalf("failed adoption overwrote epoch 1's stored ACCEPT: %+v (ok=%v)", d, ok)
	}

	// The failure heals; a fresh run adopts from the intact decision and
	// the chain digest comes out bit-identical to the original audit.
	if err := os.Rename(ckpt+".away", ckpt); err != nil {
		t.Fatal(err)
	}
	re := NewAuditor(prog, dir, AuditorOptions{})
	if _, err := re.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !re.ChainAccepted() {
		t.Fatalf("chain did not recover after the checkpoint returned: %+v", re.Verdicts())
	}
	rv := re.Verdicts()
	if len(rv) != n || rv[n-1].ChainSHA != fullVerdicts[n-1].ChainSHA {
		t.Fatalf("recovered chain digest diverged: %+v", rv)
	}
}

func TestLockChainExcludesMaintenance(t *testing.T) {
	dir := t.TempDir()
	_, srv, mgr := startPipelineMode(t, dir, 1000, StorageChunked)
	srv.ServeAll(burst(10, 0), 2)

	// A live manager holds the chain lock: maintenance must be refused.
	if _, err := LockChain(dir); !errors.Is(err, ErrChainBusy) {
		t.Fatalf("LockChain against a live manager: err=%v, want ErrChainBusy", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	lock, err := LockChain(dir)
	if err != nil {
		t.Fatalf("LockChain after Close: %v", err)
	}
	if _, err := LockChain(dir); !errors.Is(err, ErrChainBusy) {
		t.Fatalf("second LockChain while held: err=%v, want ErrChainBusy", err)
	}
	if err := lock.Unlock(); err != nil {
		t.Fatal(err)
	}
	relock, err := LockChain(dir)
	if err != nil {
		t.Fatalf("LockChain after Unlock: %v", err)
	}
	relock.Unlock()
}

// copyTree copies a chain directory for migration parity tests.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrateChainAuditsBitIdentical(t *testing.T) {
	orig := t.TempDir()
	prog := sealChain(t, orig, StorageWholeFile)

	migrated := t.TempDir()
	copyTree(t, orig, migrated)
	moved, err := MigrateChain(migrated)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("migration moved nothing")
	}
	// Idempotent: a second pass finds everything already in the store.
	if again, err := MigrateChain(migrated); err != nil || again != 0 {
		t.Fatalf("second migration pass moved %d (err %v), want 0", again, err)
	}

	// The epoch dirs hold only manifests now; the bytes live in the CAS
	// under the digests the (untouched) manifests already pin.
	sealedM, err := ListSealed(migrated)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenChainStore(migrated)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sealedM {
		for _, seg := range s.Manifest.Segments {
			if _, err := os.Stat(filepath.Join(s.Dir, seg.Name)); !os.IsNotExist(err) {
				t.Fatalf("epoch %d still holds %s after migration", s.Number, seg.Name)
			}
			if !store.Has(seg.SHA256) {
				t.Fatalf("epoch %d segment %s missing from store", s.Number, seg.Name)
			}
		}
	}

	// Both chains — whole-file and migrated — must audit bit-identically
	// at any worker count: same manifests, same verdicts, same ChainSHA.
	for _, workers := range []int{1, 8} {
		av := auditVerdicts(t, prog, orig, workers)
		bv := auditVerdicts(t, prog, migrated, workers)
		if len(av) != len(bv) || len(av) < 3 {
			t.Fatalf("workers=%d: verdict counts differ: %d vs %d", workers, len(av), len(bv))
		}
		for i := range av {
			if !av[i].Accepted || !bv[i].Accepted {
				t.Fatalf("workers=%d epoch %d rejected: %q / %q", workers, av[i].Epoch, av[i].Reason, bv[i].Reason)
			}
			if av[i].ManifestSHA != bv[i].ManifestSHA || av[i].ChainSHA != bv[i].ChainSHA {
				t.Fatalf("workers=%d epoch %d digests diverged after migration", workers, av[i].Epoch)
			}
		}
	}

	// The migrated chain scrubs clean, and GC keeps its blobs live.
	res, err := Scrub(context.Background(), migrated, ScrubOptions{Sample: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("migrated chain failed scrub: %+v", res.Failures)
	}
	gc, err := GC(migrated, GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gc.SweptChunks != 0 {
		t.Fatalf("GC swept %d live migrated blobs", gc.SweptChunks)
	}
	if post := auditVerdicts(t, prog, migrated, 2); !post[len(post)-1].Accepted {
		t.Fatal("migrated chain rejected after GC")
	}
}

func auditVerdicts(t *testing.T, prog *lang.Program, dir string, workers int) []Verdict {
	t.Helper()
	a := NewAuditor(prog, dir, AuditorOptions{Workers: workers})
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	return a.Verdicts()
}

func TestManifestUnknownFieldsAudit(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipelineMode(t, dir, 1000, StorageChunked)
	srv.ServeAll(burst(10, 0), 2)
	if err := mgr.Close(); err != nil { // single sealed epoch
		t.Fatal(err)
	}
	sealed, err := ListSealed(dir)
	if err != nil || len(sealed) != 1 {
		t.Fatalf("want exactly 1 sealed epoch: %d, %v", len(sealed), err)
	}

	// A future writer may add fields this reader doesn't know. Inject
	// one; the chain is a single epoch, so no successor pins the old
	// manifest bytes and the audit must still ACCEPT.
	path := filepath.Join(sealed[0].Dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(data), "{\n", "{\n  \"future_field\": {\"nested\": [1, 2, 3]},\n", 1)
	if patched == string(data) {
		t.Fatal("failed to inject unknown field")
	}
	if err := os.WriteFile(path, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	m, sha, err := ReadManifest(sealed[0].Dir)
	if err != nil {
		t.Fatalf("manifest with unknown fields failed to parse: %v", err)
	}
	if sha != cas.SumHex([]byte(patched)) {
		t.Fatal("digest must cover the on-disk bytes, unknown fields included")
	}
	if m.Epoch != sealed[0].Number || !m.Chunked() {
		t.Fatalf("known fields lost around the unknown one: %+v", m)
	}

	verdicts := auditVerdicts(t, prog, dir, 1)
	if len(verdicts) != 1 || !verdicts[0].Accepted {
		t.Fatalf("unknown manifest fields broke the audit: %+v", verdicts)
	}
}

func TestWriteManifestCleansTmpOnRenameFailure(t *testing.T) {
	dir := t.TempDir()
	// A directory squatting on the manifest name makes the final rename
	// fail after the temp file was written and fsynced.
	if err := os.Mkdir(filepath.Join(dir, ManifestName), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := WriteManifest(dir, &Manifest{Epoch: 1})
	if err == nil {
		t.Fatal("rename onto a directory should fail")
	}
	if _, serr := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(serr) {
		t.Fatalf("stale %s.tmp left behind after failed rename: %v", ManifestName, serr)
	}
}
