package epoch

import (
	"fmt"
	"os"
	"path/filepath"

	"orochi/internal/cas"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// CASDirName is the chain directory's content-addressed chunk store.
const CASDirName = "cas"

// StorageMode selects how sealed artifacts are stored.
type StorageMode int

const (
	// StorageChunked (the default) seals artifacts into the chain's
	// content-addressed store: each artifact becomes an ordered list of
	// content-defined chunks pinned in a v2 manifest, and consecutive
	// epochs share identical chunks instead of storing them again.
	StorageChunked StorageMode = iota
	// StorageWholeFile is the original v1 layout: every artifact is a
	// whole file inside the epoch directory.
	StorageWholeFile
)

func (m StorageMode) String() string {
	switch m {
	case StorageChunked:
		return "chunked"
	case StorageWholeFile:
		return "whole-file"
	default:
		return fmt.Sprintf("StorageMode(%d)", int(m))
	}
}

// ParseStorageMode maps the CLI flag values onto a StorageMode.
func ParseStorageMode(s string) (StorageMode, error) {
	switch s {
	case "", "chunked", "cas":
		return StorageChunked, nil
	case "whole-file", "wholefile", "file":
		return StorageWholeFile, nil
	default:
		return 0, fmt.Errorf("epoch: unknown storage mode %q (want chunked or whole-file)", s)
	}
}

// OpenChainStore opens (creating if needed) the chain directory's
// chunk store at <dir>/cas.
func OpenChainStore(dir string) (*cas.FS, error) {
	return cas.OpenFS(filepath.Join(dir, CASDirName))
}

// chunkSegments converts an epoch's finalized on-disk segments into
// chunked form: each segment's events are decoded (checked against the
// framing CRCs) and re-encoded as one raw logical blob, the blob is
// cut into the store, and the segment file is removed. The returned
// SegmentInfos pin the logical blob (Bytes, SHA256) plus its chunk
// list; Name, Records, and Events carry over from the file form.
func chunkSegments(store cas.Store, epochDir string, segs []SegmentInfo) ([]SegmentInfo, error) {
	out := make([]SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		path := filepath.Join(epochDir, seg.Name)
		_, events, err := readSegmentFile(path, true)
		if err != nil {
			return nil, fmt.Errorf("epoch: chunk segment %s: %w", seg.Name, err)
		}
		raw, err := (&trace.Trace{Events: events}).EncodeRaw()
		if err != nil {
			return nil, fmt.Errorf("epoch: chunk segment %s: %w", seg.Name, err)
		}
		refs, err := cas.WriteBlob(store, cas.DefaultChunker, raw)
		if err != nil {
			return nil, fmt.Errorf("epoch: chunk segment %s: %w", seg.Name, err)
		}
		out = append(out, SegmentInfo{
			Name:    seg.Name,
			Bytes:   int64(len(raw)),
			Records: seg.Records,
			Events:  seg.Events,
			SHA256:  cas.SumHex(raw),
			Chunks:  refs,
		})
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("epoch: chunk segment %s: %w", seg.Name, err)
		}
	}
	return out, nil
}

// chunkReports seals a report bundle directly into the store (no
// intermediate file) and returns the FileInfo pinning its raw blob.
func chunkReports(store cas.Store, rep *reports.Reports) (FileInfo, error) {
	raw, err := rep.EncodeRaw()
	if err != nil {
		return FileInfo{}, err
	}
	refs, err := cas.WriteBlob(store, cas.DefaultChunker, raw)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: ReportsName, Bytes: int64(len(raw)), SHA256: cas.SumHex(raw), Chunks: refs}, nil
}

// chunkSnapshot seals a snapshot directly into the store and returns
// the FileInfo pinning its raw blob.
func chunkSnapshot(store cas.Store, snap *object.Snapshot) (FileInfo, error) {
	raw, err := snap.EncodeRaw()
	if err != nil {
		return FileInfo{}, err
	}
	refs, err := cas.WriteBlob(store, cas.DefaultChunker, raw)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: InitName, Bytes: int64(len(raw)), SHA256: cas.SumHex(raw), Chunks: refs}, nil
}

// MigrateChain moves a whole-file (v1) chain's sealed artifacts into
// the chain's chunk store, each file stored as one blob keyed by the
// digest its manifest already pins. Manifests are not rewritten — the
// hash chain, prior decisions, and checkpoints all stay bit-identical
// — and the load path falls back from the epoch directory to the
// store, so a migrated chain audits exactly as before. Files are
// verified against their manifest digests before the originals are
// removed. It returns the number of files moved; chunked (v2) epochs
// are left alone.
func MigrateChain(dir string) (int, error) {
	sealed, err := ListSealed(dir)
	if err != nil {
		return 0, err
	}
	store, err := OpenChainStore(dir)
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, s := range sealed {
		if s.Err != nil {
			return moved, fmt.Errorf("epoch: migrate: epoch %d has a damaged manifest (audit evidence, not migrating): %w", s.Number, s.Err)
		}
		if s.Manifest.Chunked() {
			continue
		}
		var files []FileInfo
		for _, seg := range s.Manifest.Segments {
			files = append(files, FileInfo{Name: seg.Name, Bytes: seg.Bytes, SHA256: seg.SHA256})
		}
		files = append(files, s.Manifest.Reports)
		if s.Manifest.Init != nil {
			files = append(files, *s.Manifest.Init)
		}
		for _, fi := range files {
			path := filepath.Join(s.Dir, fi.Name)
			data, err := os.ReadFile(path)
			if os.IsNotExist(err) && store.Has(fi.SHA256) {
				continue // already migrated
			}
			if err != nil {
				return moved, fmt.Errorf("epoch: migrate epoch %d: %s: %w", s.Number, fi.Name, err)
			}
			if got := cas.SumHex(data); got != fi.SHA256 {
				return moved, fmt.Errorf("epoch: migrate epoch %d: %s: digest mismatch (manifest %s, disk %s) — refusing to move damaged evidence",
					s.Number, fi.Name, short(fi.SHA256), short(got))
			}
			if err := store.Put(fi.SHA256, data); err != nil {
				return moved, fmt.Errorf("epoch: migrate epoch %d: %s: %w", s.Number, fi.Name, err)
			}
			if err := os.Remove(path); err != nil {
				return moved, fmt.Errorf("epoch: migrate epoch %d: %s: %w", s.Number, fi.Name, err)
			}
			moved++
		}
	}
	return moved, nil
}
