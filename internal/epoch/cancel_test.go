package epoch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"orochi/internal/verifier"
)

// cancelOnGroup cancels a context the first time a control-flow group
// re-executes — a deterministic mid-epoch cancellation point.
type cancelOnGroup struct {
	cancel context.CancelFunc
	fired  atomic.Bool
}

func (c *cancelOnGroup) PhaseStart(string, int)         {}
func (c *cancelOnGroup) PhaseEnd(string, time.Duration) {}
func (c *cancelOnGroup) GroupReexecuted(string, uint64, int) {
	if c.fired.CompareAndSwap(false, true) {
		c.cancel()
	}
}
func (c *cancelOnGroup) OpsReplayed(int)      {}
func (c *cancelOnGroup) Verdict(bool, string) {}

// TestAuditorCancellationPublishesNoVerdict pins the shutdown-mid-epoch
// contract: cancelling the auditor while it is verifying an epoch must
// never publish a verdict for it — not ACCEPT, and above all not a
// spurious REJECT. The position does not advance (symmetric with the
// retryable CheckpointError path), so the next RunOnce re-audits the
// epoch from scratch and the chain completes cleanly.
func TestAuditorCancellationPublishesNoVerdict(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	for b := 0; b < 3; b++ {
		srv.ServeAll(burst(12, b), 3) // 24 events per burst >= 20: seals epochs
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelOnGroup{cancel: cancel}
	// Workers: 1 keeps the cancellation point deterministic: with a
	// sequential pool the cancel always lands before the epoch's
	// remaining group tasks, so the first epoch can never finish.
	a := NewAuditor(prog, dir, AuditorOptions{
		Observer: obs,
		Verify:   verifier.Options{Workers: 1},
	})

	err := a.Run(ctx)
	if !errors.Is(err, verifier.ErrAuditCanceled) {
		t.Fatalf("cancelled Run returned %v; want an ErrAuditCanceled match", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run must also match context.Canceled, got %v", err)
	}
	if !obs.fired.Load() {
		t.Fatal("cancellation point never fired: the test cancelled nothing")
	}
	if v := a.Verdicts(); len(v) != 0 {
		t.Fatalf("cancelled mid-epoch audit published %d verdict(s): %+v", len(v), v)
	}
	if got := a.NextEpoch(); got != 1 {
		t.Fatalf("cancelled auditor advanced to epoch %d; must stay at 1", got)
	}
	if !a.ChainAccepted() {
		t.Fatal("cancellation broke the chain: it must not count as a REJECT")
	}
	if p := a.Progress(); p.Epoch != 0 {
		t.Fatalf("progress not cleared after cancellation: %+v", p)
	}

	// The same auditor, given a live context, re-audits the interrupted
	// epoch whole and completes the chain. (The observer keeps calling
	// its cancel, but that context is already dead — the new one is
	// untouched.)
	if _, err := a.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := a.Verdicts()
	if len(verdicts) == 0 {
		t.Fatal("re-audit after cancellation produced no verdicts")
	}
	for _, v := range verdicts {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected after a cancelled first attempt: %s", v.Epoch, v.Reason)
		}
	}
	if !a.ChainAccepted() {
		t.Fatal("chain must ACCEPT after the clean re-audit")
	}
}

// TestDrainSealedCancelled pins DrainSealed's cancellation path: a dead
// context drains nothing and surfaces the typed cancellation error.
func TestDrainSealedCancelled(t *testing.T) {
	dir := t.TempDir()
	prog, srv, mgr := startPipeline(t, dir, 20)
	srv.ServeAll(burst(12, 0), 3)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewAuditor(prog, dir, AuditorOptions{})
	n, err := a.DrainSealed(ctx, time.Millisecond, nil)
	if n != 0 || !errors.Is(err, verifier.ErrAuditCanceled) {
		t.Fatalf("DrainSealed on a dead context: n=%d err=%v", n, err)
	}
	if len(a.Verdicts()) != 0 {
		t.Fatal("cancelled drain published verdicts")
	}
}
