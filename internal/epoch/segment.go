// Package epoch is the durable serving pipeline: it streams the
// collector's trace and the executor's reports into checksummed,
// append-only log segments, seals serving periods ("epochs") behind
// content-addressed manifests, and audits sealed epochs in the
// background while serving continues (§4.1, §5 deployment model, made
// continuous).
//
// Layout of an epoch directory tree:
//
//	<dir>/
//	  epoch-000001/
//	    seg-000001.seg   finalized log segment (events)
//	    seg-000002.open  active segment (torn tail allowed until sealed)
//	    reports.seg      report bundle, written at seal
//	    init.bin         trusted initial snapshot (first epoch only)
//	    MANIFEST.json    seal record: content digests + chain link
//	  epoch-000002/
//	    ...
//	  checkpoints/
//	    epoch-000001.bin verified final snapshot (written by the auditor)
//
// An epoch is sealed exactly when its MANIFEST.json exists; the manifest
// lists every file with its SHA-256 and links to the previous epoch's
// manifest digest, forming a hash chain over the whole serving history.
package epoch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Segment file format. A segment is a magic header followed by records:
//
//	header  = "OSG1"
//	record  = u32le payloadLen | u8 recordType | payload | u32le crc
//	crc     = CRC-32C over recordType || payload
//
// Records are length-prefixed so a reader can skip payloads it does not
// understand, and CRC-checksummed so a torn or corrupted tail is
// detected at the exact record where the damage starts.
const (
	segMagic = "OSG1"

	// recEvents frames a batch of trace events, encoded as a
	// trace.Trace via trace.Encode (gob+gzip).
	recEvents byte = 1
	// recReports frames a full report bundle via reports.Encode.
	recReports byte = 2

	// recHeaderLen is payload length (4) + record type (1).
	recHeaderLen = 5
	// recTrailerLen is the CRC (4).
	recTrailerLen = 4

	// maxRecordPayload bounds a single record so a corrupted length
	// prefix cannot trigger a giant allocation.
	maxRecordPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one parsed segment record.
type record struct {
	typ     byte
	payload []byte
}

// appendRecord serializes one record into buf and returns the result.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	crc := crc32.Update(0, crcTable, hdr[4:5])
	crc = crc32.Update(crc, crcTable, payload)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var tr [recTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(buf, tr[:]...)
}

// parseSegment reads the records of a segment held in data. In strict
// mode any damage — bad magic, torn record, CRC mismatch, trailing
// junk — is an error: that is the contract for finalized, sealed
// segments. In lenient mode parsing stops at the first damaged byte and
// returns the records of the valid prefix plus its length; that is the
// recovery contract for a segment that was active during a crash.
func parseSegment(data []byte, strict bool) (recs []record, validLen int64, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, fmt.Errorf("epoch: segment missing %q magic", segMagic)
	}
	off := int64(len(segMagic))
	for int64(len(data)) > off {
		rest := data[off:]
		if len(rest) < recHeaderLen+recTrailerLen {
			if strict {
				return nil, off, fmt.Errorf("epoch: segment truncated mid-record at offset %d", off)
			}
			return recs, off, nil
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > maxRecordPayload {
			if strict {
				return nil, off, fmt.Errorf("epoch: implausible record length %d at offset %d", n, off)
			}
			return recs, off, nil
		}
		total := int64(recHeaderLen) + int64(n) + int64(recTrailerLen)
		if int64(len(rest)) < total {
			if strict {
				return nil, off, fmt.Errorf("epoch: segment truncated mid-record at offset %d", off)
			}
			return recs, off, nil
		}
		payload := rest[recHeaderLen : recHeaderLen+int64(n)]
		want := binary.LittleEndian.Uint32(rest[total-recTrailerLen : total])
		crc := crc32.Update(0, crcTable, rest[4:5])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != want {
			if strict {
				return nil, off, fmt.Errorf("epoch: CRC mismatch in record at offset %d", off)
			}
			return recs, off, nil
		}
		recs = append(recs, record{typ: rest[4], payload: payload})
		off += total
	}
	return recs, off, nil
}

// encodeRecord is appendRecord into a fresh buffer.
func encodeRecord(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, recHeaderLen+len(payload)+recTrailerLen)
	return appendRecord(buf, typ, payload)
}

// segmentBytes frames records into a complete standalone segment image.
func segmentBytes(recs ...record) []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	for _, r := range recs {
		buf.Write(encodeRecord(r.typ, r.payload))
	}
	return buf.Bytes()
}
