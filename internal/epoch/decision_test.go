package epoch

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"orochi/internal/verifier"
)

// sampleReject builds a REJECT decision with a fully populated
// forensics record, so persistence tests cover every field that must
// survive the JSON round trip.
func sampleReject(epoch int64) Decision {
	return Decision{
		Epoch:    epoch,
		Accepted: false,
		Reason:   "output mismatch for r000037",
		Forensics: &verifier.Forensics{
			Phase:     verifier.PhaseReExec,
			Check:     "output-mismatch",
			RequestID: "r000037",
			Script:    "view",
			GroupTag:  "d7245931b4559675",
			Chunk:     1,
			GroupSize: 12,
			Diff: &verifier.ResponseDiff{
				TracedLen: 120,
				ReExecLen: 118,
				FirstDiff: 40,
				WindowAt:  0,
				Traced:    "<html>tampered",
				ReExec:    "<html>honest",
				Truncated: true,
			},
			Detail: "output mismatch for r000037",
		},
		Events:   64,
		Requests: 40,
		Timings: DecisionTimings{
			ProcOpRep: 1 * time.Millisecond,
			DBRedo:    2 * time.Millisecond,
			ReExec:    3 * time.Millisecond,
			DBQuery:   500 * time.Microsecond,
			Other:     time.Millisecond / 2,
			Total:     7 * time.Millisecond,
		},
		RequestsReplayed: 40,
		GroupBatches:     9,
		DedupHits:        31,
		DedupMisses:      9,
		ManifestSHA:      strings.Repeat("ab", 32),
		ChainSHA:         strings.Repeat("cd", 32),
		DecidedAt:        time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

// TestDecisionLogSurvivesRestart: verdicts, forensics, and
// acknowledgements are all events in one log, so a reopened log
// replays to the exact pre-crash state.
func TestDecisionLogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	accept := Decision{Epoch: 1, Accepted: true, Events: 32, Requests: 20,
		ManifestSHA: strings.Repeat("11", 32), ChainSHA: strings.Repeat("22", 32),
		DecidedAt: time.Date(2026, 8, 8, 11, 0, 0, 0, time.UTC)}
	reject := sampleReject(2)
	if err := log.Append(accept); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(reject); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Ack(2, "tamper drill, expected"); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Ack(9, "no such epoch"); err == nil {
		t.Fatal("acking an unrecorded epoch must fail")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	ds := reopened.Decisions()
	if len(ds) != 2 || ds[0].Epoch != 1 || ds[1].Epoch != 2 {
		t.Fatalf("replay returned %+v", ds)
	}
	if ds[0].Resolution != ResolutionOpen || !ds[0].Accepted {
		t.Fatalf("accept decision replayed as %+v", ds[0])
	}
	got := ds[1]
	if got.Resolution != ResolutionAcked || got.Note != "tamper drill, expected" || got.AckedAt.IsZero() {
		t.Fatalf("acknowledgement lost across restart: %+v", got)
	}
	if !reflect.DeepEqual(got.Forensics, reject.Forensics) {
		t.Fatalf("forensics did not survive the JSON round trip:\nwant %+v\ngot  %+v", reject.Forensics, got.Forensics)
	}
	if got.Timings != reject.Timings {
		t.Fatalf("timings round trip: want %+v, got %+v", reject.Timings, got.Timings)
	}
	if got.RequestsReplayed != 40 || got.GroupBatches != 9 || got.DedupHits != 31 || got.DedupMisses != 9 {
		t.Fatalf("dedup statistics round trip: %+v", got)
	}

	// A re-audit of an acked epoch replaces the decision and reopens
	// its resolution — the earlier investigation note does not apply to
	// a fresh verdict.
	reject2 := sampleReject(2)
	reject2.Reason = "second audit"
	if err := reopened.Append(reject2); err != nil {
		t.Fatal(err)
	}
	d, ok := reopened.Get(2)
	if !ok || d.Resolution != ResolutionOpen || d.Note != "" || d.Reason != "second audit" {
		t.Fatalf("re-append did not reopen the decision: %+v", d)
	}
}

// TestDecisionLogTornTail: a crash mid-append leaves a torn final
// line; replay skips it. A malformed line anywhere else is corruption
// and must surface as an error.
func TestDecisionLogTornTail(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Decision{Epoch: 1, Accepted: true}); err != nil {
		t.Fatal(err)
	}
	log.Close()

	path := filepath.Join(dir, DecisionLogName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"verdict","decision":{"ep`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if ds := reopened.Decisions(); len(ds) != 1 || ds[0].Epoch != 1 {
		t.Fatalf("replay after torn tail: %+v", ds)
	}
	// Opening for append truncates the torn bytes, so the next append
	// starts a fresh line instead of merging into the fragment.
	if err := reopened.Append(Decision{Epoch: 2, Accepted: false, Reason: "x"}); err != nil {
		t.Fatal(err)
	}
	reopened.Close()
	if ds, err := ReadDecisions(dir); err != nil || len(ds) != 2 {
		t.Fatalf("append after torn tail lost a decision: %+v (%v)", ds, err)
	}

	// Corrupt a non-tail line: that is not a torn append and must error.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = "{broken\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDecisionLog(dir); err == nil {
		t.Fatal("malformed mid-file line must fail replay")
	}
}

// TestReadDecisions: the offline inspection path reads without
// creating anything; a missing log is fs.ErrNotExist.
func TestReadDecisions(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadDecisions(dir); !os.IsNotExist(err) {
		t.Fatalf("missing log: want not-exist, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, DecisionLogName)); !os.IsNotExist(err) {
		t.Fatal("ReadDecisions must not create the log")
	}

	log, err := OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleReject(7)
	if err := log.Append(want); err != nil {
		t.Fatal(err)
	}
	log.Close()

	ds, err := ReadDecisions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Epoch != 7 || !reflect.DeepEqual(ds[0].Forensics, want.Forensics) {
		t.Fatalf("offline read: %+v", ds)
	}
}
