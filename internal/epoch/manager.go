package epoch

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"orochi/internal/cas"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// ManagerOptions tunes epoch rotation.
type ManagerOptions struct {
	// EpochEvents asks for an epoch cut once the current epoch holds at
	// least this many trace events (default 4096). The cut lands on the
	// first balanced point — no requests in flight — at or after the
	// threshold, so every sealed epoch is independently auditable.
	EpochEvents int
	// TeeBuffer is the capacity of the event queue between the
	// collector tap and the disk-writer goroutine (default 4096).
	// Serving only blocks on the log when the writer falls this far
	// behind.
	TeeBuffer int
	// Log tunes the per-epoch segmented log.
	Log LogWriterOptions
	// Storage selects the sealed-artifact layout: StorageChunked (the
	// default) seals into the chain's content-addressed store,
	// StorageWholeFile keeps the original whole-file epoch dirs.
	Storage StorageMode
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.EpochEvents <= 0 {
		o.EpochEvents = 4096
	}
	if o.TeeBuffer <= 0 {
		o.TeeBuffer = 4096
	}
	return o
}

// SealedSummary is one entry of the manager's seal history.
type SealedSummary struct {
	Epoch    int64
	Events   int
	Requests int
	Segments int
	// Bytes is the epoch's logical footprint: segment artifacts plus
	// the reports bundle (and the init snapshot for epoch 1). In
	// whole-file mode that is the on-disk byte count; in chunked mode
	// it is the uncompressed blob size the manifests pin — the
	// numerator of the storage dedup ratio. Metrics sum it into the
	// bytes-logged counter.
	Bytes       int64
	ManifestSHA string
	SealedAt    time.Time
}

// ManagerStatus is a point-in-time view of the pipeline for status
// endpoints.
type ManagerStatus struct {
	Dir           string
	CurrentEpoch  int64
	CurrentEvents int
	Sealed        []SealedSummary
	Err           string
}

// Manager runs the online half of the epoch pipeline. Installed as the
// collector's Tap, it tees every trace event toward the current epoch's
// segmented log and, once the event threshold is crossed and the trace
// is balanced, cuts the epoch: the collector's buffer and the server's
// recorder are swapped atomically at the boundary (inside the
// collector's critical section, so no event or report entry straddles
// it) and the finished epoch is sealed in the background.
//
// No disk I/O happens under the collector's lock: the tap only enqueues
// onto a buffered channel drained by a dedicated writer goroutine
// (which batches, compresses, and rotates segments), and sealing runs
// on a further goroutine behind it. Serving therefore never pauses for
// compression, fsync, or sealing — only sustained writer backlog
// (TeeBuffer) applies backpressure.
type Manager struct {
	dir  string
	srv  *server.Server
	opts ManagerOptions
	// store is the chain's chunk store (nil in whole-file mode). Only
	// the sealer goroutine writes to it.
	store *cas.FS
	// lock is the chain directory's exclusive lock, held for the whole
	// serving run so offline maintenance (orochi-audit -gc/-scrub)
	// cannot sweep an in-flight seal's chunks or write the decision log
	// concurrently. Released by Close (or process exit).
	lock *ChainLock

	// mu guards the tap-side state. Only the tap (under the collector's
	// lock), Close, and Status take it; the writer and sealer
	// goroutines never do.
	mu     sync.Mutex
	cur    *liveEpoch
	closed bool
	// failedEvents counts events since the last discard cut once the
	// pipeline has failed, so dead-pipeline periods keep being cut (and
	// dropped) instead of accumulating in the collector forever.
	failedEvents int

	// teeQ carries events and seal markers, in trace order, to the
	// writer goroutine. Cut enqueues the marker after the epoch's last
	// event and before the next epoch's first, so FIFO order guarantees
	// an epoch's writer has received everything before it is sealed.
	teeQ    chan teeMsg
	teeDone chan struct{}

	sealQ    chan *sealJob
	sealDone chan struct{}
	notify   chan struct{} // capacity 1; signaled after every seal

	// failed flips on the first pipeline error: the tap stops teeing
	// and cutting (epochs sealed after a hole could never be audited),
	// the writer drops events, and queued seals abort.
	failed atomic.Bool

	// histMu guards the sealer-side state and the error slot.
	histMu  sync.Mutex
	sealed  []SealedSummary
	pipeErr error
}

type liveEpoch struct {
	number   int64
	writer   *LogWriter
	events   int
	requests int
	initInfo *FileInfo // epoch 1 only
}

type teeMsg struct {
	ev trace.Event
	w  *LogWriter
	// job, when non-nil, marks an epoch boundary: the writer goroutine
	// forwards it to the sealer (the event fields are unused).
	job *sealJob
}

type sealJob struct {
	number   int64
	writer   *LogWriter
	rec      *reports.Recorder
	events   int
	requests int
	initInfo *FileInfo
}

// StartManager begins epoch-segmented serving for srv, whose recording
// must be enabled and whose current object state must be init (the
// trusted initial snapshot of the first epoch — capture it after Setup,
// before the first request). dir must not already contain epochs or
// checkpoints: an epoch chain records one unbroken serving run, and a
// restarted server no longer holds the previous run's live state, so
// resuming a chain (or resuming audits from a previous chain's
// checkpoints) would only produce spurious rejections. The manager
// installs itself as the collector's tap; serving may begin as soon as
// StartManager returns.
func StartManager(dir string, srv *server.Server, init *object.Snapshot, opts ManagerOptions) (*Manager, error) {
	if srv.Recorder() == nil {
		return nil, fmt.Errorf("epoch: manager requires a recording server (Options.Record)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epoch: start manager: %w", err)
	}
	lock, err := LockChain(dir)
	if err != nil {
		return nil, err
	}
	started := false
	defer func() {
		if !started {
			lock.Unlock()
		}
	}()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("epoch: start manager: %w", err)
	}
	for _, e := range entries {
		// Leftover checkpoints are as poisonous as leftover epochs: a
		// later `-from N` audit would resume the NEW chain from the OLD
		// chain's verified state and spuriously reject an honest run.
		// A leftover chunk store likewise belongs to a previous chain.
		if epochDirNumber(e.Name()) != 0 || e.Name() == "checkpoints" || e.Name() == CASDirName {
			return nil, fmt.Errorf("epoch: %s already holds epochs, checkpoints, or a chunk store; each serving run needs a fresh chain directory", dir)
		}
	}
	m := &Manager{
		dir:      dir,
		srv:      srv,
		lock:     lock,
		opts:     opts.withDefaults(),
		teeDone:  make(chan struct{}),
		sealQ:    make(chan *sealJob, 16),
		sealDone: make(chan struct{}),
		notify:   make(chan struct{}, 1),
	}
	m.teeQ = make(chan teeMsg, m.opts.TeeBuffer)
	if m.opts.Storage == StorageChunked {
		store, err := OpenChainStore(dir)
		if err != nil {
			return nil, err
		}
		m.store = store
	}
	cur, err := m.openEpoch(1)
	if err != nil {
		return nil, err
	}
	// The first epoch ships the trusted initial snapshot; later epochs
	// don't — the verifier derives their initial state itself (§4.5).
	if m.store != nil {
		info, err := chunkSnapshot(m.store, init)
		if err != nil {
			return nil, fmt.Errorf("epoch: write init snapshot: %w", err)
		}
		cur.initInfo = &info
	} else {
		initData, err := init.Encode()
		if err != nil {
			return nil, err
		}
		initPath := filepath.Join(m.dir, epochDirName(1), InitName)
		if err := writeFileSync(initPath, initData); err != nil {
			return nil, fmt.Errorf("epoch: write init snapshot: %w", err)
		}
		cur.initInfo = &FileInfo{Name: InitName, Bytes: int64(len(initData)), SHA256: cas.SumHex(initData)}
	}
	m.cur = cur
	go m.teeLoop()
	go m.sealLoop()
	srv.Collector.SetTap(m)
	started = true
	return m, nil
}

func (m *Manager) openEpoch(n int64) (*liveEpoch, error) {
	w, err := OpenLogWriter(filepath.Join(m.dir, epochDirName(n)), m.opts.Log)
	if err != nil {
		return nil, err
	}
	return &liveEpoch{number: n, writer: w}, nil
}

// fail records the first pipeline error and stops the pipeline; serving
// continues, the error surfaces via Status and Close.
func (m *Manager) fail(err error) {
	m.histMu.Lock()
	if m.pipeErr == nil {
		m.pipeErr = err
	}
	m.histMu.Unlock()
	m.failed.Store(true)
}

// Event implements trace.Tap: it tees ev toward the current epoch's log
// and requests a cut once the epoch threshold is reached. It runs under
// the collector's lock, so it must stay cheap: the disk work happens on
// the writer goroutine behind teeQ.
func (m *Manager) Event(ev trace.Event, open, total int) bool {
	if m.failed.Load() {
		// The pipeline is dead but serving continues: keep requesting
		// cuts at the usual cadence so Cut can discard the period —
		// otherwise the collector's buffer and the recorder would grow
		// without bound until OOM.
		m.mu.Lock()
		m.failedEvents++
		cut := m.failedEvents >= m.opts.EpochEvents
		if cut {
			m.failedEvents = 0
		}
		m.mu.Unlock()
		return cut
	}
	m.mu.Lock()
	if m.closed || m.cur == nil {
		m.mu.Unlock()
		return false
	}
	w := m.cur.writer
	m.cur.events++
	if ev.Kind == trace.Request {
		m.cur.requests++
	}
	cut := m.cur.events >= m.opts.EpochEvents
	m.mu.Unlock()
	m.teeQ <- teeMsg{ev: ev, w: w}
	return cut
}

// Cut implements trace.Tap: the collector calls it at a balanced point
// after Event returned true. It runs under the collector's lock, so the
// recorder swap here is atomic with the trace cut — no request's events
// or report records can straddle the epoch boundary. The events
// themselves were already teed by Event; the seal marker enqueued here
// follows them in FIFO order.
func (m *Manager) Cut(events []trace.Event) {
	if m.failed.Load() {
		// Discard the period: the collector has already dropped its
		// buffer, and swapping the recorder away releases the report
		// state. Nothing is written — the chain ended at the failure.
		m.srv.SwapRecorder()
		return
	}
	m.mu.Lock()
	if m.closed || m.cur == nil {
		m.mu.Unlock()
		return
	}
	cur := m.cur
	next, err := m.openEpoch(cur.number + 1)
	if err != nil {
		m.mu.Unlock()
		m.fail(err)
		return
	}
	job := &sealJob{
		number:   cur.number,
		writer:   cur.writer,
		rec:      m.srv.SwapRecorder(),
		events:   cur.events,
		requests: cur.requests,
		initInfo: cur.initInfo,
	}
	m.cur = next
	m.mu.Unlock()
	m.teeQ <- teeMsg{job: job}
}

// teeLoop is the single disk-writer goroutine: it appends events to
// their epoch's log and forwards seal markers to the sealer, in the
// order the tap produced them.
func (m *Manager) teeLoop() {
	defer close(m.teeDone)
	for msg := range m.teeQ {
		if msg.job != nil {
			if m.failed.Load() {
				msg.job.writer.Abort()
				continue
			}
			m.sealQ <- msg.job
			continue
		}
		if m.failed.Load() {
			continue
		}
		if err := msg.w.AppendEvent(msg.ev); err != nil {
			m.fail(err)
		}
	}
	close(m.sealQ)
}

// sealLoop is the single background sealer; running seals on one
// goroutine keeps the manifest hash chain ordered.
func (m *Manager) sealLoop() {
	defer close(m.sealDone)
	prevSHA := ""
	for job := range m.sealQ {
		if m.failed.Load() {
			// A hole already exists in the chain; sealing anything
			// after it would only produce unauditable epochs.
			job.writer.Abort()
			continue
		}
		sha, err := m.seal(job, prevSHA)
		if err != nil {
			m.fail(err)
			continue
		}
		prevSHA = sha
		select {
		case m.notify <- struct{}{}:
		default:
		}
	}
}

func (m *Manager) seal(job *sealJob, prevSHA string) (string, error) {
	segs, err := job.writer.Finalize()
	if err != nil {
		return "", fmt.Errorf("epoch: seal %d: %w", job.number, err)
	}
	epochDir := filepath.Join(m.dir, epochDirName(job.number))
	version := 0
	var repInfo FileInfo
	if m.store != nil {
		// Chunked sealing: segment files become content-defined chunks
		// in the chain store (dedup against everything sealed before),
		// and the reports bundle is chunked directly — after this the
		// epoch dir holds only the manifest.
		version = ManifestVersionChunked
		segs, err = chunkSegments(m.store, epochDir, segs)
		if err != nil {
			return "", fmt.Errorf("epoch: seal %d: %w", job.number, err)
		}
		repInfo, err = chunkReports(m.store, job.rec.Finalize())
		if err != nil {
			return "", fmt.Errorf("epoch: seal %d: %w", job.number, err)
		}
	} else {
		repInfo, err = WriteReportsFile(filepath.Join(epochDir, ReportsName), job.rec.Finalize())
		if err != nil {
			return "", fmt.Errorf("epoch: seal %d: %w", job.number, err)
		}
	}
	manifest := &Manifest{
		Version:            version,
		Epoch:              job.number,
		SealedUnix:         time.Now().Unix(),
		Events:             job.events,
		Requests:           job.requests,
		Segments:           segs,
		Reports:            repInfo,
		Init:               job.initInfo,
		PrevManifestSHA256: prevSHA,
	}
	sha, err := WriteManifest(epochDir, manifest)
	if err != nil {
		return "", fmt.Errorf("epoch: seal %d: %w", job.number, err)
	}
	bytes := repInfo.Bytes
	for _, seg := range segs {
		bytes += seg.Bytes
	}
	if job.initInfo != nil {
		bytes += job.initInfo.Bytes
	}
	m.histMu.Lock()
	m.sealed = append(m.sealed, SealedSummary{
		Epoch:       job.number,
		Events:      job.events,
		Requests:    job.requests,
		Segments:    len(segs),
		Bytes:       bytes,
		ManifestSHA: sha,
		SealedAt:    time.Now(),
	})
	m.histMu.Unlock()
	return sha, nil
}

// Close seals the final epoch and shuts the pipeline down. The server
// must be drained first (no requests in flight): the final epoch is cut
// wherever the trace stands, and an unbalanced tail would be rejected
// by its audit. Close returns the first pipeline error, if any.
func (m *Manager) Close() error {
	// Detach the tap before taking m.mu: the collector invokes the tap
	// while holding its own lock and the tap then takes m.mu, so the
	// reverse order here could deadlock. Once SetTap returns, no tap
	// call is in flight (the collector serializes them), so nothing
	// can race the queue shutdown below.
	m.srv.Collector.SetTap(nil)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return m.firstErr()
	}
	m.closed = true
	cur := m.cur
	m.cur = nil
	m.mu.Unlock()
	if cur != nil {
		if (cur.events > 0 || cur.number == 1) && !m.failed.Load() {
			// Seal the final (possibly short) epoch. The collector's
			// buffer for it is discarded by Reset below; the log
			// already holds every event.
			m.teeQ <- teeMsg{job: &sealJob{
				number:   cur.number,
				writer:   cur.writer,
				rec:      m.srv.SwapRecorder(),
				events:   cur.events,
				requests: cur.requests,
				initInfo: cur.initInfo,
			}}
		} else {
			// Nothing was served since the last cut (or the pipeline
			// already failed): drop the dangling epoch directory
			// rather than sealing a vacuous or unauditable epoch.
			cur.writer.Abort()
			if cur.events == 0 && cur.number > 1 {
				os.Remove(filepath.Join(m.dir, epochDirName(cur.number)))
			}
		}
	}
	close(m.teeQ)
	<-m.teeDone
	<-m.sealDone
	m.srv.Collector.Reset()
	m.lock.Unlock() // the chain is quiescent; maintenance may run now
	return m.firstErr()
}

// firstErr reports the first pipeline failure.
func (m *Manager) firstErr() error {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	return m.pipeErr
}

// Notify returns a channel that receives (with capacity one) after each
// seal; background auditors use it to wake without polling delay.
func (m *Manager) Notify() <-chan struct{} { return m.notify }

// Dir returns the chain directory the manager seals into; the console
// reaches the chunk store through it for storage metrics.
func (m *Manager) Dir() string { return m.dir }

// Status reports the pipeline's current state.
func (m *Manager) Status() ManagerStatus {
	st := ManagerStatus{Dir: m.dir}
	m.mu.Lock()
	if m.cur != nil {
		st.CurrentEpoch = m.cur.number
		st.CurrentEvents = m.cur.events
	}
	m.mu.Unlock()
	if err := m.firstErr(); err != nil {
		st.Err = err.Error()
	}
	m.histMu.Lock()
	st.Sealed = append([]SealedSummary(nil), m.sealed...)
	m.histMu.Unlock()
	return st
}
