package epoch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"orochi/internal/cas"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// IntegrityError reports that a sealed epoch's artifacts fail
// verification against the manifest (missing file or chunk, digest
// mismatch, damaged framing, count mismatch). It is evidence of
// tampering or loss, so auditors surface it as a REJECT verdict, not
// an internal fault.
type IntegrityError struct {
	Epoch  int64
	Detail string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("epoch %d integrity: %s", e.Epoch, e.Detail)
}

// Loaded is a sealed epoch whose artifacts have been read back and
// verified against the manifest digests.
type Loaded struct {
	*Sealed
	Trace   *trace.Trace
	Reports *reports.Reports
	// Init is the trusted initial snapshot (first epoch of a chain
	// only; nil otherwise).
	Init *object.Snapshot
}

// Load reads a sealed epoch's segments, reports, and (if present)
// initial snapshot, verifying every artifact against the manifest's
// SHA-256 digests and the decoded event counts against the manifest.
// Chunked (v2) epochs read from the chain's chunk store, every chunk
// verified by digest on the way; whole-file (v1) epochs read files
// from the epoch directory, falling back to the store for files a
// migration has moved there. Failures are *IntegrityError.
func Load(s *Sealed) (*Loaded, error) {
	return LoadFrom(s, nil)
}

// LoadFrom is Load with an explicit chunk store (nil opens the chain's
// own <dir>/cas on first use — the seam for loading against a remote
// or tiered store).
func LoadFrom(s *Sealed, store cas.Store) (*Loaded, error) {
	fail := func(format string, args ...any) (*Loaded, error) {
		return nil, &IntegrityError{Epoch: s.Number, Detail: fmt.Sprintf(format, args...)}
	}
	if s.Err != nil {
		return fail("damaged manifest: %v", s.Err)
	}
	if s.Manifest == nil {
		return fail("no manifest")
	}
	getStore := func() (cas.Store, error) {
		if store == nil {
			fsStore, err := OpenChainStore(filepath.Dir(s.Dir))
			if err != nil {
				return nil, err
			}
			store = fsStore
		}
		return store, nil
	}
	// readArtifact fetches one artifact's logical bytes and verifies
	// them against the manifest pin. The returned error is always an
	// *IntegrityError detail string-ready via fail().
	readArtifact := func(label string, fi FileInfo) ([]byte, error) {
		var data []byte
		if len(fi.Chunks) > 0 {
			st, err := getStore()
			if err != nil {
				return nil, fmt.Errorf("%s: %v", label, err)
			}
			data, err = cas.ReadBlob(st, fi.Chunks)
			if err != nil {
				var ce *cas.ChunkError
				if errors.As(err, &ce) {
					return nil, fmt.Errorf("%s: chunk %d of %d (sha256 %s): %v",
						label, ce.Index+1, len(fi.Chunks), ce.Digest, ce.Err)
				}
				return nil, fmt.Errorf("%s: %v", label, err)
			}
		} else {
			var err error
			data, err = os.ReadFile(filepath.Join(s.Dir, fi.Name))
			if os.IsNotExist(err) {
				// Migrated whole-file epochs keep their manifests but the
				// bytes live in the store as one blob under the file digest.
				st, serr := getStore()
				if serr != nil {
					return nil, fmt.Errorf("%s: %v", label, serr)
				}
				data, serr = st.Get(fi.SHA256)
				if serr != nil {
					return nil, fmt.Errorf("%s: missing from epoch dir and chunk store: %v", label, serr)
				}
			} else if err != nil {
				return nil, fmt.Errorf("%s: %v", label, err)
			}
		}
		if got := cas.SumHex(data); got != fi.SHA256 {
			return nil, fmt.Errorf("%s: digest mismatch (manifest %s, disk %s)", label, short(fi.SHA256), short(got))
		}
		if int64(len(data)) != fi.Bytes {
			return nil, fmt.Errorf("%s: size mismatch (manifest %d, disk %d)", label, fi.Bytes, len(data))
		}
		return data, nil
	}

	chunked := s.Manifest.Chunked()
	var events []trace.Event
	for _, seg := range s.Manifest.Segments {
		label := fmt.Sprintf("segment %s", seg.Name)
		data, err := readArtifact(label, FileInfo{Name: seg.Name, Bytes: seg.Bytes, SHA256: seg.SHA256, Chunks: seg.Chunks})
		if err != nil {
			return fail("%v", err)
		}
		var segEvents []trace.Event
		if chunked {
			tr, err := trace.DecodeRaw(data)
			if err != nil {
				return fail("%s: undecodable blob: %v", label, err)
			}
			segEvents = tr.Events
		} else {
			recs, _, err := parseSegment(data, true)
			if err != nil {
				return fail("%s: %v", label, err)
			}
			for _, r := range recs {
				if r.typ != recEvents {
					continue
				}
				tr, err := trace.Decode(r.payload)
				if err != nil {
					return fail("%s: undecodable record: %v", label, err)
				}
				segEvents = append(segEvents, tr.Events...)
			}
		}
		if len(segEvents) != seg.Events {
			return fail("%s: event count mismatch (manifest %d, decoded %d)", label, seg.Events, len(segEvents))
		}
		events = append(events, segEvents...)
	}
	if len(events) != s.Manifest.Events {
		return fail("event count mismatch (manifest %d, decoded %d)", s.Manifest.Events, len(events))
	}
	tr := &trace.Trace{Events: events}
	if got := tr.RequestCount(); got != s.Manifest.Requests {
		return fail("request count mismatch (manifest %d, decoded %d)", s.Manifest.Requests, got)
	}

	repData, err := readArtifact("reports", s.Manifest.Reports)
	if err != nil {
		return fail("%v", err)
	}
	var rep *reports.Reports
	if chunked {
		rep, err = reports.DecodeRaw(repData)
	} else {
		rep, err = decodeReportsSegment(repData)
	}
	if err != nil {
		return fail("reports: %v", err)
	}

	out := &Loaded{Sealed: s, Trace: tr, Reports: rep}
	if s.Manifest.Init != nil {
		initData, err := readArtifact("init snapshot", *s.Manifest.Init)
		if err != nil {
			return fail("%v", err)
		}
		var snap *object.Snapshot
		if chunked {
			snap, err = object.DecodeSnapshotRaw(initData)
		} else {
			snap, err = object.DecodeSnapshot(initData)
		}
		if err != nil {
			return fail("init snapshot: %v", err)
		}
		out.Init = snap
	}
	return out, nil
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
