package epoch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// IntegrityError reports that a sealed epoch's artifacts fail
// verification against the manifest (missing file, digest mismatch,
// damaged framing, count mismatch). It is evidence tampering or loss,
// so auditors surface it as a REJECT verdict, not an internal fault.
type IntegrityError struct {
	Epoch  int64
	Detail string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("epoch %d integrity: %s", e.Epoch, e.Detail)
}

// Loaded is a sealed epoch whose artifacts have been read back and
// verified against the manifest digests.
type Loaded struct {
	*Sealed
	Trace   *trace.Trace
	Reports *reports.Reports
	// Init is the trusted initial snapshot (first epoch of a chain
	// only; nil otherwise).
	Init *object.Snapshot
}

// Load reads a sealed epoch's segments, reports, and (if present)
// initial snapshot, verifying every file against the manifest's SHA-256
// digests, every record against its CRC, and the decoded event counts
// against the manifest. Failures are *IntegrityError.
func Load(s *Sealed) (*Loaded, error) {
	fail := func(format string, args ...any) (*Loaded, error) {
		return nil, &IntegrityError{Epoch: s.Number, Detail: fmt.Sprintf(format, args...)}
	}
	if s.Err != nil {
		return fail("damaged manifest: %v", s.Err)
	}
	if s.Manifest == nil {
		return fail("no manifest")
	}
	var events []trace.Event
	for _, seg := range s.Manifest.Segments {
		data, err := os.ReadFile(filepath.Join(s.Dir, seg.Name))
		if err != nil {
			return fail("segment %s: %v", seg.Name, err)
		}
		if got := fileSHA(data); got != seg.SHA256 {
			return fail("segment %s: digest mismatch (manifest %s, disk %s)", seg.Name, short(seg.SHA256), short(got))
		}
		if int64(len(data)) != seg.Bytes {
			return fail("segment %s: size mismatch (manifest %d, disk %d)", seg.Name, seg.Bytes, len(data))
		}
		recs, _, err := parseSegment(data, true)
		if err != nil {
			return fail("segment %s: %v", seg.Name, err)
		}
		n := 0
		for _, r := range recs {
			if r.typ != recEvents {
				continue
			}
			tr, err := trace.Decode(r.payload)
			if err != nil {
				return fail("segment %s: undecodable record: %v", seg.Name, err)
			}
			events = append(events, tr.Events...)
			n += len(tr.Events)
		}
		if n != seg.Events {
			return fail("segment %s: event count mismatch (manifest %d, decoded %d)", seg.Name, seg.Events, n)
		}
	}
	if len(events) != s.Manifest.Events {
		return fail("event count mismatch (manifest %d, decoded %d)", s.Manifest.Events, len(events))
	}
	tr := &trace.Trace{Events: events}
	if got := tr.RequestCount(); got != s.Manifest.Requests {
		return fail("request count mismatch (manifest %d, decoded %d)", s.Manifest.Requests, got)
	}

	repData, err := os.ReadFile(filepath.Join(s.Dir, s.Manifest.Reports.Name))
	if err != nil {
		return fail("reports: %v", err)
	}
	if got := fileSHA(repData); got != s.Manifest.Reports.SHA256 {
		return fail("reports: digest mismatch (manifest %s, disk %s)", short(s.Manifest.Reports.SHA256), short(got))
	}
	rep, err := decodeReportsSegment(repData)
	if err != nil {
		return fail("reports: %v", err)
	}

	out := &Loaded{Sealed: s, Trace: tr, Reports: rep}
	if s.Manifest.Init != nil {
		initData, err := os.ReadFile(filepath.Join(s.Dir, s.Manifest.Init.Name))
		if err != nil {
			return fail("init snapshot: %v", err)
		}
		if got := fileSHA(initData); got != s.Manifest.Init.SHA256 {
			return fail("init snapshot: digest mismatch (manifest %s, disk %s)", short(s.Manifest.Init.SHA256), short(got))
		}
		snap, err := object.DecodeSnapshot(initData)
		if err != nil {
			return fail("init snapshot: %v", err)
		}
		out.Init = snap
	}
	return out, nil
}

func fileSHA(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
