package epoch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/verifier"
)

// AuditorOptions configures a chain auditor.
type AuditorOptions struct {
	// Workers bounds how many epochs are loaded and integrity-checked
	// concurrently, ahead of the (inherently sequential) verification
	// stage (default 2). Verification is sequential because epoch N+1's
	// trusted initial state is epoch N's verified final snapshot.
	Workers int
	// Poll is how often Run rescans for newly sealed epochs when no
	// notification channel fires (default 250ms).
	Poll time.Duration
	// Notify, if non-nil, wakes Run early (the manager's Notify channel).
	Notify <-chan struct{}
	// From is the first epoch to audit (default 1). Starting past 1
	// requires Init or a checkpoint for From-1 (see Checkpoints).
	From int64
	// To is the last epoch to audit (0 = unbounded; Run keeps watching).
	To int64
	// Init overrides the trusted initial state of epoch From. When
	// zero-valued, epoch 1 uses its manifest's init snapshot and
	// From > 1 loads checkpoint From-1.
	Init *object.Snapshot
	// Checkpoints, when true, persists each accepted epoch's verified
	// final snapshot under <dir>/checkpoints/, so a later audit run can
	// resume from the middle of the chain (default off; the CLI enables
	// it).
	Checkpoints bool
	// Verify configures the underlying verifier.
	Verify verifier.Options
	// Observer, if non-nil, receives the per-epoch audit progress
	// callbacks (verifier.Observer) for whichever epoch is currently
	// under verification. The auditor additionally tracks the same
	// stream itself and exposes it as Progress() for status endpoints,
	// so most callers need no Observer of their own. It supersedes
	// Verify.Observer, which the auditor overrides per epoch.
	Observer verifier.Observer
}

func (o AuditorOptions) withDefaults() AuditorOptions {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.From <= 0 {
		o.From = 1
	}
	return o
}

// Verdict is one entry of the audit ledger.
type Verdict struct {
	Epoch    int64
	Accepted bool
	Reason   string // empty when accepted
	// Forensics is the structured evidence behind a REJECT: the
	// verifier's record for verification failures, or an epoch-level
	// record (integrity/chain failures) built here. Nil when accepted.
	Forensics *verifier.Forensics
	Events    int
	Requests  int
	// AuditTime is the verifier's wall time for this epoch (zero when
	// the epoch was rejected before verification, e.g. on an integrity
	// failure).
	AuditTime time.Duration
	// Stats is the verifier's cost decomposition (zero value when
	// verification never ran).
	Stats verifier.Stats
	// ManifestSHA is the digest of this epoch's manifest file.
	ManifestSHA string
	// ChainSHA is the running ledger digest: H(prev ChainSHA ||
	// ManifestSHA || verdict byte). Two auditors that agree on the last
	// ChainSHA agree on every verdict before it.
	ChainSHA string
	// Adopted marks a compacted epoch whose stored ACCEPT decision and
	// checkpoint were adopted instead of re-verified (retention
	// compaction evicted its artifacts). Adopted verdicts extend the
	// chain digest exactly as a full audit would, but are not
	// re-appended to the decision log — the stored decision, possibly
	// acknowledged, stands.
	Adopted bool
	// KeepStored marks a REJECT whose epoch holds a stored ACCEPT that
	// must survive it: a compacted epoch's adoption failed (unreadable
	// checkpoint, manifest mismatch), which can be transient — its bulk
	// artifacts are gone, so the stored ACCEPT is the only trust
	// artifact left and overwriting it with this verdict would make the
	// failure permanent. The verdict still breaks this run's chain; a
	// later run re-attempts adoption from the intact decision.
	KeepStored bool
}

// Auditor verifies a chain of sealed epochs, continuously or in
// batches, concurrently with live serving. Epoch N+1's trusted initial
// state is epoch N's verified final snapshot (verifier.Result.
// FinalSnapshot), so a single REJECT — including an integrity failure
// such as a flipped byte in a sealed segment — poisons the chain: later
// epochs have no trusted initial state and are reported as blocked
// rather than audited.
type Auditor struct {
	dir  string
	prog *lang.Program
	opts AuditorOptions
	// never is the shared never-firing channel notifyChan falls back to
	// when no Notify channel is configured, so polling iterations don't
	// allocate a fresh channel each time around.
	never chan struct{}

	// log is the durable decision ledger (decisions.jsonl in dir); a
	// failed open is parked in logErr and surfaced by the first RunOnce,
	// keeping NewAuditor's signature error-free.
	log    *DecisionLog
	logErr error

	mu       sync.Mutex
	verdicts []Verdict
	next     int64 // next epoch number to audit
	init     *object.Snapshot
	prevSHA  string // manifest digest the next epoch must chain to
	chainSHA string
	broken   bool
	progress Progress
	// pendingCkpt holds a verified final snapshot whose checkpoint write
	// failed; the next RunOnce retries it before auditing further, so a
	// transient write failure never permanently skips an epoch's
	// checkpoint (which would break a later -from resume).
	pendingCkpt *pendingCheckpoint
}

type pendingCheckpoint struct {
	n    int64
	snap *object.Snapshot
}

// CheckpointError reports a failed write of an epoch's verified final
// snapshot. The epoch's verdict is already published and the snapshot
// is parked for a retry on the next RunOnce, so the failure is
// transient from the chain's point of view: Run keeps polling through
// it instead of abandoning the audit loop.
type CheckpointError struct {
	Epoch int64
	Err   error
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("epoch %d: checkpoint write failed (will retry): %v", e.Epoch, e.Err)
}

func (e *CheckpointError) Unwrap() error { return e.Err }

// NewAuditor builds an auditor over the epoch chain in dir. It opens
// the chain's durable decision log (creating it on first use) and
// rehydrates the ledger with the decisions of epochs before From —
// verdicts published by an earlier run, which would otherwise be
// invisible to Verdicts() and the status endpoints after a restart. A
// failed log open does not fail construction; it surfaces as the first
// RunOnce's error.
func NewAuditor(prog *lang.Program, dir string, opts AuditorOptions) *Auditor {
	opts = opts.withDefaults()
	a := &Auditor{dir: dir, prog: prog, opts: opts, never: make(chan struct{}),
		next: opts.From, init: opts.Init}
	a.log, a.logErr = OpenDecisionLog(dir)
	if a.log != nil {
		a.rehydrate()
	}
	return a
}

// rehydrate replays prior-run decisions for epochs before From into the
// in-memory ledger. The chain digest resumes from the last rehydrated
// decision only when the rehydrated prefix is contiguous and ends at
// From-1 — otherwise this run's digests start a fresh sequence rather
// than silently chaining across a gap. Decisions at or after From are
// left to the coming re-audit (its verdicts replace them in the log).
func (a *Auditor) rehydrate() {
	var prior []Verdict
	for _, d := range a.log.Decisions() {
		if d.Epoch < a.opts.From {
			prior = append(prior, verdictFromDecision(d))
		}
	}
	if len(prior) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.verdicts = append(a.verdicts, prior...)
	for _, v := range prior {
		if !v.Accepted && a.init == nil {
			// A prior REJECT poisons the chain for this run too — unless
			// the caller supplied a trusted initial state (Init, e.g. from
			// a checkpoint), which is the explicit way to resume past one.
			a.broken = true
		}
	}
	last := prior[len(prior)-1]
	if last.Epoch == a.opts.From-1 && int64(len(prior)) == last.Epoch-prior[0].Epoch+1 &&
		last.ChainSHA != "" {
		// A decision with no chain digest (a scrub REJECT recorded for a
		// never-audited epoch) cannot seed the digest sequence; without
		// it this run's digests start fresh rather than silently chaining
		// from an empty string.
		a.chainSHA = last.ChainSHA
	}
}

// Decisions exposes the durable decision log (nil when its open
// failed); the console serves verdict history and acks through it.
func (a *Auditor) Decisions() *DecisionLog { return a.log }

// maxCheckpointRetries bounds how many consecutive failed checkpoint
// writes Run polls through before surfacing the error: transient
// failures self-heal within a few poll ticks, while a permanently
// unwritable checkpoint path must not stall auditing silently forever.
const maxCheckpointRetries = 10

// ckptRetryBudget is the consecutive-stalled-failure rule shared by Run
// and DrainSealed: forward progress resets the budget, and only a
// CheckpointError within the budget is retryable.
type ckptRetryBudget struct{ failures int }

// observe classifies one RunOnce outcome. It returns true when err is a
// retryable checkpoint failure within budget (the caller should wait
// and call RunOnce again); false means err must be surfaced as-is (or
// is nil).
func (b *ckptRetryBudget) observe(n int, err error) bool {
	if n > 0 || err == nil {
		// Forward progress (new verdicts, or a pass without a write
		// failure): only *consecutive* stalled failures count against the
		// budget — per-epoch transient flaps that heal on the next poll
		// must not accumulate into an abort.
		b.failures = 0
	}
	if err == nil {
		return false
	}
	var ck *CheckpointError
	if !errors.As(err, &ck) || b.failures >= maxCheckpointRetries {
		return false
	}
	b.failures++
	return true
}

// Run audits sealed epochs as they appear until ctx is cancelled (or,
// when To is set, until To has been audited — and its checkpoint
// persisted — or the chain breaks). On cancellation it returns an error
// matching both verifier.ErrAuditCanceled and the context error; a
// cancellation that lands mid-epoch abandons that epoch's verification
// without publishing any verdict (never a REJECT — the executor did
// nothing wrong), so a later Run or RunOnce re-audits the epoch from
// scratch. It returns nil on a completed bounded run. A CheckpointError
// from RunOnce is retryable (the verdict is published, only the
// snapshot write is owed), so Run keeps polling through it; after
// maxCheckpointRetries consecutive failures it returns the error
// instead.
func (a *Auditor) Run(ctx context.Context) error {
	var budget ckptRetryBudget
	for {
		n, err := a.RunOnce(ctx)
		if errors.Is(err, verifier.ErrAuditCanceled) {
			return err
		}
		if !budget.observe(n, err) && err != nil {
			return err
		}
		a.mu.Lock()
		done := a.broken || (a.opts.To > 0 && a.next > a.opts.To && a.pendingCkpt == nil)
		a.mu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return canceled(ctx)
		case <-a.notifyChan():
		case <-time.After(a.opts.Poll):
		}
	}
}

// canceled wraps a context cancellation so callers can match it as
// verifier.ErrAuditCanceled and as the underlying context error alike,
// whether the cancellation landed mid-epoch or between epochs.
func canceled(ctx context.Context) error {
	return fmt.Errorf("epoch: %w: %w", verifier.ErrAuditCanceled, context.Cause(ctx))
}

func (a *Auditor) notifyChan() <-chan struct{} {
	if a.opts.Notify != nil {
		return a.opts.Notify
	}
	return a.never // never fires; the Poll timer drives us
}

// RunOnce audits every currently sealed, not-yet-audited epoch in chain
// order and returns how many verdicts it appended. A REJECT stops the
// chain; a non-nil error is an internal fault (not a verdict).
// Cancelling ctx abandons the epoch currently under verification with
// an error matching verifier.ErrAuditCanceled — its verdict is NOT
// published and the auditor's position does not advance, so the next
// RunOnce re-audits it whole (symmetric with the retryable
// CheckpointError path: transient interruptions never turn into
// spurious REJECTs).
func (a *Auditor) RunOnce(ctx context.Context) (int, error) {
	if ctx.Err() != nil {
		// Check before any disk work: a dead context must not pay for a
		// full epoch load just to discard it inside the verifier.
		return 0, canceled(ctx)
	}
	if a.logErr != nil {
		// No durable ledger, no audits: publishing verdicts that vanish
		// on restart would silently defeat the decision log.
		return 0, fmt.Errorf("epoch: decision log unavailable: %w", a.logErr)
	}
	a.mu.Lock()
	if a.broken {
		a.mu.Unlock()
		return 0, nil
	}
	start := a.next
	a.mu.Unlock()

	// A checkpoint whose write failed last time must land before any new
	// verdicts: its epoch has already been published and a.next advanced
	// past it, so this retry is the only path that ever writes it.
	if err := a.flushPendingCheckpoint(); err != nil {
		return 0, err
	}

	// Probe epoch directories directly from `start` — the naming scheme
	// is deterministic, so discovering new work is O(new epochs), not a
	// full O(chain length) rescan on every poll. The probe stops at the
	// first unsealed epoch, which also enforces chain contiguity: a gap
	// (an epoch lost before sealing) simply never closes, and later
	// sealed epochs stay unaudited — surfaced by callers comparing
	// NextEpoch against what exists on disk.
	var batch []*Sealed
	for n := start; a.opts.To == 0 || n <= a.opts.To; n++ {
		epochDir := filepath.Join(a.dir, epochDirName(n))
		m, sha, err := ReadManifest(epochDir)
		switch {
		case os.IsNotExist(err):
			// Not sealed yet (or a gap): stop here.
		case err != nil:
			// Damaged manifest: audit evidence, not a fault — it will
			// become a REJECT verdict and break the chain there.
			batch = append(batch, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha, Err: err})
		case m.Epoch != n:
			batch = append(batch, &Sealed{Number: n, Dir: epochDir, ManifestSHA: sha,
				Err: fmt.Errorf("epoch: manifest in %s claims epoch %d", epochDir, m.Epoch)})
		default:
			marker, _ := ReadCompacted(epochDir)
			batch = append(batch, &Sealed{Number: n, Dir: epochDir, Manifest: m, ManifestSHA: sha,
				Compacted: marker != nil})
			continue
		}
		break
	}
	if len(batch) == 0 {
		return 0, nil
	}

	// Resolve the manifest digest the first epoch must chain to.
	if start > 1 {
		if err := a.ensurePrevSHA(start); err != nil {
			return 0, err
		}
	}

	// Stage 1 (worker pool): load + integrity-check epochs concurrently.
	// A semaphore slot is held from load start until stage 2 consumes
	// the result, so at most Workers fully decoded epochs sit in memory
	// ahead of the (slower) sequential verification stage. A single
	// dispatcher acquires slots in chain order — were loaders to race
	// for slots themselves, later epochs could hold every slot while
	// the consumer waits on an earlier epoch that can never start.
	futures := make([]chan loadResult, len(batch))
	for i := range futures {
		futures[i] = make(chan loadResult, 1)
	}
	sem := make(chan struct{}, a.opts.Workers)
	go func() {
		for i, s := range batch {
			sem <- struct{}{}
			go func(i int, s *Sealed) {
				if s.Compacted {
					// Nothing to load: the epoch's artifacts were evicted
					// by compaction; auditOne adopts its stored decision.
					futures[i] <- loadResult{}
					return
				}
				l, err := Load(s)
				futures[i] <- loadResult{loaded: l, err: err}
			}(i, s)
		}
	}()
	consumed := 0
	defer func() {
		// On an early return (verifier fault or chain break), drain the
		// abandoned prefetches in the background so their loader
		// goroutines don't block on the semaphore forever.
		go func(from int) {
			for i := from; i < len(batch); i++ {
				<-futures[i]
				<-sem
			}
		}(consumed)
	}()

	// Stage 2 (sequential): verify in chain order, threading the
	// verified final snapshot forward.
	audited := 0
	for i, s := range batch {
		r := <-futures[i]
		<-sem
		consumed = i + 1
		verdict, snapNext, err := a.auditOne(ctx, s, r)
		if err != nil {
			return audited, err
		}
		a.mu.Lock()
		a.verdicts = append(a.verdicts, verdict)
		if verdict.Accepted {
			a.init = snapNext
			a.prevSHA = s.ManifestSHA
			a.next = s.Number + 1
		} else {
			a.broken = true
		}
		a.mu.Unlock()
		audited++
		if !verdict.Adopted && !verdict.KeepStored {
			// Adopted verdicts restate a decision the log already holds
			// (possibly acknowledged); re-appending would reopen its
			// resolution and forge a fresh DecidedAt. KeepStored REJECTs
			// must not replace a compacted epoch's stored ACCEPT — the
			// epoch's only remaining trust artifact.
			if err := a.log.Append(decisionFromVerdict(verdict)); err != nil {
				// The verdict is published in memory; a ledger that cannot
				// take it is an internal fault the caller must see.
				return audited, err
			}
		}
		if !verdict.Accepted {
			break
		}
		if a.opts.Checkpoints && !verdict.Adopted {
			if err := a.writeCheckpoint(s.Number, snapNext); err != nil {
				// The verdict is already published and a.next advanced, so
				// park the snapshot for a retry on the next RunOnce instead
				// of losing this epoch's checkpoint forever.
				a.mu.Lock()
				a.pendingCkpt = &pendingCheckpoint{n: s.Number, snap: snapNext}
				a.mu.Unlock()
				return audited, &CheckpointError{Epoch: s.Number, Err: err}
			}
		}
	}
	return audited, nil
}

// DrainSealed synchronously audits every currently sealed,
// not-yet-audited epoch — the catch-up counterpart of Run for CLI use.
// Retryable checkpoint-write failures are polled through with the same
// maxCheckpointRetries budget as Run, waiting `wait` between attempts
// and resetting on forward progress; onRetry, when non-nil, observes
// each retried error. Cancelling ctx abandons the drain (mid-epoch
// cancellations publish no verdict, exactly as in RunOnce) with an
// error matching verifier.ErrAuditCanceled. It returns the number of
// verdicts appended.
func (a *Auditor) DrainSealed(ctx context.Context, wait time.Duration, onRetry func(error)) (int, error) {
	total := 0
	var budget ckptRetryBudget
	for {
		n, err := a.RunOnce(ctx)
		total += n
		if errors.Is(err, verifier.ErrAuditCanceled) {
			return total, err
		}
		if budget.observe(n, err) {
			if onRetry != nil {
				onRetry(err)
			}
			select {
			case <-ctx.Done():
				return total, canceled(ctx)
			case <-time.After(wait):
			}
			continue
		}
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
	}
}

type loadResult struct {
	loaded *Loaded
	err    error
}

// auditOne produces the verdict for one epoch and, on acceptance, the
// verified final snapshot that seeds the next epoch. A cancellation
// mid-verification surfaces as the verifier's typed error (no verdict,
// no chain extension); the epoch stays unaudited for the next pass.
func (a *Auditor) auditOne(ctx context.Context, s *Sealed, r loadResult) (Verdict, *object.Snapshot, error) {
	v := Verdict{Epoch: s.Number, ManifestSHA: s.ManifestSHA}
	if s.Manifest != nil {
		v.Events = s.Manifest.Events
		v.Requests = s.Manifest.Requests
	}
	reject := func(reason string, f *verifier.Forensics) (Verdict, *object.Snapshot, error) {
		v.Accepted = false
		v.Reason = reason
		if f != nil && f.Detail == "" {
			f.Detail = reason
		}
		v.Forensics = f
		v.ChainSHA = a.extendChain(s.ManifestSHA, false)
		return v, nil, nil
	}
	if r.err != nil {
		if _, ok := r.err.(*IntegrityError); ok {
			// Epoch-level evidence: the load names the damaged segment or
			// file; no request-level forensics exist because verification
			// never ran.
			return reject(r.err.Error(), &verifier.Forensics{Phase: PhaseEpochLoad, Check: "integrity"})
		}
		return v, nil, r.err
	}
	a.mu.Lock()
	prevSHA := a.prevSHA
	init := a.init
	a.mu.Unlock()
	if s.Manifest.PrevManifestSHA256 != prevSHA {
		return reject(fmt.Sprintf("manifest chain mismatch: epoch %d links to %s, previous manifest is %s",
			s.Number, short(s.Manifest.PrevManifestSHA256), short(prevSHA)),
			&verifier.Forensics{Phase: PhaseEpochLoad, Check: "manifest-chain"})
	}
	if s.Compacted {
		// Retention compaction evicted this epoch's bulk artifacts; it
		// survives as its stored ACCEPT decision plus checkpoint. Adopt
		// both: the chain link was just verified against the on-disk
		// manifest, the stored decision must pin that exact manifest,
		// and the checkpoint becomes the next epoch's trusted initial
		// state. The chain digest is extended with the same
		// H(prev || manifestSHA || 1) as a full audit, so ChainSHA stays
		// bit-identical to an uncompacted run.
		// Any reject below must not overwrite a decision the log already
		// holds: the stored decision is the compacted epoch's only
		// remaining trust artifact, and an adoption failure (unreadable
		// checkpoint, manifest mismatch) can be transient — replacing the
		// decision would make it permanent and unrecoverable.
		d, ok := a.log.Get(s.Number)
		v.KeepStored = ok
		if !ok || !d.Accepted {
			return reject(fmt.Sprintf("epoch %d is compacted but the decision log holds no ACCEPT for it", s.Number),
				&verifier.Forensics{Phase: PhaseEpochLoad, Check: "compaction"})
		}
		if d.ManifestSHA != s.ManifestSHA {
			return reject(fmt.Sprintf("epoch %d is compacted but its stored decision pins manifest %s, on disk is %s",
				s.Number, short(d.ManifestSHA), short(s.ManifestSHA)),
				&verifier.Forensics{Phase: PhaseEpochLoad, Check: "compaction"})
		}
		snapNext, err := LoadCheckpoint(a.dir, s.Number)
		if err != nil {
			return reject(fmt.Sprintf("epoch %d is compacted but its checkpoint is unreadable: %v", s.Number, err),
				&verifier.Forensics{Phase: PhaseEpochLoad, Check: "compaction"})
		}
		v.Accepted = true
		v.Adopted = true
		v.ChainSHA = a.extendChain(s.ManifestSHA, true)
		return v, snapNext, nil
	}
	if init == nil {
		if r.loaded.Init == nil {
			return reject(fmt.Sprintf("epoch %d has no trusted initial state (no chained snapshot, no init in manifest)", s.Number),
				&verifier.Forensics{Phase: PhaseEpochLoad, Check: "missing-init"})
		}
		init = r.loaded.Init
	}
	vopts := a.opts.Verify
	vopts.Observer = a.beginProgress(s.Number)
	defer a.endProgress()
	res, err := verifier.AuditContext(ctx, a.prog, r.loaded.Trace, r.loaded.Reports, init, vopts)
	if err != nil {
		return v, nil, err
	}
	v.AuditTime = res.Stats.Total
	v.Stats = res.Stats
	if !res.Accepted {
		return reject(res.Reason, res.Forensics)
	}
	snapNext, err := res.FinalSnapshot()
	if err != nil {
		return v, nil, err
	}
	v.Accepted = true
	v.ChainSHA = a.extendChain(s.ManifestSHA, true)
	return v, snapNext, nil
}

// extendChain advances the running ledger digest.
func (a *Auditor) extendChain(manifestSHA string, accepted bool) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := sha256.New()
	h.Write([]byte(a.chainSHA))
	h.Write([]byte(manifestSHA))
	if accepted {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	a.chainSHA = hex.EncodeToString(h.Sum(nil))
	return a.chainSHA
}

// ensurePrevSHA fills in the manifest digest epoch `start` must link
// to, reading epoch start-1's manifest from disk. (Its contents are
// vouched for by the checkpoint trust assumption, not re-verified.)
func (a *Auditor) ensurePrevSHA(start int64) error {
	a.mu.Lock()
	have := a.prevSHA != ""
	a.mu.Unlock()
	if have {
		return nil
	}
	_, sha, err := ReadManifest(filepath.Join(a.dir, epochDirName(start-1)))
	if err != nil {
		return fmt.Errorf("epoch: auditing from %d needs epoch %d's manifest: %w", start, start-1, err)
	}
	a.mu.Lock()
	a.prevSHA = sha
	a.mu.Unlock()
	return nil
}

// checkpointPath names the persisted verified final snapshot of epoch n.
func checkpointPath(dir string, n int64) string {
	return filepath.Join(dir, "checkpoints", fmt.Sprintf("epoch-%06d.bin", n))
}

// flushPendingCheckpoint retries a checkpoint write that failed on a
// previous RunOnce. It returns the write error (leaving the checkpoint
// pending) until the write succeeds.
func (a *Auditor) flushPendingCheckpoint() error {
	a.mu.Lock()
	p := a.pendingCkpt
	a.mu.Unlock()
	if p == nil {
		return nil
	}
	if err := a.writeCheckpoint(p.n, p.snap); err != nil {
		return &CheckpointError{Epoch: p.n, Err: err}
	}
	a.mu.Lock()
	if a.pendingCkpt == p {
		a.pendingCkpt = nil
	}
	a.mu.Unlock()
	return nil
}

func (a *Auditor) writeCheckpoint(n int64, snap *object.Snapshot) error {
	return WriteCheckpoint(a.dir, n, snap)
}

// WriteCheckpoint persists epoch n's verified final snapshot under
// <dir>/checkpoints/, where LoadCheckpoint finds it. The in-process
// auditor and the fleet coordinator share this path so a chain is
// resumable by either.
func WriteCheckpoint(dir string, n int64, snap *object.Snapshot) error {
	data, err := snap.Encode()
	if err != nil {
		return err
	}
	path := checkpointPath(dir, n)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return writeFileSync(path, data)
}

// LoadCheckpoint reads the verified final snapshot of epoch n, written
// by an auditor running with Checkpoints enabled. It lets a later run
// audit from epoch n+1 without replaying the whole chain, trusting the
// earlier run's verdicts.
func LoadCheckpoint(dir string, n int64) (*object.Snapshot, error) {
	data, err := os.ReadFile(checkpointPath(dir, n))
	if err != nil {
		return nil, err
	}
	return object.DecodeSnapshot(data)
}

// Verdicts returns a copy of the ledger so far, in epoch order.
func (a *Auditor) Verdicts() []Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Verdict(nil), a.verdicts...)
}

// ChainAccepted reports whether every audited epoch so far accepted.
func (a *Auditor) ChainAccepted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return !a.broken
}

// NextEpoch reports the next epoch the auditor will verify.
func (a *Auditor) NextEpoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}
