package fleet

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"orochi/internal/epoch"
	"orochi/internal/object"
	"orochi/internal/verifier"
)

// CoordinatorOptions configures a fleet coordinator.
type CoordinatorOptions struct {
	// LeaseTimeout is how long a worker may hold an epoch without
	// activity before the lease is reassigned (default 2m). Any
	// authenticated touch — an init-snapshot poll — renews it.
	LeaseTimeout time.Duration
	// CrossCheck is the fraction of epochs audited on CrossCheckK
	// workers before the verdict is believed (0 = none, 1 = every
	// epoch). Epochs are sampled deterministically from their manifest
	// digest, so reruns pick the same epochs.
	CrossCheck float64
	// CrossCheckK is how many independent verdicts a sampled epoch
	// needs (default 2).
	CrossCheckK int
	// Key is the shared fleet HMAC key; empty disables signing.
	Key []byte
	// To bounds the audit to epochs 1..To (0 = every sealed epoch).
	To int64
	// Lookahead is how many epochs past the decision point may be
	// leased speculatively (default 8). Later epochs' verification can
	// overlap earlier epochs' — only the snapshot hand-off serializes.
	Lookahead int
	// RetryMS is the wait hint returned when no lease is available
	// (default 300).
	RetryMS int
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Minute
	}
	if o.CrossCheckK <= 0 {
		o.CrossCheckK = 2
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 8
	}
	if o.RetryMS <= 0 {
		o.RetryMS = 300
	}
	return o
}

// CoordinatorStats is a point-in-time snapshot of the fleet counters
// surfaced on /-/metrics.
type CoordinatorStats struct {
	WorkersSeen          int
	LeasesActive         int
	LeasesReassigned     int64
	EpochsDecided        int
	EpochsCrossChecked   int64
	CrossCheckMismatches int64
	BadSignaturePosts    int64
	StaleVerdicts        int64
	FetchedBytes         int64
	CacheHitBytes        int64
	Done                 bool
	Broken               bool
}

// activeLease is one outstanding assignment.
type activeLease struct {
	id       string
	epoch    int64
	worker   string
	cross    bool
	deadline time.Time
}

// postedVerdict is a worker's validated, not-yet-published verdict.
type postedVerdict struct {
	post VerdictPost
	snap *object.Snapshot // decoded final snapshot (nil on REJECT)
}

// epochState tracks one sealed epoch through lease → verdict(s) →
// published decision.
type epochState struct {
	s       *epoch.Sealed
	cross   bool // sampled for cross-checking
	need    int  // verdicts required (1, or CrossCheckK when cross)
	active  map[string]*activeLease
	posted  []*postedVerdict
	decided bool
}

// outstanding is how many verdicts are already secured or in flight.
func (st *epochState) outstanding() int { return len(st.active) + len(st.posted) }

// activeWorker reports whether worker currently holds a lease on this
// epoch (a cross-check replica must come from a different in-flight
// assignment, though a worker may re-audit an epoch it already posted).
func (st *epochState) activeWorker(worker string) bool {
	for _, l := range st.active {
		if l.worker == worker {
			return true
		}
	}
	return false
}

// Coordinator walks a sealed chain's manifest hash chain and hands out
// lease-based epoch assignments to workers, in chain order, with
// snapshot hand-off: epoch N+1's trusted initial state is the verified
// final snapshot posted for epoch N. It owns the chain's durable
// decision log, so -explain, the console, and restart rehydration see
// fleet verdicts exactly as in-process ones.
//
// The epoch set is fixed at construction: a fleet audit runs against a
// chain that is not being written (the CLI holds the chain's exclusive
// audit lock), so epochs sealed later are a different audit.
type Coordinator struct {
	dir  string
	opts CoordinatorOptions
	log  *epoch.DecisionLog
	now  func() time.Time // test hook

	mu         sync.Mutex
	states     map[int64]*epochState
	maxKnown   int64 // highest sealed epoch under To
	next       int64 // next epoch to decide (chain order)
	chainSHA   string
	prevSHA    string           // manifest digest epoch `next` must link to
	inits      map[int64][]byte // encoded trusted initial state, by epoch
	leases     map[string]*activeLease
	workers    map[string]time.Time // worker name → last seen
	verdicts   []epoch.Verdict
	broken     bool
	incomplete int64 // first missing epoch when the chain has a seal gap
	finished   bool
	err        error // internal fault that aborted the audit
	warnings   []string
	done       chan struct{}

	leasesReassigned     int64
	epochsCrossChecked   int64
	crossCheckMismatches int64
	badSignaturePosts    int64
	staleVerdicts        int64
	fetchedBytes         int64
	cacheHitBytes        int64
}

// NewCoordinator opens the chain's decision log, scans its sealed
// epochs, and resumes from the last stored decision: a contiguous
// accepted prefix is rehydrated (the hand-off continues from its
// checkpoint), a stored REJECT leaves the chain broken, and a fresh
// chain starts at epoch 1. Only chunked (v2) chains are coordinated —
// workers fetch artifacts by chunk digest.
func NewCoordinator(dir string, opts CoordinatorOptions) (*Coordinator, error) {
	opts = opts.withDefaults()
	log, err := epoch.OpenDecisionLog(dir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		dir:     dir,
		opts:    opts,
		log:     log,
		now:     time.Now,
		states:  make(map[int64]*epochState),
		next:    1,
		inits:   make(map[int64][]byte),
		leases:  make(map[string]*activeLease),
		workers: make(map[string]time.Time),
		done:    make(chan struct{}),
	}
	sealed, err := epoch.ListSealed(dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	for _, s := range sealed {
		if opts.To > 0 && s.Number > opts.To {
			continue
		}
		if s.Manifest != nil && !s.Manifest.Chunked() && !s.Compacted {
			log.Close()
			return nil, fmt.Errorf("fleet: epoch %d uses the whole-file layout; fleet audit requires the chunked layout (-epoch-storage chunked)", s.Number)
		}
		st := &epochState{s: s, active: make(map[string]*activeLease)}
		st.cross = c.crossFor(s)
		st.need = 1
		if st.cross {
			st.need = opts.CrossCheckK
		}
		c.states[s.Number] = st
		if s.Number > c.maxKnown {
			c.maxKnown = s.Number
		}
	}
	if err := c.rehydrate(); err != nil {
		log.Close()
		return nil, err
	}
	c.mu.Lock()
	if c.broken {
		// A stored REJECT poisons the chain for this run too; re-audit
		// past one with the single-process auditor's -from/-init.
		c.finishLocked()
	} else {
		c.advanceLocked()
	}
	c.mu.Unlock()
	return c, nil
}

// rehydrate resumes from the durable decision log: the contiguous
// decided prefix starting at epoch 1 is replayed into the ledger, and
// when it ends in an ACCEPT with more epochs to audit, the hand-off
// resumes from that epoch's checkpoint. Mirrors Auditor.rehydrate: a
// decision with no chain digest cannot seed the digest sequence.
func (c *Coordinator) rehydrate() error {
	byEpoch := make(map[int64]epoch.Decision)
	for _, d := range c.log.Decisions() {
		byEpoch[d.Epoch] = d
	}
	for n := int64(1); ; n++ {
		if c.opts.To > 0 && n > c.opts.To {
			break
		}
		d, ok := byEpoch[n]
		if !ok {
			break
		}
		v := epoch.VerdictFromDecision(d)
		c.verdicts = append(c.verdicts, v)
		if st := c.states[n]; st != nil {
			st.decided = true
		}
		if v.ChainSHA != "" {
			c.chainSHA = v.ChainSHA
		}
		if !v.Accepted {
			c.broken = true
			return nil
		}
		c.prevSHA = v.ManifestSHA
		c.next = n + 1
	}
	if c.next > 1 && c.states[c.next] != nil {
		// More epochs to audit: the hand-off needs the last accepted
		// epoch's verified final snapshot.
		snap, err := epoch.LoadCheckpoint(c.dir, c.next-1)
		if err != nil {
			return fmt.Errorf("fleet: resuming at epoch %d needs epoch %d's checkpoint: %w", c.next, c.next-1, err)
		}
		data, err := snap.Encode()
		if err != nil {
			return err
		}
		c.inits[c.next] = data
	}
	return nil
}

// crossFor deterministically samples an epoch for cross-checking from
// its manifest digest, so reruns and restarts pick the same epochs.
func (c *Coordinator) crossFor(s *epoch.Sealed) bool {
	if c.opts.CrossCheck <= 0 || s.Err != nil || s.Compacted {
		return false
	}
	if c.opts.CrossCheck >= 1 {
		return true
	}
	if len(s.ManifestSHA) < 8 {
		return false
	}
	v, err := strconv.ParseUint(s.ManifestSHA[:8], 16, 64)
	if err != nil {
		return false
	}
	return float64(v)/float64(1<<32) < c.opts.CrossCheck
}

// Handler returns the coordinator's HTTP surface (mount beside the
// artifact server's under Prefix+"/").
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+Prefix+"/lease", c.handleLease)
	mux.HandleFunc("POST "+Prefix+"/verdict", c.handleVerdict)
	mux.HandleFunc("GET "+Prefix+"/epoch/{n}/init", c.handleInit)
	return mux
}

// maxPostBytes bounds request bodies; final snapshots dominate (they
// are gzip-compressed object state).
const maxPostBytes = 256 << 20

func (c *Coordinator) readSigned(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPostBytes+1))
	if err != nil || int64(len(body)) > maxPostBytes {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return nil, false
	}
	if !VerifySig(c.opts.Key, body, r.Header.Get(SigHeader)) {
		c.mu.Lock()
		c.badSignaturePosts++
		c.mu.Unlock()
		http.Error(w, "bad fleet signature", http.StatusForbidden)
		return nil, false
	}
	return body, true
}

func (c *Coordinator) respondJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	signResponse(w, c.opts.Key, body)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readSigned(w, r)
	if !ok {
		return
	}
	var req LeaseRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.workers[req.Worker] = c.now()
	c.expireLocked()
	resp := LeaseResponse{}
	if c.finished {
		resp.Done = true
	} else if l := c.grantLocked(req.Worker); l != nil {
		resp.Lease = l
	} else {
		resp.RetryMS = c.opts.RetryMS
	}
	c.mu.Unlock()
	c.respondJSON(w, resp)
}

// grantLocked finds the lowest leasable epoch within the lookahead
// window. Damaged and compacted epochs are decided locally (never
// leased); a gap in the chain stops the walk — nothing past it can be
// decided this run.
func (c *Coordinator) grantLocked(worker string) *Lease {
	limit := c.next + int64(c.opts.Lookahead)
	for n := c.next; n <= c.maxKnown && n < limit; n++ {
		if c.opts.To > 0 && n > c.opts.To {
			return nil
		}
		st := c.states[n]
		if st == nil {
			return nil // seal gap
		}
		if st.decided || st.s.Err != nil || st.s.Compacted {
			continue
		}
		if st.outstanding() >= st.need || st.activeWorker(worker) {
			continue
		}
		var prevSHA string
		if prev := c.states[n-1]; prev != nil {
			prevSHA = prev.s.ManifestSHA
		}
		l := &activeLease{
			id:       newLeaseID(),
			epoch:    n,
			worker:   worker,
			cross:    st.cross && st.outstanding() > 0,
			deadline: c.now().Add(c.opts.LeaseTimeout),
		}
		st.active[l.id] = l
		c.leases[l.id] = l
		return &Lease{
			ID:              l.id,
			Epoch:           n,
			ManifestSHA:     st.s.ManifestSHA,
			PrevManifestSHA: prevSHA,
			InitManifest:    n == 1,
			CrossCheck:      l.cross,
			DeadlineUnix:    l.deadline.Unix(),
		}
	}
	return nil
}

// expireLocked reassigns timed-out leases: the lease is dropped, so the
// next worker asking for work picks the epoch up. A verdict posted on a
// dropped lease is stale and answered 409.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for id, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, id)
			if st := c.states[l.epoch]; st != nil {
				delete(st.active, id)
			}
			c.leasesReassigned++
		}
	}
}

// handleInit serves the trusted initial state of a leased epoch: the
// previous epoch's verified final snapshot, once it exists. 202 means
// not yet (the previous epoch is still being audited), 410 means the
// lease is gone — expired, or the chain broke before this epoch — and
// the worker must abandon the assignment.
func (c *Coordinator) handleInit(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseInt(r.PathValue("n"), 10, 64)
	if err != nil || n <= 0 {
		http.Error(w, "bad epoch number", http.StatusBadRequest)
		return
	}
	leaseID := r.URL.Query().Get("lease")
	c.mu.Lock()
	c.expireLocked()
	l := c.leases[leaseID]
	if l == nil || l.epoch != n {
		c.mu.Unlock()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	l.deadline = c.now().Add(c.opts.LeaseTimeout) // activity renews
	c.workers[l.worker] = c.now()
	data := c.inits[n]
	c.mu.Unlock()
	if data == nil {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	signResponse(w, c.opts.Key, data)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (c *Coordinator) handleVerdict(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readSigned(w, r)
	if !ok {
		return
	}
	var p VerdictPost
	if err := json.Unmarshal(body, &p); err != nil {
		http.Error(w, "bad verdict post", http.StatusBadRequest)
		return
	}
	// Decode the snapshot outside the lock (gzip + gob): the body is
	// already authenticated, and validation against the lease happens
	// below before anything is believed.
	var snap *object.Snapshot
	if p.Accepted {
		var err error
		snap, err = object.DecodeSnapshot(p.FinalSnapshot)
		if err != nil {
			http.Error(w, fmt.Sprintf("undecodable final snapshot: %v", err), http.StatusBadRequest)
			return
		}
		if got := snap.CanonicalDigest(); got != p.SnapshotDigest {
			http.Error(w, "snapshot digest does not match snapshot", http.StatusBadRequest)
			return
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.workers[p.Worker] = c.now()
	l := c.leases[p.LeaseID]
	if l == nil || l.epoch != p.Epoch || l.worker != p.Worker {
		// Expired (reassigned) lease, or a verdict for an epoch the
		// worker does not hold: ignored, never a verdict.
		c.staleVerdicts++
		http.Error(w, "stale or unknown lease", http.StatusConflict)
		return
	}
	st := c.states[p.Epoch]
	if st == nil || st.decided {
		c.staleVerdicts++
		http.Error(w, "stale or unknown lease", http.StatusConflict)
		return
	}
	if p.ManifestSHA != st.s.ManifestSHA {
		// The worker audited different manifest bytes than the chain
		// holds; the post proves nothing about this epoch. Keep the
		// lease — the worker is confused, not slow.
		http.Error(w, "manifest digest does not match chain", http.StatusBadRequest)
		return
	}
	// Consume the lease and stash the verdict.
	delete(c.leases, l.id)
	delete(st.active, l.id)
	st.posted = append(st.posted, &postedVerdict{post: p, snap: snap})
	c.fetchedBytes += p.FetchedBytes
	if hit := p.LogicalBytes - p.FetchedBytes; hit > 0 {
		c.cacheHitBytes += hit
	}
	c.advanceLocked()
	ack := []byte("verdict recorded\n")
	signResponse(w, c.opts.Key, ack)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(ack)
}

// advanceLocked publishes decisions strictly in chain order: local
// decisions (damaged manifests, compacted adoptions) are made on the
// spot; leased epochs wait for their verdict quorum. It stops at the
// first epoch that is not ready, and finishes the audit when the chain
// is exhausted, bounded by To, broken, or gapped.
func (c *Coordinator) advanceLocked() {
	for !c.broken && !c.finished && c.err == nil {
		if c.opts.To > 0 && c.next > c.opts.To {
			c.finishLocked()
			return
		}
		st := c.states[c.next]
		if st == nil {
			if c.next <= c.maxKnown {
				// Seal gap: later epochs exist but this one never sealed.
				// Nothing past the gap can be audited (no hand-off), so
				// the run finishes incomplete — same as the single-process
				// auditor's sealedPastGap outcome.
				c.incomplete = c.next
			}
			c.finishLocked()
			return
		}
		if st.decided {
			// Rehydrated prefix; position already advanced in rehydrate.
			c.next++
			continue
		}
		s := st.s
		switch {
		case s.Err != nil:
			// Damaged manifest: decided locally, exactly as auditOne's
			// integrity reject (the load error names the damage).
			ie := &epoch.IntegrityError{Epoch: s.Number, Detail: fmt.Sprintf("damaged manifest: %v", s.Err)}
			c.publishLocked(st, c.rejectVerdict(st, ie.Error(),
				&verifier.Forensics{Phase: epoch.PhaseEpochLoad, Check: "integrity"}), nil)
		case s.Compacted:
			v, snap := c.adoptLocked(st)
			c.publishLocked(st, v, snap)
		default:
			if len(st.posted) == 0 {
				return // waiting on a worker
			}
			if st.cross {
				if reason, f := c.crossMismatchLocked(st); f != nil {
					c.epochsCrossChecked++
					c.crossCheckMismatches++
					c.publishLocked(st, c.rejectVerdict(st, reason, f), nil)
					continue
				}
				if len(st.posted) < st.need {
					return // waiting on replicas
				}
				c.epochsCrossChecked++
			}
			first := st.posted[0]
			c.publishLocked(st, c.verdictFromPost(st, first), first.snap)
		}
	}
}

// rejectVerdict builds a locally-decided REJECT, replicating
// auditOne's reject closure (Detail defaults to the reason).
func (c *Coordinator) rejectVerdict(st *epochState, reason string, f *verifier.Forensics) epoch.Verdict {
	v := epoch.Verdict{Epoch: st.s.Number, ManifestSHA: st.s.ManifestSHA, Reason: reason}
	if st.s.Manifest != nil {
		v.Events = st.s.Manifest.Events
		v.Requests = st.s.Manifest.Requests
	}
	if f != nil && f.Detail == "" {
		f.Detail = reason
	}
	v.Forensics = f
	return v
}

// verdictFromPost builds the ledger verdict from a worker's post. The
// coordinator trusts only the audit outcome and its evidence; epoch
// identity, counts, and the chain digest come from its own manifest
// walk.
func (c *Coordinator) verdictFromPost(st *epochState, pv *postedVerdict) epoch.Verdict {
	p := pv.post
	v := epoch.Verdict{
		Epoch:       st.s.Number,
		ManifestSHA: st.s.ManifestSHA,
		Accepted:    p.Accepted,
		Reason:      p.Reason,
		Forensics:   p.Forensics,
		AuditTime:   p.Stats.Total,
		Stats:       p.Stats,
	}
	if st.s.Manifest != nil {
		v.Events = st.s.Manifest.Events
		v.Requests = st.s.Manifest.Requests
	}
	return v
}

// adoptLocked replicates auditOne's compacted-epoch adoption: the
// stored ACCEPT plus checkpoint stand in for the evicted artifacts.
// Like the single-process path, an adoption-failure REJECT never
// overwrites the stored decision (keepStored is handled in
// publishLocked via Verdict semantics replicated here).
func (c *Coordinator) adoptLocked(st *epochState) (epoch.Verdict, *object.Snapshot) {
	s := st.s
	d, stored := c.log.Get(s.Number)
	reject := func(reason string) (epoch.Verdict, *object.Snapshot) {
		v := c.rejectVerdict(st, reason, &verifier.Forensics{Phase: epoch.PhaseEpochLoad, Check: "compaction"})
		if stored {
			v.KeepStored = true
		}
		return v, nil
	}
	if !stored || !d.Accepted {
		return reject(fmt.Sprintf("epoch %d is compacted but the decision log holds no ACCEPT for it", s.Number))
	}
	if d.ManifestSHA != s.ManifestSHA {
		return reject(fmt.Sprintf("epoch %d is compacted but its stored decision pins manifest %s, on disk is %s",
			s.Number, shortSHA(d.ManifestSHA), shortSHA(s.ManifestSHA)))
	}
	snap, err := epoch.LoadCheckpoint(c.dir, s.Number)
	if err != nil {
		return reject(fmt.Sprintf("epoch %d is compacted but its checkpoint is unreadable: %v", s.Number, err))
	}
	v := epoch.Verdict{Epoch: s.Number, ManifestSHA: s.ManifestSHA, Accepted: true, Adopted: true}
	if s.Manifest != nil {
		v.Events = s.Manifest.Events
		v.Requests = s.Manifest.Requests
	}
	return v, snap
}

// crossMismatchLocked compares the posted replica verdicts of a
// cross-checked epoch. Any disagreement on outcome, reason, or final
// snapshot digest is a REJECT with forensics naming both workers —
// per the paper's trust model the executor earns no benefit of the
// doubt, and a disagreeing fleet cannot vouch for the epoch.
func (c *Coordinator) crossMismatchLocked(st *epochState) (string, *verifier.Forensics) {
	base := st.posted[0]
	for _, other := range st.posted[1:] {
		if agreeing(base, other) {
			continue
		}
		reason := fmt.Sprintf("cross-check disagreement on epoch %d: worker %s and worker %s returned different verdicts",
			st.s.Number, base.post.Worker, other.post.Worker)
		return reason, &verifier.Forensics{
			Phase: epoch.PhaseEpochLoad,
			Check: "cross-check",
			Detail: fmt.Sprintf("worker %s: %s; worker %s: %s",
				base.post.Worker, describePost(base.post), other.post.Worker, describePost(other.post)),
		}
	}
	return "", nil
}

func agreeing(a, b *postedVerdict) bool {
	if a.post.Accepted != b.post.Accepted {
		return false
	}
	if a.post.Accepted {
		return a.post.SnapshotDigest == b.post.SnapshotDigest
	}
	if a.post.Reason != b.post.Reason {
		return false
	}
	af, _ := json.Marshal(a.post.Forensics)
	bf, _ := json.Marshal(b.post.Forensics)
	return string(af) == string(bf)
}

func describePost(p VerdictPost) string {
	if p.Accepted {
		return fmt.Sprintf("ACCEPT (snapshot %.12s)", p.SnapshotDigest)
	}
	return fmt.Sprintf("REJECT (%s)", p.Reason)
}

// publishLocked extends the chain digest with the verdict, appends it
// to the ledger and the durable decision log, threads the snapshot
// hand-off forward, and on REJECT breaks the chain (dropping every
// outstanding lease — workers learn on their next poll).
func (c *Coordinator) publishLocked(st *epochState, v epoch.Verdict, snap *object.Snapshot) {
	v.ChainSHA = c.extendChainLocked(v.ManifestSHA, v.Accepted)
	st.decided = true
	for id := range st.active {
		delete(c.leases, id)
		delete(st.active, id)
	}
	st.posted = nil
	c.verdicts = append(c.verdicts, v)
	if !v.Adopted && !v.KeepStored {
		if err := c.log.Append(epoch.DecisionFromVerdict(v)); err != nil {
			// The ledger is the product; a log that cannot take verdicts
			// aborts the audit as an internal fault, not a REJECT.
			c.err = err
			c.finishLocked()
			return
		}
	}
	if !v.Accepted {
		c.broken = true
		for id, l := range c.leases {
			delete(c.leases, id)
			if s := c.states[l.epoch]; s != nil {
				delete(s.active, id)
			}
		}
		c.finishLocked()
		return
	}
	n := st.s.Number
	if snap != nil {
		data, err := snap.Encode()
		if err != nil {
			c.err = err
			c.finishLocked()
			return
		}
		c.inits[n+1] = data
		delete(c.inits, n)
		if !v.Adopted {
			// Checkpoints make the chain resumable (and compactable) by
			// either auditor; a failed write is a warning, not a verdict —
			// the decision is already durable.
			if err := epoch.WriteCheckpoint(c.dir, n, snap); err != nil {
				c.warnings = append(c.warnings,
					fmt.Sprintf("epoch %d: checkpoint write failed: %v", n, err))
			}
		}
	}
	c.prevSHA = v.ManifestSHA
	c.next = n + 1
}

// extendChainLocked advances the running ledger digest — the same
// H(prev || manifestSHA || verdict byte) as Auditor.extendChain.
func (c *Coordinator) extendChainLocked(manifestSHA string, accepted bool) string {
	h := sha256.New()
	h.Write([]byte(c.chainSHA))
	h.Write([]byte(manifestSHA))
	if accepted {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	c.chainSHA = hex.EncodeToString(h.Sum(nil))
	return c.chainSHA
}

func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	close(c.done)
}

// Wait blocks until the audit finishes (every sealed epoch decided, the
// chain broken, or an internal fault) or ctx is cancelled. It returns
// the internal fault, if any; a REJECT is a verdict, not an error.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Verdicts returns a copy of the ledger so far, in chain order.
func (c *Coordinator) Verdicts() []epoch.Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]epoch.Verdict(nil), c.verdicts...)
}

// ChainAccepted reports whether every decided epoch accepted.
func (c *Coordinator) ChainAccepted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.broken
}

// ChainSHA returns the running ledger digest.
func (c *Coordinator) ChainSHA() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chainSHA
}

// Incomplete returns the first unsealed epoch number when the chain has
// a seal gap (later epochs exist but could not be audited), 0 otherwise.
func (c *Coordinator) Incomplete() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incomplete
}

// Warnings returns non-fatal problems (failed checkpoint writes).
func (c *Coordinator) Warnings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.warnings...)
}

// Stats snapshots the fleet counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	decided := 0
	for _, st := range c.states {
		if st.decided {
			decided++
		}
	}
	return CoordinatorStats{
		WorkersSeen:          len(c.workers),
		LeasesActive:         len(c.leases),
		LeasesReassigned:     c.leasesReassigned,
		EpochsDecided:        decided,
		EpochsCrossChecked:   c.epochsCrossChecked,
		CrossCheckMismatches: c.crossCheckMismatches,
		BadSignaturePosts:    c.badSignaturePosts,
		StaleVerdicts:        c.staleVerdicts,
		FetchedBytes:         c.fetchedBytes,
		CacheHitBytes:        c.cacheHitBytes,
		Done:                 c.finished,
		Broken:               c.broken,
	}
}

// Close releases the decision log.
func (c *Coordinator) Close() error { return c.log.Close() }

func newLeaseID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// shortSHA matches the epoch package's short(): digests truncate to 12
// hex chars in human-facing messages, which the replicated reject
// reasons must reproduce byte-for-byte.
func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
