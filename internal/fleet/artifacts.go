package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"orochi/internal/cas"
	"orochi/internal/epoch"
)

// ArtifactServer serves a chain directory's audit evidence over HTTP:
// the chain listing, raw epoch manifests, and content-addressed chunks
// straight out of the chain's cas.Store. Everything it serves is
// self-verifying on the client (manifests are pinned by digest in the
// lease, chunks hash to their name), so the server is untrusted
// transport — exactly the paper's posture toward everything below the
// verifier.
//
// Error relay discipline: a missing chunk answers 404 and a failed
// local read answers 502 with the store's error text as the body,
// verbatim. cas.HTTPStore rebuilds local error shapes from those, which
// is what keeps remote REJECT reasons bit-identical to local ones.
type ArtifactServer struct {
	dir   string
	store cas.Store

	chunksServed atomic.Int64
	bytesServed  atomic.Int64
}

// ArtifactStats is a point-in-time snapshot of the serving counters.
type ArtifactStats struct {
	ChunksServed int64
	BytesServed  int64
}

// NewArtifactServer opens the chain directory's chunk store and returns
// a server over it.
func NewArtifactServer(dir string) (*ArtifactServer, error) {
	store, err := epoch.OpenChainStore(dir)
	if err != nil {
		return nil, err
	}
	return &ArtifactServer{dir: dir, store: store}, nil
}

// Store exposes the underlying chunk store (the coordinator shares it
// when both run in one process).
func (a *ArtifactServer) Store() cas.Store { return a.store }

// Stats snapshots the serving counters for /-/metrics.
func (a *ArtifactServer) Stats() ArtifactStats {
	return ArtifactStats{
		ChunksServed: a.chunksServed.Load(),
		BytesServed:  a.bytesServed.Load(),
	}
}

// Handler returns the /-/fleet/ artifact surface. Mount it on a mux at
// Prefix+"/" (more specific fleet patterns, like a co-mounted
// coordinator's, may be registered beside it).
func (a *ArtifactServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+Prefix+"/chain", a.chain)
	mux.HandleFunc("GET "+Prefix+"/epoch/{n}/manifest", a.manifest)
	mux.HandleFunc("GET "+Prefix+"/chunk/{sha}", a.chunk)
	mux.HandleFunc("HEAD "+Prefix+"/chunk/{sha}", a.chunkHead)
	return mux
}

func (a *ArtifactServer) chain(w http.ResponseWriter, r *http.Request) {
	sealed, err := epoch.ListSealed(a.dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	info := ChainInfo{Epochs: []ChainEpoch{}}
	for _, s := range sealed {
		info.Epochs = append(info.Epochs, ChainEpoch{
			Epoch:       s.Number,
			ManifestSHA: s.ManifestSHA,
			Compacted:   s.Compacted,
			Damaged:     s.Err != nil,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

func (a *ArtifactServer) manifest(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseInt(r.PathValue("n"), 10, 64)
	if err != nil || n <= 0 {
		http.Error(w, "bad epoch number", http.StatusBadRequest)
		return
	}
	// Raw manifest bytes, not a re-marshal: the client verifies them
	// against the lease's pinned digest, which is a digest of the file.
	data, err := os.ReadFile(filepath.Join(a.dir, epoch.EpochDirName(n), epoch.ManifestName))
	if os.IsNotExist(err) {
		http.Error(w, "epoch not sealed", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (a *ArtifactServer) chunk(w http.ResponseWriter, r *http.Request) {
	sha := r.PathValue("sha")
	data, err := a.store.Get(sha)
	switch {
	case err == nil:
		a.chunksServed.Add(1)
		a.bytesServed.Add(int64(len(data)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	case errors.Is(err, cas.ErrNotFound):
		http.Error(w, "chunk not found", http.StatusNotFound)
	default:
		// The store of record failed to produce verified bytes (corrupt
		// chunk at rest). Relay its error text verbatim: on the worker it
		// becomes the REJECT reason, bit-identical to a local audit's.
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func (a *ArtifactServer) chunkHead(w http.ResponseWriter, r *http.Request) {
	if a.store.Has(r.PathValue("sha")) {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.WriteHeader(http.StatusNotFound)
}
