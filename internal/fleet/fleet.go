// Package fleet distributes the audit of a sealed epoch chain across
// machines. The paper's audit phase (§5) is offline and embarrassingly
// parallel across epochs: each sealed epoch is a self-contained,
// hash-chained artifact, which makes it an ideal unit of remote work.
// Three roles cooperate:
//
//   - The artifact server exposes chain state, epoch manifests, and
//     content-addressed chunks straight out of the chain's cas.Store
//     (mounted under /-/fleet/ on orochi-serve, or standalone via
//     orochi-audit -serve-artifacts). Chunks are self-verifying, so the
//     transport needs no trust; a warm worker fetches only chunks it
//     lacks (the gapid isolate-server model).
//
//   - The coordinator walks the manifest hash chain and hands out
//     lease-based epoch assignments in chain order with snapshot
//     hand-off: epoch N+1's trusted initial state is the verified final
//     snapshot posted for epoch N, exactly the in-process auditor's
//     threading. Timed-out leases are reassigned; a sampled fraction of
//     epochs is optionally cross-checked on k workers before the
//     verdict is believed; verdicts persist into the chain's durable
//     decisions.jsonl, so -explain, the console, and restart
//     rehydration work unchanged.
//
//   - A worker (orochi-audit -worker) pulls a lease, reconstructs the
//     epoch through a tiered store (local cache over cas.HTTPStore),
//     audits it with the standard verifier, and posts back an
//     HMAC-signed verdict plus final snapshot.
//
// The invariant everything here defends: a fleet audit of a chain
// produces bit-identical verdicts, forensics, and chain ledger digest
// to the single-process auditor, at any worker count, lease timeout,
// or cross-check rate. The worker replays auditOne's checks in
// auditOne's order (integrity, manifest chain, trusted init,
// verification) with the same reason strings, and cas.HTTPStore
// reconstructs local store error shapes byte-for-byte.
package fleet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"net/http"

	"orochi/internal/verifier"
)

// Prefix is the URL prefix of every fleet endpoint, under the control
// surface so fleet traffic never enters the audited trace.
const Prefix = "/-/fleet"

// SigHeader carries the hex HMAC-SHA256 of the message body, keyed by
// the shared fleet key. Verdict and lease posts are signed by workers;
// lease and init-snapshot responses are signed by the coordinator.
const SigHeader = "X-Orochi-Fleet-Sig"

// Sign returns the hex HMAC-SHA256 of body under key. An empty key
// returns "" (signing disabled — a development convenience; production
// fleets set -fleet-key).
func Sign(key, body []byte) string {
	if len(key) == 0 {
		return ""
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifySig reports whether sig authenticates body under key. With an
// empty key every message passes (signing disabled); with a key set, a
// missing or wrong signature fails.
func VerifySig(key, body []byte, sig string) bool {
	if len(key) == 0 {
		return true
	}
	want, err := hex.DecodeString(sig)
	if err != nil {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	return hmac.Equal(want, mac.Sum(nil))
}

// signResponse stamps a response body's signature header before the
// body is written.
func signResponse(w http.ResponseWriter, key, body []byte) {
	if sig := Sign(key, body); sig != "" {
		w.Header().Set(SigHeader, sig)
	}
}

// LeaseRequest is a worker asking for work (POST /-/fleet/lease,
// signed).
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is one epoch assignment. A worker holds it until it posts a
// valid verdict or the coordinator's lease timeout expires; any
// authenticated activity on the lease (an init poll) renews it.
type Lease struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch"`
	// ManifestSHA pins the manifest bytes the worker must fetch;
	// PrevManifestSHA is the digest this epoch's manifest must link to
	// (the chain check, performed worker-side in auditOne's order).
	ManifestSHA     string `json:"manifest_sha256"`
	PrevManifestSHA string `json:"prev_manifest_sha256"`
	// InitManifest is true when the trusted initial state comes from the
	// epoch's own manifest (epoch 1); otherwise the worker polls the
	// coordinator's init endpoint for the previous epoch's verified
	// final snapshot.
	InitManifest bool `json:"init_manifest,omitempty"`
	// CrossCheck marks a replica assignment of a sampled epoch.
	CrossCheck bool `json:"cross_check,omitempty"`
	// DeadlineUnix is when the lease expires unless renewed.
	DeadlineUnix int64 `json:"deadline_unix"`
}

// LeaseResponse answers a lease request: an assignment, a retry hint
// (no work available right now), or done (the chain is fully decided —
// the worker exits).
type LeaseResponse struct {
	Done    bool   `json:"done,omitempty"`
	RetryMS int    `json:"retry_ms,omitempty"`
	Lease   *Lease `json:"lease,omitempty"`
}

// VerdictPost is a worker's signed verdict for a leased epoch (POST
// /-/fleet/verdict). The coordinator trusts only what it must: epoch
// identity, chain digest, events/requests counts come from its own
// manifest walk; the post carries the audit outcome and its evidence.
type VerdictPost struct {
	LeaseID     string `json:"lease_id"`
	Worker      string `json:"worker"`
	Epoch       int64  `json:"epoch"`
	ManifestSHA string `json:"manifest_sha256"`
	Accepted    bool   `json:"accepted"`
	Reason      string `json:"reason,omitempty"`
	// Forensics is the structured evidence behind a REJECT, exactly as
	// the in-process auditor would record it.
	Forensics *verifier.Forensics `json:"forensics,omitempty"`
	// Stats is the verifier's cost decomposition for this epoch.
	Stats verifier.Stats `json:"stats"`
	// FinalSnapshot is the verified final state (object.Snapshot.Encode)
	// on ACCEPT — the next epoch's trusted initial state. Empty on
	// REJECT.
	FinalSnapshot []byte `json:"final_snapshot,omitempty"`
	// SnapshotDigest is the canonical digest of FinalSnapshot's decoded
	// content (object.Snapshot.CanonicalDigest) — the cross-check
	// comparison key, stable across encoders.
	SnapshotDigest string `json:"snapshot_digest,omitempty"`
	// FetchedBytes and LogicalBytes account the transport: chunk bytes
	// actually pulled over the wire for this epoch vs the logical bytes
	// its manifest pins. logical - fetched = the worker's cache hits.
	FetchedBytes int64 `json:"fetched_bytes"`
	LogicalBytes int64 `json:"logical_bytes"`
}

// ChainEpoch is one row of the artifact server's chain listing.
type ChainEpoch struct {
	Epoch       int64  `json:"epoch"`
	ManifestSHA string `json:"manifest_sha256"`
	Compacted   bool   `json:"compacted,omitempty"`
	Damaged     bool   `json:"damaged,omitempty"`
}

// ChainInfo is the artifact server's chain state (GET /-/fleet/chain).
type ChainInfo struct {
	Epochs []ChainEpoch `json:"epochs"`
}
