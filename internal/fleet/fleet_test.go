package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"orochi/internal/epoch"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/server"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// sealTestChain seals a multi-epoch chunked chain from the faulted wiki
// workload — error responses included, so the fleet equivalence gate
// covers epochs an honest server answered with HTTP 500s.
func sealTestChain(t *testing.T, dir string) *lang.Program {
	t.Helper()
	w := workload.WithErrors(
		workload.Wiki(workload.WikiParams{Requests: 80, Pages: 5, ZipfS: 0.53, Seed: 9}),
		workload.ErrorMixParams{Rate: 0.2, Seed: 9})
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(w.App.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		t.Fatal(err)
	}
	mgr, err := epoch.StartManager(dir, srv, srv.Snapshot(), epoch.ManagerOptions{
		EpochEvents: 30,
		Storage:     epoch.StorageChunked,
		Log:         epoch.LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(w.Requests); i += 16 {
		end := i + 16
		if end > len(w.Requests) {
			end = len(w.Requests)
		}
		srv.ServeAll(w.Requests[i:end], 4)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return prog
}

// copyChain clones a sealed chain directory so each audit configuration
// runs against pristine state (auditors persist decisions).
func copyChain(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// tamperChunk flips one byte inside a stored chunk of dir's chain store.
func tamperChunk(t *testing.T, dir, sha string) {
	t.Helper()
	path := filepath.Join(dir, epoch.CASDirName, sha[:2], sha)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// uniqueChunk returns a chunk referenced by sealed[idx] but by no
// earlier epoch, so tampering it cannot damage the epochs before it.
func uniqueChunk(t *testing.T, sealed []*epoch.Sealed, idx int) string {
	t.Helper()
	prior := make(map[string]bool)
	for i := 0; i < idx; i++ {
		for _, r := range sealed[i].Manifest.ChunkRefs() {
			prior[r.SHA256] = true
		}
	}
	for _, r := range sealed[idx].Manifest.ChunkRefs() {
		if !prior[r.SHA256] {
			return r.SHA256
		}
	}
	t.Fatalf("epoch %d shares every chunk with earlier epochs", sealed[idx].Number)
	return ""
}

// newFleetServer mounts the artifact server and coordinator exactly as
// the -coordinate CLI does: one mux, coordinator patterns beating the
// artifact subtree.
func newFleetServer(t *testing.T, as *ArtifactServer, coord *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle(Prefix+"/", as.Handler())
	ch := coord.Handler()
	mux.Handle("POST "+Prefix+"/lease", ch)
	mux.Handle("POST "+Prefix+"/verdict", ch)
	mux.Handle("GET "+Prefix+"/epoch/{n}/init", ch)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// startFleet opens the artifact server + coordinator over dir and
// serves them from one in-process listener.
func startFleet(t *testing.T, dir string, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.RetryMS == 0 {
		opts.RetryMS = 10
	}
	as, err := NewArtifactServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, newFleetServer(t, as, coord)
}

// runWorkers drives n concurrent workers against url until the chain is
// fully decided, failing the test on any worker error.
func runWorkers(t *testing.T, prog *lang.Program, url string, n int, key []byte) []WorkerStats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	stats := make([]WorkerStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = RunWorker(ctx, prog, WorkerOptions{
				Coordinator: url,
				Name:        fmt.Sprintf("w%d", i),
				Key:         key,
				InitPoll:    10 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return stats
}

// singleAudit runs the in-process auditor to exhaustion on dir.
func singleAudit(t *testing.T, prog *lang.Program, dir string) []epoch.Verdict {
	t.Helper()
	a := epoch.NewAuditor(prog, dir, epoch.AuditorOptions{})
	for {
		n, err := a.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	return a.Verdicts()
}

// normVerdict is the bit-identical surface of a verdict: everything but
// wall-clock timings and cost counters.
type normVerdict struct {
	Epoch       int64
	Accepted    bool
	Reason      string
	Forensics   string
	Events      int
	Requests    int
	ManifestSHA string
	ChainSHA    string
	Adopted     bool
}

func normalize(t *testing.T, vs []epoch.Verdict) []normVerdict {
	t.Helper()
	out := make([]normVerdict, 0, len(vs))
	for _, v := range vs {
		f, err := json.Marshal(v.Forensics)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, normVerdict{
			Epoch:       v.Epoch,
			Accepted:    v.Accepted,
			Reason:      v.Reason,
			Forensics:   string(f),
			Events:      v.Events,
			Requests:    v.Requests,
			ManifestSHA: v.ManifestSHA,
			ChainSHA:    v.ChainSHA,
			Adopted:     v.Adopted,
		})
	}
	return out
}

func requireSameLedger(t *testing.T, label string, got, want []normVerdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d verdicts, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: epoch %d verdict diverged\ngot:  %+v\nwant: %+v", label, want[i].Epoch, got[i], want[i])
		}
	}
}

// TestFleetMatchesSingleProcess is the gate: a fleet audit of the same
// chain must produce bit-identical verdicts, forensics, and chain
// ledger digest to the single-process auditor, at worker counts 1, 2,
// and 4 — on a clean faulted-workload chain and on one with a tampered
// chunk mid-chain.
func TestFleetMatchesSingleProcess(t *testing.T) {
	master := t.TempDir()
	prog := sealTestChain(t, master)

	sealed, err := epoch.ListSealed(master)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 3 {
		t.Fatalf("sealed %d epochs, want >= 3", len(sealed))
	}

	tampered := copyChain(t, master)
	sha := uniqueChunk(t, sealed, 1)
	tamperChunk(t, tampered, sha)

	for name, src := range map[string]string{"clean": master, "tampered": tampered} {
		want := normalize(t, singleAudit(t, prog, copyChain(t, src)))
		if name == "tampered" {
			last := want[len(want)-1]
			if last.Accepted || !strings.Contains(last.Reason, sha) {
				t.Fatalf("single-process audit did not reject on the tampered chunk: %+v", last)
			}
		}
		for _, workers := range []int{1, 2, 4} {
			label := fmt.Sprintf("%s workers=%d", name, workers)
			dir := copyChain(t, src)
			coord, ts := startFleet(t, dir, CoordinatorOptions{})
			runWorkers(t, prog, ts.URL, workers, nil)
			if err := coord.Wait(context.Background()); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireSameLedger(t, label, normalize(t, coord.Verdicts()), want)
			if got, wantOK := coord.ChainAccepted(), name == "clean"; got != wantOK {
				t.Fatalf("%s: ChainAccepted=%v, want %v", label, got, wantOK)
			}
		}
	}
}

// TestFleetCrossCheckAgreement audits every epoch on k=2 replicas: the
// verdicts must still come out identical to the single-process ledger,
// and the cross-check counters must cover every epoch with zero
// mismatches. Worker count 1 exercises the re-grant path (one worker
// supplies both replicas rather than deadlocking).
func TestFleetCrossCheckAgreement(t *testing.T) {
	master := t.TempDir()
	prog := sealTestChain(t, master)
	want := normalize(t, singleAudit(t, prog, copyChain(t, master)))

	for _, workers := range []int{1, 2} {
		label := fmt.Sprintf("workers=%d", workers)
		dir := copyChain(t, master)
		coord, ts := startFleet(t, dir, CoordinatorOptions{CrossCheck: 1, CrossCheckK: 2})
		runWorkers(t, prog, ts.URL, workers, nil)
		if err := coord.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireSameLedger(t, label, normalize(t, coord.Verdicts()), want)
		st := coord.Stats()
		if st.EpochsCrossChecked != int64(len(want)) {
			t.Fatalf("%s: cross-checked %d epochs, want %d", label, st.EpochsCrossChecked, len(want))
		}
		if st.CrossCheckMismatches != 0 {
			t.Fatalf("%s: %d cross-check mismatches on an honest fleet", label, st.CrossCheckMismatches)
		}
	}
}

// postJSON posts v (signed under key when non-empty) and returns the
// response status and body.
func postJSON(t *testing.T, url string, key []byte, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if sig := Sign(key, body); sig != "" {
		req.Header.Set(SigHeader, sig)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// leaseFor pulls one lease for the named worker, failing unless one is
// granted.
func leaseFor(t *testing.T, url, worker string, key []byte) *Lease {
	t.Helper()
	status, body := postJSON(t, url+Prefix+"/lease", key, LeaseRequest{Worker: worker})
	if status != http.StatusOK {
		t.Fatalf("lease for %s: status %d: %s", worker, status, body)
	}
	var resp LeaseResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Fatalf("no lease granted to %s: %s", worker, body)
	}
	return resp.Lease
}

// honestVerdict audits sealed[idx] locally (straight off disk) and
// shapes the result as the verdict post an honest worker would send.
func honestVerdict(t *testing.T, prog *lang.Program, dir string, l *Lease, worker string, init *object.Snapshot) VerdictPost {
	t.Helper()
	sealed, err := epoch.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	var target *epoch.Sealed
	for _, s := range sealed {
		if s.Number == l.Epoch {
			target = s
		}
	}
	if target == nil {
		t.Fatalf("epoch %d not sealed in %s", l.Epoch, dir)
	}
	ld, err := epoch.Load(target)
	if err != nil {
		t.Fatal(err)
	}
	if init == nil {
		init = ld.Init
	}
	res, err := verifier.Audit(prog, ld.Trace, ld.Reports, init, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	post := VerdictPost{
		LeaseID:     l.ID,
		Worker:      worker,
		Epoch:       l.Epoch,
		ManifestSHA: l.ManifestSHA,
		Accepted:    res.Accepted,
		Reason:      res.Reason,
		Forensics:   res.Forensics,
		Stats:       res.Stats,
	}
	if res.Accepted {
		snap, err := res.FinalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		post.FinalSnapshot = data
		post.SnapshotDigest = snap.CanonicalDigest()
	}
	return post
}

// TestFleetCrossCheckMismatchRejects replays the malicious-replica
// scenario: one honest worker and one lying worker both audit a
// cross-checked epoch; their final snapshots disagree, so the verdict
// must be REJECT with forensics naming both workers — the fleet cannot
// vouch for the epoch.
func TestFleetCrossCheckMismatchRejects(t *testing.T) {
	dir := t.TempDir()
	prog := sealTestChain(t, dir)
	coord, ts := startFleet(t, dir, CoordinatorOptions{CrossCheck: 1, CrossCheckK: 2})

	evilLease := leaseFor(t, ts.URL, "evil", nil)
	honestLease := leaseFor(t, ts.URL, "honest", nil)
	if evilLease.Epoch != 1 || honestLease.Epoch != 1 {
		t.Fatalf("both replicas should target epoch 1: %d, %d", evilLease.Epoch, honestLease.Epoch)
	}

	// The liar invents a plausible final state: a perfectly well-formed
	// snapshot that is not the one honest re-execution produces.
	fake := object.EmptySnapshot()
	fakeData, err := fake.Encode()
	if err != nil {
		t.Fatal(err)
	}
	evilPost := VerdictPost{
		LeaseID:        evilLease.ID,
		Worker:         "evil",
		Epoch:          1,
		ManifestSHA:    evilLease.ManifestSHA,
		Accepted:       true,
		FinalSnapshot:  fakeData,
		SnapshotDigest: fake.CanonicalDigest(),
	}
	if status, body := postJSON(t, ts.URL+Prefix+"/verdict", nil, evilPost); status != http.StatusOK {
		t.Fatalf("evil post refused early: %d %s", status, body)
	}
	honestPost := honestVerdict(t, prog, dir, honestLease, "honest", nil)
	if !honestPost.Accepted {
		t.Fatalf("honest audit of epoch 1 rejected: %s", honestPost.Reason)
	}
	if status, body := postJSON(t, ts.URL+Prefix+"/verdict", nil, honestPost); status != http.StatusOK {
		t.Fatalf("honest post refused: %d %s", status, body)
	}

	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := coord.Verdicts()
	if len(verdicts) != 1 || verdicts[0].Accepted {
		t.Fatalf("disagreeing replicas must REJECT and break the chain: %+v", verdicts)
	}
	v := verdicts[0]
	if !strings.Contains(v.Reason, "evil") || !strings.Contains(v.Reason, "honest") {
		t.Fatalf("reject reason must name both workers: %q", v.Reason)
	}
	if v.Forensics == nil || v.Forensics.Check != "cross-check" ||
		!strings.Contains(v.Forensics.Detail, "evil") || !strings.Contains(v.Forensics.Detail, "honest") {
		t.Fatalf("forensics must name both workers' verdicts: %+v", v.Forensics)
	}
	st := coord.Stats()
	if st.CrossCheckMismatches != 1 || !st.Broken {
		t.Fatalf("mismatch counters wrong: %+v", st)
	}
	if coord.ChainAccepted() {
		t.Fatal("chain accepted despite a cross-check mismatch")
	}

	// The REJECT is durable: a reopened decision log holds it, so
	// -explain and rehydration see the fleet's verdict.
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := epoch.OpenDecisionLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	d, ok := log.Get(1)
	if !ok || d.Accepted || !strings.Contains(d.Reason, "cross-check disagreement") {
		t.Fatalf("cross-check REJECT not persisted: %+v (ok=%v)", d, ok)
	}
}

// TestFleetLeaseExpiryAndStaleVerdicts drives the reassignment path
// with a fake clock: a lease that times out mid-audit is handed to the
// next worker, the original holder's late verdict is answered 409 and
// ignored, and a verdict for an epoch the worker never held is likewise
// refused — neither becomes a verdict.
func TestFleetLeaseExpiryAndStaleVerdicts(t *testing.T) {
	dir := t.TempDir()
	prog := sealTestChain(t, dir)

	as, err := NewArtifactServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(dir, CoordinatorOptions{To: 1, LeaseTimeout: time.Minute, RetryMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var clockMu sync.Mutex
	now := time.Now()
	coord.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	ts := newFleetServer(t, as, coord)

	slow := leaseFor(t, ts.URL, "slow", nil)

	// The slow worker stalls past the lease timeout; the next request
	// reassigns its epoch.
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	fresh := leaseFor(t, ts.URL, "fresh", nil)
	if fresh.Epoch != slow.Epoch {
		t.Fatalf("expired epoch %d not reassigned (fresh got %d)", slow.Epoch, fresh.Epoch)
	}
	if st := coord.Stats(); st.LeasesReassigned != 1 {
		t.Fatalf("LeasesReassigned = %d, want 1", st.LeasesReassigned)
	}

	// The slow worker finally finishes — its verdict rides a dead lease
	// and must be ignored, not recorded.
	latePost := honestVerdict(t, prog, dir, slow, "slow", nil)
	if status, _ := postJSON(t, ts.URL+Prefix+"/verdict", nil, latePost); status != http.StatusConflict {
		t.Fatalf("stale-lease verdict answered %d, want 409", status)
	}
	// A verdict for an epoch the worker holds no lease on: same refusal.
	forged := latePost
	forged.LeaseID = "0123456789abcdef0123456789abcdef"
	forged.Worker = "forger"
	if status, _ := postJSON(t, ts.URL+Prefix+"/verdict", nil, forged); status != http.StatusConflict {
		t.Fatalf("unheld-epoch verdict accepted")
	}
	if st := coord.Stats(); st.StaleVerdicts != 2 || st.EpochsDecided != 0 {
		t.Fatalf("stale verdicts must never decide an epoch: %+v", st)
	}

	// The live lease still decides the epoch.
	goodPost := honestVerdict(t, prog, dir, fresh, "fresh", nil)
	if status, body := postJSON(t, ts.URL+Prefix+"/verdict", nil, goodPost); status != http.StatusOK {
		t.Fatalf("live verdict refused: %d %s", status, body)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	verdicts := coord.Verdicts()
	if len(verdicts) != 1 || !verdicts[0].Accepted {
		t.Fatalf("epoch 1 should hold one ACCEPT: %+v", verdicts)
	}
}

// TestFleetRestartResumesFromDecisions bounds a first fleet run to two
// epochs, restarts the coordinator, and lets the second run pick up the
// hand-off from the stored decisions and checkpoint. The combined
// ledger must end on the same chain digest as one uninterrupted
// single-process audit.
func TestFleetRestartResumesFromDecisions(t *testing.T) {
	master := t.TempDir()
	prog := sealTestChain(t, master)
	want := normalize(t, singleAudit(t, prog, copyChain(t, master)))
	if len(want) < 3 {
		t.Fatalf("chain too short to exercise resume: %d epochs", len(want))
	}

	dir := copyChain(t, master)
	coord1, ts1 := startFleet(t, dir, CoordinatorOptions{To: 2})
	runWorkers(t, prog, ts1.URL, 1, nil)
	if err := coord1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(coord1.Verdicts()); got != 2 {
		t.Fatalf("bounded run decided %d epochs, want 2", got)
	}
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	coord2, ts2 := startFleet(t, dir, CoordinatorOptions{})
	// The decided prefix is rehydrated before any worker connects.
	if got := len(coord2.Verdicts()); got != 2 {
		t.Fatalf("restart rehydrated %d verdicts, want 2", got)
	}
	runWorkers(t, prog, ts2.URL, 2, nil)
	if err := coord2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	requireSameLedger(t, "resumed", normalize(t, coord2.Verdicts()), want)
	if !coord2.ChainAccepted() {
		t.Fatal("resumed chain rejected")
	}
}

// TestFleetRefusesBadSignatures locks the fleet behind a shared key:
// unsigned and mis-keyed posts are refused with 403 and surface only as
// a metric; a worker with the wrong key dies fatally; the properly
// keyed fleet then audits the chain to ACCEPT.
func TestFleetRefusesBadSignatures(t *testing.T) {
	dir := t.TempDir()
	prog := sealTestChain(t, dir)
	key := []byte("fleet-secret")
	coord, ts := startFleet(t, dir, CoordinatorOptions{Key: key})

	// Unsigned lease request.
	if status, _ := postJSON(t, ts.URL+Prefix+"/lease", nil, LeaseRequest{Worker: "anon"}); status != http.StatusForbidden {
		t.Fatalf("unsigned lease request answered %d, want 403", status)
	}
	// Mis-keyed verdict post: refused before any lease validation runs.
	post := VerdictPost{LeaseID: "deadbeef", Worker: "mallory", Epoch: 1, Accepted: true}
	if status, _ := postJSON(t, ts.URL+Prefix+"/verdict", []byte("wrong-key"), post); status != http.StatusForbidden {
		t.Fatalf("mis-signed verdict answered %d, want 403", status)
	}
	if st := coord.Stats(); st.BadSignaturePosts != 2 || st.EpochsDecided != 0 {
		t.Fatalf("bad posts must count and never decide: %+v", st)
	}

	// A whole worker on the wrong key fails fast instead of spinning.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := RunWorker(ctx, prog, WorkerOptions{Coordinator: ts.URL, Key: []byte("wrong-key")}); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Fatalf("wrong-keyed worker should die on the coordinator's refusal, got %v", err)
	}

	runWorkers(t, prog, ts.URL, 2, key)
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !coord.ChainAccepted() {
		t.Fatalf("keyed fleet audit rejected: %+v", coord.Verdicts())
	}
	for _, v := range coord.Verdicts() {
		if !v.Accepted {
			t.Fatalf("epoch %d rejected: %s", v.Epoch, v.Reason)
		}
	}
}

// TestFleetWarmWorkerFetchesLess pins the dedup story on the wire: a
// worker re-visiting an epoch whose chunks its cache already holds
// (here, the second replica of every 100%-cross-checked epoch) fetches
// nothing, while its cold first visit paid the full logical size.
func TestFleetWarmWorkerFetchesLess(t *testing.T) {
	dir := t.TempDir()
	prog := sealTestChain(t, dir)
	coord, ts := startFleet(t, dir, CoordinatorOptions{CrossCheck: 1, CrossCheckK: 2})

	var mu sync.Mutex
	visits := make(map[int64][]EpochReport)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := RunWorker(ctx, prog, WorkerOptions{
		Coordinator: ts.URL,
		Name:        "warm",
		InitPoll:    10 * time.Millisecond,
		OnEpoch: func(r EpochReport) {
			mu.Lock()
			visits[r.Epoch] = append(visits[r.Epoch], r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !coord.ChainAccepted() {
		t.Fatalf("chain rejected: %+v", coord.Verdicts())
	}
	if len(visits) < 2 {
		t.Fatalf("worker visited %d epochs, want >= 2", len(visits))
	}
	for n, rs := range visits {
		if len(rs) != 2 {
			t.Fatalf("epoch %d audited %d times, want 2 (sole worker, k=2)", n, len(rs))
		}
		cold, second := rs[0], rs[1]
		if cold.FetchedBytes == 0 || cold.LogicalBytes == 0 {
			t.Fatalf("epoch %d: cold visit should fetch bytes: %+v", n, cold)
		}
		if second.FetchedBytes >= cold.FetchedBytes {
			t.Fatalf("epoch %d: warm visit fetched %d bytes, cold fetched %d — cache contributed nothing",
				n, second.FetchedBytes, cold.FetchedBytes)
		}
	}
	st := coord.Stats()
	if st.CacheHitBytes == 0 {
		t.Fatalf("coordinator saw no cache hits: %+v", st)
	}
	if st.FetchedBytes == 0 {
		t.Fatalf("coordinator saw no fetched bytes: %+v", st)
	}
}
