package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"orochi/internal/cas"
	"orochi/internal/epoch"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/verifier"
)

// WorkerOptions configures a fleet audit worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (scheme://host:port).
	Coordinator string
	// Artifacts is the artifact server's base URL; empty means the
	// coordinator serves artifacts too (the common co-mounted setup).
	Artifacts string
	// Name identifies this worker in leases, forensics, and metrics
	// (default "host:pid").
	Name string
	// Key is the shared fleet HMAC key; must match the coordinator's.
	Key []byte
	// Hot is the local chunk cache composed over the remote store
	// (default an in-memory store; the CLI offers an on-disk one). A
	// warm cache is the whole point: only missing chunks cross the
	// wire.
	Hot cas.Store
	// Client is the HTTP client for coordinator and artifact traffic
	// (default: 60s timeout).
	Client *http.Client
	// Verify configures the verifier, exactly as a local audit would
	// (engine, audit workers, dedup).
	Verify verifier.Options
	// InitPoll is how often to poll for a not-yet-ready trusted initial
	// state (default 150ms).
	InitPoll time.Duration
	// FetchRetries bounds retry attempts on transient artifact-fetch
	// failures before the lease is abandoned (default 3).
	FetchRetries int
	// OnEpoch, when non-nil, observes each completed assignment (the
	// CLI prints per-epoch progress from it).
	OnEpoch func(EpochReport)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Artifacts == "" {
		o.Artifacts = o.Coordinator
	}
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if o.Hot == nil {
		o.Hot = cas.NewMemory()
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if o.InitPoll <= 0 {
		o.InitPoll = 150 * time.Millisecond
	}
	if o.FetchRetries <= 0 {
		o.FetchRetries = 3
	}
	return o
}

// EpochReport is one completed assignment, as observed by OnEpoch.
type EpochReport struct {
	Epoch    int64
	Accepted bool
	Reason   string
	// FetchedBytes is what actually crossed the wire for this epoch;
	// LogicalBytes is what its manifest pins. The difference is the
	// local cache's contribution.
	FetchedBytes int64
	LogicalBytes int64
	CrossCheck   bool
}

// WorkerStats summarizes a worker run.
type WorkerStats struct {
	Name         string
	Epochs       int
	Accepted     int
	Rejected     int
	Abandoned    int // leases dropped without a verdict (transport faults, expiry)
	FetchedBytes int64
	LogicalBytes int64
}

// coldTracker wraps the remote chunk store and records whether any Get
// failed for transport reasons (cas.ErrUnavailable). LoadFrom folds
// chunk errors into IntegrityError strings, so the typed sentinel must
// be caught here, during the fetch — a flaky network is retried, never
// posted as audit evidence against the executor.
type coldTracker struct {
	inner       cas.Store
	unavailable atomic.Bool
}

func (t *coldTracker) reset()               { t.unavailable.Store(false) }
func (t *coldTracker) sawUnavailable() bool { return t.unavailable.Load() }

func (t *coldTracker) Get(sha string) ([]byte, error) {
	data, err := t.inner.Get(sha)
	if err != nil && errors.Is(err, cas.ErrUnavailable) {
		t.unavailable.Store(true)
	}
	return data, err
}

func (t *coldTracker) Put(sha string, data []byte) error { return t.inner.Put(sha, data) }
func (t *coldTracker) Has(sha string) bool               { return t.inner.Has(sha) }
func (t *coldTracker) List() ([]string, error)           { return t.inner.List() }
func (t *coldTracker) Delete(sha string) error           { return t.inner.Delete(sha) }

// errAbandoned marks an assignment dropped without a verdict.
var errAbandoned = errors.New("fleet: lease abandoned")

// maxLeaseFailures bounds consecutive failed lease polls (coordinator
// unreachable) before the worker gives up.
const maxLeaseFailures = 20

type worker struct {
	opts    WorkerOptions
	prog    *lang.Program
	remote  *cas.HTTPStore
	tracker *coldTracker
	tiered  *cas.Tiered
	stats   WorkerStats
}

// RunWorker pulls leases from the coordinator and audits them until the
// chain is fully decided (the coordinator answers done), the context is
// cancelled, or a fatal configuration error (wrong fleet key) occurs.
// The verifier runs exactly as in a local audit — same engine, same
// options — so verdicts are bit-identical to the single-process
// auditor's.
func RunWorker(ctx context.Context, prog *lang.Program, opts WorkerOptions) (WorkerStats, error) {
	opts = opts.withDefaults()
	if opts.Coordinator == "" {
		return WorkerStats{}, errors.New("fleet: worker needs a coordinator URL")
	}
	remote := cas.NewHTTPStore(opts.Artifacts+Prefix, opts.Client)
	tracker := &coldTracker{inner: remote}
	w := &worker{
		opts:    opts,
		prog:    prog,
		remote:  remote,
		tracker: tracker,
		tiered:  &cas.Tiered{Hot: opts.Hot, Cold: tracker},
		stats:   WorkerStats{Name: opts.Name},
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		resp, err := w.lease()
		if err != nil {
			if isFatal(err) {
				return w.stats, err
			}
			failures++
			if failures >= maxLeaseFailures {
				return w.stats, fmt.Errorf("fleet: coordinator unreachable: %w", err)
			}
			if !sleepCtx(ctx, 500*time.Millisecond) {
				return w.stats, ctx.Err()
			}
			continue
		}
		failures = 0
		switch {
		case resp.Done:
			return w.stats, nil
		case resp.Lease == nil:
			wait := time.Duration(resp.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = 300 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return w.stats, ctx.Err()
			}
		default:
			if err := w.audit(ctx, resp.Lease); err != nil {
				if errors.Is(err, errAbandoned) {
					w.stats.Abandoned++
					continue
				}
				return w.stats, err
			}
		}
	}
}

// fatalError wraps errors that must stop the worker (key mismatch,
// verifier faults) rather than abandon one lease.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

func isFatal(err error) bool {
	var fe *fatalError
	return errors.As(err, &fe)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// lease asks the coordinator for work.
func (w *worker) lease() (*LeaseResponse, error) {
	body, err := w.signedPost(w.opts.Coordinator+Prefix+"/lease", LeaseRequest{Worker: w.opts.Name})
	if err != nil {
		return nil, err
	}
	var resp LeaseResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("fleet: bad lease response: %w", err)
	}
	return &resp, nil
}

// signedPost posts v as signed JSON and returns the (signature-
// verified) response body. Non-2xx statuses are errors; 403 is fatal
// (the fleet key does not match).
func (w *worker) signedPost(url string, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sig := Sign(w.opts.Key, body); sig != "" {
		req.Header.Set(SigHeader, sig)
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusForbidden:
		return nil, &fatalError{fmt.Errorf("fleet: coordinator refused the post: %s", firstLine(data))}
	case resp.StatusCode == http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", errStaleLease, firstLine(data))
	case resp.StatusCode < 200 || resp.StatusCode > 299:
		return nil, fmt.Errorf("fleet: %s: unexpected status %s: %s", url, resp.Status, firstLine(data))
	}
	if !VerifySig(w.opts.Key, data, resp.Header.Get(SigHeader)) {
		return nil, &fatalError{errors.New("fleet: coordinator response not signed with the fleet key")}
	}
	return data, nil
}

var errStaleLease = errors.New("fleet: stale lease")

func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	return string(data)
}

// audit runs one leased epoch start to finish: fetch the manifest,
// reconstruct the artifacts through the tiered store, replay auditOne's
// checks in auditOne's order, verify, and post the signed verdict.
func (w *worker) audit(ctx context.Context, l *Lease) error {
	_, bytesStart := w.remote.Fetched()
	m, sha, err := w.fetchManifest(ctx, l)
	if err != nil {
		return err
	}
	logical := int64(0)
	for _, ref := range m.ChunkRefs() {
		logical += ref.Bytes
	}
	sealed := &epoch.Sealed{Number: l.Epoch, Manifest: m, ManifestSHA: sha}

	post := VerdictPost{LeaseID: l.ID, Worker: w.opts.Name, Epoch: l.Epoch, ManifestSHA: sha}
	reject := func(reason string, f *verifier.Forensics) error {
		post.Accepted = false
		post.Reason = reason
		if f != nil && f.Detail == "" {
			f.Detail = reason
		}
		post.Forensics = f
		return w.post(ctx, l, &post, logical, bytesStart)
	}

	// Check 1: integrity — reconstruct and verify every artifact
	// against the manifest, retrying transport faults (which are never
	// audit evidence; see coldTracker).
	var loaded *epoch.Loaded
	for attempt := 0; ; attempt++ {
		w.tracker.reset()
		loaded, err = epoch.LoadFrom(sealed, w.tiered)
		if err == nil || !w.tracker.sawUnavailable() {
			break
		}
		if attempt+1 >= w.opts.FetchRetries {
			return fmt.Errorf("%w: epoch %d artifacts unavailable after %d attempts: %v",
				errAbandoned, l.Epoch, attempt+1, err)
		}
		if !sleepCtx(ctx, 250*time.Millisecond) {
			return ctx.Err()
		}
	}
	if err != nil {
		var ie *epoch.IntegrityError
		if errors.As(err, &ie) {
			return reject(err.Error(), &verifier.Forensics{Phase: epoch.PhaseEpochLoad, Check: "integrity"})
		}
		return &fatalError{err}
	}

	// Check 2: the manifest must link to the chain the coordinator is
	// walking.
	if m.PrevManifestSHA256 != l.PrevManifestSHA {
		return reject(fmt.Sprintf("manifest chain mismatch: epoch %d links to %s, previous manifest is %s",
			l.Epoch, shortSHA(m.PrevManifestSHA256), shortSHA(l.PrevManifestSHA)),
			&verifier.Forensics{Phase: epoch.PhaseEpochLoad, Check: "manifest-chain"})
	}

	// Check 3: trusted initial state — the manifest's own snapshot for
	// the first epoch, the previous epoch's verified final snapshot
	// (fetched from the coordinator) otherwise.
	var init *object.Snapshot
	if l.InitManifest {
		if loaded.Init == nil {
			return reject(fmt.Sprintf("epoch %d has no trusted initial state (no chained snapshot, no init in manifest)", l.Epoch),
				&verifier.Forensics{Phase: epoch.PhaseEpochLoad, Check: "missing-init"})
		}
		init = loaded.Init
	} else {
		init, err = w.fetchInit(ctx, l)
		if err != nil {
			return err
		}
	}

	// Check 4: verification proper, exactly as a local audit.
	res, err := verifier.AuditContext(ctx, w.prog, loaded.Trace, loaded.Reports, init, w.opts.Verify)
	if err != nil {
		if errors.Is(err, verifier.ErrAuditCanceled) {
			return err
		}
		return &fatalError{err}
	}
	post.Stats = res.Stats
	if !res.Accepted {
		return reject(res.Reason, res.Forensics)
	}
	snap, err := res.FinalSnapshot()
	if err != nil {
		return &fatalError{err}
	}
	data, err := snap.Encode()
	if err != nil {
		return &fatalError{err}
	}
	post.Accepted = true
	post.FinalSnapshot = data
	post.SnapshotDigest = snap.CanonicalDigest()
	return w.post(ctx, l, &post, logical, bytesStart)
}

// fetchManifest pulls the leased epoch's raw manifest bytes and pins
// them against the lease's digest — the worker audits exactly the
// manifest the coordinator walked, or nothing.
func (w *worker) fetchManifest(ctx context.Context, l *Lease) (*epoch.Manifest, string, error) {
	url := fmt.Sprintf("%s%s/epoch/%d/manifest", w.opts.Artifacts, Prefix, l.Epoch)
	var lastErr error
	for attempt := 0; attempt < w.opts.FetchRetries; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, 250*time.Millisecond) {
			return nil, "", ctx.Err()
		}
		resp, err := w.opts.Client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("fleet: fetch manifest: status %s: %v", resp.Status, err)
			continue
		}
		if got := cas.SumHex(data); got != l.ManifestSHA {
			lastErr = fmt.Errorf("fleet: manifest bytes hash to %s, lease pins %s", shortSHA(got), shortSHA(l.ManifestSHA))
			continue
		}
		var m epoch.Manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Epoch != l.Epoch {
			// The coordinator never leases a damaged manifest, so this is
			// transport corruption or a confused server — abandon.
			lastErr = fmt.Errorf("fleet: undecodable manifest for epoch %d: %v", l.Epoch, err)
			break
		}
		return &m, l.ManifestSHA, nil
	}
	return nil, "", fmt.Errorf("%w: %v", errAbandoned, lastErr)
}

// fetchInit polls the coordinator for the previous epoch's verified
// final snapshot. 202 means not ready (the previous epoch is still
// under audit — each poll renews the lease); 410 means the lease died
// or the chain broke before this epoch, so the assignment is abandoned.
func (w *worker) fetchInit(ctx context.Context, l *Lease) (*object.Snapshot, error) {
	url := fmt.Sprintf("%s%s/epoch/%d/init?lease=%s", w.opts.Coordinator, Prefix, l.Epoch, l.ID)
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := w.opts.Client.Get(url)
		if err != nil {
			failures++
			if failures >= w.opts.FetchRetries {
				return nil, fmt.Errorf("%w: init fetch: %v", errAbandoned, err)
			}
			if !sleepCtx(ctx, w.opts.InitPoll) {
				return nil, ctx.Err()
			}
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxPostBytes))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if rerr != nil {
				failures++
				if failures >= w.opts.FetchRetries {
					return nil, fmt.Errorf("%w: init fetch: %v", errAbandoned, rerr)
				}
				continue
			}
			if !VerifySig(w.opts.Key, data, resp.Header.Get(SigHeader)) {
				return nil, &fatalError{errors.New("fleet: init snapshot not signed with the fleet key")}
			}
			snap, err := object.DecodeSnapshot(data)
			if err != nil {
				return nil, &fatalError{fmt.Errorf("fleet: undecodable init snapshot for epoch %d: %w", l.Epoch, err)}
			}
			return snap, nil
		case http.StatusAccepted:
			failures = 0
			if !sleepCtx(ctx, w.opts.InitPoll) {
				return nil, ctx.Err()
			}
		case http.StatusGone:
			return nil, fmt.Errorf("%w: epoch %d lease gone (expired, or the chain broke earlier)", errAbandoned, l.Epoch)
		default:
			failures++
			if failures >= w.opts.FetchRetries {
				return nil, fmt.Errorf("%w: init fetch: status %s", errAbandoned, resp.Status)
			}
			if !sleepCtx(ctx, w.opts.InitPoll) {
				return nil, ctx.Err()
			}
		}
	}
}

// post sends the signed verdict and updates the worker's tallies. A 409
// means the lease expired under us and the epoch was reassigned — the
// verdict is ignored by the coordinator, and counted abandoned here.
func (w *worker) post(ctx context.Context, l *Lease, p *VerdictPost, logical, bytesStart int64) error {
	_, bytesNow := w.remote.Fetched()
	p.FetchedBytes = bytesNow - bytesStart
	p.LogicalBytes = logical
	_, err := w.signedPost(w.opts.Coordinator+Prefix+"/verdict", p)
	if err != nil {
		if errors.Is(err, errStaleLease) {
			return fmt.Errorf("%w: %v", errAbandoned, err)
		}
		if isFatal(err) {
			return err
		}
		// Transport failure posting the verdict: the lease will expire
		// and the epoch be reassigned; drop it here.
		return fmt.Errorf("%w: verdict post: %v", errAbandoned, err)
	}
	w.stats.Epochs++
	if p.Accepted {
		w.stats.Accepted++
	} else {
		w.stats.Rejected++
	}
	w.stats.FetchedBytes += p.FetchedBytes
	w.stats.LogicalBytes += p.LogicalBytes
	if w.opts.OnEpoch != nil {
		w.opts.OnEpoch(EpochReport{
			Epoch:        l.Epoch,
			Accepted:     p.Accepted,
			Reason:       p.Reason,
			FetchedBytes: p.FetchedBytes,
			LogicalBytes: p.LogicalBytes,
			CrossCheck:   l.CrossCheck,
		})
	}
	return nil
}
