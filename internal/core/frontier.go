// Package core implements the SSCO audit machinery of the paper's
// Figures 5 and 6: the streaming time-precedence graph construction
// (CreateTimePrecedenceGraph, §3.5), report validation and OpMap
// construction (CheckLogs), the event graph G with program/state/time
// edges, and cycle detection. These are the consistent-ordering checks
// that precede grouped re-execution.
package core

import (
	"fmt"

	"orochi/internal/trace"
)

// TimeGraph is GTr: one node per request, with edges materializing the
// <Tr relation (r1 <Tr r2 iff a directed path exists from r1 to r2).
type TimeGraph struct {
	// RIDs maps node index -> requestID; Index is the inverse.
	RIDs  []string
	Index map[string]int
	// Edges[i] lists the successors of node i; Parents[i] its direct
	// predecessors (needed by the frontier algorithm).
	Edges   [][]int32
	Parents [][]int32
	// EdgeCount is the total number of edges (Z in the complexity
	// analysis of §A.8).
	EdgeCount int
}

// CreateTimePrecedenceGraph implements Figure 6: the O(X+Z) streaming
// algorithm that materializes the <Tr partial order with the minimum
// number of edges (Lemma 12). It tracks a "frontier" — the set of
// latest, mutually concurrent completed requests. Every new arrival
// descends from all members of the frontier; when a request's response
// departs, it evicts its parents from the frontier and joins it.
//
// The trace must be balanced (callers run tr.Balanced() first).
func CreateTimePrecedenceGraph(tr *trace.Trace) (*TimeGraph, error) {
	g := &TimeGraph{Index: make(map[string]int)}
	// Frontier as a set of node indices.
	frontier := make(map[int32]struct{})
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case trace.Request:
			if _, dup := g.Index[ev.RID]; dup {
				return nil, fmt.Errorf("core: duplicate request %s", ev.RID)
			}
			idx := int32(len(g.RIDs))
			g.Index[ev.RID] = int(idx)
			g.RIDs = append(g.RIDs, ev.RID)
			g.Edges = append(g.Edges, nil)
			g.Parents = append(g.Parents, nil)
			for r := range frontier {
				g.Edges[r] = append(g.Edges[r], idx)
				g.Parents[idx] = append(g.Parents[idx], r)
				g.EdgeCount++
			}
		case trace.Response:
			idx, ok := g.Index[ev.RID]
			if !ok {
				return nil, fmt.Errorf("core: response for unknown request %s", ev.RID)
			}
			// rid enters the frontier, evicting its parents.
			for _, p := range g.Parents[idx] {
				delete(frontier, p)
			}
			frontier[int32(idx)] = struct{}{}
		}
	}
	return g, nil
}

// Precedes reports whether r1 <Tr r2 according to the graph, via a BFS
// over time edges. It exists for differential tests; the audit itself
// never queries paths.
func (g *TimeGraph) Precedes(r1, r2 string) bool {
	s, ok1 := g.Index[r1]
	t, ok2 := g.Index[r2]
	if !ok1 || !ok2 || s == t {
		return false
	}
	seen := make([]bool, len(g.RIDs))
	queue := []int32{int32(s)}
	seen[s] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.Edges[n] {
			if m == int32(t) {
				return true
			}
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return false
}

// CreateTimePrecedenceGraphQuadratic is the reference implementation
// used for differential testing and as the "prior work [14]" baseline in
// the ablation benchmark: it compares every pair of requests and adds an
// edge r1->r2 whenever r1 <Tr r2 and no intermediate request separates
// them (a transitive reduction computed pairwise).
func CreateTimePrecedenceGraphQuadratic(tr *trace.Trace) *TimeGraph {
	g := &TimeGraph{Index: make(map[string]int)}
	type span struct{ req, resp int64 }
	spans := make(map[string]*span)
	var order []string
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Kind == trace.Request {
			spans[ev.RID] = &span{req: ev.Time, resp: -1}
			order = append(order, ev.RID)
		} else if s, ok := spans[ev.RID]; ok {
			s.resp = ev.Time
		}
	}
	for _, rid := range order {
		idx := int32(len(g.RIDs))
		g.Index[rid] = int(idx)
		g.RIDs = append(g.RIDs, rid)
		g.Edges = append(g.Edges, nil)
		g.Parents = append(g.Parents, nil)
	}
	precedes := func(a, b string) bool {
		sa, sb := spans[a], spans[b]
		return sa.resp >= 0 && sa.resp < sb.req
	}
	for _, a := range order {
		for _, b := range order {
			if a == b || !precedes(a, b) {
				continue
			}
			// Transitive reduction: skip if some c separates a and b.
			reduced := false
			for _, c := range order {
				if c != a && c != b && precedes(a, c) && precedes(c, b) {
					reduced = true
					break
				}
			}
			if !reduced {
				ai, bi := int32(g.Index[a]), int32(g.Index[b])
				g.Edges[ai] = append(g.Edges[ai], bi)
				g.Parents[bi] = append(g.Parents[bi], ai)
				g.EdgeCount++
			}
		}
	}
	return g
}
