package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

func req(rid string, t int64) trace.Event {
	return trace.Event{Kind: trace.Request, RID: rid, Time: t}
}
func resp(rid string, t int64) trace.Event {
	return trace.Event{Kind: trace.Response, RID: rid, Time: t}
}

// randomTrace builds a balanced trace with random overlap.
func randomTrace(rng *rand.Rand, n int) *trace.Trace {
	var evs []trace.Event
	var open []string
	var clock int64
	issued := 0
	for issued < n || len(open) > 0 {
		clock++
		if issued < n && (len(open) == 0 || rng.Intn(2) == 0) {
			rid := fmt.Sprintf("r%03d", issued)
			issued++
			evs = append(evs, req(rid, clock))
			open = append(open, rid)
		} else {
			i := rng.Intn(len(open))
			evs = append(evs, resp(open[i], clock))
			open = append(open[:i], open[i+1:]...)
		}
	}
	return &trace.Trace{Events: evs}
}

func TestFrontierSequential(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		req("a", 1), resp("a", 2), req("b", 3), resp("b", 4), req("c", 5), resp("c", 6),
	}}
	g, err := CreateTimePrecedenceGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Precedes("a", "b") || !g.Precedes("b", "c") || !g.Precedes("a", "c") {
		t.Fatal("sequential requests must be totally ordered")
	}
	if g.Precedes("b", "a") || g.Precedes("c", "a") {
		t.Fatal("ordering must not be symmetric")
	}
	// Minimal edges: a->b, b->c only (a->c is implied).
	if g.EdgeCount != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount)
	}
}

func TestFrontierConcurrent(t *testing.T) {
	// a and b fully overlap; c follows both.
	tr := &trace.Trace{Events: []trace.Event{
		req("a", 1), req("b", 2), resp("a", 3), resp("b", 4), req("c", 5), resp("c", 6),
	}}
	g, err := CreateTimePrecedenceGraph(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g.Precedes("a", "b") || g.Precedes("b", "a") {
		t.Fatal("overlapping requests must be unordered")
	}
	if !g.Precedes("a", "c") || !g.Precedes("b", "c") {
		t.Fatal("c must follow both")
	}
	if g.EdgeCount != 2 {
		t.Fatalf("EdgeCount = %d, want 2 (a->c, b->c)", g.EdgeCount)
	}
}

// TestFrontierMatchesTraceOrder is Lemma 2 as a property test:
// r1 <Tr r2  <=>  directed path in GTr.
func TestFrontierMatchesTraceOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4+rng.Intn(12))
		g, err := CreateTimePrecedenceGraph(tr)
		if err != nil {
			return false
		}
		for _, a := range g.RIDs {
			for _, b := range g.RIDs {
				if a == b {
					continue
				}
				if g.Precedes(a, b) != tr.PrecedesTr(a, b) {
					t.Logf("seed %d: mismatch for (%s,%s)", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierMinimalEdges is Lemma 12: the frontier algorithm adds the
// minimum number of edges, which the quadratic transitive-reduction
// baseline computes independently.
func TestFrontierMinimalEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4+rng.Intn(12))
		fast, err := CreateTimePrecedenceGraph(tr)
		if err != nil {
			return false
		}
		slow := CreateTimePrecedenceGraphQuadratic(tr)
		if fast.EdgeCount != slow.EdgeCount {
			t.Logf("seed %d: frontier %d edges, reduction %d", seed, fast.EdgeCount, slow.EdgeCount)
			return false
		}
		// And the two graphs encode the same relation.
		for _, a := range fast.RIDs {
			for _, b := range fast.RIDs {
				if a != b && fast.Precedes(a, b) != slow.Precedes(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierEpochZ(t *testing.T) {
	// P concurrent requests per epoch, E epochs: Z = P^2 * (E-1) edges
	// (each adjacent epoch pair forms a complete bipartite graph).
	const P, E = 4, 5
	var evs []trace.Event
	var clock int64
	for e := 0; e < E; e++ {
		for p := 0; p < P; p++ {
			clock++
			evs = append(evs, req(fmt.Sprintf("e%dp%d", e, p), clock))
		}
		for p := 0; p < P; p++ {
			clock++
			evs = append(evs, resp(fmt.Sprintf("e%dp%d", e, p), clock))
		}
	}
	g, err := CreateTimePrecedenceGraph(&trace.Trace{Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	want := P * P * (E - 1)
	if g.EdgeCount != want {
		t.Fatalf("EdgeCount = %d, want %d", g.EdgeCount, want)
	}
}

// --- ProcessOpReports ---

// regOps builds a single-register report set for a list of (rid, opnum,
// type, value) tuples, plus op counts.
func regReports(counts map[string]int, entries ...reports.OpEntry) *reports.Reports {
	return &reports.Reports{
		Groups:   map[uint64][]string{},
		Scripts:  map[uint64]string{},
		Objects:  []reports.ObjectID{{Kind: reports.RegisterObj, Name: "A"}},
		OpLogs:   [][]reports.OpEntry{entries},
		OpCounts: counts,
		NonDet:   map[string][]reports.NDEntry{},
	}
}

func entry(rid string, opnum int, t lang.OpType) reports.OpEntry {
	return reports.OpEntry{RID: rid, Opnum: opnum, Type: t, Key: "A"}
}

func seqTrace() *trace.Trace {
	return &trace.Trace{Events: []trace.Event{
		req("r1", 1), resp("r1", 2), req("r2", 3), resp("r2", 4),
	}}
}

func concTrace() *trace.Trace {
	return &trace.Trace{Events: []trace.Event{
		req("r1", 1), req("r2", 2), resp("r1", 3), resp("r2", 4),
	}}
}

func TestProcessAcceptsHonestSequential(t *testing.T) {
	r := regReports(map[string]int{"r1": 1, "r2": 1},
		entry("r1", 1, lang.RegisterWrite), entry("r2", 1, lang.RegisterRead))
	res, err := ProcessOpReports(seqTrace(), r)
	if err != nil {
		t.Fatalf("expected accept: %v", err)
	}
	if len(res.OpMap) != 2 {
		t.Fatalf("OpMap size = %d", len(res.OpMap))
	}
	if res.OpMap[OpKey{"r1", 1}] != (LogPos{Obj: 0, Seq: 1}) {
		t.Fatalf("OpMap[r1,1] = %+v", res.OpMap[OpKey{"r1", 1}])
	}
}

func TestProcessRejectsTimeOrderViolation(t *testing.T) {
	// r1 <Tr r2, but the log orders r2's op before r1's: cycle.
	r := regReports(map[string]int{"r1": 1, "r2": 1},
		entry("r2", 1, lang.RegisterWrite), entry("r1", 1, lang.RegisterRead))
	_, err := ProcessOpReports(seqTrace(), r)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Stage != "cycle" {
		t.Fatalf("want cycle reject, got %v", err)
	}
}

func TestProcessAcceptsConcurrentEitherOrder(t *testing.T) {
	// Concurrent requests: both log orders are acceptable.
	for _, order := range [][]reports.OpEntry{
		{entry("r1", 1, lang.RegisterWrite), entry("r2", 1, lang.RegisterRead)},
		{entry("r2", 1, lang.RegisterRead), entry("r1", 1, lang.RegisterWrite)},
	} {
		r := regReports(map[string]int{"r1": 1, "r2": 1}, order...)
		if _, err := ProcessOpReports(concTrace(), r); err != nil {
			t.Fatalf("concurrent order should be accepted: %v", err)
		}
	}
}

func TestProcessRejectsUnknownRID(t *testing.T) {
	r := regReports(map[string]int{"r1": 1, "r2": 1, "ghost": 1},
		entry("ghost", 1, lang.RegisterWrite))
	_, err := ProcessOpReports(seqTrace(), r)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Stage != "check-logs" {
		t.Fatalf("want check-logs reject, got %v", err)
	}
}

func TestProcessRejectsBadOpnum(t *testing.T) {
	cases := []reports.OpEntry{
		entry("r1", 0, lang.RegisterWrite), // opnum <= 0
		entry("r1", -3, lang.RegisterRead), // negative
		entry("r1", 5, lang.RegisterWrite), // exceeds M
	}
	for _, e := range cases {
		r := regReports(map[string]int{"r1": 1, "r2": 0}, e)
		if _, err := ProcessOpReports(seqTrace(), r); err == nil {
			t.Errorf("entry %+v should be rejected", e)
		}
	}
}

func TestProcessRejectsDuplicateOp(t *testing.T) {
	r := regReports(map[string]int{"r1": 1, "r2": 1},
		entry("r1", 1, lang.RegisterWrite), entry("r1", 1, lang.RegisterWrite))
	if _, err := ProcessOpReports(seqTrace(), r); err == nil {
		t.Fatal("duplicate (rid,opnum) must be rejected")
	}
}

func TestProcessRejectsMissingOp(t *testing.T) {
	// M says r1 issued 2 ops but the log has only one.
	r := regReports(map[string]int{"r1": 2, "r2": 0},
		entry("r1", 1, lang.RegisterWrite))
	if _, err := ProcessOpReports(seqTrace(), r); err == nil {
		t.Fatal("missing op must be rejected")
	}
}

func TestProcessRejectsIntraRequestLogDisorder(t *testing.T) {
	// Same request's ops out of order within one log.
	r := regReports(map[string]int{"r1": 2, "r2": 0},
		entry("r1", 2, lang.RegisterWrite), entry("r1", 1, lang.RegisterWrite))
	_, err := ProcessOpReports(seqTrace(), r)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Stage != "state-edges" {
		t.Fatalf("want state-edges reject, got %v", err)
	}
}

func TestProcessRejectsCrossLogCycle(t *testing.T) {
	// Two logs (objects A and B) whose orders contradict each other for
	// concurrent requests — the Figure 4(b) shape: each request writes
	// one object then reads the other, and each log shows the read
	// before the write.
	r := &reports.Reports{
		Groups:  map[uint64][]string{},
		Scripts: map[uint64]string{},
		Objects: []reports.ObjectID{
			{Kind: reports.RegisterObj, Name: "A"},
			{Kind: reports.RegisterObj, Name: "B"},
		},
		OpLogs: [][]reports.OpEntry{
			{ // OL_A: r2 reads A (op 2) before r1 writes A (op 1)
				{RID: "r2", Opnum: 2, Type: lang.RegisterRead, Key: "A"},
				{RID: "r1", Opnum: 1, Type: lang.RegisterWrite, Key: "A"},
			},
			{ // OL_B: r1 reads B (op 2) before r2 writes B (op 1)
				{RID: "r1", Opnum: 2, Type: lang.RegisterRead, Key: "B"},
				{RID: "r2", Opnum: 1, Type: lang.RegisterWrite, Key: "B"},
			},
		},
		OpCounts: map[string]int{"r1": 2, "r2": 2},
		NonDet:   map[string][]reports.NDEntry{},
	}
	_, err := ProcessOpReports(concTrace(), r)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Stage != "cycle" {
		t.Fatalf("want cycle reject, got %v", err)
	}
}

func TestProcessAcceptsCrossLogConsistent(t *testing.T) {
	// Same shape as above but both writes precede both reads — a legal
	// schedule (the Figure 4(c) shape). Must accept.
	r := &reports.Reports{
		Groups:  map[uint64][]string{},
		Scripts: map[uint64]string{},
		Objects: []reports.ObjectID{
			{Kind: reports.RegisterObj, Name: "A"},
			{Kind: reports.RegisterObj, Name: "B"},
		},
		OpLogs: [][]reports.OpEntry{
			{
				{RID: "r1", Opnum: 1, Type: lang.RegisterWrite, Key: "A"},
				{RID: "r2", Opnum: 2, Type: lang.RegisterRead, Key: "A"},
			},
			{
				{RID: "r2", Opnum: 1, Type: lang.RegisterWrite, Key: "B"},
				{RID: "r1", Opnum: 2, Type: lang.RegisterRead, Key: "B"},
			},
		},
		OpCounts: map[string]int{"r1": 2, "r2": 2},
		NonDet:   map[string][]reports.NDEntry{},
	}
	if _, err := ProcessOpReports(concTrace(), r); err != nil {
		t.Fatalf("legal schedule must be accepted: %v", err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	r := regReports(map[string]int{"r1": 1, "r2": 1},
		entry("r1", 1, lang.RegisterWrite), entry("r2", 1, lang.RegisterRead))
	res, err := ProcessOpReports(seqTrace(), r)
	if err != nil {
		t.Fatal(err)
	}
	order := res.Graph.TopoOrder()
	if len(order) != res.Graph.NumNodes() {
		t.Fatalf("topo order incomplete: %d of %d", len(order), res.Graph.NumNodes())
	}
	pos := make(map[OpKey]int, len(order))
	for i, k := range order {
		pos[k] = i
	}
	// r1's response precedes r2's arrival (time edge), and program order
	// holds within each request.
	if pos[OpKey{"r1", OpInf}] > pos[OpKey{"r2", 0}] {
		t.Fatal("time edge violated in topological order")
	}
	if pos[OpKey{"r1", 0}] > pos[OpKey{"r1", 1}] || pos[OpKey{"r1", 1}] > pos[OpKey{"r1", OpInf}] {
		t.Fatal("program order violated in topological order")
	}
}

func TestProcessEmptyTrace(t *testing.T) {
	r := regReports(map[string]int{})
	res, err := ProcessOpReports(&trace.Trace{}, r)
	if err != nil {
		t.Fatalf("empty trace should be fine: %v", err)
	}
	if res.Graph.NumNodes() != 0 {
		t.Fatalf("nodes = %d", res.Graph.NumNodes())
	}
}

func TestProcessZeroOpRequests(t *testing.T) {
	r := regReports(map[string]int{"r1": 0, "r2": 0})
	if _, err := ProcessOpReports(seqTrace(), r); err != nil {
		t.Fatalf("zero-op requests should pass: %v", err)
	}
}

// TestProcessRandomHonestLogs: property — logs generated by simulating a
// legal concurrent schedule always pass ProcessOpReports (a slice of
// Completeness).
func TestProcessRandomHonestLogs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nReq := 3 + rng.Intn(8)
		opsPer := 1 + rng.Intn(4)
		nObjs := 1 + rng.Intn(3)

		// Simulate: requests run concurrently; each issues opsPer ops on
		// random objects. Schedule = random interleaving.
		type reqState struct {
			rid  string
			next int
		}
		var activeSet []*reqState
		var evs []trace.Event
		var clock int64
		objLogs := make([][]reports.OpEntry, nObjs)
		counts := map[string]int{}
		pending := nReq
		started := 0
		for pending > 0 {
			clock++
			switch {
			case started < nReq && (len(activeSet) == 0 || rng.Intn(3) == 0):
				rid := fmt.Sprintf("r%02d", started)
				started++
				evs = append(evs, req(rid, clock))
				activeSet = append(activeSet, &reqState{rid: rid})
				counts[rid] = opsPer
			default:
				i := rng.Intn(len(activeSet))
				st := activeSet[i]
				if st.next < opsPer {
					obj := rng.Intn(nObjs)
					st.next++
					typ := lang.RegisterRead
					if rng.Intn(2) == 0 {
						typ = lang.RegisterWrite
					}
					objLogs[obj] = append(objLogs[obj], reports.OpEntry{
						RID: st.rid, Opnum: st.next, Type: typ, Key: fmt.Sprintf("o%d", obj),
					})
				} else {
					evs = append(evs, resp(st.rid, clock))
					activeSet = append(activeSet[:i], activeSet[i+1:]...)
					pending--
				}
			}
		}
		var objs []reports.ObjectID
		for i := 0; i < nObjs; i++ {
			objs = append(objs, reports.ObjectID{Kind: reports.RegisterObj, Name: fmt.Sprintf("o%d", i)})
		}
		r := &reports.Reports{
			Groups: map[uint64][]string{}, Scripts: map[uint64]string{},
			Objects: objs, OpLogs: objLogs, OpCounts: counts,
			NonDet: map[string][]reports.NDEntry{},
		}
		_, err := ProcessOpReports(&trace.Trace{Events: evs}, r)
		if err != nil {
			t.Logf("seed %d: honest logs rejected: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
