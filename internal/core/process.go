package core

import (
	"fmt"

	"orochi/internal/reports"
	"orochi/internal/trace"
)

// OpInf is the opnum of the "response departure" node (rid, ∞).
const OpInf = -1

// OpKey identifies an event node: (rid, opnum). opnum 0 is the request's
// arrival, 1..M(rid) its state operations, OpInf the response departure.
type OpKey struct {
	RID   string
	Opnum int
}

// LogPos locates an operation inside the reports: OpLogs[Obj][Seq-1].
// Seq is 1-based, matching the paper's log sequence numbers.
type LogPos struct {
	Obj int
	Seq int
}

// OpMap indexes the operation logs by (rid, opnum) (Figure 5; Lemma 1
// establishes it is a bijection with the log entries).
type OpMap map[OpKey]LogPos

// RejectError is a verification failure: the audit must reject.
type RejectError struct {
	Stage string // which check failed
	Msg   string
	// RID names the implicated request when the failing check is
	// attributable to one ("" otherwise); verdict forensics surface it.
	RID string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("audit reject [%s]: %s", e.Stage, e.Msg)
}

func rejectf(stage, format string, args ...interface{}) error {
	return &RejectError{Stage: stage, Msg: fmt.Sprintf(format, args...)}
}

func rejectRID(stage, rid, format string, args ...interface{}) error {
	return &RejectError{Stage: stage, Msg: fmt.Sprintf(format, args...), RID: rid}
}

// EventGraph is G from Figure 5: nodes are events — request arrivals
// (rid,0), alleged operations (rid,1..M), response departures (rid,∞) —
// and edges capture time precedence, program order, and alleged log
// order.
type EventGraph struct {
	nodes map[OpKey]int32
	keys  []OpKey
	edges [][]int32
	// EdgeCount totals the edges (for complexity accounting).
	EdgeCount int
}

func newEventGraph() *EventGraph {
	return &EventGraph{nodes: make(map[OpKey]int32)}
}

func (g *EventGraph) addNode(k OpKey) int32 {
	if idx, ok := g.nodes[k]; ok {
		return idx
	}
	idx := int32(len(g.keys))
	g.nodes[k] = idx
	g.keys = append(g.keys, k)
	g.edges = append(g.edges, nil)
	return idx
}

func (g *EventGraph) addEdge(from, to OpKey) {
	f := g.addNode(from)
	t := g.addNode(to)
	g.edges[f] = append(g.edges[f], t)
	g.EdgeCount++
}

// NumNodes reports the node count (2X + Y in the analysis of §A.8).
func (g *EventGraph) NumNodes() int { return len(g.keys) }

// HasCycle runs an iterative three-color DFS (the standard algorithm the
// paper cites, [32, Ch. 22]).
func (g *EventGraph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(g.keys))
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for start := range g.keys {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: int32(start)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.edges[f.node]) {
				succ := g.edges[f.node][f.next]
				f.next++
				switch color[succ] {
				case gray:
					return true
				case white:
					color[succ] = gray
					stack = append(stack, frame{node: succ})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// TopoOrder returns a topological order of the node keys (valid only if
// HasCycle() is false); used by tests and by the OOO-execution harness.
func (g *EventGraph) TopoOrder() []OpKey {
	indeg := make([]int32, len(g.keys))
	for _, succs := range g.edges {
		for _, s := range succs {
			indeg[s]++
		}
	}
	var queue []int32
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	out := make([]OpKey, 0, len(g.keys))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.keys[n])
		for _, s := range g.edges[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return out
}

// ProcessResult is the outcome of ProcessOpReports.
type ProcessResult struct {
	OpMap OpMap
	Graph *EventGraph
	GTr   *TimeGraph
}

// ProcessOpReports implements Figure 5: it partially validates the
// reports, constructs the OpMap, builds the event graph G (split time
// nodes + program edges + state edges), and checks that G is acyclic —
// ensuring all events can be consistently ordered (§3.5). It returns a
// *RejectError when the audit must reject.
func ProcessOpReports(tr *trace.Trace, r *reports.Reports) (*ProcessResult, error) {
	gtr, err := CreateTimePrecedenceGraph(tr)
	if err != nil {
		return nil, rejectf("time-graph", "%v", err)
	}
	g := newEventGraph()

	// SplitNodes: (rid,0) and (rid,∞) per request; time edges
	// (r1,∞) -> (r2,0).
	for _, rid := range gtr.RIDs {
		g.addNode(OpKey{rid, 0})
		g.addNode(OpKey{rid, OpInf})
	}
	for from, succs := range gtr.Edges {
		for _, to := range succs {
			g.addEdge(OpKey{gtr.RIDs[from], OpInf}, OpKey{gtr.RIDs[to], 0})
		}
	}

	// AddProgramEdges: chain (rid,0) -> (rid,1) -> ... -> (rid,M) -> (rid,∞).
	for _, rid := range gtr.RIDs {
		m := r.OpCounts[rid]
		if m < 0 {
			return nil, rejectRID("op-counts", rid, "negative op count for %s", rid)
		}
		prev := OpKey{rid, 0}
		for opnum := 1; opnum <= m; opnum++ {
			cur := OpKey{rid, opnum}
			g.addEdge(prev, cur)
			prev = cur
		}
		g.addEdge(prev, OpKey{rid, OpInf})
	}

	// CheckLogs: build the OpMap, validating each entry.
	opMap := make(OpMap, r.TotalOps())
	for i, log := range r.OpLogs {
		for j, e := range log {
			if _, known := gtr.Index[e.RID]; !known {
				return nil, rejectRID("check-logs", e.RID, "log %d entry %d names unknown request %s", i, j, e.RID)
			}
			if e.Opnum <= 0 {
				return nil, rejectRID("check-logs", e.RID, "log %d entry %d has opnum %d <= 0", i, j, e.Opnum)
			}
			if e.Opnum > r.OpCounts[e.RID] {
				return nil, rejectRID("check-logs", e.RID, "log %d entry %d: opnum %d exceeds M(%s)=%d",
					i, j, e.Opnum, e.RID, r.OpCounts[e.RID])
			}
			k := OpKey{e.RID, e.Opnum}
			if _, dup := opMap[k]; dup {
				return nil, rejectRID("check-logs", e.RID, "operation (%s,%d) appears twice", e.RID, e.Opnum)
			}
			opMap[k] = LogPos{Obj: i, Seq: j + 1}
		}
	}
	for _, rid := range gtr.RIDs {
		for opnum := 1; opnum <= r.OpCounts[rid]; opnum++ {
			if _, ok := opMap[OpKey{rid, opnum}]; !ok {
				return nil, rejectRID("check-logs", rid, "operation (%s,%d) missing from logs", rid, opnum)
			}
		}
	}

	// AddStateEdges: adjacent log entries from different requests add an
	// edge; same-request entries must have increasing opnums.
	for _, log := range r.OpLogs {
		for j := 1; j < len(log); j++ {
			prev, cur := &log[j-1], &log[j]
			if prev.RID != cur.RID {
				g.addEdge(OpKey{prev.RID, prev.Opnum}, OpKey{cur.RID, cur.Opnum})
				continue
			}
			if prev.Opnum > cur.Opnum {
				return nil, rejectRID("state-edges", cur.RID, "log order violates program order for %s (%d before %d)",
					cur.RID, prev.Opnum, cur.Opnum)
			}
		}
	}

	if g.HasCycle() {
		return nil, rejectf("cycle", "events cannot be consistently ordered (graph has a cycle)")
	}
	return &ProcessResult{OpMap: opMap, Graph: g, GTr: gtr}, nil
}
