package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"orochi/internal/lang"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// The engine-matrix differential harness: the compiled and bytecode
// engines are pure performance substitutions for the interpreter, so
// every observable — response bytes (including canonical HTTP 500
// fault renderings), canonical report bytes, audit verdicts, forensics
// — must be bit-identical across engines at any worker count and any
// SIMD lane width. These tests pin that end to end, on real workloads.

var allEngines = []struct {
	name string
	eng  lang.Engine
}{
	{"interp", lang.EngineInterp},
	{"compiled", lang.EngineCompiled},
	{"bytecode", lang.EngineBytecode},
}

// fastEngines are the non-reference engines checked against the
// interpreter's serving run.
var fastEngines = allEngines[1:]

// serveDeterministic runs w sequentially with a fixed clock and seed so
// two runs differ only in the engine under test.
func serveDeterministic(t *testing.T, w *workload.Workload, eng lang.Engine) *Served {
	t.Helper()
	fixed := time.Unix(1700000000, 0)
	served, err := Serve(w, ServeConfig{
		Record: true, Concurrency: 1, RandSeed: 7, Engine: eng,
		Clock: func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	return served
}

func traceBodies(tr *trace.Trace) []string {
	var out []string
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.Response {
			out = append(out, tr.Events[i].RID+"="+tr.Events[i].Body)
		}
	}
	return out
}

// TestDualEngineByteEquivalence: for a deterministic serving run, the
// interpreter and the compiled engine must produce byte-identical
// response bodies and byte-identical canonical reports (which embed the
// per-group digests, so fault-folded digests are covered too) on the
// wiki and forum workloads, with and without injected faults.
func TestDualEngineByteEquivalence(t *testing.T) {
	cases := []struct {
		name string
		w    *workload.Workload
	}{
		{"wiki", workload.Wiki(workload.DefaultWikiParams().Scale(100))},
		{"forum", workload.Forum(workload.DefaultForumParams().Scale(100))},
		{"wiki-faults", workload.WithErrors(
			workload.Wiki(workload.DefaultWikiParams().Scale(100)),
			workload.ErrorMixParams{Rate: 0.2, Seed: 3})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := serveDeterministic(t, tc.w, lang.EngineInterp)
			refBodies := traceBodies(ref.Trace)
			for _, e := range fastEngines {
				got := serveDeterministic(t, tc.w, e.eng)
				gotBodies := traceBodies(got.Trace)
				if !reflect.DeepEqual(refBodies, gotBodies) {
					for i := range refBodies {
						if i < len(gotBodies) && refBodies[i] != gotBodies[i] {
							t.Fatalf("response %d differs:\ninterp: %s\n%s: %s", i, refBodies[i], e.name, gotBodies[i])
						}
					}
					t.Fatalf("%s: response counts differ: %d vs %d", e.name, len(refBodies), len(gotBodies))
				}
				if !bytes.Equal(ref.Reports.CanonicalBytes(), got.Reports.CanonicalBytes()) {
					t.Fatalf("canonical report bytes differ between interp and %s", e.name)
				}
			}
		})
	}
}

// TestDualEngineFaultClasses serves each workload.WithErrors fault
// class under both engines and checks the canonical HTTP 500 rendering
// byte-for-byte, then audits the faulted run under every engine ×
// MaxGroup combination so the fault path is exercised at SIMD lane
// width 1 (MaxGroup 1 splits every group) and >1 (each fault request
// appears three times, so default grouping folds lanes together).
func TestDualEngineFaultClasses(t *testing.T) {
	base := workload.Wiki(workload.WikiParams{Requests: 30, Pages: 4, ZipfS: 0.53, Seed: 99})
	w := &workload.Workload{
		App:      workload.WithErrorScripts(base.App),
		Seed:     base.Seed,
		Requests: base.Requests,
	}
	faults := []trace.Input{
		{Script: workload.ErrorUnknownScript},
		{Script: workload.ErrorUndefinedFn, Get: map[string]string{"q": "x"}},
		{Script: workload.ErrorBadSQL},
	}
	// Three copies of each fault: identical requests land in one
	// control-flow group, so the default audit replays them multivalued.
	for i := 0; i < 3; i++ {
		w.Requests = append(w.Requests, faults...)
	}

	ref := serveDeterministic(t, w, lang.EngineInterp)
	refBodies := traceBodies(ref.Trace)
	for _, e := range fastEngines {
		got := serveDeterministic(t, w, e.eng)
		if !reflect.DeepEqual(refBodies, traceBodies(got.Trace)) {
			t.Fatalf("fault-class responses differ between interp and %s", e.name)
		}
		if !bytes.Equal(ref.Reports.CanonicalBytes(), got.Reports.CanonicalBytes()) {
			t.Fatalf("canonical report bytes differ between interp and %s on the fault mix", e.name)
		}
	}
	n500 := 0
	for _, b := range refBodies {
		if strings.Contains(b, "HTTP 500") {
			n500++
		}
	}
	if n500 != 3*len(faults) {
		t.Fatalf("expected %d canonical 500s, saw %d", 3*len(faults), n500)
	}

	for _, e := range allEngines {
		for _, maxGroup := range []int{1, 0} {
			res, err := ref.Audit(verifier.Options{Engine: e.eng, MaxGroup: maxGroup})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("engine %s maxgroup %d: rejected: %s", e.name, maxGroup, res.Reason)
			}
		}
	}
}

// TestDualEngineVerdictEquivalence audits one recorded run under every
// engine × worker-count combination: honest runs must ACCEPT
// everywhere, and a tampered run must REJECT with the same reason and
// the same forensics record under every combination.
func TestDualEngineVerdictEquivalence(t *testing.T) {
	w := workload.WithErrors(
		workload.Wiki(workload.DefaultWikiParams().Scale(100)),
		workload.ErrorMixParams{Rate: 0.1, Seed: 5})

	honest := serveDeterministic(t, w, lang.EngineCompiled)
	for _, e := range allEngines {
		for _, workers := range []int{1, 8} {
			res, err := honest.Audit(verifier.Options{Engine: e.eng, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("engine %s workers %d: rejected: %s", e.name, workers, res.Reason)
			}
			if res.Stats.RequestsReplayed != honest.Requests {
				t.Fatalf("engine %s: replayed %d of %d", e.name, res.Stats.RequestsReplayed, honest.Requests)
			}
		}
	}

	fixed := time.Unix(1700000000, 0)
	nth := 0
	tampered, err := Serve(w, ServeConfig{
		Record: true, Concurrency: 1, RandSeed: 7,
		Clock: func() time.Time { return fixed },
		TamperResponse: func(rid, body string) string {
			// Sequential serving: corrupt exactly the fifth response.
			nth++
			if nth == 5 {
				return body + "<!-- tampered -->"
			}
			return body
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantReason string
	var wantForensics *verifier.Forensics
	for i, e := range allEngines {
		for _, workers := range []int{1, 8} {
			res, aerr := tampered.Audit(verifier.Options{Engine: e.eng, Workers: workers})
			if aerr != nil {
				t.Fatal(aerr)
			}
			if res.Accepted {
				t.Fatalf("engine %s workers %d: tampered run accepted", e.name, workers)
			}
			if i == 0 && wantReason == "" {
				wantReason, wantForensics = res.Reason, res.Forensics
				continue
			}
			if res.Reason != wantReason {
				t.Fatalf("engine %s workers %d: reason %q, want %q", e.name, workers, res.Reason, wantReason)
			}
			if !reflect.DeepEqual(res.Forensics, wantForensics) {
				t.Fatalf("engine %s workers %d: forensics %+v, want %+v", e.name, workers, res.Forensics, wantForensics)
			}
		}
	}
}
