package harness

import (
	"bytes"
	"testing"
	"time"

	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// TestShardedReportByteEquivalence pins the acceptance criterion of the
// sharded serving path on a real workload: for a fixed deterministic
// serving run (sequential, fixed clock and seed), Shards=1 and Shards=N
// produce byte-identical canonical reports.
func TestShardedReportByteEquivalence(t *testing.T) {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(100))
	fixed := time.Unix(1700000000, 0)
	run := func(shards int) []byte {
		served, err := Serve(w, ServeConfig{
			Record: true, Concurrency: 1, RandSeed: 7, Shards: shards,
			Clock: func() time.Time { return fixed },
		})
		if err != nil {
			t.Fatal(err)
		}
		return served.Reports.CanonicalBytes()
	}
	base := run(1)
	for _, shards := range []int{4, 32} {
		if got := run(shards); !bytes.Equal(base, got) {
			t.Fatalf("Shards=%d reports differ from Shards=1 (lengths %d vs %d)", shards, len(base), len(got))
		}
	}
}

// TestShardedRecordingsAudit: recordings collected on the sharded
// serving path under real concurrency must audit ACCEPT on the wiki and
// forum workloads, with and without injected faults.
func TestShardedRecordingsAudit(t *testing.T) {
	cases := []struct {
		name   string
		w      *workload.Workload
		faults bool
	}{
		{"wiki", workload.Wiki(workload.DefaultWikiParams().Scale(100)), false},
		{"forum", workload.Forum(workload.DefaultForumParams().Scale(100)), false},
		{"wiki-faults", workload.WithErrors(
			workload.Wiki(workload.DefaultWikiParams().Scale(100)),
			workload.ErrorMixParams{Rate: 0.1, Seed: 3}), true},
		{"forum-faults", workload.WithErrors(
			workload.Forum(workload.DefaultForumParams().Scale(100)),
			workload.ErrorMixParams{Rate: 0.1, Seed: 3}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			served, err := Serve(tc.w, ServeConfig{Record: true, Concurrency: 8, Shards: 16})
			if err != nil {
				t.Fatal(err)
			}
			res, err := served.Audit(verifier.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("sharded recording rejected: %s", res.Reason)
			}
			if res.Stats.RequestsReplayed != served.Requests {
				t.Fatalf("replayed %d of %d requests", res.Stats.RequestsReplayed, served.Requests)
			}
		})
	}
}
