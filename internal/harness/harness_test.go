package harness

import (
	"testing"

	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func smallWiki() *workload.Workload {
	return workload.Wiki(workload.WikiParams{Requests: 60, Pages: 8, ZipfS: 0.53, Seed: 99})
}

func TestServeAndAudit(t *testing.T) {
	served, err := Serve(smallWiki(), ServeConfig{Record: true, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if served.Requests != 60 {
		t.Fatalf("requests = %d", served.Requests)
	}
	if served.ServeCPU <= 0 || served.ServeWall <= 0 {
		t.Fatal("timings must be positive")
	}
	res, err := served.Audit(verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
}

func TestServeWithoutRecording(t *testing.T) {
	served, err := Serve(smallWiki(), ServeConfig{Record: false, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if served.Reports != nil {
		t.Fatal("baseline must not have reports")
	}
	if _, err := served.Audit(verifier.Options{}); err == nil {
		t.Fatal("audit without reports must error")
	}
}

func TestSizes(t *testing.T) {
	served, err := Serve(smallWiki(), ServeConfig{Record: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := served.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	if sizes.TraceBytes <= 0 || sizes.ReportBytes <= 0 {
		t.Fatalf("sizes: %+v", sizes)
	}
	if sizes.ReportBytes >= sizes.TraceBytes {
		t.Fatalf("reports (%d B) should be much smaller than the trace (%d B)",
			sizes.ReportBytes, sizes.TraceBytes)
	}
	if sizes.BaselineReportBytes > sizes.ReportBytes {
		t.Fatal("baseline reports must be a subset of OROCHI's")
	}
	if sizes.DBPlainBytes <= 0 {
		t.Fatal("plain DB size must be positive")
	}
}

func TestBaselineReplayMatchesServeCost(t *testing.T) {
	w := smallWiki()
	served, err := Serve(w, ServeConfig{Record: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineReplay(w, served)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatal("baseline replay must take time")
	}
}

func TestBadSeedSQLSurfaces(t *testing.T) {
	w := smallWiki()
	w.Seed = append(w.Seed, "NOT SQL")
	if _, err := Serve(w, ServeConfig{Record: true}); err == nil {
		t.Fatal("bad seed SQL must fail Serve")
	}
}
