// Package harness provisions servers with workloads, serves them, and
// audits the results — the shared machinery behind the test suite, the
// benchmark targets (bench_test.go), the examples, and cmd/orochi-bench.
package harness

import (
	"context"
	"fmt"
	"time"

	"orochi/internal/apps"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// ServeConfig controls one serving run.
type ServeConfig struct {
	// Record enables OROCHI report collection; false is the legacy
	// baseline of §5.1.
	Record bool
	// Concurrency is the number of in-flight requests.
	Concurrency int
	// Clock overrides the server clock (deterministic runs).
	Clock func() time.Time
	// RandSeed seeds server-side randomness.
	RandSeed int64
	// Shards is the lock-stripe count of the object store and recorder
	// (0 = default). Reports are identical at every setting.
	Shards int
	// TamperResponse is the misbehaving-executor hook.
	TamperResponse func(rid, body string) string
	// Engine selects the language execution engine (nil =
	// lang.DefaultEngine); observables are engine-independent.
	Engine lang.Engine
}

// Served captures everything a serving run produced.
type Served struct {
	App      *apps.App
	Program  *lang.Program
	Server   *server.Server
	Snapshot *object.Snapshot
	Trace    *trace.Trace
	Reports  *reports.Reports // nil when recording was off
	// ServeCPU is the summed handler execution time; ServeWall the
	// end-to-end wall time of the serving phase.
	ServeCPU  time.Duration
	ServeWall time.Duration
	Requests  int
}

// Serve provisions a server with the workload's schema and seed data,
// captures the initial snapshot, and serves every request.
func Serve(w *workload.Workload, cfg ServeConfig) (*Served, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{
		Record:         cfg.Record,
		Clock:          cfg.Clock,
		RandSeed:       cfg.RandSeed,
		Shards:         cfg.Shards,
		TamperResponse: cfg.TamperResponse,
		Engine:         cfg.Engine,
	})
	if err := srv.Setup(w.App.Schema); err != nil {
		return nil, fmt.Errorf("harness: schema: %w", err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		return nil, fmt.Errorf("harness: seed: %w", err)
	}
	snap := srv.Snapshot()
	start := time.Now()
	srv.ServeAll(w.Requests, cfg.Concurrency)
	wall := time.Since(start)
	cpu, n := srv.CPU()
	out := &Served{
		App:      w.App,
		Program:  prog,
		Server:   srv,
		Snapshot: snap,
		Trace:    srv.Trace(),
		ServeCPU: cpu, ServeWall: wall, Requests: int(n),
	}
	if cfg.Record {
		out.Reports = srv.Reports()
	}
	return out, nil
}

// AuditContext runs the verifier over the served results. Cancelling
// ctx abandons the audit with an error matching
// verifier.ErrAuditCanceled and no verdict.
func (s *Served) AuditContext(ctx context.Context, opts verifier.Options) (*verifier.Result, error) {
	if s.Reports == nil {
		return nil, fmt.Errorf("harness: serving run did not record reports")
	}
	return verifier.AuditContext(ctx, s.Program, s.Trace, s.Reports, s.Snapshot, opts)
}

// Audit runs the verifier over the served results.
//
// Deprecated: use AuditContext, which supports cancellation.
func (s *Served) Audit(opts verifier.Options) (*verifier.Result, error) {
	return s.AuditContext(context.Background(), opts)
}

// Sizes summarizes the storage-related quantities of Fig. 8: compressed
// trace size, compressed report size, a baseline report size (the
// nondeterminism records only, which any record-replay baseline needs),
// and the plain DB size.
type Sizes struct {
	TraceBytes          int
	ReportBytes         int
	BaselineReportBytes int
	DBPlainBytes        int64
}

// Sizes computes the size accounting for this run.
func (s *Served) Sizes() (*Sizes, error) {
	out := &Sizes{DBPlainBytes: s.Server.Store.DB.SizeBytes()}
	tb, err := encodeTraceSize(s.Trace)
	if err != nil {
		return nil, err
	}
	out.TraceBytes = tb
	if s.Reports != nil {
		enc, err := s.Reports.Encode()
		if err != nil {
			return nil, err
		}
		out.ReportBytes = len(enc)
		// The baseline's reports: nondeterminism only (§5.1 gives the
		// baseline this, since any record-replay system needs it).
		baseline := &reports.Reports{
			Groups:   map[uint64][]string{},
			Scripts:  map[uint64]string{},
			OpCounts: map[string]int{},
			NonDet:   s.Reports.NonDet,
		}
		bEnc, err := baseline.Encode()
		if err != nil {
			return nil, err
		}
		out.BaselineReportBytes = len(bEnc)
	}
	return out, nil
}

func encodeTraceSize(tr *trace.Trace) (int, error) {
	// The trace's wire size: sum of request/response payloads, gzipped
	// via the reports encoder for a like-for-like comparison.
	var total int
	for i := range tr.Events {
		ev := &tr.Events[i]
		total += len(ev.RID) + 9 // rid + kind/time framing
		total += len(ev.Body)
		total += len(ev.In.Script)
		for k, v := range ev.In.Get {
			total += len(k) + len(v) + 2
		}
		for k, v := range ev.In.Post {
			total += len(k) + len(v) + 2
		}
		for k, v := range ev.In.Cookie {
			total += len(k) + len(v) + 2
		}
	}
	return total, nil
}

// BaselineReplay re-executes every request sequentially on a fresh
// server provisioned with the same initial state — the "simple
// re-execution" the paper's speedup compares against (§5.1). It returns
// the wall time of the replay. The baseline is generous: it gets the
// recorded nondeterminism for free and replays in arrival order without
// any checking.
func BaselineReplay(w *workload.Workload, served *Served) (time.Duration, error) {
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: false})
	if err := srv.Setup(w.App.Schema); err != nil {
		return 0, err
	}
	if err := srv.Setup(w.Seed); err != nil {
		return 0, err
	}
	start := time.Now()
	for _, ev := range served.Trace.Events {
		if ev.Kind != trace.Request {
			continue
		}
		srv.Process(ev.RID, ev.In)
	}
	return time.Since(start), nil
}
