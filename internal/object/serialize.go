package object

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"strconv"

	"orochi/internal/encio"

	"orochi/internal/lang"
	"orochi/internal/sqlmini"
)

// snapshotWire is the gob shape of a Snapshot: language and SQL values
// travel as tagged strings so no interface registration is needed.
type snapshotWire struct {
	Registers map[string]string
	KV        map[string]string
	Tables    []tableWire
}

type tableWire struct {
	Name     string
	Cols     []sqlmini.Column
	NextAuto int64
	Rows     [][]string
}

// EncodeRaw serializes the snapshot with gob, uncompressed — the
// logical form the content-addressed store chunks (compression moves
// down to the chunk layer).
func (s *Snapshot) EncodeRaw() ([]byte, error) {
	wire := snapshotWire{
		Registers: make(map[string]string, len(s.Registers)),
		KV:        make(map[string]string, len(s.KV)),
	}
	for k, v := range s.Registers {
		wire.Registers[k] = lang.EncodeValue(v)
	}
	for k, v := range s.KV {
		wire.KV[k] = lang.EncodeValue(v)
	}
	for _, t := range s.Tables {
		tw := tableWire{Name: t.Name, Cols: t.Cols, NextAuto: t.NextAuto}
		for _, row := range t.Rows {
			enc := make([]string, len(row))
			for i, v := range row {
				enc[i] = encodeSQLVal(v)
			}
			tw.Rows = append(tw.Rows, enc)
		}
		wire.Tables = append(wire.Tables, tw)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("object: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Encode serializes the snapshot (gob+gzip).
func (s *Snapshot) Encode() ([]byte, error) {
	raw, err := s.EncodeRaw()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("object: encode snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshotRaw deserializes a snapshot produced by EncodeRaw.
// Trailing garbage is an error, matching DecodeSnapshot's strictness.
func DecodeSnapshotRaw(data []byte) (*Snapshot, error) {
	br := bytes.NewReader(data)
	var wire snapshotWire
	if err := gob.NewDecoder(br).Decode(&wire); err != nil {
		return nil, fmt.Errorf("object: decode snapshot: %w", err)
	}
	if err := encio.ExpectEOF(br); err != nil {
		return nil, fmt.Errorf("object: decode snapshot: %w", err)
	}
	return decodeSnapshotWire(&wire)
}

// DecodeSnapshot deserializes a snapshot produced by Encode. Truncated
// input and trailing garbage are errors, so corrupted on-disk state can
// never load silently as a shortened snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("object: decode snapshot: %w", err)
	}
	defer zr.Close()
	var wire snapshotWire
	if err := gob.NewDecoder(zr).Decode(&wire); err != nil {
		return nil, fmt.Errorf("object: decode snapshot: %w", err)
	}
	if err := encio.ExpectEOF(zr); err != nil {
		return nil, fmt.Errorf("object: decode snapshot: %w", err)
	}
	return decodeSnapshotWire(&wire)
}

func decodeSnapshotWire(wire *snapshotWire) (*Snapshot, error) {
	out := &Snapshot{
		Registers: make(map[string]lang.Value, len(wire.Registers)),
		KV:        make(map[string]lang.Value, len(wire.KV)),
	}
	for k, enc := range wire.Registers {
		v, err := lang.DecodeValue(enc)
		if err != nil {
			return nil, err
		}
		out.Registers[k] = v
	}
	for k, enc := range wire.KV {
		v, err := lang.DecodeValue(enc)
		if err != nil {
			return nil, err
		}
		out.KV[k] = v
	}
	for _, tw := range wire.Tables {
		rows := make([][]sqlmini.Val, len(tw.Rows))
		for i, enc := range tw.Rows {
			row := make([]sqlmini.Val, len(enc))
			for j, e := range enc {
				v, err := decodeSQLVal(e)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			rows[i] = row
		}
		t, err := sqlmini.NewTempTable(tw.Name, tw.Cols, rows)
		if err != nil {
			return nil, err
		}
		t.NextAuto = tw.NextAuto
		out.Tables = append(out.Tables, t)
	}
	return out, nil
}

// WriteFile stores the snapshot at path.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadSnapshotFile loads a snapshot stored by WriteFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

func encodeSQLVal(v sqlmini.Val) string {
	switch x := v.(type) {
	case nil:
		return "n"
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		return "f" + strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "s" + x
	default:
		return "s" + fmt.Sprintf("%v", v)
	}
}

func decodeSQLVal(e string) (sqlmini.Val, error) {
	if e == "" {
		return nil, fmt.Errorf("object: empty encoded SQL value")
	}
	body := e[1:]
	switch e[0] {
	case 'n':
		return nil, nil
	case 'i':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return nil, err
		}
		return n, nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return nil, err
		}
		return f, nil
	case 's':
		return body, nil
	default:
		return nil, fmt.Errorf("object: bad SQL value tag %q", e[0])
	}
}
