package object

import (
	"fmt"
	"sync"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/reports"
)

// TestShardCountsBehaveIdentically: basic register/KV semantics hold at
// every stripe count, including 1 (the old global-lock shape).
func TestShardCountsBehaveIdentically(t *testing.T) {
	for _, n := range []int{1, 2, 16, 64} {
		s := NewStoreShards(n)
		if s.ShardCount() != n {
			t.Fatalf("ShardCount = %d want %d", s.ShardCount(), n)
		}
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("reg%d", i)
			s.RegisterWrite(name, int64(i), nil, "r", 1)
			s.KvSet(fmt.Sprintf("key%d", i), fmt.Sprintf("v%d", i), nil, "r", 2)
		}
		for i := 0; i < 50; i++ {
			if v := s.RegisterRead(fmt.Sprintf("reg%d", i), nil, "r", 3); v != int64(i) {
				t.Fatalf("shards=%d: reg%d = %v", n, i, v)
			}
			if v := s.KvGet(fmt.Sprintf("key%d", i), nil, "r", 4); v != fmt.Sprintf("v%d", i) {
				t.Fatalf("shards=%d: key%d = %v", n, i, v)
			}
		}
		snap := s.Snapshot()
		if len(snap.Registers) != 50 || len(snap.KV) != 50 {
			t.Fatalf("shards=%d: snapshot sizes %d/%d", n, len(snap.Registers), len(snap.KV))
		}
	}
}

// TestShardedKVLogIsLegalLinearization hammers the striped KV store from
// concurrent writers across many keys and checks the single merged apc
// log: for every key, the last logged set equals the store's final
// value, and per-key log order matches each writer's issue order.
func TestShardedKVLogIsLegalLinearization(t *testing.T) {
	s := NewStoreShards(8)
	rec := reports.NewRecorderShards(8)
	const keys, writes = 12, 30
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key%d", k)
			for i := 0; i < writes; i++ {
				s.KvSet(key, int64(i), rec, fmt.Sprintf("r-%d-%d", k, i), 1)
			}
		}(k)
	}
	wg.Wait()
	rep := rec.Finalize()
	idx := rep.LogIndex(reports.ObjectID{Kind: reports.KVObj, Name: "apc"})
	if idx < 0 {
		t.Fatal("apc log missing")
	}
	log := rep.OpLogs[idx]
	if len(log) != keys*writes {
		t.Fatalf("log length = %d want %d", len(log), keys*writes)
	}
	lastLogged := make(map[string]lang.Value, keys)
	seen := make(map[string]int64, keys)
	for _, e := range log {
		v, err := lang.DecodeValue(e.Value)
		if err != nil {
			t.Fatal(err)
		}
		// Per-key order must be the writer's issue order 0,1,2,...
		if v.(int64) != seen[e.Key] {
			t.Fatalf("key %s logged %v, want %d (per-key order violated)", e.Key, v, seen[e.Key])
		}
		seen[e.Key]++
		lastLogged[e.Key] = v
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key%d", k)
		final := s.KvGet(key, nil, "x", 1)
		if !lang.Equal(final, lastLogged[key]) {
			t.Fatalf("key %s: final %v != last logged %v", key, final, lastLogged[key])
		}
	}
}

// TestShardedRegisterConcurrentDistinctNames: concurrent traffic on
// distinct registers lands each op in its own per-object log, complete
// and in per-register program order.
func TestShardedRegisterConcurrentDistinctNames(t *testing.T) {
	s := NewStoreShards(4)
	rec := reports.NewRecorderShards(4)
	const regs, writes = 9, 25
	var wg sync.WaitGroup
	for r := 0; r < regs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			name := fmt.Sprintf("reg%d", r)
			for i := 0; i < writes; i++ {
				s.RegisterWrite(name, int64(i), rec, fmt.Sprintf("r-%d-%d", r, i), 1)
			}
		}(r)
	}
	wg.Wait()
	rep := rec.Finalize()
	for r := 0; r < regs; r++ {
		name := fmt.Sprintf("reg%d", r)
		idx := rep.LogIndex(reports.ObjectID{Kind: reports.RegisterObj, Name: name})
		if idx < 0 {
			t.Fatalf("register %s log missing", name)
		}
		log := rep.OpLogs[idx]
		if len(log) != writes {
			t.Fatalf("register %s log length %d want %d", name, len(log), writes)
		}
		for i, e := range log {
			want := lang.EncodeValue(lang.Value(int64(i)))
			if e.Value != want {
				t.Fatalf("register %s entry %d = %q want %q", name, i, e.Value, want)
			}
		}
	}
}
