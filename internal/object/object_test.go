package object

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"orochi/internal/lang"
	"orochi/internal/reports"
)

func TestRegistersBasic(t *testing.T) {
	s := NewStore()
	if v := s.RegisterRead("r", nil, "rid", 1); v != nil {
		t.Fatalf("unset register = %v", v)
	}
	s.RegisterWrite("r", lang.Value("x"), nil, "rid", 2)
	if v := s.RegisterRead("r", nil, "rid", 3); v != "x" {
		t.Fatalf("register = %v", v)
	}
}

func TestRegisterCloneIsolation(t *testing.T) {
	s := NewStore()
	arr := lang.NewArray()
	arr.Append("a")
	s.RegisterWrite("r", arr, nil, "rid", 1)
	arr.Append("mutated")
	got := s.RegisterRead("r", nil, "rid", 2).(*lang.Array)
	if got.Len() != 1 {
		t.Fatal("write must clone")
	}
	got.Append("reader-mutation")
	got2 := s.RegisterRead("r", nil, "rid", 3).(*lang.Array)
	if got2.Len() != 1 {
		t.Fatal("read must clone")
	}
}

func TestKVBasic(t *testing.T) {
	s := NewStore()
	if v := s.KvGet("k", nil, "rid", 1); v != nil {
		t.Fatalf("unset kv = %v", v)
	}
	s.KvSet("k", int64(42), nil, "rid", 2)
	if v := s.KvGet("k", nil, "rid", 3); v != int64(42) {
		t.Fatalf("kv = %v", v)
	}
}

func TestRecordingOrderMatchesLinearization(t *testing.T) {
	// Concurrent writers to one register: log order must be a legal
	// linearization (every logged value visible at the final read).
	s := NewStore()
	rec := reports.NewRecorder()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.RegisterWrite("reg", int64(i), rec, fmt.Sprintf("r%d", i), 1)
		}(i)
	}
	wg.Wait()
	rep := rec.Finalize()
	idx := rep.LogIndex(reports.ObjectID{Kind: reports.RegisterObj, Name: "reg"})
	if idx < 0 {
		t.Fatal("register log missing")
	}
	log := rep.OpLogs[idx]
	if len(log) != n {
		t.Fatalf("log length = %d", len(log))
	}
	// The register's final value must equal the last logged write.
	final := s.RegisterRead("reg", nil, "x", 1)
	lastVal, err := lang.DecodeValue(log[len(log)-1].Value)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.Equal(final, lastVal) {
		t.Fatalf("final %v != last logged %v", final, lastVal)
	}
}

func TestBridgeDBOpLogsSeq(t *testing.T) {
	s := NewStore()
	rec := reports.NewRecorder()
	if _, err := s.DB.Exec(`CREATE TABLE t (n INT)`); err != nil {
		t.Fatal(err)
	}
	b := NewBridge(s, rec)
	if _, err := b.DBOp("r1", 1, []string{`INSERT INTO t (n) VALUES (1)`}); err != nil {
		t.Fatal(err)
	}
	v, err := b.DBOp("r1", 2, []string{`SELECT n FROM t`})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	arr := v.(*lang.Array)
	if arr.Len() != 1 {
		t.Fatalf("result shape: %v", arr)
	}
	rep := rec.Finalize()
	idx := rep.LogIndex(reports.ObjectID{Kind: reports.DBObj, Name: "main"})
	if idx < 0 {
		t.Fatal("db log missing")
	}
	if len(rep.OpLogs[idx]) != 2 {
		t.Fatalf("db log length = %d", len(rep.OpLogs[idx]))
	}
	if !rep.OpLogs[idx][0].OK {
		t.Fatal("committed txn must log OK")
	}
}

func TestBridgeDBOpFailureLogsAbort(t *testing.T) {
	s := NewStore()
	rec := reports.NewRecorder()
	b := NewBridge(s, rec)
	v, err := b.DBOp("r1", 1, []string{`SELECT x FROM missing`})
	if err != nil {
		t.Fatal(err)
	}
	if v != false {
		t.Fatalf("failed query must return false, got %v", v)
	}
	b.Close()
	rep := rec.Finalize()
	idx := rep.LogIndex(reports.ObjectID{Kind: reports.DBObj, Name: "main"})
	if idx < 0 || len(rep.OpLogs[idx]) != 1 {
		t.Fatal("aborted txn must still be logged")
	}
	if rep.OpLogs[idx][0].OK {
		t.Fatal("aborted txn must log OK=false")
	}
}

func TestBridgeStitchingOrder(t *testing.T) {
	// Many concurrent sessions write the DB; after stitching, the log's
	// statements replay to the same final state as the live DB.
	s := NewStore()
	rec := reports.NewRecorder()
	if _, err := s.DB.Exec(`CREATE TABLE c (id INT, v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB.Exec(`INSERT INTO c (id, v) VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}
	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := NewBridge(s, rec)
			defer b.Close()
			if _, err := b.DBOp(fmt.Sprintf("r%d", i), 1,
				[]string{`UPDATE c SET v = v + 1 WHERE id = 1`}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	rep := rec.Finalize()
	idx := rep.LogIndex(reports.ObjectID{Kind: reports.DBObj, Name: "main"})
	log := rep.OpLogs[idx]
	if len(log) != n {
		t.Fatalf("stitched log length = %d", len(log))
	}
	final, _ := s.DB.Exec(`SELECT v FROM c WHERE id = 1`)
	if final.Rows[0][0] != int64(n) {
		t.Fatalf("live count = %v", final.Rows[0][0])
	}
}

func TestBridgeNonDetRecording(t *testing.T) {
	s := NewStore()
	rec := reports.NewRecorder()
	b := NewBridge(s, rec)
	fixed := time.Unix(1700000000, 0)
	b.Clock = func() time.Time { return fixed }
	v, err := b.NonDet("r1", "time", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(1700000000) {
		t.Fatalf("time = %v", v)
	}
	if _, err := b.NonDet("r1", "getmypid", nil); err != nil {
		t.Fatal(err)
	}
	r, err := b.NonDet("r1", "mt_rand", []lang.Value{int64(5), int64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.(int64); n < 5 || n > 10 {
		t.Fatalf("mt_rand out of range: %d", n)
	}
	if _, err := b.NonDet("r1", "bogus", nil); err == nil {
		t.Fatal("unknown nondet must error")
	}
	b.Close()
	rep := rec.Finalize()
	if len(rep.NonDet["r1"]) != 3 {
		t.Fatalf("nondet records = %d", len(rep.NonDet["r1"]))
	}
	if rep.NonDet["r1"][0].Fn != "time" {
		t.Fatalf("first record = %+v", rep.NonDet["r1"][0])
	}
}

func TestBridgeTimeMonotonic(t *testing.T) {
	s := NewStore()
	b := NewBridge(s, nil)
	times := []time.Time{
		time.Unix(100, 0), time.Unix(99, 0), time.Unix(101, 0),
	}
	i := 0
	b.Clock = func() time.Time { t := times[i]; i++; return t }
	v1, _ := b.NonDet("r", "time", nil)
	v2, _ := b.NonDet("r", "time", nil)
	v3, _ := b.NonDet("r", "time", nil)
	if v2.(int64) < v1.(int64) {
		t.Fatal("time must be monotonic within a request")
	}
	if v3 != int64(101) {
		t.Fatalf("v3 = %v", v3)
	}
}

func TestBridgeRejectsMultivalueStores(t *testing.T) {
	s := NewStore()
	b := NewBridge(s, nil)
	mv := &lang.Multi{V: []lang.Value{int64(1), int64(2)}}
	if err := b.RegisterWrite("r", 1, "reg", mv); err == nil {
		t.Fatal("multivalue register write must fail")
	}
	if err := b.KvSet("r", 1, "k", mv); err == nil {
		t.Fatal("multivalue kv set must fail")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	if _, err := s.DB.Exec(`CREATE TABLE t (n INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB.Exec(`INSERT INTO t (n) VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	s.RegisterWrite("reg", "v", nil, "", 0)
	s.KvSet("key", int64(9), nil, "", 0)
	snap := s.Snapshot()
	// Later mutation must not leak into the snapshot.
	s.RegisterWrite("reg", "changed", nil, "", 0)
	s.KvSet("key", int64(10), nil, "", 0)
	if _, err := s.DB.Exec(`INSERT INTO t (n) VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if snap.Registers["reg"] != "v" || snap.KV["key"] != int64(9) {
		t.Fatal("snapshot register/kv leaked")
	}
	if len(snap.Tables) != 1 || len(snap.Tables[0].Rows) != 1 {
		t.Fatal("snapshot table leaked")
	}
	if EmptySnapshot().Registers == nil {
		t.Fatal("EmptySnapshot maps must be non-nil")
	}
}

func TestResultToLangShapes(t *testing.T) {
	s := NewStore()
	if _, err := s.DB.Exec(`CREATE TABLE t (a INT, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB.Exec(`INSERT INTO t (a, b) VALUES (1, 'x')`); err != nil {
		t.Fatal(err)
	}
	r, _ := s.DB.Exec(`SELECT a, b FROM t`)
	v := ResultToLang(r).(*lang.Array)
	row, _ := v.Get(lang.Key{I: 0, IsInt: true})
	m := row.(*lang.Array)
	ka, _ := lang.NormalizeKey(lang.Value("a"))
	if got, _ := m.Get(ka); got != int64(1) {
		t.Fatalf("a = %v", got)
	}
	w, _ := s.DB.Exec(`INSERT INTO t (a, b) VALUES (2, 'y')`)
	wm := ResultToLang(w).(*lang.Array)
	kaff, _ := lang.NormalizeKey(lang.Value("affected"))
	if got, _ := wm.Get(kaff); got != int64(1) {
		t.Fatalf("affected = %v", got)
	}
}

func TestDecodeSnapshotRejectsTruncatedAndTrailing(t *testing.T) {
	s := NewStore()
	s.KvSet("k", lang.Value("v"), nil, "", 0)
	snap := s.Snapshot()
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data[:len(data)-4]); err == nil {
		t.Fatal("DecodeSnapshot accepted truncated input")
	}
	if _, err := DecodeSnapshot(append(data, 0x00, 0x01)); err == nil {
		t.Fatal("DecodeSnapshot accepted trailing garbage")
	}
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}
