package object

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"

	"orochi/internal/lang"
)

// CanonicalDigest returns a SHA-256 over a canonical rendering of the
// snapshot's logical content: registers and KV pairs in sorted key
// order, tables sorted by name with rows in order. Two snapshots with
// the same state always produce the same digest, regardless of map
// iteration order — unlike Encode, whose gob maps serialize in
// whatever order the runtime walks them. This is the comparison key
// for distributed audit: a coordinator cross-checking final snapshots
// posted by independent workers compares these digests, and any
// disagreement is evidence.
func (s *Snapshot) CanonicalDigest() string {
	h := sha256.New()
	var lenBuf [8]byte
	emit := func(field string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(field)))
		h.Write(lenBuf[:])
		h.Write([]byte(field))
	}
	sortedKeys := func(m map[string]lang.Value) []string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	emit("registers")
	for _, k := range sortedKeys(s.Registers) {
		emit(k)
		emit(lang.EncodeValue(s.Registers[k]))
	}
	emit("kv")
	for _, k := range sortedKeys(s.KV) {
		emit(k)
		emit(lang.EncodeValue(s.KV[k]))
	}
	emit("tables")
	tables := make([]int, len(s.Tables))
	for i := range tables {
		tables[i] = i
	}
	sort.Slice(tables, func(a, b int) bool { return s.Tables[tables[a]].Name < s.Tables[tables[b]].Name })
	for _, i := range tables {
		t := s.Tables[i]
		emit(t.Name)
		cols, _ := json.Marshal(t.Cols)
		emit(string(cols))
		emit(strconv.FormatInt(t.NextAuto, 10))
		emit(strconv.Itoa(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				emit(encodeSQLVal(v))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
