// Package object implements the online shared-object layer (§3.2, §4.4):
// atomic registers for per-client session data, a linearizable key-value
// store modelling the APC, and the strictly serializable SQL database.
// It also provides the server-side Bridge that routes the application
// language's state operations to these objects, recording each operation
// through the reports.Recorder when recording is enabled.
package object

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
)

// Store holds all shared objects of one server.
type Store struct {
	regMu sync.Mutex
	regs  map[string]lang.Value

	kvMu sync.Mutex
	kv   map[string]lang.Value

	// DB is the SQL database (exported: the server seeds schemas and
	// benchmarks inspect sizes).
	DB *sqlmini.DB
}

// NewStore returns an empty store with a fresh database.
func NewStore() *Store {
	return &Store{
		regs: make(map[string]lang.Value),
		kv:   make(map[string]lang.Value),
		DB:   sqlmini.NewDB(),
	}
}

// RegisterRead atomically reads register name, logging under the lock.
func (s *Store) RegisterRead(name string, rec *reports.Recorder, rid string, opnum int) lang.Value {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	v := s.regs[name]
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.RegisterObj, Name: name}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.RegisterRead, Key: name,
		})
	}
	return lang.CloneValue(v)
}

// RegisterWrite atomically writes register name.
func (s *Store) RegisterWrite(name string, v lang.Value, rec *reports.Recorder, rid string, opnum int) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.regs[name] = lang.CloneValue(v)
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.RegisterObj, Name: name}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.RegisterWrite, Key: name, Value: lang.EncodeValue(v),
		})
	}
}

// KvGet linearizably reads key from the KV store.
func (s *Store) KvGet(key string, rec *reports.Recorder, rid string, opnum int) lang.Value {
	s.kvMu.Lock()
	defer s.kvMu.Unlock()
	v := s.kv[key]
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.KVObj, Name: "apc"}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.KvGet, Key: key,
		})
	}
	return lang.CloneValue(v)
}

// KvSet linearizably writes key in the KV store.
func (s *Store) KvSet(key string, v lang.Value, rec *reports.Recorder, rid string, opnum int) {
	s.kvMu.Lock()
	defer s.kvMu.Unlock()
	s.kv[key] = lang.CloneValue(v)
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.KVObj, Name: "apc"}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.KvSet, Key: key, Value: lang.EncodeValue(v),
		})
	}
}

// Snapshot is the persistent-object state at an audit boundary; the
// verifier needs the state as of the start of the audited period
// (§4.1/§5.5: "treating those objects as the true initial state").
type Snapshot struct {
	Registers map[string]lang.Value
	KV        map[string]lang.Value
	Tables    []*sqlmini.Table
}

// Snapshot captures the current object state.
func (s *Store) Snapshot() *Snapshot {
	out := &Snapshot{
		Registers: make(map[string]lang.Value),
		KV:        make(map[string]lang.Value),
	}
	s.regMu.Lock()
	for k, v := range s.regs {
		out.Registers[k] = lang.CloneValue(v)
	}
	s.regMu.Unlock()
	s.kvMu.Lock()
	for k, v := range s.kv {
		out.KV[k] = lang.CloneValue(v)
	}
	s.kvMu.Unlock()
	for _, name := range s.DB.Tables() {
		out.Tables = append(out.Tables, s.DB.TableCopy(name))
	}
	return out
}

// EmptySnapshot is the initial state of a freshly provisioned server.
func EmptySnapshot() *Snapshot {
	return &Snapshot{
		Registers: map[string]lang.Value{},
		KV:        map[string]lang.Value{},
	}
}

// Bridge is the server-side lang.Bridge: it executes state operations
// against the store's objects and records them (when rec is non-nil),
// and it computes + records non-determinism (§4.6).
type Bridge struct {
	store *Store
	rec   *reports.Recorder
	sess  *reports.Session
	// Clock supplies time for time()/microtime(); overridable for
	// deterministic tests. Defaults to the wall clock.
	Clock func() time.Time
	// Rand supplies randomness for mt_rand(); defaults to math/rand.
	Rand *rand.Rand
	// PID is the reported process id.
	PID int64

	lastTime int64
}

// NewBridge returns a bridge for one request handler. rec may be nil
// (recording disabled — the baseline configuration).
func NewBridge(store *Store, rec *reports.Recorder) *Bridge {
	b := &Bridge{store: store, rec: rec, Clock: time.Now, PID: 1}
	if rec != nil {
		b.sess = rec.NewSession()
	}
	return b
}

// Close finishes the bridge's recording session.
func (b *Bridge) Close() {
	if b.sess != nil {
		b.sess.Close()
	}
}

// RegisterRead implements lang.Bridge.
func (b *Bridge) RegisterRead(rid string, opnum int, name string) (lang.Value, error) {
	return b.store.RegisterRead(name, b.rec, rid, opnum), nil
}

// RegisterWrite implements lang.Bridge.
func (b *Bridge) RegisterWrite(rid string, opnum int, name string, v lang.Value) error {
	if err := checkStorable(v); err != nil {
		return err
	}
	b.store.RegisterWrite(name, v, b.rec, rid, opnum)
	return nil
}

// KvGet implements lang.Bridge.
func (b *Bridge) KvGet(rid string, opnum int, key string) (lang.Value, error) {
	return b.store.KvGet(key, b.rec, rid, opnum), nil
}

// KvSet implements lang.Bridge.
func (b *Bridge) KvSet(rid string, opnum int, key string, v lang.Value) error {
	if err := checkStorable(v); err != nil {
		return err
	}
	b.store.KvSet(key, v, b.rec, rid, opnum)
	return nil
}

// DBOp implements lang.Bridge: it commits the transaction against the
// database and logs (stmts, seq, ok) into the session sub-log. On SQL
// failure the application receives `false`, as PHP database APIs do.
func (b *Bridge) DBOp(rid string, opnum int, stmts []string) (lang.Value, error) {
	results, seq, err := b.store.DB.ExecTxnSeq(stmts)
	ok := err == nil
	if b.sess != nil {
		b.sess.RecordDBOp(seq, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.DBOp,
			Stmts: append([]string(nil), stmts...), OK: ok,
		})
	}
	if !ok {
		return false, nil
	}
	return resultsToLang(results), nil
}

// resultsToLang converts engine results into the language-level shape:
// an array of per-statement results, where a SELECT yields an array of
// row maps and a write yields {"affected": n, "insert_id": id}.
func resultsToLang(results []*sqlmini.Result) lang.Value {
	out := lang.NewArray()
	for _, r := range results {
		out.Append(ResultToLang(r))
	}
	return out
}

// ResultToLang converts one statement result to a language value.
func ResultToLang(r *sqlmini.Result) lang.Value {
	if r.Cols != nil {
		rows := lang.NewArray()
		for _, row := range r.Rows {
			m := lang.NewArray()
			for i, col := range r.Cols {
				k, _ := lang.NormalizeKey(lang.Value(col))
				m.Set(k, sqlValToLang(row[i]))
			}
			rows.Append(m)
		}
		return rows
	}
	m := lang.NewArray()
	ka, _ := lang.NormalizeKey(lang.Value("affected"))
	ki, _ := lang.NormalizeKey(lang.Value("insert_id"))
	m.Set(ka, r.Affected)
	m.Set(ki, r.InsertID)
	return m
}

func sqlValToLang(v sqlmini.Val) lang.Value {
	switch x := v.(type) {
	case nil:
		return nil
	case int64:
		return x
	case float64:
		return x
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NonDet implements lang.Bridge: compute the real value, record it.
func (b *Bridge) NonDet(rid string, fn string, args []lang.Value) (lang.Value, error) {
	var v lang.Value
	switch fn {
	case "time":
		t := b.Clock().Unix()
		if t < b.lastTime {
			t = b.lastTime // keep time monotonic within a request
		}
		b.lastTime = t
		v = t
	case "microtime":
		v = float64(b.Clock().UnixNano()) / 1e9
	case "mt_rand", "rand":
		lo, hi := int64(0), int64(1<<31-1)
		if len(args) == 2 {
			lo, hi = lang.ToInt(args[0]), lang.ToInt(args[1])
		}
		if hi < lo {
			v = lo
		} else if b.Rand != nil {
			v = lo + b.Rand.Int63n(hi-lo+1)
		} else {
			v = lo + rand.Int63n(hi-lo+1)
		}
	case "uniqid":
		v = fmt.Sprintf("%x", b.Clock().UnixNano())
	case "getmypid":
		v = b.PID
	default:
		return nil, &lang.RuntimeError{Msg: "unknown nondet builtin " + fn}
	}
	if b.rec != nil {
		b.rec.RecordNonDet(rid, reports.NDEntry{Fn: fn, Value: lang.EncodeValue(v)})
	}
	return v, nil
}

// checkStorable rejects multivalues (which must never reach an object).
func checkStorable(v lang.Value) error {
	if lang.DeepContainsMulti(v) {
		return &lang.RuntimeError{Msg: "cannot store a multivalue in a shared object"}
	}
	return nil
}

var _ lang.Bridge = (*Bridge)(nil)
