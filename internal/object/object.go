// Package object implements the online shared-object layer (§3.2, §4.4):
// atomic registers for per-client session data, a linearizable key-value
// store modelling the APC, and the strictly serializable SQL database.
// It also provides the server-side Bridge that routes the application
// language's state operations to these objects, recording each operation
// through the reports.Recorder when recording is enabled.
package object

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
)

// Store holds all shared objects of one server.
//
// Registers and the KV store are lock-striped: object state lives in
// Shards shards, each owning its maps and mutex, with an object assigned
// to the shard its name hashes to. An operation takes exactly its
// object's shard lock, which preserves the paper's consistency
// contracts — a register stays atomic (all ops on one register serialize
// on one shard lock) and the KV store stays linearizable (ops on one key
// serialize on one shard lock; ops on different keys commute, and the
// recorder's ticket counter orders them consistently with real time, see
// reports.Recorder) — while concurrent requests touching different
// objects no longer contend on a global mutex.
//
// Operation recording happens inside the shard's critical section, so
// each object's log order provably matches its serialization order: the
// same lock that orders the state change orders the log append.
type Store struct {
	shards []storeShard

	// DB is the SQL database (exported: the server seeds schemas and
	// benchmarks inspect sizes).
	DB *sqlmini.DB
}

// storeShard is one lock stripe of the store. Registers and KV keys
// hash into stripes independently (the kind participates in the hash).
type storeShard struct {
	mu   sync.Mutex
	regs map[string]lang.Value
	kv   map[string]lang.Value
}

// NewStore returns an empty store with a fresh database and the default
// shard count.
func NewStore() *Store {
	return NewStoreShards(0)
}

// NewStoreShards returns an empty store with n lock stripes (n <= 0
// selects reports.DefaultShards). The stripe count affects only lock
// contention, never consistency or the recorded reports.
func NewStoreShards(n int) *Store {
	n = reports.NormShards(n)
	s := &Store{
		shards: make([]storeShard, n),
		DB:     sqlmini.NewDB(),
	}
	for i := range s.shards {
		s.shards[i].regs = make(map[string]lang.Value)
		s.shards[i].kv = make(map[string]lang.Value)
	}
	return s
}

// ShardCount reports the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shard(kind reports.ObjectKind, name string) *storeShard {
	return &s.shards[reports.StripeIndex(kind, name, len(s.shards))]
}

// RegisterRead atomically reads register name, logging under the shard
// lock. The clone happens outside the critical section: stored values
// are never mutated in place (every write stores a fresh clone), so the
// reference grabbed under the lock stays immutable.
func (s *Store) RegisterRead(name string, rec *reports.Recorder, rid string, opnum int) lang.Value {
	sh := s.shard(reports.RegisterObj, name)
	sh.mu.Lock()
	v := sh.regs[name]
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.RegisterObj, Name: name}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.RegisterRead, Key: name,
		})
	}
	sh.mu.Unlock()
	return lang.CloneValue(v)
}

// RegisterWrite atomically writes register name. The clone and the
// canonical encoding are computed before the critical section.
func (s *Store) RegisterWrite(name string, v lang.Value, rec *reports.Recorder, rid string, opnum int) {
	cl := lang.CloneValue(v)
	var enc string
	if rec != nil {
		enc = lang.EncodeValue(v)
	}
	sh := s.shard(reports.RegisterObj, name)
	sh.mu.Lock()
	sh.regs[name] = cl
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.RegisterObj, Name: name}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.RegisterWrite, Key: name, Value: enc,
		})
	}
	sh.mu.Unlock()
}

// KvGet linearizably reads key from the KV store.
func (s *Store) KvGet(key string, rec *reports.Recorder, rid string, opnum int) lang.Value {
	sh := s.shard(reports.KVObj, key)
	sh.mu.Lock()
	v := sh.kv[key]
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.KVObj, Name: "apc"}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.KvGet, Key: key,
		})
	}
	sh.mu.Unlock()
	return lang.CloneValue(v)
}

// KvSet linearizably writes key in the KV store.
func (s *Store) KvSet(key string, v lang.Value, rec *reports.Recorder, rid string, opnum int) {
	cl := lang.CloneValue(v)
	var enc string
	if rec != nil {
		enc = lang.EncodeValue(v)
	}
	sh := s.shard(reports.KVObj, key)
	sh.mu.Lock()
	sh.kv[key] = cl
	if rec != nil {
		rec.RecordObjOp(reports.ObjectID{Kind: reports.KVObj, Name: "apc"}, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.KvSet, Key: key, Value: enc,
		})
	}
	sh.mu.Unlock()
}

// Snapshot is the persistent-object state at an audit boundary; the
// verifier needs the state as of the start of the audited period
// (§4.1/§5.5: "treating those objects as the true initial state").
type Snapshot struct {
	Registers map[string]lang.Value
	KV        map[string]lang.Value
	Tables    []*sqlmini.Table
}

// Snapshot captures the current object state. Call it only at balanced
// points (no requests in flight), as the audit boundary requires; shard
// locks are taken one at a time, so a mid-traffic call would not be an
// atomic cut across shards.
func (s *Store) Snapshot() *Snapshot {
	out := &Snapshot{
		Registers: make(map[string]lang.Value),
		KV:        make(map[string]lang.Value),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, v := range sh.regs {
			out.Registers[k] = lang.CloneValue(v)
		}
		for k, v := range sh.kv {
			out.KV[k] = lang.CloneValue(v)
		}
		sh.mu.Unlock()
	}
	for _, name := range s.DB.Tables() {
		out.Tables = append(out.Tables, s.DB.TableCopy(name))
	}
	return out
}

// EmptySnapshot is the initial state of a freshly provisioned server.
func EmptySnapshot() *Snapshot {
	return &Snapshot{
		Registers: map[string]lang.Value{},
		KV:        map[string]lang.Value{},
	}
}

// Bridge is the server-side lang.Bridge: it executes state operations
// against the store's objects and records them (when rec is non-nil),
// and it computes + records non-determinism (§4.6).
type Bridge struct {
	store *Store
	rec   *reports.Recorder
	sess  *reports.Session
	// Clock supplies time for time()/microtime(); overridable for
	// deterministic tests. Defaults to the wall clock.
	Clock func() time.Time
	// Rand supplies randomness for mt_rand(); defaults to math/rand.
	Rand *rand.Rand
	// PID is the reported process id.
	PID int64

	lastTime int64
}

// NewBridge returns a bridge for one request handler. rec may be nil
// (recording disabled — the baseline configuration).
func NewBridge(store *Store, rec *reports.Recorder) *Bridge {
	b := &Bridge{store: store, rec: rec, Clock: time.Now, PID: 1}
	if rec != nil {
		b.sess = rec.NewSession()
	}
	return b
}

// Close finishes the bridge's recording session.
func (b *Bridge) Close() {
	if b.sess != nil {
		b.sess.Close()
	}
}

// RegisterRead implements lang.Bridge.
func (b *Bridge) RegisterRead(rid string, opnum int, name string) (lang.Value, error) {
	return b.store.RegisterRead(name, b.rec, rid, opnum), nil
}

// RegisterWrite implements lang.Bridge.
func (b *Bridge) RegisterWrite(rid string, opnum int, name string, v lang.Value) error {
	if err := checkStorable(v); err != nil {
		return err
	}
	b.store.RegisterWrite(name, v, b.rec, rid, opnum)
	return nil
}

// KvGet implements lang.Bridge.
func (b *Bridge) KvGet(rid string, opnum int, key string) (lang.Value, error) {
	return b.store.KvGet(key, b.rec, rid, opnum), nil
}

// KvSet implements lang.Bridge.
func (b *Bridge) KvSet(rid string, opnum int, key string, v lang.Value) error {
	if err := checkStorable(v); err != nil {
		return err
	}
	b.store.KvSet(key, v, b.rec, rid, opnum)
	return nil
}

// DBOp implements lang.Bridge: it commits the transaction against the
// database and logs (stmts, seq, ok) into the session sub-log. On SQL
// failure the application receives `false`, as PHP database APIs do.
func (b *Bridge) DBOp(rid string, opnum int, stmts []string) (lang.Value, error) {
	results, seq, err := b.store.DB.ExecTxnSeq(stmts)
	ok := err == nil
	if b.sess != nil {
		b.sess.RecordDBOp(seq, reports.OpEntry{
			RID: rid, Opnum: opnum, Type: lang.DBOp,
			Stmts: append([]string(nil), stmts...), OK: ok,
		})
	}
	if !ok {
		return false, nil
	}
	return resultsToLang(results), nil
}

// resultsToLang converts engine results into the language-level shape:
// an array of per-statement results, where a SELECT yields an array of
// row maps and a write yields {"affected": n, "insert_id": id}.
func resultsToLang(results []*sqlmini.Result) lang.Value {
	out := lang.NewArray()
	for _, r := range results {
		out.Append(ResultToLang(r))
	}
	return out
}

// ResultToLang converts one statement result to a language value.
func ResultToLang(r *sqlmini.Result) lang.Value {
	if r.Cols != nil {
		rows := lang.NewArray()
		for _, row := range r.Rows {
			m := lang.NewArray()
			for i, col := range r.Cols {
				k, _ := lang.NormalizeKey(lang.Value(col))
				m.Set(k, sqlValToLang(row[i]))
			}
			rows.Append(m)
		}
		return rows
	}
	m := lang.NewArray()
	ka, _ := lang.NormalizeKey(lang.Value("affected"))
	ki, _ := lang.NormalizeKey(lang.Value("insert_id"))
	m.Set(ka, r.Affected)
	m.Set(ki, r.InsertID)
	return m
}

func sqlValToLang(v sqlmini.Val) lang.Value {
	switch x := v.(type) {
	case nil:
		return nil
	case int64:
		return x
	case float64:
		return x
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NonDet implements lang.Bridge: compute the real value, record it.
func (b *Bridge) NonDet(rid string, fn string, args []lang.Value) (lang.Value, error) {
	var v lang.Value
	switch fn {
	case "time":
		t := b.Clock().Unix()
		if t < b.lastTime {
			t = b.lastTime // keep time monotonic within a request
		}
		b.lastTime = t
		v = t
	case "microtime":
		v = float64(b.Clock().UnixNano()) / 1e9
	case "mt_rand", "rand":
		lo, hi := int64(0), int64(1<<31-1)
		if len(args) == 2 {
			lo, hi = lang.ToInt(args[0]), lang.ToInt(args[1])
		}
		if hi < lo {
			v = lo
		} else if b.Rand != nil {
			v = lo + b.Rand.Int63n(hi-lo+1)
		} else {
			v = lo + rand.Int63n(hi-lo+1)
		}
	case "uniqid":
		v = fmt.Sprintf("%x", b.Clock().UnixNano())
	case "getmypid":
		v = b.PID
	default:
		return nil, &lang.RuntimeError{Msg: "unknown nondet builtin " + fn}
	}
	if b.rec != nil {
		b.rec.RecordNonDet(rid, reports.NDEntry{Fn: fn, Value: lang.EncodeValue(v)})
	}
	return v, nil
}

// checkStorable rejects multivalues (which must never reach an object).
func checkStorable(v lang.Value) error {
	if lang.DeepContainsMulti(v) {
		return &lang.RuntimeError{Msg: "cannot store a multivalue in a shared object"}
	}
	return nil
}

var _ lang.Bridge = (*Bridge)(nil)
