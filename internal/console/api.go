package console

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"orochi/internal/epoch"
)

// The JSON API mirrors the text endpoints with stable snake_case
// shapes. Decisions are served straight from the durable decision log
// (internal/epoch), so verdict history — including verdicts published
// by an earlier process — survives restarts, and the per-epoch
// drill-down carries the full forensics record for a REJECT.

// EpochsView is the /-/api/epochs response: the pipeline timeline plus
// a summary of the audit's position against it.
type EpochsView struct {
	Dir           string       `json:"dir"`
	CurrentEpoch  int64        `json:"current_epoch"`
	CurrentEvents int          `json:"current_events"`
	PipelineError string       `json:"pipeline_error,omitempty"`
	Sealed        []SealedView `json:"sealed"`
	Audit         *AuditView   `json:"audit,omitempty"`
}

// SealedView is one sealed epoch in the timeline.
type SealedView struct {
	Epoch       int64     `json:"epoch"`
	Events      int       `json:"events"`
	Requests    int       `json:"requests"`
	Segments    int       `json:"segments"`
	Bytes       int64     `json:"bytes"`
	ManifestSHA string    `json:"manifest_sha256"`
	SealedAt    time.Time `json:"sealed_at"`
}

// AuditView summarizes the auditor's position and live progress.
type AuditView struct {
	NextEpoch     int64  `json:"next_epoch"`
	ChainAccepted bool   `json:"chain_accepted"`
	Accepted      int    `json:"accepted"`
	Rejected      int    `json:"rejected"`
	Progress      string `json:"progress"`
}

func (c *Console) epochsView() EpochsView {
	st := c.mgr.Status()
	view := EpochsView{
		Dir:           st.Dir,
		CurrentEpoch:  st.CurrentEpoch,
		CurrentEvents: st.CurrentEvents,
		PipelineError: st.Err,
		Sealed:        make([]SealedView, 0, len(st.Sealed)),
	}
	for _, s := range st.Sealed {
		view.Sealed = append(view.Sealed, SealedView{
			Epoch: s.Epoch, Events: s.Events, Requests: s.Requests,
			Segments: s.Segments, Bytes: s.Bytes,
			ManifestSHA: s.ManifestSHA, SealedAt: s.SealedAt,
		})
	}
	if a := c.auditor; a != nil {
		av := &AuditView{
			NextEpoch:     a.NextEpoch(),
			ChainAccepted: a.ChainAccepted(),
			Progress:      a.Progress().String(),
		}
		for _, v := range a.Verdicts() {
			if v.Accepted {
				av.Accepted++
			} else {
				av.Rejected++
			}
		}
		view.Audit = av
	}
	return view
}

func (c *Console) apiEpochs(w http.ResponseWriter, r *http.Request) {
	if c.mgr == nil {
		http.Error(w, "epoch pipeline disabled", http.StatusNotFound)
		return
	}
	writeJSON(w, c.epochsView())
}

// requireLog resolves the decision log behind the verdict endpoints,
// writing the error response itself when none is available.
func (c *Console) requireLog(w http.ResponseWriter) *epoch.DecisionLog {
	if c.auditor == nil {
		http.Error(w, "no auditor wired into the console", http.StatusNotFound)
		return nil
	}
	log := c.auditor.Decisions()
	if log == nil {
		http.Error(w, "decision log unavailable", http.StatusServiceUnavailable)
		return nil
	}
	return log
}

func (c *Console) apiVerdicts(w http.ResponseWriter, r *http.Request) {
	log := c.requireLog(w)
	if log == nil {
		return
	}
	writeJSON(w, log.Decisions())
}

func (c *Console) apiVerdict(w http.ResponseWriter, r *http.Request) {
	log := c.requireLog(w)
	if log == nil {
		return
	}
	n, err := strconv.ParseInt(r.PathValue("epoch"), 10, 64)
	if err != nil {
		http.Error(w, "epoch must be a number", http.StatusBadRequest)
		return
	}
	d, ok := log.Get(n)
	if !ok {
		http.Error(w, "no decision recorded for epoch "+r.PathValue("epoch"), http.StatusNotFound)
		return
	}
	writeJSON(w, d)
}

// AckRequest is the POST /-/api/ack body: transition an epoch's
// decision open → acked with an operator note. Re-acking updates the
// note; the transition is appended to the decision log, so it survives
// restarts.
type AckRequest struct {
	Epoch int64  `json:"epoch"`
	Note  string `json:"note"`
}

func (c *Console) apiAck(w http.ResponseWriter, r *http.Request) {
	log := c.requireLog(w)
	if log == nil {
		return
	}
	var req AckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad ack body: "+err.Error(), http.StatusBadRequest)
		return
	}
	d, err := log.Ack(req.Epoch, req.Note)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, d)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
