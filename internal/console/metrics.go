package console

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"orochi/internal/epoch"
	"orochi/internal/lang"
	"orochi/internal/verifier"
)

// metrics serves /-/metrics in the Prometheus text exposition format,
// hand-rolled so the repository stays dependency-free. Counters are
// recomputed from the components' synchronized state on every scrape —
// there is no separate accumulator to drift from the ledger, and a
// restarted process resumes its audit counters from the rehydrated
// decision log rather than from zero.
func (c *Console) metrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	p := promWriter{&b}
	now := time.Now()

	p.family("orochi_uptime_seconds", "gauge", "Seconds since the process started serving.")
	p.sample("orochi_uptime_seconds", "", now.Sub(c.started).Seconds())

	// The content-keyed program cache is process-wide: the server and
	// the background verifier share compiled programs by source digest.
	langHits, langMisses := lang.CacheStats()
	p.family("orochi_lang_cache_hits", "counter", "Compiles answered by the content-keyed program cache.")
	p.sample("orochi_lang_cache_hits", "", float64(langHits))
	p.family("orochi_lang_cache_misses", "counter", "Compiles that built (and cached) a fresh program.")
	p.sample("orochi_lang_cache_misses", "", float64(langMisses))
	p.family("orochi_lang_cache_evictions", "counter", "Programs dropped by the cache's LRU bound (held references stay valid).")
	p.sample("orochi_lang_cache_evictions", "", float64(lang.CacheEvictions()))

	if c.srv != nil {
		cpu, n := c.srv.CPU()
		p.family("orochi_requests_total", "counter", "Requests executed on the audited surface.")
		p.sample("orochi_requests_total", "", float64(n))
		p.family("orochi_request_cpu_seconds_total", "counter", "Handler CPU time spent executing audited requests.")
		p.sample("orochi_request_cpu_seconds_total", "", cpu.Seconds())
		p.family("orochi_inflight_requests", "gauge", "Requests currently executing.")
		p.sample("orochi_inflight_requests", "", float64(c.srv.InFlight()))
	}

	var maxSealed int64
	if c.mgr != nil {
		st := c.mgr.Status()
		var bytesLogged int64
		for _, s := range st.Sealed {
			bytesLogged += s.Bytes
			if s.Epoch > maxSealed {
				maxSealed = s.Epoch
			}
		}
		p.family("orochi_epochs_sealed_total", "counter", "Epochs sealed by the pipeline since start.")
		p.sample("orochi_epochs_sealed_total", "", float64(len(st.Sealed)))
		p.family("orochi_epoch_bytes_logged_total", "counter", "On-disk bytes of sealed epochs (segments, reports, init snapshot).")
		p.sample("orochi_epoch_bytes_logged_total", "", float64(bytesLogged))
		p.family("orochi_epoch_current_events", "gauge", "Trace events buffered in the epoch currently being cut.")
		p.sample("orochi_epoch_current_events", "", float64(st.CurrentEvents))
		p.family("orochi_pipeline_failed", "gauge", "1 when the epoch pipeline has failed and stopped sealing, else 0.")
		p.sample("orochi_pipeline_failed", "", boolGauge(st.Err != ""))

		// Content-addressed storage: at-rest footprint vs the logical
		// bytes the manifests pin. The stores-side dedup ratio — distinct
		// from the audit-side re-execution dedup above — is >1 whenever
		// consecutive epochs share chunks (or gzip-at-rest compresses).
		if store, err := epoch.OpenChainStore(c.mgr.Dir()); err == nil {
			if chunks, storedBytes, err := store.Stats(); err == nil {
				p.family("orochi_storage_chunks", "gauge", "Chunks in the chain's content-addressed store.")
				p.sample("orochi_storage_chunks", "", float64(chunks))
				p.family("orochi_storage_bytes", "gauge", "At-rest bytes of the chunk store (compressed).")
				p.sample("orochi_storage_bytes", "", float64(storedBytes))
				p.family("orochi_storage_dedup_ratio", "gauge", "Logical sealed bytes per at-rest stored byte (>1 = chunk dedup and compression winning).")
				ratio := float64(0)
				if storedBytes > 0 {
					ratio = float64(bytesLogged) / float64(storedBytes)
				}
				p.sample("orochi_storage_dedup_ratio", "", ratio)
			}
		}
	}

	if c.scrubber != nil {
		st := c.scrubber.Status()
		p.family("orochi_scrub_runs_total", "counter", "Retrievability self-audit passes completed.")
		p.sample("orochi_scrub_runs_total", "", float64(st.Runs))
		p.family("orochi_scrub_checks_total", "counter", "Challenge-reads performed by the scrubber, by artifact kind.")
		p.sample("orochi_scrub_checks_total", `kind="chunk"`, float64(st.ChunksChecked))
		p.sample("orochi_scrub_checks_total", `kind="file"`, float64(st.FilesChecked))
		p.family("orochi_scrub_failures_total", "counter", "Failed retrievability challenges across all passes.")
		p.sample("orochi_scrub_failures_total", "", float64(st.Failures))
		p.family("orochi_scrub_last_failures", "gauge", "Failed challenges in the most recent scrub pass.")
		p.sample("orochi_scrub_last_failures", "", float64(st.LastFailures))
		if !st.LastRun.IsZero() {
			p.family("orochi_scrub_last_run_timestamp_seconds", "gauge", "Unix time of the most recent scrub pass.")
			p.sample("orochi_scrub_last_run_timestamp_seconds", "", float64(st.LastRun.Unix()))
		}
	}

	if c.auditor != nil {
		verdicts := c.auditor.Verdicts()
		var accepted, rejected int
		var sum verifier.Stats
		for _, v := range verdicts {
			if v.Accepted {
				accepted++
			} else {
				rejected++
			}
			sum.ProcOpRep += v.Stats.ProcOpRep
			sum.DBRedo += v.Stats.DBRedo
			sum.ReExec += v.Stats.ReExec
			sum.DBQuery += v.Stats.DBQuery
			sum.Other += v.Stats.Other
			sum.RequestsReplayed += v.Stats.RequestsReplayed
			sum.GroupBatches += v.Stats.GroupBatches
			sum.DedupHits += v.Stats.DedupHits
			sum.DedupMisses += v.Stats.DedupMisses
		}
		p.family("orochi_epochs_audited_total", "counter", "Epoch verdicts published, by outcome.")
		p.sample("orochi_epochs_audited_total", `verdict="accept"`, float64(accepted))
		p.sample("orochi_epochs_audited_total", `verdict="reject"`, float64(rejected))

		// Lag counts sealed epochs the auditor has not yet verified. With
		// no manager wired in (an offline chain audit) it reads 0 rather
		// than guessing at the directory.
		lastAudited := c.auditor.NextEpoch() - 1
		lag := float64(0)
		if maxSealed > lastAudited {
			lag = float64(maxSealed - lastAudited)
		}
		p.family("orochi_audit_lag_epochs", "gauge", "Sealed epochs awaiting an audit verdict.")
		p.sample("orochi_audit_lag_epochs", "", lag)

		// DBQuery is a sub-component of the re-execution phase, so the
		// phase samples are overlapping by design (re-execution includes
		// db-query); Total is the authoritative wall figure.
		p.family("orochi_audit_phase_seconds_total", "counter", "Audit CPU decomposition by verifier phase (db-query is included in re-execution).")
		p.sample("orochi_audit_phase_seconds_total", `phase="`+verifier.PhaseProcessOpReports+`"`, sum.ProcOpRep.Seconds())
		p.sample("orochi_audit_phase_seconds_total", `phase="`+verifier.PhaseRedo+`"`, sum.DBRedo.Seconds())
		p.sample("orochi_audit_phase_seconds_total", `phase="`+verifier.PhaseReExec+`"`, sum.ReExec.Seconds())
		p.sample("orochi_audit_phase_seconds_total", `phase="db-query"`, sum.DBQuery.Seconds())
		p.sample("orochi_audit_phase_seconds_total", `phase="other"`, sum.Other.Seconds())

		p.family("orochi_audit_requests_replayed_total", "counter", "Requests whose responses the audit re-derived (Phase 3 coverage).")
		p.sample("orochi_audit_requests_replayed_total", "", float64(sum.RequestsReplayed))
		p.family("orochi_audit_groups_reexecuted_total", "counter", "Control-flow group batches actually re-executed (the deduplicated unit of work).")
		p.sample("orochi_audit_groups_reexecuted_total", "", float64(sum.GroupBatches))

		// The paper's headline effect (§3.1): requests audited per
		// re-execution batch. 1.0 means no dedup; the wiki/forum/hotcrp
		// workloads sit well above it.
		p.family("orochi_audit_dedup_ratio", "gauge", "Requests replayed per re-executed group batch (higher = more SIMD dedup).")
		ratio := float64(0)
		if sum.GroupBatches > 0 {
			ratio = float64(sum.RequestsReplayed) / float64(sum.GroupBatches)
		}
		p.sample("orochi_audit_dedup_ratio", "", ratio)

		p.family("orochi_audit_dedup_cache_hits_total", "counter", "Simulated-op query results served from the dedup cache.")
		p.sample("orochi_audit_dedup_cache_hits_total", "", float64(sum.DedupHits))
		p.family("orochi_audit_dedup_cache_misses_total", "counter", "Simulated-op query results computed fresh.")
		p.sample("orochi_audit_dedup_cache_misses_total", "", float64(sum.DedupMisses))

		if log := c.decisions(); log != nil {
			unacked, scrubFlagged := 0, 0
			for _, d := range log.Decisions() {
				if !d.Accepted && d.Resolution == epoch.ResolutionOpen {
					unacked++
				}
				if d.ScrubFailed {
					scrubFlagged++
				}
			}
			p.family("orochi_rejects_unacked", "gauge", "REJECT decisions no operator has acknowledged yet.")
			p.sample("orochi_rejects_unacked", "", float64(unacked))
			p.family("orochi_scrub_flagged_epochs", "gauge", "Epochs whose stored decision carries a failed-retrievability annotation.")
			p.sample("orochi_scrub_flagged_epochs", "", float64(scrubFlagged))
		}
	}

	if c.artifacts != nil {
		st := c.artifacts.Stats()
		p.family("orochi_fleet_chunks_served_total", "counter", "Chunks served to fleet workers from this chain's store.")
		p.sample("orochi_fleet_chunks_served_total", "", float64(st.ChunksServed))
		p.family("orochi_fleet_chunk_bytes_served_total", "counter", "Chunk bytes served to fleet workers.")
		p.sample("orochi_fleet_chunk_bytes_served_total", "", float64(st.BytesServed))
	}

	if c.coord != nil {
		st := c.coord.Stats()
		p.family("orochi_fleet_workers", "gauge", "Distinct workers seen by the fleet coordinator.")
		p.sample("orochi_fleet_workers", "", float64(st.WorkersSeen))
		p.family("orochi_fleet_leases_active", "gauge", "Epoch leases currently held by workers.")
		p.sample("orochi_fleet_leases_active", "", float64(st.LeasesActive))
		p.family("orochi_fleet_leases_reassigned_total", "counter", "Leases that timed out and were reassigned.")
		p.sample("orochi_fleet_leases_reassigned_total", "", float64(st.LeasesReassigned))
		p.family("orochi_fleet_epochs_decided_total", "counter", "Epochs whose verdict the coordinator has published.")
		p.sample("orochi_fleet_epochs_decided_total", "", float64(st.EpochsDecided))
		p.family("orochi_fleet_cross_check_epochs_total", "counter", "Epochs decided by a cross-check quorum.")
		p.sample("orochi_fleet_cross_check_epochs_total", "", float64(st.EpochsCrossChecked))
		p.family("orochi_fleet_cross_check_mismatches_total", "counter", "Cross-checked epochs whose replica verdicts disagreed (REJECT with forensics naming both workers).")
		p.sample("orochi_fleet_cross_check_mismatches_total", "", float64(st.CrossCheckMismatches))
		p.family("orochi_fleet_bad_signature_posts_total", "counter", "Fleet posts refused for a missing or wrong HMAC signature.")
		p.sample("orochi_fleet_bad_signature_posts_total", "", float64(st.BadSignaturePosts))
		p.family("orochi_fleet_stale_verdicts_total", "counter", "Verdict posts ignored because their lease had expired or was never held.")
		p.sample("orochi_fleet_stale_verdicts_total", "", float64(st.StaleVerdicts))
		p.family("orochi_fleet_fetched_bytes_total", "counter", "Chunk bytes workers reported fetching over the wire.")
		p.sample("orochi_fleet_fetched_bytes_total", "", float64(st.FetchedBytes))
		p.family("orochi_fleet_cache_hit_bytes_total", "counter", "Manifest-pinned bytes workers served from their local caches instead of the wire.")
		p.sample("orochi_fleet_cache_hit_bytes_total", "", float64(st.CacheHitBytes))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// promWriter emits the exposition format: one # HELP / # TYPE pair per
// family, then its samples.
type promWriter struct{ b *bytes.Buffer }

func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(p.b, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}
