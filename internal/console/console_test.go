package console_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"orochi/internal/console"
	"orochi/internal/epoch"
	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// consoleApp is the smallest app that exercises shared state: an APC
// counter, so every request appears in the op logs and groups dedup.
var consoleApp = map[string]string{
	"hit": `
$n = apc_get("n");
if ($n === null) { $n = 0; }
apc_set("n", $n + 1);
echo "n=" . ($n + 1);
`,
}

func hits(n int) []trace.Input {
	out := make([]trace.Input, n)
	for i := range out {
		out[i] = trace.Input{Script: "hit"}
	}
	return out
}

// buildPipeline serves bursts through a recording server with the epoch
// pipeline attached, seals, audits everything, and returns the live
// components a console would be built over. tamper optionally corrupts
// recorded responses (the misbehaving-executor path).
func buildPipeline(t *testing.T, bursts int, tamper func(rid, body string) string) (*server.Server, *epoch.Manager, *epoch.Auditor) {
	t.Helper()
	prog, err := lang.Compile(consoleApp)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(prog, server.Options{Record: true, TamperResponse: tamper})
	if err := srv.Setup(nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mgr, err := epoch.StartManager(dir, srv, srv.Snapshot(), epoch.ManagerOptions{
		EpochEvents: 8,
		Log:         epoch.LogWriterOptions{SegmentEvents: 16, BatchEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bursts; b++ {
		srv.ServeAll(hits(8), 2)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	auditor := epoch.NewAuditor(prog, dir, epoch.AuditorOptions{})
	if _, err := auditor.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	return srv, mgr, auditor
}

// get fetches a console path and returns (status, body).
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestConsoleHonestPipeline drives an honest run end to end and checks
// every endpoint of the surface.
func TestConsoleHonestPipeline(t *testing.T) {
	srv, mgr, auditor := buildPipeline(t, 3, nil)
	scrubber := epoch.NewScrubber(mgr.Dir(), auditor.Decisions(), epoch.ScrubberOptions{Sample: -1})
	if _, err := scrubber.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	con := console.New(console.Options{Server: srv, Manager: mgr, Auditor: auditor, Scrubber: scrubber})
	ts := httptest.NewServer(con.Handler())
	defer ts.Close()

	sealed := len(mgr.Status().Sealed)
	if sealed == 0 {
		t.Fatal("pipeline sealed no epochs")
	}

	// Prometheus exposition.
	code, body := get(t, ts, "/-/metrics")
	if code != http.StatusOK {
		t.Fatalf("/-/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE orochi_requests_total counter",
		"orochi_requests_total 24",
		"orochi_epochs_sealed_total " + itoa(sealed),
		`orochi_epochs_audited_total{verdict="accept"} ` + itoa(sealed),
		`orochi_epochs_audited_total{verdict="reject"} 0`,
		"orochi_audit_lag_epochs 0",
		`orochi_audit_phase_seconds_total{phase="re-execution"}`,
		"orochi_audit_dedup_ratio ",
		"orochi_rejects_unacked 0",
		"orochi_storage_chunks ",
		"orochi_storage_bytes ",
		"orochi_storage_dedup_ratio ",
		"orochi_scrub_runs_total 1",
		`orochi_scrub_checks_total{kind="chunk"}`,
		"orochi_scrub_failures_total 0",
		"orochi_scrub_last_failures 0",
		"# TYPE orochi_lang_cache_hits counter",
		"orochi_lang_cache_hits ",
		"# TYPE orochi_lang_cache_misses counter",
		"orochi_lang_cache_misses ",
		"# TYPE orochi_lang_cache_evictions counter",
		"orochi_lang_cache_evictions ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/-/metrics missing %q in:\n%s", want, body)
		}
	}
	// One "hit" group across many requests: dedup ratio must exceed 1.
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "orochi_audit_dedup_ratio "); ok {
			if v == "0" || v == "1" {
				t.Fatalf("uniform workload should dedup, ratio = %s", v)
			}
		}
	}

	// Text endpoints.
	if code, body := get(t, ts, "/-/stats"); code != http.StatusOK || !strings.HasPrefix(body, "requests=24 ") {
		t.Fatalf("/-/stats: %d %q", code, body)
	}
	code, body = get(t, ts, "/-/epochs")
	if code != http.StatusOK || !strings.Contains(body, "sealed epochs: "+itoa(sealed)) ||
		!strings.Contains(body, "ACCEPT") {
		t.Fatalf("/-/epochs: %d\n%s", code, body)
	}
	if code, body := get(t, ts, "/-/"); code != http.StatusOK || !strings.Contains(body, "<h1>orochi console</h1>") {
		t.Fatalf("/-/ index: %d\n%s", code, body)
	}

	// JSON API.
	code, body = get(t, ts, "/-/api/epochs")
	if code != http.StatusOK {
		t.Fatalf("/-/api/epochs: %d", code)
	}
	var ev console.EpochsView
	if err := json.Unmarshal([]byte(body), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Sealed) != sealed || ev.Audit == nil || ev.Audit.Accepted != sealed ||
		ev.Audit.Rejected != 0 || !ev.Audit.ChainAccepted {
		t.Fatalf("/-/api/epochs view: %+v", ev)
	}

	code, body = get(t, ts, "/-/api/verdicts")
	if code != http.StatusOK {
		t.Fatalf("/-/api/verdicts: %d", code)
	}
	var ds []epoch.Decision
	if err := json.Unmarshal([]byte(body), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != sealed || !ds[0].Accepted || ds[0].Resolution != epoch.ResolutionOpen {
		t.Fatalf("/-/api/verdicts: %+v", ds)
	}

	if code, _ := get(t, ts, "/-/api/verdicts/1"); code != http.StatusOK {
		t.Fatalf("drill-down on epoch 1: %d", code)
	}
	if code, _ := get(t, ts, "/-/api/verdicts/999"); code != http.StatusNotFound {
		t.Fatalf("unknown epoch must 404, got %d", code)
	}
	if code, _ := get(t, ts, "/-/api/verdicts/xyz"); code != http.StatusBadRequest {
		t.Fatalf("non-numeric epoch must 400, got %d", code)
	}
}

// TestConsoleRejectAndAck tampers one recorded response, then walks the
// operator workflow: the reject surfaces in metrics with its forensics
// in the drill-down, and acknowledging it through the API clears the
// unacked gauge durably.
func TestConsoleRejectAndAck(t *testing.T) {
	const victim = "r000003"
	srv, mgr, auditor := buildPipeline(t, 1, func(rid, body string) string {
		if rid == victim {
			return body + "!"
		}
		return body
	})
	con := console.New(console.Options{Server: srv, Manager: mgr, Auditor: auditor})
	ts := httptest.NewServer(con.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/-/metrics")
	for _, want := range []string{
		`orochi_epochs_audited_total{verdict="reject"} 1`,
		"orochi_rejects_unacked 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	// The drill-down carries the forensics naming the tampered request.
	_, body = get(t, ts, "/-/api/verdicts/1")
	var d epoch.Decision
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.Forensics == nil || d.Forensics.RequestID != victim || d.Forensics.Diff == nil {
		t.Fatalf("reject decision lacks forensics for %s: %+v", victim, d)
	}

	// Acknowledge through the API.
	resp, err := ts.Client().Post(ts.URL+"/-/api/ack", "application/json",
		strings.NewReader(`{"epoch": 1, "note": "tamper drill"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ack: %d", resp.StatusCode)
	}
	_, body = get(t, ts, "/-/api/verdicts/1")
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Resolution != epoch.ResolutionAcked || d.Note != "tamper drill" {
		t.Fatalf("ack did not stick: %+v", d)
	}
	if _, body := get(t, ts, "/-/metrics"); !strings.Contains(body, "orochi_rejects_unacked 0") {
		t.Fatal("acknowledged reject still counted as unacked")
	}

	// Acking an unknown epoch is a 404.
	resp, err = ts.Client().Post(ts.URL+"/-/api/ack", "application/json",
		strings.NewReader(`{"epoch": 42, "note": "?"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ack of unknown epoch: %d", resp.StatusCode)
	}
}

// TestConsoleAbsentComponents: every component is optional; endpoints
// whose component is missing answer 404 while the rest keep serving.
func TestConsoleAbsentComponents(t *testing.T) {
	con := console.New(console.Options{})
	ts := httptest.NewServer(con.Handler())
	defer ts.Close()

	for _, path := range []string{"/-/stats", "/-/epochs", "/-/api/epochs", "/-/api/verdicts", "/-/api/verdicts/1"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Fatalf("%s without components: %d, want 404", path, code)
		}
	}
	// Metrics and the index degrade to what is known (uptime).
	if code, body := get(t, ts, "/-/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "orochi_uptime_seconds") || strings.Contains(body, "orochi_requests_total") {
		t.Fatalf("bare metrics: %d\n%s", code, body)
	}
	if code, body := get(t, ts, "/-/"); code != http.StatusOK || !strings.Contains(body, "orochi console") {
		t.Fatalf("bare index: %d\n%s", code, body)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
