package console

import (
	"html/template"
	"net/http"
	"time"

	"orochi/internal/epoch"
)

// index serves "/-/": one server-rendered page summarizing the live
// pipeline — no scripts, no assets, nothing but the template below, so
// it works from curl as well as a browser.
func (c *Console) index(w http.ResponseWriter, r *http.Request) {
	data := indexData{Uptime: time.Since(c.started).Round(time.Second)}
	if c.srv != nil {
		cpu, n := c.srv.CPU()
		data.HasServer = true
		data.Requests = n
		data.CPU = cpu.Round(time.Millisecond)
		data.InFlight = c.srv.InFlight()
		if secs := time.Since(c.started).Seconds(); secs > 0 {
			data.AvgRate = float64(n) / secs
		}
	}
	if c.mgr != nil {
		v := c.epochsView()
		data.Epochs = &v
	}
	if log := c.decisions(); log != nil {
		data.Decisions = log.Decisions()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, data)
}

type indexData struct {
	Uptime    time.Duration
	HasServer bool
	Requests  int64
	CPU       time.Duration
	InFlight  int64
	AvgRate   float64
	Epochs    *EpochsView
	Decisions []epoch.Decision
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>orochi console</title>
<style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 2px 8px; text-align: left; }
.accept { color: #060; } .reject { color: #a00; font-weight: bold; }
</style></head><body>
<h1>orochi console</h1>
<p>uptime {{.Uptime}} &middot;
<a href="/-/metrics">metrics</a> &middot;
<a href="/-/stats">stats</a> &middot;
<a href="/-/epochs">epochs</a> &middot;
<a href="/-/api/verdicts">verdicts (json)</a></p>

{{if .HasServer}}
<h2>serving</h2>
<table>
<tr><th>requests</th><th>cpu</th><th>in flight</th><th>avg req/s</th></tr>
<tr><td>{{.Requests}}</td><td>{{.CPU}}</td><td>{{.InFlight}}</td><td>{{printf "%.1f" .AvgRate}}</td></tr>
</table>
{{end}}

{{with .Epochs}}
<h2>epoch pipeline</h2>
<p>dir {{.Dir}} &middot; current epoch {{.CurrentEpoch}} ({{.CurrentEvents}} events buffered)
{{- if .PipelineError}} &middot; <span class="reject">pipeline error: {{.PipelineError}}</span>{{end}}
{{- with .Audit}} &middot; audit next epoch {{.NextEpoch}}, {{.Progress}}
{{- if .ChainAccepted}} &middot; <span class="accept">chain ACCEPT</span>{{else}} &middot; <span class="reject">chain REJECT</span>{{end}}{{end}}</p>
<table>
<tr><th>epoch</th><th>events</th><th>requests</th><th>segments</th><th>bytes</th><th>manifest</th></tr>
{{range .Sealed}}<tr><td>{{.Epoch}}</td><td>{{.Events}}</td><td>{{.Requests}}</td><td>{{.Segments}}</td><td>{{.Bytes}}</td><td>{{printf "%.12s" .ManifestSHA}}</td></tr>
{{end}}</table>
{{end}}

{{if .Decisions}}
<h2>verdicts</h2>
<table>
<tr><th>epoch</th><th>verdict</th><th>reason</th><th>resolution</th><th>chain</th><th></th></tr>
{{range .Decisions}}<tr>
<td>{{.Epoch}}</td>
<td>{{if .Accepted}}<span class="accept">ACCEPT</span>{{else}}<span class="reject">REJECT</span>{{end}}{{if .ScrubFailed}} <span class="reject">scrub-failed</span>{{end}}</td>
<td>{{.Reason}}</td>
<td>{{.Resolution}}{{if .Note}}: {{.Note}}{{end}}</td>
<td>{{printf "%.12s" .ChainSHA}}</td>
<td><a href="/-/api/verdicts/{{.Epoch}}">detail</a></td>
</tr>
{{end}}</table>
<p>acknowledge a reject: <code>curl -X POST /-/api/ack -d '{"epoch": N, "note": "..."}'</code></p>
{{end}}
</body></html>
`))
