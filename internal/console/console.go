// Package console is the operations surface of the reproduction: one
// http.Handler mounted under "/-/" (httpfront.ControlPrefix) that
// exposes what the paper's deployment story (§2, §5) leaves implicit —
// how an operator *watches* an audited server. It serves
//
//   - "/-/"            a minimal server-rendered HTML overview,
//   - "/-/metrics"     Prometheus text exposition (hand-rolled, no deps),
//   - "/-/stats"       the live throughput counters (text),
//   - "/-/epochs"      the epoch pipeline + verdict ledger (text),
//   - "/-/api/..."     the JSON API (epoch timeline, verdict history,
//     per-epoch drill-down with forensics, and the
//     acknowledge POST).
//
// Everything under ControlPrefix bypasses the collector, so polling any
// of these endpoints never enters the trace or perturbs the audit.
//
// Every component is optional: a Console built with only a Server
// serves stats and server metrics; adding a Manager lights up the epoch
// timeline; adding an Auditor lights up verdicts, audit metrics, and
// the decision-log API. Endpoints whose component is absent answer 404,
// so one binary path serves every deployment shape.
package console

import (
	"net/http"
	"sync"
	"time"

	"orochi/internal/epoch"
	"orochi/internal/fleet"
	"orochi/internal/server"
)

// Options selects which live components the console exposes.
type Options struct {
	// Server provides the request/CPU/in-flight counters ( /-/stats and
	// the serving metrics).
	Server *server.Server
	// Manager provides the epoch pipeline status (sealed epochs, bytes
	// logged, current epoch fill).
	Manager *epoch.Manager
	// Auditor provides the verdict ledger, audit progress, audit
	// metrics, and — through its decision log — verdict history and the
	// acknowledge workflow.
	Auditor *epoch.Auditor
	// Scrubber provides the retrievability self-audit counters
	// (/-/metrics scrub families).
	Scrubber *epoch.Scrubber
	// FleetArtifacts provides the chunk-serving counters when this
	// process serves audit artifacts to fleet workers.
	FleetArtifacts *fleet.ArtifactServer
	// FleetCoordinator provides the lease/verdict counters when this
	// process coordinates a distributed audit.
	FleetCoordinator *fleet.Coordinator
	// StartedAt anchors uptime and average-rate computations (default:
	// time of New).
	StartedAt time.Time
}

// Console serves the operations endpoints. Safe for concurrent use; all
// reads go through the components' own synchronized accessors, so
// polling the console under full load does not touch the serving hot
// path.
type Console struct {
	srv       *server.Server
	mgr       *epoch.Manager
	auditor   *epoch.Auditor
	scrubber  *epoch.Scrubber
	artifacts *fleet.ArtifactServer
	coord     *fleet.Coordinator
	started   time.Time

	// rateMu guards the previous-poll sample behind the instantaneous
	// req/s figure on /-/stats.
	rateMu   sync.Mutex
	lastAt   time.Time
	lastReqs int64
}

// New builds a console over the given components.
func New(opts Options) *Console {
	if opts.StartedAt.IsZero() {
		opts.StartedAt = time.Now()
	}
	return &Console{
		srv:       opts.Server,
		mgr:       opts.Manager,
		auditor:   opts.Auditor,
		scrubber:  opts.Scrubber,
		artifacts: opts.FleetArtifacts,
		coord:     opts.FleetCoordinator,
		started:   opts.StartedAt,
		lastAt:    opts.StartedAt,
	}
}

// Handler returns the http.Handler for the whole "/-/" surface. Mount
// it at ControlPrefix (httpfront.WithControl does exactly that);
// additional deployment-specific control endpoints can be registered on
// an outer mux with more specific patterns.
func (c *Console) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /-/{$}", c.index)
	mux.HandleFunc("GET /-/metrics", c.metrics)
	mux.HandleFunc("GET /-/stats", c.stats)
	mux.HandleFunc("GET /-/epochs", c.epochsText)
	mux.HandleFunc("GET /-/api/epochs", c.apiEpochs)
	mux.HandleFunc("GET /-/api/verdicts", c.apiVerdicts)
	mux.HandleFunc("GET /-/api/verdicts/{epoch}", c.apiVerdict)
	mux.HandleFunc("POST /-/api/ack", c.apiAck)
	return mux
}

// decisions returns the auditor's durable decision log, or nil when no
// auditor (or no log) is wired in.
func (c *Console) decisions() *epoch.DecisionLog {
	if c.auditor == nil {
		return nil
	}
	return c.auditor.Decisions()
}
