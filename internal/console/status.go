package console

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"orochi/internal/epoch"
)

// stats serves /-/stats: the live throughput counters, one line of
// key=value pairs. The read path is entirely atomic (no lock shared
// with serving), so polling it under full load never perturbs the
// executor's hot path. The format predates the console (it moved here
// from cmd/orochi-serve) and is kept stable for scripts that scrape it;
// new consumers should prefer /-/metrics.
func (c *Console) stats(w http.ResponseWriter, r *http.Request) {
	if c.srv == nil {
		http.Error(w, "no server wired into the console", http.StatusNotFound)
		return
	}
	cpu, n := c.srv.CPU()
	now := time.Now()
	avgRate := float64(n) / now.Sub(c.started).Seconds()
	// Instantaneous rate over the window since the previous poll.
	c.rateMu.Lock()
	instRate := avgRate
	if dt := now.Sub(c.lastAt).Seconds(); dt > 0 && c.lastReqs <= n {
		instRate = float64(n-c.lastReqs) / dt
	}
	c.lastAt, c.lastReqs = now, n
	c.rateMu.Unlock()
	fmt.Fprintf(w, "requests=%d cpu=%v inflight=%d reqs_per_sec=%.1f reqs_per_sec_avg=%.1f uptime=%v\n",
		n, cpu, c.srv.InFlight(), instRate, avgRate, now.Sub(c.started).Round(time.Millisecond))
}

// epochsText serves /-/epochs: manager state plus the auditor's verdict
// ledger, as human-readable text.
func (c *Console) epochsText(w http.ResponseWriter, r *http.Request) {
	if c.mgr == nil {
		http.Error(w, "epoch pipeline disabled (run with -epoch-dir)", http.StatusNotFound)
		return
	}
	writeEpochStatus(w, c.mgr, c.auditor)
}

// writeEpochStatus renders the /-/epochs body (moved verbatim from
// cmd/orochi-serve so every deployment of the console reads the same).
func writeEpochStatus(wr io.Writer, mgr *epoch.Manager, auditor *epoch.Auditor) {
	st := mgr.Status()
	fmt.Fprintf(wr, "epoch dir: %s\n", st.Dir)
	fmt.Fprintf(wr, "current epoch: %d (%d events buffered)\n", st.CurrentEpoch, st.CurrentEvents)
	if st.Err != "" {
		fmt.Fprintf(wr, "pipeline error: %s\n", st.Err)
	}
	fmt.Fprintf(wr, "sealed epochs: %d\n", len(st.Sealed))
	for _, s := range st.Sealed {
		fmt.Fprintf(wr, "  epoch %d: %d events, %d requests, %d segments, %d bytes, manifest %.12s\n",
			s.Epoch, s.Events, s.Requests, s.Segments, s.Bytes, s.ManifestSHA)
	}
	if auditor == nil {
		fmt.Fprintln(wr, "background audit: disabled")
		return
	}
	fmt.Fprintf(wr, "background audit: %s\n", auditor.Progress())
	verdicts := auditor.Verdicts()
	fmt.Fprintf(wr, "audited epochs: %d (next: %d)\n", len(verdicts), auditor.NextEpoch())
	for _, v := range verdicts {
		if v.Accepted {
			fmt.Fprintf(wr, "  epoch %d: ACCEPT in %v (chain %.12s)\n", v.Epoch, v.AuditTime, v.ChainSHA)
		} else {
			fmt.Fprintf(wr, "  epoch %d: REJECT — %s (chain %.12s)\n", v.Epoch, v.Reason, v.ChainSHA)
		}
	}
}
