package server

import (
	"context"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/trace"
)

// TestServeAllContextCancel pins the drain discipline: cancelling the
// serving context stops launching new requests but always lets
// in-flight ones finish, so the trace stays balanced (auditable) with
// however many requests made it in.
func TestServeAllContextCancel(t *testing.T) {
	prog, err := lang.Compile(map[string]string{
		"tick": `session_set("k", 1); echo "ok";`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(prog, Options{Record: true})

	inputs := make([]trace.Input, 200)
	for i := range inputs {
		inputs[i] = trace.Input{Script: "tick"}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.ServeAllContext(ctx, inputs, 4); err != context.Canceled {
		t.Fatalf("pre-cancelled ServeAllContext returned %v, want context.Canceled", err)
	}
	if n := srv.Trace().RequestCount(); n != 0 {
		t.Fatalf("pre-cancelled serve handled %d requests, want 0", n)
	}

	// Cancel partway: whatever was served must form a balanced trace.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeAllContext(ctx2, inputs, 4)
	}()
	cancel2()
	<-done
	if err := srv.Trace().Balanced(); err != nil {
		t.Fatalf("trace unbalanced after cancelled serve: %v", err)
	}
	if srv.InFlight() != 0 {
		t.Fatal("in-flight requests survived a cancelled serve")
	}
}
