package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/trace"
)

var echoApp = map[string]string{
	"echo": `echo "you said: " . $_GET["m"];`,
	"count": `
$n = apc_get("n");
if ($n === null) { $n = 0; }
apc_set("n", $n + 1);
echo "count=" . ($n + 1);
`,
	"boom": `nosuchfunction();`,
	"rows": `
$rows = db_query("SELECT v FROM kvs ORDER BY v");
$out = [];
foreach ($rows as $r) { $out[] = $r["v"]; }
echo implode(",", $out);
`,
	"add": `db_exec("INSERT INTO kvs (v) VALUES (" . intval($_GET["v"]) . ")"); echo "ok";`,
}

func newTestServer(t *testing.T, record bool) *Server {
	t.Helper()
	prog, err := lang.Compile(echoApp)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(prog, Options{Record: record})
	if err := srv.Setup([]string{`CREATE TABLE kvs (v INT)`}); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestHandleBasic(t *testing.T) {
	srv := newTestServer(t, true)
	rid, body := srv.Handle(trace.Input{Script: "echo", Get: map[string]string{"m": "hi"}})
	if body != "you said: hi" {
		t.Fatalf("body = %q", body)
	}
	if rid == "" {
		t.Fatal("rid empty")
	}
	tr := srv.Trace()
	if err := tr.Balanced(); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.ResponseOf(rid); got != body {
		t.Fatal("trace body mismatch")
	}
}

func TestHandleRuntimeErrorBecomes500(t *testing.T) {
	srv := newTestServer(t, true)
	_, body := srv.Handle(trace.Input{Script: "boom"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("body = %q", body)
	}
	// The trace is still balanced.
	if err := srv.Trace().Balanced(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleUnknownScript(t *testing.T) {
	srv := newTestServer(t, true)
	_, body := srv.Handle(trace.Input{Script: "missing"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("body = %q", body)
	}
}

func TestRecordingProducesAllReportKinds(t *testing.T) {
	srv := newTestServer(t, true)
	srv.Handle(trace.Input{Script: "count"})
	srv.Handle(trace.Input{Script: "count"})
	srv.Handle(trace.Input{Script: "add", Get: map[string]string{"v": "5"}})
	rep := srv.Reports()
	if len(rep.Groups) == 0 || len(rep.OpCounts) != 3 {
		t.Fatalf("groups=%d counts=%d", len(rep.Groups), len(rep.OpCounts))
	}
	if rep.TotalOps() == 0 {
		t.Fatal("no ops recorded")
	}
	// Identical count requests share a tag only if control flow matched:
	// first count takes the null branch, second doesn't — two tags.
	if len(rep.Groups) < 3 {
		t.Fatalf("expected >= 3 groups, got %d", len(rep.Groups))
	}
}

func TestBaselineDoesNotRecord(t *testing.T) {
	srv := newTestServer(t, false)
	srv.Handle(trace.Input{Script: "count"})
	if srv.Reports() != nil {
		t.Fatal("baseline must not produce reports")
	}
	// But it still serves correctly.
	_, body := srv.Handle(trace.Input{Script: "count"})
	if body != "count=2" {
		t.Fatalf("body = %q", body)
	}
}

func TestServeAllConcurrent(t *testing.T) {
	srv := newTestServer(t, true)
	var inputs []trace.Input
	for i := 0; i < 40; i++ {
		inputs = append(inputs, trace.Input{Script: "add", Get: map[string]string{"v": fmt.Sprint(i)}})
	}
	srv.ServeAll(inputs, 8)
	r, err := srv.Store.DB.Exec(`SELECT COUNT(*) FROM kvs`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != int64(40) {
		t.Fatalf("rows = %v", r.Rows[0][0])
	}
	if err := srv.Trace().Balanced(); err != nil {
		t.Fatal(err)
	}
	cpu, n := srv.CPU()
	if n != 40 || cpu <= 0 {
		t.Fatalf("cpu accounting: %v over %d", cpu, n)
	}
}

func TestConcurrentHandleSafety(t *testing.T) {
	// The count script's get-then-set is racy at the application level
	// (lost updates are legal executions!), so we assert only structural
	// properties: a balanced trace, per-request recording, and a final
	// counter within the legal range. The audit-level tests verify that
	// whatever interleaving happened is reproduced exactly.
	srv := newTestServer(t, true)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Handle(trace.Input{Script: "count"})
		}()
	}
	wg.Wait()
	_, body := srv.Handle(trace.Input{Script: "count"})
	var n int
	if _, err := fmt.Sscanf(body, "count=%d", &n); err != nil {
		t.Fatalf("body = %q", body)
	}
	if n < 2 || n > 31 {
		t.Fatalf("final count %d outside legal range", n)
	}
	if err := srv.Trace().Balanced(); err != nil {
		t.Fatal(err)
	}
	if len(srv.Reports().OpCounts) != 31 {
		t.Fatal("every request must have an op count")
	}
}

func TestTamperHookAffectsTraceNotExecution(t *testing.T) {
	prog, _ := lang.Compile(echoApp)
	srv := New(prog, Options{Record: true, TamperResponse: func(rid, body string) string {
		return body + "!"
	}})
	if err := srv.Setup([]string{`CREATE TABLE kvs (v INT)`}); err != nil {
		t.Fatal(err)
	}
	rid, body := srv.Handle(trace.Input{Script: "echo", Get: map[string]string{"m": "x"}})
	if body != "you said: x!" {
		t.Fatalf("body = %q", body)
	}
	if got, _ := srv.Trace().ResponseOf(rid); got != body {
		t.Fatal("collector must see the tampered response")
	}
}

func TestSetupErrors(t *testing.T) {
	prog, _ := lang.Compile(echoApp)
	srv := New(prog, Options{})
	if err := srv.Setup([]string{`NOT SQL`}); err == nil {
		t.Fatal("bad setup SQL must error")
	}
}

func TestSetupKV(t *testing.T) {
	srv := newTestServer(t, true)
	srv.SetupKV("n", int64(100))
	_, body := srv.Handle(trace.Input{Script: "count"})
	if body != "count=101" {
		t.Fatalf("body = %q", body)
	}
}
