package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// TestSwapRecorderRacingServeAll stress-tests the atomic recorder
// pointer under -race: recorders are swapped continuously while
// requests are in flight. Each request loads the recorder pointer once,
// so all of a request's records — its object ops, DB sub-log, group
// membership, op count and nondet records — must land whole in exactly
// one recorder bundle, never split across two.
//
// (The epoch pipeline only ever swaps at balanced points, where this
// holds trivially; the test deliberately swaps at unbalanced moments to
// pin the stronger per-request atomicity.)
func TestSwapRecorderRacingServeAll(t *testing.T) {
	srv := newTestServer(t, true)
	var inputs []trace.Input
	const n = 200
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			inputs = append(inputs, trace.Input{Script: "add", Get: map[string]string{"v": fmt.Sprint(i)}})
		case 1:
			inputs = append(inputs, trace.Input{Script: "count"})
		default:
			inputs = append(inputs, trace.Input{Script: "echo", Get: map[string]string{"m": fmt.Sprint(i)}})
		}
	}

	var recs []*reports.Recorder
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rec := srv.SwapRecorder(); rec != nil {
				recs = append(recs, rec)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	srv.ServeAll(inputs, 8)
	close(stop)
	swapper.Wait()
	if rec := srv.SwapRecorder(); rec != nil {
		recs = append(recs, rec)
	}
	if len(recs) < 2 {
		t.Fatalf("only %d recorders collected; swap loop did not race serving", len(recs))
	}

	// Finalize only after serving has fully drained: a request that
	// loaded a recorder before a swap legitimately keeps appending to it
	// until the request completes.
	seen := make(map[string]int) // rid -> bundle index holding its op count
	for i, rec := range recs {
		rep := rec.Finalize()
		for rid := range rep.OpCounts {
			if prev, dup := seen[rid]; dup {
				t.Fatalf("request %s recorded in bundles %d and %d", rid, prev, i)
			}
			seen[rid] = i
		}
		// Every record kind in this bundle must belong to a request whose
		// op count is in this same bundle — no record splits bundles.
		for li, log := range rep.OpLogs {
			for _, e := range log {
				if owner, ok := seen[e.RID]; !ok || owner != i {
					t.Fatalf("op for %s in %v (bundle %d) split from its op count", e.RID, rep.Objects[li], i)
				}
			}
		}
		for tag, rids := range rep.Groups {
			for _, rid := range rids {
				if owner, ok := seen[rid]; !ok || owner != i {
					t.Fatalf("group %x member %s (bundle %d) split from its op count", tag, rid, i)
				}
			}
		}
		for rid := range rep.NonDet {
			if owner, ok := seen[rid]; !ok || owner != i {
				t.Fatalf("nondet for %s (bundle %d) split from its op count", rid, i)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("bundles cover %d requests, want %d", len(seen), n)
	}
}

// TestShardsOptionDeterministicReports: with a fixed clock, seed and
// sequential serving, the reports a Shards=1 server and a Shards=N
// server record are byte-identical in canonical form (the shard count
// is invisible in the artifact).
func TestShardsOptionDeterministicReports(t *testing.T) {
	fixed := time.Unix(1700000000, 0)
	prog, err := lang.Compile(echoApp)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) []byte {
		srv := New(prog, Options{
			Record: true, Shards: shards, RandSeed: 11,
			Clock: func() time.Time { return fixed },
		})
		if err := srv.Setup([]string{`CREATE TABLE kvs (v INT)`}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			switch i % 3 {
			case 0:
				srv.Handle(trace.Input{Script: "add", Get: map[string]string{"v": fmt.Sprint(i)}})
			case 1:
				srv.Handle(trace.Input{Script: "count"})
			default:
				srv.Handle(trace.Input{Script: "rows"})
			}
		}
		return srv.Reports().CanonicalBytes()
	}
	base := run(1)
	for _, shards := range []int{2, 8, 64} {
		if got := run(shards); !bytes.Equal(base, got) {
			t.Fatalf("Shards=%d reports differ from Shards=1:\n%s\n---\n%s", shards, base, got)
		}
	}
}
