// Package server implements the executor (§2, §4): it runs the
// application program on concurrent requests against shared objects,
// optionally recording the four report kinds, and supports deliberate
// misbehaviour hooks so tests can exercise the verifier's Soundness.
//
// The server itself is UNTRUSTED in the model; nothing it produces
// (responses or reports) is assumed correct by the verifier.
//
// The per-request hot path is lock-free on server state: statistics are
// atomic counters, each request derives its RNG seed from an atomic
// ticket, and the recorder pointer sits behind an atomic.Pointer so
// SwapRecorder (epoch cuts) never contends with request handling. A
// request loads the recorder pointer once, at the start of execution,
// and uses it throughout — so all of a request's records land in one
// recorder even if a swap races the request (the epoch manager only
// swaps at balanced points, where no request is in flight at all).
package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// Options configures a server.
type Options struct {
	// Record enables report collection (the OROCHI configuration). When
	// false the server is the legacy baseline.
	Record bool
	// Clock overrides the wall clock for deterministic tests.
	Clock func() time.Time
	// RandSeed seeds the per-server random source for mt_rand.
	RandSeed int64
	// Shards is the lock-stripe count of the object store and the
	// recorder (0 = reports.DefaultShards). More stripes reduce
	// contention between concurrent requests; the recorded reports are
	// identical at every setting (reports.Recorder canonicalizes).
	Shards int
	// TamperResponse, if set, rewrites response bodies after execution —
	// a misbehaving executor. The trace records the tampered response
	// (the collector sees what clients see).
	TamperResponse func(rid, body string) string
	// Tap, if set, is installed on the embedded collector: it observes
	// every trace event in order and may cut audit periods at balanced
	// boundaries. The epoch pipeline (internal/epoch) installs its
	// manager here to tee the live trace into a durable segmented log.
	Tap trace.Tap
	// Engine selects the language execution engine (nil =
	// lang.DefaultEngine). Engines are observationally identical — the
	// recorded digests and reports do not depend on this choice — so it
	// is purely a performance knob.
	Engine lang.Engine
}

// Server is one executor instance.
type Server struct {
	Prog      *lang.Program
	Store     *object.Store
	Collector *trace.Collector

	opts Options

	// rec is nil when recording is disabled. It is swapped atomically at
	// epoch boundaries; see SwapRecorder.
	rec atomic.Pointer[reports.Recorder]

	// Hot-path statistics: accumulated handler wall time (ns), request
	// count, and requests currently being processed. Atomics, so stats
	// reads (CPU, InFlight) never contend with serving.
	cpuNanos atomic.Int64
	reqs     atomic.Int64
	inFlight atomic.Int64

	// seedTicket numbers requests; each request's RNG seed is derived
	// from (RandSeed, ticket) without any shared lock.
	seedTicket atomic.Int64
}

// New builds a server for prog.
func New(prog *lang.Program, opts Options) *Server {
	s := &Server{
		Prog:      prog,
		Store:     object.NewStoreShards(opts.Shards),
		Collector: trace.NewCollector(),
		opts:      opts,
	}
	if opts.Record {
		s.rec.Store(reports.NewRecorderShards(opts.Shards))
	}
	if opts.Tap != nil {
		s.Collector.SetTap(opts.Tap)
	}
	return s
}

// Recorder returns the current recorder (nil when recording is
// disabled). The recorder in use can change across audit periods — see
// SwapRecorder — so callers must not cache it across requests.
func (s *Server) Recorder() *reports.Recorder {
	return s.rec.Load()
}

// SwapRecorder replaces the recorder with a fresh one and returns the
// one that recorded the finished period (nil when recording is
// disabled). The caller must invoke it only at a balanced point — no
// requests in flight — or in-flight requests would split their records
// across periods. The epoch manager calls it from the collector's Cut
// hook, where balance holds by construction.
func (s *Server) SwapRecorder() *reports.Recorder {
	if !s.opts.Record {
		return nil
	}
	return s.rec.Swap(reports.NewRecorderShards(s.opts.Shards))
}

// Setup executes SQL statements against the database before the audited
// period begins (schema creation, seed data). Setup state becomes part
// of the initial snapshot handed to the verifier.
func (s *Server) Setup(stmts []string) error {
	for _, q := range stmts {
		if _, err := s.Store.DB.Exec(q); err != nil {
			return fmt.Errorf("server: setup: %w", err)
		}
	}
	return nil
}

// SetupKV seeds the key-value store before the audited period.
func (s *Server) SetupKV(key string, v lang.Value) {
	s.Store.KvSet(key, v, nil, "", 0)
}

// Snapshot captures the current object state; call it at the audit
// boundary, before serving audited requests.
func (s *Server) Snapshot() *object.Snapshot {
	return s.Store.Snapshot()
}

// Handle serves one request end to end: the collector records the
// arrival, the program runs, and the collector records the response. It
// is safe to call from many goroutines (one per in-flight request, as in
// the concurrency model of §3.2).
func (s *Server) Handle(in trace.Input) (rid, body string) {
	rid = s.Collector.BeginRequest(in)
	body = s.Process(rid, in)
	if s.opts.TamperResponse != nil {
		body = s.opts.TamperResponse(rid, body)
	}
	s.Collector.EndRequest(rid, body)
	return rid, body
}

// Process executes the program for one request without touching the
// collector — the execution half of Handle, and the entry point the
// HTTP front end (internal/httpfront) uses when an external Collector
// middleware drives the trace. The in-flight counter lives here so
// InFlight covers every serving path, not just Handle.
func (s *Server) Process(rid string, in trace.Input) string {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	start := time.Now()
	body := s.run(rid, in)
	s.cpuNanos.Add(int64(time.Since(start)))
	s.reqs.Add(1)
	return body
}

// mix64 is the splitmix64 finalizer: it spreads a seed/ticket pair into
// a well-distributed per-request RNG seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *Server) run(rid string, in trace.Input) string {
	rec := s.rec.Load()
	seed := mix64(uint64(s.opts.RandSeed+1) ^ mix64(uint64(s.seedTicket.Add(1))))

	bridge := object.NewBridge(s.Store, rec)
	defer bridge.Close()
	if s.opts.Clock != nil {
		bridge.Clock = s.opts.Clock
	}
	bridge.Rand = rand.New(rand.NewSource(int64(seed >> 1)))

	mode := lang.ModePlain
	if rec != nil {
		mode = lang.ModeRecord
	}
	res, err := lang.Run(s.Prog, lang.Config{
		Mode:   mode,
		Script: in.Script,
		RIDs:   []string{rid},
		Inputs: []lang.RequestInput{{Get: in.Get, Post: in.Post, Cookie: in.Cookie}},
		Bridge: bridge,
		Engine: s.opts.Engine,
	})
	// A faulted request is a first-class, auditable outcome: Run still
	// returned a Result whose digest is folded with the fault site, so
	// the request joins an error group and report M covers the
	// operations it issued before faulting. The recording is therefore
	// identical for completed and faulted requests; only the served
	// body differs — the client receives the canonical rendering, which
	// the verifier will reproduce when it re-executes the group.
	if rec != nil && res != nil {
		rec.RecordGroup(res.Digest, in.Script, rid)
		rec.RecordOpCount(rid, res.OpCount)
	}
	if err != nil {
		return lang.RenderFault(err)
	}
	return res.Output(0)
}

// ServeAllContext handles the inputs with the given concurrency until
// every request completes or ctx is cancelled. It models the open-loop
// client population of the experiments. Cancellation stops launching
// new requests; requests already in flight always run to completion —
// aborting one midway would leave the collector's trace unbalanced and
// the period unauditable — and the method returns ctx.Err() so callers
// can distinguish a drained run from an interrupted one.
func (s *Server) ServeAllContext(ctx context.Context, inputs []trace.Input, concurrency int) error {
	if concurrency < 1 {
		concurrency = 1
	}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for _, in := range inputs {
		// The explicit check first: when cancellation and a free slot are
		// both ready, select would pick at random, and a cancelled serve
		// must deterministically launch nothing further.
		if ctx.Err() != nil {
			wg.Wait()
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(in trace.Input) {
			defer wg.Done()
			defer func() { <-sem }()
			s.Handle(in)
		}(in)
	}
	wg.Wait()
	return nil
}

// ServeAll handles the inputs with the given concurrency, returning when
// every request has completed.
//
// Deprecated: use ServeAllContext, which supports cancellation.
func (s *Server) ServeAll(inputs []trace.Input, concurrency int) {
	_ = s.ServeAllContext(context.Background(), inputs, concurrency)
}

// NewPeriod closes the current audit period: the collector restarts and,
// when recording, a fresh recorder replaces the old one (whose reports
// the caller should already have taken via Reports). The server must be
// drained first — in-flight requests would split their records across
// periods (§4.7: "the server must be drained prior to an audit").
func (s *Server) NewPeriod() {
	s.Collector.Reset()
	s.SwapRecorder()
}

// CPU returns the accumulated handler execution time and request count —
// the server-side cost measure of §5.1. Reads are atomic and never
// contend with serving.
func (s *Server) CPU() (time.Duration, int64) {
	return time.Duration(s.cpuNanos.Load()), s.reqs.Load()
}

// InFlight reports the number of requests currently being handled.
func (s *Server) InFlight() int64 {
	return s.inFlight.Load()
}

// Reports finalizes and returns the recorded reports (nil when recording
// is disabled).
func (s *Server) Reports() *reports.Reports {
	rec := s.Recorder()
	if rec == nil {
		return nil
	}
	return rec.Finalize()
}

// Trace returns the collected trace snapshot.
func (s *Server) Trace() *trace.Trace {
	return s.Collector.Trace()
}
