// Package httpfront is the HTTP-native front door of the reproduction.
// The paper's deployment model (§2) places a trusted collector *in
// front of* a real web server, capturing requests and responses as they
// flow; this package maps that model onto net/http so the executor
// composes with the standard Go HTTP ecosystem:
//
//   - Handler turns a recording Server into an http.Handler — the
//     one-call front door used by cmd/orochi-serve, the examples, and
//     the httptest end-to-end suite.
//   - Collector is reverse-proxy-style middleware playing the trusted
//     collector's role in front of *any* handler: it records the
//     request into the trace, forwards it downstream, and records the
//     response bytes the client actually receives.
//   - Exec runs requests on the executor without touching a collector,
//     so a Collector-wrapped stack records each request exactly once.
//
// The mapping between HTTP and the model's Input is canonical and
// shared by servers, clients, and tests: the URL path names the script,
// query parameters become $_GET, form fields $_POST, and cookies
// $_COOKIE (RequestToInput / NewRequest are inverses). The trace
// records response bodies only, so status codes are likewise derived
// canonically from the body (StatusOf): the fault rendering the
// verifier reproduces maps to 500, everything else to 200.
package httpfront

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"

	"orochi/internal/server"
	"orochi/internal/trace"
)

// ControlPrefix marks URL paths outside the audited surface. The
// Collector middleware passes them through unrecorded, so operational
// endpoints (/-/stats, /-/epochs, health checks) can live behind the
// same front door without polluting the trace.
const ControlPrefix = "/-/"

// RequestToInput maps an HTTP request onto the model's Input: the URL
// path (less its surrounding slashes) names the script — "index" when
// empty — query parameters become $_GET, POST form fields $_POST, and
// cookies $_COOKIE. Repeated keys keep their first value; the model's
// superglobals are flat string maps.
func RequestToInput(r *http.Request) (trace.Input, error) {
	script := strings.Trim(r.URL.Path, "/")
	if script == "" {
		script = "index"
	}
	in := trace.Input{Script: script, Get: map[string]string{}, Post: map[string]string{}, Cookie: map[string]string{}}
	for k, vs := range r.URL.Query() {
		if len(vs) > 0 {
			in.Get[k] = vs[0]
		}
	}
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			return in, err
		}
		for k, vs := range r.PostForm {
			if len(vs) > 0 {
				in.Post[k] = vs[0]
			}
		}
	}
	for _, c := range r.Cookies() {
		in.Cookie[c.Name] = c.Value
	}
	return in, nil
}

// NewRequest is RequestToInput's inverse: it builds the HTTP request
// that maps back onto in when received — GET with a query string, or a
// form POST when in.Post is non-empty. base is the server's URL
// ("http://127.0.0.1:8090"); the load generator in cmd/orochi-serve and
// the end-to-end tests share it.
func NewRequest(base string, in trace.Input) (*http.Request, error) {
	target := strings.TrimSuffix(base, "/") + "/" + in.Script
	if len(in.Get) > 0 {
		q := url.Values{}
		for k, v := range in.Get {
			q.Set(k, v)
		}
		target += "?" + q.Encode()
	}
	var req *http.Request
	var err error
	if len(in.Post) > 0 {
		form := url.Values{}
		for k, v := range in.Post {
			form.Set(k, v)
		}
		req, err = http.NewRequest(http.MethodPost, target, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		req, err = http.NewRequest(http.MethodGet, target, nil)
	}
	if err != nil {
		return nil, err
	}
	for k, v := range in.Cookie {
		req.AddCookie(&http.Cookie{Name: k, Value: v})
	}
	return req, nil
}

// StatusOf returns the canonical HTTP status for an executor response
// body. The trace records bodies only, so the status must be a pure
// function of the body: the canonical fault rendering (lang.RenderFault,
// "HTTP 500: ...") maps to 500 Internal Server Error, everything else
// to 200 OK. Serving and re-verification therefore agree on the status
// line without it being audit evidence.
func StatusOf(body string) int {
	if strings.HasPrefix(body, "HTTP 500") {
		return http.StatusInternalServerError
	}
	return http.StatusOK
}

// WriteResponse renders an executor response body to w with its
// canonical status code.
func WriteResponse(w http.ResponseWriter, body string) {
	if code := StatusOf(body); code != http.StatusOK {
		w.WriteHeader(code)
	}
	_, _ = io.WriteString(w, body)
}

// recordedKey carries the collector's view of a request down the
// handler chain.
type recordedKey struct{}

type recorded struct {
	rid string
	in  trace.Input
}

// WithRecorded returns a context carrying the requestID and parsed
// input the collector recorded for this request. Exec uses it to run
// exactly the input that entered the trace, under the trace's rid.
func WithRecorded(ctx context.Context, rid string, in trace.Input) context.Context {
	return context.WithValue(ctx, recordedKey{}, recorded{rid: rid, in: in})
}

// RecordedFrom extracts the collector-recorded (rid, input) pair from
// ctx, reporting whether a Collector upstream recorded this request.
func RecordedFrom(ctx context.Context) (rid string, in trace.Input, ok bool) {
	rec, ok := ctx.Value(recordedKey{}).(recorded)
	return rec.rid, rec.in, ok
}

// capture buffers a downstream handler's response so the Collector can
// record it before a byte leaves for the client — the middlebox sits in
// front, and the trace must hold exactly what the client then sees.
type capture struct {
	header http.Header
	code   int
	body   strings.Builder
}

func newCapture() *capture { return &capture{header: make(http.Header)} }

func (c *capture) Header() http.Header { return c.header }

func (c *capture) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
}

func (c *capture) Write(p []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.body.Write(p)
}

// Collector wraps next with the trusted collector's role (§2): every
// request under the audited surface is recorded into c on arrival, the
// downstream response is captured whole, recorded as the request's
// response event, and only then forwarded to the client. Paths under
// ControlPrefix bypass recording entirely.
//
// The recorded body is exactly the bytes next wrote — if a misbehaving
// layer below tampers with a response, the trace holds the tampered
// bytes the client saw, and the audit will hold the executor to them.
// A request the middleware cannot parse is refused with 400 before
// anything enters the executor, so it never appears in the trace.
//
// The downstream handler receives the recorded (rid, input) pair via
// the request context (RecordedFrom); Exec uses it so each request is
// recorded exactly once, by the outermost collector.
func Collector(c *trace.Collector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, ControlPrefix) {
			next.ServeHTTP(w, r)
			return
		}
		in, err := RequestToInput(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rid := c.BeginRequest(in)
		cap := newCapture()
		next.ServeHTTP(cap, r.WithContext(WithRecorded(r.Context(), rid, in)))
		body := cap.body.String()
		c.EndRequest(rid, body)
		for k, vs := range cap.header {
			w.Header()[k] = vs
		}
		if cap.code != 0 && cap.code != http.StatusOK {
			w.WriteHeader(cap.code)
		}
		_, _ = io.WriteString(w, body)
	})
}

// Exec returns an http.Handler that executes requests on srv. Under a
// Collector it runs the recorded input under the trace's rid (without
// touching srv's embedded collector — the middleware already recorded
// the request); standalone it falls back to srv.Handle, which records
// into the embedded collector, so Exec alone is still a complete,
// auditable front end. Paths under ControlPrefix answer 404 without
// touching the executor: they are operational surface, and letting
// them fall through would record every health-check probe into the
// trace as an unknown-script fault.
//
// Note that server.Options.TamperResponse is a Handle-level hook and
// does not apply on the Collector path; at the HTTP layer a misbehaving
// executor is modelled by composing a tampering middleware between
// Collector and Exec (see the end-to-end tests).
func Exec(srv *server.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rid, in, ok := RecordedFrom(r.Context()); ok {
			WriteResponse(w, srv.Process(rid, in))
			return
		}
		if strings.HasPrefix(r.URL.Path, ControlPrefix) {
			// Mount real control endpoints on a mux in front (as
			// cmd/orochi-serve does); the executor itself has none.
			http.NotFound(w, r)
			return
		}
		in, err := RequestToInput(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_, body := srv.Handle(in)
		WriteResponse(w, body)
	})
}

// Handler is the one-call HTTP front door: srv's embedded collector in
// front of its executor, composed from Collector and Exec. Mount it on
// any mux or serve it directly; audit artifacts come from srv.Trace()
// and srv.Reports() exactly as with in-process srv.Handle calls.
func Handler(srv *server.Server) http.Handler {
	return Collector(srv.Collector, Exec(srv))
}

// WithControl composes the complete front door: control mounted under
// ControlPrefix (typically internal/console's handler) and audited
// everywhere else. The audited surface still refuses ControlPrefix
// paths the control handler leaves unrouted — the outer mux only ever
// sends them to control, whose own mux answers 404 for strays.
func WithControl(control, audited http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle(ControlPrefix, control)
	mux.Handle("/", audited)
	return mux
}
