package httpfront

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// The end-to-end suite: the wiki workload served over REAL HTTP —
// through the Collector middleware, an httptest server, and concurrent
// net/http clients — must round-trip to an ACCEPT audit, while a
// tampered response body or a dropped request flips the verdict to
// REJECT. This is the paper's deployment picture (§2: trusted collector
// in front of a web server) executed literally.

type httpServed struct {
	prog *lang.Program
	srv  *server.Server
	snap *object.Snapshot
}

// serveWikiHTTP drives n wiki requests through a real HTTP stack:
// Collector middleware in front of mw(Exec(srv)) on an httptest server,
// with `conc` concurrent clients. mw (optional) models a misbehaving
// serving stack between the collector and the executor.
func serveWikiHTTP(t *testing.T, n, conc int, mw func(http.Handler) http.Handler) *httpServed {
	t.Helper()
	w := workload.Wiki(workload.WikiParams{Requests: n, Pages: 20, ZipfS: 0.53, Seed: 17})
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(w.App.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()

	var inner http.Handler = Exec(srv)
	if mw != nil {
		inner = mw(inner)
	}
	ts := httptest.NewServer(Collector(srv.Collector, inner))
	defer ts.Close()

	client := ts.Client()
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for _, in := range w.Requests {
		wg.Add(1)
		sem <- struct{}{}
		go func(in trace.Input) {
			defer wg.Done()
			defer func() { <-sem }()
			req, err := NewRequest(ts.URL, in)
			if err == nil {
				var resp *http.Response
				if resp, err = client.Do(req); err == nil {
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
			}
		}(in)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if got := srv.Trace().RequestCount(); got != len(w.Requests) {
		t.Fatalf("trace holds %d requests, served %d", got, len(w.Requests))
	}
	return &httpServed{prog: prog, srv: srv, snap: snap}
}

// TestHTTPServeAuditAccepts: honest traffic captured at the HTTP
// boundary audits ACCEPT — concurrently driven, so CI's -race run also
// exercises the collector middleware against the lock-free serving hot
// path.
func TestHTTPServeAuditAccepts(t *testing.T) {
	s := serveWikiHTTP(t, 160, 8, nil)
	res, err := verifier.AuditContext(context.Background(), s.prog, s.srv.Trace(),
		s.srv.Reports(), s.snap, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest HTTP-served period rejected: %s", res.Reason)
	}
	if res.Stats.RequestsReplayed != 160 {
		t.Fatalf("replayed %d requests, want 160", res.Stats.RequestsReplayed)
	}
}

// TestHTTPTamperedResponseRejects: a layer between the collector and
// the executor rewrites one response body. The collector records what
// the client saw; the audit must REJECT.
func TestHTTPTamperedResponseRejects(t *testing.T) {
	var tampered atomic.Int64
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/view" && tampered.CompareAndSwap(0, 1) {
				cap := newCapture()
				next.ServeHTTP(cap, r)
				// Flip the body the client (and the collector) sees.
				_, _ = io.WriteString(w, cap.body.String()+"<!-- tampered -->")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	s := serveWikiHTTP(t, 120, 6, mw)
	if tampered.Load() == 0 {
		t.Fatal("tamper middleware never fired")
	}
	res, err := verifier.AuditContext(context.Background(), s.prog, s.srv.Trace(),
		s.srv.Reports(), s.snap, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered HTTP response audited ACCEPT; want REJECT")
	}
}

// TestHTTPDroppedRequestRejects: the serving stack swallows one request
// — it enters the trace at the collector but never reaches the
// executor, so no re-execution can cover it and the audit must REJECT.
func TestHTTPDroppedRequestRejects(t *testing.T) {
	var dropped atomic.Int64
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/view" && dropped.CompareAndSwap(0, 1) {
				return // swallowed: no execution, empty response
			}
			next.ServeHTTP(w, r)
		})
	}
	s := serveWikiHTTP(t, 120, 6, mw)
	if dropped.Load() == 0 {
		t.Fatal("drop middleware never fired")
	}
	res, err := verifier.AuditContext(context.Background(), s.prog, s.srv.Trace(),
		s.srv.Reports(), s.snap, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("dropped request audited ACCEPT; want REJECT")
	}
}

// TestHTTPCancellationDeterminism: audits of an HTTP-captured period,
// cancelled at random wall-clock points, must each either return the
// typed cancellation error or agree with the uncancelled verdict — the
// HTTP capture path feeds the same determinism contract the in-process
// path honours.
func TestHTTPCancellationDeterminism(t *testing.T) {
	s := serveWikiHTTP(t, 120, 6, nil)
	tr, rep := s.srv.Trace(), s.srv.Reports()
	base, err := verifier.AuditContext(context.Background(), s.prog, tr, rep, s.snap, verifier.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Accepted {
		t.Fatalf("baseline rejected: %s", base.Reason)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(rng.Intn(1200))*time.Microsecond, cancel)
		res, err := verifier.AuditContext(ctx, s.prog, tr, rep, s.snap, verifier.Options{Workers: 4})
		timer.Stop()
		cancel()
		if err != nil {
			if !errors.Is(err, verifier.ErrAuditCanceled) {
				t.Fatalf("non-cancellation error from cancelled audit: %v", err)
			}
			continue
		}
		if res.Accepted != base.Accepted || res.Reason != base.Reason {
			t.Fatalf("cancelled audit verdict (%v, %q) differs from baseline (%v, %q)",
				res.Accepted, res.Reason, base.Accepted, base.Reason)
		}
	}
}
