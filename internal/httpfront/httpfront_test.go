package httpfront

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
)

func compileTestApp(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Compile(map[string]string{
		"echo":  `echo "get=" . $_GET["a"] . " post=" . $_POST["b"] . " cookie=" . $_COOKIE["c"];`,
		"index": `echo "home";`,
		"boom":  `undefined_function();`,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRequestToInputMapping(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/echo?a=1&a=2&x=y", nil)
	r.AddCookie(&http.Cookie{Name: "c", Value: "choc"})
	in, err := RequestToInput(r)
	if err != nil {
		t.Fatal(err)
	}
	if in.Script != "echo" || in.Get["a"] != "1" || in.Get["x"] != "y" || in.Cookie["c"] != "choc" {
		t.Fatalf("bad mapping: %+v", in)
	}

	form := url.Values{"b": {"two"}}
	r = httptest.NewRequest(http.MethodPost, "/echo", strings.NewReader(form.Encode()))
	r.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	in, err = RequestToInput(r)
	if err != nil {
		t.Fatal(err)
	}
	if in.Script != "echo" || in.Post["b"] != "two" {
		t.Fatalf("bad POST mapping: %+v", in)
	}

	// The empty path routes to the "index" script.
	in, err = RequestToInput(httptest.NewRequest(http.MethodGet, "/", nil))
	if err != nil {
		t.Fatal(err)
	}
	if in.Script != "index" {
		t.Fatalf("empty path routed to %q, want index", in.Script)
	}
}

// TestNewRequestRoundTrip pins NewRequest and RequestToInput as
// inverses: any Input pushed through a real HTTP hop maps back onto
// itself.
func TestNewRequestRoundTrip(t *testing.T) {
	inputs := []trace.Input{
		{Script: "view", Get: map[string]string{"page": "p one & two"}},
		{Script: "edit", Get: map[string]string{"page": "x"}, Post: map[string]string{"text": "a=b&c;\nd"}},
		{Script: "whoami", Cookie: map[string]string{"session": "s-1"}},
		{Script: "index"},
	}
	for _, want := range inputs {
		var got trace.Input
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			in, err := RequestToInput(r)
			if err != nil {
				t.Error(err)
			}
			got = in
		}))
		req, err := NewRequest(ts.URL, want)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ts.Client().Do(req); err != nil {
			t.Fatal(err)
		}
		ts.Close()
		if got.Script != want.Script {
			t.Fatalf("script %q round-tripped to %q", want.Script, got.Script)
		}
		for k, v := range want.Get {
			if got.Get[k] != v {
				t.Fatalf("GET %q: got %q want %q", k, got.Get[k], v)
			}
		}
		for k, v := range want.Post {
			if got.Post[k] != v {
				t.Fatalf("POST %q: got %q want %q", k, got.Post[k], v)
			}
		}
		for k, v := range want.Cookie {
			if got.Cookie[k] != v {
				t.Fatalf("cookie %q: got %q want %q", k, got.Cookie[k], v)
			}
		}
	}
}

// TestCanonicalStatusCodes pins the body→status mapping end to end:
// a faulted script serves 500 with the canonical rendering, a healthy
// one serves 200.
func TestCanonicalStatusCodes(t *testing.T) {
	srv := server.New(compileTestApp(t), server.Options{Record: true})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy script served %d, want 200", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted script served %d, want 500", resp.StatusCode)
	}

	// The trace recorded both: request + response per hit.
	if got := srv.Trace().RequestCount(); got != 2 {
		t.Fatalf("trace holds %d requests, want 2", got)
	}
	if err := srv.Trace().Balanced(); err != nil {
		t.Fatal(err)
	}
}

// TestControlPrefixBypassesTrace pins that /-/ paths pass through the
// Collector middleware without entering the audited surface.
func TestControlPrefixBypassesTrace(t *testing.T) {
	col := trace.NewCollector()
	var hits int
	h := Collector(col, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		_, _ = w.Write([]byte("ok"))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	if _, err := ts.Client().Get(ts.URL + "/-/stats"); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("control request did not reach the inner handler (hits=%d)", hits)
	}
	if n := col.Trace().Len(); n != 0 {
		t.Fatalf("control request leaked %d events into the trace", n)
	}
}

// TestCollectorRefusesUnparseable pins that a request the middlebox
// cannot capture is refused with 400 before anything enters the
// executor: nothing may appear in the trace for it.
func TestCollectorRefusesUnparseable(t *testing.T) {
	col := trace.NewCollector()
	inner := 0
	h := Collector(col, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { inner++ }))
	ts := httptest.NewServer(h)
	defer ts.Close()

	// An invalid percent-escape in the form body fails ParseForm.
	resp, err := ts.Client().Post(ts.URL+"/edit", "application/x-www-form-urlencoded",
		strings.NewReader("text=%zz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable request served %d, want 400", resp.StatusCode)
	}
	if inner != 0 {
		t.Fatal("unparseable request reached the executor")
	}
	if n := col.Trace().Len(); n != 0 {
		t.Fatalf("refused request left %d events in the trace", n)
	}
}

// TestHandlerControlPathsUnrecorded pins that a bare Handler mount (no
// mux in front) keeps /-/ paths entirely outside the audited surface:
// the Collector skips them AND Exec's fallback must not record them as
// unknown-script faults — a monitor polling /-/stats must never pollute
// the trace.
func TestHandlerControlPathsUnrecorded(t *testing.T) {
	srv := server.New(compileTestApp(t), server.Options{Record: true})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/-/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bare Handler served %d for a control path, want 404", resp.StatusCode)
	}
	if n := srv.Trace().Len(); n != 0 {
		t.Fatalf("control path left %d events in the trace", n)
	}
	if _, reqs := srv.CPU(); reqs != 0 {
		t.Fatalf("control path reached the executor (%d requests processed)", reqs)
	}
}

// TestExecStandaloneRecords pins Exec's fallback path: without a
// Collector upstream it must still record through the server's embedded
// collector, keeping the period auditable.
func TestExecStandaloneRecords(t *testing.T) {
	srv := server.New(compileTestApp(t), server.Options{Record: true})
	ts := httptest.NewServer(Exec(srv))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.Trace().RequestCount() != 1 {
		t.Fatal("standalone Exec did not record into the embedded collector")
	}
}
