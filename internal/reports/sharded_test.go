package reports

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"orochi/internal/lang"
)

// driveRecorder replays a fixed, deterministic recording history into
// rec: registers across several names, KV ops across several keys, DB
// sessions with out-of-order engine seqs, groups, op counts and nondet.
func driveRecorder(rec *Recorder) {
	for i := 0; i < 40; i++ {
		rid := fmt.Sprintf("r%03d", i)
		reg := fmt.Sprintf("sess:%d", i%5)
		rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: reg}, OpEntry{
			RID: rid, Opnum: 1, Type: lang.RegisterWrite, Key: reg, Value: fmt.Sprintf("i:%d;", i),
		})
		key := fmt.Sprintf("k%d", i%7)
		rec.RecordObjOp(ObjectID{Kind: KVObj, Name: "apc"}, OpEntry{
			RID: rid, Opnum: 2, Type: lang.KvSet, Key: key, Value: fmt.Sprintf("i:%d;", i*i),
		})
		rec.RecordObjOp(ObjectID{Kind: KVObj, Name: "apc"}, OpEntry{
			RID: rid, Opnum: 3, Type: lang.KvGet, Key: fmt.Sprintf("k%d", (i+1)%7),
		})
		sess := rec.NewSession()
		// Engine seqs deliberately not in recording order.
		sess.RecordDBOp(int64(100-i), OpEntry{
			RID: rid, Opnum: 4, Type: lang.DBOp, Stmts: []string{fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i)}, OK: true,
		})
		sess.Close()
		rec.RecordGroup(uint64(i%3), fmt.Sprintf("script%d", i%3), rid)
		rec.RecordOpCount(rid, 4)
		rec.RecordNonDet(rid, NDEntry{Fn: "time", Value: fmt.Sprintf("i:%d;", 1000+i)})
	}
}

// TestShardedRecorderEquivalence pins the canonicalization claim: for
// the same recorded history, a recorder with one stripe and a recorder
// with many stripes serialize to byte-identical reports.
func TestShardedRecorderEquivalence(t *testing.T) {
	var bundles [][]byte
	for _, shards := range []int{1, 2, 8, 64} {
		rec := NewRecorderShards(shards)
		driveRecorder(rec)
		bundles = append(bundles, rec.Finalize().CanonicalBytes())
	}
	for i := 1; i < len(bundles); i++ {
		if !bytes.Equal(bundles[0], bundles[i]) {
			t.Fatalf("reports differ between stripe counts:\n--- shards=1 ---\n%s\n--- variant %d ---\n%s",
				bundles[0], i, bundles[i])
		}
	}
}

// TestCanonicalBytesDeterministic guards against map-iteration order
// leaking into the canonical rendering.
func TestCanonicalBytesDeterministic(t *testing.T) {
	rec := NewRecorder()
	driveRecorder(rec)
	rep := rec.Finalize()
	a := rep.CanonicalBytes()
	for i := 0; i < 20; i++ {
		if !bytes.Equal(a, rep.CanonicalBytes()) {
			t.Fatal("CanonicalBytes is not deterministic")
		}
	}
	// And a re-finalized recorder yields the same canonical bytes.
	if !bytes.Equal(a, rec.Finalize().CanonicalBytes()) {
		t.Fatal("Finalize is not stable for an unchanged recorder")
	}
}

// TestKVLogMergePreservesPerKeyOrder issues concurrent KV ops on many
// keys and checks the merged apc log: per key, the sets appear in their
// issue order (each goroutine owns one key and writes ascending values).
func TestKVLogMergePreservesPerKeyOrder(t *testing.T) {
	rec := NewRecorderShards(8)
	const keys, opsPerKey = 10, 50
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key%d", k)
			for i := 0; i < opsPerKey; i++ {
				rec.RecordObjOp(ObjectID{Kind: KVObj, Name: "apc"}, OpEntry{
					RID: fmt.Sprintf("r-%d-%d", k, i), Opnum: 1, Type: lang.KvSet,
					Key: key, Value: fmt.Sprintf("i:%d;", i),
				})
			}
		}(k)
	}
	wg.Wait()
	rep := rec.Finalize()
	idx := rep.LogIndex(ObjectID{Kind: KVObj, Name: "apc"})
	if idx < 0 {
		t.Fatal("apc log missing")
	}
	log := rep.OpLogs[idx]
	if len(log) != keys*opsPerKey {
		t.Fatalf("merged log has %d entries, want %d", len(log), keys*opsPerKey)
	}
	next := make(map[string]int, keys)
	for i, e := range log {
		want := fmt.Sprintf("i:%d;", next[e.Key])
		if e.Value != want {
			t.Fatalf("entry %d key %s: value %q out of per-key order (want %q)", i, e.Key, e.Value, want)
		}
		next[e.Key]++
	}
}

// TestFinalizeObjectOrderCanonical: objects are emitted sorted by
// (Kind, Name) no matter the touch order, so the artifact cannot leak
// stripe layout or discovery timing.
func TestFinalizeObjectOrderCanonical(t *testing.T) {
	rec := NewRecorder()
	// Touch in reverse-canonical order.
	sess := rec.NewSession()
	sess.RecordDBOp(1, OpEntry{RID: "r1", Opnum: 1, Type: lang.DBOp, Stmts: []string{"SELECT a FROM t"}, OK: true})
	sess.Close()
	rec.RecordObjOp(ObjectID{Kind: KVObj, Name: "apc"}, OpEntry{RID: "r1", Opnum: 2, Type: lang.KvGet, Key: "k"})
	rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: "zz"}, OpEntry{RID: "r1", Opnum: 3, Type: lang.RegisterRead, Key: "zz"})
	rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: "aa"}, OpEntry{RID: "r1", Opnum: 4, Type: lang.RegisterRead, Key: "aa"})
	rec.RecordOpCount("r1", 4)
	rep := rec.Finalize()
	want := []ObjectID{
		{Kind: RegisterObj, Name: "aa"},
		{Kind: RegisterObj, Name: "zz"},
		{Kind: KVObj, Name: "apc"},
		{Kind: DBObj, Name: "main"},
	}
	if len(rep.Objects) != len(want) {
		t.Fatalf("objects = %v", rep.Objects)
	}
	for i, id := range want {
		if rep.Objects[i] != id {
			t.Fatalf("object %d = %v, want %v (full: %v)", i, rep.Objects[i], id, rep.Objects)
		}
	}
}
