package reports

import (
	"sort"
	"sync"
)

// Recorder is the server-side recording library (§4.4, §4.6, §4.7). It
// is safe for concurrent use by many request-handler goroutines.
//
// Register and KV operations are appended to per-object logs under the
// issuing object's lock (the object layer calls the record function
// while holding it), so log order equals the objects' linearization
// order. DB operations are recorded per-session into sub-logs carrying
// the global sequence number that the database engine assigned inside
// its commit critical section; Finalize "stitches" the sub-logs by
// sorting on that sequence number, exactly like OROCHI's stitching
// daemon (§4.7).
type Recorder struct {
	mu       sync.Mutex
	objIdx   map[ObjectID]int
	objects  []ObjectID
	opLogs   [][]OpEntry
	groups   map[uint64][]string
	scripts  map[uint64]string
	opCounts map[string]int
	nonDet   map[string][]NDEntry
	dbSubs   [][]dbSubEntry
}

type dbSubEntry struct {
	seq   int64
	entry OpEntry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		objIdx:   make(map[ObjectID]int),
		groups:   make(map[uint64][]string),
		scripts:  make(map[uint64]string),
		opCounts: make(map[string]int),
		nonDet:   make(map[string][]NDEntry),
	}
}

// RecordObjOp appends an operation to the named object's log. The caller
// must invoke it while holding the object's lock so that log order
// matches the linearization order.
func (r *Recorder) RecordObjOp(id ObjectID, e OpEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.objIdx[id]
	if !ok {
		idx = len(r.objects)
		r.objIdx[id] = idx
		r.objects = append(r.objects, id)
		r.opLogs = append(r.opLogs, nil)
	}
	r.opLogs[idx] = append(r.opLogs[idx], e)
}

// Session is a per-request-handler recording context holding the DB
// sub-log (per-connection logging, §4.7).
type Session struct {
	rec *Recorder
	sub []dbSubEntry
}

// NewSession opens a recording session for one request handler.
func (r *Recorder) NewSession() *Session {
	return &Session{rec: r}
}

// RecordDBOp appends a DB transaction to the session's sub-log; seq is
// the global sequence number the engine assigned at commit.
func (s *Session) RecordDBOp(seq int64, e OpEntry) {
	s.sub = append(s.sub, dbSubEntry{seq: seq, entry: e})
}

// Close hands the session's sub-log to the recorder.
func (s *Session) Close() {
	if len(s.sub) == 0 {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	s.rec.dbSubs = append(s.rec.dbSubs, s.sub)
	s.sub = nil
}

// RecordGroup assigns a request to its control-flow group.
func (r *Recorder) RecordGroup(tag uint64, script, rid string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups[tag] = append(r.groups[tag], rid)
	r.scripts[tag] = script
}

// RecordOpCount records report M for one request.
func (r *Recorder) RecordOpCount(rid string, count int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opCounts[rid] = count
}

// RecordNonDet appends a non-deterministic return value for rid.
func (r *Recorder) RecordNonDet(rid string, e NDEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nonDet[rid] = append(r.nonDet[rid], e)
}

// Finalize stitches the DB sub-logs into the database object's log and
// returns the complete report bundle. The recorder remains usable; a
// later Finalize reflects additional recording.
func (r *Recorder) Finalize() *Reports {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Reports{
		Groups:   make(map[uint64][]string, len(r.groups)),
		Scripts:  make(map[uint64]string, len(r.scripts)),
		OpCounts: make(map[string]int, len(r.opCounts)),
		NonDet:   make(map[string][]NDEntry, len(r.nonDet)),
	}
	for k, v := range r.groups {
		out.Groups[k] = append([]string(nil), v...)
	}
	for k, v := range r.scripts {
		out.Scripts[k] = v
	}
	for k, v := range r.opCounts {
		out.OpCounts[k] = v
	}
	for k, v := range r.nonDet {
		out.NonDet[k] = append([]NDEntry(nil), v...)
	}
	out.Objects = append([]ObjectID(nil), r.objects...)
	out.OpLogs = make([][]OpEntry, len(r.opLogs))
	for i, log := range r.opLogs {
		out.OpLogs[i] = append([]OpEntry(nil), log...)
	}
	// Stitch DB sub-logs: merge and sort by engine sequence number.
	var merged []dbSubEntry
	for _, sub := range r.dbSubs {
		merged = append(merged, sub...)
	}
	if len(merged) > 0 {
		sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
		id := ObjectID{Kind: DBObj, Name: "main"}
		idx := -1
		for i, o := range out.Objects {
			if o == id {
				idx = i
				break
			}
		}
		if idx == -1 {
			out.Objects = append(out.Objects, id)
			out.OpLogs = append(out.OpLogs, nil)
			idx = len(out.Objects) - 1
		}
		entries := make([]OpEntry, len(merged))
		for i, m := range merged {
			entries[i] = m.entry
		}
		out.OpLogs[idx] = entries
	}
	return out
}
