package reports

import (
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the server-side recording library (§4.4, §4.6, §4.7). It
// is safe for concurrent use by many request-handler goroutines.
//
// The recorder is lock-striped: record state is spread over Shards
// stripes, each guarded by its own mutex, so concurrent request handlers
// touching unrelated objects (or unrelated requests) never contend on a
// global recorder lock. Striping never changes the produced reports —
// Finalize merges the stripes into a canonical, stripe-count-independent
// artifact (see below) — it only changes which mutex an append takes.
//
// Ordering guarantees, per record kind:
//
//   - Register operations are appended to per-object logs while the
//     caller holds the object's lock (the object layer invokes
//     RecordObjOp inside its shard's critical section), and one register
//     always lands in one stripe, so log order equals the register's
//     linearization order.
//
//   - KV-store operations are striped by *key* (so that the single
//     logical KV object does not re-serialize all requests through one
//     stripe). Each op draws a ticket from an atomic sequence counter
//     while the caller holds the key's object-shard lock; Finalize
//     merges the stripes by ticket into the KV object's single log. The
//     merged order is a legal linearization of the KV store: ops on the
//     same key are ordered by the shard lock under which their tickets
//     were drawn, ops on different keys commute, and the counter is
//     monotonic in real time, so the log also respects the trace's
//     external (time-precedence) order.
//
//   - DB operations are recorded per-session into sub-logs carrying the
//     global sequence number that the database engine assigned inside
//     its commit critical section; Finalize "stitches" the sub-logs by
//     sorting on that sequence number, exactly like OROCHI's stitching
//     daemon (§4.7).
//
//   - Control-flow groups are striped by tag, and op counts /
//     non-determinism records by requestID, so each map key's entries
//     live whole in one stripe and per-key order is preserved.
type Recorder struct {
	shards []recorderShard
	// kvSeq tickets KV-store operations into a single total order (see
	// the linearization argument above).
	kvSeq atomic.Int64
	// subRR round-robins finished DB sub-logs across stripes; stitching
	// sorts by engine sequence number, so placement is immaterial.
	subRR atomic.Int64
}

// recorderShard is one lock stripe of the recorder.
type recorderShard struct {
	mu       sync.Mutex
	objIdx   map[ObjectID]int
	objects  []ObjectID
	opLogs   [][]OpEntry
	kvLogs   map[ObjectID][]seqEntry
	groups   map[uint64][]string
	scripts  map[uint64]string
	opCounts map[string]int
	nonDet   map[string][]NDEntry
	dbSubs   [][]seqEntry
}

// seqEntry is an operation paired with the sequence number that orders
// it: the recorder's ticket for KV ops, the engine's commit sequence
// for DB ops.
type seqEntry struct {
	seq   int64
	entry OpEntry
}

// mergeBySeq sorts the entries by sequence number and unwraps them into
// a plain operation log.
func mergeBySeq(entries []seqEntry) []OpEntry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]OpEntry, len(entries))
	for i, e := range entries {
		out[i] = e.entry
	}
	return out
}

// ridStripeKind is the pseudo-kind under which per-request records (op
// counts, nondet) hash into stripes. Real object kinds start at 1, so 0
// is free to namespace requestIDs apart from object names.
const ridStripeKind ObjectKind = 0

// DefaultShards is the default stripe count of recorders and object
// stores. It is a fixed constant (not derived from the machine) so that
// default-configured servers behave identically everywhere.
const DefaultShards = 16

// NormShards resolves a shard-count option: values <= 0 select
// DefaultShards, everything else is used as given.
func NormShards(n int) int {
	if n <= 0 {
		return DefaultShards
	}
	return n
}

// stripeSeed seeds the recorder's stripe hash. A process-wide seed keeps
// stripe selection consistent between a Store and its Recorder.
var stripeSeed = maphash.MakeSeed()

// StripeIndex maps an object-kind/name pair onto one of n stripes. The
// object layer uses the same function so that an object's store shard
// and its recorder stripe coincide.
func StripeIndex(kind ObjectKind, name string, n int) int {
	var h maphash.Hash
	h.SetSeed(stripeSeed)
	h.WriteByte(byte(kind))
	h.WriteString(name)
	return int(h.Sum64() % uint64(n))
}

// NewRecorder returns an empty recorder with the default stripe count.
func NewRecorder() *Recorder {
	return NewRecorderShards(0)
}

// NewRecorderShards returns an empty recorder with n lock stripes
// (n <= 0 selects DefaultShards). The stripe count never affects the
// reports Finalize produces, only lock contention while recording.
func NewRecorderShards(n int) *Recorder {
	n = NormShards(n)
	r := &Recorder{shards: make([]recorderShard, n)}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.objIdx = make(map[ObjectID]int)
		sh.kvLogs = make(map[ObjectID][]seqEntry)
		sh.groups = make(map[uint64][]string)
		sh.scripts = make(map[uint64]string)
		sh.opCounts = make(map[string]int)
		sh.nonDet = make(map[string][]NDEntry)
	}
	return r
}

func (r *Recorder) shardByName(kind ObjectKind, name string) *recorderShard {
	return &r.shards[StripeIndex(kind, name, len(r.shards))]
}

func (r *Recorder) shardByTag(tag uint64) *recorderShard {
	return &r.shards[int(tag%uint64(len(r.shards)))]
}

// RecordObjOp appends an operation to the named object's log. The caller
// must invoke it while holding the object's lock so that log order
// matches the linearization order. KV-store operations are striped by
// key and ticketed (see the type comment); all other objects append to
// their own per-object log in the stripe their name hashes to.
func (r *Recorder) RecordObjOp(id ObjectID, e OpEntry) {
	if id.Kind == KVObj {
		seq := r.kvSeq.Add(1)
		sh := r.shardByName(id.Kind, e.Key)
		sh.mu.Lock()
		sh.kvLogs[id] = append(sh.kvLogs[id], seqEntry{seq: seq, entry: e})
		sh.mu.Unlock()
		return
	}
	sh := r.shardByName(id.Kind, id.Name)
	sh.mu.Lock()
	idx, ok := sh.objIdx[id]
	if !ok {
		idx = len(sh.objects)
		sh.objIdx[id] = idx
		sh.objects = append(sh.objects, id)
		sh.opLogs = append(sh.opLogs, nil)
	}
	sh.opLogs[idx] = append(sh.opLogs[idx], e)
	sh.mu.Unlock()
}

// Session is a per-request-handler recording context holding the DB
// sub-log (per-connection logging, §4.7).
type Session struct {
	rec *Recorder
	sub []seqEntry
}

// NewSession opens a recording session for one request handler.
func (r *Recorder) NewSession() *Session {
	return &Session{rec: r}
}

// RecordDBOp appends a DB transaction to the session's sub-log; seq is
// the global sequence number the engine assigned at commit.
func (s *Session) RecordDBOp(seq int64, e OpEntry) {
	s.sub = append(s.sub, seqEntry{seq: seq, entry: e})
}

// Close hands the session's sub-log to the recorder.
func (s *Session) Close() {
	if len(s.sub) == 0 {
		return
	}
	sh := &s.rec.shards[int(uint64(s.rec.subRR.Add(1))%uint64(len(s.rec.shards)))]
	sh.mu.Lock()
	sh.dbSubs = append(sh.dbSubs, s.sub)
	sh.mu.Unlock()
	s.sub = nil
}

// RecordGroup assigns a request to its control-flow group.
func (r *Recorder) RecordGroup(tag uint64, script, rid string) {
	sh := r.shardByTag(tag)
	sh.mu.Lock()
	sh.groups[tag] = append(sh.groups[tag], rid)
	sh.scripts[tag] = script
	sh.mu.Unlock()
}

// RecordOpCount records report M for one request.
func (r *Recorder) RecordOpCount(rid string, count int) {
	sh := r.shardByName(ridStripeKind, rid)
	sh.mu.Lock()
	sh.opCounts[rid] = count
	sh.mu.Unlock()
}

// RecordNonDet appends a non-deterministic return value for rid.
func (r *Recorder) RecordNonDet(rid string, e NDEntry) {
	sh := r.shardByName(ridStripeKind, rid)
	sh.mu.Lock()
	sh.nonDet[rid] = append(sh.nonDet[rid], e)
	sh.mu.Unlock()
}

// Finalize merges the stripes, stitches the DB sub-logs into the
// database object's log, and returns the complete report bundle. The
// recorder remains usable; a later Finalize reflects additional
// recording.
//
// The produced artifact is canonical — independent of the stripe count
// and of which stripe held what:
//
//   - Objects are emitted in sorted (Kind, Name) order, with OpLogs
//     aligned.
//   - The KV object's log is the seq-ticket merge of its striped
//     entries; the DB object's log is the engine-seq merge of the
//     session sub-logs.
//   - Groups, scripts, op counts and non-determinism records are map
//     merges whose per-key contents each live whole in one stripe.
//
// A Recorder with one stripe therefore serializes to byte-identical
// reports as one with N stripes for the same recorded history (pinned
// by TestShardedRecorderEquivalence).
func (r *Recorder) Finalize() *Reports {
	// Lock all stripes for the duration of the merge so Finalize sees an
	// atomic snapshot, exactly like the old single-mutex recorder.
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
	defer func() {
		for i := range r.shards {
			r.shards[i].mu.Unlock()
		}
	}()

	out := &Reports{
		Groups:   make(map[uint64][]string),
		Scripts:  make(map[uint64]string),
		OpCounts: make(map[string]int),
		NonDet:   make(map[string][]NDEntry),
	}
	logs := make(map[ObjectID][]OpEntry)
	kvMerged := make(map[ObjectID][]seqEntry)
	var dbMerged []seqEntry
	for i := range r.shards {
		sh := &r.shards[i]
		for idx, id := range sh.objects {
			logs[id] = append(logs[id], sh.opLogs[idx]...)
		}
		for id, entries := range sh.kvLogs {
			kvMerged[id] = append(kvMerged[id], entries...)
		}
		for k, v := range sh.groups {
			out.Groups[k] = append([]string(nil), v...)
		}
		for k, v := range sh.scripts {
			out.Scripts[k] = v
		}
		for k, v := range sh.opCounts {
			out.OpCounts[k] = v
		}
		for k, v := range sh.nonDet {
			out.NonDet[k] = append([]NDEntry(nil), v...)
		}
		for _, sub := range sh.dbSubs {
			dbMerged = append(dbMerged, sub...)
		}
	}
	// KV logs: merge each KV object's striped entries by ticket.
	for id, entries := range kvMerged {
		logs[id] = mergeBySeq(entries)
	}
	// DB log: stitch the sub-logs by engine sequence number.
	if len(dbMerged) > 0 {
		logs[ObjectID{Kind: DBObj, Name: "main"}] = mergeBySeq(dbMerged)
	}
	// Canonical object order: sorted by (Kind, Name). Log order within
	// each object is the linearization order established above; object
	// order carries no semantics (the verifier indexes logs by ObjectID),
	// so sorting pins a stripe-count-independent artifact.
	ids := make([]ObjectID, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Kind != ids[j].Kind {
			return ids[i].Kind < ids[j].Kind
		}
		return ids[i].Name < ids[j].Name
	})
	out.Objects = ids
	out.OpLogs = make([][]OpEntry, len(ids))
	for i, id := range ids {
		out.OpLogs[i] = append([]OpEntry(nil), logs[id]...)
	}
	return out
}
