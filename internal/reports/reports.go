// Package reports defines the executor's reports (§3, §4.6) and the
// server-side recording library that produces them. Reports are
// UNTRUSTED: the verifier validates them (internal/core, internal/
// verifier); a misbehaving executor may hand back arbitrary contents.
//
// The four report kinds are:
//
//  1. Control flow groupings C: opaque tag -> set of requestIDs (§3.1).
//  2. Operation logs OL_i: per shared object, the ordered list of
//     operations with their operands (§3.3).
//  3. Operation counts M: requestID -> number of state ops (§3.3).
//  4. Non-determinism records: per requestID, the return values of
//     non-deterministic builtins, in program order (§4.6).
package reports

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"sort"

	"orochi/internal/encio"
	"orochi/internal/lang"
)

// ObjectKind classifies a shared object (§4.4).
type ObjectKind uint8

const (
	// RegisterObj is an atomic register holding per-client session data.
	RegisterObj ObjectKind = iota + 1
	// KVObj is the linearizable key-value store (APC).
	KVObj
	// DBObj is the strictly serializable SQL database.
	DBObj
)

func (k ObjectKind) String() string {
	switch k {
	case RegisterObj:
		return "register"
	case KVObj:
		return "kv"
	case DBObj:
		return "db"
	default:
		return "object(?)"
	}
}

// ObjectID identifies one shared object: a named register, the KV store,
// or the database. Each object has its own operation log.
type ObjectID struct {
	Kind ObjectKind
	Name string
}

func (o ObjectID) String() string { return fmt.Sprintf("%s:%s", o.Kind, o.Name) }

// OpEntry is one operation-log record (§3.3): the (requestID, opnum)
// identity plus the type-specific operands.
type OpEntry struct {
	RID   string
	Opnum int
	Type  lang.OpType
	// Key is the register name (RegisterRead/Write) or the KV key
	// (KvGet/KvSet).
	Key string
	// Value is the canonically encoded written value (RegisterWrite,
	// KvSet).
	Value string
	// Stmts holds a DB transaction's SQL statements (DBOp).
	Stmts []string
	// OK records whether the DB transaction committed (DBOp); aborts are
	// a form of non-determinism the verifier honours (§4.6).
	OK bool
}

// NDEntry is one recorded non-deterministic return value.
type NDEntry struct {
	Fn    string
	Value string // canonically encoded
}

// Reports bundles everything the executor hands the verifier.
type Reports struct {
	// Groups maps control-flow tag -> requestIDs (report C).
	Groups map[uint64][]string
	// Scripts maps control-flow tag -> script name, so the verifier
	// knows which entry point to re-execute for a group. (A correct
	// executor derives tags from digests seeded by script name, so a
	// tag determines the script; this field is untrusted like the rest
	// and mismatches surface as divergence or output mismatch.)
	Scripts map[uint64]string
	// Objects lists the shared objects; OpLogs[i] is the log of
	// Objects[i] (reports OL_i).
	Objects []ObjectID
	OpLogs  [][]OpEntry
	// OpCounts is report M: requestID -> total state ops issued.
	OpCounts map[string]int
	// NonDet holds the per-request nondeterminism records, in program
	// order.
	NonDet map[string][]NDEntry
}

// Clone deep-copies the reports (tamper tests mutate copies).
func (r *Reports) Clone() *Reports {
	out := &Reports{
		Groups:   make(map[uint64][]string, len(r.Groups)),
		Scripts:  make(map[uint64]string, len(r.Scripts)),
		Objects:  append([]ObjectID(nil), r.Objects...),
		OpLogs:   make([][]OpEntry, len(r.OpLogs)),
		OpCounts: make(map[string]int, len(r.OpCounts)),
		NonDet:   make(map[string][]NDEntry, len(r.NonDet)),
	}
	for k, v := range r.Groups {
		out.Groups[k] = append([]string(nil), v...)
	}
	for k, v := range r.Scripts {
		out.Scripts[k] = v
	}
	for i, log := range r.OpLogs {
		cl := make([]OpEntry, len(log))
		copy(cl, log)
		for j := range cl {
			cl[j].Stmts = append([]string(nil), cl[j].Stmts...)
		}
		out.OpLogs[i] = cl
	}
	for k, v := range r.OpCounts {
		out.OpCounts[k] = v
	}
	for k, v := range r.NonDet {
		out.NonDet[k] = append([]NDEntry(nil), v...)
	}
	return out
}

// LogIndex returns the index of the object's log, or -1.
func (r *Reports) LogIndex(id ObjectID) int {
	for i, o := range r.Objects {
		if o == id {
			return i
		}
	}
	return -1
}

// TotalOps returns the total number of logged operations.
func (r *Reports) TotalOps() int {
	n := 0
	for _, log := range r.OpLogs {
		n += len(log)
	}
	return n
}

// SortGroups returns the control-flow tags in a deterministic order.
func (r *Reports) SortGroups() []uint64 {
	tags := make([]uint64, 0, len(r.Groups))
	for t := range r.Groups {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// CanonicalBytes renders the reports into a deterministic byte form.
// Encode (gob) is not canonical — Go randomizes map iteration order — so
// equivalence tests and content comparisons use this rendering: every
// map is emitted in sorted key order, slices in their stored order, and
// every OpEntry field is spelled out. Two Reports values describing the
// same recorded history produce identical CanonicalBytes regardless of
// how (or with how many recorder stripes) they were collected.
func (r *Reports) CanonicalBytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "groups %d\n", len(r.Groups))
	for _, tag := range r.SortGroups() {
		fmt.Fprintf(&b, "group %x script %q rids %q\n", tag, r.Scripts[tag], r.Groups[tag])
	}
	fmt.Fprintf(&b, "objects %d\n", len(r.Objects))
	for i, id := range r.Objects {
		fmt.Fprintf(&b, "object %d %v ops %d\n", i, id, len(r.OpLogs[i]))
		for j, e := range r.OpLogs[i] {
			fmt.Fprintf(&b, "  op %d rid %q opnum %d type %d key %q value %q stmts %q ok %v\n",
				j, e.RID, e.Opnum, e.Type, e.Key, e.Value, e.Stmts, e.OK)
		}
	}
	rids := make([]string, 0, len(r.OpCounts))
	for rid := range r.OpCounts {
		rids = append(rids, rid)
	}
	sort.Strings(rids)
	fmt.Fprintf(&b, "opcounts %d\n", len(rids))
	for _, rid := range rids {
		fmt.Fprintf(&b, "m %q %d\n", rid, r.OpCounts[rid])
	}
	nds := make([]string, 0, len(r.NonDet))
	for rid := range r.NonDet {
		nds = append(nds, rid)
	}
	sort.Strings(nds)
	fmt.Fprintf(&b, "nondet %d\n", len(nds))
	for _, rid := range nds {
		fmt.Fprintf(&b, "nd %q", rid)
		for _, e := range r.NonDet[rid] {
			fmt.Fprintf(&b, " %q=%q", e.Fn, e.Value)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// EncodeRaw serializes the reports with gob, uncompressed — the
// logical form the content-addressed store chunks so consecutive
// epochs' shared report structure actually dedups (compression moves
// down to the chunk layer).
func (r *Reports) EncodeRaw() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("reports: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRaw deserializes reports produced by EncodeRaw. Trailing
// garbage is an error, matching Decode's strictness.
func DecodeRaw(data []byte) (*Reports, error) {
	br := bytes.NewReader(data)
	var r Reports
	if err := gob.NewDecoder(br).Decode(&r); err != nil {
		return nil, fmt.Errorf("reports: decode: %w", err)
	}
	if err := encio.ExpectEOF(br); err != nil {
		return nil, fmt.Errorf("reports: decode: %w", err)
	}
	return &r, nil
}

// Encode serializes the reports with gob and gzip — the wire format the
// verifier downloads, and the basis of the report-size accounting in
// Fig. 8.
func (r *Reports) Encode() ([]byte, error) {
	raw, err := r.EncodeRaw()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("reports: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("reports: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes reports produced by Encode. Truncated input and
// trailing garbage are errors, so a corrupted on-disk bundle can never
// pass silently as a shortened one.
func Decode(data []byte) (*Reports, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("reports: decode: %w", err)
	}
	defer zr.Close()
	var r Reports
	if err := gob.NewDecoder(zr).Decode(&r); err != nil {
		return nil, fmt.Errorf("reports: decode: %w", err)
	}
	if err := encio.ExpectEOF(zr); err != nil {
		return nil, fmt.Errorf("reports: decode: %w", err)
	}
	return &r, nil
}
