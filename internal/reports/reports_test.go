package reports

import (
	"sync"
	"testing"

	"orochi/internal/lang"
)

func sampleReports() *Reports {
	rec := NewRecorder()
	rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: "A"},
		OpEntry{RID: "r1", Opnum: 1, Type: lang.RegisterWrite, Key: "A", Value: "i:1;"})
	rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: "A"},
		OpEntry{RID: "r2", Opnum: 1, Type: lang.RegisterRead, Key: "A"})
	rec.RecordObjOp(ObjectID{Kind: KVObj, Name: "apc"},
		OpEntry{RID: "r1", Opnum: 2, Type: lang.KvSet, Key: "k", Value: "s:1:x;"})
	sess := rec.NewSession()
	sess.RecordDBOp(2, OpEntry{RID: "r2", Opnum: 2, Type: lang.DBOp, Stmts: []string{"SELECT a FROM t"}, OK: true})
	sess.RecordDBOp(1, OpEntry{RID: "r1", Opnum: 3, Type: lang.DBOp, Stmts: []string{"INSERT INTO t (a) VALUES (1)"}, OK: true})
	sess.Close()
	rec.RecordGroup(7, "view", "r1")
	rec.RecordGroup(7, "view", "r2")
	rec.RecordOpCount("r1", 3)
	rec.RecordOpCount("r2", 2)
	rec.RecordNonDet("r1", NDEntry{Fn: "time", Value: "i:100;"})
	return rec.Finalize()
}

func TestRecorderFinalize(t *testing.T) {
	rep := sampleReports()
	if len(rep.Objects) != 3 {
		t.Fatalf("objects = %v", rep.Objects)
	}
	if rep.OpCounts["r1"] != 3 || rep.OpCounts["r2"] != 2 {
		t.Fatalf("op counts = %v", rep.OpCounts)
	}
	if got := rep.Groups[7]; len(got) != 2 {
		t.Fatalf("group = %v", got)
	}
	if rep.Scripts[7] != "view" {
		t.Fatalf("script = %v", rep.Scripts[7])
	}
	if len(rep.NonDet["r1"]) != 1 {
		t.Fatalf("nondet = %v", rep.NonDet)
	}
	if rep.TotalOps() != 5 {
		t.Fatalf("total ops = %d", rep.TotalOps())
	}
}

func TestDBStitchingSortsBySeq(t *testing.T) {
	rep := sampleReports()
	idx := rep.LogIndex(ObjectID{Kind: DBObj, Name: "main"})
	if idx < 0 {
		t.Fatal("db log missing")
	}
	log := rep.OpLogs[idx]
	if len(log) != 2 {
		t.Fatalf("db log = %v", log)
	}
	// seq 1 (the INSERT) must come first despite being recorded second.
	if log[0].RID != "r1" || log[1].RID != "r2" {
		t.Fatalf("stitching order wrong: %v then %v", log[0].RID, log[1].RID)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rep := sampleReports()
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalOps() != rep.TotalOps() {
		t.Fatal("ops lost in round trip")
	}
	if back.OpCounts["r1"] != 3 {
		t.Fatal("op counts lost")
	}
	if len(back.Groups[7]) != 2 || back.Scripts[7] != "view" {
		t.Fatal("groups lost")
	}
	idx := back.LogIndex(ObjectID{Kind: DBObj, Name: "main"})
	if idx < 0 || len(back.OpLogs[idx]) != 2 || back.OpLogs[idx][0].Stmts[0] != "INSERT INTO t (a) VALUES (1)" {
		t.Fatal("db log lost")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gzip")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCloneIndependence(t *testing.T) {
	rep := sampleReports()
	cl := rep.Clone()
	cl.OpCounts["r1"] = 99
	cl.Groups[7][0] = "mutated"
	cl.OpLogs[0][0].Value = "mutated"
	cl.OpLogs[0][0].Stmts = append(cl.OpLogs[0][0].Stmts, "x")
	cl.NonDet["r1"][0].Value = "mutated"
	if rep.OpCounts["r1"] != 3 || rep.Groups[7][0] == "mutated" ||
		rep.OpLogs[0][0].Value == "mutated" || rep.NonDet["r1"][0].Value == "mutated" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestSortGroupsDeterministic(t *testing.T) {
	rec := NewRecorder()
	rec.RecordGroup(30, "a", "r1")
	rec.RecordGroup(10, "b", "r2")
	rec.RecordGroup(20, "c", "r3")
	rep := rec.Finalize()
	tags := rep.SortGroups()
	if len(tags) != 3 || tags[0] != 10 || tags[1] != 20 || tags[2] != 30 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestLogIndexMiss(t *testing.T) {
	rep := sampleReports()
	if rep.LogIndex(ObjectID{Kind: RegisterObj, Name: "nope"}) != -1 {
		t.Fatal("expected -1 for unknown object")
	}
}

func TestRecorderConcurrentSafety(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rid := "r" + string(rune('a'+i%26))
			rec.RecordObjOp(ObjectID{Kind: RegisterObj, Name: "x"},
				OpEntry{RID: rid, Opnum: 1, Type: lang.RegisterRead, Key: "x"})
			rec.RecordGroup(uint64(i%3), "s", rid)
			rec.RecordOpCount(rid, 1)
			rec.RecordNonDet(rid, NDEntry{Fn: "time", Value: "i:1;"})
			s := rec.NewSession()
			s.RecordDBOp(int64(i), OpEntry{RID: rid, Opnum: 2, Type: lang.DBOp, Stmts: []string{"SELECT a FROM t"}, OK: true})
			s.Close()
		}(i)
	}
	wg.Wait()
	rep := rec.Finalize()
	if rep.TotalOps() != 40 {
		t.Fatalf("total ops = %d", rep.TotalOps())
	}
}

func TestFinalizeIdempotentSnapshot(t *testing.T) {
	rec := NewRecorder()
	rec.RecordOpCount("r1", 1)
	rep1 := rec.Finalize()
	rec.RecordOpCount("r2", 2)
	rep2 := rec.Finalize()
	if len(rep1.OpCounts) != 1 {
		t.Fatal("first finalize must not see later recording")
	}
	if len(rep2.OpCounts) != 2 {
		t.Fatal("second finalize must see all recording")
	}
}

func TestObjectIDString(t *testing.T) {
	if s := (ObjectID{Kind: RegisterObj, Name: "A"}).String(); s != "register:A" {
		t.Fatalf("ObjectID string = %q", s)
	}
	if RegisterObj.String() != "register" || KVObj.String() != "kv" || DBObj.String() != "db" {
		t.Fatal("kind strings")
	}
}

func TestDecodeRejectsTruncatedAndTrailing(t *testing.T) {
	r := &Reports{
		Groups:   map[uint64][]string{1: {"r1"}},
		Scripts:  map[uint64]string{1: "s"},
		OpCounts: map[string]int{"r1": 0},
		NonDet:   map[string][]NDEntry{},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)-4]); err == nil {
		t.Fatal("Decode accepted truncated input")
	}
	if _, err := Decode(append(data, 'j', 'u', 'n', 'k')); err == nil {
		t.Fatal("Decode accepted trailing garbage")
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

func TestEncodeRawRoundTrip(t *testing.T) {
	rep := sampleReports()
	raw, err := rep.EncodeRaw()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalOps() != rep.TotalOps() || back.OpCounts["r1"] != 3 {
		t.Fatal("raw round trip lost data")
	}
	// Raw and compressed forms must agree on the logical content.
	zdata, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	zback, err := Decode(zdata)
	if err != nil {
		t.Fatal(err)
	}
	if string(zback.CanonicalBytes()) != string(back.CanonicalBytes()) {
		t.Fatal("Encode and EncodeRaw disagree on logical content")
	}
	if _, err := DecodeRaw(append(raw, 0x00)); err == nil {
		t.Fatal("trailing garbage after raw stream must be an error")
	}
}
