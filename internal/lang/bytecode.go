package lang

import (
	"fmt"
	"strings"
)

// The bytecode engine lowers each script and function body into a flat
// instruction array executed by a threaded-dispatch loop: a dense
// switch over a uint8 opcode, which the Go compiler turns into a jump
// table, with an explicit program counter instead of a tree (or
// closure-tree) walk. Relative to the closure-compiled engine this
// removes the per-node closure-call overhead and the (Value, error)
// return plumbing between nodes: operands flow through a per-frame
// operand stack, and the hottest operators (integer arithmetic and
// comparisons, variable loads/stores) execute inline in the loop.
//
// Everything semantic is shared with the other engines, exactly as the
// closure engine shares it with the interpreter: binaryOp/indexRead/
// setPath/condDirection/forLanes, the state-op, nondet and builtin
// cores, and the slot model from resolve.go (slot-indexed frames with
// presence bitmaps, runtime `global` redirect flags). The inline fast
// paths below replicate the scalar cores bit-for-bit and fall back to
// them for every case they do not cover, so value semantics cannot
// drift; the differential suite and fuzzer enforce the equivalence
// over all three engines.
//
// Compile-time-detectable faults (undefined functions, bad call
// shapes) lower to opFault, deferring the error to execution time: a
// faulty call on a never-taken branch must stay silent, as in the
// other engines.

// bop is a bytecode opcode. The dispatch switch is dense over these
// values; keep them contiguous.
type bop uint8

const (
	opConst bop = iota // push v
	opPop              // discard top

	// Variable access, one opcode per storage class (resolve.go).
	opLoadG      // push gslots[a]
	opLoadL      // push locals[a]
	opLoadGL     // flag-checked: a = local slot, b = global slot
	opLoadSuper  // push super[s]
	opStoreG     // simple assign: pop, clone, store, countInstr
	opStoreL     //
	opStoreGL    //
	opStoreSuper //

	// Statement accounting and control flow.
	opStep       // statement-entry (and while-bottom) step
	opBranch     // digest record: site a, direction b
	opJmp        // pc = a
	opJumpFalse  // pop; condDirection; if false pc = a (no record)
	opLoopCond   // pop; condDirection; false: branch(a,0), pc=b; true: branch(a,1)
	opTernCond   // pop; condDirection; true: branch(a,1); false: branch(a,0), pc=b
	opAnd        // pop; short-circuit &&: site a, end b
	opOr         // pop; short-circuit ||: site a, end b
	opLogicalRes // pop; push logicalResult
	opRet        // return: a=1 pops the return value
	opDepthCheck // fault at line a if the call depth is exhausted

	// Operators. The specialized forms execute the common univalue
	// case inline and defer everything else to ex.binaryOp.
	opBinary // s=op, a=line: pop r, l; push binaryOp
	opAdd
	opSub
	opMul
	opConcat
	opLt
	opLe
	opGt
	opGe
	opUnary     // s=op, a=line
	opIndexRead // a=line: pop i, t; countInstr; indexRead
	opEcho      // pop; echo

	// Arrays.
	opNewArray    // push NewArray()
	opArrayAppend // pop v; append to top-of-stack array
	opArraySetKV  // a=line: pop k, v; set in top-of-stack array

	// Foreach iterators (per-frame iterator stack).
	opIterInit  // a=site, b=done, aux *biterDef: pop subject
	opIterNext  // a=site, b=done, aux *biterDef
	opIterBreak // a=site, b=done: branch(a,0), pop iterator, pc=b

	// Switch.
	opCase // a=body: pop match, peek subject; looseEqDirection

	// Lvalue paths (aux *blval).
	opAssign     // pop v; path assign
	opCompound   // s=op, a=line: pop v; old = read; binaryOp; assign
	opIncDec     // aux *bincdec: push pre/post result
	opLoadLV     // push read of the path (ref-builtin target read)
	opIsset      // aux []*blval: push bool
	opEmpty      // aux *blval: push bool
	opUnset      // aux []*blval
	opGlobalDecl // aux []int32: set gflags

	// Calls.
	opCallUser    // aux *bucall: pop provided args
	opRefCall     // aux *brefcall: pop rest args, then target value
	opCallState   // s=name, a=nargs, b=line
	opCallNonDet  // s=name, a=nargs
	opCallBuiltin // s=name, a=nargs, b=line, aux builtinFn

	opFault // aux *RuntimeError: deferred compile-time-detectable fault
)

// bins is one bytecode instruction. a and b hold line numbers, slots,
// sites, directions or jump targets depending on the opcode.
type bins struct {
	op   bop
	a, b int32
	s    string
	v    Value
	aux  any
}

// bprog is a Program lowered for the bytecode engine.
type bprog struct {
	res     *resolution
	scripts map[string]*bscript
	funcs   map[string]*bfunc
}

type bscript struct{ code []bins }

type bfunc struct {
	name      string
	params    []bparam
	code      []bins
	info      *funcInfo
	hasGlobal bool
}

// bparam mirrors cparam: slot is -1 for a superglobal-named parameter.
type bparam struct {
	slot int
	def  []bins // fragment in the function's own frame; nil if required
}

// bvref is a variable reference resolved to its storage class.
type bvref struct {
	kind  uint8
	slot  int
	gslot int
	name  string
}

const (
	bvGlobal = iota
	bvLocal
	bvLocalG // flag-checked `global` redirect
	bvSuper
)

func (r *bvref) get(fr *bframe) Value {
	switch r.kind {
	case bvGlobal:
		return fr.ex.gslots[r.slot]
	case bvLocal:
		return fr.locals[r.slot]
	case bvLocalG:
		if fr.gflags[r.slot] {
			return fr.ex.gslots[r.gslot]
		}
		return fr.locals[r.slot]
	default:
		return fr.ex.super[r.name]
	}
}

func (r *bvref) set(fr *bframe, v Value) {
	switch r.kind {
	case bvGlobal:
		fr.ex.gslots[r.slot] = v
		fr.ex.gset[r.slot] = true
	case bvLocal:
		fr.locals[r.slot] = v
		fr.set[r.slot] = true
	case bvLocalG:
		if fr.gflags[r.slot] {
			fr.ex.gslots[r.gslot] = v
			fr.ex.gset[r.gslot] = true
			return
		}
		fr.locals[r.slot] = v
		fr.set[r.slot] = true
	default:
		if arr, ok := v.(*Array); ok {
			fr.ex.super[r.name] = arr
		}
	}
}

func (r *bvref) exists(fr *bframe) bool {
	switch r.kind {
	case bvGlobal:
		return fr.ex.gset[r.slot]
	case bvLocal:
		return fr.set[r.slot]
	case bvLocalG:
		if fr.gflags[r.slot] {
			return fr.ex.gset[r.gslot]
		}
		return fr.set[r.slot]
	default:
		return true
	}
}

func (r *bvref) unset(fr *bframe) {
	switch r.kind {
	case bvGlobal:
		fr.ex.gslots[r.slot] = nil
		fr.ex.gset[r.slot] = false
	case bvLocal:
		fr.locals[r.slot] = nil
		fr.set[r.slot] = false
	case bvLocalG:
		if fr.gflags[r.slot] {
			fr.ex.gslots[r.gslot] = nil
			fr.ex.gset[r.gslot] = false
			return
		}
		fr.locals[r.slot] = nil
		fr.set[r.slot] = false
	default:
	}
}

// blval is a lowered lvalue path: the base reference plus one compiled
// fragment per index step (nil fragment = the append form $a[]).
type blval struct {
	ref   bvref
	steps [][]bins
	line  int
}

// bincdec is a lowered ++/-- expression.
type bincdec struct {
	t    *blval
	op   string // "+" or "-"
	pre  bool
	line int
}

// biterDef is the static part of a foreach: where the key/value bind
// and whether elements need a deep copy.
type biterDef struct {
	hasKey  bool
	key     bvref
	val     bvref
	mutates bool
	line    int
}

// biter is one live foreach iteration (per-frame stack, so iterators
// nest and unwind with break/return).
type biter struct {
	uniKeys  []Key
	uniVals  []Value
	laneKeys [][]Key
	laneVals [][]Value
	multi    bool
	n, i     int
}

// bucall is a lowered user-function call: the first min(args, params)
// arguments are compiled inline before the opcode; extras (beyond the
// parameter list) are fragments the opcode evaluates in the caller's
// frame after defaults bind, exactly as the other engines order it.
type bucall struct {
	fn     *bfunc
	nprov  int
	extras [][]bins
	line   int
}

// brefcall is a lowered by-reference builtin call.
type brefcall struct {
	name  string
	fn    refBuiltinFn
	t     *blval
	nrest int
	line  int
}

// bframe is one bytecode activation record: locals as in cframe, plus
// the operand stack and the live-iterator stack.
type bframe struct {
	ex     *exec
	locals []Value
	set    []bool
	gflags []bool
	stack  []Value
	sp     int
	iters  []biter
}

func (fr *bframe) push(v Value) {
	if fr.sp < len(fr.stack) {
		fr.stack[fr.sp] = v
	} else {
		fr.stack = append(fr.stack, v)
	}
	fr.sp++
}

func (fr *bframe) pop() Value {
	fr.sp--
	return fr.stack[fr.sp]
}

// pushIter grows the live-iterator stack by one, reusing the snapshot
// buffers a previously popped iterator left in the slot: a foreach
// re-entered at the same depth (the common loop-in-loop shape) then
// iterates allocation-free.
func (fr *bframe) pushIter() *biter {
	n := len(fr.iters)
	if n < cap(fr.iters) {
		fr.iters = fr.iters[:n+1]
	} else {
		fr.iters = append(fr.iters, biter{})
	}
	it := &fr.iters[n]
	it.i = 0
	return it
}

// snapshotInto is Array.snapshot into reusable buffers.
func snapshotInto(a *Array, keys []Key, vals []Value) ([]Key, []Value) {
	n := len(a.keys)
	if cap(keys) < n {
		keys = make([]Key, n)
	} else {
		keys = keys[:n]
	}
	if cap(vals) < n {
		vals = make([]Value, n)
	} else {
		vals = vals[:n]
	}
	copy(keys, a.keys)
	for i, k := range a.keys {
		vals[i] = a.m[k]
	}
	return keys, vals
}

// bytecode returns prog's bytecode lowering, computing it once.
func (p *Program) bytecode() *bprog {
	p.bcOnce.Do(func() {
		p.bc = lowerBC(p)
	})
	return p.bc
}

func lowerBC(prog *Program) *bprog {
	res := resolve(prog)
	bp := &bprog{
		res:     res,
		scripts: make(map[string]*bscript, len(prog.Scripts)),
		funcs:   make(map[string]*bfunc, len(prog.Funcs)),
	}
	// Two passes so calls bind their callee's *bfunc — and see its
	// parameter count, which decides the provided/extra argument split
	// at a call site — before any body is lowered.
	for name, fn := range prog.Funcs {
		hasGlobal := false
		walkStmts(fn.Body, func(string) {}, func(n string) {
			if !isSuperglobal(n) {
				hasGlobal = true
			}
		})
		bf := &bfunc{name: name, info: res.funcs[name], hasGlobal: hasGlobal}
		bf.params = make([]bparam, len(fn.Params))
		for i, pm := range fn.Params {
			slot := -1
			if !isSuperglobal(pm.Name) {
				slot = bf.info.locals[pm.Name]
			}
			bf.params[i] = bparam{slot: slot}
		}
		bp.funcs[name] = bf
	}
	for name, fn := range prog.Funcs {
		bf := bp.funcs[name]
		bc := &bcompiler{prog: prog, res: res, funcs: bp.funcs, fn: bf.info}
		for i, pm := range fn.Params {
			if pm.Default != nil {
				bf.params[i].def = bc.frag(pm.Default)
			}
		}
		bc.stmts(fn.Body)
		bf.code = bc.code
	}
	for name, s := range prog.Scripts {
		bc := &bcompiler{prog: prog, res: res, funcs: bp.funcs}
		bc.stmts(s.Body)
		bp.scripts[name] = &bscript{code: bc.code}
	}
	return bp
}

// --- Compiler ---

// bctx is one enclosing breakable construct during compilation.
type bctx struct {
	kind      uint8 // bctxLoop, bctxForeach, bctxSwitch
	site      Site
	breaks    []int // instruction indices whose target patches to the end
	continues []int // likewise to the continue point (loops only)
}

const (
	bctxLoop = iota
	bctxForeach
	bctxSwitch
)

type bcompiler struct {
	prog  *Program
	res   *resolution
	funcs map[string]*bfunc
	fn    *funcInfo
	code  []bins
	ctxs  []bctx
}

func (bc *bcompiler) emit(in bins) int {
	bc.code = append(bc.code, in)
	return len(bc.code) - 1
}

func (bc *bcompiler) here() int32 { return int32(len(bc.code)) }

// frag compiles e into a standalone fragment (own code array, own
// jump-target space) that leaves one value on the operand stack.
func (bc *bcompiler) frag(e Expr) []bins {
	sub := &bcompiler{prog: bc.prog, res: bc.res, funcs: bc.funcs, fn: bc.fn}
	sub.expr(e)
	return sub.code
}

func (bc *bcompiler) vref(name string) bvref {
	if isSuperglobal(name) {
		return bvref{kind: bvSuper, name: name}
	}
	if bc.fn == nil {
		g, ok := bc.res.globals[name]
		if !ok {
			panic(fmt.Sprintf("lang: unresolved global %q", name))
		}
		return bvref{kind: bvGlobal, slot: g}
	}
	l, ok := bc.fn.locals[name]
	if !ok {
		panic(fmt.Sprintf("lang: unresolved local %q", name))
	}
	if !bc.fn.globalDecl[name] {
		return bvref{kind: bvLocal, slot: l}
	}
	return bvref{kind: bvLocalG, slot: l, gslot: bc.fn.gslot[name]}
}

func (bc *bcompiler) lvalue(lv *LValue) *blval {
	steps := make([][]bins, len(lv.Steps))
	for i, s := range lv.Steps {
		if s.Idx != nil {
			steps[i] = bc.frag(s.Idx)
		}
	}
	return &blval{ref: bc.vref(lv.Name), steps: steps, line: lv.Line}
}

// storeOp emits the simple-assignment store for a no-steps lvalue.
func (bc *bcompiler) storeOp(r bvref) {
	switch r.kind {
	case bvGlobal:
		bc.emit(bins{op: opStoreG, a: int32(r.slot)})
	case bvLocal:
		bc.emit(bins{op: opStoreL, a: int32(r.slot)})
	case bvLocalG:
		bc.emit(bins{op: opStoreGL, a: int32(r.slot), b: int32(r.gslot)})
	default:
		bc.emit(bins{op: opStoreSuper, s: r.name})
	}
}

func (bc *bcompiler) loadOp(r bvref) {
	switch r.kind {
	case bvGlobal:
		bc.emit(bins{op: opLoadG, a: int32(r.slot)})
	case bvLocal:
		bc.emit(bins{op: opLoadL, a: int32(r.slot)})
	case bvLocalG:
		bc.emit(bins{op: opLoadGL, a: int32(r.slot), b: int32(r.gslot)})
	default:
		bc.emit(bins{op: opLoadSuper, s: r.name})
	}
}

func (bc *bcompiler) stmts(stmts []Stmt) {
	for _, s := range stmts {
		bc.stmt(s)
	}
}

func (bc *bcompiler) stmt(s Stmt) {
	switch st := s.(type) {
	case *ExprStmt:
		bc.emit(bins{op: opStep})
		bc.expr(st.E)
		bc.emit(bins{op: opPop})
	case *Assign:
		bc.emit(bins{op: opStep})
		bc.expr(st.RHS)
		if st.Op == "=" {
			if len(st.Target.Steps) == 0 {
				bc.storeOp(bc.vref(st.Target.Name))
				return
			}
			bc.emit(bins{op: opAssign, aux: bc.lvalue(st.Target)})
			return
		}
		bc.emit(bins{
			op: opCompound, s: strings.TrimSuffix(st.Op, "="),
			a: int32(st.Line), aux: bc.lvalue(st.Target),
		})
	case *If:
		bc.emit(bins{op: opStep})
		var ends []int
		for i, cond := range st.Conds {
			bc.expr(cond)
			jf := bc.emit(bins{op: opJumpFalse})
			bc.emit(bins{op: opBranch, a: int32(st.Site), b: int32(i)})
			bc.stmts(st.Bodies[i])
			ends = append(ends, bc.emit(bins{op: opJmp}))
			bc.code[jf].a = bc.here()
		}
		bc.emit(bins{op: opBranch, a: int32(st.Site), b: int32(len(st.Conds))})
		bc.stmts(st.Else)
		for _, j := range ends {
			bc.code[j].a = bc.here()
		}
	case *While:
		bc.emit(bins{op: opStep})
		top := bc.here()
		bc.expr(st.Cond)
		lc := bc.emit(bins{op: opLoopCond, a: int32(st.Site)})
		bc.ctxs = append(bc.ctxs, bctx{kind: bctxLoop})
		bc.stmts(st.Body)
		cont := bc.here()
		bc.emit(bins{op: opStep}) // loop-bottom step before the re-test
		bc.emit(bins{op: opJmp, a: top})
		bc.endCtx(cont)
		bc.code[lc].b = bc.here()
	case *For:
		bc.emit(bins{op: opStep})
		if st.Init != nil {
			bc.stmt(st.Init)
		}
		top := bc.here()
		lc := -1
		if st.Cond != nil {
			bc.expr(st.Cond)
			lc = bc.emit(bins{op: opLoopCond, a: int32(st.Site)})
		} else {
			bc.emit(bins{op: opBranch, a: int32(st.Site), b: 1})
		}
		bc.ctxs = append(bc.ctxs, bctx{kind: bctxLoop})
		bc.stmts(st.Body)
		cont := bc.here()
		if st.Post != nil {
			bc.stmt(st.Post)
		}
		bc.emit(bins{op: opJmp, a: top})
		bc.endCtx(cont)
		if lc >= 0 {
			bc.code[lc].b = bc.here()
		}
	case *Foreach:
		bc.emit(bins{op: opStep})
		bc.expr(st.Subject)
		def := &biterDef{hasKey: st.KeyVar != "", val: bc.vref(st.ValVar), mutates: st.MutatesVal, line: st.Line}
		if def.hasKey {
			def.key = bc.vref(st.KeyVar)
		}
		ii := bc.emit(bins{op: opIterInit, a: int32(st.Site), aux: def})
		next := bc.here()
		in := bc.emit(bins{op: opIterNext, a: int32(st.Site), aux: def})
		bc.ctxs = append(bc.ctxs, bctx{kind: bctxForeach, site: st.Site})
		bc.stmts(st.Body)
		bc.emit(bins{op: opJmp, a: next})
		bc.endCtx(int32(next))
		end := bc.here()
		bc.code[ii].b = end
		bc.code[in].b = end
	case *Switch:
		bc.emit(bins{op: opStep})
		bc.expr(st.Subject)
		cases := make([]int, len(st.Cases))
		for i, cs := range st.Cases {
			bc.expr(cs.Match)
			cases[i] = bc.emit(bins{op: opCase})
		}
		// No arm matched: arm index -1 → direction 0.
		bc.emit(bins{op: opPop})
		bc.emit(bins{op: opBranch, a: int32(st.Site), b: 0})
		bc.ctxs = append(bc.ctxs, bctx{kind: bctxSwitch})
		bc.stmts(st.Default)
		var ends []int
		ends = append(ends, bc.emit(bins{op: opJmp}))
		for i, cs := range st.Cases {
			bc.code[cases[i]].a = bc.here()
			bc.emit(bins{op: opPop})
			bc.emit(bins{op: opBranch, a: int32(st.Site), b: int32(i + 1)})
			bc.stmts(cs.Body)
			if i != len(st.Cases)-1 {
				ends = append(ends, bc.emit(bins{op: opJmp}))
			}
		}
		end := bc.here()
		for _, j := range ends {
			bc.code[j].a = end
		}
		bc.endCtx(-1) // break → end; continue falls to the enclosing loop
		// endCtx patched breaks to here() == end already.
	case *Return:
		bc.emit(bins{op: opStep})
		if st.E != nil {
			bc.expr(st.E)
			bc.emit(bins{op: opRet, a: 1})
			return
		}
		bc.emit(bins{op: opRet})
	case *Break:
		bc.emit(bins{op: opStep})
		for i := len(bc.ctxs) - 1; i >= 0; i-- {
			c := &bc.ctxs[i]
			var j int
			if c.kind == bctxForeach {
				j = bc.emit(bins{op: opIterBreak, a: int32(c.site)})
			} else {
				j = bc.emit(bins{op: opJmp})
			}
			c.breaks = append(c.breaks, j)
			return
		}
		// break outside any loop: the parser rejects this, but fail soft.
		bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: "break outside loop", Line: st.Line}})
	case *Continue:
		bc.emit(bins{op: opStep})
		for i := len(bc.ctxs) - 1; i >= 0; i-- {
			c := &bc.ctxs[i]
			if c.kind == bctxSwitch {
				continue // continue binds the enclosing loop, as in PHP
			}
			j := bc.emit(bins{op: opJmp})
			c.continues = append(c.continues, j)
			return
		}
		bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: "continue outside loop", Line: st.Line}})
	case *Echo:
		bc.emit(bins{op: opStep})
		for _, a := range st.Args {
			bc.expr(a)
			bc.emit(bins{op: opEcho})
		}
	case *Global:
		bc.emit(bins{op: opStep})
		if bc.fn == nil {
			return // inert at top level: the script frame IS the global frame
		}
		var lslots []int32
		for _, n := range st.Names {
			if !isSuperglobal(n) {
				lslots = append(lslots, int32(bc.fn.locals[n]))
			}
		}
		if len(lslots) > 0 {
			bc.emit(bins{op: opGlobalDecl, aux: lslots})
		}
	case *Unset:
		bc.emit(bins{op: opStep})
		tgts := make([]*blval, len(st.Targets))
		for i, lv := range st.Targets {
			tgts[i] = bc.lvalue(lv)
		}
		bc.emit(bins{op: opUnset, aux: tgts})
	default:
		bc.emit(bins{op: opStep})
		bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}})
	}
}

// endCtx pops the innermost context, patching breaks to here() and
// continues to cont (-1 when the construct has no continue point).
func (bc *bcompiler) endCtx(cont int32) {
	c := bc.ctxs[len(bc.ctxs)-1]
	bc.ctxs = bc.ctxs[:len(bc.ctxs)-1]
	end := bc.here()
	for _, j := range c.breaks {
		if bc.code[j].op == opIterBreak {
			bc.code[j].b = end
		} else {
			bc.code[j].a = end
		}
	}
	for _, j := range c.continues {
		bc.code[j].a = cont
	}
}

// binaryOps maps operator strings to specialized opcodes. Ops without
// an entry use the generic opBinary.
var binarySpecial = map[string]bop{
	"+": opAdd, "-": opSub, "*": opMul, ".": opConcat,
	"<": opLt, "<=": opLe, ">": opGt, ">=": opGe,
}

func (bc *bcompiler) expr(e Expr) {
	switch x := e.(type) {
	case *Lit:
		bc.emit(bins{op: opConst, v: x.Val})
	case *Var:
		bc.loadOp(bc.vref(x.Name))
	case *Index:
		if x.Idx == nil {
			bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: "cannot read append-index $a[]", Line: x.Line}})
			return
		}
		bc.expr(x.Target)
		bc.expr(x.Idx)
		bc.emit(bins{op: opIndexRead, a: int32(x.Line)})
	case *Binary:
		bc.expr(x.L)
		bc.expr(x.R)
		if op, ok := binarySpecial[x.Op]; ok {
			bc.emit(bins{op: op, s: x.Op, a: int32(x.Line)})
			return
		}
		bc.emit(bins{op: opBinary, s: x.Op, a: int32(x.Line)})
	case *Logical:
		bc.expr(x.L)
		op := opAnd
		if x.Op != "&&" {
			op = opOr
		}
		j := bc.emit(bins{op: op, a: int32(x.Site)})
		bc.expr(x.R)
		bc.emit(bins{op: opLogicalRes})
		bc.code[j].b = bc.here()
	case *Unary:
		bc.expr(x.E)
		bc.emit(bins{op: opUnary, s: x.Op, a: int32(x.Line)})
	case *Ternary:
		bc.expr(x.Cond)
		tc := bc.emit(bins{op: opTernCond, a: int32(x.Site)})
		bc.expr(x.Then)
		j := bc.emit(bins{op: opJmp})
		bc.code[tc].b = bc.here()
		bc.expr(x.Else)
		bc.code[j].a = bc.here()
	case *Call:
		bc.call(x)
	case *ArrayLit:
		bc.emit(bins{op: opNewArray})
		for _, ent := range x.Entries {
			bc.expr(ent.Val)
			if ent.Key == nil {
				bc.emit(bins{op: opArrayAppend})
				continue
			}
			bc.expr(ent.Key)
			bc.emit(bins{op: opArraySetKV, a: int32(x.Line)})
		}
	case *IssetExpr:
		tgts := make([]*blval, len(x.Targets))
		for i, lv := range x.Targets {
			tgts[i] = bc.lvalue(lv)
		}
		bc.emit(bins{op: opIsset, aux: tgts})
	case *EmptyExpr:
		bc.emit(bins{op: opEmpty, aux: bc.lvalue(x.Target)})
	case *IncDec:
		op := "+"
		if x.Op == "--" {
			op = "-"
		}
		bc.emit(bins{op: opIncDec, aux: &bincdec{t: bc.lvalue(x.Target), op: op, pre: x.Pre, line: x.Line}})
	default:
		bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}})
	}
}

// call resolves the dispatch order of exec.evalCall at compile time,
// exactly as the closure engine does.
func (bc *bcompiler) call(x *Call) {
	name, line := x.Name, x.Line
	if _, ok := bc.prog.Funcs[name]; ok {
		bf := bc.funcs[name]
		nprov := len(x.Args)
		if nprov > len(bf.params) {
			nprov = len(bf.params)
		}
		u := &bucall{fn: bf, nprov: nprov, line: line}
		// The depth check precedes argument evaluation in every engine:
		// a call at the depth limit faults before its arguments run.
		bc.emit(bins{op: opDepthCheck, a: int32(line)})
		for i := 0; i < nprov; i++ {
			bc.expr(x.Args[i])
		}
		for i := len(bf.params); i < len(x.Args); i++ {
			u.extras = append(u.extras, bc.frag(x.Args[i]))
		}
		bc.emit(bins{op: opCallUser, aux: u})
		return
	}
	if fn, ok := refBuiltins[name]; ok {
		if len(x.Args) == 0 {
			bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: name + "() expects an argument", Line: line}})
			return
		}
		lv, err := exprToLValue(x.Args[0])
		if err != nil {
			bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: name + "(): first argument must be a variable", Line: line}})
			return
		}
		t := bc.lvalue(lv)
		bc.emit(bins{op: opLoadLV, aux: t})
		for _, a := range x.Args[1:] {
			bc.expr(a)
		}
		bc.emit(bins{op: opRefCall, aux: &brefcall{name: name, fn: fn, t: t, nrest: len(x.Args) - 1, line: line}})
		return
	}
	if stateOps[name] {
		for _, a := range x.Args {
			bc.expr(a)
		}
		bc.emit(bins{op: opCallState, s: name, a: int32(len(x.Args)), b: int32(line)})
		return
	}
	if nondetBuiltins[name] {
		for _, a := range x.Args {
			bc.expr(a)
		}
		bc.emit(bins{op: opCallNonDet, s: name, a: int32(len(x.Args))})
		return
	}
	if b, ok := builtins[name]; ok {
		for _, a := range x.Args {
			bc.expr(a)
		}
		bc.emit(bins{op: opCallBuiltin, s: name, a: int32(len(x.Args)), b: int32(line), aux: b})
		return
	}
	bc.emit(bins{op: opFault, aux: &RuntimeError{Msg: fmt.Sprintf("call to undefined function %s()", name), Line: line}})
}

// --- Runtime ---

// runBC executes code on fr until the end of the array, an opRet, or
// an error. ret reports whether an opRet fired (ctrlReturn).
func runBC(fr *bframe, code []bins) (rv Value, ret bool, err error) {
	ex := fr.ex
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		pc++
		switch in.op {
		case opConst:
			fr.push(in.v)
		case opPop:
			fr.sp--
		case opLoadG:
			fr.push(ex.gslots[in.a])
		case opLoadL:
			fr.push(fr.locals[in.a])
		case opLoadGL:
			if fr.gflags[in.a] {
				fr.push(ex.gslots[in.b])
			} else {
				fr.push(fr.locals[in.a])
			}
		case opLoadSuper:
			fr.push(ex.super[in.s])
		case opStoreG:
			v := fr.pop()
			ex.gslots[in.a] = CloneValue(v)
			ex.gset[in.a] = true
			ex.countInstr(DeepContainsMulti(v))
		case opStoreL:
			v := fr.pop()
			fr.locals[in.a] = CloneValue(v)
			fr.set[in.a] = true
			ex.countInstr(DeepContainsMulti(v))
		case opStoreGL:
			v := fr.pop()
			cv := CloneValue(v)
			if fr.gflags[in.a] {
				ex.gslots[in.b] = cv
				ex.gset[in.b] = true
			} else {
				fr.locals[in.a] = cv
				fr.set[in.a] = true
			}
			ex.countInstr(DeepContainsMulti(v))
		case opStoreSuper:
			v := fr.pop()
			if arr, ok := CloneValue(v).(*Array); ok {
				ex.super[in.s] = arr
			}
			ex.countInstr(DeepContainsMulti(v))
		case opStep:
			ex.steps++
			if ex.steps > ex.maxSteps {
				return nil, false, &RuntimeError{Msg: "step limit exceeded"}
			}
		case opBranch:
			if ex.digest != nil {
				ex.digest.Branch(Site(in.a), int(in.b))
			}
		case opJmp:
			pc = int(in.a)
		case opJumpFalse:
			dir, derr := ex.condDirection(fr.pop())
			if derr != nil {
				return nil, false, derr
			}
			if !dir {
				pc = int(in.a)
			}
		case opLoopCond:
			dir, derr := ex.condDirection(fr.pop())
			if derr != nil {
				return nil, false, derr
			}
			if !dir {
				ex.branch(Site(in.a), 0)
				pc = int(in.b)
			} else {
				ex.branch(Site(in.a), 1)
			}
		case opTernCond:
			dir, derr := ex.condDirection(fr.pop())
			if derr != nil {
				return nil, false, derr
			}
			if dir {
				ex.branch(Site(in.a), 1)
			} else {
				ex.branch(Site(in.a), 0)
				pc = int(in.b)
			}
		case opAnd:
			dir, derr := ex.condDirection(fr.pop())
			if derr != nil {
				return nil, false, derr
			}
			if !dir {
				ex.branch(Site(in.a), 0)
				fr.push(false)
				pc = int(in.b)
			} else {
				ex.branch(Site(in.a), 1)
			}
		case opOr:
			dir, derr := ex.condDirection(fr.pop())
			if derr != nil {
				return nil, false, derr
			}
			if dir {
				ex.branch(Site(in.a), 1)
				fr.push(true)
				pc = int(in.b)
			} else {
				ex.branch(Site(in.a), 0)
			}
		case opLogicalRes:
			fr.push(logicalResult(fr.pop()))
		case opRet:
			if in.a == 1 {
				return fr.pop(), true, nil
			}
			return nil, true, nil
		case opDepthCheck:
			if ex.callDepth >= maxCallDepth {
				return nil, false, &RuntimeError{Msg: "maximum call depth exceeded", Line: int(in.a)}
			}
		case opBinary:
			r := fr.pop()
			l := fr.pop()
			v, berr := ex.binaryOp(in.s, l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opAdd:
			r := fr.pop()
			l := fr.pop()
			if li, lok := l.(int64); lok {
				if ri, rok := r.(int64); rok {
					ex.countInstr(false)
					s := li + ri
					if (li > 0 && ri > 0 && s < 0) || (li < 0 && ri < 0 && s >= 0) {
						fr.push(float64(li) + float64(ri))
					} else {
						fr.push(s)
					}
					break
				}
			}
			v, berr := ex.binaryOp("+", l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opSub:
			r := fr.pop()
			l := fr.pop()
			if li, lok := l.(int64); lok {
				if ri, rok := r.(int64); rok {
					ex.countInstr(false)
					fr.push(li - ri)
					break
				}
			}
			v, berr := ex.binaryOp("-", l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opMul:
			r := fr.pop()
			l := fr.pop()
			if li, lok := l.(int64); lok {
				if ri, rok := r.(int64); rok {
					ex.countInstr(false)
					p := li * ri
					if li != 0 && (p/li != ri) {
						fr.push(float64(li) * float64(ri))
					} else {
						fr.push(p)
					}
					break
				}
			}
			v, berr := ex.binaryOp("*", l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opConcat:
			r := fr.pop()
			l := fr.pop()
			if ls, lok := l.(string); lok {
				if rs, rok := r.(string); rok {
					ex.countInstr(false)
					fr.push(ls + rs)
					break
				}
			}
			v, berr := ex.binaryOp(".", l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opLt, opLe, opGt, opGe:
			r := fr.pop()
			l := fr.pop()
			if li, lok := l.(int64); lok {
				if ri, rok := r.(int64); rok {
					ex.countInstr(false)
					switch in.op {
					case opLt:
						fr.push(li < ri)
					case opLe:
						fr.push(li <= ri)
					case opGt:
						fr.push(li > ri)
					default:
						fr.push(li >= ri)
					}
					break
				}
			}
			v, berr := ex.binaryOp(in.s, l, r, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opUnary:
			v, uerr := ex.unaryOp(in.s, fr.pop(), int(in.a))
			if uerr != nil {
				return nil, false, uerr
			}
			fr.push(v)
		case opIndexRead:
			i := fr.pop()
			t := fr.pop()
			ex.countInstr(IsMulti(t) || IsMulti(i))
			v, rerr := ex.indexRead(t, i, int(in.a))
			if rerr != nil {
				return nil, false, rerr
			}
			fr.push(v)
		case opEcho:
			ex.echo(fr.pop())
		case opNewArray:
			fr.push(NewArray())
		case opArrayAppend:
			v := fr.pop()
			fr.stack[fr.sp-1].(*Array).Append(CloneValue(v))
		case opArraySetKV:
			kv := fr.pop()
			v := fr.pop()
			if IsMulti(kv) {
				return nil, false, &FallbackError{Reason: "multivalue key in array literal"}
			}
			k, kerr := NormalizeKey(kv)
			if kerr != nil {
				return nil, false, &RuntimeError{Msg: kerr.Error(), Line: int(in.a)}
			}
			fr.stack[fr.sp-1].(*Array).Set(k, CloneValue(v))
		case opIterInit:
			def := in.aux.(*biterDef)
			subject := fr.pop()
			switch subj := subject.(type) {
			case *Array:
				it := fr.pushIter()
				it.multi = false
				it.uniKeys, it.uniVals = snapshotInto(subj, it.uniKeys[:0], it.uniVals[:0])
				it.n = len(it.uniKeys)
			case *Multi:
				it := fr.pushIter()
				it.multi = true
				if cap(it.laneKeys) < ex.lanes {
					it.laneKeys = make([][]Key, ex.lanes)
					it.laneVals = make([][]Value, ex.lanes)
				} else {
					it.laneKeys = it.laneKeys[:ex.lanes]
					it.laneVals = it.laneVals[:ex.lanes]
				}
				n := -1
				if _, lerr := ex.forLanes(func(i int) (Value, error) {
					a, ok := MaterializeLane(subj.V[i], i).(*Array)
					if !ok {
						return nil, &RuntimeError{Msg: "foreach over non-array", Line: def.line}
					}
					if n == -1 {
						n = a.Len()
					} else if a.Len() != n {
						return nil, ErrDivergence
					}
					it.laneKeys[i], it.laneVals[i] = snapshotInto(a, it.laneKeys[i][:0], it.laneVals[i][:0])
					return nil, nil
				}); lerr != nil {
					return nil, false, lerr
				}
				it.n = n
			case nil:
				ex.branch(Site(in.a), 0)
				pc = int(in.b)
			default:
				return nil, false, &RuntimeError{Msg: "foreach over non-array", Line: def.line}
			}
		case opIterNext:
			it := &fr.iters[len(fr.iters)-1]
			if it.i >= it.n {
				ex.branch(Site(in.a), 0)
				fr.iters = fr.iters[:len(fr.iters)-1]
				pc = int(in.b)
				break
			}
			ex.branch(Site(in.a), 1)
			def := in.aux.(*biterDef)
			if !it.multi {
				if def.hasKey {
					def.key.set(fr, it.uniKeys[it.i].Value())
				}
				def.val.set(fr, bindElem(it.uniVals[it.i], def.mutates))
			} else {
				keys := make([]Value, ex.lanes)
				vals := make([]Value, ex.lanes)
				for i := 0; i < ex.lanes; i++ {
					keys[i] = it.laneKeys[i][it.i].Value()
					vals[i] = bindElem(it.laneVals[i][it.i], def.mutates)
				}
				if def.hasKey {
					def.key.set(fr, NewMulti(keys))
				}
				def.val.set(fr, NewMulti(vals))
			}
			it.i++
		case opIterBreak:
			ex.branch(Site(in.a), 0)
			fr.iters = fr.iters[:len(fr.iters)-1]
			pc = int(in.b)
		case opCase:
			mv := fr.pop()
			subj := fr.stack[fr.sp-1]
			matched, merr := ex.looseEqDirection(subj, mv)
			if merr != nil {
				return nil, false, merr
			}
			if matched {
				pc = int(in.a)
			}
		case opAssign:
			if aerr := assignBLV(fr, in.aux.(*blval), fr.pop()); aerr != nil {
				return nil, false, aerr
			}
		case opCompound:
			v := fr.pop()
			t := in.aux.(*blval)
			old, rerr := readBLV(fr, t)
			if rerr != nil {
				return nil, false, rerr
			}
			nv, berr := ex.binaryOp(in.s, old, v, int(in.a))
			if berr != nil {
				return nil, false, berr
			}
			if aerr := assignBLV(fr, t, nv); aerr != nil {
				return nil, false, aerr
			}
		case opIncDec:
			d := in.aux.(*bincdec)
			old, rerr := readBLV(fr, d.t)
			if rerr != nil {
				return nil, false, rerr
			}
			nv, berr := ex.binaryOp(d.op, old, int64(1), d.line)
			if berr != nil {
				return nil, false, berr
			}
			if aerr := assignBLV(fr, d.t, nv); aerr != nil {
				return nil, false, aerr
			}
			if d.pre {
				fr.push(nv)
			} else if old == nil {
				fr.push(int64(0))
			} else {
				fr.push(old)
			}
		case opLoadLV:
			v, rerr := readBLV(fr, in.aux.(*blval))
			if rerr != nil {
				return nil, false, rerr
			}
			fr.push(v)
		case opIsset:
			res := true
			for _, t := range in.aux.([]*blval) {
				v, ierr := issetBLV(fr, t)
				if ierr != nil {
					return nil, false, ierr
				}
				one, derr := ex.condDirection(v)
				if derr != nil {
					return nil, false, derr
				}
				if !one {
					res = false
					break
				}
			}
			fr.push(res)
		case opEmpty:
			t := in.aux.(*blval)
			v, ierr := issetBLV(fr, t)
			if ierr != nil {
				return nil, false, ierr
			}
			set, derr := ex.condDirection(v)
			if derr != nil {
				return nil, false, derr
			}
			if !set {
				fr.push(true)
				break
			}
			cur, rerr := readBLV(fr, t)
			if rerr != nil {
				return nil, false, rerr
			}
			truthy, derr := ex.condDirection(cur)
			if derr != nil {
				return nil, false, derr
			}
			fr.push(!truthy)
		case opUnset:
			for _, t := range in.aux.([]*blval) {
				if uerr := unsetBLV(fr, t); uerr != nil {
					return nil, false, uerr
				}
			}
		case opGlobalDecl:
			for _, l := range in.aux.([]int32) {
				fr.gflags[l] = true
			}
		case opCallUser:
			v, cerr := callBFunc(fr, in.aux.(*bucall))
			if cerr != nil {
				return nil, false, cerr
			}
			fr.push(v)
		case opRefCall:
			rc := in.aux.(*brefcall)
			rest := make([]Value, rc.nrest)
			copy(rest, fr.stack[fr.sp-rc.nrest:fr.sp])
			fr.sp -= rc.nrest
			cur := fr.pop()
			result, newTarget, rerr := ex.refBuiltinApply(rc.name, rc.fn, cur, rest, rc.line)
			if rerr != nil {
				return nil, false, rerr
			}
			if aerr := assignBLV(fr, rc.t, newTarget); aerr != nil {
				return nil, false, aerr
			}
			fr.push(result)
		case opCallState:
			n := int(in.a)
			vals := make([]Value, n)
			copy(vals, fr.stack[fr.sp-n:fr.sp])
			fr.sp -= n
			v, serr := ex.stateOpCore(in.s, vals, int(in.b))
			if serr != nil {
				return nil, false, serr
			}
			fr.push(v)
		case opCallNonDet:
			n := int(in.a)
			vals := make([]Value, n)
			copy(vals, fr.stack[fr.sp-n:fr.sp])
			fr.sp -= n
			v, nerr := ex.nonDetCore(in.s, vals)
			if nerr != nil {
				return nil, false, nerr
			}
			fr.push(v)
		case opCallBuiltin:
			n := int(in.a)
			vals := make([]Value, n)
			copy(vals, fr.stack[fr.sp-n:fr.sp])
			fr.sp -= n
			v, berr := ex.invokeBuiltin(in.s, in.aux.(builtinFn), vals, int(in.b))
			if berr != nil {
				return nil, false, berr
			}
			fr.push(v)
		case opFault:
			return nil, false, in.aux.(*RuntimeError)
		}
	}
	return nil, false, nil
}

// evalBFrag runs an expression fragment on fr and pops its value.
func evalBFrag(fr *bframe, code []bins) (Value, error) {
	if _, _, err := runBC(fr, code); err != nil {
		return nil, err
	}
	return fr.pop(), nil
}

// callBFunc mirrors callCFunc: provided arguments were evaluated by
// inline code (caller frame, left to right) and sit on the operand
// stack; defaults evaluate in the new frame; extras evaluate in the
// caller's frame after defaults, for effect only.
func callBFunc(fr *bframe, u *bucall) (Value, error) {
	ex := fr.ex
	base := fr.sp - u.nprov
	fr2 := ex.getBFrame(u.fn)
	for i, p := range u.fn.params {
		if i < u.nprov {
			if p.slot >= 0 {
				fr2.locals[p.slot] = CloneValue(fr.stack[base+i])
				fr2.set[p.slot] = true
			}
			continue
		}
		if p.def != nil {
			v, err := evalBFrag(fr2, p.def)
			if err != nil {
				ex.putBFrame(fr2)
				return nil, err
			}
			if p.slot >= 0 {
				fr2.locals[p.slot] = v
				fr2.set[p.slot] = true
			}
			continue
		}
		if p.slot >= 0 {
			fr2.locals[p.slot] = nil
			fr2.set[p.slot] = true
		}
	}
	fr.sp = base
	for _, extra := range u.extras {
		if _, err := evalBFrag(fr, extra); err != nil {
			ex.putBFrame(fr2)
			return nil, err
		}
	}
	ex.callDepth++
	rv, _, err := runBC(fr2, u.fn.code)
	ex.callDepth--
	ex.putBFrame(fr2)
	if err != nil {
		return nil, err
	}
	return CloneValue(rv), nil
}

// readBLV mirrors readCLV / exec.readLValue.
func readBLV(fr *bframe, t *blval) (Value, error) {
	cur := t.ref.get(fr)
	for _, step := range t.steps {
		if step == nil {
			return nil, &RuntimeError{Msg: "cannot read append-index", Line: t.line}
		}
		idx, err := evalBFrag(fr, step)
		if err != nil {
			return nil, err
		}
		v, err := fr.ex.indexRead(cur, idx, t.line)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	return cur, nil
}

// assignBLV mirrors assignCLV / exec.assignTo.
func assignBLV(fr *bframe, t *blval, val Value) error {
	ex := fr.ex
	if len(t.steps) == 0 {
		t.ref.set(fr, CloneValue(val))
		ex.countInstr(DeepContainsMulti(val))
		return nil
	}
	idxs := make([]Value, len(t.steps))
	for i, step := range t.steps {
		if step == nil {
			if i != len(t.steps)-1 {
				return &RuntimeError{Msg: "append-index must be final", Line: t.line}
			}
			idxs[i] = appendMarker{}
			continue
		}
		v, err := evalBFrag(fr, step)
		if err != nil {
			return err
		}
		idxs[i] = v
	}
	root := t.ref.get(fr)
	multi := DeepContainsMulti(root) || DeepContainsMulti(val)
	for _, iv := range idxs {
		if _, isApp := iv.(appendMarker); !isApp && IsMulti(iv) {
			multi = true
		}
	}
	ex.countInstr(multi)
	newRoot, err := ex.setPath(root, idxs, val, t.line)
	if err != nil {
		return err
	}
	t.ref.set(fr, newRoot)
	return nil
}

// issetBLV mirrors issetCLV / exec.evalIsset.
func issetBLV(fr *bframe, t *blval) (Value, error) {
	if !t.ref.exists(fr) {
		return false, nil
	}
	cur := t.ref.get(fr)
	for _, step := range t.steps {
		if step == nil {
			return nil, &RuntimeError{Msg: "isset on append-index", Line: t.line}
		}
		idx, err := evalBFrag(fr, step)
		if err != nil {
			return nil, err
		}
		v, err := fr.ex.indexReadForIsset(cur, idx)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	if m, ok := cur.(*Multi); ok {
		vals := make([]Value, len(m.V))
		for i, lvv := range m.V {
			vals[i] = lvv != nil
		}
		return NewMulti(vals), nil
	}
	return cur != nil, nil
}

// unsetBLV mirrors unsetCLV / exec.execUnset.
func unsetBLV(fr *bframe, t *blval) error {
	if len(t.steps) == 0 {
		t.ref.unset(fr)
		return nil
	}
	parent := &blval{ref: t.ref, steps: t.steps[:len(t.steps)-1], line: t.line}
	parentVal, err := readBLV(fr, parent)
	if err != nil {
		return err
	}
	last := t.steps[len(t.steps)-1]
	if last == nil {
		return &RuntimeError{Msg: "unset on append-index", Line: t.line}
	}
	idx, err := evalBFrag(fr, last)
	if err != nil {
		return err
	}
	return fr.ex.unsetIn(parentVal, idx, t.line)
}

// getBFrame returns a zeroed bytecode activation record sized for bf.
// getTopBFrame returns a localless frame for a script body, reusing a
// pooled frame's operand-stack and iterator buffers when a session
// carried some over from an earlier run.
func (ex *exec) getTopBFrame() *bframe {
	if m := len(ex.bframes); m > 0 {
		fr := ex.bframes[m-1]
		ex.bframes = ex.bframes[:m-1]
		fr.locals = fr.locals[:0]
		fr.set = fr.set[:0]
		fr.sp = 0
		fr.iters = fr.iters[:0]
		return fr
	}
	return &bframe{ex: ex}
}

func (ex *exec) getBFrame(bf *bfunc) *bframe {
	n := bf.info.nlocals
	var fr *bframe
	if m := len(ex.bframes); m > 0 {
		fr = ex.bframes[m-1]
		ex.bframes = ex.bframes[:m-1]
	} else {
		fr = &bframe{ex: ex}
	}
	if cap(fr.locals) < n {
		fr.locals = make([]Value, n)
		fr.set = make([]bool, n)
	} else {
		fr.locals = fr.locals[:n]
		fr.set = fr.set[:n]
		for i := range fr.locals {
			fr.locals[i] = nil
			fr.set[i] = false
		}
	}
	if bf.hasGlobal {
		if cap(fr.gflags) < n {
			fr.gflags = make([]bool, n)
		} else {
			fr.gflags = fr.gflags[:n]
			for i := range fr.gflags {
				fr.gflags[i] = false
			}
		}
	}
	fr.sp = 0
	fr.iters = fr.iters[:0]
	return fr
}

// putBFrame recycles fr; the returned value of a call is cloned before
// release, as with cframes.
func (ex *exec) putBFrame(fr *bframe) {
	ex.bframes = append(ex.bframes, fr)
}
