package lang

import "sort"

// Resolution is the analysis half of the front-end/engine split: it maps
// every variable name to an integer slot before execution, so the
// compiled engine replaces scope-map lookups with slice indexing.
//
// Slot layout follows PHP's two-namespace scoping exactly as the
// interpreter implements it:
//
//   - One program-wide global frame. Top-level script statements read
//     and write it directly; `global $x;` inside a function redirects
//     that function's $x to it. The global slot table is the union of
//     every name referenced by any script body plus every
//     `global`-declared name, so any script of the program can run
//     against the same layout.
//   - One local frame per function: every name the function body
//     references gets a local slot. `global` is a *statement* — it can
//     execute conditionally — so a global-declared name keeps its local
//     slot and the frame carries a runtime redirect flag per slot
//     (cframe.gflags); the declaration's execution flips the flag.
//   - Superglobals (_GET/_POST/_COOKIE) are recognized at compile time
//     and access ex.super directly; they never occupy a slot.
type resolution struct {
	globals  map[string]int
	nglobals int
	funcs    map[string]*funcInfo
}

// funcInfo is the per-function slot table.
type funcInfo struct {
	locals  map[string]int
	nlocals int
	// globalDecl holds names that appear in any `global` statement of
	// the function body; such names compile to flag-checked accessors.
	globalDecl map[string]bool
	// gslot maps each global-declared name to its global slot.
	gslot map[string]int
}

func isSuperglobal(name string) bool {
	return name == "_GET" || name == "_POST" || name == "_COOKIE"
}

// resolve computes the slot tables for prog.
func resolve(prog *Program) *resolution {
	res := &resolution{
		globals: make(map[string]int),
		funcs:   make(map[string]*funcInfo, len(prog.Funcs)),
	}
	gslot := func(name string) int {
		if s, ok := res.globals[name]; ok {
			return s
		}
		s := res.nglobals
		res.globals[name] = s
		res.nglobals++
		return s
	}

	// Deterministic walk order (slot numbering does not affect behavior,
	// but determinism keeps debugging sane).
	scriptNames := make([]string, 0, len(prog.Scripts))
	for name := range prog.Scripts {
		scriptNames = append(scriptNames, name)
	}
	sort.Strings(scriptNames)
	for _, name := range scriptNames {
		walkStmts(prog.Scripts[name].Body, func(n string) {
			if !isSuperglobal(n) {
				gslot(n)
			}
		}, nil)
	}

	funcNames := make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		funcNames = append(funcNames, name)
	}
	sort.Strings(funcNames)
	for _, name := range funcNames {
		fn := prog.Funcs[name]
		fi := &funcInfo{
			locals:     make(map[string]int),
			globalDecl: make(map[string]bool),
			gslot:      make(map[string]int),
		}
		lslot := func(n string) {
			if isSuperglobal(n) {
				return
			}
			if _, ok := fi.locals[n]; !ok {
				fi.locals[n] = fi.nlocals
				fi.nlocals++
			}
		}
		for _, p := range fn.Params {
			lslot(p.Name)
		}
		walkStmts(fn.Body, lslot, func(n string) {
			if isSuperglobal(n) {
				return
			}
			fi.globalDecl[n] = true
			fi.gslot[n] = gslot(n)
		})
		res.funcs[name] = fi
	}
	return res
}

// walkStmts visits every variable name referenced by stmts. onVar fires
// for each reference (including `global` names, which also need a local
// slot for the redirect flag); onGlobal additionally fires for names in
// `global` statements (nil to ignore).
func walkStmts(stmts []Stmt, onVar func(string), onGlobal func(string)) {
	for _, s := range stmts {
		walkStmt(s, onVar, onGlobal)
	}
}

func walkStmt(s Stmt, onVar func(string), onGlobal func(string)) {
	switch st := s.(type) {
	case *ExprStmt:
		walkExpr(st.E, onVar)
	case *Assign:
		walkLValue(st.Target, onVar)
		walkExpr(st.RHS, onVar)
	case *If:
		for _, c := range st.Conds {
			walkExpr(c, onVar)
		}
		for _, b := range st.Bodies {
			walkStmts(b, onVar, onGlobal)
		}
		walkStmts(st.Else, onVar, onGlobal)
	case *While:
		walkExpr(st.Cond, onVar)
		walkStmts(st.Body, onVar, onGlobal)
	case *For:
		if st.Init != nil {
			walkStmt(st.Init, onVar, onGlobal)
		}
		if st.Cond != nil {
			walkExpr(st.Cond, onVar)
		}
		if st.Post != nil {
			walkStmt(st.Post, onVar, onGlobal)
		}
		walkStmts(st.Body, onVar, onGlobal)
	case *Foreach:
		walkExpr(st.Subject, onVar)
		if st.KeyVar != "" {
			onVar(st.KeyVar)
		}
		onVar(st.ValVar)
		walkStmts(st.Body, onVar, onGlobal)
	case *Switch:
		walkExpr(st.Subject, onVar)
		for _, cs := range st.Cases {
			walkExpr(cs.Match, onVar)
			walkStmts(cs.Body, onVar, onGlobal)
		}
		walkStmts(st.Default, onVar, onGlobal)
	case *Return:
		if st.E != nil {
			walkExpr(st.E, onVar)
		}
	case *Echo:
		for _, a := range st.Args {
			walkExpr(a, onVar)
		}
	case *Global:
		for _, n := range st.Names {
			onVar(n)
			if onGlobal != nil {
				onGlobal(n)
			}
		}
	case *Unset:
		for _, lv := range st.Targets {
			walkLValue(lv, onVar)
		}
	case *Break, *Continue:
	}
}

func walkExpr(e Expr, onVar func(string)) {
	switch x := e.(type) {
	case *Lit:
	case *Var:
		onVar(x.Name)
	case *Index:
		walkExpr(x.Target, onVar)
		if x.Idx != nil {
			walkExpr(x.Idx, onVar)
		}
	case *Binary:
		walkExpr(x.L, onVar)
		walkExpr(x.R, onVar)
	case *Logical:
		walkExpr(x.L, onVar)
		walkExpr(x.R, onVar)
	case *Unary:
		walkExpr(x.E, onVar)
	case *Ternary:
		walkExpr(x.Cond, onVar)
		walkExpr(x.Then, onVar)
		walkExpr(x.Else, onVar)
	case *Call:
		for _, a := range x.Args {
			walkExpr(a, onVar)
		}
	case *ArrayLit:
		for _, ent := range x.Entries {
			if ent.Key != nil {
				walkExpr(ent.Key, onVar)
			}
			walkExpr(ent.Val, onVar)
		}
	case *IssetExpr:
		for _, lv := range x.Targets {
			walkLValue(lv, onVar)
		}
	case *EmptyExpr:
		walkLValue(x.Target, onVar)
	case *IncDec:
		walkLValue(x.Target, onVar)
	}
}

func walkLValue(lv *LValue, onVar func(string)) {
	onVar(lv.Name)
	for _, step := range lv.Steps {
		if step.Idx != nil {
			walkExpr(step.Idx, onVar)
		}
	}
}
