package lang

// Hot-path free lists. An exec serves exactly one request (or one SIMD
// group) on one goroutine, so the pools need no locking and die with
// the exec — nothing here outlives a Run.

// getLaneSlice returns a []Value of length ex.lanes for forLanes to
// fill. Cells may hold stale values from a previous faulted merge;
// every read path writes each cell before NewMulti sees the slice.
func (ex *exec) getLaneSlice() []Value {
	if n := len(ex.laneSlices); n > 0 {
		s := ex.laneSlices[n-1]
		ex.laneSlices = ex.laneSlices[:n-1]
		return s
	}
	return make([]Value, ex.lanes)
}

// putLaneSlice recycles a lane slice that no merged value retained.
func (ex *exec) putLaneSlice(s []Value) {
	if len(s) != ex.lanes {
		return
	}
	ex.laneSlices = append(ex.laneSlices, s)
}

// getFrame returns a zeroed activation record sized for cf.
func (ex *exec) getFrame(cf *cfunc) *cframe {
	n := cf.info.nlocals
	var fr *cframe
	if m := len(ex.frames); m > 0 {
		fr = ex.frames[m-1]
		ex.frames = ex.frames[:m-1]
	} else {
		fr = &cframe{ex: ex}
	}
	if cap(fr.locals) < n {
		fr.locals = make([]Value, n)
		fr.set = make([]bool, n)
	} else {
		fr.locals = fr.locals[:n]
		fr.set = fr.set[:n]
		for i := range fr.locals {
			fr.locals[i] = nil
			fr.set[i] = false
		}
	}
	if cf.hasGlobal {
		if cap(fr.gflags) < n {
			fr.gflags = make([]bool, n)
		} else {
			fr.gflags = fr.gflags[:n]
			for i := range fr.gflags {
				fr.gflags[i] = false
			}
		}
	}
	return fr
}

// putFrame recycles fr. The caller must be done with the frame's
// locals; the returned value of a call is cloned before the frame is
// released.
func (ex *exec) putFrame(fr *cframe) {
	ex.frames = append(ex.frames, fr)
}
