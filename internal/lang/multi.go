package lang

import "fmt"

// Multi is a multivalue (§3.1, §4.3): a vector holding one concrete value
// per re-executed request ("lane") in a control-flow group. The
// invariants are:
//
//  1. len(V) always equals the group size ("a collapse is all or
//     nothing: every multivalue has cardinality equal to the number of
//     requests being re-executed").
//  2. Lanes hold univalues only — a *Multi never nests inside a *Multi.
//     (An *Array lane may itself contain *Multi cells; see below.)
//  3. A Multi whose lanes are all equal must not exist: NewMulti
//     collapses it to the shared univalue, which is what produces the
//     deduplication the paper measures (§5.2).
//
// Arrays are the one subtlety: a univalue *Array may hold *Multi cells
// ("a container's cells can hold multivalues"), and a *Multi may hold
// per-lane *Array values ("a container can itself be a multivalue").
type Multi struct {
	V []Value
}

// NewMulti builds a multivalue from per-lane values, collapsing to a
// univalue when all lanes are equal. Lane values must not be *Multi.
func NewMulti(vals []Value) Value {
	if len(vals) == 0 {
		return nil
	}
	first := vals[0]
	same := true
	for _, v := range vals[1:] {
		if !Equal(first, v) {
			same = false
			break
		}
	}
	if same {
		return first
	}
	return &Multi{V: vals}
}

// IsMulti reports whether v is a multivalue.
func IsMulti(v Value) bool {
	_, ok := v.(*Multi)
	return ok
}

// Lane extracts lane i of v. For a univalue it returns v itself; callers
// that will mutate the result must clone it.
func Lane(v Value, i int) Value {
	if m, ok := v.(*Multi); ok {
		return m.V[i]
	}
	return v
}

// LaneClone extracts lane i of v, deep-copying so the result is
// exclusively owned. This implements scalar expansion (§4.3): expanding
// a univalue into per-lane copies.
func LaneClone(v Value, i int) Value {
	return CloneValue(Lane(v, i))
}

// Expand turns v into an explicit per-lane slice of length lanes,
// deep-copying a univalue into every lane (scalar expansion). The caller
// owns all returned values.
func Expand(v Value, lanes int) []Value {
	out := make([]Value, lanes)
	if m, ok := v.(*Multi); ok {
		if len(m.V) != lanes {
			panic(fmt.Sprintf("lang: multivalue cardinality %d != lanes %d", len(m.V), lanes))
		}
		copy(out, m.V)
		return out
	}
	for i := range out {
		out[i] = CloneValue(v)
	}
	return out
}

// Collapse re-checks a possibly-multivalue and collapses it if its lanes
// became equal (used after in-place lane mutations).
func Collapse(v Value) Value {
	m, ok := v.(*Multi)
	if !ok {
		return v
	}
	return NewMulti(m.V)
}

// DeepContainsMulti reports whether v is a multivalue or an array
// containing one (at any depth). The interpreter uses it to decide
// whether a builtin call must be split per-lane (§4.3 "Built-in
// functions") and whether an instruction executes univalently for the
// Fig. 11 accounting.
func DeepContainsMulti(v Value) bool {
	switch x := v.(type) {
	case *Multi:
		return true
	case *Array:
		for _, k := range x.keys {
			if DeepContainsMulti(x.m[k]) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// MaterializeLane resolves v for lane i, recursing into arrays so the
// result contains no *Multi anywhere. Used when splitting builtin calls
// and when emitting per-lane output.
func MaterializeLane(v Value, i int) Value {
	switch x := v.(type) {
	case *Multi:
		return MaterializeLane(x.V[i], i)
	case *Array:
		if !DeepContainsMulti(x) {
			return x
		}
		out := NewArray()
		out.nextIdx = x.nextIdx
		for _, k := range x.keys {
			out.Set(k, CloneValue(MaterializeLane(x.m[k], i)))
		}
		return out
	default:
		return v
	}
}
