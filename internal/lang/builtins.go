package lang

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// builtinFn is a pure builtin: it must not retain or mutate its
// arguments (reference builtins live in refBuiltins instead).
type builtinFn func(ex *exec, args []Value, line int) (Value, error)

// refBuiltinFn operates on a by-reference array first argument.
type refBuiltinFn func(ex *exec, arr *Array, rest []Value, line int) (Value, error)

func wantArgs(name string, args []Value, min, max int, line int) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		return &RuntimeError{Msg: fmt.Sprintf("%s(): wrong argument count %d", name, len(args)), Line: line}
	}
	return nil
}

var builtins map[string]builtinFn

var refBuiltins = map[string]refBuiltinFn{
	"sort": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		arr.SortValues(func(x, y Value) bool { return Compare(x, y) < 0 })
		return true, nil
	},
	"rsort": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		arr.SortValues(func(x, y Value) bool { return Compare(x, y) > 0 })
		return true, nil
	},
	"ksort": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		arr.SortKeys()
		return true, nil
	},
	"array_push": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		for _, v := range rest {
			arr.Append(CloneValue(v))
		}
		return int64(arr.Len()), nil
	},
	"array_pop": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		if arr.Len() == 0 {
			return nil, nil
		}
		k := arr.keys[len(arr.keys)-1]
		v := arr.m[k]
		arr.Delete(k)
		return v, nil
	},
	"array_shift": func(ex *exec, arr *Array, rest []Value, line int) (Value, error) {
		if arr.Len() == 0 {
			return nil, nil
		}
		k := arr.keys[0]
		v := arr.m[k]
		arr.Delete(k)
		// PHP reindexes integer keys after shift.
		reindex(arr)
		return v, nil
	},
}

func reindex(arr *Array) {
	vals := arr.Values()
	strKeys := make([]Key, len(arr.keys))
	copy(strKeys, arr.keys)
	arr.keys = arr.keys[:0]
	arr.m = make(map[Key]Value, len(vals))
	arr.nextIdx = 0
	for i, k := range strKeys {
		if k.IsInt {
			arr.Append(vals[i])
		} else {
			arr.Set(k, vals[i])
		}
	}
}

func init() {
	builtins = map[string]builtinFn{
		// --- strings ---
		"strlen": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strlen", args, 1, 1, line); err != nil {
				return nil, err
			}
			return int64(len(ToString(args[0]))), nil
		},
		"substr": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("substr", args, 2, 3, line); err != nil {
				return nil, err
			}
			s := ToString(args[0])
			start := int(ToInt(args[1]))
			n := len(s)
			if start < 0 {
				start = n + start
				if start < 0 {
					start = 0
				}
			}
			if start >= n {
				return "", nil
			}
			end := n
			if len(args) == 3 {
				ln := int(ToInt(args[2]))
				if ln < 0 {
					end = n + ln
				} else {
					end = start + ln
				}
			}
			if end > n {
				end = n
			}
			if end <= start {
				return "", nil
			}
			return s[start:end], nil
		},
		"strpos": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strpos", args, 2, 3, line); err != nil {
				return nil, err
			}
			s, sub := ToString(args[0]), ToString(args[1])
			off := 0
			if len(args) == 3 {
				off = int(ToInt(args[2]))
			}
			if off < 0 || off > len(s) {
				return false, nil
			}
			i := strings.Index(s[off:], sub)
			if i < 0 {
				return false, nil
			}
			return int64(off + i), nil
		},
		"str_replace": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("str_replace", args, 3, 3, line); err != nil {
				return nil, err
			}
			subject := ToString(args[2])
			if fromArr, ok := args[0].(*Array); ok {
				tos, toIsArr := args[1].(*Array)
				for i, fk := range fromArr.Keys() {
					from := ToString(fromArr.m[fk])
					to := ""
					if toIsArr {
						if i < tos.Len() {
							to = ToString(tos.m[tos.keys[i]])
						}
					} else {
						to = ToString(args[1])
					}
					subject = strings.ReplaceAll(subject, from, to)
				}
				return subject, nil
			}
			return strings.ReplaceAll(subject, ToString(args[0]), ToString(args[1])), nil
		},
		"strtolower": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strtolower", args, 1, 1, line); err != nil {
				return nil, err
			}
			return strings.ToLower(ToString(args[0])), nil
		},
		"strtoupper": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strtoupper", args, 1, 1, line); err != nil {
				return nil, err
			}
			return strings.ToUpper(ToString(args[0])), nil
		},
		"ucfirst": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("ucfirst", args, 1, 1, line); err != nil {
				return nil, err
			}
			s := ToString(args[0])
			if s == "" {
				return s, nil
			}
			return strings.ToUpper(s[:1]) + s[1:], nil
		},
		"trim": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("trim", args, 1, 2, line); err != nil {
				return nil, err
			}
			cut := " \t\n\r\x00\x0B"
			if len(args) == 2 {
				cut = ToString(args[1])
			}
			return strings.Trim(ToString(args[0]), cut), nil
		},
		"str_repeat": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("str_repeat", args, 2, 2, line); err != nil {
				return nil, err
			}
			n := ToInt(args[1])
			if n < 0 {
				return nil, &RuntimeError{Msg: "str_repeat(): negative count", Line: line}
			}
			if n > 1<<22 {
				return nil, &RuntimeError{Msg: "str_repeat(): count too large", Line: line}
			}
			return strings.Repeat(ToString(args[0]), int(n)), nil
		},
		"str_pad": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("str_pad", args, 2, 3, line); err != nil {
				return nil, err
			}
			s := ToString(args[0])
			width := int(ToInt(args[1]))
			pad := " "
			if len(args) == 3 {
				pad = ToString(args[2])
			}
			if pad == "" || len(s) >= width {
				return s, nil
			}
			var b strings.Builder
			b.WriteString(s)
			for b.Len() < width {
				b.WriteString(pad)
			}
			return b.String()[:width], nil
		},
		"strrev": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strrev", args, 1, 1, line); err != nil {
				return nil, err
			}
			s := []byte(ToString(args[0]))
			for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
				s[i], s[j] = s[j], s[i]
			}
			return string(s), nil
		},
		"implode": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("implode", args, 1, 2, line); err != nil {
				return nil, err
			}
			sep := ""
			var arr *Array
			if len(args) == 2 {
				sep = ToString(args[0])
				a, ok := args[1].(*Array)
				if !ok {
					return nil, &RuntimeError{Msg: "implode(): argument must be array", Line: line}
				}
				arr = a
			} else {
				a, ok := args[0].(*Array)
				if !ok {
					return nil, &RuntimeError{Msg: "implode(): argument must be array", Line: line}
				}
				arr = a
			}
			parts := make([]string, 0, arr.Len())
			for _, v := range arr.Values() {
				parts = append(parts, ToString(v))
			}
			return strings.Join(parts, sep), nil
		},
		"join": func(ex *exec, args []Value, line int) (Value, error) {
			return builtins["implode"](ex, args, line)
		},
		"explode": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("explode", args, 2, 2, line); err != nil {
				return nil, err
			}
			sep := ToString(args[0])
			if sep == "" {
				return nil, &RuntimeError{Msg: "explode(): empty delimiter", Line: line}
			}
			out := NewArray()
			for _, part := range strings.Split(ToString(args[1]), sep) {
				out.Append(part)
			}
			return out, nil
		},
		"sprintf": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("sprintf", args, 1, -1, line); err != nil {
				return nil, err
			}
			return phpSprintf(ToString(args[0]), args[1:], line)
		},
		"number_format": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("number_format", args, 1, 2, line); err != nil {
				return nil, err
			}
			dec := 0
			if len(args) == 2 {
				dec = int(ToInt(args[1]))
			}
			s := strconv.FormatFloat(ToFloat(args[0]), 'f', dec, 64)
			// Insert thousands separators.
			neg := strings.HasPrefix(s, "-")
			s = strings.TrimPrefix(s, "-")
			intPart, frac := s, ""
			if i := strings.IndexByte(s, '.'); i >= 0 {
				intPart, frac = s[:i], s[i:]
			}
			var b strings.Builder
			for i, c := range intPart {
				if i > 0 && (len(intPart)-i)%3 == 0 {
					b.WriteByte(',')
				}
				b.WriteRune(c)
			}
			out := b.String() + frac
			if neg {
				out = "-" + out
			}
			return out, nil
		},
		"htmlspecialchars": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("htmlspecialchars", args, 1, 1, line); err != nil {
				return nil, err
			}
			r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#039;")
			return r.Replace(ToString(args[0])), nil
		},
		"nl2br": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("nl2br", args, 1, 1, line); err != nil {
				return nil, err
			}
			return strings.ReplaceAll(ToString(args[0]), "\n", "<br />\n"), nil
		},
		"db_quote": func(ex *exec, args []Value, line int) (Value, error) {
			// Renders a value as a SQL string literal with '' escaping —
			// the escaping the sqlmini dialect understands. Applications
			// use it to interpolate user input into queries.
			if err := wantArgs("db_quote", args, 1, 1, line); err != nil {
				return nil, err
			}
			return "'" + strings.ReplaceAll(ToString(args[0]), "'", "''") + "'", nil
		},
		"md5": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("md5", args, 1, 1, line); err != nil {
				return nil, err
			}
			sum := md5.Sum([]byte(ToString(args[0])))
			return hex.EncodeToString(sum[:]), nil
		},
		"sha1": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("sha1", args, 1, 1, line); err != nil {
				return nil, err
			}
			sum := sha1.Sum([]byte(ToString(args[0])))
			return hex.EncodeToString(sum[:]), nil
		},
		"json_encode": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("json_encode", args, 1, 1, line); err != nil {
				return nil, err
			}
			var b strings.Builder
			if err := jsonEncode(&b, args[0]); err != nil {
				return nil, &RuntimeError{Msg: err.Error(), Line: line}
			}
			return b.String(), nil
		},
		"date": func(ex *exec, args []Value, line int) (Value, error) {
			// date(fmt, ts): ts is required in this runtime so that the
			// builtin is deterministic; pair it with time() for PHP's
			// one-argument behaviour.
			if err := wantArgs("date", args, 2, 2, line); err != nil {
				return nil, err
			}
			return phpDate(ToString(args[0]), ToInt(args[1])), nil
		},

		// --- arrays ---
		"count": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("count", args, 1, 1, line); err != nil {
				return nil, err
			}
			switch a := args[0].(type) {
			case *Array:
				return int64(a.Len()), nil
			case nil:
				return int64(0), nil
			default:
				return int64(1), nil
			}
		},
		"array_keys": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_keys", args, 1, 1, line); err != nil {
				return nil, err
			}
			a, ok := args[0].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_keys(): argument must be array", Line: line}
			}
			out := NewArray()
			for _, k := range a.Keys() {
				out.Append(k.Value())
			}
			return out, nil
		},
		"array_values": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_values", args, 1, 1, line); err != nil {
				return nil, err
			}
			a, ok := args[0].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_values(): argument must be array", Line: line}
			}
			out := NewArray()
			for _, v := range a.Values() {
				out.Append(CloneValue(v))
			}
			return out, nil
		},
		"in_array": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("in_array", args, 2, 3, line); err != nil {
				return nil, err
			}
			a, ok := args[1].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "in_array(): argument must be array", Line: line}
			}
			strict := len(args) == 3 && ToBool(args[2])
			for _, v := range a.Values() {
				if strict {
					if Equal(v, args[0]) {
						return true, nil
					}
				} else if LooseEqual(v, args[0]) {
					return true, nil
				}
			}
			return false, nil
		},
		"array_key_exists": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_key_exists", args, 2, 2, line); err != nil {
				return nil, err
			}
			a, ok := args[1].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_key_exists(): argument must be array", Line: line}
			}
			k, err := NormalizeKey(args[0])
			if err != nil {
				return nil, &RuntimeError{Msg: err.Error(), Line: line}
			}
			_, exists := a.Get(k)
			return exists, nil
		},
		"array_search": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_search", args, 2, 2, line); err != nil {
				return nil, err
			}
			a, ok := args[1].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_search(): argument must be array", Line: line}
			}
			for _, k := range a.Keys() {
				if LooseEqual(a.m[k], args[0]) {
					return k.Value(), nil
				}
			}
			return false, nil
		},
		"array_merge": func(ex *exec, args []Value, line int) (Value, error) {
			out := NewArray()
			for _, arg := range args {
				a, ok := arg.(*Array)
				if !ok {
					return nil, &RuntimeError{Msg: "array_merge(): arguments must be arrays", Line: line}
				}
				for _, k := range a.Keys() {
					if k.IsInt {
						out.Append(CloneValue(a.m[k]))
					} else {
						out.Set(k, CloneValue(a.m[k]))
					}
				}
			}
			return out, nil
		},
		"array_slice": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_slice", args, 2, 3, line); err != nil {
				return nil, err
			}
			a, ok := args[0].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_slice(): argument must be array", Line: line}
			}
			n := a.Len()
			off := int(ToInt(args[1]))
			if off < 0 {
				off = n + off
				if off < 0 {
					off = 0
				}
			}
			if off > n {
				off = n
			}
			end := n
			if len(args) == 3 && args[2] != nil {
				l := int(ToInt(args[2]))
				if l < 0 {
					end = n + l
				} else {
					end = off + l
				}
			}
			if end > n {
				end = n
			}
			out := NewArray()
			for i := off; i < end; i++ {
				k := a.keys[i]
				if k.IsInt {
					out.Append(CloneValue(a.m[k]))
				} else {
					out.Set(k, CloneValue(a.m[k]))
				}
			}
			return out, nil
		},
		"array_reverse": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_reverse", args, 1, 1, line); err != nil {
				return nil, err
			}
			a, ok := args[0].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_reverse(): argument must be array", Line: line}
			}
			out := NewArray()
			for i := a.Len() - 1; i >= 0; i-- {
				k := a.keys[i]
				if k.IsInt {
					out.Append(CloneValue(a.m[k]))
				} else {
					out.Set(k, CloneValue(a.m[k]))
				}
			}
			return out, nil
		},
		"array_sum": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("array_sum", args, 1, 1, line); err != nil {
				return nil, err
			}
			a, ok := args[0].(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "array_sum(): argument must be array", Line: line}
			}
			var sum Value = int64(0)
			for _, v := range a.Values() {
				var err error
				sum, err = arith("+", sum, v, line)
				if err != nil {
					return nil, err
				}
			}
			return sum, nil
		},
		"range": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("range", args, 2, 3, line); err != nil {
				return nil, err
			}
			lo, hi := ToInt(args[0]), ToInt(args[1])
			step := int64(1)
			if len(args) == 3 {
				step = ToInt(args[2])
				if step <= 0 {
					return nil, &RuntimeError{Msg: "range(): step must be positive", Line: line}
				}
			}
			out := NewArray()
			if lo <= hi {
				for v := lo; v <= hi; v += step {
					out.Append(v)
				}
			} else {
				for v := lo; v >= hi; v -= step {
					out.Append(v)
				}
			}
			return out, nil
		},

		// --- math ---
		"abs": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("abs", args, 1, 1, line); err != nil {
				return nil, err
			}
			switch x := args[0].(type) {
			case int64:
				if x < 0 {
					return -x, nil
				}
				return x, nil
			default:
				return math.Abs(ToFloat(args[0])), nil
			}
		},
		"max": func(ex *exec, args []Value, line int) (Value, error) {
			return extremum("max", args, line, func(c int) bool { return c > 0 })
		},
		"min": func(ex *exec, args []Value, line int) (Value, error) {
			return extremum("min", args, line, func(c int) bool { return c < 0 })
		},
		"floor": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("floor", args, 1, 1, line); err != nil {
				return nil, err
			}
			return math.Floor(ToFloat(args[0])), nil
		},
		"ceil": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("ceil", args, 1, 1, line); err != nil {
				return nil, err
			}
			return math.Ceil(ToFloat(args[0])), nil
		},
		"round": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("round", args, 1, 2, line); err != nil {
				return nil, err
			}
			prec := 0
			if len(args) == 2 {
				prec = int(ToInt(args[1]))
			}
			mult := math.Pow(10, float64(prec))
			return math.Round(ToFloat(args[0])*mult) / mult, nil
		},
		"intdiv": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("intdiv", args, 2, 2, line); err != nil {
				return nil, err
			}
			d := ToInt(args[1])
			if d == 0 {
				return nil, &RuntimeError{Msg: "intdiv(): division by zero", Line: line}
			}
			return ToInt(args[0]) / d, nil
		},
		"pow": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("pow", args, 2, 2, line); err != nil {
				return nil, err
			}
			b, e := ToFloat(args[0]), ToFloat(args[1])
			r := math.Pow(b, e)
			if bi, ok := args[0].(int64); ok {
				if ei, ok2 := args[1].(int64); ok2 && ei >= 0 && r == math.Trunc(r) && math.Abs(r) < 1e15 {
					_ = bi
					return int64(r), nil
				}
			}
			return r, nil
		},
		"sqrt": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("sqrt", args, 1, 1, line); err != nil {
				return nil, err
			}
			return math.Sqrt(ToFloat(args[0])), nil
		},

		// --- conversions and type predicates ---
		"intval": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("intval", args, 1, 1, line); err != nil {
				return nil, err
			}
			return ToInt(args[0]), nil
		},
		"floatval": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("floatval", args, 1, 1, line); err != nil {
				return nil, err
			}
			return ToFloat(args[0]), nil
		},
		"strval": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("strval", args, 1, 1, line); err != nil {
				return nil, err
			}
			return ToString(args[0]), nil
		},
		"boolval": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("boolval", args, 1, 1, line); err != nil {
				return nil, err
			}
			return ToBool(args[0]), nil
		},
		"is_array": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("is_array", args, 1, 1, line); err != nil {
				return nil, err
			}
			_, ok := args[0].(*Array)
			return ok, nil
		},
		"is_string": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("is_string", args, 1, 1, line); err != nil {
				return nil, err
			}
			_, ok := args[0].(string)
			return ok, nil
		},
		"is_int": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("is_int", args, 1, 1, line); err != nil {
				return nil, err
			}
			_, ok := args[0].(int64)
			return ok, nil
		},
		"is_numeric": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("is_numeric", args, 1, 1, line); err != nil {
				return nil, err
			}
			switch x := args[0].(type) {
			case int64, float64:
				return true, nil
			case string:
				return IsNumericString(x), nil
			default:
				return false, nil
			}
		},
		"is_null": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("is_null", args, 1, 1, line); err != nil {
				return nil, err
			}
			return args[0] == nil, nil
		},
		"gettype": func(ex *exec, args []Value, line int) (Value, error) {
			if err := wantArgs("gettype", args, 1, 1, line); err != nil {
				return nil, err
			}
			switch args[0].(type) {
			case nil:
				return "NULL", nil
			case bool:
				return "boolean", nil
			case int64:
				return "integer", nil
			case float64:
				return "double", nil
			case string:
				return "string", nil
			case *Array:
				return "array", nil
			default:
				return "unknown type", nil
			}
		},

		// --- testing hooks ---
		"__force_fallback": func(ex *exec, args []Value, line int) (Value, error) {
			if ex.mode == ModeSIMD && ex.lanes > 1 {
				return nil, &FallbackError{Reason: "__force_fallback"}
			}
			return nil, nil
		},
	}
}

func extremum(name string, args []Value, line int, better func(cmp int) bool) (Value, error) {
	var vals []Value
	if len(args) == 1 {
		a, ok := args[0].(*Array)
		if !ok {
			return args[0], nil
		}
		vals = a.Values()
	} else {
		vals = args
	}
	if len(vals) == 0 {
		return nil, &RuntimeError{Msg: name + "(): empty argument", Line: line}
	}
	best := vals[0]
	for _, v := range vals[1:] {
		if better(Compare(v, best)) {
			best = v
		}
	}
	return best, nil
}

// phpSprintf implements the subset of sprintf the applications use:
// %s %d %f %x %% with optional 0-flag, width, and precision.
func phpSprintf(format string, args []Value, line int) (Value, error) {
	var b strings.Builder
	ai := 0
	nextArg := func() (Value, error) {
		if ai >= len(args) {
			return nil, &RuntimeError{Msg: "sprintf(): too few arguments", Line: line}
		}
		v := args[ai]
		ai++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			return nil, &RuntimeError{Msg: "sprintf(): trailing %", Line: line}
		}
		if format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		spec := "%"
		for i < len(format) && (format[i] == '0' || format[i] == '-' || format[i] == '+' ||
			(format[i] >= '1' && format[i] <= '9') || format[i] == '.' ||
			(spec != "%" && format[i] >= '0' && format[i] <= '9')) {
			spec += string(format[i])
			i++
		}
		if i >= len(format) {
			return nil, &RuntimeError{Msg: "sprintf(): malformed directive", Line: line}
		}
		verb := format[i]
		v, err := nextArg()
		if err != nil {
			return nil, err
		}
		switch verb {
		case 's':
			fmt.Fprintf(&b, spec+"s", ToString(v))
		case 'd':
			fmt.Fprintf(&b, spec+"d", ToInt(v))
		case 'f', 'F':
			if !strings.Contains(spec, ".") {
				spec += ".6"
			}
			fmt.Fprintf(&b, spec+"f", ToFloat(v))
		case 'x':
			fmt.Fprintf(&b, spec+"x", ToInt(v))
		case 'X':
			fmt.Fprintf(&b, spec+"X", ToInt(v))
		default:
			return nil, &RuntimeError{Msg: fmt.Sprintf("sprintf(): unsupported verb %%%c", verb), Line: line}
		}
	}
	return b.String(), nil
}

// phpDate implements a subset of date() format characters, in UTC so the
// output is deterministic given the timestamp.
func phpDate(format string, ts int64) string {
	t := time.Unix(ts, 0).UTC()
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		switch format[i] {
		case 'Y':
			fmt.Fprintf(&b, "%04d", t.Year())
		case 'y':
			fmt.Fprintf(&b, "%02d", t.Year()%100)
		case 'm':
			fmt.Fprintf(&b, "%02d", int(t.Month()))
		case 'n':
			fmt.Fprintf(&b, "%d", int(t.Month()))
		case 'd':
			fmt.Fprintf(&b, "%02d", t.Day())
		case 'j':
			fmt.Fprintf(&b, "%d", t.Day())
		case 'H':
			fmt.Fprintf(&b, "%02d", t.Hour())
		case 'i':
			fmt.Fprintf(&b, "%02d", t.Minute())
		case 's':
			fmt.Fprintf(&b, "%02d", t.Second())
		case '\\':
			if i+1 < len(format) {
				i++
				b.WriteByte(format[i])
			}
		default:
			b.WriteByte(format[i])
		}
	}
	return b.String()
}

func jsonEncode(b *strings.Builder, v Value) error {
	switch x := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		b.WriteString(strconv.Quote(x))
	case *Array:
		if isList(x) {
			b.WriteByte('[')
			for i, v := range x.Values() {
				if i > 0 {
					b.WriteByte(',')
				}
				if err := jsonEncode(b, v); err != nil {
					return err
				}
			}
			b.WriteByte(']')
			return nil
		}
		b.WriteByte('{')
		for i, k := range x.Keys() {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(k.String()))
			b.WriteByte(':')
			if err := jsonEncode(b, x.m[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("json_encode: unsupported type %s", TypeName(v))
	}
	return nil
}

func isList(a *Array) bool {
	for i, k := range a.keys {
		if !k.IsInt || k.I != int64(i) {
			return false
		}
	}
	return true
}

// nativeNonDet computes real non-deterministic values; used only in
// ModePlain (the unmodified baseline runtime).
func nativeNonDet(name string, args []Value) (Value, error) {
	switch name {
	case "time":
		return time.Now().Unix(), nil
	case "microtime":
		return float64(time.Now().UnixNano()) / 1e9, nil
	case "mt_rand", "rand":
		if len(args) == 2 {
			lo, hi := ToInt(args[0]), ToInt(args[1])
			if hi < lo {
				return lo, nil
			}
			return lo + rand.Int63n(hi-lo+1), nil
		}
		return rand.Int63n(1 << 31), nil
	case "uniqid":
		return fmt.Sprintf("%x", time.Now().UnixNano()), nil
	case "getmypid":
		return int64(1), nil
	default:
		return nil, &RuntimeError{Msg: "unknown nondet builtin " + name}
	}
}
