package lang

import (
	"fmt"
	"strings"
)

// The compiled engine lowers the AST once per Program into a tree of
// pre-bound Go closures. The lowering removes the two per-node costs
// the tree-walker pays on every statement of every request:
//
//   - dispatch: the type switch over AST nodes becomes a direct closure
//     call, with call targets (user function, ref builtin, state op,
//     nondet, pure builtin, undefined) resolved at compile time — the
//     function table is immutable after Compile;
//   - scoping: scope-map lookups become integer slot indexing into a
//     per-frame slice (see resolve.go for the slot model).
//
// All *semantic* helpers — binaryOp, indexRead, setPath, condDirection,
// forLanes, the state-op and builtin cores — are shared with the
// interpreter, so the two engines cannot drift on value semantics; the
// lowering only changes how the AST is traversed and variables are
// addressed. Every runtime error the interpreter raises lazily (bad
// call shapes, undefined functions) is likewise deferred to execution
// time here: a compile-time-detectable fault on a branch that never
// executes must not fault the request.

// cstmt and cexpr are the lowered forms of Stmt and Expr.
type cstmt func(fr *cframe) (ctrl, Value, error)
type cexpr func(fr *cframe) (Value, error)

// cframe is one activation record: the script's frame addresses the
// exec's global slots directly (locals unused); function frames carry
// local slots, a presence bitmap, and — only for functions containing
// `global` statements — per-slot redirect flags.
type cframe struct {
	ex     *exec
	locals []Value
	set    []bool
	gflags []bool
}

// cprog is a Program lowered for the compiled engine.
type cprog struct {
	res     *resolution
	scripts map[string]*cscript
	funcs   map[string]*cfunc
}

type cscript struct{ body []cstmt }

type cfunc struct {
	name      string
	params    []cparam
	body      []cstmt
	info      *funcInfo
	hasGlobal bool
}

// cparam is a compiled parameter. slot is -1 for a superglobal-named
// parameter (the binding is unobservable — reads resolve to the
// superglobal — so the argument is evaluated for effect and discarded,
// exactly what the interpreter's dead map entry amounts to).
type cparam struct {
	slot int
	def  cexpr // compiled in the function's own context; nil if required
}

// compiled returns prog's lowered form, computing it once. Programs are
// shared between the server and concurrent verifier workers, so the
// lowering is guarded by a sync.Once.
func (p *Program) compiled() (*cprog, error) {
	p.lowerOnce.Do(func() {
		p.lowered = lower(p)
	})
	return p.lowered, nil
}

func lower(prog *Program) *cprog {
	res := resolve(prog)
	cp := &cprog{
		res:     res,
		scripts: make(map[string]*cscript, len(prog.Scripts)),
		funcs:   make(map[string]*cfunc, len(prog.Funcs)),
	}
	// Two passes over the function table so mutually recursive calls
	// bind their *cfunc before bodies are lowered.
	for name, fn := range prog.Funcs {
		hasGlobal := false
		walkStmts(fn.Body, func(string) {}, func(n string) {
			if !isSuperglobal(n) {
				hasGlobal = true
			}
		})
		cp.funcs[name] = &cfunc{name: name, info: res.funcs[name], hasGlobal: hasGlobal}
	}
	for name, fn := range prog.Funcs {
		cf := cp.funcs[name]
		cc := &compiler{prog: prog, res: res, funcs: cp.funcs, fn: cf.info}
		cf.params = make([]cparam, len(fn.Params))
		for i, pm := range fn.Params {
			slot := -1
			if !isSuperglobal(pm.Name) {
				slot = cf.info.locals[pm.Name]
			}
			cf.params[i] = cparam{slot: slot}
			if pm.Default != nil {
				cf.params[i].def = cc.compileExpr(pm.Default)
			}
		}
		cf.body = cc.compileStmts(fn.Body)
	}
	for name, s := range prog.Scripts {
		cc := &compiler{prog: prog, res: res, funcs: cp.funcs}
		cp.scripts[name] = &cscript{body: cc.compileStmts(s.Body)}
	}
	return cp
}

// compiler lowers one scope's AST; fn is nil when lowering a script
// body (which addresses the global frame directly).
type compiler struct {
	prog  *Program
	res   *resolution
	funcs map[string]*cfunc
	fn    *funcInfo
}

// caccess is a variable's compiled accessor quadruple, mirroring
// scope.get/set/exists/unset for the name's resolved storage class.
type caccess struct {
	get    func(fr *cframe) Value
	set    func(fr *cframe, v Value)
	exists func(fr *cframe) bool
	unset  func(fr *cframe)
}

func globalAccess(g int) caccess {
	return caccess{
		get: func(fr *cframe) Value { return fr.ex.gslots[g] },
		set: func(fr *cframe, v Value) {
			fr.ex.gslots[g] = v
			fr.ex.gset[g] = true
		},
		exists: func(fr *cframe) bool { return fr.ex.gset[g] },
		unset: func(fr *cframe) {
			fr.ex.gslots[g] = nil
			fr.ex.gset[g] = false
		},
	}
}

func (cc *compiler) access(name string) caccess {
	if isSuperglobal(name) {
		return caccess{
			get: func(fr *cframe) Value { return fr.ex.super[name] },
			set: func(fr *cframe, v Value) {
				if arr, ok := v.(*Array); ok {
					fr.ex.super[name] = arr
				}
			},
			exists: func(fr *cframe) bool { return true },
			unset:  func(fr *cframe) {},
		}
	}
	if cc.fn == nil {
		g, ok := cc.res.globals[name]
		if !ok {
			panic(fmt.Sprintf("lang: unresolved global %q", name))
		}
		return globalAccess(g)
	}
	l, ok := cc.fn.locals[name]
	if !ok {
		panic(fmt.Sprintf("lang: unresolved local %q", name))
	}
	if !cc.fn.globalDecl[name] {
		return caccess{
			get: func(fr *cframe) Value { return fr.locals[l] },
			set: func(fr *cframe, v Value) {
				fr.locals[l] = v
				fr.set[l] = true
			},
			exists: func(fr *cframe) bool { return fr.set[l] },
			unset: func(fr *cframe) {
				fr.locals[l] = nil
				fr.set[l] = false
			},
		}
	}
	// `global $name` appears somewhere in this function: the statement
	// executes (or not) at runtime, so every access checks the frame's
	// redirect flag.
	g := cc.fn.gslot[name]
	return caccess{
		get: func(fr *cframe) Value {
			if fr.gflags[l] {
				return fr.ex.gslots[g]
			}
			return fr.locals[l]
		},
		set: func(fr *cframe, v Value) {
			if fr.gflags[l] {
				fr.ex.gslots[g] = v
				fr.ex.gset[g] = true
				return
			}
			fr.locals[l] = v
			fr.set[l] = true
		},
		exists: func(fr *cframe) bool {
			if fr.gflags[l] {
				return fr.ex.gset[g]
			}
			return fr.set[l]
		},
		unset: func(fr *cframe) {
			if fr.gflags[l] {
				fr.ex.gslots[g] = nil
				fr.ex.gset[g] = false
				return
			}
			fr.locals[l] = nil
			fr.set[l] = false
		},
	}
}

// runCStmts mirrors exec.execStmts.
func runCStmts(fr *cframe, stmts []cstmt) (ctrl, Value, error) {
	for _, s := range stmts {
		c, v, err := s(fr)
		if err != nil {
			return ctrlNone, nil, err
		}
		if c != ctrlNone {
			return c, v, nil
		}
	}
	return ctrlNone, nil, nil
}

// step mirrors the statement-entry accounting of exec.execStmt.
func (ex *exec) step() error {
	ex.steps++
	if ex.steps > ex.maxSteps {
		return &RuntimeError{Msg: "step limit exceeded"}
	}
	return nil
}

func (cc *compiler) compileStmts(stmts []Stmt) []cstmt {
	out := make([]cstmt, len(stmts))
	for i, s := range stmts {
		out[i] = cc.compileStmt(s)
	}
	return out
}

func (cc *compiler) compileStmt(s Stmt) cstmt {
	switch st := s.(type) {
	case *ExprStmt:
		e := cc.compileExpr(st.E)
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			_, err := e(fr)
			return ctrlNone, nil, err
		}
	case *Assign:
		return cc.compileAssign(st)
	case *If:
		conds := make([]cexpr, len(st.Conds))
		for i, c := range st.Conds {
			conds[i] = cc.compileExpr(c)
		}
		bodies := make([][]cstmt, len(st.Bodies))
		for i, b := range st.Bodies {
			bodies[i] = cc.compileStmts(b)
		}
		var els []cstmt
		if st.Else != nil {
			els = cc.compileStmts(st.Else)
		}
		site := st.Site
		return func(fr *cframe) (ctrl, Value, error) {
			ex := fr.ex
			if err := ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			for i, cond := range conds {
				v, err := cond(fr)
				if err != nil {
					return ctrlNone, nil, err
				}
				taken, err := ex.condDirection(v)
				if err != nil {
					return ctrlNone, nil, err
				}
				if taken {
					ex.branch(site, i)
					return runCStmts(fr, bodies[i])
				}
			}
			ex.branch(site, len(conds))
			if els != nil {
				return runCStmts(fr, els)
			}
			return ctrlNone, nil, nil
		}
	case *While:
		cond := cc.compileExpr(st.Cond)
		body := cc.compileStmts(st.Body)
		site := st.Site
		return func(fr *cframe) (ctrl, Value, error) {
			ex := fr.ex
			if err := ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			for {
				v, err := cond(fr)
				if err != nil {
					return ctrlNone, nil, err
				}
				taken, err := ex.condDirection(v)
				if err != nil {
					return ctrlNone, nil, err
				}
				if !taken {
					ex.branch(site, 0)
					return ctrlNone, nil, nil
				}
				ex.branch(site, 1)
				c, rv, err := runCStmts(fr, body)
				if err != nil {
					return ctrlNone, nil, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil, nil
				case ctrlReturn:
					return ctrlReturn, rv, nil
				}
				if err := ex.step(); err != nil {
					return ctrlNone, nil, err
				}
			}
		}
	case *For:
		var initS, postS cstmt
		if st.Init != nil {
			initS = cc.compileStmt(st.Init)
		}
		if st.Post != nil {
			postS = cc.compileStmt(st.Post)
		}
		var cond cexpr
		if st.Cond != nil {
			cond = cc.compileExpr(st.Cond)
		}
		body := cc.compileStmts(st.Body)
		site := st.Site
		return func(fr *cframe) (ctrl, Value, error) {
			ex := fr.ex
			if err := ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			if initS != nil {
				if _, _, err := initS(fr); err != nil {
					return ctrlNone, nil, err
				}
			}
			for {
				if cond != nil {
					v, err := cond(fr)
					if err != nil {
						return ctrlNone, nil, err
					}
					taken, err := ex.condDirection(v)
					if err != nil {
						return ctrlNone, nil, err
					}
					if !taken {
						ex.branch(site, 0)
						return ctrlNone, nil, nil
					}
				}
				ex.branch(site, 1)
				c, rv, err := runCStmts(fr, body)
				if err != nil {
					return ctrlNone, nil, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil, nil
				case ctrlReturn:
					return ctrlReturn, rv, nil
				}
				if postS != nil {
					if _, _, err := postS(fr); err != nil {
						return ctrlNone, nil, err
					}
				}
			}
		}
	case *Foreach:
		return cc.compileForeach(st)
	case *Switch:
		subj := cc.compileExpr(st.Subject)
		type carm struct {
			match cexpr
			body  []cstmt
		}
		arms := make([]carm, len(st.Cases))
		for i, cs := range st.Cases {
			arms[i] = carm{match: cc.compileExpr(cs.Match), body: cc.compileStmts(cs.Body)}
		}
		def := cc.compileStmts(st.Default)
		site := st.Site
		return func(fr *cframe) (ctrl, Value, error) {
			ex := fr.ex
			if err := ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			subject, err := subj(fr)
			if err != nil {
				return ctrlNone, nil, err
			}
			arm := -2
			for i := range arms {
				mv, err := arms[i].match(fr)
				if err != nil {
					return ctrlNone, nil, err
				}
				matched, err := ex.looseEqDirection(subject, mv)
				if err != nil {
					return ctrlNone, nil, err
				}
				if matched {
					arm = i
					break
				}
			}
			if arm == -2 {
				arm = -1
			}
			ex.branch(site, arm+1)
			var body []cstmt
			if arm >= 0 {
				body = arms[arm].body
			} else {
				body = def
			}
			c, rv, err := runCStmts(fr, body)
			if err != nil {
				return ctrlNone, nil, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, nil, nil // break binds to switch, as in PHP
			case ctrlReturn:
				return ctrlReturn, rv, nil
			case ctrlContinue:
				return ctrlContinue, nil, nil
			}
			return ctrlNone, nil, nil
		}
	case *Return:
		var e cexpr
		if st.E != nil {
			e = cc.compileExpr(st.E)
		}
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			var v Value
			if e != nil {
				var err error
				v, err = e(fr)
				if err != nil {
					return ctrlNone, nil, err
				}
			}
			return ctrlReturn, v, nil
		}
	case *Break:
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			return ctrlBreak, nil, nil
		}
	case *Continue:
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			return ctrlContinue, nil, nil
		}
	case *Echo:
		args := make([]cexpr, len(st.Args))
		for i, a := range st.Args {
			args[i] = cc.compileExpr(a)
		}
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			for _, a := range args {
				v, err := a(fr)
				if err != nil {
					return ctrlNone, nil, err
				}
				fr.ex.echo(v)
			}
			return ctrlNone, nil, nil
		}
	case *Global:
		// At top level the declaration is inert (the script frame IS the
		// global frame). In a function it flips the redirect flag for
		// each named local slot — at runtime, because the statement may
		// sit behind a branch.
		var lslots []int
		if cc.fn != nil {
			for _, n := range st.Names {
				if !isSuperglobal(n) {
					lslots = append(lslots, cc.fn.locals[n])
				}
			}
		}
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			for _, l := range lslots {
				fr.gflags[l] = true
			}
			return ctrlNone, nil, nil
		}
	case *Unset:
		tgts := make([]*clval, len(st.Targets))
		for i, lv := range st.Targets {
			tgts[i] = cc.compileLValue(lv)
		}
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			for _, t := range tgts {
				if err := unsetCLV(fr, t); err != nil {
					return ctrlNone, nil, err
				}
			}
			return ctrlNone, nil, nil
		}
	default:
		rt := &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			return ctrlNone, nil, rt
		}
	}
}

func (cc *compiler) compileAssign(st *Assign) cstmt {
	rhs := cc.compileExpr(st.RHS)
	tgt := cc.compileLValue(st.Target)
	if st.Op == "=" {
		return func(fr *cframe) (ctrl, Value, error) {
			if err := fr.ex.step(); err != nil {
				return ctrlNone, nil, err
			}
			v, err := rhs(fr)
			if err != nil {
				return ctrlNone, nil, err
			}
			return ctrlNone, nil, assignCLV(fr, tgt, v)
		}
	}
	binOp := strings.TrimSuffix(st.Op, "=")
	line := st.Line
	return func(fr *cframe) (ctrl, Value, error) {
		if err := fr.ex.step(); err != nil {
			return ctrlNone, nil, err
		}
		// RHS first, then the old value — the interpreter's order.
		v, err := rhs(fr)
		if err != nil {
			return ctrlNone, nil, err
		}
		old, err := readCLV(fr, tgt)
		if err != nil {
			return ctrlNone, nil, err
		}
		nv, err := fr.ex.binaryOp(binOp, old, v, line)
		if err != nil {
			return ctrlNone, nil, err
		}
		return ctrlNone, nil, assignCLV(fr, tgt, nv)
	}
}

func (cc *compiler) compileForeach(st *Foreach) cstmt {
	subjE := cc.compileExpr(st.Subject)
	var keyAcc caccess
	hasKey := st.KeyVar != ""
	if hasKey {
		keyAcc = cc.access(st.KeyVar)
	}
	valAcc := cc.access(st.ValVar)
	body := cc.compileStmts(st.Body)
	site, line, mutates := st.Site, st.Line, st.MutatesVal
	return func(fr *cframe) (ctrl, Value, error) {
		ex := fr.ex
		if err := ex.step(); err != nil {
			return ctrlNone, nil, err
		}
		subject, err := subjE(fr)
		if err != nil {
			return ctrlNone, nil, err
		}
		switch subj := subject.(type) {
		case *Array:
			keys, vals := subj.snapshot()
			for it := range keys {
				ex.branch(site, 1)
				if hasKey {
					keyAcc.set(fr, keys[it].Value())
				}
				valAcc.set(fr, bindElem(vals[it], mutates))
				c, rv, err := runCStmts(fr, body)
				if err != nil {
					return ctrlNone, nil, err
				}
				switch c {
				case ctrlBreak:
					ex.branch(site, 0)
					return ctrlNone, nil, nil
				case ctrlReturn:
					return ctrlReturn, rv, nil
				}
			}
			ex.branch(site, 0)
			return ctrlNone, nil, nil
		case *Multi:
			laneKeys := make([][]Key, ex.lanes)
			laneVals := make([][]Value, ex.lanes)
			n := -1
			if _, err := ex.forLanes(func(i int) (Value, error) {
				a, ok := MaterializeLane(subj.V[i], i).(*Array)
				if !ok {
					return nil, &RuntimeError{Msg: "foreach over non-array", Line: line}
				}
				if n == -1 {
					n = a.Len()
				} else if a.Len() != n {
					return nil, ErrDivergence
				}
				laneKeys[i], laneVals[i] = a.snapshot()
				return nil, nil
			}); err != nil {
				return ctrlNone, nil, err
			}
			for it := 0; it < n; it++ {
				ex.branch(site, 1)
				keys := make([]Value, ex.lanes)
				vals := make([]Value, ex.lanes)
				for i := 0; i < ex.lanes; i++ {
					keys[i] = laneKeys[i][it].Value()
					vals[i] = bindElem(laneVals[i][it], mutates)
				}
				if hasKey {
					keyAcc.set(fr, NewMulti(keys))
				}
				valAcc.set(fr, NewMulti(vals))
				c, rv, err := runCStmts(fr, body)
				if err != nil {
					return ctrlNone, nil, err
				}
				switch c {
				case ctrlBreak:
					ex.branch(site, 0)
					return ctrlNone, nil, nil
				case ctrlReturn:
					return ctrlReturn, rv, nil
				}
			}
			ex.branch(site, 0)
			return ctrlNone, nil, nil
		case nil:
			ex.branch(site, 0)
			return ctrlNone, nil, nil
		default:
			return ctrlNone, nil, &RuntimeError{Msg: "foreach over non-array", Line: line}
		}
	}
}

// errExpr defers a compile-time-detectable fault to execution time, so
// a faulty call on a never-taken branch stays silent exactly as it does
// under the interpreter.
func errExpr(rt *RuntimeError) cexpr {
	return func(fr *cframe) (Value, error) { return nil, rt }
}

func (cc *compiler) compileExprs(exprs []Expr) []cexpr {
	out := make([]cexpr, len(exprs))
	for i, e := range exprs {
		out[i] = cc.compileExpr(e)
	}
	return out
}

func (cc *compiler) compileExpr(e Expr) cexpr {
	switch x := e.(type) {
	case *Lit:
		v := x.Val
		return func(fr *cframe) (Value, error) { return v, nil }
	case *Var:
		acc := cc.access(x.Name)
		return func(fr *cframe) (Value, error) { return acc.get(fr), nil }
	case *Index:
		if x.Idx == nil {
			return errExpr(&RuntimeError{Msg: "cannot read append-index $a[]", Line: x.Line})
		}
		tgt := cc.compileExpr(x.Target)
		idx := cc.compileExpr(x.Idx)
		line := x.Line
		return func(fr *cframe) (Value, error) {
			t, err := tgt(fr)
			if err != nil {
				return nil, err
			}
			i, err := idx(fr)
			if err != nil {
				return nil, err
			}
			ex := fr.ex
			ex.countInstr(IsMulti(t) || IsMulti(i))
			return ex.indexRead(t, i, line)
		}
	case *Binary:
		l := cc.compileExpr(x.L)
		r := cc.compileExpr(x.R)
		op, line := x.Op, x.Line
		return func(fr *cframe) (Value, error) {
			lv, err := l(fr)
			if err != nil {
				return nil, err
			}
			rv, err := r(fr)
			if err != nil {
				return nil, err
			}
			return fr.ex.binaryOp(op, lv, rv, line)
		}
	case *Logical:
		l := cc.compileExpr(x.L)
		r := cc.compileExpr(x.R)
		and := x.Op == "&&"
		site := x.Site
		return func(fr *cframe) (Value, error) {
			ex := fr.ex
			lv, err := l(fr)
			if err != nil {
				return nil, err
			}
			lb, err := ex.condDirection(lv)
			if err != nil {
				return nil, err
			}
			if and {
				if !lb {
					ex.branch(site, 0)
					return false, nil
				}
				ex.branch(site, 1)
			} else {
				if lb {
					ex.branch(site, 1)
					return true, nil
				}
				ex.branch(site, 0)
			}
			rv, err := r(fr)
			if err != nil {
				return nil, err
			}
			return logicalResult(rv), nil
		}
	case *Unary:
		sub := cc.compileExpr(x.E)
		op, line := x.Op, x.Line
		return func(fr *cframe) (Value, error) {
			v, err := sub(fr)
			if err != nil {
				return nil, err
			}
			return fr.ex.unaryOp(op, v, line)
		}
	case *Ternary:
		cond := cc.compileExpr(x.Cond)
		then := cc.compileExpr(x.Then)
		els := cc.compileExpr(x.Else)
		site := x.Site
		return func(fr *cframe) (Value, error) {
			v, err := cond(fr)
			if err != nil {
				return nil, err
			}
			taken, err := fr.ex.condDirection(v)
			if err != nil {
				return nil, err
			}
			if taken {
				fr.ex.branch(site, 1)
				return then(fr)
			}
			fr.ex.branch(site, 0)
			return els(fr)
		}
	case *Call:
		return cc.compileCall(x)
	case *ArrayLit:
		type centry struct {
			key cexpr // nil for append entries
			val cexpr
		}
		entries := make([]centry, len(x.Entries))
		for i, ent := range x.Entries {
			entries[i].val = cc.compileExpr(ent.Val)
			if ent.Key != nil {
				entries[i].key = cc.compileExpr(ent.Key)
			}
		}
		line := x.Line
		return func(fr *cframe) (Value, error) {
			arr := NewArray()
			for _, ent := range entries {
				v, err := ent.val(fr)
				if err != nil {
					return nil, err
				}
				if ent.key == nil {
					arr.Append(CloneValue(v))
					continue
				}
				kv, err := ent.key(fr)
				if err != nil {
					return nil, err
				}
				if IsMulti(kv) {
					return nil, &FallbackError{Reason: "multivalue key in array literal"}
				}
				k, err := NormalizeKey(kv)
				if err != nil {
					return nil, &RuntimeError{Msg: err.Error(), Line: line}
				}
				arr.Set(k, CloneValue(v))
			}
			return arr, nil
		}
	case *IssetExpr:
		tgts := make([]*clval, len(x.Targets))
		for i, lv := range x.Targets {
			tgts[i] = cc.compileLValue(lv)
		}
		return func(fr *cframe) (Value, error) {
			res := true
			for _, t := range tgts {
				v, err := issetCLV(fr, t)
				if err != nil {
					return nil, err
				}
				one, err := fr.ex.condDirection(v)
				if err != nil {
					return nil, err
				}
				if !one {
					res = false
					break
				}
			}
			return res, nil
		}
	case *EmptyExpr:
		t := cc.compileLValue(x.Target)
		return func(fr *cframe) (Value, error) {
			v, err := issetCLV(fr, t)
			if err != nil {
				return nil, err
			}
			set, err := fr.ex.condDirection(v)
			if err != nil {
				return nil, err
			}
			if !set {
				return true, nil
			}
			cur, err := readCLV(fr, t)
			if err != nil {
				return nil, err
			}
			truthy, err := fr.ex.condDirection(cur)
			if err != nil {
				return nil, err
			}
			return !truthy, nil
		}
	case *IncDec:
		t := cc.compileLValue(x.Target)
		op := "+"
		if x.Op == "--" {
			op = "-"
		}
		pre, line := x.Pre, x.Line
		return func(fr *cframe) (Value, error) {
			old, err := readCLV(fr, t)
			if err != nil {
				return nil, err
			}
			nv, err := fr.ex.binaryOp(op, old, int64(1), line)
			if err != nil {
				return nil, err
			}
			if err := assignCLV(fr, t, nv); err != nil {
				return nil, err
			}
			if pre {
				return nv, nil
			}
			if old == nil {
				return int64(0), nil
			}
			return old, nil
		}
	default:
		return errExpr(&RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)})
	}
}

// compileCall resolves the dispatch order of exec.evalCall — user
// functions, reference builtins, state ops, nondet builtins, pure
// builtins — at compile time. The tables are immutable after Compile,
// so the resolution cannot differ from the interpreter's per-call
// lookup.
func (cc *compiler) compileCall(x *Call) cexpr {
	name, line := x.Name, x.Line
	if _, ok := cc.prog.Funcs[name]; ok {
		cf := cc.funcs[name]
		args := cc.compileExprs(x.Args)
		return func(fr *cframe) (Value, error) {
			return callCFunc(fr, cf, args, line)
		}
	}
	if fn, ok := refBuiltins[name]; ok {
		if len(x.Args) == 0 {
			return errExpr(&RuntimeError{Msg: name + "() expects an argument", Line: line})
		}
		lv, err := exprToLValue(x.Args[0])
		if err != nil {
			return errExpr(&RuntimeError{Msg: name + "(): first argument must be a variable", Line: line})
		}
		clv := cc.compileLValue(lv)
		rest := cc.compileExprs(x.Args[1:])
		return func(fr *cframe) (Value, error) {
			cur, err := readCLV(fr, clv)
			if err != nil {
				return nil, err
			}
			restVals := make([]Value, len(rest))
			for i, re := range rest {
				v, err := re(fr)
				if err != nil {
					return nil, err
				}
				restVals[i] = v
			}
			result, newTarget, err := fr.ex.refBuiltinApply(name, fn, cur, restVals, line)
			if err != nil {
				return nil, err
			}
			if err := assignCLV(fr, clv, newTarget); err != nil {
				return nil, err
			}
			return result, nil
		}
	}
	if stateOps[name] {
		args := cc.compileExprs(x.Args)
		return func(fr *cframe) (Value, error) {
			vals, err := evalCArgs(fr, args)
			if err != nil {
				return nil, err
			}
			return fr.ex.stateOpCore(name, vals, line)
		}
	}
	if nondetBuiltins[name] {
		args := cc.compileExprs(x.Args)
		return func(fr *cframe) (Value, error) {
			vals, err := evalCArgs(fr, args)
			if err != nil {
				return nil, err
			}
			return fr.ex.nonDetCore(name, vals)
		}
	}
	if b, ok := builtins[name]; ok {
		args := cc.compileExprs(x.Args)
		return func(fr *cframe) (Value, error) {
			vals, err := evalCArgs(fr, args)
			if err != nil {
				return nil, err
			}
			return fr.ex.invokeBuiltin(name, b, vals, line)
		}
	}
	return errExpr(&RuntimeError{Msg: fmt.Sprintf("call to undefined function %s()", name), Line: line})
}

func evalCArgs(fr *cframe, args []cexpr) ([]Value, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := a(fr)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// callCFunc mirrors exec.callUser: arguments are copies, defaults are
// evaluated in the new frame, extra arguments are evaluated in the
// caller's frame for their effects and discarded.
func callCFunc(fr *cframe, cf *cfunc, args []cexpr, line int) (Value, error) {
	ex := fr.ex
	if ex.callDepth >= maxCallDepth {
		return nil, &RuntimeError{Msg: "maximum call depth exceeded", Line: line}
	}
	fr2 := ex.getFrame(cf)
	for i, p := range cf.params {
		if i < len(args) {
			v, err := args[i](fr)
			if err != nil {
				ex.putFrame(fr2)
				return nil, err
			}
			if p.slot >= 0 {
				fr2.locals[p.slot] = CloneValue(v)
				fr2.set[p.slot] = true
			}
			continue
		}
		if p.def != nil {
			v, err := p.def(fr2)
			if err != nil {
				ex.putFrame(fr2)
				return nil, err
			}
			if p.slot >= 0 {
				fr2.locals[p.slot] = v
				fr2.set[p.slot] = true
			}
			continue
		}
		if p.slot >= 0 {
			fr2.locals[p.slot] = nil
			fr2.set[p.slot] = true
		}
	}
	for i := len(cf.params); i < len(args); i++ {
		if _, err := args[i](fr); err != nil {
			ex.putFrame(fr2)
			return nil, err
		}
	}
	ex.callDepth++
	c, rv, err := runCStmts(fr2, cf.body)
	ex.callDepth--
	ex.putFrame(fr2)
	if err != nil {
		return nil, err
	}
	if c == ctrlReturn {
		return CloneValue(rv), nil
	}
	return nil, nil
}

// clval is a compiled lvalue path. A nil element of steps is the
// append form $a[].
type clval struct {
	acc   caccess
	steps []cexpr
	line  int
}

func (cc *compiler) compileLValue(lv *LValue) *clval {
	steps := make([]cexpr, len(lv.Steps))
	for i, s := range lv.Steps {
		if s.Idx != nil {
			steps[i] = cc.compileExpr(s.Idx)
		}
	}
	return &clval{acc: cc.access(lv.Name), steps: steps, line: lv.Line}
}

// readCLV mirrors exec.readLValue.
func readCLV(fr *cframe, t *clval) (Value, error) {
	cur := t.acc.get(fr)
	for _, stepE := range t.steps {
		if stepE == nil {
			return nil, &RuntimeError{Msg: "cannot read append-index", Line: t.line}
		}
		idx, err := stepE(fr)
		if err != nil {
			return nil, err
		}
		v, err := fr.ex.indexRead(cur, idx, t.line)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	return cur, nil
}

// assignCLV mirrors exec.assignTo.
func assignCLV(fr *cframe, t *clval, val Value) error {
	ex := fr.ex
	if len(t.steps) == 0 {
		t.acc.set(fr, CloneValue(val))
		ex.countInstr(DeepContainsMulti(val))
		return nil
	}
	idxs := make([]Value, len(t.steps))
	for i, stepE := range t.steps {
		if stepE == nil {
			if i != len(t.steps)-1 {
				return &RuntimeError{Msg: "append-index must be final", Line: t.line}
			}
			idxs[i] = appendMarker{}
			continue
		}
		v, err := stepE(fr)
		if err != nil {
			return err
		}
		idxs[i] = v
	}
	root := t.acc.get(fr)
	multi := DeepContainsMulti(root) || DeepContainsMulti(val)
	for _, iv := range idxs {
		if _, isApp := iv.(appendMarker); !isApp && IsMulti(iv) {
			multi = true
		}
	}
	ex.countInstr(multi)
	newRoot, err := ex.setPath(root, idxs, val, t.line)
	if err != nil {
		return err
	}
	t.acc.set(fr, newRoot)
	return nil
}

// issetCLV mirrors exec.evalIsset.
func issetCLV(fr *cframe, t *clval) (Value, error) {
	if !t.acc.exists(fr) {
		return false, nil
	}
	cur := t.acc.get(fr)
	for _, stepE := range t.steps {
		if stepE == nil {
			return nil, &RuntimeError{Msg: "isset on append-index", Line: t.line}
		}
		idx, err := stepE(fr)
		if err != nil {
			return nil, err
		}
		v, err := fr.ex.indexReadForIsset(cur, idx)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	if m, ok := cur.(*Multi); ok {
		vals := make([]Value, len(m.V))
		for i, lvv := range m.V {
			vals[i] = lvv != nil
		}
		return NewMulti(vals), nil
	}
	return cur != nil, nil
}

// unsetCLV mirrors exec.execUnset.
func unsetCLV(fr *cframe, t *clval) error {
	if len(t.steps) == 0 {
		t.acc.unset(fr)
		return nil
	}
	parent := &clval{acc: t.acc, steps: t.steps[:len(t.steps)-1], line: t.line}
	parentVal, err := readCLV(fr, parent)
	if err != nil {
		return err
	}
	last := t.steps[len(t.steps)-1]
	if last == nil {
		return &RuntimeError{Msg: "unset on append-index", Line: t.line}
	}
	idx, err := last(fr)
	if err != nil {
		return err
	}
	return fr.ex.unsetIn(parentVal, idx, t.line)
}
