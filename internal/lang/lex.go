package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind enumerates token kinds produced by the lexer.
type tokKind uint8

const (
	tokEOF   tokKind = iota
	tokVar           // $name
	tokIdent         // bare identifier / keyword
	tokInt
	tokFloat
	tokString
	tokOp // operator or punctuation; text in tok.text
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokVar:
		return "$" + t.text
	case tokInt:
		return strconv.FormatInt(t.ival, 10)
	case tokFloat:
		return strconv.FormatFloat(t.fval, 'g', -1, 64)
	case tokString:
		return strconv.Quote(t.text)
	default:
		return t.text
	}
}

// lexer tokenizes a source string.
type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (l *lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return token{}, l.errorf("bare '$'")
		}
		return token{kind: tokVar, text: l.src[start:l.pos], line: l.line}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	default:
		return l.lexOp()
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\n':
			l.line++
			l.pos++
		case c == '#':
			l.skipLineComment()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLineComment()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos < len(l.src) {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			j := l.pos + 1
			if l.src[j] == '+' || l.src[j] == '-' {
				j++
			}
			if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				isFloat = true
				l.pos = j + 1
				continue
			}
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errorf("bad float literal %q", text)
		}
		return token{kind: tokFloat, fval: f, line: l.line}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, l.errorf("bad int literal %q", text)
	}
	return token{kind: tokInt, ival: n, line: l.line}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: b.String(), line: l.line}, nil
		}
		if c == '\n' {
			l.line++
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			e := l.src[l.pos+1]
			if quote == '\'' {
				// Single-quoted: only \' and \\ are escapes.
				if e == '\'' || e == '\\' {
					b.WriteByte(e)
					l.pos += 2
					continue
				}
				b.WriteByte(c)
				l.pos++
				continue
			}
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case '$':
				b.WriteByte('$')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte('\\')
				b.WriteByte(e)
			}
			l.pos += 2
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf("unterminated string literal")
}

// operator tokens, longest first so maximal munch works.
var operators = []string{
	"===", "!==", "<=>",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", ".=", "%=", "=>", "->",
	"+", "-", "*", "/", "%", ".", "!", "=", "<", ">",
	"(", ")", "[", "]", "{", "}", ",", ";", "?", ":", "&", "@",
}

func (l *lexer) lexOp() (token, error) {
	rest := l.src[l.pos:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return token{kind: tokOp, text: op, line: l.line}, nil
		}
	}
	return token{}, l.errorf("unexpected character %q", l.src[l.pos])
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
