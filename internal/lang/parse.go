package lang

import (
	"fmt"
	"sort"
)

// Compile parses a set of named source files into a Program. Function
// declarations from every file are hoisted into a single global function
// table (as in PHP); each file's remaining top-level statements form the
// script body invoked when a request names that file.
func Compile(files map[string]string) (*Program, error) {
	prog := &Program{
		Scripts: make(map[string]*Script),
		Funcs:   make(map[string]*FuncDecl),
	}
	siteCounter := Site(0)
	// Deterministic compile order so Site IDs are stable across runs:
	// the server and verifier must agree on digests.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := &parser{lex: newLexer(name, files[name]), sites: &siteCounter}
		if err := p.advance(); err != nil {
			return nil, err
		}
		body, funcs, err := p.parseFile()
		if err != nil {
			return nil, err
		}
		for _, f := range funcs {
			if _, dup := prog.Funcs[f.Name]; dup {
				return nil, fmt.Errorf("%s: function %q redeclared", name, f.Name)
			}
			prog.Funcs[f.Name] = f
		}
		prog.Scripts[name] = &Script{Name: name, Body: body}
	}
	prog.NumSites = int(siteCounter)
	// Front-end constant folding: every engine executes the folded AST,
	// so the engines cannot disagree, and the pass preserves the digest
	// stream, step counts and fault behavior by construction (fold.go).
	foldProgram(prog)
	return prog, nil
}

// MustCompile is Compile that panics on error; for tests and embedded
// application sources that are compile-time constants.
func MustCompile(files map[string]string) *Program {
	p, err := Compile(files)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	lex   *lexer
	tok   token
	sites *Site
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) newSite() Site {
	s := *p.sites
	*p.sites = s + 1
	return s
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s (at %q)", p.lex.file, p.tok.line, fmt.Sprintf(format, args...), p.tok.String())
}

func (p *parser) isOp(text string) bool {
	return p.tok.kind == tokOp && p.tok.text == text
}

func (p *parser) isKw(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) expectOp(text string) error {
	if !p.isOp(text) {
		return p.errorf("expected %q", text)
	}
	return p.advance()
}

func (p *parser) parseFile() (body []Stmt, funcs []*FuncDecl, err error) {
	for p.tok.kind != tokEOF {
		if p.isKw("function") {
			f, err := p.parseFuncDecl()
			if err != nil {
				return nil, nil, err
			}
			funcs = append(funcs, f)
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, nil, err
		}
		body = append(body, s)
	}
	return body, funcs, nil
}

func (p *parser) parseFuncDecl() (*FuncDecl, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume 'function'
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected function name")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.isOp(")") {
		if len(params) > 0 {
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokVar {
			return nil, p.errorf("expected parameter")
		}
		prm := Param{Name: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			def, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			prm.Default = def
		}
		params = append(params, prm)
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Params: params, Body: body, Line: line}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.isOp("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, p.advance()
}

// parseBlockOrStmt accepts either { ... } or a single statement.
func (p *parser) parseBlockOrStmt() ([]Stmt, error) {
	if p.isOp("{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.tok.line
	switch {
	case p.isKw("if"):
		return p.parseIf()
	case p.isKw("while"):
		return p.parseWhile()
	case p.isKw("for"):
		return p.parseFor()
	case p.isKw("foreach"):
		return p.parseForeach()
	case p.isKw("switch"):
		return p.parseSwitch()
	case p.isKw("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp(";") {
			return &Return{Line: line}, p.advance()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Return{E: e, Line: line}, p.expectOp(";")
	case p.isKw("break"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Break{Line: line}, p.expectOp(";")
	case p.isKw("continue"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Continue{Line: line}, p.expectOp(";")
	case p.isKw("echo"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return &Echo{Args: args, Line: line}, p.expectOp(";")
	case p.isKw("global"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		var names []string
		for {
			if p.tok.kind != tokVar {
				return nil, p.errorf("expected variable after global")
			}
			names = append(names, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return &Global{Names: names, Line: line}, p.expectOp(";")
	case p.isKw("unset"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var targets []*LValue
		for {
			lv, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			targets = append(targets, lv)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &Unset{Targets: targets, Line: line}, p.expectOp(";")
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expectOp(";")
	}
}

// parseSimpleStmt parses an assignment or expression statement without
// the trailing semicolon (shared with for-loop clauses).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.tok.line
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", ".=", "%="} {
		if p.isOp(op) {
			lv, err := exprToLValue(e)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Target: lv, Op: op, RHS: rhs, Line: line}, nil
		}
	}
	return &ExprStmt{E: e, Line: line}, nil
}

// exprToLValue reinterprets a parsed expression as an assignment target.
func exprToLValue(e Expr) (*LValue, error) {
	var steps []IndexStep
	for {
		switch x := e.(type) {
		case *Var:
			// reverse steps
			for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
				steps[i], steps[j] = steps[j], steps[i]
			}
			return &LValue{Name: x.Name, Steps: steps, Line: x.Line}, nil
		case *Index:
			steps = append(steps, IndexStep{Idx: x.Idx})
			e = x.Target
		default:
			return nil, fmt.Errorf("invalid assignment target")
		}
	}
}

func (p *parser) parseLValue() (*LValue, error) {
	e, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	lv, err := exprToLValue(e)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	return lv, nil
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.tok.line
	st := &If{Site: p.newSite(), Line: line}
	for {
		if err := p.advance(); err != nil { // consume 'if'/'elseif'
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		st.Conds = append(st.Conds, cond)
		st.Bodies = append(st.Bodies, body)
		if p.isKw("elseif") {
			continue
		}
		if p.isKw("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isKw("if") {
				continue
			}
			els, err := p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	}
}

func (p *parser) parseWhile() (Stmt, error) {
	line := p.tok.line
	site := p.newSite()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Site: site, Line: line}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.tok.line
	site := p.newSite()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &For{Site: site, Line: line}
	if !p.isOp(";") {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	if !p.isOp(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	if !p.isOp(")") {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseForeach() (Stmt, error) {
	line := p.tok.line
	site := p.newSite()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.isKw("as") {
		return nil, p.errorf("expected 'as' in foreach")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokVar {
		return nil, p.errorf("expected variable in foreach")
	}
	first := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	st := &Foreach{Subject: subject, Site: site, Line: line}
	if p.isOp("=>") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokVar {
			return nil, p.errorf("expected value variable in foreach")
		}
		st.KeyVar = first
		st.ValVar = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		st.ValVar = first
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	st.MutatesVal = stmtsMutateInterior(body, st.ValVar)
	return st, nil
}

// stmtsMutateInterior reports whether the statements can mutate the
// interior of variable name: an indexed assignment ($v[...] = x), an
// indexed increment, unset of an element, or a by-reference builtin
// whose target is $v. Plain reassignment ($v = x) only replaces the
// variable slot and is not interior mutation.
func stmtsMutateInterior(stmts []Stmt, name string) bool {
	for _, s := range stmts {
		if stmtMutatesInterior(s, name) {
			return true
		}
	}
	return false
}

func lvalueMutatesInterior(lv *LValue, name string) bool {
	return lv.Name == name && len(lv.Steps) > 0
}

func stmtMutatesInterior(s Stmt, name string) bool {
	switch x := s.(type) {
	case *ExprStmt:
		return exprMutatesInterior(x.E, name)
	case *Assign:
		return lvalueMutatesInterior(x.Target, name) || exprMutatesInterior(x.RHS, name)
	case *If:
		for _, c := range x.Conds {
			if exprMutatesInterior(c, name) {
				return true
			}
		}
		for _, b := range x.Bodies {
			if stmtsMutateInterior(b, name) {
				return true
			}
		}
		return stmtsMutateInterior(x.Else, name)
	case *While:
		return exprMutatesInterior(x.Cond, name) || stmtsMutateInterior(x.Body, name)
	case *For:
		if x.Init != nil && stmtMutatesInterior(x.Init, name) {
			return true
		}
		if x.Cond != nil && exprMutatesInterior(x.Cond, name) {
			return true
		}
		if x.Post != nil && stmtMutatesInterior(x.Post, name) {
			return true
		}
		return stmtsMutateInterior(x.Body, name)
	case *Foreach:
		return exprMutatesInterior(x.Subject, name) || stmtsMutateInterior(x.Body, name)
	case *Switch:
		if exprMutatesInterior(x.Subject, name) {
			return true
		}
		for _, c := range x.Cases {
			if exprMutatesInterior(c.Match, name) || stmtsMutateInterior(c.Body, name) {
				return true
			}
		}
		return stmtsMutateInterior(x.Default, name)
	case *Return:
		return x.E != nil && exprMutatesInterior(x.E, name)
	case *Echo:
		for _, a := range x.Args {
			if exprMutatesInterior(a, name) {
				return true
			}
		}
		return false
	case *Unset:
		for _, lv := range x.Targets {
			if lvalueMutatesInterior(lv, name) {
				return true
			}
		}
		return false
	case *Global:
		// `global $v` rebinds the name to the global slot: the binding
		// aliasing assumption breaks, so treat as mutating.
		for _, n := range x.Names {
			if n == name {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func exprMutatesInterior(e Expr, name string) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Lit, *Var, *IssetExpr, *EmptyExpr:
		return false
	case *Index:
		if x.Idx != nil && exprMutatesInterior(x.Idx, name) {
			return true
		}
		return exprMutatesInterior(x.Target, name)
	case *Binary:
		return exprMutatesInterior(x.L, name) || exprMutatesInterior(x.R, name)
	case *Logical:
		return exprMutatesInterior(x.L, name) || exprMutatesInterior(x.R, name)
	case *Unary:
		return exprMutatesInterior(x.E, name)
	case *Ternary:
		return exprMutatesInterior(x.Cond, name) || exprMutatesInterior(x.Then, name) || exprMutatesInterior(x.Else, name)
	case *IncDec:
		return lvalueMutatesInterior(x.Target, name)
	case *Call:
		if _, isRef := refBuiltins[x.Name]; isRef && len(x.Args) > 0 {
			if lv, err := exprToLValue(x.Args[0]); err == nil && lv.Name == name {
				return true
			}
		}
		for _, a := range x.Args {
			if exprMutatesInterior(a, name) {
				return true
			}
		}
		return false
	case *ArrayLit:
		for _, ent := range x.Entries {
			if ent.Key != nil && exprMutatesInterior(ent.Key, name) {
				return true
			}
			if exprMutatesInterior(ent.Val, name) {
				return true
			}
		}
		return false
	default:
		return true // unknown node: be conservative
	}
}

func (p *parser) parseSwitch() (Stmt, error) {
	line := p.tok.line
	site := p.newSite()
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	st := &Switch{Subject: subject, Site: site, Line: line}
	for !p.isOp("}") {
		switch {
		case p.isKw("case"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			match, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Match: match, Body: body})
		case p.isKw("default"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errorf("expected case or default in switch")
		}
	}
	return st, p.advance()
}

func (p *parser) parseCaseBody() ([]Stmt, error) {
	var out []Stmt
	for !p.isKw("case") && !p.isKw("default") && !p.isOp("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated switch")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// --- Expression parsing, by precedence ---

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.isOp("?") {
		return cond, nil
	}
	line := p.tok.line
	site := p.newSite()
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els, Site: site, Line: line}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isOp("||") || p.isKw("or") {
		line := p.tok.line
		site := p.newSite()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Logical{Op: "||", L: l, R: r, Site: site, Line: line}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.isOp("&&") || p.isKw("and") {
		line := p.tok.line
		site := p.newSite()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &Logical{Op: "&&", L: l, R: r, Site: site, Line: line}
	}
	return l, nil
}

func (p *parser) parseEquality() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isOp("==") || p.isOp("!=") || p.isOp("===") || p.isOp("!==") {
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.isOp("<") || p.isOp("<=") || p.isOp(">") || p.isOp(">=") {
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") || p.isOp(".") {
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") {
		op := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	line := p.tok.line
	switch {
	case p.isOp("!"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", E: e, Line: line}, nil
	case p.isOp("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e, Line: line}, nil
	case p.isOp("+"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	case p.isOp("++") || p.isOp("--"):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		lv, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		return &IncDec{Target: lv, Op: op, Pre: true, Line: line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("["):
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isOp("]") { // append form $a[]
				if err := p.advance(); err != nil {
					return nil, err
				}
				e = &Index{Target: e, Idx: nil, Line: line}
				continue
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &Index{Target: e, Idx: idx, Line: line}
		case p.isOp("++") || p.isOp("--"):
			op := p.tok.text
			line := p.tok.line
			lv, lvErr := exprToLValue(e)
			if lvErr != nil {
				return nil, p.errorf("%v", lvErr)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			e = &IncDec{Target: lv, Op: op, Pre: false, Line: line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	line := p.tok.line
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Var{Name: name, Line: line}, nil
	case tokInt:
		v := p.tok.ival
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, Line: line}, nil
	case tokFloat:
		v := p.tok.fval
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, Line: line}, nil
	case tokString:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, Line: line}, nil
	case tokIdent:
		name := p.tok.text
		switch name {
		case "true", "TRUE", "True":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Lit{Val: true, Line: line}, nil
		case "false", "FALSE", "False":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Lit{Val: false, Line: line}, nil
		case "null", "NULL", "Null":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Lit{Val: nil, Line: line}, nil
		case "isset":
			return p.parseIsset()
		case "empty":
			return p.parseEmpty()
		case "array":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseArrayLit("(", ")")
		default:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.isOp("(") {
				return nil, p.errorf("unexpected identifier %q", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			for !p.isOp(")") {
				if len(args) > 0 {
					if err := p.expectOp(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Call{Name: name, Args: args, Line: line}, nil
		}
	case tokOp:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectOp(")")
		case "[":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseArrayLitBody("]")
		}
	}
	return nil, p.errorf("unexpected token")
}

func (p *parser) parseIsset() (Expr, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var targets []*LValue
	for {
		lv, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		targets = append(targets, lv)
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &IssetExpr{Targets: targets, Line: line}, nil
}

func (p *parser) parseEmpty() (Expr, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	lv, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &EmptyExpr{Target: lv, Line: line}, nil
}

func (p *parser) parseArrayLit(open, close string) (Expr, error) {
	if err := p.expectOp(open); err != nil {
		return nil, err
	}
	return p.parseArrayLitBody(close)
}

func (p *parser) parseArrayLitBody(close string) (Expr, error) {
	line := p.tok.line
	lit := &ArrayLit{Line: line}
	for !p.isOp(close) {
		if len(lit.Entries) > 0 {
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
			// trailing comma
			if p.isOp(close) {
				break
			}
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		entry := ArrayEntry{Val: first}
		if p.isOp("=>") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			entry = ArrayEntry{Key: first, Val: val}
		}
		lit.Entries = append(lit.Entries, entry)
	}
	return lit, p.advance()
}
