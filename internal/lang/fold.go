package lang

// Front-end constant folding and algebraic simplification, run once by
// Compile over the parsed AST. Every engine executes the same folded
// program — the server that records and the verifier that re-executes
// share one *Program through the content-keyed cache — so folding can
// never make the engines disagree; the rules below additionally keep
// the recorded observables of a single program stable:
//
//   - Only expressions without branch Sites fold (Binary, Unary). The
//     control-flow digest is a stream of (site, direction) records;
//     folding a site-free expression leaves that stream untouched.
//     Logical, Ternary, If, While, For, Foreach and Switch keep their
//     nodes — and their Sites — even when their conditions are
//     constant, so every branch record is still emitted with the same
//     site and the same direction numbering.
//   - Only provably non-faulting operations fold. The folder calls the
//     runtime's own scalarBinary/scalarUnary; if the operation would
//     fault (division by zero, bad operand types) it is left in place
//     so the fault — and its digest record — still happens at runtime.
//   - Statements are never deleted or merged, so Steps accounting is
//     unchanged. Dead code elimination only empties statement *bodies*
//     that provably never execute (an If arm behind a constant-false
//     guard, a while(false) body): running zero statements of a body
//     that was never entered is the behavior the unfolded program had.
//
// Instruction counts (InstrUni/InstrMulti) do shrink when constants
// fold — that is the point — but they are statistics, not verdict
// inputs, and they stay bit-identical across engines because all
// engines share the folded AST.

// foldProgram folds prog in place.
func foldProgram(prog *Program) {
	for _, fn := range prog.Funcs {
		for i := range fn.Params {
			if fn.Params[i].Default != nil {
				fn.Params[i].Default = foldExpr(fn.Params[i].Default)
			}
		}
		foldStmts(fn.Body)
	}
	for _, s := range prog.Scripts {
		foldStmts(s.Body)
	}
}

func foldStmts(stmts []Stmt) {
	for _, s := range stmts {
		foldStmt(s)
	}
}

func foldStmt(s Stmt) {
	switch st := s.(type) {
	case *ExprStmt:
		st.E = foldExpr(st.E)
	case *Assign:
		st.RHS = foldExpr(st.RHS)
		foldLValue(st.Target)
	case *If:
		// decided < 0: no constant-true guard seen yet. Once a guard is
		// constant true, every later arm (and the else) is unreachable;
		// arms behind constant-false guards are unreachable individually.
		// Conds are never removed or reordered: direction numbering is
		// positional, and the live guards still evaluate at runtime.
		decided := -1
		for i, cond := range st.Conds {
			st.Conds[i] = foldExpr(cond)
			if decided >= 0 {
				st.Bodies[i] = nil
				continue
			}
			if lit, ok := st.Conds[i].(*Lit); ok {
				if ToBool(lit.Val) {
					decided = i
					foldStmts(st.Bodies[i])
				} else {
					st.Bodies[i] = nil
				}
				continue
			}
			foldStmts(st.Bodies[i])
		}
		if decided >= 0 {
			st.Else = nil
		} else {
			foldStmts(st.Else)
		}
	case *While:
		st.Cond = foldExpr(st.Cond)
		if lit, ok := st.Cond.(*Lit); ok && !ToBool(lit.Val) {
			st.Body = nil
			return
		}
		foldStmts(st.Body)
	case *For:
		if st.Init != nil {
			foldStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = foldExpr(st.Cond)
			if lit, ok := st.Cond.(*Lit); ok && !ToBool(lit.Val) {
				// The condition is tested before the first iteration, so
				// neither the body nor the post statement ever runs.
				st.Body = nil
				st.Post = nil
				return
			}
		}
		if st.Post != nil {
			foldStmt(st.Post)
		}
		foldStmts(st.Body)
	case *Foreach:
		st.Subject = foldExpr(st.Subject)
		foldStmts(st.Body)
	case *Switch:
		st.Subject = foldExpr(st.Subject)
		for i := range st.Cases {
			st.Cases[i].Match = foldExpr(st.Cases[i].Match)
		}
		subj, subjConst := st.Subject.(*Lit)
		decided := -1
		undecidable := false
		for i := range st.Cases {
			if decided >= 0 {
				st.Cases[i].Body = nil
				continue
			}
			m, mConst := st.Cases[i].Match.(*Lit)
			if !subjConst || !mConst || undecidable {
				// Can't tell whether this arm matches (or whether an
				// earlier undecidable arm already did); keep its body.
				undecidable = true
				foldStmts(st.Cases[i].Body)
				continue
			}
			if LooseEqual(subj.Val, m.Val) {
				decided = i
				foldStmts(st.Cases[i].Body)
			} else {
				st.Cases[i].Body = nil
			}
		}
		if decided >= 0 {
			st.Default = nil
		} else {
			foldStmts(st.Default)
		}
	case *Return:
		if st.E != nil {
			st.E = foldExpr(st.E)
		}
	case *Echo:
		for i, a := range st.Args {
			st.Args[i] = foldExpr(a)
		}
		st.Args = mergeEchoArgs(st.Args)
	case *Unset:
		for _, lv := range st.Targets {
			foldLValue(lv)
		}
	case *Break, *Continue, *Global:
	}
}

// mergeEchoArgs pre-coerces literal echo arguments to strings and
// merges adjacent literals into one, so `echo "a", 1+2, "b";` emits a
// single shared output segment at runtime.
func mergeEchoArgs(args []Expr) []Expr {
	out := args[:0]
	for _, a := range args {
		lit, ok := a.(*Lit)
		if !ok {
			out = append(out, a)
			continue
		}
		s := ToString(lit.Val)
		if n := len(out); n > 0 {
			if prev, ok := out[n-1].(*Lit); ok {
				if ps, ok := prev.Val.(string); ok {
					out[n-1] = &Lit{Val: ps + s, Line: prev.Line}
					continue
				}
			}
		}
		out = append(out, &Lit{Val: s, Line: lit.Line})
	}
	return out
}

func foldLValue(lv *LValue) {
	for i := range lv.Steps {
		if lv.Steps[i].Idx != nil {
			lv.Steps[i].Idx = foldExpr(lv.Steps[i].Idx)
		}
	}
}

func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Lit, *Var:
		return e
	case *Index:
		x.Target = foldExpr(x.Target)
		if x.Idx != nil {
			x.Idx = foldExpr(x.Idx)
		}
		return x
	case *Binary:
		x.L = foldExpr(x.L)
		x.R = foldExpr(x.R)
		l, lok := x.L.(*Lit)
		r, rok := x.R.(*Lit)
		if lok && rok {
			// The runtime's own scalar core, so folded results cannot
			// differ from evaluated ones. A faulting operation (division
			// by zero, bad operands) stays unfolded: the fault belongs to
			// runtime, where it is recorded into the digest.
			if v, err := scalarBinary(x.Op, l.Val, r.Val, x.Line); err == nil {
				return &Lit{Val: v, Line: x.Line}
			}
		}
		return x
	case *Logical:
		x.L = foldExpr(x.L)
		x.R = foldExpr(x.R)
		return x
	case *Unary:
		x.E = foldExpr(x.E)
		if l, ok := x.E.(*Lit); ok {
			if v, err := scalarUnary(x.Op, l.Val, x.Line); err == nil {
				return &Lit{Val: v, Line: x.Line}
			}
		}
		return x
	case *Ternary:
		x.Cond = foldExpr(x.Cond)
		x.Then = foldExpr(x.Then)
		x.Else = foldExpr(x.Else)
		return x
	case *Call:
		for i, a := range x.Args {
			x.Args[i] = foldExpr(a)
		}
		return x
	case *ArrayLit:
		for i := range x.Entries {
			if x.Entries[i].Key != nil {
				x.Entries[i].Key = foldExpr(x.Entries[i].Key)
			}
			x.Entries[i].Val = foldExpr(x.Entries[i].Val)
		}
		return x
	case *IssetExpr:
		for _, lv := range x.Targets {
			foldLValue(lv)
		}
		return x
	case *EmptyExpr:
		foldLValue(x.Target)
		return x
	case *IncDec:
		foldLValue(x.Target)
		return x
	default:
		return e
	}
}
