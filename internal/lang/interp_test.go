package lang

import (
	"strings"
	"testing"
)

// runPlain executes src as a single plain-mode request and returns output.
func runPlain(t *testing.T, src string, in RequestInput) string {
	t.Helper()
	out, err := tryRunPlain(src, in)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func tryRunPlain(src string, in RequestInput) (string, error) {
	prog, err := Compile(map[string]string{"main": src})
	if err != nil {
		return "", err
	}
	res, err := Run(prog, Config{
		Mode:   ModePlain,
		Script: "main",
		RIDs:   []string{"r1"},
		Inputs: []RequestInput{in},
	})
	if err != nil {
		return "", err
	}
	return res.Output(0), nil
}

func TestEchoLiteral(t *testing.T) {
	if got := runPlain(t, `echo "hello";`, RequestInput{}); got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo 1 + 2;`, "3"},
		{`echo 7 - 10;`, "-3"},
		{`echo 6 * 7;`, "42"},
		{`echo 7 / 2;`, "3.5"},
		{`echo 8 / 2;`, "4"},
		{`echo 7 % 3;`, "1"},
		{`echo -5;`, "-5"},
		{`echo 2 + 3 * 4;`, "14"},
		{`echo (2 + 3) * 4;`, "20"},
		{`echo 1.5 + 1;`, "2.5"},
		{`echo "3" + "4";`, "7"},
		{`echo "3.5" + 1;`, "4.5"},
		{`echo 1 + true;`, "2"},
		{`echo 10 % 4;`, "2"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestStringConcat(t *testing.T) {
	if got := runPlain(t, `echo "a" . "b" . 3;`, RequestInput{}); got != "ab3" {
		t.Fatalf("got %q", got)
	}
}

func TestVariables(t *testing.T) {
	src := `$x = 5; $y = $x * 2; echo $y;`
	if got := runPlain(t, src, RequestInput{}); got != "10" {
		t.Fatalf("got %q", got)
	}
}

func TestCompoundAssign(t *testing.T) {
	cases := []struct{ src, want string }{
		{`$x = 5; $x += 3; echo $x;`, "8"},
		{`$x = 5; $x -= 3; echo $x;`, "2"},
		{`$x = 5; $x *= 3; echo $x;`, "15"},
		{`$x = "a"; $x .= "b"; echo $x;`, "ab"},
		{`$x = 7; $x %= 4; echo $x;`, "3"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestIncDec(t *testing.T) {
	cases := []struct{ src, want string }{
		{`$i = 1; $i++; echo $i;`, "2"},
		{`$i = 1; echo $i++; echo $i;`, "12"},
		{`$i = 1; echo ++$i; echo $i;`, "22"},
		{`$i = 1; $i--; echo $i;`, "0"},
		{`$i = 5; echo $i--;`, "5"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestIfElse(t *testing.T) {
	src := `
$x = 7;
if ($x > 10) { echo "big"; }
elseif ($x > 5) { echo "mid"; }
else { echo "small"; }`
	if got := runPlain(t, src, RequestInput{}); got != "mid" {
		t.Fatalf("got %q", got)
	}
}

func TestElseIfTwoWords(t *testing.T) {
	src := `$x = 2; if ($x == 1) { echo "a"; } else if ($x == 2) { echo "b"; } else { echo "c"; }`
	if got := runPlain(t, src, RequestInput{}); got != "b" {
		t.Fatalf("got %q", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `$i = 0; $s = 0; while ($i < 5) { $s += $i; $i++; } echo $s;`
	if got := runPlain(t, src, RequestInput{}); got != "10" {
		t.Fatalf("got %q", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `$s = ""; for ($i = 0; $i < 3; $i++) { $s .= $i; } echo $s;`
	if got := runPlain(t, src, RequestInput{}); got != "012" {
		t.Fatalf("got %q", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
for ($i = 0; $i < 10; $i++) {
  if ($i == 2) { continue; }
  if ($i == 5) { break; }
  echo $i;
}`
	if got := runPlain(t, src, RequestInput{}); got != "0134" {
		t.Fatalf("got %q", got)
	}
}

func TestForeach(t *testing.T) {
	src := `$a = array(3, 1, 2); foreach ($a as $v) { echo $v; }`
	if got := runPlain(t, src, RequestInput{}); got != "312" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachKeyValue(t *testing.T) {
	src := `$a = array("x" => 1, "y" => 2); foreach ($a as $k => $v) { echo $k . "=" . $v . ";"; }`
	if got := runPlain(t, src, RequestInput{}); got != "x=1;y=2;" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachCopySemantics(t *testing.T) {
	// Mutating the array inside foreach must not affect iteration.
	src := `$a = array(1, 2, 3); foreach ($a as $v) { $a[] = $v + 10; echo $v; } echo count($a);`
	if got := runPlain(t, src, RequestInput{}); got != "1236" {
		t.Fatalf("got %q", got)
	}
}

func TestSwitch(t *testing.T) {
	src := `
$x = "b";
switch ($x) {
  case "a": echo "one"; break;
  case "b": echo "two"; break;
  default: echo "other";
}`
	if got := runPlain(t, src, RequestInput{}); got != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestSwitchDefault(t *testing.T) {
	src := `$x = 99; switch ($x) { case 1: echo "a"; default: echo "d"; }`
	if got := runPlain(t, src, RequestInput{}); got != "d" {
		t.Fatalf("got %q", got)
	}
}

func TestTernary(t *testing.T) {
	src := `$x = 3; echo $x > 2 ? "yes" : "no";`
	if got := runPlain(t, src, RequestInput{}); got != "yes" {
		t.Fatalf("got %q", got)
	}
}

func TestLogicalOps(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo (1 && 2) ? "t" : "f";`, "t"},
		{`echo (0 && 2) ? "t" : "f";`, "f"},
		{`echo (0 || 2) ? "t" : "f";`, "t"},
		{`echo (0 || 0) ? "t" : "f";`, "f"},
		{`echo !0 ? "t" : "f";`, "t"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The RHS must not run when the LHS decides.
	src := `
function boom() { echo "BOOM"; return true; }
$x = false && boom();
$y = true || boom();
echo "ok";`
	if got := runPlain(t, src, RequestInput{}); got != "ok" {
		t.Fatalf("got %q", got)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo (1 == "1") ? "t" : "f";`, "t"},
		{`echo (1 === "1") ? "t" : "f";`, "f"},
		{`echo (1 === 1) ? "t" : "f";`, "t"},
		{`echo (1 != 2) ? "t" : "f";`, "t"},
		{`echo (1 !== "1") ? "t" : "f";`, "t"},
		{`echo (2 < 10) ? "t" : "f";`, "t"},
		{`echo ("2" < "10") ? "t" : "f";`, "t"}, // numeric strings compare numerically
		{`echo ("abc" < "abd") ? "t" : "f";`, "t"},
		{`echo (3 >= 3) ? "t" : "f";`, "t"},
		{`echo (null == false) ? "t" : "f";`, "t"},
		{`echo (null === false) ? "t" : "f";`, "f"},
		{`echo ("" == null) ? "t" : "f";`, "t"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestArrays(t *testing.T) {
	cases := []struct{ src, want string }{
		{`$a = array(); $a[] = 1; $a[] = 2; echo count($a);`, "2"},
		{`$a = [1, 2, 3]; echo $a[1];`, "2"},
		{`$a = array("k" => "v"); echo $a["k"];`, "v"},
		{`$a = []; $a["x"] = 1; $a["x"] = 2; echo $a["x"] . count($a);`, "21"},
		{`$a = []; $a[5] = "x"; $a[] = "y"; echo $a[6];`, "y"},
		{`$a = [1,2]; $b = $a; $b[] = 3; echo count($a) . count($b);`, "23"}, // value semantics
		{`$a = ["x" => ["y" => 1]]; echo $a["x"]["y"];`, "1"},
		{`$a = []; $a["p"]["q"] = 7; echo $a["p"]["q"];`, "7"}, // autovivification
		{`$a = [1,2,3]; unset($a[1]); echo count($a);`, "2"},
		{`$a = ["10" => "x"]; echo isset($a[10]) ? "t" : "f";`, "t"}, // key normalization
		{`echo [1,2,3][2];`, "3"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestIssetEmpty(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo isset($x) ? "t" : "f";`, "f"},
		{`$x = 1; echo isset($x) ? "t" : "f";`, "t"},
		{`$x = null; echo isset($x) ? "t" : "f";`, "f"},
		{`$a = ["k" => 1]; echo isset($a["k"]) ? "t" : "f";`, "t"},
		{`$a = ["k" => 1]; echo isset($a["z"]) ? "t" : "f";`, "f"},
		{`$a = ["k" => ["j" => 1]]; echo isset($a["k"]["j"]) ? "t" : "f";`, "t"},
		{`echo empty($x) ? "t" : "f";`, "t"},
		{`$x = 0; echo empty($x) ? "t" : "f";`, "t"},
		{`$x = 1; echo empty($x) ? "t" : "f";`, "f"},
		{`$x = 1; $y = 2; echo isset($x, $y) ? "t" : "f";`, "t"},
		{`$x = 1; echo isset($x, $zz) ? "t" : "f";`, "f"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFunctions(t *testing.T) {
	src := `
function add($a, $b) { return $a + $b; }
function fact($n) { if ($n <= 1) { return 1; } return $n * fact($n - 1); }
echo add(2, 3);
echo " ";
echo fact(5);`
	if got := runPlain(t, src, RequestInput{}); got != "5 120" {
		t.Fatalf("got %q", got)
	}
}

func TestFunctionDefaults(t *testing.T) {
	src := `function greet($name, $greeting = "hi") { return $greeting . " " . $name; } echo greet("bob");`
	if got := runPlain(t, src, RequestInput{}); got != "hi bob" {
		t.Fatalf("got %q", got)
	}
}

func TestFunctionValueSemantics(t *testing.T) {
	src := `
function mut($a) { $a[] = 99; return count($a); }
$x = [1, 2];
echo mut($x);
echo count($x);`
	if got := runPlain(t, src, RequestInput{}); got != "32" {
		t.Fatalf("got %q", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
$counter = 10;
function bump() { global $counter; $counter++; return $counter; }
echo bump();
echo bump();
echo $counter;`
	if got := runPlain(t, src, RequestInput{}); got != "111212" {
		t.Fatalf("got %q", got)
	}
}

func TestSuperglobals(t *testing.T) {
	in := RequestInput{
		Get:    map[string]string{"q": "7"},
		Post:   map[string]string{"body": "text"},
		Cookie: map[string]string{"user": "alice"},
	}
	src := `echo $_GET["q"] . "|" . $_POST["body"] . "|" . $_COOKIE["user"] . "|" . (isset($_GET["nope"]) ? "t" : "f");`
	if got := runPlain(t, src, in); got != "7|text|alice|f" {
		t.Fatalf("got %q", got)
	}
}

func TestStringIndexing(t *testing.T) {
	src := `$s = "hello"; echo $s[1];`
	if got := runPlain(t, src, RequestInput{}); got != "e" {
		t.Fatalf("got %q", got)
	}
}

func TestBuiltinsStrings(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo strlen("hello");`, "5"},
		{`echo substr("hello", 1, 3);`, "ell"},
		{`echo substr("hello", -3);`, "llo"},
		{`echo substr("hello", 2);`, "llo"},
		{`echo strpos("hello", "ll");`, "2"},
		{`echo strpos("hello", "zz") === false ? "miss" : "hit";`, "miss"},
		{`echo str_replace("l", "L", "hello");`, "heLLo"},
		{`echo strtoupper("abc") . strtolower("DEF");`, "ABCdef"},
		{`echo ucfirst("word");`, "Word"},
		{`echo trim("  pad  ");`, "pad"},
		{`echo str_repeat("ab", 3);`, "ababab"},
		{`echo str_pad("7", 3, "0");`, "7 strange"},
		{`echo strrev("abc");`, "cba"},
		{`echo implode(",", [1,2,3]);`, "1,2,3"},
		{`echo implode([1,2]);`, "12"},
		{`$p = explode("-", "a-b-c"); echo $p[1] . count($p);`, "b3"},
		{`echo sprintf("%s=%d", "x", 42);`, "x=42"},
		{`echo sprintf("%05d", 42);`, "00042"},
		{`echo sprintf("%.2f", 3.14159);`, "3.14"},
		{`echo sprintf("%x", 255);`, "ff"},
		{`echo sprintf("100%%");`, "100%"},
		{`echo htmlspecialchars("<a href=\"x\">&'");`, "&lt;a href=&quot;x&quot;&gt;&amp;&#039;"},
		{`echo number_format(1234567.891, 2);`, "1,234,567.89"},
		{`echo number_format(1234567);`, "1,234,567"},
		{`echo md5("abc");`, "900150983cd24fb0d6963f7d28e17f72"},
		{`echo json_encode([1, "a", true]);`, `[1,"a",true]`},
		{`echo json_encode(["k" => 1]);`, `{"k":1}`},
		{`echo date("Y-m-d", 0);`, "1970-01-01"},
		{`echo date("H:i:s", 3661);`, "01:01:01"},
	}
	for _, c := range cases {
		got := runPlain(t, c.src, RequestInput{})
		if c.src == `echo str_pad("7", 3, "0");` {
			// str_pad pads on the right by default in PHP.
			if got != "700" {
				t.Errorf("%s => %q, want %q", c.src, got, "700")
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestBuiltinsArrays(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo count([1,2,3]);`, "3"},
		{`echo implode(",", array_keys(["a"=>1, "b"=>2]));`, "a,b"},
		{`echo implode(",", array_values(["a"=>5, "b"=>6]));`, "5,6"},
		{`echo in_array(2, [1,2,3]) ? "t" : "f";`, "t"},
		{`echo in_array("2", [1,2,3], true) ? "t" : "f";`, "f"},
		{`echo array_key_exists("a", ["a"=>null]) ? "t" : "f";`, "t"},
		{`echo isset($undefinedvar) ? "t" : "f";`, "f"},
		{`echo array_search("b", ["x"=>"a","y"=>"b"]);`, "y"},
		{`echo implode(",", array_merge([1,2],[3],["k"=>9]));`, "1,2,3,9"},
		{`echo implode(",", array_slice([1,2,3,4,5], 1, 3));`, "2,3,4"},
		{`echo implode(",", array_slice([1,2,3], -2));`, "2,3"},
		{`echo implode(",", array_reverse([1,2,3]));`, "3,2,1"},
		{`echo array_sum([1,2,3.5]);`, "6.5"},
		{`echo implode(",", range(1,5));`, "1,2,3,4,5"},
		{`echo implode(",", range(5,1,2));`, "5,3,1"},
		{`$a = [3,1,2]; sort($a); echo implode(",", $a);`, "1,2,3"},
		{`$a = [3,1,2]; rsort($a); echo implode(",", $a);`, "3,2,1"},
		{`$a = ["b"=>2,"a"=>1]; ksort($a); echo implode(",", array_keys($a));`, "a,b"},
		{`$a = [1]; array_push($a, 2, 3); echo implode(",", $a);`, "1,2,3"},
		{`$a = [1,2,3]; echo array_pop($a) . count($a);`, "32"},
		{`$a = [1,2,3]; echo array_shift($a) . implode(",", $a);`, "12,3"},
		{`echo max(1, 5, 3);`, "5"},
		{`echo max([1, 9, 3]);`, "9"},
		{`echo min(4, 2, 8);`, "2"},
		{`echo abs(-7);`, "7"},
		{`echo floor(3.7) . ceil(3.2);`, "34"},
		{`echo round(3.456, 2);`, "3.46"},
		{`echo intdiv(7, 2);`, "3"},
		{`echo pow(2, 10);`, "1024"},
		{`echo intval("42abc");`, "42"},
		{`echo strval(42) === "42" ? "t" : "f";`, "t"},
		{`echo is_array([1]) ? "t" : "f";`, "t"},
		{`echo is_numeric("3.5") ? "t" : "f";`, "t"},
		{`echo is_numeric("3x") ? "t" : "f";`, "f"},
		{`echo gettype(1) . "/" . gettype("s") . "/" . gettype([1]);`, "integer/string/array"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestArrayPlusUnion(t *testing.T) {
	src := `$a = ["x"=>1] + ["x"=>2, "y"=>3]; echo $a["x"] . $a["y"];`
	if got := runPlain(t, src, RequestInput{}); got != "13" {
		t.Fatalf("got %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`echo 1 / 0;`,
		`echo 5 % 0;`,
		`nosuchfn();`,
		`$x = 5; $x[0] = 1;`,
		`echo intdiv(1, 0);`,
		`$a = "s"; foreach ($a as $v) { echo $v; }`,
	}
	for _, src := range cases {
		if _, err := tryRunPlain(src, RequestInput{}); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`echo ;`,
		`if (1) {`,
		`$x = ;`,
		`function f( { }`,
		`foreach ($a of $v) {}`,
		`echo "unterminated;`,
		`1 = 2;`,
	}
	for _, src := range cases {
		if _, err := Compile(map[string]string{"m": src}); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestStepLimit(t *testing.T) {
	prog := MustCompile(map[string]string{"m": `while (true) { $i++; }`})
	_, err := Run(prog, Config{Mode: ModePlain, Script: "m", RIDs: []string{"r"},
		Inputs: []RequestInput{{}}, MaxSteps: 10_000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

func TestUnknownScript(t *testing.T) {
	prog := MustCompile(map[string]string{"m": `echo 1;`})
	_, err := Run(prog, Config{Mode: ModePlain, Script: "nope", RIDs: []string{"r"}, Inputs: []RequestInput{{}}})
	if err == nil {
		t.Fatal("expected error for unknown script")
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
# hash comment
/* block
   comment */
echo "ok"; // trailing`
	if got := runPlain(t, src, RequestInput{}); got != "ok" {
		t.Fatalf("got %q", got)
	}
}

func TestFunctionRedeclaration(t *testing.T) {
	src := `function f() { return 1; } function f() { return 2; }`
	if _, err := Compile(map[string]string{"m": src}); err == nil {
		t.Fatal("expected redeclaration error")
	}
}

func TestEchoMultipleArgs(t *testing.T) {
	if got := runPlain(t, `echo "a", "b", 1;`, RequestInput{}); got != "ab1" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedFunctionsAndArrays(t *testing.T) {
	src := `
function render($rows) {
  $out = "";
  foreach ($rows as $r) {
    $out .= "<li>" . htmlspecialchars($r["title"]) . "</li>";
  }
  return $out;
}
$rows = [ ["title" => "a<b"], ["title" => "c"] ];
echo render($rows);`
	want := "<li>a&lt;b</li><li>c</li>"
	if got := runPlain(t, src, RequestInput{}); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestStringEscapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{`echo "a\nb";`, "a\nb"},
		{`echo "a\tb";`, "a\tb"},
		{`echo "q\"q";`, `q"q`},
		{`echo 'a\nb';`, `a\nb`}, // single quotes: no escape
		{`echo 'it\'s';`, "it's"},
		{`echo "\$x";`, "$x"},
	}
	for _, c := range cases {
		if got := runPlain(t, c.src, RequestInput{}); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}
