package lang

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Mode selects how the interpreter executes.
type Mode uint8

const (
	// ModePlain is the unmodified baseline runtime: no digests, no
	// recording, native non-determinism. It is the "unmodified PHP"
	// baseline of Fig. 10 and the legacy-serving baseline of §5.1.
	ModePlain Mode = iota
	// ModeRecord is the server runtime (§4.3): it maintains the
	// control-flow digest and issues state operations through a
	// recording Bridge.
	ModeRecord
	// ModeSIMD is the verifier runtime (acc-PHP, §4.3): it executes a
	// whole control-flow group at once over multivalues, detects
	// divergence, and issues per-lane state operations through a
	// checking Bridge.
	ModeSIMD
)

// ErrDivergence is returned when re-execution of a control-flow group
// diverges: the (untrusted) grouping report placed requests with
// different control flow in one group, so the audit must reject
// (Fig. 3 line 34).
var ErrDivergence = errors.New("lang: control flow diverged within group")

// FallbackError signals a multivalue mixture the SIMD runtime does not
// support; the verifier retries by re-executing the group's requests
// sequentially (§4.3, §4.7).
type FallbackError struct{ Reason string }

func (e *FallbackError) Error() string {
	return "lang: unsupported multivalue mixture: " + e.Reason
}

// RequestInput is the per-request input materialized as superglobals.
type RequestInput struct {
	Get    map[string]string
	Post   map[string]string
	Cookie map[string]string
}

// Config configures one execution (single request, or a whole group in
// ModeSIMD).
type Config struct {
	Mode   Mode
	Script string
	// RIDs and Inputs are per-lane; lanes = len(RIDs). ModePlain and
	// ModeRecord require exactly one lane.
	RIDs   []string
	Inputs []RequestInput
	Bridge Bridge
	// MaxSteps bounds executed statements (0 = default of 100M).
	MaxSteps int64
	// CollectStats enables univalent/multivalent instruction counting
	// (Fig. 10/11 accounting).
	CollectStats bool
	// Engine selects the execution engine (nil = DefaultEngine). Both
	// engines produce bit-identical observable behavior; EngineInterp is
	// the reference, EngineCompiled the fast path.
	Engine Engine
	// Session, when non-nil, recycles execution scratch state (frame
	// and lane-slice free lists, global slot arrays) across sequential
	// Runs on one goroutine. Purely a performance knob; see Session.
	Session *Session
}

// Result is the outcome of one execution.
type Result struct {
	// OpCount is the number of state operations issued (per request in
	// single-lane modes; the shared group count in ModeSIMD).
	OpCount int
	// Digest is the control-flow tag (ModeRecord only).
	Digest uint64
	// InstrUni and InstrMulti count instructions executed univalently /
	// multivalently (CollectStats only).
	InstrUni   int64
	InstrMulti int64
	// Steps counts executed statements.
	Steps int64

	out    *output
	outMat []string
}

// Output returns lane i's produced output.
func (r *Result) Output(i int) string {
	return r.Outputs()[i]
}

// Outputs materializes all per-lane outputs (cached).
func (r *Result) Outputs() []string {
	if r.outMat == nil {
		r.outMat = r.out.results()
	}
	return r.outMat
}

// OutputEqual reports whether lane i's output equals want. It walks the
// output segments without materializing the lane's string, so comparing
// a whole group against the trace costs one pass over shared bytes plus
// the per-lane distinct bytes (§5.2).
func (r *Result) OutputEqual(i int, want string) bool {
	return r.out.laneEqual(i, want)
}

const defaultMaxSteps = 100_000_000

// buildSuperglobals materializes $_GET/$_POST/$_COOKIE. With multiple
// lanes each cell is a multivalue over the lanes (missing keys become
// null, matching isset() semantics).
func buildSuperglobals(inputs []RequestInput) map[string]*Array {
	build := func(get func(RequestInput) map[string]string) *Array {
		keySet := map[string]bool{}
		for _, in := range inputs {
			for k := range get(in) {
				keySet[k] = true
			}
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		arr := NewArray()
		for _, k := range keys {
			vals := make([]Value, len(inputs))
			for i, in := range inputs {
				if v, ok := get(in)[k]; ok {
					vals[i] = v
				} else {
					vals[i] = nil
				}
			}
			nk, _ := NormalizeKey(Value(k))
			arr.Set(nk, NewMulti(vals))
		}
		return arr
	}
	return map[string]*Array{
		"_GET":    build(func(in RequestInput) map[string]string { return in.Get }),
		"_POST":   build(func(in RequestInput) map[string]string { return in.Post }),
		"_COOKIE": build(func(in RequestInput) map[string]string { return in.Cookie }),
	}
}

// exec is the interpreter state for one Run.
type exec struct {
	prog   *Program
	mode   Mode
	lanes  int
	rids   []string
	bridge Bridge
	digest *Digest
	out    *output
	super  map[string]*Array
	// globals backs both the script's top-level scope and `global`
	// imports inside functions, as in PHP.
	globals map[string]Value
	opnum   int

	steps      int64
	maxSteps   int64
	stats      bool
	instrUni   int64
	instrMulti int64
	callDepth  int

	// Compiled-engine state: the global frame as resolved slots plus a
	// presence bitmap (present-with-nil and absent differ only for
	// isset, whose index expressions must or must not evaluate).
	gslots []Value
	gset   []bool
	// Hot-path free lists; exec is single-goroutine so these need no
	// locking. See pool.go.
	laneSlices [][]Value
	frames     []*cframe
	bframes    []*bframe
	// ses, when non-nil, donated the free lists above and takes them
	// back when the run finishes. See session.go.
	ses *Session
}

func (ex *exec) countInstr(multi bool) {
	if !ex.stats {
		return
	}
	if multi {
		ex.instrMulti++
	} else {
		ex.instrUni++
	}
}

func (ex *exec) branch(site Site, direction int) {
	if ex.digest != nil {
		ex.digest.Branch(site, direction)
	}
}

// scope is a variable namespace (function frame or the global frame).
type scope struct {
	vars       map[string]Value
	globalRefs map[string]bool
	isGlobal   bool
	ex         *exec
}

func (sc *scope) get(name string) Value {
	if sg, ok := sc.ex.super[name]; ok {
		return sg
	}
	if !sc.isGlobal && sc.globalRefs[name] {
		return sc.ex.globals[name]
	}
	return sc.vars[name]
}

func (sc *scope) exists(name string) bool {
	if _, ok := sc.ex.super[name]; ok {
		return true
	}
	if !sc.isGlobal && sc.globalRefs[name] {
		_, ok := sc.ex.globals[name]
		return ok
	}
	_, ok := sc.vars[name]
	return ok
}

func (sc *scope) set(name string, v Value) {
	if _, ok := sc.ex.super[name]; ok {
		if arr, isArr := v.(*Array); isArr {
			sc.ex.super[name] = arr
		}
		return
	}
	if !sc.isGlobal && sc.globalRefs[name] {
		sc.ex.globals[name] = v
		return
	}
	sc.vars[name] = v
}

func (sc *scope) unset(name string) {
	if !sc.isGlobal && sc.globalRefs[name] {
		delete(sc.ex.globals, name)
		return
	}
	delete(sc.vars, name)
}

// ctrl is the statement-level control signal.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (ex *exec) execStmts(sc *scope, stmts []Stmt) (ctrl, Value, error) {
	for _, s := range stmts {
		c, v, err := ex.execStmt(sc, s)
		if err != nil {
			return ctrlNone, nil, err
		}
		if c != ctrlNone {
			return c, v, nil
		}
	}
	return ctrlNone, nil, nil
}

func (ex *exec) execStmt(sc *scope, s Stmt) (ctrl, Value, error) {
	ex.steps++
	if ex.steps > ex.maxSteps {
		return ctrlNone, nil, &RuntimeError{Msg: "step limit exceeded"}
	}
	switch st := s.(type) {
	case *ExprStmt:
		_, err := ex.evalExpr(sc, st.E)
		return ctrlNone, nil, err
	case *Assign:
		return ctrlNone, nil, ex.execAssign(sc, st)
	case *If:
		return ex.execIf(sc, st)
	case *While:
		return ex.execWhile(sc, st)
	case *For:
		return ex.execFor(sc, st)
	case *Foreach:
		return ex.execForeach(sc, st)
	case *Switch:
		return ex.execSwitch(sc, st)
	case *Return:
		var v Value
		if st.E != nil {
			var err error
			v, err = ex.evalExpr(sc, st.E)
			if err != nil {
				return ctrlNone, nil, err
			}
		}
		return ctrlReturn, v, nil
	case *Break:
		return ctrlBreak, nil, nil
	case *Continue:
		return ctrlContinue, nil, nil
	case *Echo:
		for _, a := range st.Args {
			v, err := ex.evalExpr(sc, a)
			if err != nil {
				return ctrlNone, nil, err
			}
			ex.echo(v)
		}
		return ctrlNone, nil, nil
	case *Global:
		if sc.globalRefs == nil {
			sc.globalRefs = make(map[string]bool)
		}
		for _, n := range st.Names {
			sc.globalRefs[n] = true
		}
		return ctrlNone, nil, nil
	case *Unset:
		for _, lv := range st.Targets {
			if err := ex.execUnset(sc, lv); err != nil {
				return ctrlNone, nil, err
			}
		}
		return ctrlNone, nil, nil
	default:
		return ctrlNone, nil, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
	}
}

// condDirection evaluates a branch condition to a single direction,
// handling multivalues: if truthiness differs across lanes the group has
// diverged.
func (ex *exec) condDirection(v Value) (bool, error) {
	m, ok := v.(*Multi)
	if !ok {
		ex.countInstr(false)
		return ToBool(v), nil
	}
	ex.countInstr(true)
	first := ToBool(m.V[0])
	for _, lv := range m.V[1:] {
		if ToBool(lv) != first {
			return false, ErrDivergence
		}
	}
	return first, nil
}

func (ex *exec) execIf(sc *scope, st *If) (ctrl, Value, error) {
	for i, cond := range st.Conds {
		v, err := ex.evalExpr(sc, cond)
		if err != nil {
			return ctrlNone, nil, err
		}
		taken, err := ex.condDirection(v)
		if err != nil {
			return ctrlNone, nil, err
		}
		if taken {
			ex.branch(st.Site, i)
			return ex.execStmts(sc, st.Bodies[i])
		}
	}
	ex.branch(st.Site, len(st.Conds))
	if st.Else != nil {
		return ex.execStmts(sc, st.Else)
	}
	return ctrlNone, nil, nil
}

func (ex *exec) execWhile(sc *scope, st *While) (ctrl, Value, error) {
	for {
		v, err := ex.evalExpr(sc, st.Cond)
		if err != nil {
			return ctrlNone, nil, err
		}
		taken, err := ex.condDirection(v)
		if err != nil {
			return ctrlNone, nil, err
		}
		if !taken {
			ex.branch(st.Site, 0)
			return ctrlNone, nil, nil
		}
		ex.branch(st.Site, 1)
		c, rv, err := ex.execStmts(sc, st.Body)
		if err != nil {
			return ctrlNone, nil, err
		}
		switch c {
		case ctrlBreak:
			return ctrlNone, nil, nil
		case ctrlReturn:
			return ctrlReturn, rv, nil
		}
		ex.steps++
		if ex.steps > ex.maxSteps {
			return ctrlNone, nil, &RuntimeError{Msg: "step limit exceeded"}
		}
	}
}

func (ex *exec) execFor(sc *scope, st *For) (ctrl, Value, error) {
	if st.Init != nil {
		if _, _, err := ex.execStmt(sc, st.Init); err != nil {
			return ctrlNone, nil, err
		}
	}
	for {
		if st.Cond != nil {
			v, err := ex.evalExpr(sc, st.Cond)
			if err != nil {
				return ctrlNone, nil, err
			}
			taken, err := ex.condDirection(v)
			if err != nil {
				return ctrlNone, nil, err
			}
			if !taken {
				ex.branch(st.Site, 0)
				return ctrlNone, nil, nil
			}
		}
		ex.branch(st.Site, 1)
		c, rv, err := ex.execStmts(sc, st.Body)
		if err != nil {
			return ctrlNone, nil, err
		}
		switch c {
		case ctrlBreak:
			return ctrlNone, nil, nil
		case ctrlReturn:
			return ctrlReturn, rv, nil
		}
		if st.Post != nil {
			if _, _, err := ex.execStmt(sc, st.Post); err != nil {
				return ctrlNone, nil, err
			}
		}
	}
}

func (ex *exec) execForeach(sc *scope, st *Foreach) (ctrl, Value, error) {
	subject, err := ex.evalExpr(sc, st.Subject)
	if err != nil {
		return ctrlNone, nil, err
	}
	switch subj := subject.(type) {
	case *Array:
		// PHP iterates over a copy of the array. A full deep clone is
		// only necessary when the body can mutate the element's
		// interior; otherwise a shallow snapshot of (key, value) pairs
		// suffices: replacing cells or keys in the subject during the
		// loop cannot disturb the snapshot.
		keys, vals := subj.snapshot()
		for it := range keys {
			ex.branch(st.Site, 1)
			if st.KeyVar != "" {
				sc.set(st.KeyVar, keys[it].Value())
			}
			sc.set(st.ValVar, bindElem(vals[it], st.MutatesVal))
			c, rv, err := ex.execStmts(sc, st.Body)
			if err != nil {
				return ctrlNone, nil, err
			}
			switch c {
			case ctrlBreak:
				ex.branch(st.Site, 0)
				return ctrlNone, nil, nil
			case ctrlReturn:
				return ctrlReturn, rv, nil
			}
		}
		ex.branch(st.Site, 0)
		return ctrlNone, nil, nil
	case *Multi:
		// The container itself is a multivalue: lock-step iteration over
		// per-lane materialized arrays. A non-array lane is a per-lane
		// fault, merged under the error-group rule: every lane faulting
		// identically is a shared group fault, anything mixed diverged.
		laneKeys := make([][]Key, ex.lanes)
		laneVals := make([][]Value, ex.lanes)
		n := -1
		if _, err := ex.forLanes(func(i int) (Value, error) {
			a, ok := MaterializeLane(subj.V[i], i).(*Array)
			if !ok {
				return nil, &RuntimeError{Msg: "foreach over non-array", Line: st.Line}
			}
			if n == -1 {
				n = a.Len()
			} else if a.Len() != n {
				// Different iteration counts = control-flow divergence.
				return nil, ErrDivergence
			}
			laneKeys[i], laneVals[i] = a.snapshot()
			return nil, nil
		}); err != nil {
			return ctrlNone, nil, err
		}
		for it := 0; it < n; it++ {
			ex.branch(st.Site, 1)
			keys := make([]Value, ex.lanes)
			vals := make([]Value, ex.lanes)
			for i := 0; i < ex.lanes; i++ {
				keys[i] = laneKeys[i][it].Value()
				vals[i] = bindElem(laneVals[i][it], st.MutatesVal)
			}
			if st.KeyVar != "" {
				sc.set(st.KeyVar, NewMulti(keys))
			}
			sc.set(st.ValVar, NewMulti(vals))
			c, rv, err := ex.execStmts(sc, st.Body)
			if err != nil {
				return ctrlNone, nil, err
			}
			switch c {
			case ctrlBreak:
				ex.branch(st.Site, 0)
				return ctrlNone, nil, nil
			case ctrlReturn:
				return ctrlReturn, rv, nil
			}
		}
		ex.branch(st.Site, 0)
		return ctrlNone, nil, nil
	case nil:
		ex.branch(st.Site, 0)
		return ctrlNone, nil, nil
	default:
		return ctrlNone, nil, &RuntimeError{Msg: "foreach over non-array", Line: st.Line}
	}
}

// bindElem prepares an element value for binding to the foreach value
// variable. PHP binds a copy; the deep copy is only observable when the
// body mutates the element's interior, which the parser detected
// statically (Foreach.MutatesVal), so the common read-only rendering
// loop binds the element without copying.
func bindElem(v Value, mutates bool) Value {
	if mutates {
		return CloneValue(v)
	}
	return v
}

func (ex *exec) execSwitch(sc *scope, st *Switch) (ctrl, Value, error) {
	subject, err := ex.evalExpr(sc, st.Subject)
	if err != nil {
		return ctrlNone, nil, err
	}
	// Determine the arm per lane; divergence if lanes disagree.
	arm := -2 // -2 unset, -1 default
	for i, cs := range st.Cases {
		mv, err := ex.evalExpr(sc, cs.Match)
		if err != nil {
			return ctrlNone, nil, err
		}
		matched, err := ex.looseEqDirection(subject, mv)
		if err != nil {
			return ctrlNone, nil, err
		}
		if matched {
			arm = i
			break
		}
	}
	if arm == -2 {
		arm = -1
	}
	ex.branch(st.Site, arm+1)
	var body []Stmt
	if arm >= 0 {
		body = st.Cases[arm].Body
	} else {
		body = st.Default
	}
	c, rv, err := ex.execStmts(sc, body)
	if err != nil {
		return ctrlNone, nil, err
	}
	switch c {
	case ctrlBreak:
		return ctrlNone, nil, nil // break binds to switch, as in PHP
	case ctrlReturn:
		return ctrlReturn, rv, nil
	case ctrlContinue:
		return ctrlContinue, nil, nil
	}
	return ctrlNone, nil, nil
}

// looseEqDirection compares possibly-multivalues for switch matching; all
// lanes must agree on the verdict or the group diverged.
func (ex *exec) looseEqDirection(a, b Value) (bool, error) {
	if !IsMulti(a) && !IsMulti(b) {
		return LooseEqual(a, b), nil
	}
	first := LooseEqual(MaterializeLane(a, 0), MaterializeLane(b, 0))
	for i := 1; i < ex.lanes; i++ {
		if LooseEqual(MaterializeLane(a, i), MaterializeLane(b, i)) != first {
			return false, ErrDivergence
		}
	}
	return first, nil
}

func (ex *exec) echo(v Value) {
	if m, ok := v.(*Multi); ok {
		ex.countInstr(true)
		for i := range m.V {
			ex.out.writeLane(i, ToString(MaterializeLane(m.V[i], i)))
		}
		return
	}
	ex.countInstr(false)
	ex.out.writeAll(ToString(v))
}

// output is a segmented output buffer: runs of univalent echoes append
// to a single shared segment regardless of the group size, and only
// lane-specific echoes open per-lane segments. Shared bytes are thus
// written (and stored) once per group — the output-side analogue of
// multivalue collapse, and a large part of the §5.2 acceleration for
// templated pages whose chrome is identical across requests.
type output struct {
	lanes int
	segs  []outSeg
	// cur accumulates the open segment.
	curShared strings.Builder
	curLanes  []strings.Builder
	inLanes   bool
}

// outSeg is either a shared string (perLane nil) or per-lane strings.
type outSeg struct {
	shared  string
	perLane []string
}

func newOutput(lanes int) *output {
	return &output{lanes: lanes}
}

func (o *output) writeAll(s string) {
	if o.inLanes {
		o.flushLanes()
	}
	o.curShared.WriteString(s)
}

func (o *output) writeLane(i int, s string) {
	if !o.inLanes {
		o.flushShared()
		if o.curLanes == nil {
			o.curLanes = make([]strings.Builder, o.lanes)
		}
		o.inLanes = true
	}
	o.curLanes[i].WriteString(s)
}

func (o *output) flushShared() {
	if o.curShared.Len() > 0 {
		o.segs = append(o.segs, outSeg{shared: o.curShared.String()})
		o.curShared.Reset()
	}
}

func (o *output) flushLanes() {
	parts := make([]string, o.lanes)
	for i := range o.curLanes {
		parts[i] = o.curLanes[i].String()
		o.curLanes[i].Reset()
	}
	o.segs = append(o.segs, outSeg{perLane: parts})
	o.inLanes = false
}

func (o *output) finish() {
	if o.inLanes {
		o.flushLanes()
	} else {
		o.flushShared()
	}
}

// results materializes the per-lane outputs.
func (o *output) results() []string {
	o.finish()
	var builders = make([]strings.Builder, o.lanes)
	for _, seg := range o.segs {
		if seg.perLane == nil {
			for i := range builders {
				builders[i].WriteString(seg.shared)
			}
			continue
		}
		for i := range builders {
			builders[i].WriteString(seg.perLane[i])
		}
	}
	out := make([]string, o.lanes)
	for i := range builders {
		out[i] = builders[i].String()
	}
	return out
}

// laneEqual reports whether lane i's output equals want, walking the
// segments without materializing the lane's string.
func (o *output) laneEqual(i int, want string) bool {
	o.finish()
	off := 0
	for _, seg := range o.segs {
		part := seg.shared
		if seg.perLane != nil {
			part = seg.perLane[i]
		}
		if off+len(part) > len(want) || want[off:off+len(part)] != part {
			return false
		}
		off += len(part)
	}
	return off == len(want)
}
