package lang

// Session carries reusable execution scratch state across sequential
// Runs on one goroutine. The verifier's Phase-3 small-group batching
// packs many short SIMD groups onto one worker task; without a session
// each Run warms its frame and lane-slice free lists from nothing and
// throws them away. A Session keeps those pools alive between Runs:
// Config.Session hands it to the engine, which adopts the pooled
// buffers when the exec is built and releases them back when the run
// finishes (on every exit path, including request-level faults).
//
// Every adopted buffer is cleared or fully overwritten before its
// first read, so a session changes no observable behavior — outputs,
// digests, op counts, step counts, instruction counts, and fault
// renderings are bit-identical with and without one. Lane slices are
// width-dependent and are dropped (not reused) when consecutive runs
// differ in lane count.
//
// A Session must not be used by two concurrent Runs.
type Session struct {
	lanes      int
	laneSlices [][]Value
	gslots     []Value
	gset       []bool
	frames     []*cframe
	bframes    []*bframe
}

// NewSession returns an empty session. Pools fill as runs release
// their scratch state into it.
func NewSession() *Session { return &Session{} }

// adopt moves the session's pooled state into ex. Pooled frames are
// re-pointed at the adopting exec; lane slices transfer only when the
// lane width matches (putLaneSlice would silently drop every recycle
// otherwise, and getLaneSlice must hand out exactly ex.lanes cells).
func (s *Session) adopt(ex *exec) {
	ex.ses = s
	if s.lanes == ex.lanes {
		ex.laneSlices = s.laneSlices
	}
	ex.frames = s.frames
	for _, fr := range ex.frames {
		fr.ex = ex
	}
	ex.bframes = s.bframes
	for _, fr := range ex.bframes {
		fr.ex = ex
	}
	s.laneSlices, s.frames, s.bframes = nil, nil, nil
}

// globalSlots installs the cleared global frame for a run that needs n
// resolved slots, reusing the session's arrays when they are large
// enough. Presence starts all-false, matching a fresh allocation:
// present-with-nil and absent differ for isset, so gset must be wiped,
// not just gslots.
func (ex *exec) globalSlots(n int) {
	if s := ex.ses; s != nil && cap(s.gslots) >= n && cap(s.gset) >= n {
		ex.gslots = s.gslots[:n]
		ex.gset = s.gset[:n]
		s.gslots, s.gset = nil, nil
		for i := range ex.gslots {
			ex.gslots[i] = nil
			ex.gset[i] = false
		}
		return
	}
	ex.gslots = make([]Value, n)
	ex.gset = make([]bool, n)
}

// releaseSession returns the exec's free lists to its session; no-op
// when the run has none. Engines defer this right after newExec so
// faulted runs recycle too.
func (ex *exec) releaseSession() {
	s := ex.ses
	if s == nil {
		return
	}
	s.lanes = ex.lanes
	s.laneSlices = ex.laneSlices
	s.frames = ex.frames
	s.bframes = ex.bframes
	if ex.gslots != nil {
		s.gslots, s.gset = ex.gslots, ex.gset
	}
	ex.ses = nil
}
