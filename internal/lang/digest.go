package lang

// Digest accumulates the control-flow fingerprint of one execution
// (§4.3): at every branch the recording runtime folds in the branch site
// and the direction taken. Requests with equal digests took identical
// control-flow paths, so the server groups them under the same opaque
// tag in the C report (§3.1). The verifier never computes digests — it
// checks groups directly by detecting divergence during SIMD-on-demand
// re-execution.
//
// The digest is FNV-1a over (site, direction) pairs, seeded with the
// script name so that the same site numbering in different scripts
// cannot collide.
type Digest struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewDigest returns a digest seeded with the script name.
func NewDigest(script string) *Digest {
	d := &Digest{h: fnvOffset}
	for i := 0; i < len(script); i++ {
		d.h = (d.h ^ uint64(script[i])) * fnvPrime
	}
	return d
}

// Branch folds a control-flow decision into the digest.
func (d *Digest) Branch(site Site, direction int) {
	d.h = (d.h ^ uint64(uint32(site))) * fnvPrime
	d.h = (d.h ^ uint64(uint32(direction))) * fnvPrime
}

// faultMarker separates faulted executions from every branch-only
// digest: Branch never folds this byte sequence, so an execution that
// faulted at a site can never share a tag with one that completed.
const faultMarker = 0x0badfa17

// Fault folds a runtime fault into the digest: the marker, the fault
// site (source line), and the rendered message. Requests that fault at
// different points — or at the same point with different messages —
// land in different control-flow groups, which is what lets the
// verifier demand one shared canonical error rendering per group.
func (d *Digest) Fault(line int, msg string) {
	d.h = (d.h ^ uint64(faultMarker)) * fnvPrime
	d.h = (d.h ^ uint64(uint32(line))) * fnvPrime
	for i := 0; i < len(msg); i++ {
		d.h = (d.h ^ uint64(msg[i])) * fnvPrime
	}
}

// Sum returns the current digest value (the opaque control-flow tag).
func (d *Digest) Sum() uint64 { return d.h }
