package lang

// OpType enumerates the shared-object operation types (§3.3, Fig. 12).
type OpType uint8

const (
	RegisterRead OpType = iota + 1
	RegisterWrite
	KvGet
	KvSet
	DBOp
)

func (t OpType) String() string {
	switch t {
	case RegisterRead:
		return "RegisterRead"
	case RegisterWrite:
		return "RegisterWrite"
	case KvGet:
		return "KvGet"
	case KvSet:
		return "KvSet"
	case DBOp:
		return "DBOp"
	default:
		return "OpType(?)"
	}
}

// Bridge is the interpreter's window onto shared state and
// non-determinism. The server implements it with real objects plus the
// recording library (§4.4, §4.6); the verifier implements it with
// CheckOp/SimOp over the untrusted operation logs (§3.3, §4.5).
//
// Every state operation carries the issuing requestID and the running
// operation number. On the server, opnum is per-request; during grouped
// re-execution it is the per-group counter of Fig. 3, and the verifier's
// bridge is invoked once per lane with the same opnum.
type Bridge interface {
	// RegisterRead reads atomic register name (session data).
	RegisterRead(rid string, opnum int, name string) (Value, error)
	// RegisterWrite writes atomic register name.
	RegisterWrite(rid string, opnum int, name string, v Value) error
	// KvGet reads key from the linearizable key-value store (APC).
	KvGet(rid string, opnum int, key string) (Value, error)
	// KvSet writes key in the key-value store.
	KvSet(rid string, opnum int, key string, v Value) error
	// DBOp executes a transaction of one or more SQL statements against
	// the strictly serializable database and returns the per-statement
	// results as an array. A single-statement query is a one-element
	// transaction.
	DBOp(rid string, opnum int, stmts []string) (Value, error)
	// NonDet obtains the value of a non-deterministic builtin: the server
	// computes and records it; the verifier replays and plausibility-
	// checks it (§4.6). args are the (univalue) call arguments.
	NonDet(rid string, fn string, args []Value) (Value, error)
}

// NopBridge is a Bridge for programs that use no shared state; all state
// operations fail and nondeterministic builtins return zero values. It
// backs ModePlain microbenchmarks and pure-compute tests.
type NopBridge struct{}

func (NopBridge) RegisterRead(string, int, string) (Value, error) {
	return nil, errNoState
}
func (NopBridge) RegisterWrite(string, int, string, Value) error { return errNoState }
func (NopBridge) KvGet(string, int, string) (Value, error)       { return nil, errNoState }
func (NopBridge) KvSet(string, int, string, Value) error         { return errNoState }
func (NopBridge) DBOp(string, int, []string) (Value, error)      { return nil, errNoState }
func (NopBridge) NonDet(string, string, []Value) (Value, error)  { return int64(0), nil }

var errNoState = &RuntimeError{Msg: "no shared-state bridge configured"}

// RuntimeError is an application-level runtime error (bad SQL, missing
// function, illegal operand). On the server it becomes an error
// response; during an audit it causes rejection.
type RuntimeError struct {
	Msg  string
	Line int
}

func (e *RuntimeError) Error() string { return e.Msg }
