package lang

import "sync"

// Site identifies a branch point in the program. The recording runtime
// folds (site, direction) pairs into the control-flow digest (§4.3), so
// two requests receive the same opaque tag iff they took the same path.
type Site int32

// --- Expressions ---

// Expr is an expression node.
type Expr interface{ exprNode() }

// Lit is a literal value (int64, float64, string, bool or nil).
type Lit struct {
	Val  Value
	Line int
}

// Var references a variable ($x) or superglobal (_GET, _POST, _COOKIE).
type Var struct {
	Name string
	Line int
}

// Index is subscripting: target[index].
type Index struct {
	Target Expr
	Idx    Expr
	Line   int
}

// Binary is a non-short-circuit binary operation:
// + - * / % . == === != !== < <= > >=
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Logical is short-circuit && or ||. It has a Site because the
// short-circuit decision is control flow.
type Logical struct {
	Op   string // "&&" or "||"
	L, R Expr
	Site Site
	Line int
}

// Unary is !x or -x or +x.
type Unary struct {
	Op   string
	E    Expr
	Line int
}

// Ternary is cond ? then : else (a branch; has a Site).
type Ternary struct {
	Cond, Then, Else Expr
	Site             Site
	Line             int
}

// Call invokes a user function or builtin.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// ArrayEntry is one element of an array literal; Key may be nil.
type ArrayEntry struct {
	Key Expr
	Val Expr
}

// ArrayLit is array(...) or [...].
type ArrayLit struct {
	Entries []ArrayEntry
	Line    int
}

// IssetExpr is isset($x), isset($a[k]), ... — true iff every operand
// exists and is non-null.
type IssetExpr struct {
	Targets []*LValue
	Line    int
}

// EmptyExpr is empty($x) — true iff the operand is unset or falsy.
type EmptyExpr struct {
	Target *LValue
	Line   int
}

// IncDec is $x++ / $x-- / ++$x / --$x used as an expression.
type IncDec struct {
	Target *LValue
	Op     string // "++" or "--"
	Pre    bool
	Line   int
}

func (*Lit) exprNode()       {}
func (*Var) exprNode()       {}
func (*Index) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Logical) exprNode()   {}
func (*Unary) exprNode()     {}
func (*Ternary) exprNode()   {}
func (*Call) exprNode()      {}
func (*ArrayLit) exprNode()  {}
func (*IssetExpr) exprNode() {}
func (*EmptyExpr) exprNode() {}
func (*IncDec) exprNode()    {}

// LValue is an assignable location: a variable plus a chain of index
// steps. A nil Idx in a step means the append form $a[] (valid only as
// the final step of an assignment target).
type LValue struct {
	Name  string
	Steps []IndexStep
	Line  int
}

// IndexStep is one subscript in an lvalue path.
type IndexStep struct {
	Idx Expr // nil means append ($a[] = ...)
}

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	E    Expr
	Line int
}

// Assign is lv op rhs where op ∈ {=, +=, -=, *=, /=, .=, %=}.
type Assign struct {
	Target *LValue
	Op     string
	RHS    Expr
	Line   int
}

// If is a chain of conditions with an optional else.
type If struct {
	Conds  []Expr   // condition per branch arm
	Bodies [][]Stmt // same length as Conds
	Else   []Stmt   // may be nil
	Site   Site
	Line   int
}

// While loops while the condition holds.
type While struct {
	Cond Expr
	Body []Stmt
	Site Site
	Line int
}

// For is the C-style loop.
type For struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body []Stmt
	Site Site
	Line int
}

// Foreach iterates an array: foreach (subject as [$k =>] $v) body.
type Foreach struct {
	Subject Expr
	KeyVar  string // "" if absent
	ValVar  string
	Body    []Stmt
	Site    Site
	Line    int
	// MutatesVal is computed at parse time: whether the body can mutate
	// the value variable's *interior* (indexed assignment, interior
	// unset/incdec, or a by-reference builtin). When false the
	// interpreter binds the element without a deep copy — the dominant
	// cost of rendering loops otherwise.
	MutatesVal bool
}

// Switch with strict case matching (PHP uses loose; we use loose too).
type Switch struct {
	Subject Expr
	Cases   []SwitchCase
	Default []Stmt // may be nil
	Site    Site
	Line    int
}

// SwitchCase is one case arm (no fallthrough: each arm is independent,
// which is how our applications use switch).
type SwitchCase struct {
	Match Expr
	Body  []Stmt
}

// Return exits the enclosing function (or script) with an optional value.
type Return struct {
	E    Expr // may be nil
	Line int
}

// Break exits the innermost loop or switch.
type Break struct{ Line int }

// Continue re-tests the innermost loop.
type Continue struct{ Line int }

// Echo writes the string coercion of each argument to the output.
type Echo struct {
	Args []Expr
	Line int
}

// Global imports names from the global scope (PHP `global $x;`).
type Global struct {
	Names []string
	Line  int
}

// Unset removes variables or array elements.
type Unset struct {
	Targets []*LValue
	Line    int
}

func (*ExprStmt) stmtNode() {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Foreach) stmtNode()  {}
func (*Switch) stmtNode()   {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Echo) stmtNode()     {}
func (*Global) stmtNode()   {}
func (*Unset) stmtNode()    {}

// Param is a function parameter with an optional default literal.
type Param struct {
	Name    string
	Default Expr // nil if required
}

// FuncDecl is a user-defined function. Functions are global across all
// scripts of a Program, as in PHP.
type FuncDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
	Line   int
}

// Script is one entry point ("a PHP file"): the statements executed when
// a request names it.
type Script struct {
	Name string
	Body []Stmt
}

// Program is a compiled application: entry-point scripts plus the global
// function table.
type Program struct {
	Scripts map[string]*Script
	Funcs   map[string]*FuncDecl
	// NumSites is the number of branch sites assigned at parse time.
	NumSites int

	// The compiled engine's lowered form, computed lazily on first use
	// (see compiled.go). Programs are shared between the server and
	// concurrent verifier workers, hence the Once.
	lowerOnce sync.Once
	lowered   *cprog

	// The bytecode engine's lowered form, likewise lazy and shared
	// (see bytecode.go).
	bcOnce sync.Once
	bc     *bprog
}
