package lang

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// memBridge is a deterministic in-memory Bridge for differential
// testing: identical call sequences observe identical state, so any
// observable difference between engines is the engine's fault.
type memBridge struct {
	regs map[string]Value
	kv   map[string]Value
}

func newMemBridge() *memBridge {
	return &memBridge{regs: map[string]Value{}, kv: map[string]Value{}}
}

func (b *memBridge) RegisterRead(rid string, opnum int, name string) (Value, error) {
	return b.regs[name], nil
}
func (b *memBridge) RegisterWrite(rid string, opnum int, name string, v Value) error {
	b.regs[name] = v
	return nil
}
func (b *memBridge) KvGet(rid string, opnum int, key string) (Value, error) {
	return b.kv[key], nil
}
func (b *memBridge) KvSet(rid string, opnum int, key string, v Value) error {
	b.kv[key] = v
	return nil
}
func (b *memBridge) DBOp(rid string, opnum int, stmts []string) (Value, error) {
	res := NewArray()
	for _, s := range stmts {
		if strings.Contains(s, "BAD") {
			return nil, &RuntimeError{Msg: "sql error near \"BAD\""}
		}
		res.Append(int64(len(s)))
	}
	return res, nil
}
func (b *memBridge) NonDet(rid string, fn string, args []Value) (Value, error) {
	switch fn {
	case "time":
		return int64(1700000000), nil
	case "microtime":
		return 1700000000.5, nil
	case "mt_rand", "rand":
		return int64(7), nil
	case "uniqid":
		return "uid-" + rid, nil
	case "getmypid":
		return int64(1234), nil
	}
	return int64(0), nil
}

// engObs is everything a run of the language observably produces: the
// dual-engine equivalence gate compares these field-for-field.
type engObs struct {
	Err     string
	Fault   string
	Digest  uint64
	OpCount int
	InstrU  int64
	InstrM  int64
	Steps   int64
	Outputs []string
}

func observe(res *Result, err error) engObs {
	var o engObs
	if err != nil {
		o.Err = err.Error()
		o.Fault = RenderFault(err)
	}
	if res != nil {
		o.Digest = res.Digest
		o.OpCount = res.OpCount
		o.InstrU = res.InstrUni
		o.InstrM = res.InstrMulti
		o.Steps = res.Steps
		o.Outputs = res.Outputs()
	}
	return o
}

func runEngine(eng Engine, prog *Program, mode Mode, script string, inputs []RequestInput, maxSteps int64) engObs {
	rids := make([]string, len(inputs))
	for i := range rids {
		rids[i] = fmt.Sprintf("r%d", i)
	}
	res, err := Run(prog, Config{
		Mode: mode, Script: script, RIDs: rids, Inputs: inputs,
		Bridge: newMemBridge(), CollectStats: true, MaxSteps: maxSteps,
		Engine: eng,
	})
	return res2obs(res, err)
}

func res2obs(res *Result, err error) engObs { return observe(res, err) }

// candidateEngines are the engines checked against the interpreter
// reference by the differential suite.
var candidateEngines = []Engine{EngineCompiled, EngineBytecode}

// diffScript runs src under every engine in every execution mode the
// system uses — per-request recording, per-request plain, and grouped
// SIMD over all inputs — and requires identical observables.
func diffScript(t *testing.T, src string, inputs []RequestInput) {
	t.Helper()
	diffProgram(t, map[string]string{"main": src}, "main", inputs)
}

func diffProgram(t *testing.T, files map[string]string, script string, inputs []RequestInput) {
	t.Helper()
	prog, err := Compile(files)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const maxSteps = 200_000
	check := func(mode Mode, ins []RequestInput, label string) {
		t.Helper()
		want := runEngine(EngineInterp, prog, mode, script, ins, maxSteps)
		for _, eng := range candidateEngines {
			got := runEngine(eng, prog, mode, script, ins, maxSteps)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: engines diverge\ninterp: %+v\n%s: %+v", label, want, eng.Name(), got)
			}
		}
	}
	for i, in := range inputs {
		check(ModeRecord, []RequestInput{in}, fmt.Sprintf("record[%d]", i))
		check(ModePlain, []RequestInput{in}, fmt.Sprintf("plain[%d]", i))
	}
	if len(inputs) > 1 {
		check(ModeSIMD, inputs, fmt.Sprintf("simd[%d lanes]", len(inputs)))
	}
}

func engineInputs(vals ...string) []RequestInput {
	out := make([]RequestInput, len(vals))
	for i, v := range vals {
		out[i] = RequestInput{
			Get:    map[string]string{"x": v, "idx": v},
			Post:   map[string]string{"p": v + v},
			Cookie: map[string]string{"sid": "s" + v},
		}
	}
	return out
}

// The differential table: every language construct, state-op shape, and
// fault class the applications exercise, at lane widths 1, 2 and 4.
var engineEquivalenceScripts = []struct {
	name string
	src  string
}{
	{"control flow", `
$x = intval($_GET["x"]);
if ($x > 3) { echo "big"; } elseif ($x > 1) { echo "mid"; } else { echo "small"; }
$i = 0;
while ($i < $x) { $i++; if ($i == 2) { continue; } echo $i; }
for ($j = 0; $j < 3; $j++) { if ($j == 2) { break; } echo "j" . $j; }
switch ($x) { case 1: echo "one"; break; case 2: echo "two"; break; default: echo "many"; }
echo ($x % 2) ? "odd" : "even";
echo ($x > 0 && $x < 3) ? "Y" : "N";
echo ($x == 1 || $x == 4) ? "Q" : "R";`},
	{"foreach and arrays", `
$a = array("k1" => 1, "k2" => 2, 3, 4);
$a[] = intval($_GET["x"]);
$a["n"] = array("deep" => $_GET["x"]);
foreach ($a as $k => $v) { if (is_array($v)) { echo $k . "=arr;"; } else { echo $k . "=" . $v . ";"; } }
foreach ($a["n"] as $v2) { echo "inner:" . $v2; }
unset($a["k1"]);
echo count($a);
$s = "hello";
echo $s[1] . $s[intval($_GET["x"])];`},
	{"functions", `
function fib($n) { if ($n < 2) { return $n; } return fib($n - 1) + fib($n - 2); }
function greet($who, $greeting = "hi " . "there") { return $greeting . " " . $who; }
function bump() { global $counter; $counter = $counter + 1; return $counter; }
$counter = 10;
echo fib(intval($_GET["x"]) + 3);
echo greet("a");
echo greet("b", "yo", "extra-" . $_GET["x"]);
echo bump(); echo bump(); echo $counter;`},
	{"conditional global", `
function maybeglobal($flag) {
  $g = "local";
  if ($flag) { global $g; }
  $g = $g . "+";
  return $g;
}
$g = "G";
echo maybeglobal(0); echo "|";
echo maybeglobal(intval($_GET["x"]) > 1); echo "|";
echo $g;`},
	{"isset empty unset side effects", `
function idx() { global $calls; $calls++; return 0; }
$calls = 0;
$present = array(1);
echo isset($present[idx()]) ? "T" : "F";
echo isset($absent[idx()]) ? "T" : "F";
$nullvar = null;
echo isset($nullvar) ? "T" : "F";
echo empty($nullvar) ? "T" : "F";
echo empty($present) ? "T" : "F";
echo isset($_GET["x"], $_GET["missing"]) ? "T" : "F";
unset($present);
echo isset($present) ? "T" : "F";
echo "calls=" . $calls;`},
	{"incdec and compound", `
$i = intval($_GET["x"]);
echo $i++; echo ++$i; echo $i--; echo --$i;
echo $fresh++; echo $fresh;
$a = array("n" => 2);
$a["n"] += $i;
$a["n"] .= "!";
echo $a["n"];
$s = "v"; $s .= $_GET["x"]; echo $s;`},
	{"builtins", `
$x = $_GET["x"];
echo strlen($x) . strtoupper($x) . substr("abcdef", 1, intval($x));
echo str_replace("a", $x, "banana");
echo implode(",", array(1, $x, 3));
$parts = explode("-", "a-" . $x . "-c");
echo count($parts) . $parts[1];
echo intval("12abc") . floatval("2.5") . strval(9);
echo max(1, intval($x)) . min(2, intval($x));
echo json_encode(array("k" => $x));`},
	{"ref builtins", `
$a = array(3, intval($_GET["x"]), 2);
sort($a);
echo implode(",", $a);
array_push($a, 99, intval($_GET["x"]));
echo array_pop($a);
echo array_shift($a);
rsort($a);
echo implode(",", $a);
$m = array("b" => 1, "a" => intval($_GET["x"]));
ksort($m);
foreach ($m as $k => $v) { echo $k . $v; }`},
	{"state ops", `
session_set("u", $_COOKIE["sid"]);
echo session_get("u");
apc_set("hits", intval($_GET["x"]));
echo apc_get("hits");
echo db_query("SELECT " . $_GET["x"]);
echo db_exec("UPDATE t SET v=" . $_GET["x"]);
echo db_transaction(array("INSERT a", "INSERT " . $_GET["x"]));
echo time() . mt_rand() . uniqid();`},
	{"superglobal writes", `
$_GET["added"] = "w" . $_GET["x"];
echo $_GET["added"] . $_POST["p"] . $_COOKIE["sid"];
$_GET = array("fresh" => 1);
echo isset($_GET["x"]) ? "T" : "F";
$_POST = "not-an-array";
echo $_POST["p"];`},
	{"fault undefined function", `
echo "pre";
if (intval($_GET["x"]) > 100) { no_such_fn(); }
nonexistent_function($_GET["x"]);
echo "post";`},
	{"fault bad sql", `
echo "q";
echo db_query("SELECT BAD " . $_GET["x"]);
echo "unreached";`},
	{"fault division by zero", `
$d = intval($_GET["x"]) - intval($_GET["x"]);
echo 10 / $d;`},
	{"fault foreach non-array", `
$v = "scalar";
foreach ($v as $x2) { echo $x2; }`},
	{"fault string offset assignment", `
$s = "abc";
$s[0] = $_GET["x"];
echo $s;`},
	{"fault ref builtin non-array", `
$n = 5;
sort($n);
echo "unreached";`},
	{"fault state op arity", `
session_get();
echo "unreached";`},
	{"deep paths", `
$d = array();
$d["a"]["b"][] = $_GET["x"];
$d["a"]["b"][] = "fixed";
$d[intval($_GET["x"])]["z"] = 1;
echo json_encode($d);
unset($d["a"]["b"][0]);
echo json_encode($d);
echo isset($d["a"]["b"][1]) ? "T" : "F";`},
}

func TestEngineEquivalence(t *testing.T) {
	for _, tc := range engineEquivalenceScripts {
		t.Run(tc.name, func(t *testing.T) {
			diffScript(t, tc.src, engineInputs("1"))
			diffScript(t, tc.src, engineInputs("1", "2"))
			diffScript(t, tc.src, engineInputs("4", "1", "2", "4"))
		})
	}
}

func TestEngineEquivalenceIdenticalLanes(t *testing.T) {
	// Identical inputs must stay univalent under both engines.
	for _, tc := range engineEquivalenceScripts {
		t.Run(tc.name, func(t *testing.T) {
			diffScript(t, tc.src, engineInputs("2", "2", "2"))
		})
	}
}

func TestEngineEquivalenceUnknownScript(t *testing.T) {
	diffProgram(t, map[string]string{"main": `echo "hi";`}, "missing.php", engineInputs("1"))
	diffProgram(t, map[string]string{"main": `echo "hi";`}, "missing.php", engineInputs("1", "2"))
}

func TestEngineEquivalenceMultiScript(t *testing.T) {
	files := map[string]string{
		"a.php": `function shared($v) { return $v . "!"; } echo shared($_GET["x"]) . "A";`,
		"b.php": `echo shared($_GET["x"]) . "B"; $t = $unsetvar . "end"; echo $t;`,
	}
	diffProgram(t, files, "a.php", engineInputs("1", "2"))
	diffProgram(t, files, "b.php", engineInputs("1", "2"))
}

func TestEngineEquivalenceStepLimit(t *testing.T) {
	prog := MustCompile(map[string]string{"main": `while (1) { $i++; }`})
	for _, eng := range []Engine{EngineInterp, EngineCompiled, EngineBytecode} {
		res, err := Run(prog, Config{
			Mode: ModeRecord, Script: "main", RIDs: []string{"r"},
			Inputs: []RequestInput{{}}, Bridge: newMemBridge(), MaxSteps: 500,
			Engine: eng,
		})
		if err == nil || err.Error() != "step limit exceeded" {
			t.Fatalf("%s: want step limit fault, got %v", eng.Name(), err)
		}
		if res == nil || res.Digest == 0 {
			t.Fatalf("%s: want fault-folded digest", eng.Name())
		}
	}
	a := runEngine(EngineInterp, prog, ModeRecord, "main", []RequestInput{{}}, 500)
	for _, eng := range candidateEngines {
		b := runEngine(eng, prog, ModeRecord, "main", []RequestInput{{}}, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step-limit observables diverge\ninterp: %+v\n%s: %+v", a, eng.Name(), b)
		}
	}
}

func TestEngineByName(t *testing.T) {
	for name, want := range map[string]Engine{"interp": EngineInterp, "compiled": EngineCompiled, "bytecode": EngineBytecode, "": EngineCompiled} {
		got, err := EngineByName(name)
		if err != nil || got != want {
			t.Fatalf("EngineByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := EngineByName("jit"); err == nil {
		t.Fatal("want error for unknown engine")
	}
	if len(Engines()) != 3 {
		t.Fatalf("Engines() = %v", Engines())
	}
}

// FuzzEngineEquivalence generates scripts and inputs and requires all
// engines to agree on every observable: output bytes, control-flow
// digest, op/step/instruction counts, and fault renderings — at lane
// width 1 (record mode, the server's path) and multi-lane (SIMD, the
// verifier's path).
func FuzzEngineEquivalence(f *testing.F) {
	for _, tc := range engineEquivalenceScripts {
		f.Add(tc.src, "1", "2")
	}
	f.Add(`echo $_GET["x"] + $_GET["y"];`, "0", "00")
	f.Add(`$a[$_GET["x"]] = 1; echo json_encode($a);`, "k", "0")
	f.Add(`function f($n) { return $n <= 0 ? 0 : f($n - 1); } echo f(intval($_GET["x"]));`, "250", "3")
	f.Fuzz(func(t *testing.T, src, x, y string) {
		if len(src) > 4096 || len(x) > 64 || len(y) > 64 {
			t.Skip("oversized input")
		}
		prog, err := Compile(map[string]string{"main": src})
		if err != nil {
			t.Skip("parse error")
		}
		inputs := []RequestInput{
			{Get: map[string]string{"x": x, "y": y}, Cookie: map[string]string{"sid": x}},
			{Get: map[string]string{"x": y, "y": x}, Cookie: map[string]string{"sid": y}},
		}
		const maxSteps = 20_000
		for _, eng := range candidateEngines {
			for i, in := range inputs {
				want := runEngine(EngineInterp, prog, ModeRecord, "main", []RequestInput{in}, maxSteps)
				got := runEngine(eng, prog, ModeRecord, "main", []RequestInput{in}, maxSteps)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("record[%d]: engines diverge\nsrc: %s\ninterp: %+v\n%s: %+v", i, src, want, eng.Name(), got)
				}
			}
			want := runEngine(EngineInterp, prog, ModeSIMD, "main", inputs, maxSteps)
			got := runEngine(eng, prog, ModeSIMD, "main", inputs, maxSteps)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("simd: engines diverge\nsrc: %s\ninterp: %+v\n%s: %+v", src, want, eng.Name(), got)
			}
		}
	})
}
