package lang

import (
	"errors"
	"fmt"
)

// Engine executes compiled programs. The package ships three
// implementations with bit-identical observable behavior — outputs,
// control-flow digests, op counts, step counts, instruction counts, and
// fault renderings are equal for every program and input:
//
//   - EngineInterp: the original tree-walking interpreter, kept as the
//     executable reference semantics.
//   - EngineCompiled: lowers each script once into a tree of pre-bound
//     Go closures with variable slots resolved at compile time, and
//     pools hot-path allocations. This is the default.
//   - EngineBytecode: lowers each script once into a flat instruction
//     array run by a threaded-dispatch loop with an operand stack,
//     reusing the compiled engine's slot model and the shared operator
//     cores (see bytecode.go).
//
// The equivalence is the same gate PR 3/4 applied to concurrency:
// enforced by a differential test suite and fuzzer
// (FuzzEngineEquivalence), because the server records digests with one
// engine and the verifier may re-execute with another.
type Engine interface {
	// Name is the stable CLI-facing identifier ("interp", "compiled",
	// "bytecode").
	Name() string
	// Run executes a script under cfg; see the package-level Run.
	Run(prog *Program, cfg Config) (*Result, error)
}

var (
	// EngineInterp is the tree-walking reference interpreter.
	EngineInterp Engine = interpEngine{}
	// EngineCompiled is the closure-compiled engine.
	EngineCompiled Engine = compiledEngine{}
	// EngineBytecode is the flat-instruction threaded-dispatch engine.
	EngineBytecode Engine = bytecodeEngine{}
	// DefaultEngine is used when Config.Engine is nil.
	DefaultEngine = EngineCompiled
)

// EngineByName resolves a CLI engine name.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "interp":
		return EngineInterp, nil
	case "compiled", "":
		return EngineCompiled, nil
	case "bytecode":
		return EngineBytecode, nil
	default:
		return nil, fmt.Errorf("lang: unknown engine %q (want interp, compiled or bytecode)", name)
	}
}

// Engines lists the available engine names.
func Engines() []string { return []string{"interp", "compiled", "bytecode"} }

// Run executes a script under cfg with cfg.Engine (DefaultEngine when
// nil).
//
// A request-level fault — the script raised a RuntimeError, or cfg
// names a script the program does not contain — returns BOTH a usable
// *Result and the error: the Result carries the control-flow digest
// folded with the fault site (ModeRecord), the count of state
// operations issued before the fault, and the partial output. The
// server records faulted requests into control-flow groups from this
// Result and serves RenderFault(err); the verifier re-executes those
// error groups and checks the rendering against the trace. Errors that
// are not request-level faults (divergence, multivalue fallback,
// bridge rejects, configuration mistakes) return a nil Result.
func Run(prog *Program, cfg Config) (*Result, error) {
	eng := cfg.Engine
	if eng == nil {
		eng = DefaultEngine
	}
	return eng.Run(prog, cfg)
}

// newExec validates cfg and builds the shared execution state. Both
// engines share it so validation faults and superglobal materialization
// cannot drift apart.
func newExec(prog *Program, cfg Config) (*exec, error) {
	lanes := len(cfg.RIDs)
	if lanes == 0 {
		return nil, &RuntimeError{Msg: "no lanes"}
	}
	if len(cfg.Inputs) != lanes {
		return nil, &RuntimeError{Msg: "inputs/rids length mismatch"}
	}
	if cfg.Mode != ModeSIMD && lanes != 1 {
		return nil, &RuntimeError{Msg: "multi-lane execution requires ModeSIMD"}
	}
	if cfg.Mode == ModeRecord && cfg.Bridge == nil {
		return nil, &RuntimeError{Msg: "ModeRecord requires a bridge"}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	ex := &exec{
		prog:     prog,
		mode:     cfg.Mode,
		lanes:    lanes,
		rids:     cfg.RIDs,
		bridge:   cfg.Bridge,
		out:      newOutput(lanes),
		globals:  make(map[string]Value),
		opnum:    1,
		maxSteps: maxSteps,
		stats:    cfg.CollectStats,
	}
	if cfg.Mode == ModeRecord {
		ex.digest = NewDigest(cfg.Script)
	}
	ex.super = buildSuperglobals(cfg.Inputs)
	if cfg.Session != nil {
		cfg.Session.adopt(ex)
	}
	return ex, nil
}

// unknownScriptResult is the auditable fault result for a request that
// names a script the program does not contain. The script name is
// client-controlled input, so this is a request-level fault, not a
// caller bug: zero ops, empty output, digest of the fault.
func unknownScriptResult(cfg Config, lanes int) (*Result, error) {
	rt := &RuntimeError{Msg: fmt.Sprintf("unknown script %q", cfg.Script)}
	res := &Result{out: newOutput(lanes)}
	if cfg.Mode == ModeRecord {
		d := NewDigest(cfg.Script)
		d.Fault(rt.Line, rt.Msg)
		res.Digest = d.Sum()
	}
	return res, rt
}

// finishRun assembles the Result from a completed (or faulted) script
// body execution, folding request-level faults into the digest. Shared
// by both engines.
func finishRun(ex *exec, err error) (*Result, error) {
	res := &Result{
		OpCount:    ex.opnum - 1,
		InstrUni:   ex.instrUni,
		InstrMulti: ex.instrMulti,
		Steps:      ex.steps,
		out:        ex.out,
	}
	if err != nil {
		var rt *RuntimeError
		if !errors.As(err, &rt) {
			// A FallbackError in a single-lane execution cannot mean
			// "re-execute individually" — there is nothing to split. The
			// unsupported construct is deterministic, so it is an
			// auditable runtime fault: the server serves its canonical
			// rendering and the verifier's one-lane replay reproduces it.
			var fb *FallbackError
			if ex.lanes != 1 || !errors.As(err, &fb) {
				return nil, err
			}
			rt = &RuntimeError{Msg: "unsupported construct: " + fb.Reason}
		}
		if ex.digest != nil {
			ex.digest.Fault(rt.Line, rt.Msg)
			res.Digest = ex.digest.Sum()
		}
		return res, rt
	}
	if ex.digest != nil {
		res.Digest = ex.digest.Sum()
	}
	return res, nil
}

// interpEngine is the tree-walking reference interpreter.
type interpEngine struct{}

func (interpEngine) Name() string { return "interp" }

func (interpEngine) Run(prog *Program, cfg Config) (*Result, error) {
	ex, err := newExec(prog, cfg)
	if err != nil {
		return nil, err
	}
	defer ex.releaseSession()
	script, ok := prog.Scripts[cfg.Script]
	if !ok {
		return unknownScriptResult(cfg, ex.lanes)
	}
	sc := &scope{vars: ex.globals, isGlobal: true, ex: ex}
	_, _, rerr := ex.execStmts(sc, script.Body)
	return finishRun(ex, rerr)
}

// compiledEngine executes the closure-lowered form of the program.
type compiledEngine struct{}

func (compiledEngine) Name() string { return "compiled" }

func (compiledEngine) Run(prog *Program, cfg Config) (*Result, error) {
	cp, err := prog.compiled()
	if err != nil {
		return nil, err
	}
	ex, err := newExec(prog, cfg)
	if err != nil {
		return nil, err
	}
	defer ex.releaseSession()
	cs, ok := cp.scripts[cfg.Script]
	if !ok {
		return unknownScriptResult(cfg, ex.lanes)
	}
	ex.globalSlots(cp.res.nglobals)
	fr := &cframe{ex: ex}
	_, _, rerr := runCStmts(fr, cs.body)
	return finishRun(ex, rerr)
}

// bytecodeEngine executes the flat-instruction lowering of the program.
type bytecodeEngine struct{}

func (bytecodeEngine) Name() string { return "bytecode" }

func (bytecodeEngine) Run(prog *Program, cfg Config) (*Result, error) {
	bp := prog.bytecode()
	ex, err := newExec(prog, cfg)
	if err != nil {
		return nil, err
	}
	defer ex.releaseSession()
	bs, ok := bp.scripts[cfg.Script]
	if !ok {
		return unknownScriptResult(cfg, ex.lanes)
	}
	ex.globalSlots(bp.res.nglobals)
	fr := ex.getTopBFrame()
	_, _, rerr := runBC(fr, bs.code)
	ex.putBFrame(fr)
	return finishRun(ex, rerr)
}
