package lang

import (
	"strings"
	"testing"
)

// The foreach implementation binds elements without a deep copy when the
// parser proves the body cannot mutate the element's interior. These
// tests pin down both the analysis and the observable semantics.

func TestForeachValueMutationIsolated(t *testing.T) {
	// Mutating $v's interior must not affect the subject array.
	src := `
$a = [[1], [2], [3]];
foreach ($a as $v) {
  $v[0] = 99;
}
echo $a[0][0] . $a[1][0] . $a[2][0];`
	if got := runPlain(t, src, RequestInput{}); got != "123" {
		t.Fatalf("got %q (foreach must bind copies when mutated)", got)
	}
}

func TestForeachValueReassignmentIsolated(t *testing.T) {
	// Plain reassignment of $v never affects the subject.
	src := `
$a = [1, 2, 3];
foreach ($a as $v) {
  $v = $v * 10;
}
echo implode(",", $a);`
	if got := runPlain(t, src, RequestInput{}); got != "1,2,3" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachRefBuiltinOnValueIsolated(t *testing.T) {
	// sort($v) mutates in place; the subject must stay untouched.
	src := `
$a = [[3,1,2]];
foreach ($a as $v) {
  sort($v);
}
echo implode(",", $a[0]);`
	if got := runPlain(t, src, RequestInput{}); got != "3,1,2" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachSubjectAppendDuringLoop(t *testing.T) {
	// Appending to the subject during iteration must not extend the loop.
	src := `
$a = [1, 2];
$n = 0;
foreach ($a as $v) {
  $a[] = 99;
  $n++;
}
echo $n . ":" . count($a);`
	if got := runPlain(t, src, RequestInput{}); got != "2:4" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachSubjectCellReplacementDuringLoop(t *testing.T) {
	// Replacing later cells during iteration: the loop sees the snapshot.
	src := `
$a = [1, 2, 3];
$out = "";
foreach ($a as $i => $v) {
  $a[2] = 100;
  $out .= $v . ",";
}
echo $out;`
	if got := runPlain(t, src, RequestInput{}); got != "1,2,3," {
		t.Fatalf("got %q (iteration must see the snapshot)", got)
	}
}

func TestForeachUnsetSubjectDuringLoop(t *testing.T) {
	src := `
$a = [1, 2, 3];
$out = "";
foreach ($a as $v) {
  unset($a[2]);
  $out .= $v;
}
echo $out . ":" . count($a);`
	if got := runPlain(t, src, RequestInput{}); got != "123:2" {
		t.Fatalf("got %q", got)
	}
}

func TestForeachNestedLoopsSameValVar(t *testing.T) {
	src := `
$outer = [[1,2],[3,4]];
$out = "";
foreach ($outer as $v) {
  foreach ($v as $v2) {
    $out .= $v2;
  }
}
echo $out;`
	if got := runPlain(t, src, RequestInput{}); got != "1234" {
		t.Fatalf("got %q", got)
	}
}

func TestMutationAnalysis(t *testing.T) {
	cases := []struct {
		src     string
		mutates bool
	}{
		{`foreach ($a as $v) { echo $v; }`, false},
		{`foreach ($a as $v) { $x = $v; }`, false},
		{`foreach ($a as $v) { $v = 1; }`, false},          // slot replacement only
		{`foreach ($a as $v) { $v[0] = 1; }`, true},        // interior write
		{`foreach ($a as $v) { $v["k"]["j"] = 1; }`, true}, // deep interior write
		{`foreach ($a as $v) { sort($v); }`, true},         // ref builtin
		{`foreach ($a as $v) { array_push($v, 1); }`, true},
		{`foreach ($a as $v) { unset($v[0]); }`, true},
		{`foreach ($a as $v) { $v[0]++; }`, true},
		{`foreach ($a as $v) { $v++; }`, false},                             // scalar incdec replaces slot
		{`foreach ($a as $v) { if ($v) { $v[1] = 2; } }`, true},             // nested in if
		{`foreach ($a as $v) { while (false) { $v[1] = 2; } }`, true},       // nested in while
		{`foreach ($a as $v) { foreach ($v as $w) { $w[0] = 1; } }`, false}, // inner loop mutates $w, not $v
		{`foreach ($a as $v) { foreach ($b as $w) { $v[0] = 1; } }`, true},
		{`foreach ($a as $v) { $b = [$v[0]]; }`, false}, // read-only use
		{`foreach ($a as $v) { global $v; }`, true},     // rebinding: conservative
		{`foreach ($a as $v) { $x = count($v); }`, false},
	}
	for _, c := range cases {
		prog, err := Compile(map[string]string{"m": c.src})
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		fe := findForeach(prog.Scripts["m"].Body)
		if fe == nil {
			t.Fatalf("%s: no foreach found", c.src)
		}
		if fe.MutatesVal != c.mutates {
			t.Errorf("%s: MutatesVal = %v, want %v", c.src, fe.MutatesVal, c.mutates)
		}
	}
}

func findForeach(stmts []Stmt) *Foreach {
	for _, s := range stmts {
		if fe, ok := s.(*Foreach); ok {
			return fe
		}
	}
	return nil
}

func TestForeachSIMDMutationEquivalence(t *testing.T) {
	// The mutation path must behave identically in grouped execution.
	src := `
$rows = [["n" => 1], ["n" => intval($_GET["x"])]];
foreach ($rows as $v) {
  $v["n"] = $v["n"] * 2;
  echo $v["n"] . ";";
}
echo $rows[1]["n"];`
	checkSIMDEquiv(t, src, gets("5", "9"))
}

func TestForeachBreakInsideSwitch(t *testing.T) {
	// break inside switch binds to the switch, not the loop (PHP).
	src := `
foreach ([1, 2, 3] as $v) {
  switch ($v) {
    case 2: echo "two"; break;
    default: echo $v;
  }
}`
	if got := runPlain(t, src, RequestInput{}); got != "1two3" {
		t.Fatalf("got %q", got)
	}
}

func TestStringBuilderPattern(t *testing.T) {
	// The dominant app pattern: accumulate HTML into a string across
	// nested calls and loops.
	src := `
function row($cells) {
  $out = "<tr>";
  foreach ($cells as $c) { $out .= "<td>" . $c . "</td>"; }
  return $out . "</tr>";
}
$html = "";
foreach ([[1,2],[3,4]] as $r) {
  $html .= row($r);
}
echo $html;`
	want := "<tr><td>1</td><td>2</td></tr><tr><td>3</td><td>4</td></tr>"
	if got := runPlain(t, src, RequestInput{}); got != want {
		t.Fatalf("got %q", got)
	}
	if !strings.Contains(want, "<td>1</td>") {
		t.Fatal("sanity")
	}
}
