package lang

import (
	"fmt"
)

// evalCall dispatches a call expression: user functions first (as in
// PHP, user functions and builtins live in separate namespaces but user
// code cannot redefine builtins; we give user functions priority so
// applications can shim), then reference builtins, state operations,
// non-deterministic builtins, and finally pure builtins.
func (ex *exec) evalCall(sc *scope, call *Call) (Value, error) {
	if fn, ok := ex.prog.Funcs[call.Name]; ok {
		return ex.callUser(sc, fn, call)
	}
	if _, ok := refBuiltins[call.Name]; ok {
		return ex.callRefBuiltin(sc, call)
	}
	if stateOps[call.Name] {
		return ex.callStateOp(sc, call)
	}
	if nondetBuiltins[call.Name] {
		return ex.callNonDet(sc, call)
	}
	if b, ok := builtins[call.Name]; ok {
		args := make([]Value, len(call.Args))
		for i, a := range call.Args {
			v, err := ex.evalExpr(sc, a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ex.invokeBuiltin(call.Name, b, args, call.Line)
	}
	return nil, &RuntimeError{Msg: fmt.Sprintf("call to undefined function %s()", call.Name), Line: call.Line}
}

// callUser invokes a user-defined function with PHP value semantics
// (arguments are copies).
func (ex *exec) callUser(sc *scope, fn *FuncDecl, call *Call) (Value, error) {
	if ex.callDepth >= maxCallDepth {
		return nil, &RuntimeError{Msg: "maximum call depth exceeded", Line: call.Line}
	}
	frame := &scope{vars: make(map[string]Value, len(fn.Params)), ex: ex}
	for i, p := range fn.Params {
		if i < len(call.Args) {
			v, err := ex.evalExpr(sc, call.Args[i])
			if err != nil {
				return nil, err
			}
			frame.vars[p.Name] = CloneValue(v)
			continue
		}
		if p.Default != nil {
			v, err := ex.evalExpr(frame, p.Default)
			if err != nil {
				return nil, err
			}
			frame.vars[p.Name] = v
			continue
		}
		frame.vars[p.Name] = nil
	}
	// Extra arguments beyond the parameter list are evaluated for their
	// effects and discarded.
	for i := len(fn.Params); i < len(call.Args); i++ {
		if _, err := ex.evalExpr(sc, call.Args[i]); err != nil {
			return nil, err
		}
	}
	ex.callDepth++
	c, rv, err := ex.execStmts(frame, fn.Body)
	ex.callDepth--
	if err != nil {
		return nil, err
	}
	if c == ctrlReturn {
		return CloneValue(rv), nil
	}
	return nil, nil
}

// invokeBuiltin runs a pure builtin, splitting per-lane when any argument
// contains a multivalue (§4.3 "Built-in functions"): the runtime splits
// the multivalue arguments into univalues, deep-copies container
// arguments, executes the builtin once per lane, and merges the results
// back into a multivalue.
func (ex *exec) invokeBuiltin(name string, fn builtinFn, args []Value, line int) (Value, error) {
	anyMulti := false
	for _, a := range args {
		if DeepContainsMulti(a) {
			anyMulti = true
			break
		}
	}
	if !anyMulti {
		ex.countInstr(false)
		return fn(ex, args, line)
	}
	ex.countInstr(true)
	return ex.forLanes(func(i int) (Value, error) {
		laneArgs := make([]Value, len(args))
		for j, a := range args {
			// Deep copy: the builtin could have modified its argument
			// differently in the original executions.
			laneArgs[j] = CloneValue(MaterializeLane(a, i))
		}
		return fn(ex, laneArgs, line)
	})
}

// callRefBuiltin handles builtins whose first argument is by-reference
// (sort, array_push, ...). The first argument must be an lvalue; it is
// read, transformed per-lane if needed, and written back.
func (ex *exec) callRefBuiltin(sc *scope, call *Call) (Value, error) {
	fn := refBuiltins[call.Name]
	if len(call.Args) == 0 {
		return nil, &RuntimeError{Msg: call.Name + "() expects an argument", Line: call.Line}
	}
	lv, err := exprToLValue(call.Args[0])
	if err != nil {
		return nil, &RuntimeError{Msg: call.Name + "(): first argument must be a variable", Line: call.Line}
	}
	cur, err := ex.readLValue(sc, lv)
	if err != nil {
		return nil, err
	}
	rest := make([]Value, 0, len(call.Args)-1)
	for _, a := range call.Args[1:] {
		v, err := ex.evalExpr(sc, a)
		if err != nil {
			return nil, err
		}
		rest = append(rest, v)
	}
	result, newTarget, err := ex.refBuiltinApply(call.Name, fn, cur, rest, call.Line)
	if err != nil {
		return nil, err
	}
	if err := ex.assignTo(sc, lv, newTarget); err != nil {
		return nil, err
	}
	return result, nil
}

// refBuiltinApply is the engine-independent core of a by-reference
// builtin call: the current target value in, (result, new target value)
// out. Both engines route through it so the per-lane clone/merge rules
// stay identical.
func (ex *exec) refBuiltinApply(name string, fn refBuiltinFn, cur Value, rest []Value, line int) (Value, Value, error) {
	anyMulti := DeepContainsMulti(cur)
	for _, a := range rest {
		if DeepContainsMulti(a) {
			anyMulti = true
		}
	}
	if !anyMulti {
		ex.countInstr(false)
		arr, ok := cur.(*Array)
		if !ok {
			if cur == nil {
				arr = NewArray()
			} else {
				return nil, nil, &RuntimeError{Msg: name + "() expects an array", Line: line}
			}
		}
		result, err := fn(ex, arr, rest, line)
		if err != nil {
			return nil, nil, err
		}
		return result, arr, nil
	}
	ex.countInstr(true)
	tgtVals := make([]Value, ex.lanes)
	result, err := ex.forLanes(func(i int) (Value, error) {
		laneCur := CloneValue(MaterializeLane(cur, i))
		arr, ok := laneCur.(*Array)
		if !ok {
			if laneCur == nil {
				arr = NewArray()
			} else {
				return nil, &RuntimeError{Msg: name + "() expects an array", Line: line}
			}
		}
		laneRest := make([]Value, len(rest))
		for j, a := range rest {
			laneRest[j] = CloneValue(MaterializeLane(a, i))
		}
		r, err := fn(ex, arr, laneRest, line)
		if err != nil {
			return nil, err
		}
		tgtVals[i] = arr
		return r, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return result, NewMulti(tgtVals), nil
}

// callStateOp issues a shared-object operation through the bridge. In
// ModeSIMD the operation is issued once per lane under the shared group
// opnum (Fig. 3 lines 36-43); results merge into a multivalue.
func (ex *exec) callStateOp(sc *scope, call *Call) (Value, error) {
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		v, err := ex.evalExpr(sc, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return ex.stateOpCore(call.Name, args, call.Line)
}

// stateOpCore is the engine-independent core of a state-op call:
// arguments already evaluated, everything from the bridge check to the
// per-lane issue shared by both engines.
func (ex *exec) stateOpCore(name string, args []Value, line int) (Value, error) {
	if ex.bridge == nil {
		return nil, &RuntimeError{Msg: "no shared-state bridge configured", Line: line}
	}
	anyMulti := false
	for _, a := range args {
		if DeepContainsMulti(a) {
			anyMulti = true
			break
		}
	}
	ex.countInstr(anyMulti)
	// Validate the call shape BEFORE consuming an opnum: a call that
	// faults on its arguments never reaches a shared object, so it must
	// not count toward report M — the server records no log entry for
	// it, and the verifier's re-execution must agree on the count.
	if err := ex.checkStateOpArgs(name, args, line); err != nil {
		return nil, err
	}
	opnum := ex.opnum
	ex.opnum++
	return ex.forLanes(func(i int) (Value, error) {
		laneArgs := make([]Value, len(args))
		for j, a := range args {
			laneArgs[j] = MaterializeLane(a, i)
		}
		return ex.stateOpLane(name, ex.rids[i], opnum, laneArgs, line)
	})
}

// checkStateOpArgs rejects malformed state-op calls (arity, operand
// shape) as request-level faults, per lane where the shape is
// lane-dependent. It runs before the opnum is allocated.
func (ex *exec) checkStateOpArgs(name string, args []Value, line int) error {
	argErr := func(want string) error {
		return &RuntimeError{Msg: fmt.Sprintf("%s() expects %s", name, want), Line: line}
	}
	switch name {
	case "session_get", "apc_get", "db_query", "db_exec":
		if len(args) != 1 {
			return argErr("1 argument")
		}
	case "session_set", "apc_set":
		if len(args) != 2 {
			return argErr("2 arguments")
		}
	case "db_transaction":
		if len(args) != 1 {
			return argErr("an array of statements")
		}
		// Lane (not MaterializeLane): the shape check needs only the
		// top-level type and length, so skip the deep materialization —
		// the issue path materializes each lane once anyway.
		_, err := ex.forLanes(func(i int) (Value, error) {
			arr, ok := Lane(args[0], i).(*Array)
			if !ok || arr.Len() == 0 {
				return nil, argErr("a non-empty array of statements")
			}
			return nil, nil
		})
		return err
	default:
		return &RuntimeError{Msg: "unknown state op " + name, Line: line}
	}
	return nil
}

// stateOpLane issues one lane's operation; the call shape was already
// validated by checkStateOpArgs.
func (ex *exec) stateOpLane(name, rid string, opnum int, args []Value, line int) (Value, error) {
	switch name {
	case "session_get":
		return ex.bridge.RegisterRead(rid, opnum, ToString(args[0]))
	case "session_set":
		if err := ex.bridge.RegisterWrite(rid, opnum, ToString(args[0]), args[1]); err != nil {
			return nil, err
		}
		return true, nil
	case "apc_get":
		return ex.bridge.KvGet(rid, opnum, ToString(args[0]))
	case "apc_set":
		if err := ex.bridge.KvSet(rid, opnum, ToString(args[0]), args[1]); err != nil {
			return nil, err
		}
		return true, nil
	case "db_query", "db_exec":
		res, err := ex.bridge.DBOp(rid, opnum, []string{ToString(args[0])})
		if err != nil {
			return nil, err
		}
		// Unwrap the single statement's result.
		if arr, ok := res.(*Array); ok && arr.Len() == 1 {
			v, _ := arr.Get(Key{I: 0, IsInt: true})
			return v, nil
		}
		return res, nil
	case "db_transaction":
		arr, ok := args[0].(*Array)
		if !ok {
			// checkStateOpArgs validated the lane shapes already; keep the
			// graceful fault in case the two resolutions ever disagree.
			return nil, &RuntimeError{Msg: "db_transaction() expects a non-empty array of statements", Line: line}
		}
		stmts := make([]string, 0, arr.Len())
		for _, v := range arr.Values() {
			stmts = append(stmts, ToString(v))
		}
		return ex.bridge.DBOp(rid, opnum, stmts)
	default:
		return nil, &RuntimeError{Msg: "unknown state op " + name, Line: line}
	}
}

// callNonDet obtains a non-deterministic value per lane (§4.6).
func (ex *exec) callNonDet(sc *scope, call *Call) (Value, error) {
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		v, err := ex.evalExpr(sc, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return ex.nonDetCore(call.Name, args)
}

// nonDetCore is the engine-independent core of a nondet builtin call.
func (ex *exec) nonDetCore(name string, args []Value) (Value, error) {
	anyMulti := false
	for _, a := range args {
		if DeepContainsMulti(a) {
			anyMulti = true
			break
		}
	}
	ex.countInstr(anyMulti)
	return ex.forLanes(func(i int) (Value, error) {
		laneArgs := make([]Value, len(args))
		for j, a := range args {
			laneArgs[j] = MaterializeLane(a, i)
		}
		if ex.bridge == nil {
			return nativeNonDet(name, laneArgs)
		}
		return ex.bridge.NonDet(ex.rids[i], name, laneArgs)
	})
}

// stateOps names the builtins that operate on shared objects.
var stateOps = map[string]bool{
	"session_get":    true,
	"session_set":    true,
	"apc_get":        true,
	"apc_set":        true,
	"db_query":       true,
	"db_exec":        true,
	"db_transaction": true,
}

// nondetBuiltins names the non-deterministic builtins (§4.6).
var nondetBuiltins = map[string]bool{
	"time":      true,
	"microtime": true,
	"mt_rand":   true,
	"rand":      true,
	"uniqid":    true,
	"getmypid":  true,
}
