package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// EncodeValue serializes v into a canonical, self-delimiting string (in
// the spirit of PHP's serialize()). Two deep-equal values always encode
// identically, so the verifier can compare logged operation contents
// against re-execution by byte equality (§3.3). Multivalues cannot be
// encoded; they never appear in operation contents (ops are issued
// per-lane).
func EncodeValue(v Value) string {
	var b strings.Builder
	encodeValue(&b, v)
	return b.String()
}

func encodeValue(b *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteString("N;")
	case bool:
		if x {
			b.WriteString("b:1;")
		} else {
			b.WriteString("b:0;")
		}
	case int64:
		b.WriteString("i:")
		b.WriteString(strconv.FormatInt(x, 10))
		b.WriteByte(';')
	case float64:
		b.WriteString("d:")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		b.WriteByte(';')
	case string:
		b.WriteString("s:")
		b.WriteString(strconv.Itoa(len(x)))
		b.WriteByte(':')
		b.WriteString(x)
		b.WriteByte(';')
	case *Array:
		b.WriteString("a:")
		b.WriteString(strconv.Itoa(x.Len()))
		b.WriteByte(':')
		for _, k := range x.keys {
			encodeValue(b, k.Value())
			encodeValue(b, x.m[k])
		}
		b.WriteByte(';')
	case *Multi:
		panic("lang: cannot encode a multivalue")
	default:
		panic(fmt.Sprintf("lang: cannot encode %T", v))
	}
}

// DecodeValue parses a string produced by EncodeValue.
func DecodeValue(s string) (Value, error) {
	v, rest, err := decodeValue(s)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("lang: trailing garbage in encoded value: %q", rest)
	}
	return v, nil
}

func decodeValue(s string) (Value, string, error) {
	if s == "" {
		return nil, "", fmt.Errorf("lang: empty encoded value")
	}
	switch s[0] {
	case 'N':
		if !strings.HasPrefix(s, "N;") {
			return nil, "", fmt.Errorf("lang: bad null encoding")
		}
		return nil, s[2:], nil
	case 'b':
		if strings.HasPrefix(s, "b:1;") {
			return true, s[4:], nil
		}
		if strings.HasPrefix(s, "b:0;") {
			return false, s[4:], nil
		}
		return nil, "", fmt.Errorf("lang: bad bool encoding")
	case 'i':
		body, rest, err := untilSemicolon(s, "i:")
		if err != nil {
			return nil, "", err
		}
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("lang: bad int encoding: %v", err)
		}
		return n, rest, nil
	case 'd':
		body, rest, err := untilSemicolon(s, "d:")
		if err != nil {
			return nil, "", err
		}
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return nil, "", fmt.Errorf("lang: bad float encoding: %v", err)
		}
		return f, rest, nil
	case 's':
		if !strings.HasPrefix(s, "s:") {
			return nil, "", fmt.Errorf("lang: bad string encoding")
		}
		rest := s[2:]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, "", fmt.Errorf("lang: bad string length")
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil || n < 0 {
			return nil, "", fmt.Errorf("lang: bad string length %q", rest[:colon])
		}
		rest = rest[colon+1:]
		if len(rest) < n+1 || rest[n] != ';' {
			return nil, "", fmt.Errorf("lang: truncated string encoding")
		}
		return rest[:n], rest[n+1:], nil
	case 'a':
		if !strings.HasPrefix(s, "a:") {
			return nil, "", fmt.Errorf("lang: bad array encoding")
		}
		rest := s[2:]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, "", fmt.Errorf("lang: bad array length")
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil || n < 0 {
			return nil, "", fmt.Errorf("lang: bad array length %q", rest[:colon])
		}
		rest = rest[colon+1:]
		arr := NewArray()
		for i := 0; i < n; i++ {
			var kv, vv Value
			kv, rest, err = decodeValue(rest)
			if err != nil {
				return nil, "", err
			}
			vv, rest, err = decodeValue(rest)
			if err != nil {
				return nil, "", err
			}
			k, err := NormalizeKey(kv)
			if err != nil {
				return nil, "", err
			}
			arr.Set(k, vv)
		}
		if len(rest) == 0 || rest[0] != ';' {
			return nil, "", fmt.Errorf("lang: unterminated array encoding")
		}
		return arr, rest[1:], nil
	default:
		return nil, "", fmt.Errorf("lang: unknown encoding tag %q", s[0])
	}
}

func untilSemicolon(s, prefix string) (body, rest string, err error) {
	if !strings.HasPrefix(s, prefix) {
		return "", "", fmt.Errorf("lang: expected prefix %q", prefix)
	}
	s = s[len(prefix):]
	i := strings.IndexByte(s, ';')
	if i < 0 {
		return "", "", fmt.Errorf("lang: missing terminator")
	}
	return s[:i], s[i+1:], nil
}
