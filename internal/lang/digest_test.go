package lang

import (
	"testing"
	"testing/quick"
)

// testBridge is a minimal recording bridge for exercising ModeRecord.
type testBridge struct {
	regs map[string]Value
	ops  []string
}

func newTestBridge() *testBridge {
	return &testBridge{regs: map[string]Value{}}
}

func (b *testBridge) RegisterRead(rid string, opnum int, name string) (Value, error) {
	b.ops = append(b.ops, "read:"+name)
	return b.regs[name], nil
}
func (b *testBridge) RegisterWrite(rid string, opnum int, name string, v Value) error {
	b.ops = append(b.ops, "write:"+name)
	b.regs[name] = CloneValue(v)
	return nil
}
func (b *testBridge) KvGet(rid string, opnum int, key string) (Value, error) { return nil, nil }
func (b *testBridge) KvSet(rid string, opnum int, key string, v Value) error { return nil }
func (b *testBridge) DBOp(rid string, opnum int, stmts []string) (Value, error) {
	return NewArray(), nil
}
func (b *testBridge) NonDet(rid string, fn string, args []Value) (Value, error) {
	return int64(42), nil
}

func recordDigest(t *testing.T, src string, in RequestInput) (uint64, *Result) {
	t.Helper()
	prog, err := Compile(map[string]string{"main": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Run(prog, Config{
		Mode: ModeRecord, Script: "main", RIDs: []string{"r1"},
		Inputs: []RequestInput{in}, Bridge: newTestBridge(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Digest, res
}

func TestDigestSameControlFlowSameTag(t *testing.T) {
	src := `
$x = intval($_GET["x"]);
if ($x > 0) { echo "pos"; } else { echo "neg"; }
for ($i = 0; $i < 3; $i++) { echo $i; }`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "5"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "9"}})
	if d1 != d2 {
		t.Fatal("same control flow must give the same digest")
	}
}

func TestDigestBranchChangesTag(t *testing.T) {
	src := `if (intval($_GET["x"]) > 0) { echo "p"; } else { echo "n"; }`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "5"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "-5"}})
	if d1 == d2 {
		t.Fatal("different branches must change the digest")
	}
}

func TestDigestIterationCountChangesTag(t *testing.T) {
	src := `for ($i = 0; $i < intval($_GET["x"]); $i++) { }
echo "done";`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "2"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "3"}})
	if d1 == d2 {
		t.Fatal("different iteration counts must change the digest")
	}
}

func TestDigestForeachCountChangesTag(t *testing.T) {
	src := `foreach (explode(",", $_GET["x"]) as $v) { } echo "x";`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "a,b"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "a,b,c"}})
	if d1 == d2 {
		t.Fatal("different foreach lengths must change the digest")
	}
}

func TestDigestShortCircuitChangesTag(t *testing.T) {
	src := `$b = intval($_GET["x"]) > 0 && strlen($_GET["x"]) > 0; echo $b ? 1 : 0;`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "5"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "-5"}})
	if d1 == d2 {
		t.Fatal("different short-circuit paths must change the digest")
	}
}

func TestDigestTernaryChangesTag(t *testing.T) {
	src := `echo intval($_GET["x"]) % 2 ? "odd" : "even";`
	d1, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "1"}})
	d2, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "2"}})
	if d1 == d2 {
		t.Fatal("different ternary directions must change the digest")
	}
}

func TestDigestSwitchArmChangesTag(t *testing.T) {
	src := `switch ($_GET["x"]) { case "a": echo 1; break; case "b": echo 2; break; default: echo 3; }`
	da, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "a"}})
	db, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "b"}})
	dz, _ := recordDigest(t, src, RequestInput{Get: map[string]string{"x": "z"}})
	if da == db || db == dz || da == dz {
		t.Fatalf("switch arms must give distinct digests: %x %x %x", da, db, dz)
	}
}

func TestDigestScriptSeed(t *testing.T) {
	// Identical bodies in different scripts must not share tags.
	prog := MustCompile(map[string]string{"s1": `echo 1;`, "s2": `echo 1;`})
	run := func(script string) uint64 {
		res, err := Run(prog, Config{
			Mode: ModeRecord, Script: script, RIDs: []string{"r"},
			Inputs: []RequestInput{{}}, Bridge: newTestBridge(),
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Digest
	}
	if run("s1") == run("s2") {
		t.Fatal("digests must be seeded by script name")
	}
}

func TestDigestDeterministicAcrossCompiles(t *testing.T) {
	// Site IDs must be stable across separate compilations of the same
	// sources (the verifier and server compile independently).
	files := map[string]string{
		"a": `if (intval($_GET["x"]) > 1) { echo "y"; } else { echo "n"; }`,
		"b": `for ($i=0;$i<2;$i++) { echo $i; }`,
	}
	digest := func() uint64 {
		prog := MustCompile(files)
		res, err := Run(prog, Config{
			Mode: ModeRecord, Script: "a", RIDs: []string{"r"},
			Inputs: []RequestInput{{Get: map[string]string{"x": "5"}}}, Bridge: newTestBridge(),
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Digest
	}
	if digest() != digest() {
		t.Fatal("digest must be deterministic across compiles")
	}
}

func TestOpCountTracksStateOps(t *testing.T) {
	src := `
session_set("k", "v");
$v = session_get("k");
apc_set("a", 1);
$b = apc_get("a");
echo $v;`
	prog := MustCompile(map[string]string{"main": src})
	res, err := Run(prog, Config{
		Mode: ModeRecord, Script: "main", RIDs: []string{"r1"},
		Inputs: []RequestInput{{}}, Bridge: newTestBridge(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.OpCount != 4 {
		t.Fatalf("OpCount = %d, want 4", res.OpCount)
	}
	if res.Output(0) != "v" {
		t.Fatalf("output %q", res.Output(0))
	}
}

func TestNonDetThroughBridge(t *testing.T) {
	src := `echo time();`
	prog := MustCompile(map[string]string{"main": src})
	res, err := Run(prog, Config{
		Mode: ModeRecord, Script: "main", RIDs: []string{"r1"},
		Inputs: []RequestInput{{}}, Bridge: newTestBridge(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output(0) != "42" {
		t.Fatalf("output %q (nondet must come from the bridge)", res.Output(0))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		nil, true, false, int64(0), int64(-12345), int64(1) << 60,
		float64(3.25), "", "hello;world", "with:colons;and;semis",
	}
	arr := NewArray()
	arr.Append(int64(1))
	k, _ := NormalizeKey(Value("key"))
	arr.Set(k, "val")
	inner := NewArray()
	inner.Append("nested")
	arr.Append(inner)
	vals = append(vals, arr)
	for _, v := range vals {
		enc := EncodeValue(v)
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if !Equal(v, dec) {
			t.Fatalf("round trip mismatch: %v -> %q -> %v", v, enc, dec)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	// Same logical value built differently must encode identically.
	a1 := NewArray()
	a1.Append("x")
	a1.Append("y")
	a2 := NewArray()
	a2.Append("x")
	a2.Append("z")
	k1, _ := NormalizeKey(Value(int64(1)))
	a2.Set(k1, "y") // overwrite index 1
	if EncodeValue(a1) != EncodeValue(a2) {
		t.Fatal("canonical encoding mismatch for equal arrays")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []string{"", "x", "i:;", "i:12", "s:5:ab;", "a:1:i:0;;", "N", "b:2;", "i:1;i:2;"}
	for _, s := range bad {
		if _, err := DecodeValue(s); err == nil {
			t.Errorf("DecodeValue(%q): expected error", s)
		}
	}
}

func TestEncodeQuickRoundTrip(t *testing.T) {
	f := func(i int64, s string, b bool, f float64) bool {
		arr := NewArray()
		arr.Append(i)
		arr.Append(s)
		arr.Append(b)
		arr.Append(f)
		k, _ := NormalizeKey(Value(s))
		arr.Set(k, i)
		dec, err := DecodeValue(EncodeValue(arr))
		if err != nil {
			return false
		}
		return Equal(arr, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
