package lang

import (
	"testing"
	"testing/quick"
)

func TestToBoolTruthTable(t *testing.T) {
	truthy := []Value{true, int64(1), int64(-1), 3.14, "a", "00", " "}
	falsy := []Value{nil, false, int64(0), 0.0, "", "0"}
	for _, v := range truthy {
		if !ToBool(v) {
			t.Errorf("ToBool(%#v) = false, want true", v)
		}
	}
	for _, v := range falsy {
		if ToBool(v) {
			t.Errorf("ToBool(%#v) = true, want false", v)
		}
	}
	empty := NewArray()
	if ToBool(empty) {
		t.Error("empty array must be falsy")
	}
	empty.Append(int64(0))
	if !ToBool(empty) {
		t.Error("non-empty array must be truthy")
	}
}

func TestToIntCoercions(t *testing.T) {
	cases := []struct {
		in   Value
		want int64
	}{
		{nil, 0}, {true, 1}, {false, 0},
		{int64(42), 42}, {3.99, 3}, {-3.99, -3},
		{"42", 42}, {"42abc", 42}, {"abc", 0}, {"", 0},
		{"3.9", 3}, {"-7", -7}, {" 8", 8}, {"0x10", 0},
		{"1e3", 1000},
	}
	for _, c := range cases {
		if got := ToInt(c.in); got != c.want {
			t.Errorf("ToInt(%#v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestToStringCoercions(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, ""}, {true, "1"}, {false, ""},
		{int64(42), "42"}, {float64(2), "2"}, {2.5, "2.5"},
		{"x", "x"},
	}
	for _, c := range cases {
		if got := ToString(c.in); got != c.want {
			t.Errorf("ToString(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
	if ToString(NewArray()) != "Array" {
		t.Error("arrays stringify to 'Array' (with a notice, in PHP)")
	}
}

func TestKeyNormalization(t *testing.T) {
	cases := []struct {
		in    Value
		isInt bool
		i     int64
		s     string
	}{
		{int64(5), true, 5, ""},
		{"5", true, 5, ""},
		{"05", false, 0, "05"}, // non-canonical int string stays a string
		{"5.0", false, 0, "5.0"},
		{"-3", true, -3, ""},
		{"", false, 0, ""},
		{true, true, 1, ""},
		{false, true, 0, ""},
		{nil, false, 0, ""},
		{2.9, true, 2, ""}, // floats truncate
		{"abc", false, 0, "abc"},
	}
	for _, c := range cases {
		k, err := NormalizeKey(c.in)
		if err != nil {
			t.Fatalf("NormalizeKey(%#v): %v", c.in, err)
		}
		if k.IsInt != c.isInt || (c.isInt && k.I != c.i) || (!c.isInt && k.S != c.s) {
			t.Errorf("NormalizeKey(%#v) = %+v", c.in, k)
		}
	}
	if _, err := NormalizeKey(NewArray()); err == nil {
		t.Error("arrays cannot be keys")
	}
}

// Equal must be an equivalence relation on scalars and arrays.
func TestEqualEquivalenceQuick(t *testing.T) {
	mk := func(i int64, s string, b bool) Value {
		a := NewArray()
		a.Append(i)
		a.Append(s)
		a.Append(b)
		return a
	}
	reflexive := func(i int64, s string, b bool) bool {
		v := mk(i, s, b)
		return Equal(v, v) && Equal(CloneValue(v), v)
	}
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	symmetric := func(i, j int64) bool {
		return Equal(i, j) == Equal(j, i)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Compare must be antisymmetric and consistent with LooseEqual on
// numbers.
func TestCompareConsistencyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		c1 := Compare(a, b)
		c2 := Compare(b, a)
		if c1 != -c2 {
			return false
		}
		if (c1 == 0) != LooseEqual(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// CloneValue must produce values Equal to the original and disjoint in
// mutation.
func TestCloneQuick(t *testing.T) {
	f := func(i int64, s string) bool {
		a := NewArray()
		a.Append(i)
		inner := NewArray()
		inner.Append(s)
		a.Append(inner)
		cl := CloneValue(a).(*Array)
		if !Equal(a, cl) {
			return false
		}
		cl.Append("extra")
		innerClone, _ := cl.Get(Key{I: 1, IsInt: true})
		innerClone.(*Array).Append("deep")
		return a.Len() == 2 && mustGetArr(a, 1).Len() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustGetArr(a *Array, idx int64) *Array {
	v, _ := a.Get(Key{I: idx, IsInt: true})
	return v.(*Array)
}

func TestArrayOrderedSemantics(t *testing.T) {
	a := NewArray()
	ka, _ := NormalizeKey(Value("z"))
	kb, _ := NormalizeKey(Value("a"))
	a.Set(ka, int64(1))
	a.Set(kb, int64(2))
	a.Append(int64(3)) // key 0
	// Insertion order preserved, not key order.
	keys := a.Keys()
	if keys[0].S != "z" || keys[1].S != "a" || keys[2].I != 0 {
		t.Fatalf("keys = %v", keys)
	}
	// Overwrite preserves position.
	a.Set(ka, int64(9))
	if a.Keys()[0].S != "z" || a.Len() != 3 {
		t.Fatal("overwrite must keep position")
	}
	// Delete then re-add moves to the end.
	a.Delete(ka)
	a.Set(ka, int64(10))
	if a.Keys()[2].S != "z" {
		t.Fatal("re-added key must be at the end")
	}
}

func TestArrayAppendIndexing(t *testing.T) {
	a := NewArray()
	a.Append("x") // 0
	k5, _ := NormalizeKey(Value(int64(5)))
	a.Set(k5, "y")
	a.Append("z") // 6
	keys := a.Keys()
	if keys[2].I != 6 {
		t.Fatalf("append after explicit index: key = %v", keys[2])
	}
	// Negative keys do not disturb the append counter.
	kn, _ := NormalizeKey(Value(int64(-10)))
	a.Set(kn, "w")
	a.Append("v") // 7
	if a.Keys()[4].I != 7 {
		t.Fatalf("append after negative index: %v", a.Keys()[4])
	}
}

func TestLooseEqualTable(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{int64(0), "", false}, // PHP 8 semantics: 0 == "" is false... we follow numeric-string rule
		{int64(0), "0", true},
		{int64(1), "1", true},
		{int64(1), "01", true},
		{"1", "01", true}, // both numeric
		{"abc", "abc", true},
		{"abc", "ABC", false},
		{nil, false, true},
		{nil, int64(0), true},
		{nil, "", true},
		{true, int64(1), true},
		{true, int64(2), true}, // truthiness comparison
		{false, int64(0), true},
		{1.5, "1.5", true},
	}
	for _, c := range cases {
		if got := LooseEqual(c.a, c.b); got != c.want {
			t.Errorf("LooseEqual(%#v, %#v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLooseEqualArrays(t *testing.T) {
	a1, a2 := NewArray(), NewArray()
	k, _ := NormalizeKey(Value("k"))
	a1.Set(k, int64(1))
	a2.Set(k, "1") // loose-equal cell
	if !LooseEqual(a1, a2) {
		t.Fatal("arrays with loose-equal cells must compare ==")
	}
	if Equal(a1, a2) {
		t.Fatal("but not ===")
	}
	a2.Append("extra")
	if LooseEqual(a1, a2) {
		t.Fatal("different lengths are never ==")
	}
}

func TestNumericStringDetection(t *testing.T) {
	yes := []string{"0", "12", "-5", "3.25", " 42", "1e3", "0.5"}
	no := []string{"", "abc", "12abc", "1.2.3", "--2", "e3"}
	for _, s := range yes {
		if !IsNumericString(s) {
			t.Errorf("IsNumericString(%q) = false", s)
		}
	}
	for _, s := range no {
		if IsNumericString(s) {
			t.Errorf("IsNumericString(%q) = true", s)
		}
	}
}

func TestIntOverflowPromotesToFloat(t *testing.T) {
	src := `echo 9223372036854775807 + 1;`
	got := runPlain(t, src, RequestInput{})
	// Must not wrap silently to a negative int.
	if got == "-9223372036854775808" {
		t.Fatal("int overflow must promote to float, not wrap")
	}
}

func TestSortValuesStability(t *testing.T) {
	a := NewArray()
	for _, v := range []string{"b", "a", "c", "a"} {
		a.Append(v)
	}
	a.SortValues(func(x, y Value) bool { return Compare(x, y) < 0 })
	vals := a.Values()
	if vals[0] != "a" || vals[1] != "a" || vals[2] != "b" || vals[3] != "c" {
		t.Fatalf("sorted = %v", vals)
	}
	// Keys are renumbered 0..n-1.
	for i, k := range a.Keys() {
		if !k.IsInt || k.I != int64(i) {
			t.Fatalf("key %d = %v", i, k)
		}
	}
}
