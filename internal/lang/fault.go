package lang

import (
	"errors"
	"fmt"
)

// Faulted executions are first-class, auditable outcomes. A request
// whose script raises a RuntimeError still produces a Result: in
// ModeRecord the control-flow digest is folded with the fault site and
// message (so faulted requests land in their own control-flow groups)
// and OpCount covers the state operations issued before the fault. The
// server serves the canonical rendering of the fault; the verifier
// re-executes the error group, demands that every lane fault at the
// same point with the same rendering, and compares that rendering
// against the traced responses. Completeness then covers real web
// workloads (where requests do fail) without weakening soundness: a
// forged, relocated, or edited error response still rejects.

// RenderFault renders a runtime fault as the canonical error-response
// body. The server and the verifier must agree byte-for-byte: the
// server serves this rendering for a faulted request, and during the
// audit the re-executed fault's rendering is compared against the
// traced response. The fault site (source line) is part of the
// rendering, so an error body relocated to a different site is a
// response the program could not have produced — it REJECTs on the
// output comparison, matching what Digest.Fault folds into the group
// tag.
func RenderFault(err error) string {
	var rt *RuntimeError
	if errors.As(err, &rt) && rt.Line > 0 {
		return fmt.Sprintf("HTTP 500: line %d: %s", rt.Line, rt.Msg)
	}
	return "HTTP 500: " + err.Error()
}

// sameFault reports whether two faults are the same auditable outcome:
// identical message and site. Lanes of a control-flow group that fault
// differently did not share control flow.
func (e *RuntimeError) sameFault(o *RuntimeError) bool {
	return e.Msg == o.Msg && e.Line == o.Line
}

// forLanes runs f once per lane and merges the outcomes under the
// error-group rule: if no lane faults the per-lane values merge into a
// multivalue; if every lane faults with the same rendered fault, the
// shared fault propagates (the whole group faults here, exactly as each
// request did on the server); any mixed or unequal outcome means the
// lanes did not share control flow, which is divergence (Fig. 3 line
// 34). Non-fault errors — divergence from nested execution, multivalue
// fallback, CheckOp rejects from the verifier bridge — propagate
// immediately.
func (ex *exec) forLanes(f func(lane int) (Value, error)) (Value, error) {
	vals := ex.getLaneSlice()
	var fault *RuntimeError
	for i := 0; i < ex.lanes; i++ {
		v, err := f(i)
		if err == nil {
			if fault != nil {
				ex.putLaneSlice(vals)
				return nil, ErrDivergence // earlier lanes faulted, this one did not
			}
			vals[i] = v
			continue
		}
		var rt *RuntimeError
		if !errors.As(err, &rt) {
			ex.putLaneSlice(vals)
			return nil, err
		}
		if i > 0 && fault == nil {
			ex.putLaneSlice(vals)
			return nil, ErrDivergence // earlier lanes succeeded, this one faulted
		}
		if fault != nil && !fault.sameFault(rt) {
			ex.putLaneSlice(vals)
			return nil, ErrDivergence // lanes faulted at different sites or with different messages
		}
		fault = rt
	}
	if fault != nil {
		ex.putLaneSlice(vals)
		return nil, fault
	}
	merged := NewMulti(vals)
	if _, retained := merged.(*Multi); !retained {
		// All lanes were equal, so NewMulti collapsed to a univalue and
		// nothing holds the slice: recycle it.
		ex.putLaneSlice(vals)
	}
	return merged, nil
}
