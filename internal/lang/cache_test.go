package lang

import (
	"fmt"
	"testing"
)

func runCachedProg(t *testing.T, prog *Program) string {
	t.Helper()
	res, err := Run(prog, Config{
		Mode: ModePlain, Script: "main",
		RIDs: []string{"r1"}, Inputs: []RequestInput{{}},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output(0)
}

// TestCompileCachedSharesProgram: identical sources return the identical
// *Program while resident, and the hit counter moves.
func TestCompileCachedSharesProgram(t *testing.T) {
	src := map[string]string{"main": `echo "cache-share";`}
	a, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := CacheStats()
	b, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical sources returned distinct programs")
	}
	if hits1, _ := CacheStats(); hits1 != hits0+1 {
		t.Fatalf("hits %d -> %d, want +1", hits0, hits1)
	}
}

// TestCacheEvictionKeepsSharedProgramsValid is the satellite's safety
// property: the LRU bound only drops the cache's own reference. A
// program shared by a server and a verifier (both holding the pointer)
// keeps executing identically after a patch sweep floods the cache past
// its capacity and evicts it.
func TestCacheEvictionKeepsSharedProgramsValid(t *testing.T) {
	shared, err := CompileCached(map[string]string{
		"main": `$x = 19; echo "shared:" . ($x * 3);`,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := runCachedProg(t, shared)
	if before != "shared:57" {
		t.Fatalf("unexpected output %q", before)
	}

	// A patch sweep: more distinct sources than the cache holds.
	ev0 := CacheEvictions()
	for i := 0; i < progCacheCap+16; i++ {
		if _, err := CompileCached(map[string]string{
			"main": fmt.Sprintf(`echo "variant %d";`, i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if ev1 := CacheEvictions(); ev1 <= ev0 {
		t.Fatalf("flooding %d programs past cap %d evicted nothing (counter %d -> %d)",
			progCacheCap+16, progCacheCap, ev0, ev1)
	}

	// The held pointer — including its lazily-lowered engine forms —
	// still executes, and a recompile of the same bytes agrees with it.
	if after := runCachedProg(t, shared); after != before {
		t.Fatalf("evicted program changed behavior: %q -> %q", before, after)
	}
	fresh, err := CompileCached(map[string]string{
		"main": `$x = 19; echo "shared:" . ($x * 3);`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := runCachedProg(t, fresh); out != before {
		t.Fatalf("recompiled program output %q, held program %q", out, before)
	}
}
