package lang

import (
	"errors"
	"strings"
	"testing"
)

// Tests for first-class fault results: partial Result alongside the
// RuntimeError, fault-folded digests, and the per-lane error-group
// merge rule in ModeSIMD.

func compileFault(t *testing.T, scripts map[string]string) *Program {
	t.Helper()
	prog, err := Compile(scripts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func recordRun(t *testing.T, prog *Program, script string, get map[string]string) (*Result, error) {
	t.Helper()
	return Run(prog, Config{
		Mode:   ModeRecord,
		Script: script,
		RIDs:   []string{"r1"},
		Inputs: []RequestInput{{Get: get}},
		Bridge: NopBridge{},
	})
}

func TestRecordFaultReturnsResult(t *testing.T) {
	prog := compileFault(t, map[string]string{
		"boom": `echo "pre"; nosuchfn();`,
		"ok":   `echo "pre";`,
	})
	res, err := recordRun(t, prog, "boom", nil)
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if res == nil {
		t.Fatal("fault must still produce a Result")
	}
	if res.Digest == 0 {
		t.Fatal("fault result must carry a digest")
	}
	okRes, err := recordRun(t, prog, "ok", nil)
	if err != nil {
		t.Fatal(err)
	}
	if okRes.Digest == res.Digest {
		t.Fatal("a faulted execution must not share a digest with a completed one")
	}
}

func TestFaultDigestSeparatesSites(t *testing.T) {
	// Faults at different sites — or with different messages — must land
	// in different control-flow groups.
	prog := compileFault(t, map[string]string{
		"a": `nosuchfn();`,
		"b": `$x = 1;
$y = 2;
alsonotafn();`,
	})
	ra, erra := recordRun(t, prog, "a", nil)
	rb, errb := recordRun(t, prog, "b", nil)
	if erra == nil || errb == nil {
		t.Fatal("both scripts must fault")
	}
	if ra.Digest == rb.Digest {
		t.Fatal("different fault sites must have different digests")
	}
	// The same fault reproduces the same digest (determinism).
	ra2, _ := recordRun(t, prog, "a", nil)
	if ra.Digest != ra2.Digest {
		t.Fatal("fault digest must be deterministic")
	}
}

func TestUnknownScriptFaultResult(t *testing.T) {
	prog := compileFault(t, map[string]string{"ok": `echo "x";`})
	res, err := recordRun(t, prog, "nope", nil)
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if !strings.Contains(rt.Msg, "unknown script") {
		t.Fatalf("msg = %q", rt.Msg)
	}
	if res == nil || res.Digest == 0 {
		t.Fatal("unknown script must produce an auditable fault result")
	}
	if res.OpCount != 0 {
		t.Fatalf("OpCount = %d, want 0", res.OpCount)
	}
	res2, _ := recordRun(t, prog, "alsonope", nil)
	if res.Digest == res2.Digest {
		t.Fatal("different unknown script names must not share a digest")
	}
}

func TestSIMDGroupFaultSharedByAllLanes(t *testing.T) {
	// Both lanes reach the same fault: the group faults as a unit and
	// RenderFault matches what each request's server execution rendered.
	prog := compileFault(t, map[string]string{
		"boom": `$x = $_GET["x"]; nosuchfn();`,
	})
	res, err := Run(prog, Config{
		Mode:   ModeSIMD,
		Script: "boom",
		RIDs:   []string{"r1", "r2"},
		Inputs: []RequestInput{{Get: map[string]string{"x": "1"}}, {Get: map[string]string{"x": "2"}}},
		Bridge: NopBridge{},
	})
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if res == nil {
		t.Fatal("group fault must produce a Result")
	}
	_, serr := recordRun(t, prog, "boom", map[string]string{"x": "1"})
	var srt *RuntimeError
	if !errors.As(serr, &srt) {
		t.Fatal("server-mode run must fault too")
	}
	if RenderFault(rt) != RenderFault(srt) {
		t.Fatalf("group rendering %q != single-lane rendering %q", RenderFault(rt), RenderFault(srt))
	}
}

func TestSIMDPerLaneFaultIsDivergence(t *testing.T) {
	// Lane 0 divides by zero, lane 1 does not: the alleged group did not
	// share control flow, so re-execution must report divergence.
	prog := compileFault(t, map[string]string{
		"div": `$d = $_GET["d"]; echo 10 / intval($d);`,
	})
	_, err := Run(prog, Config{
		Mode:   ModeSIMD,
		Script: "div",
		RIDs:   []string{"r1", "r2"},
		Inputs: []RequestInput{{Get: map[string]string{"d": "0"}}, {Get: map[string]string{"d": "2"}}},
		Bridge: NopBridge{},
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
	// Symmetric: the faulting lane last.
	_, err = Run(prog, Config{
		Mode:   ModeSIMD,
		Script: "div",
		RIDs:   []string{"r1", "r2"},
		Inputs: []RequestInput{{Get: map[string]string{"d": "2"}}, {Get: map[string]string{"d": "0"}}},
		Bridge: NopBridge{},
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDAllLanesSameFaultPropagates(t *testing.T) {
	// Every lane faults identically inside per-lane execution (both
	// divide by zero): that is a shared group fault, not divergence.
	prog := compileFault(t, map[string]string{
		"div": `$d = $_GET["d"]; $tag = $_GET["tag"]; echo $tag; echo 10 / intval($d);`,
	})
	res, err := Run(prog, Config{
		Mode:   ModeSIMD,
		Script: "div",
		RIDs:   []string{"r1", "r2"},
		Inputs: []RequestInput{
			{Get: map[string]string{"d": "0", "tag": "a"}},
			{Get: map[string]string{"d": "0", "tag": "b"}},
		},
		Bridge: NopBridge{},
	})
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want shared RuntimeError, got %v", err)
	}
	if res == nil {
		t.Fatal("shared group fault must produce a Result")
	}
	if !strings.Contains(rt.Msg, "division by zero") {
		t.Fatalf("msg = %q", rt.Msg)
	}
}

func TestSingleLaneFallbackBecomesFault(t *testing.T) {
	// A FallbackError in a single-lane execution (string offset
	// assignment is deterministic and multivalue-free) converts into an
	// auditable runtime fault with a digest, not an unrecordable error.
	prog := compileFault(t, map[string]string{
		"strset": `$s = "ab"; $s[0] = "x"; echo $s;`,
	})
	res, err := recordRun(t, prog, "strset", nil)
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want converted RuntimeError, got %v", err)
	}
	if !strings.Contains(rt.Msg, "unsupported construct") {
		t.Fatalf("msg = %q", rt.Msg)
	}
	if res == nil || res.Digest == 0 {
		t.Fatal("single-lane fallback must produce an auditable fault result")
	}
	// Multi-lane executions keep FallbackError semantics (the verifier
	// splits the group and replays lanes individually).
	_, err = Run(prog, Config{
		Mode:   ModeSIMD,
		Script: "strset",
		RIDs:   []string{"r1", "r2"},
		Inputs: []RequestInput{{}, {}},
		Bridge: NopBridge{},
	})
	var fb *FallbackError
	if !errors.As(err, &fb) {
		t.Fatalf("multi-lane run must keep FallbackError, got %v", err)
	}
}

func TestRenderFaultIncludesSite(t *testing.T) {
	// The canonical rendering carries the fault site, so the same
	// message at two different lines yields two different bodies — a
	// relocated error response cannot match honest re-execution.
	prog := compileFault(t, map[string]string{
		"a": `echo 1 / 0;`,
		"b": `$x = 1;
echo 1 / 0;`,
	})
	_, erra := recordRun(t, prog, "a", nil)
	_, errb := recordRun(t, prog, "b", nil)
	if erra == nil || errb == nil {
		t.Fatal("both scripts must fault")
	}
	ra, rb := RenderFault(erra), RenderFault(errb)
	if ra == rb {
		t.Fatalf("same message at different sites rendered identically: %q", ra)
	}
	if !strings.Contains(ra, "line 1") || !strings.Contains(rb, "line 2") {
		t.Fatalf("renderings must name their sites: %q, %q", ra, rb)
	}
}

func TestFaultOpCountExcludesFaultedCall(t *testing.T) {
	// A state-op call that faults on its arguments consumes no opnum:
	// the server records no log entry for it, so M must not count it.
	prog := compileFault(t, map[string]string{
		"badcall": `session_get();`,
	})
	res, err := recordRun(t, prog, "badcall", nil)
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if res.OpCount != 0 {
		t.Fatalf("OpCount = %d, want 0 (the faulting call issued no operation)", res.OpCount)
	}
}
