package lang

import (
	"reflect"
	"testing"
)

// Regression: the bytecode lowerer decides the provided/extra argument
// split at a call site from the callee's parameter count, and map
// iteration order can lower a caller before its callee. The chain of
// helpers below gives every lowering order a caller-before-callee pair,
// so a count taken before the callee's params exist misbinds arguments.
func TestBytecodeCallLoweringOrder(t *testing.T) {
	src := `
function h3($s, $suffix = "!") { return $s . $suffix; }
function h2x($s) { return h3($s) . h3($s, "?", "extra"); }
function h1($s) { return h2x($s) . h3("tail"); }
echo h1($_GET["x"]);
`
	prog := MustCompile(map[string]string{"main": src})
	in := []RequestInput{{Get: map[string]string{"x": "v"}}}
	want := runEngine(EngineInterp, prog, ModeRecord, "main", in, 200_000)
	got := runEngine(EngineBytecode, prog, ModeRecord, "main", in, 200_000)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("diverge\ninterp:   %+v\nbytecode: %+v", want, got)
	}
	if len(want.Outputs) != 1 || want.Outputs[0] != "v!v?tail!" {
		t.Fatalf("outputs = %q", want.Outputs)
	}
}
