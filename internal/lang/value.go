// Package lang implements the application language of this OROCHI
// reproduction: a small, PHP-like, dynamically typed scripting language
// with three execution modes — plain, recording (server side, §4.3), and
// SIMD-on-demand (verifier side, §3.1/§4.3). It substitutes for PHP/HHVM
// in the paper; see DESIGN.md for the substitution argument.
package lang

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value. The concrete types are:
//
//	nil          – PHP null
//	bool         – PHP bool
//	int64        – PHP int
//	float64      – PHP float
//	string       – PHP string
//	*Array       – PHP array (ordered hash)
//	*Multi       – a multivalue (verifier-side SIMD-on-demand only)
//
// Arrays are value types, as in PHP: they are deep-copied when assigned
// between variables, passed to functions, returned, or stored inside
// other arrays. Within a single variable slot an *Array is exclusively
// owned and may be mutated in place.
type Value interface{}

// Key is an array key: either an int or a string, mirroring PHP's key
// normalization (integer-like strings become int keys).
type Key struct {
	I     int64
	S     string
	IsInt bool
}

// NormalizeKey converts a Value to an array Key using PHP's rules.
func NormalizeKey(v Value) (Key, error) {
	switch x := v.(type) {
	case nil:
		return Key{S: "", IsInt: false}, nil
	case bool:
		if x {
			return Key{I: 1, IsInt: true}, nil
		}
		return Key{I: 0, IsInt: true}, nil
	case int64:
		return Key{I: x, IsInt: true}, nil
	case float64:
		return Key{I: int64(x), IsInt: true}, nil
	case string:
		if n, ok := canonicalIntString(x); ok {
			return Key{I: n, IsInt: true}, nil
		}
		return Key{S: x, IsInt: false}, nil
	default:
		return Key{}, fmt.Errorf("illegal array key of type %s", TypeName(v))
	}
}

// canonicalIntString reports whether s is the canonical decimal form of
// an int64 (as PHP treats "10" but not "010" or "1.0" as int keys).
func canonicalIntString(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	if strconv.FormatInt(n, 10) != s {
		return 0, false
	}
	return n, true
}

func (k Key) String() string {
	if k.IsInt {
		return strconv.FormatInt(k.I, 10)
	}
	return k.S
}

// Value returns the key as a runtime Value.
func (k Key) Value() Value {
	if k.IsInt {
		return k.I
	}
	return k.S
}

// Array is a PHP-style ordered hash map.
type Array struct {
	keys    []Key
	m       map[Key]Value
	nextIdx int64
}

// NewArray returns an empty array.
func NewArray() *Array {
	return &Array{m: make(map[Key]Value)}
}

// Len reports the number of elements.
func (a *Array) Len() int { return len(a.keys) }

// Get returns the value at key k and whether it exists.
func (a *Array) Get(k Key) (Value, bool) {
	v, ok := a.m[k]
	return v, ok
}

// Set inserts or replaces the value at key k, preserving insertion order
// for existing keys.
func (a *Array) Set(k Key, v Value) {
	if _, ok := a.m[k]; !ok {
		a.keys = append(a.keys, k)
	}
	a.m[k] = v
	if k.IsInt && k.I >= a.nextIdx {
		a.nextIdx = k.I + 1
	}
}

// Append inserts v at the next integer index (PHP's $a[] = v).
func (a *Array) Append(v Value) {
	a.Set(Key{I: a.nextIdx, IsInt: true}, v)
}

// Delete removes key k if present (PHP unset).
func (a *Array) Delete(k Key) {
	if _, ok := a.m[k]; !ok {
		return
	}
	delete(a.m, k)
	for i := range a.keys {
		if a.keys[i] == k {
			a.keys = append(a.keys[:i], a.keys[i+1:]...)
			break
		}
	}
}

// Keys returns the keys in insertion order. The slice is shared; callers
// must not mutate it.
func (a *Array) Keys() []Key { return a.keys }

// Values returns the values in insertion order.
func (a *Array) Values() []Value {
	out := make([]Value, len(a.keys))
	for i, k := range a.keys {
		out[i] = a.m[k]
	}
	return out
}

// snapshot returns the keys and cell values at this instant, without
// copying the cells. The foreach implementation iterates snapshots: the
// subject may be restructured during the loop without disturbing the
// iteration, which matches PHP's iterate-over-a-copy behaviour for every
// program that does not mutate element interiors through the subject
// while iterating.
func (a *Array) snapshot() ([]Key, []Value) {
	keys := make([]Key, len(a.keys))
	copy(keys, a.keys)
	vals := make([]Value, len(a.keys))
	for i, k := range a.keys {
		vals[i] = a.m[k]
	}
	return keys, vals
}

// Clone deep-copies the array (PHP assignment semantics).
func (a *Array) Clone() *Array {
	out := &Array{
		keys:    make([]Key, len(a.keys)),
		m:       make(map[Key]Value, len(a.m)),
		nextIdx: a.nextIdx,
	}
	copy(out.keys, a.keys)
	for k, v := range a.m {
		out.m[k] = CloneValue(v)
	}
	return out
}

// SortValues re-sorts the array by value with fresh integer keys (PHP
// sort()). cmp orders two values.
func (a *Array) SortValues(cmp func(x, y Value) bool) {
	vals := a.Values()
	sort.SliceStable(vals, func(i, j int) bool { return cmp(vals[i], vals[j]) })
	a.keys = a.keys[:0]
	a.m = make(map[Key]Value, len(vals))
	a.nextIdx = 0
	for _, v := range vals {
		a.Append(v)
	}
}

// SortKeys re-orders the array's keys in place (PHP ksort()).
func (a *Array) SortKeys() {
	sort.SliceStable(a.keys, func(i, j int) bool { return keyLess(a.keys[i], a.keys[j]) })
}

func keyLess(x, y Key) bool {
	if x.IsInt && y.IsInt {
		return x.I < y.I
	}
	if !x.IsInt && !y.IsInt {
		return x.S < y.S
	}
	return x.IsInt // ints sort before strings
}

// CloneValue deep-copies v. Scalars are immutable and returned as-is.
func CloneValue(v Value) Value {
	switch x := v.(type) {
	case *Array:
		return x.Clone()
	case *Multi:
		out := make([]Value, len(x.V))
		for i, lv := range x.V {
			out[i] = CloneValue(lv)
		}
		return &Multi{V: out}
	default:
		return v
	}
}

// TypeName returns the PHP-style type name of v.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "string"
	case *Array:
		return "array"
	case *Multi:
		return "multi"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// ToBool applies PHP truthiness.
func ToBool(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != "" && x != "0"
	case *Array:
		return x.Len() > 0
	default:
		return true
	}
}

// ToInt coerces v to an integer, PHP-style.
func ToInt(v Value) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case bool:
		if x {
			return 1
		}
		return 0
	case int64:
		return x
	case float64:
		return int64(x)
	case string:
		return parseNumericPrefixInt(x)
	case *Array:
		if x.Len() > 0 {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// ToFloat coerces v to a float, PHP-style.
func ToFloat(v Value) float64 {
	switch x := v.(type) {
	case nil:
		return 0
	case bool:
		if x {
			return 1
		}
		return 0
	case int64:
		return float64(x)
	case float64:
		return x
	case string:
		f, _ := parseNumericPrefixFloat(x)
		return f
	default:
		return 0
	}
}

// ToString coerces v to a string, PHP-style. Floats print with %g to
// match PHP's default precision behaviour closely enough for rendering.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case bool:
		if x {
			return "1"
		}
		return ""
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', -1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *Array:
		return "Array"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// IsNumericString reports whether s is entirely a numeric literal.
func IsNumericString(s string) bool {
	t := strings.TrimSpace(s)
	if t == "" {
		return false
	}
	if _, err := strconv.ParseFloat(t, 64); err == nil {
		return true
	}
	return false
}

func parseNumericPrefixInt(s string) int64 {
	f, _ := parseNumericPrefixFloat(s)
	return int64(f)
}

// parseNumericPrefixFloat parses the longest numeric prefix of s (PHP's
// loose string-to-number conversion). It returns the parsed number and
// whether any numeric prefix exists.
func parseNumericPrefixFloat(s string) (float64, bool) {
	s = strings.TrimLeft(s, " \t\n\r")
	const maxScan = 64 // numeric literals longer than this do not occur
	limit := len(s)
	if limit > maxScan {
		limit = maxScan
	}
	var best float64
	found := false
	for i := 1; i <= limit; i++ {
		if f, err := strconv.ParseFloat(s[:i], 64); err == nil {
			best = f
			found = true
		}
	}
	return best, found
}

// Equal reports deep equality between two values with strict typing
// (=== semantics, used for multivalue collapse and op-content checks).
// Int and float compare unequal even when numerically equal, except that
// comparing across lanes of arithmetic never produces mixed types for
// equal inputs.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case int64:
		y, ok := b.(int64)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Array:
		y, ok := b.(*Array)
		if !ok {
			return false
		}
		if x == y {
			// Pointer equality: the same array value. This fast path is
			// what makes multivalue collapse O(1) when all lanes
			// received the same deduplicated result (e.g. from the
			// read-query cache).
			return true
		}
		if x.Len() != y.Len() {
			return false
		}
		for i, k := range x.keys {
			if y.keys[i] != k {
				return false
			}
			if !Equal(x.m[k], y.m[k]) {
				return false
			}
		}
		return true
	case *Multi:
		y, ok := b.(*Multi)
		if !ok || len(x.V) != len(y.V) {
			return false
		}
		for i := range x.V {
			if !Equal(x.V[i], y.V[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// LooseEqual implements PHP's == comparison (numeric strings compare
// numerically, null == false, etc.), restricted to the sane subset our
// applications rely on.
func LooseEqual(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		switch y := b.(type) {
		case nil:
			return true
		case bool:
			return !y
		case string:
			return y == ""
		case int64:
			return y == 0
		case float64:
			return y == 0
		case *Array:
			return y.Len() == 0
		}
		return false
	case bool:
		return x == ToBool(b)
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		case string:
			if IsNumericString(y) {
				return float64(x) == ToFloat(y)
			}
			return false
		case bool:
			return ToBool(a) == y
		case nil:
			return x == 0
		}
		return false
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		case string:
			if IsNumericString(y) {
				return x == ToFloat(y)
			}
			return false
		case bool:
			return ToBool(a) == y
		case nil:
			return x == 0
		}
		return false
	case string:
		switch y := b.(type) {
		case string:
			if IsNumericString(x) && IsNumericString(y) {
				return ToFloat(x) == ToFloat(y)
			}
			return x == y
		case int64, float64:
			return LooseEqual(b, a)
		case bool:
			return ToBool(a) == y
		case nil:
			return x == ""
		}
		return false
	case *Array:
		y, ok := b.(*Array)
		if !ok {
			if b == nil {
				return x.Len() == 0
			}
			return false
		}
		if x.Len() != y.Len() {
			return false
		}
		for _, k := range x.keys {
			bv, ok := y.m[k]
			if !ok || !LooseEqual(x.m[k], bv) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders a and b for < <= > >= comparisons, PHP-style: numbers
// (and numeric strings) compare numerically, otherwise strings compare
// lexicographically. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	an, aIsNum := asNumber(a)
	bn, bIsNum := asNumber(b)
	if aIsNum && bIsNum {
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	}
	as, bs := ToString(a), ToString(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func asNumber(v Value) (float64, bool) {
	switch x := v.(type) {
	case nil:
		return 0, true
	case bool:
		return ToFloat(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case string:
		if IsNumericString(x) {
			return ToFloat(x), true
		}
		return 0, false
	default:
		return 0, false
	}
}
