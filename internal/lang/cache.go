package lang

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// The program cache is content-keyed: sha256 over the (name, source)
// pairs of the app. The server and the verifier of the same epoch —
// and every audit of every epoch of the same app — therefore share one
// *Program, which also shares the lazily-lowered compiled form
// (Program.compiled), so Phase-3 never recompiles what serving already
// compiled.

var (
	progCache   sync.Map // [32]byte → *Program
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// CompileCached is Compile behind a process-wide content-keyed cache.
// Identical sources (same script names, same bytes) return the same
// *Program. Compile errors are not cached.
func CompileCached(files map[string]string) (*Program, error) {
	key := sourceKey(files)
	if p, ok := progCache.Load(key); ok {
		cacheHits.Add(1)
		return p.(*Program), nil
	}
	prog, err := Compile(files)
	if err != nil {
		return nil, err
	}
	cacheMisses.Add(1)
	actual, _ := progCache.LoadOrStore(key, prog)
	return actual.(*Program), nil
}

// MustCompileCached is CompileCached, panicking on error (for tests and
// embedded apps whose source is known-good).
func MustCompileCached(files map[string]string) *Program {
	p, err := CompileCached(files)
	if err != nil {
		panic(err)
	}
	return p
}

// CacheStats returns the cumulative program-cache hit/miss counters,
// surfaced at /-/metrics as orochi_lang_cache_{hits,misses}.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

func sourceKey(files map[string]string) [32]byte {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		// Length-prefixed so (name, source) boundaries cannot alias.
		fmt.Fprintf(h, "%d:", len(n))
		io.WriteString(h, n)
		fmt.Fprintf(h, "%d:", len(files[n]))
		io.WriteString(h, files[n])
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}
