package lang

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// The program cache is content-keyed: sha256 over the (name, source)
// pairs of the app. The server and the verifier of the same epoch —
// and every audit of every epoch of the same app — therefore share one
// *Program, which also shares the lazily-lowered compiled and bytecode
// forms (Program.compiled / Program.bytecode), so Phase-3 never
// recompiles what serving already compiled.
//
// The cache is LRU-bounded: a long-lived serve that audits many patched
// sources (PatchAudit) would otherwise accumulate one program per
// distinct source forever. Eviction only drops the cache's reference —
// a *Program is immutable after compilation and every holder keeps its
// own pointer, so a program in use by a server or an in-flight audit
// is unaffected; only a future CompileCached of the same bytes pays a
// recompile.

// progCacheCap bounds the cached program count. 128 programs is far
// above any live serving set (one per app version in play) while
// keeping the worst case — a patch sweep over thousands of variants —
// at a bounded footprint.
const progCacheCap = 128

var (
	progCache = struct {
		mu      sync.Mutex
		entries map[[32]byte]*list.Element
		order   *list.List // front = most recently used
	}{entries: make(map[[32]byte]*list.Element), order: list.New()}
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheEvictions atomic.Uint64
)

// progEntry is one cache slot: the content key and its program.
type progEntry struct {
	key  [32]byte
	prog *Program
}

// CompileCached is Compile behind a process-wide content-keyed LRU
// cache. Identical sources (same script names, same bytes) return the
// same *Program while the entry is resident. Compile errors are not
// cached.
func CompileCached(files map[string]string) (*Program, error) {
	key := sourceKey(files)
	progCache.mu.Lock()
	if el, ok := progCache.entries[key]; ok {
		progCache.order.MoveToFront(el)
		progCache.mu.Unlock()
		cacheHits.Add(1)
		return el.Value.(*progEntry).prog, nil
	}
	progCache.mu.Unlock()

	// Compile outside the lock: a slow compile must not stall hits for
	// unrelated programs. Two goroutines racing on the same new key both
	// compile; the store below keeps one result for both.
	prog, err := Compile(files)
	if err != nil {
		return nil, err
	}
	cacheMisses.Add(1)

	progCache.mu.Lock()
	defer progCache.mu.Unlock()
	if el, ok := progCache.entries[key]; ok {
		// Lost the race: adopt the winner so concurrent callers share one
		// *Program, as before the bound.
		progCache.order.MoveToFront(el)
		return el.Value.(*progEntry).prog, nil
	}
	progCache.entries[key] = progCache.order.PushFront(&progEntry{key: key, prog: prog})
	for progCache.order.Len() > progCacheCap {
		oldest := progCache.order.Back()
		progCache.order.Remove(oldest)
		delete(progCache.entries, oldest.Value.(*progEntry).key)
		cacheEvictions.Add(1)
	}
	return prog, nil
}

// MustCompileCached is CompileCached, panicking on error (for tests and
// embedded apps whose source is known-good).
func MustCompileCached(files map[string]string) *Program {
	p, err := CompileCached(files)
	if err != nil {
		panic(err)
	}
	return p
}

// CacheStats returns the cumulative program-cache hit/miss counters,
// surfaced at /-/metrics as orochi_lang_cache_{hits,misses}.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// CacheEvictions returns the cumulative count of programs dropped by
// the LRU bound, surfaced at /-/metrics as
// orochi_lang_cache_evictions.
func CacheEvictions() uint64 {
	return cacheEvictions.Load()
}

func sourceKey(files map[string]string) [32]byte {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		// Length-prefixed so (name, source) boundaries cannot alias.
		fmt.Fprintf(h, "%d:", len(n))
		io.WriteString(h, n)
		fmt.Fprintf(h, "%d:", len(files[n]))
		io.WriteString(h, files[n])
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}
