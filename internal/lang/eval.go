package lang

import (
	"fmt"
	"math"
	"strings"
)

const maxCallDepth = 200

func (ex *exec) evalExpr(sc *scope, e Expr) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Var:
		return sc.get(x.Name), nil
	case *Index:
		if x.Idx == nil {
			return nil, &RuntimeError{Msg: "cannot read append-index $a[]", Line: x.Line}
		}
		target, err := ex.evalExpr(sc, x.Target)
		if err != nil {
			return nil, err
		}
		idx, err := ex.evalExpr(sc, x.Idx)
		if err != nil {
			return nil, err
		}
		ex.countInstr(IsMulti(target) || IsMulti(idx))
		return ex.indexRead(target, idx, x.Line)
	case *Binary:
		l, err := ex.evalExpr(sc, x.L)
		if err != nil {
			return nil, err
		}
		r, err := ex.evalExpr(sc, x.R)
		if err != nil {
			return nil, err
		}
		return ex.binaryOp(x.Op, l, r, x.Line)
	case *Logical:
		return ex.evalLogical(sc, x)
	case *Unary:
		v, err := ex.evalExpr(sc, x.E)
		if err != nil {
			return nil, err
		}
		return ex.unaryOp(x.Op, v, x.Line)
	case *Ternary:
		cond, err := ex.evalExpr(sc, x.Cond)
		if err != nil {
			return nil, err
		}
		taken, err := ex.condDirection(cond)
		if err != nil {
			return nil, err
		}
		if taken {
			ex.branch(x.Site, 1)
			return ex.evalExpr(sc, x.Then)
		}
		ex.branch(x.Site, 0)
		return ex.evalExpr(sc, x.Else)
	case *Call:
		return ex.evalCall(sc, x)
	case *ArrayLit:
		arr := NewArray()
		for _, ent := range x.Entries {
			v, err := ex.evalExpr(sc, ent.Val)
			if err != nil {
				return nil, err
			}
			if ent.Key == nil {
				arr.Append(CloneValue(v))
				continue
			}
			kv, err := ex.evalExpr(sc, ent.Key)
			if err != nil {
				return nil, err
			}
			if IsMulti(kv) {
				return nil, &FallbackError{Reason: "multivalue key in array literal"}
			}
			k, err := NormalizeKey(kv)
			if err != nil {
				return nil, &RuntimeError{Msg: err.Error(), Line: x.Line}
			}
			arr.Set(k, CloneValue(v))
		}
		return arr, nil
	case *IssetExpr:
		res := true
		for _, lv := range x.Targets {
			v, err := ex.evalIsset(sc, lv)
			if err != nil {
				return nil, err
			}
			one, err := ex.condDirection(v)
			if err != nil {
				return nil, err
			}
			if !one {
				res = false
				break
			}
		}
		return res, nil
	case *EmptyExpr:
		v, err := ex.evalIsset(sc, x.Target)
		if err != nil {
			return nil, err
		}
		set, err := ex.condDirection(v)
		if err != nil {
			return nil, err
		}
		if !set {
			return true, nil
		}
		cur, err := ex.readLValue(sc, x.Target)
		if err != nil {
			return nil, err
		}
		truthy, err := ex.condDirection(cur)
		if err != nil {
			return nil, err
		}
		return !truthy, nil
	case *IncDec:
		return ex.evalIncDec(sc, x)
	default:
		return nil, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
	}
}

// evalIsset resolves an lvalue path to a (possibly multivalue) bool:
// does the target exist and is it non-null?
func (ex *exec) evalIsset(sc *scope, lv *LValue) (Value, error) {
	if !sc.exists(lv.Name) {
		return false, nil
	}
	cur := sc.get(lv.Name)
	for _, step := range lv.Steps {
		if step.Idx == nil {
			return nil, &RuntimeError{Msg: "isset on append-index", Line: lv.Line}
		}
		idx, err := ex.evalExpr(sc, step.Idx)
		if err != nil {
			return nil, err
		}
		v, err := ex.indexReadForIsset(cur, idx)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	if m, ok := cur.(*Multi); ok {
		vals := make([]Value, len(m.V))
		for i, lvv := range m.V {
			vals[i] = lvv != nil
		}
		return NewMulti(vals), nil
	}
	return cur != nil, nil
}

// indexReadForIsset is indexRead that never errors on scalar targets
// (isset just reports false).
func (ex *exec) indexReadForIsset(container, idx Value) (Value, error) {
	switch c := container.(type) {
	case *Multi:
		vals := make([]Value, len(c.V))
		for i := range c.V {
			v, err := ex.indexReadForIsset(c.V[i], Lane(idx, i))
			if err != nil {
				return nil, err
			}
			vals[i] = MaterializeLane(v, i)
		}
		return NewMulti(vals), nil
	case *Array:
		if IsMulti(idx) {
			vals := make([]Value, ex.lanes)
			for i := 0; i < ex.lanes; i++ {
				v, err := ex.indexReadForIsset(c, Lane(idx, i))
				if err != nil {
					return nil, err
				}
				vals[i] = MaterializeLane(v, i)
			}
			return NewMulti(vals), nil
		}
		k, err := NormalizeKey(idx)
		if err != nil {
			return nil, nil //nolint:nilerr // illegal key: treat as unset
		}
		v, ok := c.Get(k)
		if !ok {
			return nil, nil
		}
		return v, nil
	case string:
		i := ToInt(idx)
		if i >= 0 && i < int64(len(c)) {
			return string(c[i]), nil
		}
		return nil, nil
	default:
		return nil, nil
	}
}

// readLValue reads the current value of an lvalue path (nil if unset).
func (ex *exec) readLValue(sc *scope, lv *LValue) (Value, error) {
	cur := sc.get(lv.Name)
	for _, step := range lv.Steps {
		if step.Idx == nil {
			return nil, &RuntimeError{Msg: "cannot read append-index", Line: lv.Line}
		}
		idx, err := ex.evalExpr(sc, step.Idx)
		if err != nil {
			return nil, err
		}
		v, err := ex.indexRead(cur, idx, lv.Line)
		if err != nil {
			return nil, err
		}
		cur = v
	}
	return cur, nil
}

// indexRead implements reading container[idx] with full multivalue
// semantics (§4.3 Containers, "gets").
func (ex *exec) indexRead(container, idx Value, line int) (Value, error) {
	switch c := container.(type) {
	case *Multi:
		vals := make([]Value, len(c.V))
		for i := range c.V {
			v, err := ex.indexRead(c.V[i], Lane(idx, i), line)
			if err != nil {
				return nil, err
			}
			vals[i] = MaterializeLane(v, i)
		}
		return NewMulti(vals), nil
	case *Array:
		if IsMulti(idx) {
			vals := make([]Value, ex.lanes)
			for i := 0; i < ex.lanes; i++ {
				v, err := ex.indexRead(c, Lane(idx, i), line)
				if err != nil {
					return nil, err
				}
				vals[i] = MaterializeLane(v, i)
			}
			return NewMulti(vals), nil
		}
		k, err := NormalizeKey(idx)
		if err != nil {
			return nil, &RuntimeError{Msg: err.Error(), Line: line}
		}
		v, ok := c.Get(k)
		if !ok {
			return nil, nil // PHP: undefined index yields null
		}
		return v, nil
	case string:
		if IsMulti(idx) {
			vals := make([]Value, ex.lanes)
			for i := 0; i < ex.lanes; i++ {
				j := ToInt(Lane(idx, i))
				if j >= 0 && j < int64(len(c)) {
					vals[i] = string(c[j])
				} else {
					vals[i] = ""
				}
			}
			return NewMulti(vals), nil
		}
		i := ToInt(idx)
		if i >= 0 && i < int64(len(c)) {
			return string(c[i]), nil
		}
		return "", nil
	case nil:
		return nil, nil
	default:
		return nil, &RuntimeError{Msg: "cannot index " + TypeName(container), Line: line}
	}
}

func (ex *exec) evalLogical(sc *scope, x *Logical) (Value, error) {
	l, err := ex.evalExpr(sc, x.L)
	if err != nil {
		return nil, err
	}
	lb, err := ex.condDirection(l)
	if err != nil {
		return nil, err
	}
	if x.Op == "&&" {
		if !lb {
			ex.branch(x.Site, 0)
			return false, nil
		}
		ex.branch(x.Site, 1)
	} else { // "||"
		if lb {
			ex.branch(x.Site, 1)
			return true, nil
		}
		ex.branch(x.Site, 0)
	}
	r, err := ex.evalExpr(sc, x.R)
	if err != nil {
		return nil, err
	}
	return logicalResult(r), nil
}

// logicalResult coerces the decisive operand of a short-circuit operator
// to bool(s). Shared by both engines.
func logicalResult(r Value) Value {
	if m, ok := r.(*Multi); ok {
		vals := make([]Value, len(m.V))
		for i, v := range m.V {
			vals[i] = ToBool(v)
		}
		return NewMulti(vals)
	}
	return ToBool(r)
}

// binaryOp applies a non-short-circuit binary operator with SIMD
// semantics: multivalue operands execute componentwise (with scalar
// expansion), univalue operands execute once.
func (ex *exec) binaryOp(op string, l, r Value, line int) (Value, error) {
	lm, lIsM := l.(*Multi)
	rm, rIsM := r.(*Multi)
	if !lIsM && !rIsM {
		ex.countInstr(false)
		return scalarBinary(op, l, r, line)
	}
	ex.countInstr(true)
	lanes := ex.lanes
	if lIsM && len(lm.V) != lanes || rIsM && len(rm.V) != lanes {
		return nil, &RuntimeError{Msg: "multivalue cardinality mismatch", Line: line}
	}
	// Per-lane faults (division by zero, bad operand types in one lane)
	// merge under the error-group rule: all lanes faulting identically
	// is a shared group fault, anything mixed is divergence.
	return ex.forLanes(func(i int) (Value, error) {
		return scalarBinary(op, Lane(l, i), Lane(r, i), line)
	})
}

func scalarBinary(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "+", "-", "*":
		return arith(op, l, r, line)
	case "/":
		rf := ToFloat(r)
		if rf == 0 {
			return nil, &RuntimeError{Msg: "division by zero", Line: line}
		}
		lf := ToFloat(l)
		q := lf / rf
		// PHP yields an int when both operands are ints and divide evenly.
		li, lok := l.(int64)
		ri, rok := r.(int64)
		if lok && rok && ri != 0 && li%ri == 0 {
			return li / ri, nil
		}
		return q, nil
	case "%":
		ri := ToInt(r)
		if ri == 0 {
			return nil, &RuntimeError{Msg: "modulo by zero", Line: line}
		}
		return ToInt(l) % ri, nil
	case ".":
		return ToString(l) + ToString(r), nil
	case "==":
		return LooseEqual(l, r), nil
	case "!=":
		return !LooseEqual(l, r), nil
	case "===":
		return Equal(l, r), nil
	case "!==":
		return !Equal(l, r), nil
	case "<":
		return Compare(l, r) < 0, nil
	case "<=":
		return Compare(l, r) <= 0, nil
	case ">":
		return Compare(l, r) > 0, nil
	case ">=":
		return Compare(l, r) >= 0, nil
	default:
		return nil, &RuntimeError{Msg: "unknown operator " + op, Line: line}
	}
}

// arith implements + - * with PHP numeric semantics: int arithmetic
// unless either operand is a float (or a float-ish string), with int
// overflow promoting to float.
func arith(op string, l, r Value, line int) (Value, error) {
	if _, ok := l.(*Array); ok {
		if op == "+" {
			// PHP array union.
			ra, ok2 := r.(*Array)
			if !ok2 {
				return nil, &RuntimeError{Msg: "unsupported operand types", Line: line}
			}
			la := l.(*Array).Clone()
			for _, k := range ra.keys {
				if _, exists := la.Get(k); !exists {
					la.Set(k, CloneValue(ra.m[k]))
				}
			}
			return la, nil
		}
		return nil, &RuntimeError{Msg: "unsupported operand types", Line: line}
	}
	if _, ok := r.(*Array); ok {
		return nil, &RuntimeError{Msg: "unsupported operand types", Line: line}
	}
	li, lIsInt := asIntOperand(l)
	ri, rIsInt := asIntOperand(r)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			s := li + ri
			if (li > 0 && ri > 0 && s < 0) || (li < 0 && ri < 0 && s >= 0) {
				return float64(li) + float64(ri), nil
			}
			return s, nil
		case "-":
			return li - ri, nil
		case "*":
			p := li * ri
			if li != 0 && (p/li != ri) {
				return float64(li) * float64(ri), nil
			}
			return p, nil
		}
	}
	lf, rf := ToFloat(l), ToFloat(r)
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	}
	return nil, &RuntimeError{Msg: "unknown arithmetic op " + op, Line: line}
}

// asIntOperand reports whether v behaves as an int in arithmetic.
func asIntOperand(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case bool:
		return ToInt(x), true
	case nil:
		return 0, true
	case string:
		if n, ok := canonicalIntString(x); ok {
			return n, true
		}
		return 0, false
	default:
		return 0, false
	}
}

func (ex *exec) unaryOp(op string, v Value, line int) (Value, error) {
	if m, ok := v.(*Multi); ok {
		ex.countInstr(true)
		return ex.forLanes(func(i int) (Value, error) {
			return scalarUnary(op, m.V[i], line)
		})
	}
	ex.countInstr(false)
	return scalarUnary(op, v, line)
}

func scalarUnary(op string, v Value, line int) (Value, error) {
	switch op {
	case "!":
		return !ToBool(v), nil
	case "-":
		switch x := v.(type) {
		case int64:
			if x == math.MinInt64 {
				return -float64(x), nil
			}
			return -x, nil
		case float64:
			return -x, nil
		default:
			if i, ok := asIntOperand(v); ok {
				return -i, nil
			}
			return -ToFloat(v), nil
		}
	default:
		return nil, &RuntimeError{Msg: "unknown unary op " + op, Line: line}
	}
}

func (ex *exec) evalIncDec(sc *scope, x *IncDec) (Value, error) {
	old, err := ex.readLValue(sc, x.Target)
	if err != nil {
		return nil, err
	}
	delta := Value(int64(1))
	op := "+"
	if x.Op == "--" {
		op = "-"
	}
	nv, err := ex.binaryOp(op, old, delta, x.Line)
	if err != nil {
		return nil, err
	}
	if err := ex.assignTo(sc, x.Target, nv); err != nil {
		return nil, err
	}
	if x.Pre {
		return nv, nil
	}
	if old == nil {
		return int64(0), nil
	}
	return old, nil
}

func (ex *exec) execAssign(sc *scope, st *Assign) error {
	rhs, err := ex.evalExpr(sc, st.RHS)
	if err != nil {
		return err
	}
	if st.Op == "=" {
		return ex.assignTo(sc, st.Target, rhs)
	}
	old, err := ex.readLValue(sc, st.Target)
	if err != nil {
		return err
	}
	binOp := strings.TrimSuffix(st.Op, "=")
	nv, err := ex.binaryOp(binOp, old, rhs, st.Line)
	if err != nil {
		return err
	}
	return ex.assignTo(sc, st.Target, nv)
}

// assignTo stores val at the lvalue path, implementing the container
// rules of §4.3: multivalue keys expand univalue containers; multivalue
// containers are written per-lane; univalue key + multivalue val stores
// the multivalue into the cell.
func (ex *exec) assignTo(sc *scope, lv *LValue, val Value) error {
	if len(lv.Steps) == 0 {
		sc.set(lv.Name, CloneValue(val))
		ex.countInstr(DeepContainsMulti(val))
		return nil
	}
	// Evaluate the index expressions once, in order.
	idxs := make([]Value, len(lv.Steps))
	for i, step := range lv.Steps {
		if step.Idx == nil {
			if i != len(lv.Steps)-1 {
				return &RuntimeError{Msg: "append-index must be final", Line: lv.Line}
			}
			idxs[i] = appendMarker{}
			continue
		}
		v, err := ex.evalExpr(sc, step.Idx)
		if err != nil {
			return err
		}
		idxs[i] = v
	}
	root := sc.get(lv.Name)
	multi := DeepContainsMulti(root) || DeepContainsMulti(val)
	for _, iv := range idxs {
		if _, isApp := iv.(appendMarker); !isApp && IsMulti(iv) {
			multi = true
		}
	}
	ex.countInstr(multi)
	newRoot, err := ex.setPath(root, idxs, val, lv.Line)
	if err != nil {
		return err
	}
	sc.set(lv.Name, newRoot)
	return nil
}

// appendMarker marks the $a[] append step in an index path.
type appendMarker struct{}

// setPath writes val at the index path idxs under cur and returns the
// (possibly replaced) container.
func (ex *exec) setPath(cur Value, idxs []Value, val Value, line int) (Value, error) {
	if len(idxs) == 0 {
		return CloneValue(val), nil
	}
	idx := idxs[0]
	switch c := cur.(type) {
	case nil:
		// Autovivification.
		return ex.setPath(NewArray(), idxs, val, line)
	case *Array:
		if _, isApp := idx.(appendMarker); isApp {
			c.Append(CloneValue(val))
			return c, nil
		}
		if IsMulti(idx) {
			// Univalue container + multivalue key: expand the container
			// into a multivalue of per-lane arrays (§4.3). Materialize
			// first so multivalue cells inside c resolve per lane — a
			// Multi must never nest inside another Multi's lanes.
			lanes := ex.lanes
			perLane := make([]Value, lanes)
			for i := 0; i < lanes; i++ {
				laneCur := CloneValue(MaterializeLane(c, i))
				nv, err := ex.setPath(laneCur, laneIdxPath(idxs, i), MaterializeLane(val, i), line)
				if err != nil {
					return nil, err
				}
				perLane[i] = nv
			}
			return NewMulti(perLane), nil
		}
		k, err := NormalizeKey(idx)
		if err != nil {
			return nil, &RuntimeError{Msg: err.Error(), Line: line}
		}
		child, _ := c.Get(k)
		nv, err := ex.setPath(child, idxs[1:], val, line)
		if err != nil {
			return nil, err
		}
		c.Set(k, nv)
		return c, nil
	case *Multi:
		// The container itself is a multivalue: write per lane.
		for i := range c.V {
			nv, err := ex.setPath(c.V[i], laneIdxPath(idxs, i), MaterializeLane(val, i), line)
			if err != nil {
				return nil, err
			}
			c.V[i] = nv
		}
		return Collapse(c), nil
	case string:
		return nil, &FallbackError{Reason: "string offset assignment"}
	default:
		return nil, &RuntimeError{Msg: "cannot index " + TypeName(cur), Line: line}
	}
}

// laneIdxPath projects an index path onto lane i.
func laneIdxPath(idxs []Value, i int) []Value {
	out := make([]Value, len(idxs))
	for j, v := range idxs {
		if _, isApp := v.(appendMarker); isApp {
			out[j] = v
			continue
		}
		out[j] = Lane(v, i)
	}
	return out
}

func (ex *exec) execUnset(sc *scope, lv *LValue) error {
	if len(lv.Steps) == 0 {
		sc.unset(lv.Name)
		return nil
	}
	// Navigate to the parent container, then delete the final key.
	parentPath := &LValue{Name: lv.Name, Steps: lv.Steps[:len(lv.Steps)-1], Line: lv.Line}
	parent, err := ex.readLValue(sc, parentPath)
	if err != nil {
		return err
	}
	last := lv.Steps[len(lv.Steps)-1]
	if last.Idx == nil {
		return &RuntimeError{Msg: "unset on append-index", Line: lv.Line}
	}
	idx, err := ex.evalExpr(sc, last.Idx)
	if err != nil {
		return err
	}
	return ex.unsetIn(parent, idx, lv.Line)
}

// unsetIn deletes parent[idx]. Shared by both engines so the multivalue
// and non-array fault rules cannot drift.
func (ex *exec) unsetIn(parent, idx Value, line int) error {
	switch c := parent.(type) {
	case *Array:
		if IsMulti(idx) {
			return &FallbackError{Reason: "unset with multivalue key"}
		}
		k, err := NormalizeKey(idx)
		if err != nil {
			return &RuntimeError{Msg: err.Error(), Line: line}
		}
		c.Delete(k)
		return nil
	case *Multi:
		for i := range c.V {
			a, ok := c.V[i].(*Array)
			if !ok {
				return &RuntimeError{Msg: "unset on non-array", Line: line}
			}
			k, err := NormalizeKey(Lane(idx, i))
			if err != nil {
				return &RuntimeError{Msg: err.Error(), Line: line}
			}
			a.Delete(k)
		}
		return nil
	case nil:
		return nil
	default:
		return &RuntimeError{Msg: "unset on non-array", Line: line}
	}
}
