package lang

import (
	"errors"
	"fmt"
	"testing"
)

// runSIMD executes src once for a group of request inputs using
// SIMD-on-demand, returning the per-lane outputs.
func runSIMD(t *testing.T, src string, inputs []RequestInput) ([]string, *Result) {
	t.Helper()
	prog, err := Compile(map[string]string{"main": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rids := make([]string, len(inputs))
	for i := range rids {
		rids[i] = fmt.Sprintf("r%d", i)
	}
	res, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: rids, Inputs: inputs,
		CollectStats: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Outputs(), res
}

// runScalarEach executes src once per input in plain mode, the oracle for
// SIMD equivalence tests.
func runScalarEach(t *testing.T, src string, inputs []RequestInput) []string {
	t.Helper()
	prog, err := Compile(map[string]string{"main": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out := make([]string, len(inputs))
	for i, in := range inputs {
		res, err := Run(prog, Config{
			Mode: ModePlain, Script: "main", RIDs: []string{"r"}, Inputs: []RequestInput{in},
		})
		if err != nil {
			t.Fatalf("run lane %d: %v", i, err)
		}
		out[i] = res.Output(0)
	}
	return out
}

// checkSIMDEquiv asserts that grouped SIMD execution produces exactly the
// same per-lane outputs as executing each request separately — the core
// correctness property of acc-PHP (§4.3, and difference (ii) in the
// proof of Theorem 10).
func checkSIMDEquiv(t *testing.T, src string, inputs []RequestInput) *Result {
	t.Helper()
	want := runScalarEach(t, src, inputs)
	got, res := runSIMD(t, src, inputs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: SIMD %q != scalar %q", i, got[i], want[i])
		}
	}
	return res
}

func gets(kvs ...string) []RequestInput {
	out := make([]RequestInput, 0, len(kvs))
	for _, v := range kvs {
		out = append(out, RequestInput{Get: map[string]string{"x": v}})
	}
	return out
}

func TestSIMDPaperExample(t *testing.T) {
	// The exact example from §4.3: lines 1-2 are multivalent/collapsing,
	// lines 3-4 must execute univalently after the max() collapse.
	src := `
$sum = $_GET["x"] + $_GET["y"];
$larger = max($sum, $_GET["z"]);
$odd = ($larger % 2) ? "True" : "False";
echo $odd;`
	inputs := []RequestInput{
		{Get: map[string]string{"x": "1", "y": "3", "z": "10"}},
		{Get: map[string]string{"x": "2", "y": "4", "z": "10"}},
	}
	got, res := runSIMD(t, src, inputs)
	if got[0] != "False" || got[1] != "False" {
		t.Fatalf("outputs %v", got)
	}
	// After the collapse at max(), the % and ternary and echo run
	// univalently; so some instructions must be univalent.
	if res.InstrUni == 0 {
		t.Fatal("expected univalent instructions after collapse")
	}
	if res.InstrMulti == 0 {
		t.Fatal("expected multivalent instructions before collapse")
	}
}

func TestSIMDCollapse(t *testing.T) {
	// Different inputs, but computation collapses to equal values.
	src := `$v = intval($_GET["x"]) * 0; echo "const" . $v;`
	res := checkSIMDEquiv(t, src, gets("1", "2", "3"))
	if res.InstrUni == 0 {
		t.Fatal("collapse should produce univalent instructions")
	}
}

func TestSIMDAllIdenticalInputsStayUnivalent(t *testing.T) {
	src := `$a = $_GET["x"] . "!"; $b = strlen($a); echo $a . $b;`
	res := checkSIMDEquiv(t, src, gets("same", "same", "same"))
	if res.InstrMulti != 0 {
		t.Fatalf("identical inputs must never go multivalent, got %d multivalent", res.InstrMulti)
	}
}

func TestSIMDArithmetic(t *testing.T) {
	src := `echo intval($_GET["x"]) * 3 + 1;`
	checkSIMDEquiv(t, src, gets("1", "2", "3", "100"))
}

func TestSIMDScalarExpansion(t *testing.T) {
	src := `$c = 10; echo intval($_GET["x"]) + $c;`
	checkSIMDEquiv(t, src, gets("1", "2"))
}

func TestSIMDStringOps(t *testing.T) {
	src := `echo strtoupper($_GET["x"]) . "-" . strlen($_GET["x"]);`
	checkSIMDEquiv(t, src, gets("abc", "de", "fghij"))
}

func TestSIMDMixedIntFloat(t *testing.T) {
	// A multivalue mixing int and float lanes (the one mixture the
	// paper's acc-PHP handles natively).
	src := `$v = $_GET["x"] + 0; echo $v * 2;`
	checkSIMDEquiv(t, src, gets("3", "3.5"))
}

func TestSIMDContainerCellMulti(t *testing.T) {
	// Univalue container holding multivalue cells.
	src := `$a = []; $a["k"] = $_GET["x"]; $a["c"] = 1; echo $a["k"] . $a["c"];`
	checkSIMDEquiv(t, src, gets("p", "q"))
}

func TestSIMDMultivalueKeyExpandsContainer(t *testing.T) {
	// Univalue container + multivalue key: the container must expand
	// into per-lane arrays (§4.3 Containers).
	src := `$a = ["p" => "P", "q" => "Q"]; $a[$_GET["x"]] = "W"; echo $a["p"] . $a["q"];`
	checkSIMDEquiv(t, src, gets("p", "q"))
}

func TestSIMDMultivalueContainerSet(t *testing.T) {
	// Multivalue container: per-lane set, then collapse check.
	src := `
$a = [];
$a[$_GET["x"]] = 1;   // expands $a
$a["z"] = 2;          // per-lane write
echo count($a) . (isset($a["z"]) ? "t" : "f");`
	checkSIMDEquiv(t, src, gets("p", "q"))
}

func TestSIMDMultivalueContainerCollapses(t *testing.T) {
	// Lanes diverge then re-converge: the container should collapse back
	// to a univalue and subsequent instructions run univalently.
	src := `
$a = [];
$a[$_GET["x"]] = 1;
unset($a[$_GET["x"]]);
$a["same"] = 5;
$t = $a["same"] + 1;
echo $t;`
	res := checkSIMDEquiv(t, src, gets("p", "q"))
	if res.InstrUni == 0 {
		t.Fatal("expected univalent tail after re-convergence")
	}
}

func TestSIMDNestedContainers(t *testing.T) {
	src := `
$a = [];
$a["u"][$_GET["x"]] = "deep";
echo isset($a["u"][$_GET["x"]]) ? "t" : "f";
echo count($a["u"]);`
	checkSIMDEquiv(t, src, gets("k1", "k2"))
}

func TestSIMDForeachUnivalentArray(t *testing.T) {
	// The ternary branches on the (univalue) position, so control flow is
	// identical across lanes even though the echoed value is multivalent.
	src := `
$items = ["a", "b", "c"];
foreach ($items as $i => $v) {
  echo ($i % 2 == 0) ? "[" . $v . $_GET["x"] . "]" : $v;
}`
	checkSIMDEquiv(t, src, gets("b", "c"))
}

func TestSIMDForeachMultivalueArray(t *testing.T) {
	// The subject itself is a multivalue (same length per lane).
	src := `
$items = explode(",", $_GET["x"]);
foreach ($items as $v) { echo "<" . $v . ">"; }`
	checkSIMDEquiv(t, src, gets("a,b", "c,d"))
}

func TestSIMDBuiltinSplit(t *testing.T) {
	// Builtin with multivalue argument must split per lane and re-merge.
	src := `echo implode("|", explode(",", $_GET["x"]));`
	checkSIMDEquiv(t, src, gets("1,2,3", "x,y"))
}

func TestSIMDBuiltinDeepCopy(t *testing.T) {
	// Ref-builtin (sort) with a multivalue-bearing array must deep-copy
	// per lane: lanes must not observe each other's mutation.
	src := `
$a = [3, intval($_GET["x"]), 2];
sort($a);
echo implode(",", $a);`
	checkSIMDEquiv(t, src, gets("1", "9"))
}

func TestSIMDUserFunctions(t *testing.T) {
	src := `
function classify($n) {
  $label = "";
  if ($n % 2 == 0) { $label = "even"; } else { $label = "odd"; }
  return $label . ":" . $n;
}
echo classify(intval($_GET["x"]) * 2);` // *2 keeps parity equal across lanes
	checkSIMDEquiv(t, src, gets("3", "8"))
}

func TestSIMDGlobalsAcrossFunctions(t *testing.T) {
	src := `
$acc = "";
function addto($s) { global $acc; $acc .= $s; }
addto($_GET["x"]);
addto("!");
echo $acc;`
	checkSIMDEquiv(t, src, gets("aa", "bb"))
}

func TestSIMDDivergenceIf(t *testing.T) {
	// Lanes take different branches: must report ErrDivergence.
	src := `if ($_GET["x"] == "1") { echo "one"; } else { echo "other"; }`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("1", "2"),
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDDivergenceWhile(t *testing.T) {
	src := `$n = intval($_GET["x"]); while ($n > 0) { $n--; } echo "done";`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("2", "5"),
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDDivergenceForeachLength(t *testing.T) {
	src := `foreach (explode(",", $_GET["x"]) as $v) { echo $v; }`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("1,2", "1,2,3"),
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDDivergenceTernary(t *testing.T) {
	src := `echo intval($_GET["x"]) > 3 ? "hi" : "lo";`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("1", "9"),
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDDivergenceSwitch(t *testing.T) {
	src := `switch ($_GET["x"]) { case "a": echo 1; break; default: echo 2; }`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("a", "z"),
	})
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("want ErrDivergence, got %v", err)
	}
}

func TestSIMDNoDivergenceSameTruthiness(t *testing.T) {
	// Different values but same truthiness: NOT a divergence (both lanes
	// take the same direction, as the digest would record).
	src := `if (intval($_GET["x"]) > 0) { echo "pos" . $_GET["x"]; } else { echo "neg"; }`
	checkSIMDEquiv(t, src, gets("1", "2"))
}

func TestSIMDFallbackSignal(t *testing.T) {
	src := `__force_fallback(); echo $_GET["x"];`
	prog := MustCompile(map[string]string{"main": src})
	_, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a", "b"},
		Inputs: gets("1", "2"),
	})
	var fe *FallbackError
	if !errors.As(err, &fe) {
		t.Fatalf("want FallbackError, got %v", err)
	}
	// A single-lane group must not trigger the fallback.
	res, err := Run(prog, Config{
		Mode: ModeSIMD, Script: "main", RIDs: []string{"a"}, Inputs: gets("1"),
	})
	if err != nil {
		t.Fatalf("single lane: %v", err)
	}
	if res.Output(0) != "1" {
		t.Fatalf("single lane output %q", res.Output(0))
	}
}

func TestSIMDOutputCopyOnDiverge(t *testing.T) {
	// Shared prefix, divergent middle, shared suffix.
	src := `echo "<header>"; echo $_GET["x"]; echo "<footer>";`
	got, _ := runSIMD(t, src, gets("A", "B"))
	if got[0] != "<header>A<footer>" || got[1] != "<header>B<footer>" {
		t.Fatalf("outputs %v", got)
	}
}

func TestSIMDIssetOnSuperglobals(t *testing.T) {
	// Keys present in only some lanes; isset result differs by lane, but
	// it is only echoed (not branched on), so no divergence.
	src := `echo isset($_GET["y"]) ? "t" : "f";`
	inputs := []RequestInput{
		{Get: map[string]string{"x": "1", "y": "2"}},
		{Get: map[string]string{"x": "1", "y": "2"}},
	}
	checkSIMDEquiv(t, src, inputs)
}

func TestSIMDLargeGroupEquivalence(t *testing.T) {
	src := `
$n = intval($_GET["x"]);
$rows = "";
foreach ([10, 20, 30] as $base) {
  $rows .= "<td>" . ($base + $n % 7) . "</td>";
}
echo "<tr>" . $rows . "</tr>";`
	var inputs []RequestInput
	for i := 0; i < 64; i++ {
		inputs = append(inputs, RequestInput{Get: map[string]string{"x": fmt.Sprint(i * 7)}}) // i*7 % 7 == 0 always: collapses
	}
	res := checkSIMDEquiv(t, src, inputs)
	if res.InstrUni == 0 {
		t.Fatal("expected collapse to univalent execution")
	}
}

func TestSIMDHeterogeneousValuesLargeGroup(t *testing.T) {
	src := `
$q = $_GET["x"];
$page = "<h1>" . htmlspecialchars($q) . "</h1>";
$page .= "<p>common body</p>";
echo $page . strlen($q);`
	var inputs []RequestInput
	for i := 0; i < 32; i++ {
		inputs = append(inputs, RequestInput{Get: map[string]string{"x": fmt.Sprintf("q%d", i)}})
	}
	checkSIMDEquiv(t, src, inputs)
}

func TestSIMDIncDecMulti(t *testing.T) {
	src := `$i = intval($_GET["x"]); $i++; ++$i; echo $i--; echo $i;`
	checkSIMDEquiv(t, src, gets("5", "10"))
}

func TestSIMDCompoundAssignMulti(t *testing.T) {
	src := `$s = "v:"; $s .= $_GET["x"]; $s .= "|end"; echo $s;`
	checkSIMDEquiv(t, src, gets("abc", "d"))
}

func TestSIMDDeepIndexRead(t *testing.T) {
	src := `
$data = ["u1" => ["name" => "alice"], "u2" => ["name" => "bob"]];
echo $data[$_GET["x"]]["name"];`
	checkSIMDEquiv(t, src, gets("u1", "u2"))
}

func TestMultiInvariants(t *testing.T) {
	// NewMulti collapses equal lanes.
	if v := NewMulti([]Value{int64(1), int64(1)}); IsMulti(v) {
		t.Fatal("equal lanes must collapse")
	}
	if v := NewMulti([]Value{int64(1), int64(2)}); !IsMulti(v) {
		t.Fatal("unequal lanes must stay multi")
	}
	// Deep equality for arrays.
	a1, a2 := NewArray(), NewArray()
	a1.Append(int64(5))
	a2.Append(int64(5))
	if v := NewMulti([]Value{a1, a2}); IsMulti(v) {
		t.Fatal("deep-equal arrays must collapse")
	}
	// Expand clones per lane.
	arr := NewArray()
	arr.Append("x")
	lanes := Expand(arr, 3)
	lanes[0].(*Array).Append("y")
	if lanes[1].(*Array).Len() != 1 {
		t.Fatal("Expand must deep-copy per lane")
	}
}

func TestMaterializeLane(t *testing.T) {
	inner := NewMulti([]Value{"a", "b"})
	arr := NewArray()
	k, _ := NormalizeKey(Value("cell"))
	arr.Set(k, inner)
	m0 := MaterializeLane(arr, 0).(*Array)
	v, _ := m0.Get(k)
	if v != "a" {
		t.Fatalf("lane 0 cell = %v", v)
	}
	m1 := MaterializeLane(arr, 1).(*Array)
	v, _ = m1.Get(k)
	if v != "b" {
		t.Fatalf("lane 1 cell = %v", v)
	}
	// Arrays without multivalues are returned as-is (no copy needed).
	plain := NewArray()
	plain.Append(int64(1))
	if MaterializeLane(plain, 0).(*Array) != plain {
		t.Fatal("multivalue-free array should not be copied")
	}
}
