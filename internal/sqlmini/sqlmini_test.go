package sqlmini

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func setupPages(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE pages (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, body TEXT, views INT)`)
	mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('home', 'welcome', 10)`)
	mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('about', 'info', 5)`)
	mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('faq', 'questions', 7)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `SELECT id, title FROM pages WHERE title = 'about'`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != int64(2) || r.Rows[0][1] != "about" {
		t.Fatalf("row = %v", r.Rows[0])
	}
}

func TestAutoIncrement(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('new', 'x', 0)`)
	if r.InsertID != 4 {
		t.Fatalf("InsertID = %d", r.InsertID)
	}
	// Explicit id advances the counter.
	mustExec(t, db, `INSERT INTO pages (id, title, body, views) VALUES (100, 'z', 'y', 0)`)
	r = mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('w', 'v', 0)`)
	if r.InsertID != 101 {
		t.Fatalf("InsertID after explicit id = %d", r.InsertID)
	}
}

func TestSelectStar(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `SELECT * FROM pages`)
	if len(r.Cols) != 4 || len(r.Rows) != 3 {
		t.Fatalf("cols=%v rows=%d", r.Cols, len(r.Rows))
	}
}

func TestWhereOperators(t *testing.T) {
	db := setupPages(t)
	cases := []struct {
		where string
		want  int
	}{
		{`views = 10`, 1},
		{`views != 10`, 2},
		{`views <> 10`, 2},
		{`views < 10`, 2},
		{`views <= 7`, 2},
		{`views > 5`, 2},
		{`views >= 5`, 3},
		{`views > 5 AND views < 10`, 1},
		{`views = 10 OR views = 5`, 2},
		{`NOT views = 10`, 2},
		{`(views = 10 OR views = 5) AND title = 'home'`, 1},
		{`title LIKE 'a%'`, 1},
		{`title LIKE '%a%'`, 3}, // about, faq, ... home? h-o-m-e no 'a'. about,faq => 2
		{`title LIKE '_aq'`, 1},
		{`views IN (5, 7)`, 2},
		{`views IN (99)`, 0},
	}
	for _, c := range cases {
		r := mustExec(t, db, `SELECT id FROM pages WHERE `+c.where)
		want := c.want
		if c.where == `title LIKE '%a%'` {
			want = 2
		}
		if len(r.Rows) != want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(r.Rows), want)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `SELECT title FROM pages ORDER BY views DESC`)
	if r.Rows[0][0] != "home" || r.Rows[2][0] != "about" {
		t.Fatalf("order = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT title FROM pages ORDER BY views ASC LIMIT 2`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "about" {
		t.Fatalf("limit = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT title FROM pages ORDER BY views LIMIT 2 OFFSET 1`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "faq" {
		t.Fatalf("offset = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT title FROM pages ORDER BY views LIMIT 0`)
	if len(r.Rows) != 0 {
		t.Fatalf("limit 0 = %v", r.Rows)
	}
}

func TestOrderByStable(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t (a, b) VALUES (1, %d)`, i))
	}
	r := mustExec(t, db, `SELECT b FROM t ORDER BY a`)
	for i := 0; i < 10; i++ {
		if r.Rows[i][0] != int64(i) {
			t.Fatalf("stable sort violated at %d: %v", i, r.Rows[i])
		}
	}
}

func TestCount(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `SELECT COUNT(*) FROM pages WHERE views > 5`)
	if r.Rows[0][0] != int64(2) {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `UPDATE pages SET body = 'changed' WHERE title = 'home'`)
	if r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	s := mustExec(t, db, `SELECT body FROM pages WHERE title = 'home'`)
	if s.Rows[0][0] != "changed" {
		t.Fatalf("body = %v", s.Rows[0][0])
	}
}

func TestUpdateSelfIncrement(t *testing.T) {
	db := setupPages(t)
	mustExec(t, db, `UPDATE pages SET views = views + 1 WHERE title = 'home'`)
	mustExec(t, db, `UPDATE pages SET views = views - 3 WHERE title = 'home'`)
	s := mustExec(t, db, `SELECT views FROM pages WHERE title = 'home'`)
	if s.Rows[0][0] != int64(8) {
		t.Fatalf("views = %v", s.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := setupPages(t)
	r := mustExec(t, db, `DELETE FROM pages WHERE views < 8`)
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
	s := mustExec(t, db, `SELECT COUNT(*) FROM pages`)
	if s.Rows[0][0] != int64(1) {
		t.Fatalf("remaining = %v", s.Rows[0][0])
	}
}

func TestStringEscaping(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (s TEXT)`)
	mustExec(t, db, `INSERT INTO t (s) VALUES ('it''s')`)
	r := mustExec(t, db, `SELECT s FROM t`)
	if r.Rows[0][0] != "it's" {
		t.Fatalf("s = %q", r.Rows[0][0])
	}
	if Quote("a'b") != "'a''b'" {
		t.Fatalf("Quote = %q", Quote("a'b"))
	}
	// Round trip through Quote.
	mustExec(t, db, `INSERT INTO t (s) VALUES (`+Quote("x'y''z")+`)`)
	r = mustExec(t, db, `SELECT s FROM t WHERE s = `+Quote("x'y''z"))
	if len(r.Rows) != 1 {
		t.Fatal("Quote round trip failed")
	}
}

func TestNulls(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT)`)
	mustExec(t, db, `INSERT INTO t (a, b) VALUES (1, NULL)`)
	mustExec(t, db, `INSERT INTO t (a, b) VALUES (2, 'x')`)
	r := mustExec(t, db, `SELECT a FROM t WHERE b = NULL`)
	if len(r.Rows) != 1 || r.Rows[0][0] != int64(1) {
		t.Fatalf("null match = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT a FROM t WHERE b != NULL`)
	if len(r.Rows) != 1 || r.Rows[0][0] != int64(2) {
		t.Fatalf("not-null match = %v", r.Rows)
	}
}

func TestNegativeNumbers(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t (a) VALUES (-5)`)
	r := mustExec(t, db, `SELECT a FROM t WHERE a = -5`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT a FROM t WHERE a < -1`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestTxnAtomicityOnError(t *testing.T) {
	db := setupPages(t)
	_, err := db.ExecTxn([]string{
		`UPDATE pages SET views = 999 WHERE title = 'home'`,
		`INSERT INTO nosuchtable (x) VALUES (1)`,
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// First statement must be rolled back.
	r := mustExec(t, db, `SELECT views FROM pages WHERE title = 'home'`)
	if r.Rows[0][0] != int64(10) {
		t.Fatalf("rollback failed: views = %v", r.Rows[0][0])
	}
}

func TestTxnRollbackRestoresAutoInc(t *testing.T) {
	db := setupPages(t)
	_, err := db.ExecTxn([]string{
		`INSERT INTO pages (title, body, views) VALUES ('tmp', 'x', 0)`,
		`SELECT * FROM missing`,
	})
	if err == nil {
		t.Fatal("expected error")
	}
	r := mustExec(t, db, `INSERT INTO pages (title, body, views) VALUES ('real', 'y', 0)`)
	if r.InsertID != 4 {
		t.Fatalf("InsertID after rollback = %d (auto counter leaked)", r.InsertID)
	}
}

func TestTxnMultiStatement(t *testing.T) {
	db := setupPages(t)
	rs, err := db.ExecTxn([]string{
		`INSERT INTO pages (title, body, views) VALUES ('p1', 'b', 0)`,
		`UPDATE pages SET views = views + 1 WHERE title = 'p1'`,
		`SELECT views FROM pages WHERE title = 'p1'`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[2].Rows[0][0] != int64(1) {
		t.Fatalf("txn result = %v", rs[2].Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM t`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`INSERT INTO t VALUES (1)`, // missing column list
		`INSERT INTO t (a) VALUES (1,2)`,
		`CREATE TABLE t (a BLOB)`,
		`UPDATE t SET a = b * 2`,
		`SELECT * FROM t WHERE a ~ 1`,
		`DELETE t WHERE a = 1`,
		`SELECT * FROM t; SELECT * FROM t`,
		`SELECT * FROM t WHERE a LIKE 5`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := setupPages(t)
	bad := []string{
		`SELECT * FROM missing`,
		`SELECT nosuchcol FROM pages`,
		`INSERT INTO pages (nosuchcol) VALUES (1)`,
		`UPDATE pages SET nosuchcol = 1`,
		`SELECT * FROM pages WHERE nosuchcol = 1`,
		`SELECT * FROM pages ORDER BY nosuchcol`,
		`CREATE TABLE pages (id INT)`,
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q): expected error", sql)
		}
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q)=%v want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestConcurrentSerializability(t *testing.T) {
	// N goroutines increment a counter in read-modify-write transactions
	// of the "UPDATE ... SET v = v + 1" form; under strict
	// serializability the final count equals the number of increments.
	db := NewDB()
	mustExec(t, db, `CREATE TABLE c (id INT, v INT)`)
	mustExec(t, db, `INSERT INTO c (id, v) VALUES (1, 0)`)
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Exec(`UPDATE c SET v = v + 1 WHERE id = 1`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	r := mustExec(t, db, `SELECT v FROM c WHERE id = 1`)
	if r.Rows[0][0] != int64(workers*iters) {
		t.Fatalf("count = %v, want %d", r.Rows[0][0], workers*iters)
	}
}

func TestTableCopyIsolation(t *testing.T) {
	db := setupPages(t)
	cp := db.TableCopy("pages")
	mustExec(t, db, `UPDATE pages SET views = 0`)
	if cp.Rows[0][3] != int64(10) {
		t.Fatal("TableCopy must be isolated from later writes")
	}
	if db.TableCopy("missing") != nil {
		t.Fatal("TableCopy of missing table must be nil")
	}
}

func TestTablesAndSize(t *testing.T) {
	db := setupPages(t)
	if got := db.Tables(); len(got) != 1 || got[0] != "pages" {
		t.Fatalf("Tables = %v", got)
	}
	if db.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	if db.RowCount() != 3 {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
}

// TestInsertSelectQuick: property — inserting n random rows and selecting
// them back preserves count and contents.
func TestInsertSelectQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		if _, err := db.Exec(`CREATE TABLE q (id INT AUTOINCREMENT, n INT, s TEXT)`); err != nil {
			return false
		}
		n := rng.Intn(20) + 1
		sum := int64(0)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1000)
			sum += v
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO q (n, s) VALUES (%d, %s)`, v, Quote(fmt.Sprintf("s%d", v)))); err != nil {
				return false
			}
		}
		r, err := db.Exec(`SELECT COUNT(*) FROM q`)
		if err != nil || r.Rows[0][0] != int64(n) {
			return false
		}
		r, err = db.Exec(`SELECT n FROM q`)
		if err != nil {
			return false
		}
		var got int64
		for _, row := range r.Rows {
			got += row[0].(int64)
		}
		return got == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoercion(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b FLOAT, c TEXT)`)
	mustExec(t, db, `INSERT INTO t (a, b, c) VALUES ('12', 3, 45)`)
	r := mustExec(t, db, `SELECT a, b, c FROM t`)
	if r.Rows[0][0] != int64(12) {
		t.Fatalf("a = %v (%T)", r.Rows[0][0], r.Rows[0][0])
	}
	if r.Rows[0][1] != float64(3) {
		t.Fatalf("b = %v (%T)", r.Rows[0][1], r.Rows[0][1])
	}
	if r.Rows[0][2] != "45" {
		t.Fatalf("c = %v (%T)", r.Rows[0][2], r.Rows[0][2])
	}
}

func TestVarcharLengthSuffix(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (name VARCHAR(255) NOT NULL, age INTEGER)`)
	mustExec(t, db, `INSERT INTO t (name, age) VALUES ('x', 3)`)
	r := mustExec(t, db, `SELECT name FROM t WHERE age = 3`)
	if len(r.Rows) != 1 {
		t.Fatal("varchar table roundtrip failed")
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	r := mustExec(t, db, `INSERT INTO t (a) VALUES (1), (2), (3)`)
	if r.Affected != 3 {
		t.Fatalf("affected = %d", r.Affected)
	}
}
