package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE [AUTOINCREMENT], ...).
type CreateTable struct {
	Table string
	Cols  []Column
}

// Insert is INSERT INTO t (cols) VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Val
}

// Select is SELECT cols FROM t [WHERE] [ORDER BY] [LIMIT [OFFSET]].
type Select struct {
	Table   string
	Cols    []string // nil means *
	Count   bool     // SELECT COUNT(*)
	Where   Cond
	OrderBy []OrderKey
	Limit   int64 // -1 = none
	Offset  int64
}

// Update is UPDATE t SET col = val, ... [WHERE].
type Update struct {
	Table string
	Sets  []SetClause
	Where Cond
}

// Delete is DELETE FROM t [WHERE].
type Delete struct {
	Table string
	Where Cond
}

// SetClause assigns a literal (or col+literal increment) to a column.
type SetClause struct {
	Col string
	// Expr is the value: either a literal, or an increment of the same
	// column (col = col + n), which UPDATE supports for counters.
	Val      Val
	SelfOp   string // "" for plain literal; "+" or "-" for col = col ± Val
	SelfBase string // the column read in a self-op
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Cond is a WHERE condition tree.
type Cond interface{ cond() }

// CmpCond compares a column to a literal: = != <> < <= > >=.
type CmpCond struct {
	Col string
	Op  string
	Val Val
}

// LikeCond matches a column against a pattern with % wildcards.
type LikeCond struct {
	Col     string
	Pattern string
}

// InCond tests column membership in a literal list.
type InCond struct {
	Col  string
	Vals []Val
}

// AndCond and OrCond combine conditions.
type AndCond struct{ L, R Cond }

// OrCond is the disjunction of two conditions.
type OrCond struct{ L, R Cond }

// NotCond negates a condition.
type NotCond struct{ C Cond }

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

func (*CmpCond) cond()  {}
func (*LikeCond) cond() {}
func (*InCond) cond()   {}
func (*AndCond) cond()  {}
func (*OrCond) cond()   {}
func (*NotCond) cond()  {}

// TablesOf returns the tables a statement touches (lower-cased).
func TablesOf(s Stmt) []string {
	switch x := s.(type) {
	case *CreateTable:
		return []string{strings.ToLower(x.Table)}
	case *Insert:
		return []string{strings.ToLower(x.Table)}
	case *Select:
		return []string{strings.ToLower(x.Table)}
	case *Update:
		return []string{strings.ToLower(x.Table)}
	case *Delete:
		return []string{strings.ToLower(x.Table)}
	default:
		return nil
	}
}

// IsWrite reports whether the statement mutates the database.
func IsWrite(s Stmt) bool {
	switch s.(type) {
	case *Select:
		return false
	default:
		return true
	}
}

// --- lexer ---

type sqlTokKind uint8

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlNumber
	sqlString
	sqlOp
)

type sqlToken struct {
	kind sqlTokKind
	text string
	val  Val
}

type sqlLexer struct {
	src string
	pos int
}

func (l *sqlLexer) next() (sqlToken, error) {
	for l.pos < len(l.src) && isSQLSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return sqlToken{kind: sqlEOF}, nil
	}
	c := l.src[l.pos]
	switch {
	case isSQLIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isSQLIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return sqlToken{kind: sqlIdent, text: l.src[start:l.pos]}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !isFloat {
				isFloat = true
				l.pos++
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return sqlToken{}, fmt.Errorf("sqlmini: bad number %q", text)
			}
			return sqlToken{kind: sqlNumber, val: f}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return sqlToken{}, fmt.Errorf("sqlmini: bad number %q", text)
		}
		return sqlToken{kind: sqlNumber, val: n}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return sqlToken{kind: sqlString, val: b.String()}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return sqlToken{}, fmt.Errorf("sqlmini: unterminated string")
	default:
		for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", ";", "+", "-"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return sqlToken{kind: sqlOp, text: op}, nil
			}
		}
		return sqlToken{}, fmt.Errorf("sqlmini: unexpected character %q", c)
	}
}

func isSQLSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isSQLIdentChar(c byte) bool { return isSQLIdentStart(c) || (c >= '0' && c <= '9') }

// --- parser ---

type sqlParser struct {
	lex *sqlLexer
	tok sqlToken
}

// Parse parses a single SQL statement.
func Parse(sql string) (Stmt, error) {
	p := &sqlParser{lex: &sqlLexer{src: sql}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.tok.kind == sqlOp && p.tok.text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != sqlEOF {
		return nil, fmt.Errorf("sqlmini: trailing tokens after statement in %q", sql)
	}
	return st, nil
}

func (p *sqlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *sqlParser) isKw(kw string) bool {
	return p.tok.kind == sqlIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return fmt.Errorf("sqlmini: expected %s", kw)
	}
	return p.advance()
}

func (p *sqlParser) isOp(op string) bool {
	return p.tok.kind == sqlOp && p.tok.text == op
}

func (p *sqlParser) expectOp(op string) error {
	if !p.isOp(op) {
		return fmt.Errorf("sqlmini: expected %q", op)
	}
	return p.advance()
}

func (p *sqlParser) ident() (string, error) {
	if p.tok.kind != sqlIdent {
		return "", fmt.Errorf("sqlmini: expected identifier")
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *sqlParser) parseStmt() (Stmt, error) {
	switch {
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement (token %q)", p.tok.text)
	}
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ct ColType
		switch strings.ToUpper(tname) {
		case "INT", "INTEGER", "BIGINT":
			ct = IntCol
		case "FLOAT", "DOUBLE", "REAL":
			ct = FloatCol
		case "TEXT", "VARCHAR", "CHAR":
			ct = TextCol
		default:
			return nil, fmt.Errorf("sqlmini: unknown column type %q", tname)
		}
		// Optional length suffix: VARCHAR(255).
		if p.isOp("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != sqlNumber {
				return nil, fmt.Errorf("sqlmini: expected length")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		col := Column{Name: cname, Type: ct}
		// Optional modifiers: AUTOINCREMENT, PRIMARY KEY, NOT NULL.
		for p.tok.kind == sqlIdent {
			switch strings.ToUpper(p.tok.text) {
			case "AUTOINCREMENT", "AUTO_INCREMENT":
				col.AutoInc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			case "PRIMARY":
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
			case "NOT":
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
			default:
				goto colDone
			}
		}
	colDone:
		cols = append(cols, col)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Table: name, Cols: cols}, nil
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Val
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Val
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if len(row) != len(cols) {
			return nil, fmt.Errorf("sqlmini: %d values for %d columns", len(row), len(cols))
		}
		rows = append(rows, row)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return &Insert{Table: name, Cols: cols, Rows: rows}, nil
}

func (p *sqlParser) literal() (Val, error) {
	switch {
	case p.isOp("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != sqlNumber {
			return nil, fmt.Errorf("sqlmini: expected number after unary minus")
		}
		v := p.tok.val
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
		return nil, fmt.Errorf("sqlmini: bad numeric literal")
	case p.tok.kind == sqlNumber || p.tok.kind == sqlString:
		v := p.tok.val
		return v, p.advance()
	case p.isKw("NULL"):
		return nil, p.advance()
	case p.isKw("TRUE"):
		return int64(1), p.advance()
	case p.isKw("FALSE"):
		return int64(0), p.advance()
	default:
		return nil, fmt.Errorf("sqlmini: expected literal (got %q)", p.tok.text)
	}
}

func (p *sqlParser) parseSelect() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	switch {
	case p.isOp("*"):
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.isKw("COUNT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if err := p.expectOp("*"); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		sel.Count = true
	default:
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Cols = append(sel.Cols, c)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = name
	if p.isKw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.isKw("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: c}
			if p.isKw("DESC") {
				key.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isKw("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKw("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return nil, fmt.Errorf("sqlmini: bad LIMIT")
		}
		sel.Limit = n
		if p.isKw("OFFSET") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			off, ok := v.(int64)
			if !ok || off < 0 {
				return nil, fmt.Errorf("sqlmini: bad OFFSET")
			}
			sel.Offset = off
		}
	}
	return sel, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		// Either a literal, or col ± literal (counter updates like
		// "views = views + 1").
		if p.tok.kind == sqlIdent && !p.isKw("NULL") && !p.isKw("TRUE") && !p.isKw("FALSE") {
			base, err := p.ident()
			if err != nil {
				return nil, err
			}
			var op string
			switch {
			case p.isOp("+"):
				op = "+"
			case p.isOp("-"):
				op = "-"
			default:
				return nil, fmt.Errorf("sqlmini: expected + or - after column in SET")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			up.Sets = append(up.Sets, SetClause{Col: col, SelfBase: base, SelfOp: op, Val: v})
		} else {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			up.Sets = append(up.Sets, SetClause{Col: col, Val: v})
		}
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.isKw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.isKw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *sqlParser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Cond, error) {
	l, err := p.parseCondAtom()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseCondAtom() (Cond, error) {
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	if p.isKw("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseCondAtom()
		if err != nil {
			return nil, err
		}
		return &NotCond{C: c}, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.isKw("LIKE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		pat, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("sqlmini: LIKE requires a string pattern")
		}
		return &LikeCond{Col: col, Pattern: pat}, nil
	}
	if p.isKw("IN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var vals []Val
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InCond{Col: col, Vals: vals}, nil
	}
	if p.tok.kind != sqlOp {
		return nil, fmt.Errorf("sqlmini: expected comparison operator")
	}
	op := p.tok.text
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("sqlmini: bad comparison operator %q", op)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &CmpCond{Col: col, Op: op, Val: v}, nil
}

// Quote renders s as a SQL string literal with ” escaping.
func Quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
