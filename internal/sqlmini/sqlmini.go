// Package sqlmini is an embedded SQL engine: the database substrate of
// this OROCHI reproduction (standing in for MySQL, §4.4). It supports the
// dialect the applications need — CREATE TABLE, INSERT, SELECT with
// WHERE/ORDER BY/LIMIT, UPDATE, DELETE, COUNT(*), AUTOINCREMENT — and
// executes multi-statement transactions atomically under a writer-
// exclusive lock (read-only transactions share a read lock), which
// yields strict serializability (the paper's first DB requirement).
//
// Execution is fully deterministic: table scans run in insertion order
// and ORDER BY uses a stable sort, so re-executing the logged statement
// sequence always reproduces identical results. The versioned store
// (internal/vstore) shares this package's parser and AST.
package sqlmini

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Val is a SQL value: nil, int64, float64 or string.
type Val interface{}

// ColType is a column type.
type ColType uint8

const (
	IntCol ColType = iota + 1
	FloatCol
	TextCol
)

func (t ColType) String() string {
	switch t {
	case IntCol:
		return "INT"
	case FloatCol:
		return "FLOAT"
	case TextCol:
		return "TEXT"
	default:
		return "?"
	}
}

// Column describes one table column.
type Column struct {
	Name    string
	Type    ColType
	AutoInc bool
}

// Result is the outcome of one statement.
type Result struct {
	// Cols and Rows are set for SELECT.
	Cols []string
	Rows [][]Val
	// Affected is the number of rows touched by INSERT/UPDATE/DELETE.
	Affected int64
	// InsertID is the auto-increment id assigned by an INSERT (0 if the
	// table has no auto-increment column).
	InsertID int64
}

// Table holds rows in insertion order.
type Table struct {
	Name     string
	Cols     []Column
	colIdx   map[string]int
	Rows     [][]Val
	NextAuto int64
	autoCol  int // index of the auto-increment column, -1 if none
}

func newTable(name string, cols []Column) (*Table, error) {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols)), NextAuto: 1, autoCol: -1}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q", c.Name)
		}
		t.colIdx[lc] = i
		if c.AutoInc {
			if t.autoCol != -1 {
				return nil, fmt.Errorf("sqlmini: multiple auto-increment columns")
			}
			if c.Type != IntCol {
				return nil, fmt.Errorf("sqlmini: auto-increment column must be INT")
			}
			t.autoCol = i
		}
	}
	return t, nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// DB is a deterministic in-memory SQL database. All public methods are
// safe for concurrent use. Writing transactions serialize on an
// exclusive lock; read-only transactions (all statements SELECT) share a
// read lock and run concurrently with each other. This preserves strict
// serializability: readers exclude writers, so every transaction sees a
// state that some prefix of the writers produced, and the sequence
// number drawn inside each transaction's critical section is a legal
// serialization order (concurrent readers commute, and a reader's
// number is always ordered correctly against every writer it excludes
// or waits for). The order is also consistent with real time — a
// transaction that completes before another begins draws a smaller
// number — which is what OROCHI's DB log stitching relies on (§4.7).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	seq    atomic.Int64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Exec parses and executes a single statement.
func (db *DB) Exec(sql string) (*Result, error) {
	rs, _, err := db.ExecTxnSeq([]string{sql})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// ExecTxn executes the statements as one atomic transaction. On error the
// transaction's effects are rolled back.
func (db *DB) ExecTxn(stmts []string) ([]*Result, error) {
	rs, _, err := db.ExecTxnSeq(stmts)
	return rs, err
}

// ExecTxnSeq is ExecTxn that also returns the transaction's global
// sequence number, assigned inside the commit critical section. The
// sequence numbers totally order transactions in their serialization
// order — the property OROCHI's DB logging relies on (§4.7). A sequence
// number is consumed even when the transaction fails (it is the logged
// identity of the aborted attempt).
func (db *DB) ExecTxnSeq(stmts []string) ([]*Result, int64, error) {
	parsed := make([]Stmt, len(stmts))
	readOnly := true
	for i, s := range stmts {
		p, err := Parse(s)
		if err != nil {
			return nil, db.seq.Add(1), err
		}
		if _, sel := p.(*Select); !sel {
			readOnly = false
		}
		parsed[i] = p
	}
	if readOnly {
		// Read-only fast path: SELECTs never mutate table state, so the
		// transaction runs under the shared lock, concurrently with other
		// readers. No undo snapshot is needed.
		db.mu.RLock()
		defer db.mu.RUnlock()
		seq := db.seq.Add(1)
		out := make([]*Result, len(parsed))
		for i, p := range parsed {
			r, err := db.execStmt(p)
			if err != nil {
				return nil, seq, err
			}
			out[i] = r
		}
		return out, seq, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	seq := db.seq.Add(1)
	undo := db.snapshotFor(parsed)
	out := make([]*Result, len(parsed))
	for i, p := range parsed {
		r, err := db.execStmt(p)
		if err != nil {
			db.restore(undo)
			return nil, seq, err
		}
		out[i] = r
	}
	return out, seq, nil
}

// tableSnapshot records a table's state for rollback.
type tableSnapshot struct {
	name     string
	existed  bool
	rows     [][]Val
	nextAuto int64
}

// snapshotFor captures the pre-state of every table the statements touch.
func (db *DB) snapshotFor(stmts []Stmt) []tableSnapshot {
	seen := map[string]bool{}
	var snaps []tableSnapshot
	for _, s := range stmts {
		for _, name := range TablesOf(s) {
			lname := strings.ToLower(name)
			if seen[lname] {
				continue
			}
			seen[lname] = true
			t, ok := db.tables[lname]
			if !ok {
				snaps = append(snaps, tableSnapshot{name: lname})
				continue
			}
			rows := make([][]Val, len(t.Rows))
			for i, r := range t.Rows {
				rc := make([]Val, len(r))
				copy(rc, r)
				rows[i] = rc
			}
			snaps = append(snaps, tableSnapshot{name: lname, existed: true, rows: rows, nextAuto: t.NextAuto})
		}
	}
	return snaps
}

func (db *DB) restore(snaps []tableSnapshot) {
	for _, s := range snaps {
		if !s.existed {
			delete(db.tables, s.name)
			continue
		}
		t := db.tables[s.name]
		if t == nil {
			continue
		}
		t.Rows = s.rows
		t.NextAuto = s.nextAuto
	}
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableCopy returns a deep copy of the named table (nil if absent); used
// for state snapshots handed to the verifier.
func (db *DB) TableCopy(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil
	}
	out := &Table{
		Name: t.Name, Cols: append([]Column(nil), t.Cols...),
		colIdx: make(map[string]int, len(t.colIdx)), NextAuto: t.NextAuto, autoCol: t.autoCol,
	}
	for k, v := range t.colIdx {
		out.colIdx[k] = v
	}
	out.Rows = make([][]Val, len(t.Rows))
	for i, r := range t.Rows {
		rc := make([]Val, len(r))
		copy(rc, r)
		out.Rows[i] = rc
	}
	return out
}

// SizeBytes estimates the storage footprint of the database, for the
// Fig. 8 DB-overhead accounting.
func (db *DB) SizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, t := range db.tables {
		for _, r := range t.Rows {
			total += rowBytes(r)
		}
	}
	return total
}

func rowBytes(r []Val) int64 {
	var n int64
	for _, v := range r {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 8
		default:
			n += 8
		}
	}
	return n
}

// RowCount returns the total number of live rows.
func (db *DB) RowCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += len(t.Rows)
	}
	return n
}
