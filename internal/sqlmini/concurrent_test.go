package sqlmini

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters runs SELECT-only transactions (shared
// lock) concurrently with writing transactions (exclusive lock): the
// final state must reflect every write, every reader must observe a
// consistent count, and every transaction must draw a distinct sequence
// number.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE c (id INT, v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO c (id, v) VALUES (1, 0)`); err != nil {
		t.Fatal(err)
	}
	const writers, readers, perG = 8, 8, 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	seqs := map[int64]bool{}
	record := func(seq int64) {
		mu.Lock()
		defer mu.Unlock()
		if seqs[seq] {
			t.Errorf("sequence number %d drawn twice", seq)
		}
		seqs[seq] = true
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, seq, err := db.ExecTxnSeq([]string{`UPDATE c SET v = v + 1 WHERE id = 1`})
				if err != nil {
					t.Error(err)
					return
				}
				record(seq)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for i := 0; i < perG; i++ {
				rs, seq, err := db.ExecTxnSeq([]string{`SELECT v FROM c WHERE id = 1`})
				if err != nil {
					t.Error(err)
					return
				}
				record(seq)
				v := rs[0].Rows[0][0].(int64)
				if v < last {
					// Readers exclude writers, so observed values can only
					// move forward in real time.
					t.Errorf("reader saw v go backwards: %d after %d", v, last)
					return
				}
				if v < 0 || v > writers*perG {
					t.Errorf("reader saw impossible v=%d", v)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	final, err := db.Exec(`SELECT v FROM c WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Rows[0][0]; got != int64(writers*perG) {
		t.Fatalf("final v = %v, want %d", got, writers*perG)
	}
}

// TestReadOnlyTxnDetection: a transaction mixing SELECT with a write
// must still mutate (exclusive path), and pure SELECT batches must not
// be able to mutate even by accident.
func TestReadOnlyTxnDetection(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (n INT)`); err != nil {
		t.Fatal(err)
	}
	rs, _, err := db.ExecTxnSeq([]string{
		`INSERT INTO t (n) VALUES (7)`,
		`SELECT n FROM t`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[1].Rows) != 1 || rs[1].Rows[0][0] != int64(7) {
		t.Fatalf("mixed txn result = %v", rs[1].Rows)
	}
	// Multi-SELECT read-only transaction.
	rs, _, err = db.ExecTxnSeq([]string{`SELECT n FROM t`, `SELECT COUNT(*) FROM t`})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Rows[0][0] != int64(1) {
		t.Fatalf("count = %v", rs[1].Rows[0][0])
	}
	// A failing read-only transaction consumes a seq and reports the error.
	if _, seq, err := db.ExecTxnSeq([]string{`SELECT n FROM missing`}); err == nil || seq == 0 {
		t.Fatalf("bad select: err=%v seq=%d", err, seq)
	}
}

// TestSeqRespectsRealTime: sequential transactions draw strictly
// increasing sequence numbers regardless of read/write mix, which is
// what the DB log stitching relies on.
func TestSeqRespectsRealTime(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (n INT)`); err != nil {
		t.Fatal(err)
	}
	var last int64
	for i := 0; i < 20; i++ {
		stmt := `SELECT COUNT(*) FROM t`
		if i%3 == 0 {
			stmt = fmt.Sprintf(`INSERT INTO t (n) VALUES (%d)`, i)
		}
		_, seq, err := db.ExecTxnSeq([]string{stmt})
		if err != nil {
			t.Fatal(err)
		}
		if seq <= last {
			t.Fatalf("seq %d not greater than previous %d", seq, last)
		}
		last = seq
	}
}
