package sqlmini

import (
	"fmt"
	"sort"
	"strings"
)

// execStmt executes a parsed statement; the caller holds db.mu — the
// read lock suffices for SELECT (which never mutates table state), all
// other statements require the write lock.
func (db *DB) execStmt(s Stmt) (*Result, error) {
	switch x := s.(type) {
	case *CreateTable:
		return db.execCreate(x)
	case *Insert:
		return db.execInsert(x)
	case *Select:
		return db.execSelect(x)
	case *Update:
		return db.execUpdate(x)
	case *Delete:
		return db.execDelete(x)
	default:
		return nil, fmt.Errorf("sqlmini: unknown statement %T", s)
	}
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqlmini: no such table %q", name)
	}
	return t, nil
}

func (db *DB) execCreate(c *CreateTable) (*Result, error) {
	lname := strings.ToLower(c.Table)
	if _, exists := db.tables[lname]; exists {
		return nil, fmt.Errorf("sqlmini: table %q already exists", c.Table)
	}
	t, err := newTable(c.Table, c.Cols)
	if err != nil {
		return nil, err
	}
	db.tables[lname] = t
	return &Result{}, nil
}

func (db *DB) execInsert(ins *Insert) (*Result, error) {
	t, err := db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	colIdxs := make([]int, len(ins.Cols))
	for i, c := range ins.Cols {
		idx := t.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("sqlmini: no column %q in %q", c, ins.Table)
		}
		colIdxs[i] = idx
	}
	res := &Result{}
	for _, vals := range ins.Rows {
		row := make([]Val, len(t.Cols))
		for i, v := range vals {
			cv, err := coerceCol(t.Cols[colIdxs[i]], v)
			if err != nil {
				return nil, err
			}
			row[colIdxs[i]] = cv
		}
		assignedCols := make(map[int]bool, len(colIdxs))
		for _, ci := range colIdxs {
			assignedCols[ci] = true
		}
		if t.autoCol >= 0 && !assignedCols[t.autoCol] {
			row[t.autoCol] = t.NextAuto
			res.InsertID = t.NextAuto
			t.NextAuto++
		} else if t.autoCol >= 0 {
			// Explicit id: advance the counter past it (MySQL behaviour).
			if id, ok := row[t.autoCol].(int64); ok {
				res.InsertID = id
				if id >= t.NextAuto {
					t.NextAuto = id + 1
				}
			}
		}
		t.Rows = append(t.Rows, row)
		res.Affected++
	}
	return res, nil
}

func (db *DB) execSelect(sel *Select) (*Result, error) {
	t, err := db.table(sel.Table)
	if err != nil {
		return nil, err
	}
	return SelectOver(t, sel)
}

// SelectOver runs a parsed SELECT against an explicit table snapshot,
// without locking. It is shared with the versioned store, which
// materializes version-visible rows into a temporary Table.
func SelectOver(t *Table, sel *Select) (*Result, error) {
	matched, err := filterRows(t, sel.Where)
	if err != nil {
		return nil, err
	}
	if sel.Count {
		return &Result{Cols: []string{"count"}, Rows: [][]Val{{int64(len(matched))}}}, nil
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]int, len(sel.OrderBy))
		for i, ok := range sel.OrderBy {
			ci := t.ColIndex(ok.Col)
			if ci < 0 {
				return nil, fmt.Errorf("sqlmini: no column %q in ORDER BY", ok.Col)
			}
			keys[i] = ci
		}
		sort.SliceStable(matched, func(a, b int) bool {
			ra, rb := t.Rows[matched[a]], t.Rows[matched[b]]
			for i, ci := range keys {
				c := compareVals(ra[ci], rb[ci])
				if c == 0 {
					continue
				}
				if sel.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	// LIMIT / OFFSET.
	start := sel.Offset
	if start > int64(len(matched)) {
		start = int64(len(matched))
	}
	end := int64(len(matched))
	if sel.Limit >= 0 && start+sel.Limit < end {
		end = start + sel.Limit
	}
	matched = matched[start:end]
	// Projection.
	var outCols []string
	var proj []int
	if sel.Cols == nil {
		outCols = make([]string, len(t.Cols))
		proj = make([]int, len(t.Cols))
		for i, c := range t.Cols {
			outCols[i] = c.Name
			proj[i] = i
		}
	} else {
		outCols = sel.Cols
		proj = make([]int, len(sel.Cols))
		for i, c := range sel.Cols {
			ci := t.ColIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("sqlmini: no column %q in %q", c, sel.Table)
			}
			proj[i] = ci
		}
	}
	rows := make([][]Val, len(matched))
	for i, ri := range matched {
		row := make([]Val, len(proj))
		for j, ci := range proj {
			row[j] = t.Rows[ri][ci]
		}
		rows[i] = row
	}
	return &Result{Cols: outCols, Rows: rows}, nil
}

func (db *DB) execUpdate(up *Update) (*Result, error) {
	t, err := db.table(up.Table)
	if err != nil {
		return nil, err
	}
	matched, err := filterRows(t, up.Where)
	if err != nil {
		return nil, err
	}
	type setOp struct {
		col  int
		val  Val
		self string
		base int
	}
	sets := make([]setOp, len(up.Sets))
	for i, sc := range up.Sets {
		ci := t.ColIndex(sc.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sqlmini: no column %q in %q", sc.Col, up.Table)
		}
		op := setOp{col: ci, val: sc.Val, self: sc.SelfOp, base: -1}
		if sc.SelfOp != "" {
			bi := t.ColIndex(sc.SelfBase)
			if bi < 0 {
				return nil, fmt.Errorf("sqlmini: no column %q in SET expression", sc.SelfBase)
			}
			op.base = bi
		}
		sets[i] = op
	}
	for _, ri := range matched {
		row := t.Rows[ri]
		for _, s := range sets {
			if s.self == "" {
				cv, err := coerceCol(t.Cols[s.col], s.val)
				if err != nil {
					return nil, err
				}
				row[s.col] = cv
				continue
			}
			base := toInt64(row[s.base])
			delta := toInt64(s.val)
			if s.self == "-" {
				delta = -delta
			}
			row[s.col] = base + delta
		}
	}
	return &Result{Affected: int64(len(matched))}, nil
}

func (db *DB) execDelete(del *Delete) (*Result, error) {
	t, err := db.table(del.Table)
	if err != nil {
		return nil, err
	}
	matched, err := filterRows(t, del.Where)
	if err != nil {
		return nil, err
	}
	if len(matched) == 0 {
		return &Result{}, nil
	}
	drop := make(map[int]bool, len(matched))
	for _, ri := range matched {
		drop[ri] = true
	}
	kept := t.Rows[:0]
	for i, r := range t.Rows {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	return &Result{Affected: int64(len(matched))}, nil
}

// NewTempTable builds a Table from explicit columns and rows; used by the
// versioned store to evaluate SELECTs over version-visible rows.
func NewTempTable(name string, cols []Column, rows [][]Val) (*Table, error) {
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// MatchRow reports whether row satisfies cond under t's schema.
func MatchRow(t *Table, row []Val, cond Cond) (bool, error) {
	return evalCond(t, row, cond)
}

// CoerceCol converts a literal to the column's storage type (exported for
// the versioned store's redo pass).
func CoerceCol(c Column, v Val) (Val, error) {
	return coerceCol(c, v)
}

// filterRows returns indices of rows matching cond, in insertion order.
func filterRows(t *Table, cond Cond) ([]int, error) {
	out := make([]int, 0, len(t.Rows))
	for i, row := range t.Rows {
		ok, err := evalCond(t, row, cond)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

func evalCond(t *Table, row []Val, cond Cond) (bool, error) {
	if cond == nil {
		return true, nil
	}
	switch c := cond.(type) {
	case *AndCond:
		l, err := evalCond(t, row, c.L)
		if err != nil || !l {
			return false, err
		}
		return evalCond(t, row, c.R)
	case *OrCond:
		l, err := evalCond(t, row, c.L)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalCond(t, row, c.R)
	case *NotCond:
		v, err := evalCond(t, row, c.C)
		if err != nil {
			return false, err
		}
		return !v, nil
	case *CmpCond:
		ci := t.ColIndex(c.Col)
		if ci < 0 {
			return false, fmt.Errorf("sqlmini: no column %q", c.Col)
		}
		cell := row[ci]
		if cell == nil || c.Val == nil {
			// SQL three-valued logic, restricted: NULL matches only "= NULL"/"!= NULL".
			switch c.Op {
			case "=":
				return cell == nil && c.Val == nil, nil
			case "!=", "<>":
				return (cell == nil) != (c.Val == nil), nil
			default:
				return false, nil
			}
		}
		cmp := compareVals(cell, c.Val)
		switch c.Op {
		case "=":
			return cmp == 0, nil
		case "!=", "<>":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		case ">=":
			return cmp >= 0, nil
		default:
			return false, fmt.Errorf("sqlmini: bad operator %q", c.Op)
		}
	case *LikeCond:
		ci := t.ColIndex(c.Col)
		if ci < 0 {
			return false, fmt.Errorf("sqlmini: no column %q", c.Col)
		}
		s, ok := row[ci].(string)
		if !ok {
			s = valToString(row[ci])
		}
		return likeMatch(s, c.Pattern), nil
	case *InCond:
		ci := t.ColIndex(c.Col)
		if ci < 0 {
			return false, fmt.Errorf("sqlmini: no column %q", c.Col)
		}
		for _, v := range c.Vals {
			if v == nil || row[ci] == nil {
				if v == nil && row[ci] == nil {
					return true, nil
				}
				continue
			}
			if compareVals(row[ci], v) == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("sqlmini: unknown condition %T", cond)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over the pattern.
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// compareVals orders two non-nil SQL values: numbers numerically,
// otherwise as strings. nil sorts before everything (for ORDER BY).
func compareVals(a, b Val) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	af, aNum := numeric(a)
	bf, bNum := numeric(b)
	if aNum && bNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, bs := valToString(a), valToString(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func numeric(v Val) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func valToString(v Val) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

func toInt64(v Val) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	case string:
		var n int64
		fmt.Sscanf(x, "%d", &n)
		return n
	default:
		return 0
	}
}

// coerceCol converts a literal to the column's storage type.
func coerceCol(c Column, v Val) (Val, error) {
	if v == nil {
		return nil, nil
	}
	switch c.Type {
	case IntCol:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			return toInt64(x), nil
		}
	case FloatCol:
		switch x := v.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		}
	case TextCol:
		return valToString(v), nil
	}
	return nil, fmt.Errorf("sqlmini: cannot store %T in %s column %q", v, c.Type, c.Name)
}
