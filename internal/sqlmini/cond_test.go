package sqlmini

import (
	"fmt"
	"testing"
)

// Additional condition/projection coverage beyond the basics.

func setupCond(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT, c FLOAT)`)
	rows := []string{
		`(1, 'x', 1.5)`, `(2, 'y', 2.5)`, `(3, 'x', 3.5)`,
		`(4, NULL, 4.5)`, `(5, 'z', 5.5)`,
	}
	for _, r := range rows {
		mustExec(t, db, `INSERT INTO t (a, b, c) VALUES `+r)
	}
	return db
}

func TestNestedBooleanConditions(t *testing.T) {
	db := setupCond(t)
	cases := []struct {
		where string
		want  int
	}{
		{`(a = 1 OR a = 2) AND b = 'x'`, 1},
		{`a = 1 OR (a = 2 AND b = 'y')`, 2},
		{`NOT (a = 1 OR a = 2)`, 3},
		{`NOT a = 1 AND NOT a = 2`, 3},
		{`a >= 2 AND a <= 4 AND NOT b = NULL`, 2},
		{`b = 'x' OR b = 'y' OR b = 'z'`, 4},
		{`a IN (1, 3, 5) AND b = 'x'`, 2},
		{`NOT b IN ('x', 'y')`, 2}, // NULL row does not match IN, so NOT IN includes it
	}
	for _, c := range cases {
		r := mustExec(t, db, `SELECT a FROM t WHERE `+c.where)
		if len(r.Rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(r.Rows), c.want)
		}
	}
}

func TestMultiKeyOrderBy(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (g INT, v INT)`)
	for _, r := range []string{`(2, 1)`, `(1, 2)`, `(2, 2)`, `(1, 1)`} {
		mustExec(t, db, `INSERT INTO t (g, v) VALUES `+r)
	}
	r := mustExec(t, db, `SELECT g, v FROM t ORDER BY g ASC, v DESC`)
	want := [][]int64{{1, 2}, {1, 1}, {2, 2}, {2, 1}}
	for i, row := range r.Rows {
		if row[0] != want[i][0] || row[1] != want[i][1] {
			t.Fatalf("row %d = %v, want %v", i, row, want[i])
		}
	}
}

func TestFloatComparisons(t *testing.T) {
	db := setupCond(t)
	r := mustExec(t, db, `SELECT a FROM t WHERE c > 2.5 AND c < 5`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Int literal vs float column compares numerically.
	r = mustExec(t, db, `SELECT a FROM t WHERE c >= 4`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestCountEmptyAndOffsetPastEnd(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE e (a INT)`)
	r := mustExec(t, db, `SELECT COUNT(*) FROM e`)
	if r.Rows[0][0] != int64(0) {
		t.Fatal("count on empty table")
	}
	r = mustExec(t, db, `SELECT a FROM e ORDER BY a LIMIT 5 OFFSET 10`)
	if len(r.Rows) != 0 {
		t.Fatal("offset past end must be empty")
	}
	mustExec(t, db, `INSERT INTO e (a) VALUES (1)`)
	r = mustExec(t, db, `SELECT a FROM e LIMIT 10 OFFSET 1`)
	if len(r.Rows) != 0 {
		t.Fatal("offset == len must be empty")
	}
}

func TestProjectionOrderAndDuplication(t *testing.T) {
	db := setupCond(t)
	r := mustExec(t, db, `SELECT b, a, b FROM t WHERE a = 1`)
	if len(r.Cols) != 3 || r.Cols[0] != "b" || r.Cols[1] != "a" || r.Cols[2] != "b" {
		t.Fatalf("cols = %v", r.Cols)
	}
	if r.Rows[0][0] != "x" || r.Rows[0][1] != int64(1) || r.Rows[0][2] != "x" {
		t.Fatalf("row = %v", r.Rows[0])
	}
}

func TestUpdateNoMatches(t *testing.T) {
	db := setupCond(t)
	r := mustExec(t, db, `UPDATE t SET b = 'q' WHERE a = 999`)
	if r.Affected != 0 {
		t.Fatalf("affected = %d", r.Affected)
	}
}

func TestDeleteAll(t *testing.T) {
	db := setupCond(t)
	r := mustExec(t, db, `DELETE FROM t`)
	if r.Affected != 5 {
		t.Fatalf("affected = %d", r.Affected)
	}
	if db.RowCount() != 0 {
		t.Fatal("rows remain")
	}
	// Auto-increment-free table still inserts fine after wipe.
	mustExec(t, db, `INSERT INTO t (a, b, c) VALUES (9, 'n', 0)`)
}

func TestCaseInsensitivity(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table MiXeD (Col INT)`)
	mustExec(t, db, `insert into mixed (col) values (7)`)
	r := mustExec(t, db, `SELECT COL FROM MIXED WHERE cOl = 7`)
	if len(r.Rows) != 1 {
		t.Fatal("identifiers must be case-insensitive")
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE s (a INT)`)
	var last int64
	for i := 0; i < 10; i++ {
		_, seq, err := db.ExecTxnSeq([]string{fmt.Sprintf(`INSERT INTO s (a) VALUES (%d)`, i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq <= last {
			t.Fatalf("seq %d not monotone after %d", seq, last)
		}
		last = seq
	}
	// Failed transactions also consume sequence numbers.
	_, seq, err := db.ExecTxnSeq([]string{`SELECT * FROM missing`})
	if err == nil {
		t.Fatal("expected error")
	}
	if seq <= last {
		t.Fatal("failed txn must still draw a sequence number")
	}
}
