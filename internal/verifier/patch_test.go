package verifier

import (
	"testing"

	"orochi/internal/lang"
	"orochi/internal/trace"
)

// The patch-audit tests use a small pair of programs: the "original"
// served the workload; the "patched" variants change rendering, change
// nothing, or change the write pattern.

var patchBase = map[string]string{
	"show": `
$rows = db_query("SELECT id, name FROM items ORDER BY id");
echo "<ul>";
foreach ($rows as $r) {
  echo "<li>" . $r["id"] . ": " . htmlspecialchars($r["name"]) . "</li>";
}
echo "</ul>";
`,
	"add": `
db_exec("INSERT INTO items (name) VALUES (" . db_quote($_POST["name"]) . ")");
echo "added " . htmlspecialchars($_POST["name"]);
`,
	"hello": `echo "hello " . $_GET["who"];`,
}

var patchSchema = []string{
	`CREATE TABLE items (id INT PRIMARY KEY AUTOINCREMENT, name TEXT)`,
}

func servePatchWorkload(t *testing.T) (*lang.Program, *trace.Trace, *serverArtifacts) {
	t.Helper()
	prog, err := lang.Compile(patchBase)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerForTest(t, prog)
	if err := srv.Setup(patchSchema); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	inputs := []trace.Input{
		{Script: "add", Post: map[string]string{"name": "one"}},
		{Script: "show"},
		{Script: "add", Post: map[string]string{"name": "two"}},
		{Script: "show"},
		{Script: "hello", Get: map[string]string{"who": "x"}},
	}
	srv.ServeAll(inputs, 1)
	// Precondition: the original program passes the real audit.
	res, err := Audit(prog, srv.Trace(), srv.Reports(), snap, Options{})
	if err != nil || !res.Accepted {
		t.Fatalf("baseline audit: %v %v", err, res)
	}
	return prog, srv.Trace(), &serverArtifacts{srv: srv, snap: snap}
}

func TestPatchIdenticalAllUnchanged(t *testing.T) {
	_, tr, art := servePatchWorkload(t)
	same, err := lang.Compile(patchBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PatchAudit(same, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 0 || res.Inconclusive != 0 || res.Unchanged != 5 {
		t.Fatalf("identical patch: %+v", res)
	}
}

func TestPatchRenderingChangeDetected(t *testing.T) {
	_, tr, art := servePatchWorkload(t)
	patched := map[string]string{}
	for k, v := range patchBase {
		patched[k] = v
	}
	// The patch changes the list rendering (an XSS fix, say).
	patched["show"] = `
$rows = db_query("SELECT id, name FROM items ORDER BY id");
echo "<ol>";
foreach ($rows as $r) {
  echo "<li data-id='" . $r["id"] . "'>" . htmlspecialchars($r["name"]) . "</li>";
}
echo "</ol>";
`
	prog, err := lang.Compile(patched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PatchAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 2 {
		t.Fatalf("want the 2 show requests changed, got %+v", res)
	}
	if res.Unchanged != 3 {
		t.Fatalf("adds and hello must be unchanged, got %+v", res)
	}
	for _, rid := range res.RIDsIn(PatchChanged) {
		in, _ := tr.InputOf(rid)
		if in.Script != "show" {
			t.Fatalf("changed rid %s is %s, want show", rid, in.Script)
		}
	}
}

func TestPatchedSelectStillConclusive(t *testing.T) {
	// A patched SELECT (different columns/order) is answered from the
	// versioned DB at the original timestamps — still conclusive.
	_, tr, art := servePatchWorkload(t)
	patched := map[string]string{}
	for k, v := range patchBase {
		patched[k] = v
	}
	patched["show"] = `
$rows = db_query("SELECT name FROM items ORDER BY name DESC");
foreach ($rows as $r) {
  echo "[" . $r["name"] . "]";
}
`
	prog, err := lang.Compile(patched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PatchAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconclusive != 0 {
		t.Fatalf("patched SELECT must stay conclusive: %+v", res)
	}
	if res.Changed != 2 {
		t.Fatalf("show outputs must change: %+v", res)
	}
}

func TestPatchedWriteInconclusive(t *testing.T) {
	// A patch that changes the INSERT cannot be simulated from history.
	_, tr, art := servePatchWorkload(t)
	patched := map[string]string{}
	for k, v := range patchBase {
		patched[k] = v
	}
	patched["add"] = `
db_exec("INSERT INTO items (name) VALUES (" . db_quote(strtoupper($_POST["name"])) . ")");
echo "added " . htmlspecialchars($_POST["name"]);
`
	prog, err := lang.Compile(patched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PatchAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconclusive != 2 {
		t.Fatalf("want the 2 add requests inconclusive, got %+v", res)
	}
}

func TestPatchExtraOpInconclusive(t *testing.T) {
	// The patch adds a state op the original never issued.
	_, tr, art := servePatchWorkload(t)
	patched := map[string]string{}
	for k, v := range patchBase {
		patched[k] = v
	}
	patched["hello"] = `
$seen = apc_get("greeted");
echo "hello " . $_GET["who"];
`
	prog, err := lang.Compile(patched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PatchAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Classes[findRID(t, tr, "hello")]; got != PatchInconclusive {
		t.Fatalf("hello with extra op = %v, want inconclusive", got)
	}
}

func findRID(t *testing.T, tr *trace.Trace, script string) string {
	t.Helper()
	for _, ev := range tr.Requests() {
		if ev.In.Script == script {
			return ev.RID
		}
	}
	t.Fatalf("no request for script %s", script)
	return ""
}

func TestPatchClassString(t *testing.T) {
	if PatchUnchanged.String() != "unchanged" || PatchChanged.String() != "changed" ||
		PatchInconclusive.String() != "inconclusive" {
		t.Fatal("class strings")
	}
}
