package verifier

import (
	"fmt"
	"strings"

	"orochi/internal/core"
)

// Forensics is the structured counterpart of Result.Reason: when an
// audit rejects, it pins *where* the verification failed (phase, check,
// group/chunk, object/log coordinates), *which* request is implicated,
// and — for output mismatches — the traced-vs-re-executed response diff.
// It is operator evidence, assembled from the same deterministic
// first-failure arbitration as the reject reason itself, so the record
// is bit-identical at any Options.Workers setting.
//
// Forensics describe the earliest failure in canonical audit order; a
// misbehaving executor may have corrupted more than one thing, but the
// first divergence is what decides the verdict, and it is what an
// operator drills into. Every field is JSON-stable so decision logs
// (internal/epoch) can persist and re-render it without loss.
type Forensics struct {
	// Phase is the verifier phase that rejected: one of the Phase*
	// constants, or PhaseValidation for pre-phase trace/report checks.
	Phase string `json:"phase"`
	// Check is a short machine-readable slug of the failed check (e.g.
	// "output-mismatch", "op-count", "check-op", "divergence").
	Check string `json:"check"`
	// RequestID names the offending request when the failure is
	// attributable to one.
	RequestID string `json:"request_id,omitempty"`
	// Script is the entry point of the implicated group or request.
	Script string `json:"script,omitempty"`
	// GroupTag is the control-flow group tag (%016x) and Chunk the
	// MaxGroup-batch index within the group, for Phase 3 failures.
	GroupTag string `json:"group_tag,omitempty"`
	Chunk    int    `json:"chunk,omitempty"`
	// GroupSize is the number of requests in the failing batch.
	GroupSize int `json:"group_size,omitempty"`
	// Object names the shared object ("register:user_alice", "kv:main",
	// "db:main") and OpIndex the 1-based operation-log sequence number
	// (the codebase's LogPos.Seq convention; 0 = not applicable), for
	// Phase 2 failures.
	Object  string `json:"object,omitempty"`
	OpIndex int    `json:"op_index,omitempty"`
	// OpsReported / OpsReplayed carry the op-count comparison (report M
	// vs re-execution) when the failure is an op-count mismatch.
	OpsReported int `json:"ops_reported,omitempty"`
	OpsReplayed int `json:"ops_replayed,omitempty"`
	// Diff is the traced-vs-re-executed response comparison for output
	// mismatches (nil otherwise).
	Diff *ResponseDiff `json:"diff,omitempty"`
	// Detail restates the human-readable reason for self-contained
	// rendering.
	Detail string `json:"detail,omitempty"`
}

// PhaseValidation tags forensics for rejects raised before Phase 1 runs
// (unbalanced trace, malformed reports).
const PhaseValidation = "validation"

// ResponseDiff compares the response the trace recorded (what the
// client saw) against the response re-execution produced (what an
// honest executor would have served). Bodies are windowed around the
// first differing byte so forensics stay small even for large pages.
type ResponseDiff struct {
	// TracedLen / ReExecLen are the full body lengths in bytes.
	TracedLen int `json:"traced_len"`
	ReExecLen int `json:"reexec_len"`
	// FirstDiff is the byte offset of the first difference. When one
	// body is a strict prefix of the other it equals the shorter length.
	FirstDiff int `json:"first_diff"`
	// WindowAt is the offset at which the captured windows start.
	WindowAt int `json:"window_at"`
	// Traced / ReExec are the body windows around FirstDiff (at most
	// diffWindow bytes each); Truncated reports whether either side was
	// cut.
	Traced    string `json:"traced"`
	ReExec    string `json:"reexec"`
	Truncated bool   `json:"truncated,omitempty"`
}

// diffWindow bounds how many bytes of each body a ResponseDiff retains:
// a fixed amount of context before the first divergence and the window
// remainder after it.
const (
	diffWindow  = 192
	diffContext = 48
)

// diffResponses builds the deterministic traced-vs-re-executed diff.
func diffResponses(traced, reexec string) *ResponseDiff {
	n := min(len(traced), len(reexec))
	d := 0
	for d < n && traced[d] == reexec[d] {
		d++
	}
	at := max(0, d-diffContext)
	slice := func(s string) (string, bool) {
		if at >= len(s) {
			return "", at > len(s)
		}
		end := min(len(s), at+diffWindow)
		return s[at:end], end < len(s) || at > 0
	}
	tw, tt := slice(traced)
	rw, rt := slice(reexec)
	return &ResponseDiff{
		TracedLen: len(traced),
		ReExecLen: len(reexec),
		FirstDiff: d,
		WindowAt:  at,
		Traced:    tw,
		ReExec:    rw,
		Truncated: tt || rt,
	}
}

// String renders the diff for terminals (orochi-audit -explain, the
// console's drill-down page).
func (d *ResponseDiff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at byte %d (traced %dB, re-executed %dB)\n", d.FirstDiff, d.TracedLen, d.ReExecLen)
	fmt.Fprintf(&b, "  traced    [%d:]: %q\n", d.WindowAt, d.Traced)
	fmt.Fprintf(&b, "  reexec    [%d:]: %q", d.WindowAt, d.ReExec)
	if d.Truncated {
		b.WriteString("\n  (bodies windowed)")
	}
	return b.String()
}

// tagString formats a group tag the way every CLI prints it.
func tagString(tag uint64) string { return fmt.Sprintf("%016x", tag) }

// rejection pairs a reject message with its forensics record as the
// failure travels from the failing check to the verdict. The pair is
// built where the check fails and arbitrated exactly like the message
// alone used to be, so forensics inherit the engine's determinism.
type rejection struct {
	msg string
	f   *Forensics
}

// forensicsFromReject lifts a core.RejectError — the typed reject the
// deeper layers (ProcessOpReports, the audit bridge, the OOO scheduler)
// raise — into a Forensics record. The error's Stage becomes the check
// slug and its RID, when the check attributed one, the offending
// request.
func forensicsFromReject(phase string, rej *core.RejectError) *Forensics {
	return &Forensics{
		Phase:     phase,
		Check:     rej.Stage,
		RequestID: rej.RID,
		Detail:    rej.Msg,
	}
}

// String renders the forensics record as an operator-facing block.
func (f *Forensics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failing phase: %s (check: %s)\n", f.Phase, f.Check)
	if f.RequestID != "" {
		fmt.Fprintf(&b, "offending request: %s", f.RequestID)
		if f.Script != "" {
			fmt.Fprintf(&b, " (script %s)", f.Script)
		}
		b.WriteString("\n")
	} else if f.Script != "" {
		fmt.Fprintf(&b, "script: %s\n", f.Script)
	}
	if f.GroupTag != "" {
		fmt.Fprintf(&b, "group: %s chunk %d (%d request(s) in batch)\n", f.GroupTag, f.Chunk, f.GroupSize)
	}
	if f.Object != "" {
		fmt.Fprintf(&b, "object: %s", f.Object)
		if f.OpIndex > 0 {
			fmt.Fprintf(&b, " (log seq %d)", f.OpIndex)
		}
		b.WriteString("\n")
	}
	if f.OpsReported != 0 || f.OpsReplayed != 0 {
		fmt.Fprintf(&b, "op counts: reports claim %d, re-execution issued %d\n", f.OpsReported, f.OpsReplayed)
	}
	if f.Diff != nil {
		b.WriteString(f.Diff.String())
		b.WriteString("\n")
	}
	if f.Detail != "" {
		fmt.Fprintf(&b, "detail: %s", f.Detail)
	}
	return strings.TrimRight(b.String(), "\n")
}
